# Convenience targets for the gobd reproduction.

GO ?= go

.PHONY: all build vet test test-race short bench repro artifacts fuzz clean

all: build test test-race

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The scheduler's determinism contract under the race detector.
test-race:
	$(GO) test -race ./...

# Skip the slow analog experiments (seconds instead of a minute).
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# All 26 experiments with shape checks, paper-style text.
repro:
	$(GO) run ./cmd/obdrepro

# CSV curves, VCD trace and SPICE deck for the data figures.
artifacts:
	$(GO) run ./cmd/obdrepro -experiment sets -out artifacts

# Short fuzzing sessions on the parsers.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/logic/
	$(GO) test -fuzz FuzzParsePair -fuzztime 30s ./internal/fault/

clean:
	$(GO) clean -testcache
	rm -rf artifacts
