# Convenience targets for the gobd reproduction.

GO ?= go

.PHONY: all build vet obdcheck detlint lint serve serve-smoke test test-race short bench bench-big repro artifacts fuzz fuzz-smoke kill-matrix clean

all: build test test-race

build:
	$(GO) build ./...
	$(GO) vet ./...

# Standard vet plus the obdcheck contract-enforcement suite (determinism,
# enum exhaustiveness, cross-package panic contract, context threading,
# hot-path allocations, error wrapping, facade delegation, suppression
# hygiene) over the whole module — see tools/analyzers/obdcheck. Exits
# non-zero on any unsuppressed finding or stale allow annotation.
vet: obdcheck
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/obdcheck -staleallows ./...

obdcheck:
	$(GO) build -o bin/obdcheck ./tools/analyzers/obdcheck

# Deprecated: detlint grew into obdcheck (PR 4). This alias remains for
# one release; switch scripts to `make vet` / `make obdcheck`.
detlint:
	@echo "make detlint is deprecated: the analyzer is now obdcheck (building bin/obdcheck)" >&2
	$(GO) build -o bin/obdcheck ./tools/analyzers/obdcheck

# Static netlist analysis of the bench circuits (cmd/obdlint).
lint:
	$(GO) run ./cmd/obdlint -circuit fulladder -circuit c17 -circuit rca4 -circuit mux41

# The HTTP/JSON grading service (cmd/obdserve) on :8080.
serve:
	$(GO) run ./cmd/obdserve

# CI smoke: start obdserve, wait for /healthz, run one grade request,
# then drain it with SIGTERM. Fails on any non-2xx or if the server
# never comes up.
serve-smoke:
	./tools/serve_smoke.sh

test:
	$(GO) test ./...

# The scheduler's determinism contract under the race detector.
test-race:
	$(GO) test -race ./...

# Skip the slow analog experiments (seconds instead of a minute).
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Big-circuit grading perf trajectory: full-sweep vs levelized
# event-driven grading on the committed c432-scale circuit at one worker,
# recorded as BENCH_big.json (one snapshot per optimization PR).
bench-big:
	$(GO) run ./tools/benchbig -out BENCH_big.json

# All 26 experiments with shape checks, paper-style text.
repro:
	$(GO) run ./cmd/obdrepro

# CSV curves, VCD trace and SPICE deck for the data figures.
artifacts:
	$(GO) run ./cmd/obdrepro -experiment sets -out artifacts

# Short fuzzing sessions on the parsers, validators and BIST generator.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzParseBench$$' -fuzztime 30s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzCircuitValidate$$' -fuzztime 30s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePair$$' -fuzztime 30s ./internal/fault/
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime 30s ./internal/netcheck/
	$(GO) test -run '^$$' -fuzz '^FuzzLFSRPeriod$$' -fuzztime 30s ./internal/bist/
	$(GO) test -run '^$$' -fuzz '^FuzzStoreManifest$$' -fuzztime 30s ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzSAT$$' -fuzztime 30s ./internal/sat/

# The CI smoke variant: every fuzz target for a few seconds, enough to
# catch a target that breaks on its own seed corpus or first mutations.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzParseBench$$' -fuzztime 5s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzCircuitValidate$$' -fuzztime 5s ./internal/logic/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePair$$' -fuzztime 5s ./internal/fault/
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime 5s ./internal/netcheck/
	$(GO) test -run '^$$' -fuzz '^FuzzLFSRPeriod$$' -fuzztime 5s ./internal/bist/
	$(GO) test -run '^$$' -fuzz '^FuzzStoreManifest$$' -fuzztime 5s ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzSAT$$' -fuzztime 5s ./internal/sat/

# The kill-injection robustness suite: crash the job runtime at every
# store/journal failpoint occurrence and require byte-identical recovery,
# under the race detector (see internal/jobs/kill_test.go, DESIGN.md §13).
kill-matrix:
	$(GO) test -race -run 'TestKillInjection|TestStore|TestJournal' ./internal/jobs/ ./internal/store/

clean:
	$(GO) clean -testcache
	rm -rf artifacts bin
