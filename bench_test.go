// Benchmarks regenerating every data table and figure of the paper. Each
// benchmark iteration runs the complete experiment, so `go test -bench=.`
// both times the reproduction and re-validates every shape check; the
// recorded outputs live in EXPERIMENTS.md.
package gobd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/exper"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
)

func requireClean(b *testing.B, bad []string, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(bad) != 0 {
		b.Fatalf("shape violations: %v", bad)
	}
}

// BenchmarkTable1 regenerates Table 1: all four NAND transistors, all five
// breakdown stages, both measurement sequences each (80 transients).
func BenchmarkTable1(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunTable1(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkFigure4VTC regenerates Figure 4: inverter DC sweeps per stage.
func BenchmarkFigure4VTC(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunFigure4(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkFigure6 regenerates Figure 6: NMOS OBD progression transients.
func BenchmarkFigure6(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunFigure6(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkFigure7 regenerates Figure 7: input-specific PMOS detection.
func BenchmarkFigure7(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunFigure7(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkFigure9 regenerates Figure 9: four OBD injections into the
// transistor-level full adder with ATPG-justified stimuli.
func BenchmarkFigure9(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunFigure9(p, obd.MBD2)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkExcitationSets regenerates the Section 4.1/5 excitation tables
// and exact minimum covers (NAND, NOR, NAND3, AOI21, INV).
func BenchmarkExcitationSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunExcitationSets()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkFullAdderATPG regenerates the Section 4.3 census: exhaustive
// two-pattern analysis, greedy cover and PODEM ATPG on the full adder.
func BenchmarkFullAdderATPG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunFullAdderCounts()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkCoverageGap regenerates the traditional-vs-OBD coverage
// comparison on the full adder.
func BenchmarkCoverageGap(b *testing.B) {
	lc := cells.FullAdderSumLogic()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunCoverageGap("fulladder_sum", lc)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkEMvsOBD regenerates the Section 5 EM/OBD set comparison.
func BenchmarkEMvsOBD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunEMComparison()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkDetectionWindow regenerates the Section 4.2 analysis: delay
// along the progression trajectory plus per-slack windows.
func BenchmarkDetectionWindow(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunDetectionWindow(p, 7)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkRuleValidation times the analog cross-validation of the
// excitation rule on NAND2 (30 transients).
func BenchmarkRuleValidation(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunRuleValidation(p, logic.Nand, 2, obd.MBD2)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkIDDQ times the quiescent-current experiment.
func BenchmarkIDDQ(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunIDDQ(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkCaptureSweep times the Section 4.2 coverage-vs-capture matrix
// (analog characterization plus timing-simulator grading).
func BenchmarkCaptureSweep(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunCaptureSweep(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkScanComparison times the enhanced-scan vs launch-on-shift DFT
// comparison across the benchmark suite.
func BenchmarkScanComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunScanComparison()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkGapSuite times the multi-circuit coverage-gap study.
func BenchmarkGapSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunGapSuite()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkSeqModes times the sequential scan-mode coverage study.
func BenchmarkSeqModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunSeqModes()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkDiagnosis times the fault-dictionary resolution study.
func BenchmarkDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunDiagnosis()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkConcurrentSim times the lifetime concurrent-testing race.
func BenchmarkConcurrentSim(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunConcurrentSim(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkNDetect times the n-detect hardening study.
func BenchmarkNDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunNDetect()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkATPGGuidance times the SCOAP guidance ablation.
func BenchmarkATPGGuidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunATPGGuidance()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkScaleRCA8 demonstrates ATPG + bit-parallel grading scale: the
// 8-bit NAND-only ripple-carry adder (72 gates, 288 OBD faults, 17 inputs
// — far beyond exhaustive pair enumeration).
func BenchmarkScaleRCA8(b *testing.B) {
	lc := logic.RippleCarryAdder(8)
	faults, _ := fault.OBDUniverse(lc)
	for i := 0; i < b.N; i++ {
		ts := must(atpg.GenerateOBDTests(lc, faults, nil))
		if ts.Coverage.Detected != ts.Coverage.Total {
			b.Fatalf("RCA8 coverage %v, want complete", ts.Coverage)
		}
		par := must(atpg.GradeOBDParallel(lc, faults, ts.Tests))
		if par.Detected != ts.Coverage.Detected {
			b.Fatalf("parallel grading disagrees: %v vs %v", par, ts.Coverage)
		}
	}
}

// BenchmarkGradeOBDWorkers measures multicore fault-simulation scaling on
// the 16-bit ripple-carry adder: one fixed test set (the generated pairs
// widened with random complete fills to several 64-lane blocks), graded
// with pools of 1, 2, 4 and 8 workers. The Coverage is bit-identical at
// every width; only the wall clock should move.
func BenchmarkGradeOBDWorkers(b *testing.B) {
	lc := logic.RippleCarryAdder(16)
	faults, _ := fault.OBDUniverse(lc)
	ts := must(atpg.GenerateOBDTests(lc, faults, nil))
	tests := ts.Tests
	rng := rand.New(rand.NewSource(1))
	for len(tests) < 512 {
		mk := func() atpg.Pattern {
			p := make(atpg.Pattern, len(lc.Inputs))
			for _, in := range lc.Inputs {
				p[in] = logic.FromBool(rng.Intn(2) == 1)
			}
			return p
		}
		tests = append(tests, atpg.TwoPattern{V1: mk(), V2: mk()})
	}
	want := must(atpg.NewScheduler(1).GradeOBD(lc, faults, tests))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(w), func(b *testing.B) {
			s := atpg.NewScheduler(w)
			for i := 0; i < b.N; i++ {
				cov := must(s.GradeOBD(lc, faults, tests))
				if cov.Detected != want.Detected {
					b.Fatalf("workers %d: coverage %v, want %v", w, cov, want)
				}
			}
		})
	}
}

// BenchmarkDetectProfile times the detection-probability profiling.
func BenchmarkDetectProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunDetectProfile()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkBIST times the LFSR/MISR self-test study.
func BenchmarkBIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exper.RunBIST()
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkNORTable times the Section 5 NOR progression table.
func BenchmarkNORTable(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunNORTable(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkEnergy times the supply charge/static power study.
func BenchmarkEnergy(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunEnergy(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkSupplyRobustness times the VDD-corner robustness sweep.
func BenchmarkSupplyRobustness(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunSupplyRobustness(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkAblationNetwork times the breakdown-network factor analysis.
func BenchmarkAblationNetwork(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunAblationNetwork(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkAblationDriver times the gate-driven vs ideal-source ablation.
func BenchmarkAblationDriver(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunAblationDriver(p)
		requireClean(b, r.Check(), err)
	}
}

// BenchmarkAblationInjection times the beyond-series-parallel injection
// ablation (OBD vs analog EM under a non-exciting sequence).
func BenchmarkAblationInjection(b *testing.B) {
	p := spice.Default350()
	for i := 0; i < b.N; i++ {
		r, err := exper.RunAblationInjection(p)
		requireClean(b, r.Check(), err)
	}
}

// must unwraps a (value, error) return in tests, panicking on error; the
// panic fails the calling test with the full error in the log.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
