// Command obdatpg generates test patterns for a gate-level netlist under a
// chosen fault model and reports coverage — including how well the
// traditional models' test sets cover the OBD fault universe (the paper's
// central comparison).
//
// Examples:
//
//	obdatpg -fulladder -model obd -v
//	obdatpg -fulladder -model obd -prune
//	obdatpg -netlist c432.bench -model obd -sat-fallback -stats
//	obdatpg -netlist mydesign.net -model transition -grade-obd
//	obdatpg -fulladder -model ndetect -n 3 -o tests.vec
//	obdatpg -fulladder -apply tests.vec
//	obdatpg -fulladder -model los
//	obdatpg -fulladder -model bist -cycles 256
//	obdatpg -netlist s27.bench -style loc
//	obdatpg -netlist s27.bench -style enhanced -grade-obd
//
// A DFF-bearing netlist needs -style: the circuit is lifted into its scan
// model (internal/seq) and OBD tests are generated for the combinational
// core under the chosen scan discipline — enhanced (arbitrary pairs), los
// (launch-on-shift) or loc (launch-on-capture/broadside).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gobd/internal/atpg"
	"gobd/internal/bist"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/seq"
)

func main() {
	var (
		netlist   = flag.String("netlist", "", "gate-level netlist file (.bench = ISCAS-85, .v = structural Verilog, otherwise the internal/logic format)")
		fulladder = flag.Bool("fulladder", false, "use the built-in Fig. 8 full-adder sum circuit")
		randGates = flag.Int("random-gates", 0, "generate a seeded random primitive-gate circuit with this many gates")
		randIns   = flag.Int("random-inputs", 16, "primary input count for -random-gates")
		randFFs   = flag.Int("random-ffs", 0, "flip-flop count for -random-gates (makes the circuit sequential)")
		randSeed  = flag.Int64("random-seed", 1, "generator seed for -random-gates")
		model     = flag.String("model", "obd", "fault model: obd, transition, stuckat, ndetect, los, bist")
		style     = flag.String("style", "", "scan style for sequential circuits: enhanced, los, loc (lifts the netlist into its scan model and targets the combinational core's OBD universe)")
		nDetect   = flag.Int("n", 3, "detection multiplicity for -model ndetect")
		cycles    = flag.Int("cycles", 256, "stream length for -model bist")
		gradeOBD  = flag.Bool("grade-obd", false, "also grade the generated set against the OBD universe")
		prune     = flag.Bool("prune", false, "statically prove OBD faults untestable (netcheck) before running PODEM on them")
		satFB     = flag.Bool("sat-fallback", false, "resolve PODEM aborts with the exact SAT prover (model obd only)")
		maxBT     = flag.Int("max-backtracks", 0, "PODEM backtrack limit (0 = default); low limits force aborts, which -sat-fallback then resolves")
		outFile   = flag.String("o", "", "write the generated vector pairs to this file")
		applyFile = flag.String("apply", "", "skip generation: grade a saved vector-pair file against the OBD universe")
		verbose   = flag.Bool("v", false, "print every generated vector")
		workers   = flag.Int("workers", 0, "fault-simulation worker count (0 = GOMAXPROCS)")
		stats     = flag.Bool("stats", false, "print per-worker scheduler statistics on exit")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "obdatpg:", err)
		os.Exit(1)
	}
	sched := atpg.NewScheduler(*workers)
	sched.CollectStats = *stats
	atpg.SetDefaultScheduler(sched)
	if *stats {
		defer printStats(sched)
	}
	var lc *logic.Circuit
	switch {
	case *fulladder:
		lc = cells.FullAdderSumLogic()
	case *netlist != "":
		c, err := logic.ParseFile(*netlist)
		if err != nil {
			die(err)
		}
		lc = c
	case *randGates > 0:
		rng := rand.New(rand.NewSource(*randSeed))
		lc = logic.RandomCircuit(rng, logic.RandomOptions{Inputs: *randIns, Gates: *randGates, FFs: *randFFs, Primitive: true})
	default:
		die(fmt.Errorf("need -netlist FILE, -fulladder or -random-gates N"))
	}
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n",
		lc.Name, len(lc.Inputs), len(lc.Outputs), len(lc.Gates), lc.Depth())

	if *applyFile != "" {
		f, err := os.Open(*applyFile)
		if err != nil {
			die(err)
		}
		saved, err := atpg.ReadTests(f, lc)
		f.Close()
		if err != nil {
			die(err)
		}
		faults, _ := fault.OBDUniverse(lc)
		cov, err := atpg.GradeOBDParallel(lc, faults, saved)
		if err != nil {
			die(err)
		}
		fmt.Printf("applied %d saved pairs: OBD coverage %s\n", len(saved), cov)
		if *verbose {
			for _, u := range cov.Undetected {
				fmt.Println("  missed: " + u)
			}
		}
		return
	}

	var pairs []atpg.TwoPattern
	if *style != "" {
		st, err := seq.ParseStyle(*style)
		if err != nil {
			die(err)
		}
		s, err := seq.FromCircuit(lc)
		if err != nil {
			die(err)
		}
		fmt.Printf("scan model: %d flip-flops, %d primary inputs, core %d gates\n",
			len(s.FFs), len(s.PIs), len(s.Core.Gates))
		faults, skipped := fault.OBDUniverse(s.Core)
		if len(skipped) > 0 {
			fmt.Printf("note: %d composite gates carry no OBD faults\n", len(skipped))
		}
		res, err := seq.GenerateTests(s, faults, st, nil)
		if err != nil {
			die(err)
		}
		exact := ""
		if res.Exact {
			exact = " (exact)"
		}
		fmt.Printf("%s: generated %d pairs, coverage %s%s\n",
			st, len(res.Tests), res.Coverage, exact)
		if *verbose {
			for _, tp := range res.Tests {
				fmt.Println("  " + tp.StringFor(s.Core))
			}
		}
		// The tail flags (-grade-obd, -o) operate on core patterns.
		pairs = res.Tests
		lc = s.Core
	} else {
		switch *model {
		case "obd":
			faults, skipped := fault.OBDUniverse(lc)
			if len(skipped) > 0 {
				fmt.Printf("note: %d composite gates carry no OBD faults\n", len(skipped))
			}
			opt := atpg.DefaultOptions()
			opt.Prune = *prune
			if *maxBT > 0 {
				opt.MaxBacktracks = *maxBT
			}
			var satStats *atpg.SATStats
			if *satFB {
				opt.SATFallback = true
				satStats = &atpg.SATStats{}
				opt.SATStats = satStats
			}
			ts, err := atpg.GenerateOBDTests(lc, faults, opt)
			if err != nil {
				die(err)
			}
			pairs = ts.Tests
			report2(lc, ts, *verbose)
			if satStats != nil {
				fmt.Printf("sat fallback: %d aborts handed over, %d resolved detected, %d resolved untestable, %d undecided\n",
					satStats.Aborts, satStats.Detected, satStats.Untestable, satStats.Undecided)
			}
		case "ndetect":
			faults, _ := fault.OBDUniverse(lc)
			ts, err := atpg.GenerateNDetectOBDTests(lc, faults, *nDetect)
			if err != nil {
				die(err)
			}
			pairs = ts.Tests
			report2(lc, ts, *verbose)
		case "los":
			faults, _ := fault.OBDUniverse(lc)
			res, err := atpg.GenerateLOSTests(lc, faults, nil)
			if err != nil {
				die(err)
			}
			pairs = res.Tests
			exact := ""
			if res.Exact {
				exact = " (exact)"
			}
			fmt.Printf("generated %d launch-on-shift pairs, coverage %s%s\n",
				len(res.Tests), res.Coverage, exact)
			if *verbose {
				for _, tp := range res.Tests {
					fmt.Println("  " + tp.StringFor(lc))
				}
			}
		case "bist":
			faults, _ := fault.OBDUniverse(lc)
			s, err := bist.NewSession(lc, 0xACE1, *cycles)
			if err != nil {
				die(err)
			}
			golden, err := s.GoldenSignature()
			if err != nil {
				die(err)
			}
			results, err := s.RunFaults(faults, golden, sched)
			if err != nil {
				die(err)
			}
			detected, aliased := 0, 0
			for _, res := range results {
				if res.DetectedCycles > 0 {
					detected++
					if res.Aliased {
						aliased++
					}
				}
			}
			fmt.Printf("%d-cycle BIST (golden signature %04x): %d/%d detected, %d aliased\n",
				*cycles, golden, detected, len(faults), aliased)
			pairs = s.Pairs()
		case "transition":
			ts, err := atpg.GenerateTransitionTests(lc, fault.TransitionUniverse(lc), nil)
			if err != nil {
				die(err)
			}
			pairs = ts.Tests
			report2(lc, ts, *verbose)
		case "stuckat":
			ts, err := atpg.GenerateStuckAtTests(lc, fault.StuckAtUniverse(lc), nil)
			if err != nil {
				die(err)
			}
			fmt.Printf("generated %d patterns, coverage %s\n", len(ts.Tests), ts.Coverage)
			if *verbose {
				for _, p := range ts.Tests {
					fmt.Println("  " + p.KeyFor(lc))
				}
			}
			for i := 1; i < len(ts.Tests); i++ {
				pairs = append(pairs, atpg.TwoPattern{V1: ts.Tests[i-1], V2: ts.Tests[i]})
			}
		default:
			die(fmt.Errorf("unknown model %q", *model))
		}
	}
	if *gradeOBD {
		faults, _ := fault.OBDUniverse(lc)
		cov, err := atpg.GradeOBDParallel(lc, faults, pairs)
		if err != nil {
			die(err)
		}
		fmt.Printf("OBD universe coverage of this set: %s\n", cov)
		if *verbose {
			for _, f := range cov.Undetected {
				fmt.Println("  missed: " + f)
			}
		}
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			die(err)
		}
		err = atpg.WriteTests(f, lc, pairs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			die(err)
		}
		fmt.Printf("wrote %d pairs to %s\n", len(pairs), *outFile)
	}
}

func printStats(sched *atpg.Scheduler) {
	for _, ws := range sched.Stats() {
		fmt.Println("  " + ws.String())
	}
}

func report2(lc *logic.Circuit, ts *atpg.TestSet, verbose bool) {
	nUnt, nAb, nErr := 0, 0, 0
	for _, r := range ts.Results {
		switch r.Status {
		case atpg.Untestable:
			nUnt++
		case atpg.Aborted:
			nAb++
		case atpg.Errored:
			nErr++
		case atpg.Detected:
			// Reflected in len(ts.Tests) and the coverage figure.
		}
	}
	fmt.Printf("generated %d vector pairs, coverage %s (%d untestable, %d aborted, %d errored)\n",
		len(ts.Tests), ts.Coverage, nUnt, nAb, nErr)
	if verbose {
		for _, tp := range ts.Tests {
			fmt.Println("  " + tp.StringFor(lc))
		}
	}
}
