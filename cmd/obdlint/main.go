// Command obdlint runs the internal/netcheck static analyzer over
// gate-level netlists: structural lint diagnostics, implication-proved
// constant nets, OBD untestability verdicts with machine-checkable proof
// chains, and a SCOAP ranking of the hardest surviving faults.
//
// Examples:
//
//	obdlint -circuit fulladder
//	obdlint -netlist mydesign.net -json
//	obdlint -circuit fulladder -proofs
//	obdlint -circuit fulladder -sat
//	obdlint -circuit c17 -circuit rca4 -no-faults
//	obdlint -netlist s27.bench
//
// Sequential (DFF-bearing) netlists are linted whole — including
// scan-chain diagnostics like floating D pins and unobservable state
// bits — and then the fault-level passes run over the combinational core
// (state bits as pseudo-inputs, next-state functions as pseudo-outputs).
//
// The exit status is 2 when any circuit carries Error-severity
// diagnostics (a netlist Validate would refuse), 0 otherwise — warnings,
// constants and untestable faults are reported but do not fail the run,
// so redundant-by-design circuits like the paper's full adder stay green
// in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// circuitList collects repeatable -circuit flags.
type circuitList []string

func (c *circuitList) String() string     { return strings.Join(*c, ",") }
func (c *circuitList) Set(s string) error { *c = append(*c, s); return nil }

func main() {
	var circuits circuitList
	var (
		netlist  = flag.String("netlist", "", "netlist file (.v = structural Verilog, otherwise the internal/logic format)")
		jsonMode = flag.Bool("json", false, "emit the reports as a JSON array")
		noFaults = flag.Bool("no-faults", false, "skip the OBD untestability and hard-fault passes")
		proofs   = flag.Bool("proofs", false, "print the implication chains behind constants and refutations")
		topHard  = flag.Int("top", 10, "hard-fault ranking length (0 = all)")
		exact    = flag.Bool("sat", false, "run the exact SAT prover: complete testable/untestable verdicts with witnesses and RUP proofs")
	)
	flag.Var(&circuits, "circuit", "built-in circuit (fulladder, c17, mux41, rca<N>, parity<N>); repeatable")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "obdlint:", err)
		os.Exit(1)
	}

	var targets []*logic.Circuit
	for _, name := range circuits {
		c, err := builtin(name)
		if err != nil {
			die(err)
		}
		targets = append(targets, c)
	}
	if *netlist != "" {
		f, err := os.Open(*netlist)
		if err != nil {
			die(err)
		}
		var c *logic.Circuit
		if strings.HasSuffix(*netlist, ".v") {
			c, err = logic.ParseVerilog(f)
		} else if strings.HasSuffix(*netlist, ".bench") {
			c, err = logic.ParseBench(f)
		} else {
			// Lenient: structurally broken circuits are exactly what the
			// lint passes are for; only line-level syntax errors die here.
			c, err = logic.ParseLenient(f)
		}
		f.Close()
		if err != nil {
			die(err)
		}
		targets = append(targets, c)
	}
	if len(targets) == 0 {
		die(fmt.Errorf("need -netlist FILE or -circuit NAME"))
	}

	var reports []*netcheck.Report
	for _, c := range targets {
		reports = append(reports, netcheck.Analyze(c, netcheck.Options{
			SkipFaults: *noFaults,
			TopHard:    *topHard,
			Exact:      *exact,
		}))
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			die(err)
		}
	} else {
		for _, r := range reports {
			printReport(r, *proofs)
		}
	}
	for _, r := range reports {
		if r.Errors() > 0 {
			os.Exit(2)
		}
	}
}

// builtin resolves a named bench circuit, with numeric suffixes for the
// parameterized families.
func builtin(name string) (*logic.Circuit, error) {
	switch name {
	case "fulladder":
		return cells.FullAdderSumLogic(), nil
	case "c17":
		return logic.C17(), nil
	case "mux41":
		return logic.Mux41(), nil
	}
	if s, ok := strings.CutPrefix(name, "rca"); ok {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return logic.RippleCarryAdder(n), nil
		}
	}
	if s, ok := strings.CutPrefix(name, "parity"); ok {
		if n, err := strconv.Atoi(s); err == nil && n >= 2 {
			return logic.ParityTree(n), nil
		}
	}
	return nil, fmt.Errorf("unknown circuit %q (want fulladder, c17, mux41, rca<N>, parity<N>)", name)
}

func printReport(r *netcheck.Report, proofs bool) {
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates\n",
		r.Circuit, r.Inputs, r.Outputs, r.Gates)
	if r.FFs > 0 {
		fmt.Printf("  sequential: %d flip-flops; fault passes ran on the combinational core\n", r.FFs)
	}
	for _, d := range r.Diagnostics {
		fmt.Printf("  %s\n", d)
	}
	if proofs {
		for _, k := range r.Constants {
			fmt.Printf("  proof of %s=%v:\n", k.Net, k.Val)
			printProof(k.Proof)
		}
	}
	if r.Verdicts != nil {
		n := r.UntestableCount()
		fmt.Printf("  OBD universe: %d faults, %d proved untestable (%.1f%%)\n",
			len(r.Verdicts), n, 100*float64(n)/float64(max(len(r.Verdicts), 1)))
		for _, v := range r.Verdicts {
			if !v.Untestable {
				continue
			}
			detail := string(v.Reason)
			if len(v.Dominators) > 0 {
				detail += " (dominators: " + strings.Join(v.Dominators, ", ") + ")"
			}
			fmt.Printf("    untestable %s: %s\n", v.Fault, detail)
			if proofs {
				for _, p := range v.Pairs {
					if p.PinConflict {
						fmt.Printf("      pair %s frame %d: tied-net pin conflict\n", p.Pair, p.Frame)
						continue
					}
					fmt.Printf("      pair %s frame %d:\n", p.Pair, p.Frame)
					printProof(p.Proof)
				}
			}
		}
	}
	if r.Exact != nil {
		fmt.Printf("  exact: %d faults, %d testable, %d untestable, %d aborted\n",
			r.Exact.Faults, r.Exact.Testable, r.Exact.Untestable, r.Exact.Aborted)
		for _, v := range r.Exact.Verdicts {
			switch {
			case v.Aborted:
				fmt.Printf("    aborted %s (conflict budget exhausted)\n", v.Fault)
			case v.Testable:
				if proofs {
					fmt.Printf("    testable %s: witness pair %s\n", v.Fault, v.Witness.Pair)
				}
			default:
				fmt.Printf("    untestable %s: %s (%d pair refutations)\n", v.Fault, v.Reason, len(v.Pairs))
			}
		}
	}
	if len(r.HardFaults) > 0 {
		fmt.Printf("  hardest surviving faults (SCOAP cost = CC + CO):\n")
		for i, h := range r.HardFaults {
			fmt.Printf("    %2d. %-14s cost %3d (cc %d, co %d) cheapest pair %s\n",
				i+1, h.Fault, h.Cost, h.CC, h.CO, h.Pair)
		}
	}
}

func printProof(p netcheck.Proof) {
	for _, s := range p {
		fmt.Printf("        %s\n", s)
	}
}
