// obdmission runs a deterministic concurrent-test mission: a seeded
// population of chips develops OBD defects at random times, and the
// periodic BIST/diagnose/repair policy of the paper must catch each one
// before hard breakdown. Adversity profiles inject skipped and late test
// intervals, transient signature-capture misses (with bounded backoff),
// diagnosis ambiguity cost, and finite repair resources.
//
// Examples:
//
//	obdmission -circuit fulladder -chips 100 -duration 135h
//	obdmission -chips 500 -inject heavy -workers 8 -json
//	obdmission -inject miss=0.1,retries=4,spares=1 -period 6h
//	obdmission -chips 100000 -timeout 2s   # deadline cuts a clean prefix
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/mission"
)

var (
	circuitName = flag.String("circuit", "fulladder", "circuit under test: fulladder, c17, mux41, or a netlist file")
	seed        = flag.Uint64("seed", 1, "campaign seed; same seed, same report, any worker count")
	chips       = flag.Int("chips", 100, "chip population size")
	duration    = flag.Duration("duration", 135*time.Hour, "mission length in simulated time")
	period      = flag.Duration("period", 0, "test interval in simulated time; 0 derives the max safe period from the observability window")
	inject      = flag.String("inject", "off", "adversity profile: off, light, heavy, or key=value list (skip, late, latefrac, miss, retries, backoff, diagtime, repairtime, spares)")
	rate        = flag.Float64("rate", 3, "expected defect initiations per chip (Poisson)")
	cycles      = flag.Int("cycles", 64, "BIST stream length per test interval")
	workers     = flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS")
	timeout     = flag.Duration("timeout", 0, "wall-clock deadline for the run; 0 = none")
	jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	perChip     = flag.Bool("perchip", false, "include per-chip results in the report")
	undet       = flag.Bool("undetectable", false, "also inject BIST-undetectable sites (reported as structural escapes)")
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "obdmission:", err)
	os.Exit(1)
}

func loadCircuit(name string) (*logic.Circuit, error) {
	switch name {
	case "fulladder":
		return cells.FullAdderSumLogic(), nil
	case "c17":
		return logic.C17(), nil
	case "mux41":
		return logic.Mux41(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logic.Parse(f)
}

func main() {
	flag.Parse()
	lc, err := loadCircuit(*circuitName)
	if err != nil {
		die(err)
	}
	adv, err := mission.ParseAdversity(*inject)
	if err != nil {
		die(err)
	}
	m, err := mission.New(mission.Config{
		Circuit:             lc,
		Seed:                *seed,
		Chips:               *chips,
		Duration:            duration.Seconds(),
		Period:              period.Seconds(),
		FaultRate:           *rate,
		BISTCycles:          *cycles,
		Adversity:           adv,
		IncludeUndetectable: *undet,
		RecordPerChip:       *perChip,
		Scheduler:           atpg.NewScheduler(*workers),
	})
	if err != nil {
		die(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, runErr := m.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.DeadlineExceeded) && !errors.Is(runErr, context.Canceled) {
		die(runErr)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			die(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Format())
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "obdmission: run cut short: %v (report covers the committed prefix)\n", runErr)
		os.Exit(2)
	}
	if len(rep.Failed) > 0 {
		os.Exit(3)
	}
}
