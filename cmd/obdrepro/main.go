// Command obdrepro regenerates every data table and figure of the paper
// and prints them in a paper-like text layout, together with the shape
// checks EXPERIMENTS.md records. With no flags it runs everything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/exper"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// experiment couples a name with a runner returning formatted output and
// shape-check violations.
type experiment struct {
	name string
	desc string
	run  func(p *spice.Process) (string, []string, error)
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table 1: NAND OBD progression delays", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunTable1(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"fig4", "Figure 4: inverter VTC under NMOS OBD", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunFigure4(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"fig6", "Figure 6: NMOS OBD progression transients", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunFigure6(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"fig7", "Figure 7: input-specific PMOS OBD detection", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunFigure7(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"fig9", "Figure 9: full-adder fault propagation", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunFigure9(p, obd.MBD2)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"sets", "Sections 4.1/5: excitation sets and minimal covers", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunExcitationSets()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"fulladder", "Section 4.3: full-adder OBD census and ATPG", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunFullAdderCounts()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"gap", "Coverage gap: traditional TPG vs OBD-aware ATPG", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunCoverageGap("fulladder_sum", cells.FullAdderSumLogic())
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"em", "Section 5: EM vs OBD excitation sets", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunEMComparison()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"window", "Section 4.2: detection window and test scheduling", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunDetectionWindow(p, 9)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"validate", "Analog cross-validation of the excitation rule (NAND/NOR/AOI21)", func(p *spice.Process) (string, []string, error) {
			var out strings.Builder
			var bad []string
			for _, tc := range []struct {
				typ   logic.GateType
				arity int
			}{{logic.Nand, 2}, {logic.Nor, 2}, {logic.Aoi21, 3}} {
				v, err := exper.RunRuleValidation(p, tc.typ, tc.arity, obd.MBD2)
				if err != nil {
					return "", nil, err
				}
				out.WriteString(v.Format())
				bad = append(bad, v.Check()...)
			}
			return out.String(), bad, nil
		}},
		{"iddq", "IDDQ elevation per stage and input state", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunIDDQ(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"capture", "Section 4.2: coverage vs capture time (timing simulator)", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunCaptureSweep(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"scan", "Section 5 DFT: enhanced scan vs launch-on-shift", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunScanComparison()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"gapsuite", "Coverage gap across the benchmark circuit suite", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunGapSuite()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"seqmodes", "Section 5 (sequential): scan-mode OBD coverage", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunSeqModes()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"diagnosis", "Fault-dictionary diagnosis resolution", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunDiagnosis()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"concurrent", "Concurrent-testing race over the defect lifetime", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunConcurrentSim(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"ndetect", "n-detect hardening: set size, diagnosis, double defects", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunNDetect()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"guidance", "ATPG guidance ablation: SCOAP-steered vs unguided PODEM", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunATPGGuidance()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"profile", "Detection-probability profile (random resistance)", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunDetectProfile()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"bist", "BIST: LFSR/MISR self-test coverage and aliasing", func(*spice.Process) (string, []string, error) {
			r, err := exper.RunBIST()
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"nortable", "Section 5 extension: NOR OBD progression table", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunNORTable(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"energy", "Supply charge and static power per breakdown stage", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunEnergy(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"robustness", "Table 1 orderings across supply corners", func(p *spice.Process) (string, []string, error) {
			r, err := exper.RunSupplyRobustness(p)
			if err != nil {
				return "", nil, err
			}
			return r.Format(), r.Check(), nil
		}},
		{"ablations", "Ablations: network factors, driving style, injection", func(p *spice.Process) (string, []string, error) {
			var out strings.Builder
			var bad []string
			n, err := exper.RunAblationNetwork(p)
			if err != nil {
				return "", nil, err
			}
			out.WriteString(n.Format())
			bad = append(bad, n.Check()...)
			d, err := exper.RunAblationDriver(p)
			if err != nil {
				return "", nil, err
			}
			out.WriteString(d.Format())
			bad = append(bad, d.Check()...)
			i, err := exper.RunAblationInjection(p)
			if err != nil {
				return "", nil, err
			}
			out.WriteString(i.Format())
			bad = append(bad, i.Check()...)
			return out.String(), bad, nil
		}},
	}
}

// writeArtifacts regenerates the data figures and writes machine-readable
// artifacts (CSV curves, a VCD trace, a SPICE deck) into dir.
func writeArtifacts(dir string, p *spice.Process) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	// Figure 4: VTC curves per stage on a shared input axis.
	f4, err := exper.RunFigure4(p)
	if err != nil {
		return err
	}
	var f4Series []*waveform.Series
	for _, st := range f4.Stages {
		f4Series = append(f4Series, waveform.MustNew(st.String(), f4.In, f4.Curves[st]))
	}
	if err := write("fig4_vtc.csv", waveform.CSV(f4Series...)); err != nil {
		return err
	}
	// Figure 6: per-stage output waveforms.
	f6, err := exper.RunFigure6(p)
	if err != nil {
		return err
	}
	var f6Series []*waveform.Series
	for _, st := range f6.Stages {
		f6Series = append(f6Series, f6.Waves[st])
	}
	if err := write("fig6_progression.csv", waveform.CSV(f6Series...)); err != nil {
		return err
	}
	// Figure 7: the 2×2 PMOS specificity waveforms.
	f7, err := exper.RunFigure7(p)
	if err != nil {
		return err
	}
	var f7Series []*waveform.Series
	for _, name := range []string{"PA", "PB"} {
		for _, seq := range []string{"(11,01)", "(11,10)"} {
			f7Series = append(f7Series, f7.Waves[name][seq])
		}
	}
	if err := write("fig7_pmos.csv", waveform.CSV(f7Series...)); err != nil {
		return err
	}
	// Figure 9: golden vs faulty sum waveforms per injected transistor.
	f9, err := exper.RunFigure9(p, obd.MBD2)
	if err != nil {
		return err
	}
	for _, cse := range f9.Cases {
		golden := *cse.WaveGolden
		golden.Name = "golden"
		faulty := *cse.Wave
		faulty.Name = "faulty"
		name := "fig9_" + strings.ReplaceAll(strings.ToLower(cse.Fault), " ", "_") + ".csv"
		if err := write(name, waveform.CSV(&golden, &faulty)); err != nil {
			return err
		}
	}
	// A gate-level timing trace of the full adder as VCD.
	lc := cells.FullAdderSumLogic()
	sim, err := timing.New(lc, nil)
	if err != nil {
		return err
	}
	v1 := atpg.Pattern{"A": logic.One, "B": logic.One, "C": logic.Zero}
	v2 := atpg.Pattern{"A": logic.One, "B": logic.One, "C": logic.One}
	tr, err := sim.Run(v1, v2, nil)
	if err != nil {
		return err
	}
	if err := write("fulladder_timing.vcd", timing.VCD(tr, "fulladder_sum")); err != nil {
		return err
	}
	// The Fig. 5 harness as a SPICE deck.
	h := cells.NewNANDHarness(p, 2)
	obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.MBD2)
	return write("fig5_harness.cir", spice.Netlist(h.B.C))
}

// jsonResult is one experiment's machine-readable summary (-json).
type jsonResult struct {
	Name       string   `json:"name"`
	Desc       string   `json:"description"`
	OK         bool     `json:"ok"`
	Violations []string `json:"violations,omitempty"`
	Error      string   `json:"error,omitempty"`
	Seconds    float64  `json:"seconds"`
}

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment to run (all, or comma-separated names)")
		list     = flag.Bool("list", false, "list experiment names and exit")
		outDir   = flag.String("out", "", "also write CSV/VCD/SPICE artifacts for the data figures into this directory")
		jsonMode = flag.Bool("json", false, "emit a JSON summary instead of the paper-style text")
		workers  = flag.Int("workers", 0, "fault-simulation worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	atpg.SetDefaultWorkers(*workers)
	if *outDir != "" {
		if err := writeArtifacts(*outDir, spice.Default350()); err != nil {
			fmt.Fprintf(os.Stderr, "obdrepro: artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *which != "all" {
		for _, n := range strings.Split(*which, ",") {
			n = strings.TrimSpace(n)
			want[n] = true
			found := false
			for _, e := range exps {
				if e.name == n {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "obdrepro: unknown experiment %q (use -list)\n", n)
				os.Exit(2)
			}
		}
	}
	p := spice.Default350()
	failures := 0
	var summary []jsonResult
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now() //obdcheck:allow timenow — per-experiment wall-clock timing is progress reporting, never a result
		out, bad, err := e.run(p)
		elapsed := time.Since(start).Seconds()
		res := jsonResult{Name: e.name, Desc: e.desc, OK: err == nil && len(bad) == 0, Violations: bad, Seconds: elapsed}
		if err != nil {
			res.Error = err.Error()
		}
		summary = append(summary, res)
		if !res.OK {
			failures++
		}
		if *jsonMode {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obdrepro: %s failed: %v\n", e.name, err)
			continue
		}
		fmt.Print(out)
		if len(bad) == 0 {
			fmt.Println("shape check: OK")
		} else {
			fmt.Println("shape check: VIOLATIONS")
			for _, b := range bad {
				fmt.Println("  - " + b)
			}
		}
		fmt.Println()
	}
	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintln(os.Stderr, "obdrepro:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
