// Command obdserve runs the HTTP/JSON grading service: the repository's
// deterministic compute core (OBD/transition/stuck-at grading, ATPG,
// static netlist analysis, mission campaigns) behind versioned /v1/*
// endpoints with a result cache, single-flight coalescing and bounded
// backpressure. See README.md "Serving" and DESIGN.md §10.
//
// Examples:
//
//	obdserve -addr :8080
//	obdserve -addr :8080 -workers 4 -queue 8 -cache 512 -timeout 30s
//	obdserve -addr localhost:6060 -pprof
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobd/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "scheduler worker count per request (0 = GOMAXPROCS; changes speed, never results)")
		queue   = flag.Int("queue", 0, "max concurrently admitted computations before 429 (0 = 2x GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "result cache entries (0 = 256, negative disables)")
		timeout = flag.Duration("timeout", 0, "per-request compute deadline (0 = 60s)")
		body    = flag.Int64("max-body", 0, "max request body bytes (0 = 8 MiB)")
		pprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown budget before in-flight work is cancelled")
		dataDir = flag.String("data", "", "durable data directory: enables the crash-safe artifact store and /v1/jobs (empty = in-memory only)")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		MaxInFlight:    *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *body,
		EnablePprof:    *pprof,
		DataDir:        *dataDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "obdserve:", err)
		os.Exit(1)
	}
	// Publish the counters on the process-global expvar map exactly once
	// (the serve package keeps them instance-scoped so tests can build
	// servers freely).
	expvar.Publish("obdserve", expvar.Func(func() any { return srv.Snapshot() }))

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "obdserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "obdserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: flip /healthz to draining, stop accepting, let
	// admitted computations finish inside the budget, checkpoint the job
	// runtime, then cancel whatever is left. A job interrupted here is
	// journaled back to queued and resumes losslessly on restart.
	fmt.Fprintf(os.Stderr, "obdserve: draining (budget %s)\n", *drain)
	srv.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	if derr := srv.DrainJobs(shutCtx); derr != nil {
		fmt.Fprintln(os.Stderr, "obdserve:", derr)
	}
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "obdserve:", err)
		os.Exit(1)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		hs.Close() //nolint:errcheck // force-close after drain budget
		fmt.Fprintln(os.Stderr, "obdserve: drain budget exceeded; in-flight work cancelled")
	}
	fmt.Fprintln(os.Stderr, "obdserve: bye")
}
