// Command obdsim runs OBD experiments on a driven-gate harness (the
// paper's Fig. 5 NAND set-up, or its NOR dual): inject a breakdown at a
// chosen transistor and stage, apply an input sequence, and print the
// measured delay (and optionally waveforms or the SPICE deck). Comma
// lists in -fault and -stage sweep every combination across the
// deterministic scheduler pool, like obdatpg and obdrepro.
//
// Examples:
//
//	obdsim -fault PB -stage MBD2 -seq "(11,10)" -plot
//	obdsim -cell nor -fault NB -stage MBD1 -seq "(00,01)"
//	obdsim -fault NA -stage HBD -deck
//	obdsim -fault NA,NB,PA,PB -stage MBD1,MBD2,MBD3,HBD -workers 4 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/exper"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// gradeNetlist is the gate-level companion of the analog sweep: load a
// netlist, enumerate its OBD fault universe and fault-simulate a seeded
// random complete two-pattern set with the levelized event-driven engine.
func gradeNetlist(path string, pairs int, seed int64, workers int, jsonOut bool) error {
	c, err := logic.ParseFile(path)
	if err != nil {
		return err
	}
	faults, skipped := fault.OBDUniverse(c)
	rng := rand.New(rand.NewSource(seed))
	pattern := func() atpg.Pattern {
		p := make(atpg.Pattern, len(c.Inputs))
		for _, in := range c.Inputs {
			p[in] = logic.FromBool(rng.Intn(2) == 1)
		}
		return p
	}
	tests := make([]atpg.TwoPattern, pairs)
	for i := range tests {
		tests[i] = atpg.TwoPattern{V1: pattern(), V2: pattern()}
	}
	cov, err := atpg.NewScheduler(workers).GradeOBD(c, faults, tests)
	if err != nil {
		return err
	}
	if jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Circuit  string  `json:"circuit"`
			Gates    int     `json:"gates"`
			Faults   int     `json:"faults"`
			Skipped  int     `json:"skipped_gates"`
			Pairs    int     `json:"pairs"`
			Seed     int64   `json:"seed"`
			Detected int     `json:"detected"`
			Ratio    float64 `json:"ratio"`
		}{path, len(c.Gates), len(faults), len(skipped), len(tests), seed, cov.Detected, cov.Ratio()})
	}
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n",
		path, len(c.Inputs), len(c.Outputs), len(c.Gates), c.Depth())
	fmt.Printf("OBD universe: %d faults (%d gates without transistor networks)\n",
		len(faults), len(skipped))
	fmt.Printf("graded %d random pairs (seed %d): coverage %s\n", len(tests), seed, cov)
	return nil
}

func parseFault(s string) (fault.Side, int, error) {
	switch strings.ToUpper(s) {
	case "NA":
		return fault.PullDown, 0, nil
	case "NB":
		return fault.PullDown, 1, nil
	case "PA":
		return fault.PullUp, 0, nil
	case "PB":
		return fault.PullUp, 1, nil
	default:
		return 0, 0, fmt.Errorf("unknown fault %q (want NA, NB, PA or PB)", s)
	}
}

func parseStage(s string) (obd.Stage, error) {
	for _, st := range obd.Stages() {
		if strings.EqualFold(st.String(), s) {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown stage %q (want FaultFree, MBD1, MBD2, MBD3 or HBD)", s)
}

// combo is one experiment of the sweep.
type combo struct {
	faultName string
	side      fault.Side
	input     int
	stage     obd.Stage
}

// result is one experiment's outcome (the -json document element).
type result struct {
	Cell     string  `json:"cell"`
	Fault    string  `json:"fault"`
	Stage    string  `json:"stage"`
	Sequence string  `json:"sequence"`
	Kind     string  `json:"kind"`
	DelayPS  float64 `json:"delay_ps,omitempty"`
}

func main() {
	var (
		cellName  = flag.String("cell", "nand", "device under test: nand or nor")
		faultName = flag.String("fault", "NA", "defective transistor(s): comma list of NA, NB, PA, PB")
		stageName = flag.String("stage", "MBD2", "breakdown stage(s): comma list of FaultFree, MBD1, MBD2, MBD3, HBD")
		seq       = flag.String("seq", "(01,11)", "input sequence in paper notation")
		plot      = flag.Bool("plot", false, "print an ASCII plot of the output waveform (single experiment only)")
		csv       = flag.Bool("csv", false, "print the input/output waveforms as CSV (single experiment only)")
		chain     = flag.Int("chain", 2, "NAND only: driver inverter stages (even; 0 = ideal sources)")
		deck      = flag.Bool("deck", false, "also print the injected circuit as a SPICE deck (single experiment only)")
		jsonOut   = flag.Bool("json", false, "print results as a JSON array")
		workers   = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS; changes speed, never results)")
		netlist   = flag.String("netlist", "", "gate-level grading mode: fault-simulate random pairs against FILE's OBD universe (.bench, .v or the internal format)")
		pairCount = flag.Int("pairs", 256, "gate-level mode: number of seeded random complete vector pairs")
		pairSeed  = flag.Int64("pattern-seed", 1, "gate-level mode: pattern RNG seed")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "obdsim:", err)
		os.Exit(1)
	}
	if *netlist != "" {
		if err := gradeNetlist(*netlist, *pairCount, *pairSeed, *workers, *jsonOut); err != nil {
			die(err)
		}
		return
	}
	cell := strings.ToLower(*cellName)
	if cell != "nand" && cell != "nor" {
		die(fmt.Errorf("unknown cell %q (want nand or nor)", *cellName))
	}
	pr, err := fault.ParsePair(*seq)
	if err != nil {
		die(err)
	}
	if len(pr.V1) != 2 {
		die(fmt.Errorf("sequence must have two inputs, got %s", pr))
	}

	// Expand the sweep: every fault × every stage, in flag order.
	var combos []combo
	for _, fs := range strings.Split(*faultName, ",") {
		side, input, err := parseFault(strings.TrimSpace(fs))
		if err != nil {
			die(err)
		}
		for _, ss := range strings.Split(*stageName, ",") {
			stage, err := parseStage(strings.TrimSpace(ss))
			if err != nil {
				die(err)
			}
			combos = append(combos, combo{faultName: strings.ToUpper(strings.TrimSpace(fs)), side: side, input: input, stage: stage})
		}
	}
	single := len(combos) == 1
	if !single && (*plot || *csv || *deck) {
		die(fmt.Errorf("-plot, -csv and -deck need a single fault/stage combination, got %d", len(combos)))
	}

	p := spice.Default350()
	// Each experiment elaborates its own harness, so the sweep shards
	// cleanly over the scheduler's deterministic index-slot pool: slot i
	// always holds combo i regardless of worker count.
	results := make([]result, len(combos))
	decks := make([]string, len(combos))
	plots := make([]string, len(combos))
	csvs := make([]string, len(combos))
	sched := atpg.NewScheduler(*workers)
	rep := sched.ForEachCtx(context.Background(), len(combos), func(i int) error {
		cb := combos[i]
		var (
			ckt        *spice.Circuit
			outputNode string
			inputNode  func(int) string
			res        *spice.TranResult
			m          waveform.DelayMeasurement
			err        error // shadows main's err: workers must not share it
		)
		switch cell {
		case "nand":
			h := cells.NewNANDHarness(p, *chain)
			obd.Inject(h.B.C, "f", h.FETFor(cb.side, cb.input), cb.stage)
			h.Apply(pr, exper.TSwitch, exper.TEdge)
			ckt, outputNode, inputNode = h.B.C, h.OutputNode(), h.InputNode
			if res, err = h.Run(exper.TStop, exper.TStep); err != nil {
				return err
			}
			if m, err = h.Measure(res, pr, exper.TSwitch, exper.TEdge); err != nil {
				return err
			}
		case "nor":
			h, err := cells.NewGateHarness(p, logic.Nor, 2)
			if err != nil {
				return err
			}
			obd.Inject(h.B.C, "f", h.FETFor(cb.side, cb.input), cb.stage)
			if err := h.Apply(pr, exper.TSwitch, exper.TEdge); err != nil {
				return err
			}
			ckt, outputNode = h.B.C, h.OutputNode()
			inputNode = func(i int) string { return fmt.Sprintf("drv%db", i) }
			if res, err = h.Run(exper.TStop, exper.TStep); err != nil {
				return err
			}
			if m, err = h.Measure(res, pr, exper.TSwitch, exper.TEdge); err != nil {
				return err
			}
		}
		r := result{
			Cell:     strings.ToUpper(cell),
			Fault:    cb.faultName,
			Stage:    cb.stage.String(),
			Sequence: pr.String(),
			Kind:     m.Kind.String(),
		}
		if m.Kind == waveform.TransitionOK {
			r.DelayPS = m.Delay * 1e12
		}
		results[i] = r
		out := waveform.MustNew("out", res.Times, res.V(outputNode))
		if *plot {
			inA := waveform.MustNew("inA", res.Times, res.V(inputNode(0)))
			inB := waveform.MustNew("inB", res.Times, res.V(inputNode(1)))
			plots[i] = waveform.ASCIIPlot(inA, 8, 72) + waveform.ASCIIPlot(inB, 8, 72) + waveform.ASCIIPlot(out, 8, 72)
		}
		if *csv {
			inA := waveform.MustNew("inA", res.Times, res.V(inputNode(0)))
			inB := waveform.MustNew("inB", res.Times, res.V(inputNode(1)))
			csvs[i] = waveform.CSV(inA, inB, out)
		}
		if *deck {
			decks[i] = spice.Netlist(ckt)
		}
		return nil
	})
	if err := rep.AsError(); err != nil {
		die(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			die(err)
		}
	} else {
		for _, r := range results {
			fmt.Printf("%s fault %s at %s, sequence %s: ", r.Cell, r.Fault, r.Stage, r.Sequence)
			if r.Kind == waveform.TransitionOK.String() {
				fmt.Printf("delay %.1f ps\n", r.DelayPS)
			} else {
				fmt.Printf("%s (no transition within %.0f ns)\n", r.Kind, exper.TStop*1e9)
			}
		}
	}
	if single {
		fmt.Print(plots[0])
		fmt.Print(csvs[0])
		fmt.Print(decks[0])
	}
}
