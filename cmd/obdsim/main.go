// Command obdsim runs a single OBD experiment on a driven-gate harness
// (the paper's Fig. 5 NAND set-up, or its NOR dual): inject a breakdown at
// a chosen transistor and stage, apply an input sequence, and print the
// measured delay (and optionally waveforms or the SPICE deck).
//
// Examples:
//
//	obdsim -fault PB -stage MBD2 -seq "(11,10)" -plot
//	obdsim -cell nor -fault NB -stage MBD1 -seq "(00,01)"
//	obdsim -fault NA -stage HBD -deck
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/exper"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

func parseFault(s string) (fault.Side, int, error) {
	switch strings.ToUpper(s) {
	case "NA":
		return fault.PullDown, 0, nil
	case "NB":
		return fault.PullDown, 1, nil
	case "PA":
		return fault.PullUp, 0, nil
	case "PB":
		return fault.PullUp, 1, nil
	default:
		return 0, 0, fmt.Errorf("unknown fault %q (want NA, NB, PA or PB)", s)
	}
}

func parseStage(s string) (obd.Stage, error) {
	for _, st := range obd.Stages() {
		if strings.EqualFold(st.String(), s) {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown stage %q (want FaultFree, MBD1, MBD2, MBD3 or HBD)", s)
}

func main() {
	var (
		cellName  = flag.String("cell", "nand", "device under test: nand or nor")
		faultName = flag.String("fault", "NA", "defective transistor: NA, NB, PA or PB")
		stageName = flag.String("stage", "MBD2", "breakdown stage: FaultFree, MBD1, MBD2, MBD3, HBD")
		seq       = flag.String("seq", "(01,11)", "input sequence in paper notation")
		plot      = flag.Bool("plot", false, "print an ASCII plot of the output waveform")
		csv       = flag.Bool("csv", false, "print the input/output waveforms as CSV")
		chain     = flag.Int("chain", 2, "NAND only: driver inverter stages (even; 0 = ideal sources)")
		deck      = flag.Bool("deck", false, "also print the injected circuit as a SPICE deck")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "obdsim:", err)
		os.Exit(1)
	}
	side, input, err := parseFault(*faultName)
	if err != nil {
		die(err)
	}
	stage, err := parseStage(*stageName)
	if err != nil {
		die(err)
	}
	pr, err := fault.ParsePair(*seq)
	if err != nil {
		die(err)
	}
	if len(pr.V1) != 2 {
		die(fmt.Errorf("sequence must have two inputs, got %s", pr))
	}
	p := spice.Default350()

	// Harness access points, unified over the two DUT kinds.
	var (
		ckt        *spice.Circuit
		outputNode string
		inputNode  func(int) string
		run        func() (*spice.TranResult, error)
		measure    func(*spice.TranResult) (waveform.DelayMeasurement, error)
	)
	switch strings.ToLower(*cellName) {
	case "nand":
		h := cells.NewNANDHarness(p, *chain)
		obd.Inject(h.B.C, "f", h.FETFor(side, input), stage)
		h.Apply(pr, exper.TSwitch, exper.TEdge)
		ckt, outputNode, inputNode = h.B.C, h.OutputNode(), h.InputNode
		run = func() (*spice.TranResult, error) { return h.Run(exper.TStop, exper.TStep) }
		measure = func(r *spice.TranResult) (waveform.DelayMeasurement, error) {
			return h.Measure(r, pr, exper.TSwitch, exper.TEdge)
		}
	case "nor":
		h, err := cells.NewGateHarness(p, logic.Nor, 2)
		if err != nil {
			die(err)
		}
		obd.Inject(h.B.C, "f", h.FETFor(side, input), stage)
		if err := h.Apply(pr, exper.TSwitch, exper.TEdge); err != nil {
			die(err)
		}
		ckt, outputNode = h.B.C, h.OutputNode()
		inputNode = func(i int) string { return fmt.Sprintf("drv%db", i) }
		run = func() (*spice.TranResult, error) { return h.Run(exper.TStop, exper.TStep) }
		measure = func(r *spice.TranResult) (waveform.DelayMeasurement, error) {
			return h.Measure(r, pr, exper.TSwitch, exper.TEdge)
		}
	default:
		die(fmt.Errorf("unknown cell %q (want nand or nor)", *cellName))
	}

	res, err := run()
	if err != nil {
		die(err)
	}
	m, err := measure(res)
	if err != nil {
		die(err)
	}
	fmt.Printf("%s fault %s at %v, sequence %s: ", strings.ToUpper(*cellName), strings.ToUpper(*faultName), stage, pr)
	if m.Kind == waveform.TransitionOK {
		fmt.Printf("delay %.1f ps\n", m.Delay*1e12)
	} else {
		fmt.Printf("%v (no transition within %.0f ns)\n", m.Kind, exper.TStop*1e9)
	}
	out := waveform.MustNew("out", res.Times, res.V(outputNode))
	if *plot {
		inA := waveform.MustNew("inA", res.Times, res.V(inputNode(0)))
		inB := waveform.MustNew("inB", res.Times, res.V(inputNode(1)))
		fmt.Print(waveform.ASCIIPlot(inA, 8, 72))
		fmt.Print(waveform.ASCIIPlot(inB, 8, 72))
		fmt.Print(waveform.ASCIIPlot(out, 8, 72))
	}
	if *csv {
		inA := waveform.MustNew("inA", res.Times, res.V(inputNode(0)))
		inB := waveform.MustNew("inB", res.Times, res.V(inputNode(1)))
		fmt.Print(waveform.CSV(inA, inB, out))
	}
	if *deck {
		fmt.Print(spice.Netlist(ckt))
	}
}
