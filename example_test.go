package gobd_test

import (
	"fmt"
	"sort"

	"gobd"
)

// Example reproduces the paper's core testing insight in a few lines of
// public API: the NAND gate's four OBD defects need three specific input
// sequences — two of which no transition-fault generator is forced to
// pick.
func Example() {
	c, _ := gobd.ParseNetlist("circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	faults, _ := gobd.OBDUniverse(c)
	ts := must(gobd.GenerateOBDTests(c, faults, nil))
	var vecs []string
	for _, tp := range ts.Tests {
		vecs = append(vecs, tp.StringFor(c))
	}
	sort.Strings(vecs)
	fmt.Println("coverage:", ts.Coverage)
	fmt.Println("vectors: ", vecs)
	// Output:
	// coverage: 4/4 (100.0%)
	// vectors:  [(00,11) (11,01) (11,10)]
}

// ExampleMinimalPairCover derives the paper's Section 5 result for NOR.
func ExampleMinimalPairCover() {
	cover, _ := gobd.MinimalPairCover(gobd.C17().Gates[0].Type, 2) // a NAND
	fmt.Println(len(cover), "sequences cover all four NAND OBD defects")
	// Output:
	// 3 sequences cover all four NAND OBD defects
}
