// Coverage gap: the paper's central testing claim, demonstrated on two
// circuits — the built-in full adder and a small user-supplied netlist.
// Complete stuck-at and transition-fault test sets are generated with the
// traditional (input-insensitive) algorithms and then graded against the
// OBD fault universe; the OBD-aware generator closes the gap.
package main

import (
	"fmt"
	"log"

	"gobd"
)

// A small carry-select-style slice in the library's netlist format,
// showing the gap is not an artifact of the full adder.
const sliceNetlist = `circuit slice
input a b c d
output y z
nand g1 n1 a b
nand g2 n2 c d
inv  g3 n3 n1
nor  g4 n4 n2 c
nand g5 y n3 n4
nor  g6 z n1 n4
`

func main() {
	fa := gobd.FullAdderSumLogic()
	slice, err := gobd.ParseNetlist(sliceNetlist)
	if err != nil {
		log.Fatal(err)
	}
	for _, lc := range []*gobd.Circuit{fa, slice} {
		fmt.Printf("== %s (%d gates) ==\n", lc.Name, len(lc.Gates))
		obdFaults, skipped := gobd.OBDUniverse(lc)
		if len(skipped) > 0 {
			fmt.Printf("   (%d composite gates without OBD sites)\n", len(skipped))
		}
		ex, err := gobd.AnalyzeExhaustive(lc, obdFaults)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   OBD universe: %d faults, %d testable\n", len(obdFaults), ex.TestableCount())

		// Traditional transition-fault ATPG, graded against OBD.
		tr, err := gobd.GenerateTransitionTests(lc, gobd.TransitionUniverse(lc), nil)
		if err != nil {
			log.Fatal(err)
		}
		cov := gobd.GradeOBD(lc, obdFaults, tr.Tests)
		fmt.Printf("   transition test set (%d pairs): transition coverage %s, OBD coverage %s\n",
			len(tr.Tests), tr.Coverage, cov)

		// Stuck-at patterns chained into pairs, graded against OBD.
		sa, err := gobd.GenerateStuckAtTests(lc, gobd.StuckAtUniverse(lc), nil)
		if err != nil {
			log.Fatal(err)
		}
		var chained []gobd.TwoPattern
		for i := 1; i < len(sa.Tests); i++ {
			chained = append(chained, gobd.TwoPattern{V1: sa.Tests[i-1], V2: sa.Tests[i]})
		}
		saCov := gobd.GradeOBD(lc, obdFaults, chained)
		fmt.Printf("   stuck-at set (%d patterns chained): OBD coverage %s\n", len(sa.Tests), saCov)

		// The OBD-aware generator.
		ob, err := gobd.GenerateOBDTests(lc, obdFaults, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   OBD-aware ATPG (%d pairs): OBD coverage %s\n", len(ob.Tests), ob.Coverage)
		for _, missed := range cov.Undetected {
			detected := true
			for _, u := range ob.Coverage.Undetected {
				if u == missed {
					detected = false
					break
				}
			}
			if detected {
				fmt.Printf("   e.g. %s: missed by transition tests, caught by OBD ATPG\n", missed)
				break
			}
		}
		fmt.Println()
	}
}
