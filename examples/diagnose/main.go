// Diagnose: the "diagnose" leg of the paper's concurrent
// test/diagnose/repair loop. A fault dictionary is built from the OBD test
// set's simulated responses; an observed failure (here: a hidden defect we
// simulate, plus a noisy variant) is matched back to candidate defective
// transistors.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gobd"
	"gobd/internal/atpg"
	"gobd/internal/diag"
	"gobd/internal/fault"
)

func main() {
	lc := gobd.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(lc)
	ts, err := atpg.GenerateOBDTests(lc, faults, nil)
	if err != nil {
		log.Fatal(err)
	}
	dict := diag.Build(lc, faults, ts.Tests)
	fmt.Printf("dictionary: %d faults x %d tests, %d uniquely diagnosable\n",
		len(faults), len(ts.Tests), dict.UniquelyDiagnosable())

	// Pretend transistor NMOS@cn of the mid-path NAND "g" broke down.
	var hidden fault.OBD
	for _, f := range faults {
		if f.Gate.Name == gobd.FullAdderTarget && f.Side == fault.PullDown && f.Input == 1 {
			hidden = f
		}
	}
	fmt.Printf("hidden defect: %s\n", hidden)

	obs := diag.SimulateResponse(lc, hidden, ts.Tests)
	cands, dist, err := dict.Diagnose(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean observation -> %d candidate(s) at distance %d:\n", len(cands), dist)
	for _, ci := range cands {
		fmt.Printf("  %s\n", faults[ci])
	}

	// A tester dropped one pass/fail bit: nearest-match still localizes.
	rng := rand.New(rand.NewSource(3))
	noisy := make(diag.Response, len(obs))
	for i := range obs {
		noisy[i] = append([]bool(nil), obs[i]...)
	}
	ri := rng.Intn(len(noisy))
	noisy[ri][0] = !noisy[ri][0]
	cands, dist, err = dict.Diagnose(noisy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy observation -> %d candidate(s) at distance %d\n", len(cands), dist)
	hit := false
	for _, ci := range cands {
		if faults[ci] == hidden {
			hit = true
		}
	}
	fmt.Printf("true defect among candidates: %v\n", hit)
}
