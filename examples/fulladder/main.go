// Full adder: the paper's Section 4.3 experiment end to end. The gate-level
// half runs the OBD census and ATPG on the reconstructed Fig. 8 circuit
// (14 NAND + 11 INV, depth 9); the analog half elaborates the same circuit
// to transistors, injects a breakdown into the mid-path NAND, and shows the
// fault effect propagating four logic stages to the sum output as a delay.
package main

import (
	"fmt"
	"log"

	"gobd"
)

func main() {
	lc := gobd.FullAdderSumLogic()
	fmt.Printf("circuit %s: %d gates, depth %d\n", lc.Name, len(lc.Gates), lc.Depth())

	// ---- Gate level: census, exhaustive analysis, ATPG ----
	faults, _ := gobd.OBDUniverse(lc)
	fmt.Printf("OBD fault universe: %d locations\n", len(faults))

	ex, err := gobd.AnalyzeExhaustive(lc, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive analysis: %d of %d faults testable over %d input transitions\n",
		ex.TestableCount(), len(faults), len(ex.Pairs))

	cover := ex.GreedyCover()
	fmt.Printf("a %d-transition set covers every testable fault:\n", len(cover))
	for _, tp := range cover {
		fmt.Println("  " + tp.StringFor(lc))
	}

	ts, err := gobd.GenerateOBDTests(lc, faults, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PODEM-based OBD ATPG: %d vector pairs, coverage %s\n", len(ts.Tests), ts.Coverage)

	// ---- Analog level: inject into the mid-path NAND and watch the sum ----
	target := gobd.FullAdderTarget
	var tf gobd.OBDFault
	for _, f := range faults {
		if f.Gate.Name == target && f.Side == gobd.PullDown && f.Input == 0 {
			tf = f
		}
	}
	tp, st := gobd.GenerateOBDTest(lc, tf, nil)
	if st.String() != "detected" {
		log.Fatalf("ATPG could not justify a test for %s: %v", tf, st)
	}
	fmt.Printf("\njustified stimulus for %s: %s\n", tf, tp.StringFor(lc))

	p := gobd.DefaultProcess()
	run := func(stage gobd.Stage) float64 {
		rig, err := gobd.NewFullAdderRig(p)
		if err != nil {
			log.Fatal(err)
		}
		inj := gobd.Inject(rig.B.C, "defect", rig.Cells[target].FET(gobd.PullDown, 0), gobd.FaultFree)
		inj.SetStage(stage)
		if err := rig.Apply(tp.V1, tp.V2, 1e-9, 50e-12); err != nil {
			log.Fatal(err)
		}
		res, err := rig.Run(4e-9, 2e-12)
		if err != nil {
			log.Fatal(err)
		}
		s := res.V("s")
		// 50% crossing of the sum output after the stimulus edge.
		half := p.VDD / 2
		for i := 1; i < len(res.Times); i++ {
			if res.Times[i] < 1e-9 {
				continue
			}
			if (s[i-1] < half) != (s[i] < half) {
				return res.Times[i] - 1.025e-9
			}
		}
		return -1
	}
	dFF := run(gobd.FaultFree)
	dMBD := run(gobd.MBD2)
	fmt.Printf("sum-output delay through 9 logic levels: fault-free %.0f ps, MBD2 %.0f ps (+%.0f%%)\n",
		dFF*1e12, dMBD*1e12, 100*(dMBD-dFF)/dFF)
}
