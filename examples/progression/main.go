// Progression: the paper's Section 4.2 scheduling story. The breakdown
// parameters evolve exponentially from soft to hard breakdown over ~27
// hours (Linder et al.); re-simulating the Fig. 5 NAND along that
// trajectory gives delay-versus-time, from which the detection window —
// and the concurrent test period a fault-tolerance scheme needs — follows.
package main

import (
	"fmt"
	"log"

	"gobd"
)

func main() {
	p := gobd.DefaultProcess()
	prog := gobd.NewProgression(gobd.NMOS)
	fmt.Printf("SBD -> HBD window: %.1f hours (exponential growth)\n", prog.Window/3600)

	h := gobd.NewNANDHarness(p, 2)
	inj := gobd.Inject(h.B.C, "defect", h.FETFor(gobd.PullDown, 0), gobd.FaultFree)
	pair, err := gobd.ParsePair("(01,11)")
	if err != nil {
		log.Fatal(err)
	}
	measure := func() (float64, bool) {
		h.Apply(pair, 1e-9, 50e-12)
		res, err := h.Run(4e-9, 1e-12)
		if err != nil {
			log.Fatal(err)
		}
		m, err := h.Measure(res, pair, 1e-9, 50e-12)
		if err != nil {
			log.Fatal(err)
		}
		return m.Delay, m.Kind.String() == "ok"
	}
	nominal, ok := measure()
	if !ok {
		log.Fatal("nominal measurement stuck")
	}
	fmt.Printf("fault-free delay: %.0f ps\n\n", nominal*1e12)

	const points = 9
	var curve []gobd.DelayPoint
	fmt.Println("delay along the progression:")
	for i := 0; i < points; i++ {
		t := prog.Window * float64(i) / float64(points-1)
		inj.SetParams(prog.ParamsAt(t))
		d, ok := measure()
		if !ok {
			d = 1 // stuck: effectively infinite delay
			fmt.Printf("  t = %5.1f h: output stuck\n", t/3600)
		} else {
			fmt.Printf("  t = %5.1f h: %.0f ps\n", t/3600, d*1e12)
		}
		curve = append(curve, gobd.DelayPoint{T: t, Delay: d})
	}

	fmt.Println("\ndetection windows by detector slack:")
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		w, err := gobd.ComputeWindow(curve, nominal, nominal*frac, prog.Window)
		if err != nil {
			log.Fatal(err)
		}
		if !w.Detectable {
			fmt.Printf("  slack %3.0f%%: never detectable before HBD\n", frac*100)
			continue
		}
		fmt.Printf("  slack %3.0f%%: observable from %5.1f h, window %5.1f h -> test every <= %.1f h\n",
			frac*100, w.Start/3600, w.Length()/3600, w.MaxTestPeriod()/3600)
	}
}
