// Quickstart: inject a gate-oxide-breakdown defect into a NAND gate's
// pull-down transistor and watch the transition delay grow through the
// breakdown stages until the gate sticks — the paper's Table 1 in ten
// lines of API.
package main

import (
	"fmt"
	"log"

	"gobd"
)

func main() {
	p := gobd.DefaultProcess()
	// The paper's Fig. 5 set-up: the defective NAND driven by real gates.
	h := gobd.NewNANDHarness(p, 2)
	// Breakdown in the NMOS transistor driven by input A.
	inj := gobd.Inject(h.B.C, "defect", h.FETFor(gobd.PullDown, 0), gobd.FaultFree)

	// A falling-output sequence: inputs go 01 -> 11.
	pair, err := gobd.ParsePair("(01,11)")
	if err != nil {
		log.Fatal(err)
	}
	const (
		tSwitch = 1e-9
		tEdge   = 50e-12
	)
	fmt.Println("NAND NMOS@A breakdown progression, sequence (01,11):")
	for _, stage := range gobd.Stages() {
		inj.SetStage(stage)
		h.Apply(pair, tSwitch, tEdge)
		res, err := h.Run(4e-9, 1e-12)
		if err != nil {
			log.Fatalf("%v: transient failed: %v", stage, err)
		}
		m, err := h.Measure(res, pair, tSwitch, tEdge)
		if err != nil {
			log.Fatalf("%v: measurement failed: %v", stage, err)
		}
		if m.Kind.String() == "ok" {
			fmt.Printf("  %-10s output falls %.0f ps after the input edge\n", stage, m.Delay*1e12)
		} else {
			fmt.Printf("  %-10s output never falls (%v)\n", stage, m.Kind)
		}
	}
}
