module gobd

go 1.22
