// Package gobd is a from-scratch Go reproduction of "Circuit-Level
// Modeling for Concurrent Testing of Operational Defects due to Gate Oxide
// Breakdown" (Carter, Ozev, Sorin — DATE 2005).
//
// It bundles five layers, re-exported here as a single public surface:
//
//   - an analog circuit simulator (MNA + Newton-Raphson: DC operating
//     point, DC sweep, trapezoidal transient) with Level-1 MOSFETs,
//     pn-junction diodes, R/C and PWL sources;
//   - the paper's diode-resistor gate-oxide-breakdown (OBD) model, its
//     Table 1 stage parameters and the exponential SBD→HBD progression;
//   - transistor-level CMOS cell builders, the Fig. 5 measurement harness
//     and the reconstructed Fig. 8 full-adder sum circuit;
//   - gate-level combinational circuits with stuck-at, transition, EM and
//     per-transistor OBD fault models, including the series-parallel
//     excitation rule of Section 5;
//   - PODEM-based ATPG: single-pattern stuck-at, two-pattern transition,
//     and OBD-aware two-pattern generation, with exact fault simulation,
//     exhaustive pair analysis and test-set covering;
//   - the Section 4.2 detection-window scheduler.
//
// The exper subpackage regenerates every table and figure of the paper;
// cmd/obdrepro prints them all, and EXPERIMENTS.md records paper-versus-
// measured values.
//
// Quick start (see examples/quickstart):
//
//	p := gobd.DefaultProcess()
//	h := gobd.NewNANDHarness(p, 2)
//	inj := gobd.Inject(h.B.C, "f", h.FETFor(gobd.PullDown, 0), gobd.MBD2)
//	pr, _ := gobd.ParsePair("(01,11)")
//	h.Apply(pr, 1e-9, 50e-12)
//	res, _ := h.Run(4e-9, 1e-12)
//	m, _ := h.Measure(res, pr, 1e-9, 50e-12)
//	fmt.Printf("%v delay: %.0f ps\n", inj.Stage, m.Delay*1e12)
package gobd

import (
	"gobd/internal/atpg"
	"gobd/internal/bist"
	"gobd/internal/cells"
	"gobd/internal/diag"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/mission"
	"gobd/internal/netcheck"
	"gobd/internal/obd"
	"gobd/internal/sched"
	"gobd/internal/seq"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// Analog simulator layer.
type (
	// AnalogCircuit is a flat transistor-level netlist.
	AnalogCircuit = spice.Circuit
	// Process is the synthetic CMOS process card.
	Process = spice.Process
	// Solution is a committed DC solution.
	Solution = spice.Solution
	// TranResult is a committed transient simulation.
	TranResult = spice.TranResult
	// Waveform drives independent sources.
	Waveform = spice.Waveform
	// MOSFET is the Level-1 transistor device.
	MOSFET = spice.MOSFET
)

// DefaultProcess returns the calibrated 3.3 V process card used by every
// experiment in the repository.
func DefaultProcess() *Process { return spice.Default350() }

// NewAnalogCircuit creates an empty analog netlist (ground pre-defined).
func NewAnalogCircuit() *AnalogCircuit { return spice.NewCircuit() }

// OperatingPoint solves the DC bias point of an analog circuit.
func OperatingPoint(c *AnalogCircuit) (*Solution, error) { return spice.OperatingPoint(c, nil) }

// Transient runs a transient analysis with the default solver options.
func Transient(c *AnalogCircuit, tstop, dt float64) (*TranResult, error) {
	return spice.Transient(c, tstop, dt, nil)
}

// OBD model layer.
type (
	// Stage is a breakdown progression point (FaultFree … HBD).
	Stage = obd.Stage
	// Injection is a breakdown network wired around one transistor.
	Injection = obd.Injection
	// Progression is the exponential SBD→HBD parameter trajectory.
	Progression = obd.Progression
)

// Breakdown stages (the paper's Table 1 rows).
const (
	FaultFree = obd.FaultFree
	MBD1      = obd.MBD1
	MBD2      = obd.MBD2
	MBD3      = obd.MBD3
	HBD       = obd.HBD
)

// Inject attaches the diode-resistor breakdown network to a transistor.
func Inject(c *AnalogCircuit, name string, m *MOSFET, stage Stage) *Injection {
	return obd.Inject(c, name, m, stage)
}

// Stages lists all breakdown stages in progression order.
func Stages() []Stage { return obd.Stages() }

// MOSPolarity distinguishes NMOS and PMOS devices.
type MOSPolarity = spice.MOSPolarity

// Device polarities.
const (
	NMOS = spice.NMOS
	PMOS = spice.PMOS
)

// NewProgression builds the default exponential SBD→HBD trajectory for a
// device polarity (27 h window, per Linder et al.).
func NewProgression(pol MOSPolarity) *Progression { return obd.NewProgression(pol) }

// Cell library layer.
type (
	// CellBuilder accumulates transistor-level cells into one circuit.
	CellBuilder = cells.Builder
	// Cell is one gate instance at transistor level.
	Cell = cells.Cell
	// NANDHarness is the paper's Fig. 5 measurement set-up.
	NANDHarness = cells.NANDHarness
	// FullAdderRig is the transistor-level Fig. 8 circuit.
	FullAdderRig = cells.FullAdderRig
)

// NewCellBuilder creates a builder with a powered supply rail.
func NewCellBuilder(p *Process) *CellBuilder { return cells.NewBuilder(p) }

// NewNANDHarness builds the Fig. 5 harness (driveChain=2 reproduces the
// paper; 0 is the ideal-source ablation).
func NewNANDHarness(p *Process, driveChain int) *NANDHarness {
	return cells.NewNANDHarness(p, driveChain)
}

// FullAdderSumLogic returns the reconstructed Fig. 8 gate-level netlist
// (14 NAND2 + 11 INV, depth 9, intentional redundancy).
func FullAdderSumLogic() *Circuit { return cells.FullAdderSumLogic() }

// FullAdderTarget names the NAND gate with four upstream and four
// downstream stages — the paper's Fig. 9 injection site.
const FullAdderTarget = cells.FullAdderTarget

// NewFullAdderRig elaborates the Fig. 8 circuit to transistors.
func NewFullAdderRig(p *Process) (*FullAdderRig, error) { return cells.NewFullAdderRig(p) }

// CalibrateDelays measures the primitive cells on the analog simulator and
// returns a gate-level delay model grounded in the same process card.
var CalibrateDelays = cells.CalibrateDelays

// Gate-level layer.
type (
	// Circuit is a gate-level combinational netlist.
	Circuit = logic.Circuit
	// Gate is one gate instance.
	Gate = logic.Gate
	// GateType enumerates gate functions.
	GateType = logic.GateType
	// Value is a three-valued logic level.
	Value = logic.Value
)

// Gate-level constructors and parsing.
var (
	// NewCircuit creates an empty gate-level circuit.
	NewCircuit = logic.New
	// ParseNetlist reads the textual netlist format.
	ParseNetlist = logic.ParseString
	// FormatNetlist writes the textual netlist format.
	FormatNetlist = logic.Format
	// ParseVerilog reads a structural Verilog module.
	ParseVerilog = logic.ParseVerilogString
	// FormatVerilog writes a structural Verilog module.
	FormatVerilog = logic.FormatVerilog
	// ComputeTestability runs SCOAP controllability/observability analysis.
	ComputeTestability = logic.ComputeTestability
)

// Fault model layer.
type (
	// OBDFault is a per-transistor gate-oxide-breakdown fault.
	OBDFault = fault.OBD
	// StuckAtFault is the classical stuck-at fault.
	StuckAtFault = fault.StuckAt
	// TransitionFault is the classical slow-to-rise/fall fault.
	TransitionFault = fault.Transition
	// EMFault is an intra-gate electromigration fault.
	EMFault = fault.EM
	// Pair is a two-pattern local input assignment, e.g. (01,11).
	Pair = fault.Pair
	// Side distinguishes pull-up (PMOS) and pull-down (NMOS) networks.
	Side = fault.Side
)

// Network sides.
const (
	PullUp   = fault.PullUp
	PullDown = fault.PullDown
)

// Fault-universe generators and the Section 4.1/5 analyses.
var (
	// OBDUniverse enumerates all per-transistor OBD faults of a circuit.
	OBDUniverse = fault.OBDUniverse
	// StuckAtUniverse enumerates stuck-at faults on every net.
	StuckAtUniverse = fault.StuckAtUniverse
	// TransitionUniverse enumerates transition faults on every net.
	TransitionUniverse = fault.TransitionUniverse
	// ParsePair parses the paper's pair notation, e.g. "(11,01)".
	ParsePair = fault.ParsePair
	// GatePairTable maps each OBD fault of a gate type to its pairs.
	GatePairTable = fault.GatePairTable
	// MinimalPairCover computes the exact minimum exciting pair set.
	MinimalPairCover = fault.MinimalPairCover
)

// ATPG layer.
type (
	// Pattern is a primary-input assignment.
	Pattern = atpg.Pattern
	// TwoPattern is an ordered vector pair.
	TwoPattern = atpg.TwoPattern
	// ATPGOptions tunes the generators.
	ATPGOptions = atpg.Options
	// Coverage summarizes a fault-grading run.
	Coverage = atpg.Coverage
	// Scheduler is the deterministic worker pool behind the batch graders
	// and generators.
	Scheduler = atpg.Scheduler
	// WorkerStats is one worker's share of a scheduler run.
	WorkerStats = atpg.WorkerStats
)

// Test generation and fault simulation.
var (
	// GenerateOBDTest produces a two-pattern test for one OBD fault.
	GenerateOBDTest = atpg.GenerateOBDTest
	// GenerateOBDTests runs the OBD generator over a fault list.
	GenerateOBDTests = atpg.GenerateOBDTests
	// GenerateTransitionTests runs the classical transition generator.
	GenerateTransitionTests = atpg.GenerateTransitionTests
	// GenerateStuckAtTests runs the classical stuck-at generator.
	GenerateStuckAtTests = atpg.GenerateStuckAtTests
	// DetectsOBD fault-simulates one vector pair against one OBD fault.
	DetectsOBD = atpg.DetectsOBD
	// GradeOBD fault-simulates a test set against an OBD fault list
	// (scalar reference engine).
	GradeOBD = atpg.GradeOBD
	// GradeOBDParallel is the bit-parallel multicore grader; its Coverage
	// is bit-identical to GradeOBD for any worker count.
	GradeOBDParallel = atpg.GradeOBDParallel
	// NewScheduler builds a scheduler with an explicit worker count.
	NewScheduler = atpg.NewScheduler
	// SetDefaultWorkers resizes the pool behind the package-level
	// graders and generators.
	SetDefaultWorkers = atpg.SetDefaultWorkers
	// AnalyzeExhaustive enumerates all input transitions of a circuit.
	AnalyzeExhaustive = atpg.AnalyzeExhaustive
)

// Hardened scheduler layer: typed errors, panic confinement and
// context-aware batch runs.
type (
	// InvalidCircuitError reports a batch entry point given a circuit
	// failing validation.
	InvalidCircuitError = atpg.InvalidCircuitError
	// InputLimitError reports an exhaustive enumeration beyond the
	// supported primary-input count.
	InputLimitError = atpg.InputLimitError
	// PanicError is a worker panic confined to an ordinary error.
	PanicError = atpg.PanicError
	// ItemError ties a failure to its work-item index.
	ItemError = atpg.ItemError
	// RunReport is the outcome of a hardened ForEachCtx run.
	RunReport = atpg.RunReport
)

// Context-aware generator variants: same results as their plain
// counterparts, plus prompt cancellation with a deterministic prefix.
var (
	GenerateOBDTestsCtx        = atpg.GenerateOBDTestsCtx
	GenerateTransitionTestsCtx = atpg.GenerateTransitionTestsCtx
	GenerateStuckAtTestsCtx    = atpg.GenerateStuckAtTestsCtx
)

// Scheduling layer (Section 4.2).
type (
	// DelayPoint is one sample of a delay-versus-time trajectory.
	DelayPoint = sched.DelayPoint
	// Window is a detection window for one detector slack.
	Window = sched.Window
)

// ComputeWindow locates the detection window for a given slack.
var ComputeWindow = sched.ComputeWindow

// Measurement layer.
type (
	// Series is a sampled waveform.
	Series = waveform.Series
	// DelayMeasurement is a measured transition (delay or sa-0/sa-1).
	DelayMeasurement = waveform.DelayMeasurement
)

// Diagnosis layer.
type (
	// FaultDictionary maps test-set responses back to candidate defects.
	FaultDictionary = diag.Dictionary
	// FaultResponse is a pass/fail observation of a test set.
	FaultResponse = diag.Response
)

// Diagnosis constructors.
var (
	// BuildDictionary simulates every fault against a test set.
	BuildDictionary = diag.Build
	// SimulateResponse computes one fault's response signature.
	SimulateResponse = diag.SimulateResponse
)

// Sequential/DFT layer.
type (
	// SeqCircuit is a combinational core with a scan chain.
	SeqCircuit = seq.Circuit
	// ScanFF is one scan flip-flop (Q feeds a core input, D captures a net).
	ScanFF = seq.FF
	// ScanMode is a two-pattern test-application style.
	ScanMode = seq.Mode
)

// Scan application modes.
const (
	EnhancedScanMode    = seq.EnhancedScan
	LaunchOnShiftMode   = seq.LaunchOnShift
	LaunchOnCaptureMode = seq.LaunchOnCapture
)

// Sequential constructors.
var (
	// NewSeqCircuit wraps a combinational core with a scan chain.
	NewSeqCircuit = seq.New
	// Accumulator builds the n-bit accumulator testbed.
	Accumulator = seq.Accumulator
)

// Gate-level timing layer.
type (
	// TimingSimulator is the event-driven gate-level timing simulator.
	TimingSimulator = timing.Simulator
	// TimingTrace is a simulated per-net waveform set.
	TimingTrace = timing.Trace
	// DelayPenalty injects a directional per-gate delay (an OBD defect).
	DelayPenalty = timing.Penalty
)

// Timing constructors and helpers.
var (
	// NewTimingSimulator builds a simulator over a gate-level circuit.
	NewTimingSimulator = timing.New
	// DetectsAtCapture compares good/faulty traces at a capture time.
	DetectsAtCapture = timing.DetectsAt
	// TraceVCD renders a timing trace as a Value Change Dump.
	TraceVCD = timing.VCD
)

// Benchmark circuits.
var (
	// C17 is the ISCAS-85 c17 benchmark.
	C17 = logic.C17
	// RippleCarryAdder builds an n-bit NAND-only adder.
	RippleCarryAdder = logic.RippleCarryAdder
	// ParityTree builds an n-input XOR tree.
	ParityTree = logic.ParityTree
	// Mux41 builds a 4:1 multiplexer.
	Mux41 = logic.Mux41
)

// AnalogNetlist renders a transistor-level circuit as SPICE-deck text.
var AnalogNetlist = spice.Netlist

// BIST layer.
type (
	// BISTSession is an LFSR test-per-clock self-test run with MISR
	// signature compaction.
	BISTSession = bist.Session
	// LFSR is a maximal-length Galois linear-feedback shift register.
	LFSR = bist.LFSR
	// MISR is a multiple-input signature register.
	MISR = bist.MISR
)

// BIST constructors.
var (
	// NewBISTSession prepares an n-clock self-test session.
	NewBISTSession = bist.NewSession
	// NewLFSR builds a maximal-length LFSR (widths 2–16).
	NewLFSR = bist.NewLFSR
	// NewMISR builds a signature register (widths 2–16).
	NewMISR = bist.NewMISR
)

// Mission layer (cmd/obdmission front-end): a deterministic, seeded
// discrete-event simulation of a chip population running the paper's
// concurrent test/diagnose/repair loop under injected adversity.
type (
	// MissionConfig parameterizes a campaign.
	MissionConfig = mission.Config
	// MissionCampaign is a configured, reusable campaign.
	MissionCampaign = mission.Campaign
	// MissionAdversity is the operational hazard profile.
	MissionAdversity = mission.Adversity
	// MissionReport is the aggregated campaign outcome.
	MissionReport = mission.Report
	// MissionChipResult is one chip's outcome.
	MissionChipResult = mission.ChipResult
)

// Mission constructors and profiles.
var (
	// NewMission validates a config and precomputes the shared bench.
	NewMission = mission.New
	// ParseAdversity parses "off", "light", "heavy" or a key=value list.
	ParseAdversity = mission.ParseAdversity
	// AdversityOff/Light/Heavy are the canned hazard profiles.
	AdversityOff   = mission.Off
	AdversityLight = mission.Light
	AdversityHeavy = mission.Heavy
)

// Static netlist analysis layer (cmd/obdlint front-end).
type (
	// NetReport is a full netcheck analysis: lint diagnostics, constant
	// nets, OBD untestability verdicts and a SCOAP hard-fault ranking.
	NetReport = netcheck.Report
	// NetDiagnostic is one structural lint finding.
	NetDiagnostic = netcheck.Diagnostic
	// NetcheckOptions tunes the analysis passes.
	NetcheckOptions = netcheck.Options
	// OBDVerdict is a per-fault untestability verdict with its proof.
	OBDVerdict = netcheck.Verdict
	// ImplicationProof is a machine-checkable implication chain.
	ImplicationProof = netcheck.Proof
)

// Static analysis entry points.
var (
	// AnalyzeNetlist runs every netcheck pass over a circuit.
	AnalyzeNetlist = netcheck.Analyze
	// LintNetlist runs only the structural lint pass.
	LintNetlist = netcheck.Lint
	// ProveOBDUntestable attempts a static untestability proof for one
	// OBD fault; the verdict is sound but one-sided (see DESIGN.md).
	ProveOBDUntestable = netcheck.ProveOBD
	// StaticConstants derives implication-proved constant nets.
	StaticConstants = netcheck.Constants
	// VerifyImplicationProof independently replays a proof chain.
	VerifyImplicationProof = netcheck.VerifyProof
)
