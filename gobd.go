// Package gobd is a from-scratch Go reproduction of "Circuit-Level
// Modeling for Concurrent Testing of Operational Defects due to Gate Oxide
// Breakdown" (Carter, Ozev, Sorin — DATE 2005).
//
// It bundles five layers, re-exported here as a single public surface:
//
//   - an analog circuit simulator (MNA + Newton-Raphson: DC operating
//     point, DC sweep, trapezoidal transient) with Level-1 MOSFETs,
//     pn-junction diodes, R/C and PWL sources;
//   - the paper's diode-resistor gate-oxide-breakdown (OBD) model, its
//     Table 1 stage parameters and the exponential SBD→HBD progression;
//   - transistor-level CMOS cell builders, the Fig. 5 measurement harness
//     and the reconstructed Fig. 8 full-adder sum circuit;
//   - gate-level combinational circuits with stuck-at, transition, EM and
//     per-transistor OBD fault models, including the series-parallel
//     excitation rule of Section 5;
//   - PODEM-based ATPG: single-pattern stuck-at, two-pattern transition,
//     and OBD-aware two-pattern generation, with exact fault simulation,
//     exhaustive pair analysis and test-set covering;
//   - the Section 4.2 detection-window scheduler.
//
// The facade is organized by layer:
//
//   - gobd_analog.go — analog simulator, OBD injection model, cell library
//     and waveform measurement;
//   - gobd_logic.go — gate-level circuits, parsing, fingerprints,
//     benchmarks, timing simulation, scan/DFT and static netlist analysis;
//   - gobd_fault.go — fault universes, excitation pairs, diagnosis and
//     BIST;
//   - gobd_atpg.go — test generation, fault grading, the deterministic
//     scheduler and its hardened error types;
//   - gobd_mission.go — detection-window scheduling and mission campaigns.
//
// The exported surface is locked by a golden file
// (testdata/api.golden); TestExportedAPILock explains how to regenerate
// it after an intentional change.
//
// The exper subpackage regenerates every table and figure of the paper;
// cmd/obdrepro prints them all, and EXPERIMENTS.md records paper-versus-
// measured values. cmd/obdserve exposes the compute core as an HTTP/JSON
// service (see README.md "Serving").
//
// Quick start (see examples/quickstart):
//
//	p := gobd.DefaultProcess()
//	h := gobd.NewNANDHarness(p, 2)
//	inj := gobd.Inject(h.B.C, "f", h.FETFor(gobd.PullDown, 0), gobd.MBD2)
//	pr, _ := gobd.ParsePair("(01,11)")
//	h.Apply(pr, 1e-9, 50e-12)
//	res, _ := h.Run(4e-9, 1e-12)
//	m, _ := h.Measure(res, pr, 1e-9, 50e-12)
//	fmt.Printf("%v delay: %.0f ps\n", inj.Stage, m.Delay*1e12)
package gobd
