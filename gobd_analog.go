// Analog layer of the public facade: the MNA + Newton-Raphson circuit
// simulator, the paper's diode-resistor OBD injection model, the
// transistor-level cell library with its measurement harnesses, and
// waveform delay extraction.
package gobd

import (
	"gobd/internal/cells"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// Analog simulator layer.
type (
	// AnalogCircuit is a flat transistor-level netlist.
	AnalogCircuit = spice.Circuit
	// Process is the synthetic CMOS process card.
	Process = spice.Process
	// Solution is a committed DC solution.
	Solution = spice.Solution
	// TranResult is a committed transient simulation.
	TranResult = spice.TranResult
	// Waveform drives independent sources.
	Waveform = spice.Waveform
	// MOSFET is the Level-1 transistor device.
	MOSFET = spice.MOSFET
)

// DefaultProcess returns the calibrated 3.3 V process card used by every
// experiment in the repository.
func DefaultProcess() *Process { return spice.Default350() }

// NewAnalogCircuit creates an empty analog netlist (ground pre-defined).
func NewAnalogCircuit() *AnalogCircuit { return spice.NewCircuit() }

// OperatingPoint solves the DC bias point of an analog circuit.
func OperatingPoint(c *AnalogCircuit) (*Solution, error) { return spice.OperatingPoint(c, nil) }

// Transient runs a transient analysis with the default solver options.
func Transient(c *AnalogCircuit, tstop, dt float64) (*TranResult, error) {
	return spice.Transient(c, tstop, dt, nil)
}

// AnalogNetlist renders a transistor-level circuit as SPICE-deck text.
var AnalogNetlist = spice.Netlist

// OBD model layer.
type (
	// Stage is a breakdown progression point (FaultFree … HBD).
	Stage = obd.Stage
	// Injection is a breakdown network wired around one transistor.
	Injection = obd.Injection
	// Progression is the exponential SBD→HBD parameter trajectory.
	Progression = obd.Progression
)

// Breakdown stages (the paper's Table 1 rows).
const (
	FaultFree = obd.FaultFree
	MBD1      = obd.MBD1
	MBD2      = obd.MBD2
	MBD3      = obd.MBD3
	HBD       = obd.HBD
)

// Inject attaches the diode-resistor breakdown network to a transistor.
func Inject(c *AnalogCircuit, name string, m *MOSFET, stage Stage) *Injection {
	//obdcheck:allow paniccontract — passes the documented StageParams contract through: every Stage constant above is a defined Table 1 row
	return obd.Inject(c, name, m, stage)
}

// Stages lists all breakdown stages in progression order.
func Stages() []Stage { return obd.Stages() }

// MOSPolarity distinguishes NMOS and PMOS devices.
type MOSPolarity = spice.MOSPolarity

// Device polarities.
const (
	NMOS = spice.NMOS
	PMOS = spice.PMOS
)

// NewProgression builds the default exponential SBD→HBD trajectory for a
// device polarity (27 h window, per Linder et al.).
//obdcheck:allow paniccontract — passes the documented StageParams contract through: the default trajectory visits only defined stages
func NewProgression(pol MOSPolarity) *Progression { return obd.NewProgression(pol) }

// Cell library layer.
type (
	// CellBuilder accumulates transistor-level cells into one circuit.
	CellBuilder = cells.Builder
	// Cell is one gate instance at transistor level.
	Cell = cells.Cell
	// NANDHarness is the paper's Fig. 5 measurement set-up.
	NANDHarness = cells.NANDHarness
	// FullAdderRig is the transistor-level Fig. 8 circuit.
	FullAdderRig = cells.FullAdderRig
)

// NewCellBuilder creates a builder with a powered supply rail.
func NewCellBuilder(p *Process) *CellBuilder { return cells.NewBuilder(p) }

// NewNANDHarness builds the Fig. 5 harness (driveChain=2 reproduces the
// paper; 0 is the ideal-source ablation).
func NewNANDHarness(p *Process, driveChain int) *NANDHarness {
	return cells.NewNANDHarness(p, driveChain)
}

// NewFullAdderRig elaborates the Fig. 8 circuit to transistors.
func NewFullAdderRig(p *Process) (*FullAdderRig, error) { return cells.NewFullAdderRig(p) }

// CalibrateDelays measures the primitive cells on the analog simulator and
// returns a gate-level delay model grounded in the same process card.
var CalibrateDelays = cells.CalibrateDelays

// Measurement layer.
type (
	// Series is a sampled waveform.
	Series = waveform.Series
	// DelayMeasurement is a measured transition (delay or sa-0/sa-1).
	DelayMeasurement = waveform.DelayMeasurement
)
