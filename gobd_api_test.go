package gobd_test

import (
	"context"
	"strings"
	"testing"

	"gobd"
)

// TestPublicAPIEndToEnd drives the whole public facade the way a
// downstream user would: build a circuit, enumerate faults, generate and
// grade tests, derive excitation sets, wrap in a scan chain, run the
// timing simulator, build a dictionary, and touch the analog layer.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Gate level.
	c, err := gobd.ParseNetlist("circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := gobd.OBDUniverse(c)
	if len(faults) != 4 {
		t.Fatalf("universe %d", len(faults))
	}
	ts := must(gobd.GenerateOBDTests(c, faults, nil))
	if ts.Coverage.Ratio() != 1 {
		t.Fatalf("coverage %v", ts.Coverage)
	}
	if cov := gobd.GradeOBD(c, faults, ts.Tests); cov.Detected != 4 {
		t.Fatalf("grade %v", cov)
	}
	cover, err := gobd.MinimalPairCover(c.Gates[0].Type, 2)
	if err != nil || len(cover) != 3 {
		t.Fatalf("cover %v %v", cover, err)
	}
	table, err := gobd.GatePairTable(c.Gates[0].Type, 2)
	if err != nil || len(table) != 4 {
		t.Fatalf("table %v %v", table, err)
	}
	if out := gobd.FormatNetlist(c); !strings.Contains(out, "nand g1 y a b") {
		t.Fatalf("format %q", out)
	}

	// Benchmark circuits and the full adder.
	if got := len(gobd.C17().Gates); got != 6 {
		t.Fatalf("c17 gates %d", got)
	}
	fa := gobd.FullAdderSumLogic()
	if fa.Depth() != 9 {
		t.Fatalf("full adder depth %d", fa.Depth())
	}

	// Scheduling.
	curve := []gobd.DelayPoint{{T: 0, Delay: 100e-12}, {T: 3600, Delay: 400e-12}}
	w, err := gobd.ComputeWindow(curve, 100e-12, 100e-12, 3600)
	if err != nil || !w.Detectable {
		t.Fatalf("window %v %v", w, err)
	}

	// Sequential wrapper.
	acc, err := gobd.Accumulator(2)
	if err != nil {
		t.Fatal(err)
	}
	if cov, err := acc.ModeCoverage(gobd.LaunchOnCaptureMode); err != nil || cov.Total == 0 {
		t.Fatalf("mode coverage %v %v", cov, err)
	}

	// Timing simulation + VCD.
	sim, err := gobd.NewTimingSimulator(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := gobd.Pattern{"a": 1, "b": 1}
	v2 := gobd.Pattern{"a": 0, "b": 1}
	good, err := sim.Run(v1, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := sim.Run(v1, v2, []gobd.DelayPenalty{{GateName: "g1", Rising: true, Extra: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if !gobd.DetectsAtCapture(c, good, faulty, good.SettleTime()+1e-12) {
		t.Fatal("timing detection failed")
	}
	if vcd := gobd.TraceVCD(good, "g"); !strings.Contains(vcd, "$timescale") {
		t.Fatal("vcd broken")
	}

	// Diagnosis. BuildDictionary is the deprecated spelling of
	// NewFaultDictionary; both must keep compiling and agree.
	dict := gobd.BuildDictionary(c, faults, ts.Tests)
	if dict2 := gobd.NewFaultDictionary(c, faults, ts.Tests); dict2 == nil {
		t.Fatal("NewFaultDictionary returned nil")
	}
	sig := gobd.SimulateResponse(c, faults[0], ts.Tests)
	cands, dist, err := dict.Diagnose(sig)
	if err != nil || dist != 0 || len(cands) == 0 {
		t.Fatalf("diagnose %v %d %v", cands, dist, err)
	}

	// Structural fingerprint: invariant under net renaming.
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := gobd.ParseNetlist("circuit g2\ninput a b\noutput out\nnand u1 out a b\n")
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := renamed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp2 {
		t.Fatalf("fingerprint not rename-invariant: %s vs %s", fp, fp2)
	}

	// Mission facade: NewMission is the deprecated spelling of
	// NewMissionCampaign; both must keep compiling.
	if gobd.NewMission == nil || gobd.NewMissionCampaign == nil {
		t.Fatal("mission constructors missing")
	}
	camp, err := gobd.NewMissionCampaign(gobd.MissionConfig{
		Circuit: c, Seed: 1, Chips: 2, Duration: 100, FaultRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := camp.Run(context.Background())
	if err != nil || rep.Chips != 2 {
		t.Fatalf("mission %+v %v", rep, err)
	}

	// Analog layer construction through the facade.
	ac := gobd.NewAnalogCircuit()
	if ac.NumNodes() != 1 {
		t.Fatal("fresh circuit should contain only ground")
	}
}

// TestPublicAPIAnalog exercises the analog facade path with a real solve.
func TestPublicAPIAnalog(t *testing.T) {
	p := gobd.DefaultProcess()
	h := gobd.NewNANDHarness(p, 0)
	inj := gobd.Inject(h.B.C, "f", h.FETFor(gobd.PullDown, 0), gobd.FaultFree)
	inj.SetStage(gobd.MBD1)
	if inj.Stage != gobd.MBD1 {
		t.Fatal("stage not set")
	}
	pr, err := gobd.ParsePair("(01,11)")
	if err != nil {
		t.Fatal(err)
	}
	h.Apply(pr, 0.3e-9, 50e-12)
	res, err := h.Run(1.5e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(res, pr, 0.3e-9, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay <= 0 && m.Kind.String() == "ok" {
		t.Fatalf("measurement %+v", m)
	}
	if nl := gobd.AnalogNetlist(h.B.C); !strings.Contains(nl, ".end") {
		t.Fatal("netlist broken")
	}
	prog := gobd.NewProgression(gobd.NMOS)
	if prog.Window <= 0 {
		t.Fatal("progression window")
	}
	if len(gobd.Stages()) != 5 {
		t.Fatal("stages")
	}
}
