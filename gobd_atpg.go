// ATPG layer of the public facade: PODEM-based generation for the OBD,
// transition and stuck-at models, exact fault grading, exhaustive pair
// analysis, and the deterministic multicore scheduler with its hardened
// (typed-error, panic-confined, cancellable) batch entry points.
package gobd

import (
	"gobd/internal/atpg"
)

// ATPG layer.
type (
	// Pattern is a primary-input assignment.
	Pattern = atpg.Pattern
	// TwoPattern is an ordered vector pair.
	TwoPattern = atpg.TwoPattern
	// ATPGOptions tunes the generators.
	ATPGOptions = atpg.Options
	// Coverage summarizes a fault-grading run.
	Coverage = atpg.Coverage
	// Scheduler is the deterministic worker pool behind the batch graders
	// and generators.
	Scheduler = atpg.Scheduler
	// WorkerStats is one worker's share of a scheduler run.
	WorkerStats = atpg.WorkerStats
	// SATStats counts how ATPGOptions.SATFallback resolved PODEM aborts
	// (Aborts == Detected + Untestable + Undecided).
	SATStats = atpg.SATStats
)

// Test generation and fault simulation.
var (
	// GenerateOBDTest produces a two-pattern test for one OBD fault.
	GenerateOBDTest = atpg.GenerateOBDTest
	// GenerateOBDTests runs the OBD generator over a fault list.
	GenerateOBDTests = atpg.GenerateOBDTests
	// GenerateTransitionTests runs the classical transition generator.
	GenerateTransitionTests = atpg.GenerateTransitionTests
	// GenerateStuckAtTests runs the classical stuck-at generator.
	GenerateStuckAtTests = atpg.GenerateStuckAtTests
	// DetectsOBD fault-simulates one vector pair against one OBD fault.
	DetectsOBD = atpg.DetectsOBD
	// GradeOBDParallel is the bit-parallel multicore grader; its Coverage
	// is bit-identical to the scalar reference engine for any worker count.
	GradeOBDParallel = atpg.GradeOBDParallel
	// NewScheduler builds a scheduler with an explicit worker count.
	NewScheduler = atpg.NewScheduler
	// SetDefaultWorkers resizes the pool behind the package-level
	// graders and generators.
	SetDefaultWorkers = atpg.SetDefaultWorkers
	// AnalyzeExhaustive enumerates all input transitions of a circuit.
	AnalyzeExhaustive = atpg.AnalyzeExhaustive

	// GradeOBD fault-simulates a test set against an OBD fault list with
	// the scalar reference engine.
	//
	// Deprecated: use GradeOBDParallel (bit-identical Coverage for any
	// worker count, validated circuit, typed errors) or a Scheduler's
	// GradeOBD/GradeOBDCtx methods. The scalar engine remains as the
	// differential-testing oracle and keeps working here.
	GradeOBD = atpg.GradeOBD
)

// Hardened scheduler layer: typed errors, panic confinement and
// context-aware batch runs.
type (
	// InvalidCircuitError reports a batch entry point given a circuit
	// failing validation.
	InvalidCircuitError = atpg.InvalidCircuitError
	// InputLimitError reports an exhaustive enumeration beyond the
	// supported primary-input count.
	InputLimitError = atpg.InputLimitError
	// PanicError is a worker panic confined to an ordinary error.
	PanicError = atpg.PanicError
	// ItemError ties a failure to its work-item index.
	ItemError = atpg.ItemError
	// RunReport is the outcome of a hardened ForEachCtx run.
	RunReport = atpg.RunReport
)

// Context-aware generator variants: same results as their plain
// counterparts, plus prompt cancellation with a deterministic prefix.
// The matching grading variants are Scheduler methods (GradeOBDCtx,
// GradeTransitionCtx, GradeStuckAtCtx) — the serving layer's hot path.
var (
	GenerateOBDTestsCtx        = atpg.GenerateOBDTestsCtx
	GenerateTransitionTestsCtx = atpg.GenerateTransitionTestsCtx
	GenerateStuckAtTestsCtx    = atpg.GenerateStuckAtTestsCtx
)
