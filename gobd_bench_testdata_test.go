package gobd_test

import (
	"math/rand"
	"os"
	"testing"

	"gobd"
)

// c432Class deterministically regenerates the committed c432-scale
// benchmark circuit: ISCAS-85 c432's shape (36 primary inputs, 160 gates)
// drawn from the primitive-gate random generator at seed 432. The .bench
// file in testdata is this circuit, so tools and examples can load a
// stable big circuit from disk while the generator remains the source of
// truth.
func c432Class() *gobd.Circuit {
	rng := rand.New(rand.NewSource(432))
	c := gobd.RandomCircuit(rng, gobd.RandomOptions{Inputs: 36, Gates: 160, Primitive: true})
	c.Name = "c432s: synthetic c432-scale benchmark (36 PI, 160 gates, seed 432)"
	return c
}

// s27Class deterministically regenerates the committed s27-scale
// sequential benchmark: ISCAS-89 s27's shape (4 primary inputs, 3 DFFs,
// 10 combinational gates) drawn from the primitive-gate random generator
// at seed 39 — the first small seed whose circuit reads every primary
// input and every state bit. The .bench file in testdata is this circuit.
func s27Class() *gobd.Circuit {
	rng := rand.New(rand.NewSource(39))
	c := gobd.RandomCircuit(rng, gobd.RandomOptions{Inputs: 4, Gates: 10, FFs: 3, Primitive: true})
	c.Name = "s27s: synthetic s27-class sequential benchmark (4 PI, 3 DFF, 10 gates, seed 39)"
	return c
}

// TestS27BenchInSync guards testdata/s27.bench against drift, exactly as
// TestC432BenchInSync does for the combinational benchmark: byte-identical
// .bench rendering (refresh with `go test -run TestS27BenchInSync -update .`)
// and a structurally identical reparse — which exercises the DFF round
// trip through the .bench reader and writer.
func TestS27BenchInSync(t *testing.T) {
	const path = "testdata/s27.bench"
	c := s27Class()
	want, err := gobd.FormatBench(c)
	if err != nil {
		t.Fatalf("formatting the generated circuit: %v", err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (run `go test -run TestS27BenchInSync -update .` to create it)", path, err)
	}
	if string(got) != want {
		t.Fatalf("%s has drifted from the seed-39 generator output; regenerate with `go test -run TestS27BenchInSync -update .`", path)
	}
	parsed, err := gobd.ParseCircuitFile(path)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	if len(parsed.Inputs) != 4 || len(parsed.Gates) != 13 || len(parsed.DFFs()) != 3 {
		t.Fatalf("parsed %d inputs / %d gates / %d DFFs, want 4 / 13 / 3",
			len(parsed.Inputs), len(parsed.Gates), len(parsed.DFFs()))
	}
	pfp, err := parsed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	cfp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if pfp != cfp {
		t.Fatal("parsed circuit is not structurally identical to the generator output")
	}
}

// TestC432BenchInSync guards testdata/c432.bench against drift: the file
// must be byte-identical to the regenerated circuit's .bench rendering
// (refresh with `go test -run TestC432BenchInSync -update .`), and parsing
// it back must reproduce the exact structure.
func TestC432BenchInSync(t *testing.T) {
	const path = "testdata/c432.bench"
	c := c432Class()
	want, err := gobd.FormatBench(c)
	if err != nil {
		t.Fatalf("formatting the generated circuit: %v", err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (run `go test -run TestC432BenchInSync -update .` to create it)", path, err)
	}
	if string(got) != want {
		t.Fatalf("%s has drifted from the seed-432 generator output; regenerate with `go test -run TestC432BenchInSync -update .`", path)
	}
	parsed, err := gobd.ParseCircuitFile(path)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	if len(parsed.Inputs) != 36 || len(parsed.Gates) != 160 {
		t.Fatalf("parsed %d inputs / %d gates, want 36 / 160", len(parsed.Inputs), len(parsed.Gates))
	}
	pfp, err := parsed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	cfp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if pfp != cfp {
		t.Fatal("parsed circuit is not structurally identical to the generator output")
	}
}
