package gobd_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current exported surface")

// TestExportedAPILock locks the facade's exported surface against a
// golden file. Any addition, removal or signature change of an exported
// name fails this test with a readable diff; after reviewing an
// INTENTIONAL change, regenerate the golden with
//
//	go test -run TestExportedAPILock -update .
//
// and commit testdata/api.golden alongside the API change. This is what
// turns accidental facade drift (a refactor silently renaming or
// dropping a re-export) into a reviewed decision.
func TestExportedAPILock(t *testing.T) {
	got, err := exportedSurface(".")
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "api.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", golden, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v (run `go test -run TestExportedAPILock -update .` to create it)", golden, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	for _, d := range diffLines(want, got) {
		t.Error(d)
	}
	t.Fatalf("exported API differs from %s; if the change is intentional, regenerate with `go test -run TestExportedAPILock -update .`", golden)
}

// exportedSurface renders every exported top-level declaration of the
// package in dir as one sorted line per name.
func exportedSurface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	pkg, ok := pkgs["gobd"]
	if !ok {
		return "", fmt.Errorf("package gobd not found in %s", dir)
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				sig := strings.TrimPrefix(render(fset, stripNames(d.Type)), "func")
				lines = append(lines, "func "+d.Name.Name+sig)
			case *ast.GenDecl:
				lines = append(lines, genDeclLines(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// genDeclLines renders the exported names of one type/const/var block.
func genDeclLines(fset *token.FileSet, d *ast.GenDecl) []string {
	var lines []string
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			eq := ""
			if sp.Assign != token.NoPos {
				eq = "= "
			}
			lines = append(lines, "type "+sp.Name.Name+" "+eq+render(fset, sp.Type))
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for i, name := range sp.Names {
				if !name.IsExported() {
					continue
				}
				line := kind + " " + name.Name
				switch {
				case sp.Type != nil:
					line += " " + render(fset, sp.Type)
				case i < len(sp.Values):
					line += " = " + render(fset, sp.Values[i])
				}
				lines = append(lines, line)
			}
		}
	}
	return lines
}

// stripNames removes parameter names from a signature so renaming a
// parameter (not an API change) does not trip the lock.
func stripNames(ft *ast.FuncType) *ast.FuncType {
	strip := func(fl *ast.FieldList) *ast.FieldList {
		if fl == nil {
			return nil
		}
		out := &ast.FieldList{}
		for _, f := range fl.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				out.List = append(out.List, &ast.Field{Type: f.Type})
			}
		}
		return out
	}
	return &ast.FuncType{Params: strip(ft.Params), Results: strip(ft.Results)}
}

// render prints an AST node as compact source text.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// diffLines reports which golden lines disappeared and which new lines
// appeared — a set diff, which reads better than a positional diff for a
// sorted inventory.
func diffLines(want, got string) []string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(want, "\n"), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		gotSet[l] = true
	}
	var out []string
	for l := range wantSet {
		if !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	sort.Strings(out)
	return out
}
