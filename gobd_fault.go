// Fault layer of the public facade: the per-transistor OBD model with its
// series-parallel excitation rule, the classical stuck-at/transition/EM
// universes, response-signature diagnosis and LFSR/MISR self-test.
package gobd

import (
	"gobd/internal/bist"
	"gobd/internal/diag"
	"gobd/internal/fault"
)

// Fault model layer.
type (
	// OBDFault is a per-transistor gate-oxide-breakdown fault.
	OBDFault = fault.OBD
	// StuckAtFault is the classical stuck-at fault.
	StuckAtFault = fault.StuckAt
	// TransitionFault is the classical slow-to-rise/fall fault.
	TransitionFault = fault.Transition
	// EMFault is an intra-gate electromigration fault.
	EMFault = fault.EM
	// Pair is a two-pattern local input assignment, e.g. (01,11).
	Pair = fault.Pair
	// Side distinguishes pull-up (PMOS) and pull-down (NMOS) networks.
	Side = fault.Side
)

// Network sides.
const (
	PullUp   = fault.PullUp
	PullDown = fault.PullDown
)

// Fault-universe generators and the Section 4.1/5 analyses.
var (
	// OBDUniverse enumerates all per-transistor OBD faults of a circuit.
	OBDUniverse = fault.OBDUniverse
	// StuckAtUniverse enumerates stuck-at faults on every net.
	StuckAtUniverse = fault.StuckAtUniverse
	// TransitionUniverse enumerates transition faults on every net.
	TransitionUniverse = fault.TransitionUniverse
	// ParsePair parses the paper's pair notation, e.g. "(11,01)".
	ParsePair = fault.ParsePair
	// GatePairTable maps each OBD fault of a gate type to its pairs.
	GatePairTable = fault.GatePairTable
	// MinimalPairCover computes the exact minimum exciting pair set.
	MinimalPairCover = fault.MinimalPairCover
)

// Diagnosis layer.
type (
	// FaultDictionary maps test-set responses back to candidate defects.
	FaultDictionary = diag.Dictionary
	// FaultResponse is a pass/fail observation of a test set.
	FaultResponse = diag.Response
)

// Diagnosis constructors.
var (
	// NewFaultDictionary simulates every fault against a test set.
	NewFaultDictionary = diag.Build
	// SimulateResponse computes one fault's response signature.
	SimulateResponse = diag.SimulateResponse

	// BuildDictionary simulates every fault against a test set.
	//
	// Deprecated: use NewFaultDictionary, the name every other facade
	// constructor follows (New<Type>). BuildDictionary remains and is
	// identical.
	BuildDictionary = diag.Build
)

// BIST layer.
type (
	// BISTSession is an LFSR test-per-clock self-test run with MISR
	// signature compaction.
	BISTSession = bist.Session
	// LFSR is a maximal-length Galois linear-feedback shift register.
	LFSR = bist.LFSR
	// MISR is a multiple-input signature register.
	MISR = bist.MISR
)

// BIST constructors.
var (
	// NewBISTSession prepares an n-clock self-test session.
	NewBISTSession = bist.NewSession
	// NewLFSR builds a maximal-length LFSR (widths 2–16).
	NewLFSR = bist.NewLFSR
	// NewMISR builds a signature register (widths 2–16).
	NewMISR = bist.NewMISR
)
