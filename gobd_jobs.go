// Durable layer of the public facade: the crash-safe content-addressed
// artifact store and the checkpointed job runtime behind /v1/jobs
// (DESIGN.md §13). Same determinism contract as the synchronous API —
// a job's artifact is byte-identical to the synchronous response for
// the same canonical request, across worker counts, restarts and
// crash-resume at any failpoint.
package gobd

import (
	"gobd/internal/jobs"
	"gobd/internal/store"
)

// Artifact store layer: write-temp + fsync + atomic-rename objects with
// digest-verified reads; corrupt objects are quarantined, never served.
type (
	// ArtifactStore is the crash-safe content-addressed object store.
	ArtifactStore = store.Store
	// StoreFailpoint names one crash-injection point inside the store.
	StoreFailpoint = store.Failpoint
	// StoreHook observes failpoints (tests inject crashes through it).
	StoreHook = store.Hook
	// CorruptArtifactError reports a digest-verification failure; the
	// offending object is already quarantined when it is returned.
	CorruptArtifactError = store.CorruptArtifactError
)

var (
	// OpenArtifactStore opens (creating if needed) a store rooted at dir.
	OpenArtifactStore = store.Open
	// ErrArtifactNotFound is returned by ArtifactStore.Get for absent keys.
	ErrArtifactNotFound = store.ErrNotFound
)

// Job runtime layer: journaled, checkpointed mission/ATPG jobs that
// resume losslessly after a crash or drain.
type (
	// JobsManager runs durable jobs over an ArtifactStore and a journal.
	JobsManager = jobs.Manager
	// JobsConfig parameterizes a JobsManager.
	JobsConfig = jobs.Config
	// JobSpec is a job submission (kind, netlist, per-kind parameters).
	JobSpec = jobs.Spec
	// JobMissionSpec parameterizes a mission-campaign job.
	JobMissionSpec = jobs.MissionSpec
	// JobATPGSpec parameterizes an ATPG-generation job.
	JobATPGSpec = jobs.ATPGSpec
	// JobKind discriminates mission vs atpg jobs.
	JobKind = jobs.Kind
	// JobState is the lifecycle state of a job.
	JobState = jobs.State
	// JobSnapshot is a point-in-time view of one job.
	JobSnapshot = jobs.Job
	// JobNotFoundError reports an unknown job ID.
	JobNotFoundError = jobs.NotFoundError
	// JobNotDoneError reports a result fetch before completion.
	JobNotDoneError = jobs.NotDoneError
	// JobSpecError reports an invalid job submission.
	JobSpecError = jobs.SpecError
)

var (
	// OpenJobs replays the journal and starts the job runtime.
	OpenJobs = jobs.Open
	// ErrJobsDraining is returned by Submit while the manager drains.
	ErrJobsDraining = jobs.ErrDraining
)

// Job kinds and lifecycle states.
const (
	JobKindMission = jobs.KindMission
	JobKindATPG    = jobs.KindATPG

	JobStateQueued    = jobs.StateQueued
	JobStateRunning   = jobs.StateRunning
	JobStateDone      = jobs.StateDone
	JobStateFailed    = jobs.StateFailed
	JobStateCancelled = jobs.StateCancelled
)
