// Gate-level layer of the public facade: combinational circuits, the
// textual and Verilog netlist formats, structural fingerprints, benchmark
// generators and the event-driven timing simulator. Scan/DFT wrapping
// lives in gobd_seq.go; static netlist analysis in gobd_netcheck.go.
package gobd

import (
	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/timing"
)

// Gate-level layer.
type (
	// Circuit is a gate-level combinational netlist.
	Circuit = logic.Circuit
	// Gate is one gate instance.
	Gate = logic.Gate
	// GateType enumerates gate functions.
	GateType = logic.GateType
	// Value is a three-valued logic level.
	Value = logic.Value
	// Fingerprint is a canonical structural hash of a circuit: stable
	// across gate reordering and net renaming, and the cache shard key of
	// the serving layer (Circuit.Fingerprint computes it).
	Fingerprint = logic.Fingerprint
	// RandomOptions configures the seeded random-circuit generator.
	RandomOptions = logic.RandomOptions
	// ParseError is ParseCircuitFile's typed failure: it names the file,
	// the format its extension dispatched to, and the parser's error.
	ParseError = logic.ParseError
)

// Gate-level constructors and parsing.
var (
	// NewCircuit creates an empty gate-level circuit.
	NewCircuit = logic.New
	// ParseNetlist reads the textual netlist format.
	ParseNetlist = logic.ParseString
	// FormatNetlist writes the textual netlist format.
	FormatNetlist = logic.Format
	// ParseVerilog reads a structural Verilog module.
	ParseVerilog = logic.ParseVerilogString
	// FormatVerilog writes a structural Verilog module.
	FormatVerilog = logic.FormatVerilog
	// ParseBench reads an ISCAS-85 .bench netlist.
	ParseBench = logic.ParseBenchString
	// FormatBench writes an ISCAS-85 .bench netlist.
	FormatBench = logic.FormatBench
	// ParseCircuitFile reads a netlist file, dispatching on its extension
	// (.bench, .v, or the textual format). Parse failures are *ParseError;
	// a file yielding an empty circuit fails with ErrEmptyNetlist under it.
	ParseCircuitFile = logic.ParseFile
	// ErrEmptyNetlist is the sentinel under a ParseCircuitFile failure on
	// a file that parses to a completely empty circuit.
	ErrEmptyNetlist = logic.ErrEmptyNetlist
	// RandomCircuit generates a seeded random combinational circuit —
	// the scale testbed for big-circuit grading.
	RandomCircuit = logic.RandomCircuit
	// ComputeTestability runs SCOAP controllability/observability analysis.
	ComputeTestability = logic.ComputeTestability
)

// FullAdderSumLogic returns the reconstructed Fig. 8 gate-level netlist
// (14 NAND2 + 11 INV, depth 9, intentional redundancy).
func FullAdderSumLogic() *Circuit { return cells.FullAdderSumLogic() }

// FullAdderTarget names the NAND gate with four upstream and four
// downstream stages — the paper's Fig. 9 injection site.
const FullAdderTarget = cells.FullAdderTarget

// Benchmark circuits.
var (
	// C17 is the ISCAS-85 c17 benchmark.
	C17 = logic.C17
	// RippleCarryAdder builds an n-bit NAND-only adder.
	RippleCarryAdder = logic.RippleCarryAdder
	// ParityTree builds an n-input XOR tree.
	ParityTree = logic.ParityTree
	// Mux41 builds a 4:1 multiplexer.
	Mux41 = logic.Mux41
)

// Gate-level timing layer.
type (
	// TimingSimulator is the event-driven gate-level timing simulator.
	TimingSimulator = timing.Simulator
	// TimingTrace is a simulated per-net waveform set.
	TimingTrace = timing.Trace
	// DelayPenalty injects a directional per-gate delay (an OBD defect).
	DelayPenalty = timing.Penalty
)

// Timing constructors and helpers.
var (
	// NewTimingSimulator builds a simulator over a gate-level circuit.
	NewTimingSimulator = timing.New
	// DetectsAtCapture compares good/faulty traces at a capture time.
	DetectsAtCapture = timing.DetectsAt
	// TraceVCD renders a timing trace as a Value Change Dump.
	TraceVCD = timing.VCD
)
