// Mission layer of the public facade: the Section 4.2 detection-window
// scheduler and the seeded discrete-event mission campaign (the
// concurrent test/diagnose/repair loop under injected adversity behind
// cmd/obdmission and the /v1/mission endpoint).
package gobd

import (
	"gobd/internal/mission"
	"gobd/internal/sched"
)

// Scheduling layer (Section 4.2).
type (
	// DelayPoint is one sample of a delay-versus-time trajectory.
	DelayPoint = sched.DelayPoint
	// Window is a detection window for one detector slack.
	Window = sched.Window
)

// ComputeWindow locates the detection window for a given slack.
var ComputeWindow = sched.ComputeWindow

// Mission layer (cmd/obdmission front-end): a deterministic, seeded
// discrete-event simulation of a chip population running the paper's
// concurrent test/diagnose/repair loop under injected adversity.
type (
	// MissionConfig parameterizes a campaign.
	MissionConfig = mission.Config
	// MissionCampaign is a configured, reusable campaign.
	MissionCampaign = mission.Campaign
	// MissionAdversity is the operational hazard profile.
	MissionAdversity = mission.Adversity
	// MissionReport is the aggregated campaign outcome.
	MissionReport = mission.Report
	// MissionChipResult is one chip's outcome.
	MissionChipResult = mission.ChipResult
)

// Mission constructors and profiles.
var (
	// NewMissionCampaign validates a config and precomputes the shared
	// bench.
	NewMissionCampaign = mission.New
	// ParseAdversity parses "off", "light", "heavy" or a key=value list.
	ParseAdversity = mission.ParseAdversity
	// AdversityOff/Light/Heavy are the canned hazard profiles.
	AdversityOff   = mission.Off
	AdversityLight = mission.Light
	AdversityHeavy = mission.Heavy

	// NewMission validates a config and precomputes the shared bench.
	//
	// Deprecated: use NewMissionCampaign, which names the type it
	// constructs (MissionCampaign) like every other facade constructor.
	// NewMission remains and is identical.
	NewMission = mission.New
)
