// Static-analysis layer of the public facade: netlist lint, implication
// -proved constants, the structural (one-sided) OBD untestability prover,
// the exact SAT-backed proof engine with checkable RUP certificates, and
// combinational equivalence checking.
package gobd

import (
	"gobd/internal/netcheck"
	"gobd/internal/sat"
)

// Static netlist analysis layer (cmd/obdlint front-end).
type (
	// NetReport is a full netcheck analysis: lint diagnostics, constant
	// nets, OBD untestability verdicts and a SCOAP hard-fault ranking.
	NetReport = netcheck.Report
	// NetDiagnostic is one structural lint finding.
	NetDiagnostic = netcheck.Diagnostic
	// NetcheckOptions tunes the analysis passes.
	NetcheckOptions = netcheck.Options
	// OBDVerdict is a per-fault untestability verdict with its proof.
	OBDVerdict = netcheck.Verdict
	// ImplicationProof is a machine-checkable implication chain.
	ImplicationProof = netcheck.Proof
)

// Static analysis entry points.
var (
	// AnalyzeNetlist runs every netcheck pass over a circuit.
	AnalyzeNetlist = netcheck.Analyze
	// LintNetlist runs only the structural lint pass.
	LintNetlist = netcheck.Lint
	// ProveOBDUntestable attempts a static untestability proof for one
	// OBD fault; the verdict is sound but one-sided (see DESIGN.md). For
	// a complete two-sided verdict use ProveOBDExact.
	ProveOBDUntestable = netcheck.ProveOBD
	// StaticConstants derives implication-proved constant nets.
	StaticConstants = netcheck.Constants
	// VerifyImplicationProof independently replays a proof chain.
	VerifyImplicationProof = netcheck.VerifyProof
)

// Exact proof engine: complete SAT-decided OBD testability verdicts
// carrying independently checkable certificates — a replayable witness
// pair when testable, per-excitation-pair RUP refutations when not.
type (
	// ExactVerdict is one fault's complete SAT verdict with certificate.
	ExactVerdict = netcheck.ExactVerdict
	// ExactWitness is a testable verdict's two-pattern witness.
	ExactWitness = netcheck.ExactWitness
	// ExactRefutation rules out one excitation pair (pin conflict or
	// UNSAT proof).
	ExactRefutation = netcheck.ExactRefutation
	// ExactReport is the whole-universe census of exact verdicts.
	ExactReport = netcheck.ExactReport
	// ExactProofError is VerifyExactVerdict's typed rejection.
	ExactProofError = netcheck.ExactProofError
	// SATProof is a clause-by-clause RUP (reverse unit propagation)
	// certificate of unsatisfiability.
	SATProof = sat.Proof
)

// Exact proof entry points.
var (
	// ProveOBDExact decides one OBD fault exactly (no conflict budget).
	ProveOBDExact = netcheck.ProveOBDExact
	// ProveOBDExactBudget is ProveOBDExact under a conflict budget;
	// exhausting it yields an honestly Aborted verdict, never a wrong one.
	ProveOBDExactBudget = netcheck.ProveOBDExactBudget
	// ProveOBDExactList runs the exact prover over a fault list.
	ProveOBDExactList = netcheck.ProveOBDExactList
	// VerifyExactVerdict independently re-derives a verdict's CNF and
	// checks its certificate (witness replay or RUP proof per pair).
	VerifyExactVerdict = netcheck.VerifyExactVerdict
	// ExactAnalyzeNetlist runs the exact prover over a circuit's whole
	// OBD universe (budget 0 = DefaultExactBudget conflicts per pair).
	ExactAnalyzeNetlist = netcheck.ExactAnalyze
	// CheckSATProof replays a RUP proof against a CNF with the
	// solver-independent checker.
	CheckSATProof = sat.Check
)

// DefaultExactBudget is the per-pair conflict budget the analysis and
// fallback paths use when none is given.
const DefaultExactBudget = netcheck.DefaultExactBudget

// Combinational equivalence checking over the same SAT core.
type (
	// EquivVerdict is a circuit-equivalence verdict: a proof when
	// equivalent, a distinguishing input assignment when not.
	EquivVerdict = netcheck.EquivVerdict
	// EquivError reports CEC interface mismatches (differing PI/PO sets).
	EquivError = netcheck.EquivError
	// OBDEquivVerdict is a fault-equivalence verdict: a proof that two
	// OBD faults are detected by exactly the same two-pattern tests, or a
	// distinguishing pair.
	OBDEquivVerdict = netcheck.OBDEquivVerdict
)

// Equivalence entry points.
var (
	// ProveEquiv decides combinational equivalence of two circuits with
	// matching PI/PO name sets.
	ProveEquiv = netcheck.ProveEquiv
	// VerifyEquivProof independently checks a ProveEquiv proof.
	VerifyEquivProof = netcheck.VerifyEquivProof
	// ProveOBDEquiv decides whether two OBD faults share a detection set.
	ProveOBDEquiv = netcheck.ProveOBDEquiv
	// VerifyOBDEquivProof independently checks a ProveOBDEquiv proof.
	VerifyOBDEquivProof = netcheck.VerifyOBDEquivProof
	// CertifyCollapseOBD proves every member of every CollapseOBDComplete
	// class detection-equivalent to its representative.
	CertifyCollapseOBD = netcheck.CertifyCollapseOBD
)
