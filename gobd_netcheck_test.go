package gobd_test

import (
	"testing"

	"gobd"
)

// TestExactCensusC432 backs the EXPERIMENTS.md claim end-to-end through
// the facade: the c432-scale benchmark's whole OBD universe decides
// under the default conflict budget (584 = 567 testable + 17
// untestable, zero aborted) and every verdict's certificate survives
// independent verification — witnesses replayed through simulation,
// refutation CNFs re-encoded and their RUP proofs re-checked.
func TestExactCensusC432(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-universe SAT census of a 160-gate circuit")
	}
	c := c432Class()
	rep := gobd.ExactAnalyzeNetlist(c, 0)
	if rep.Faults != 584 || rep.Testable != 567 || rep.Untestable != 17 || rep.Aborted != 0 {
		t.Fatalf("census %d/%d/%d/%d (faults/testable/untestable/aborted), want 584/567/17/0",
			rep.Faults, rep.Testable, rep.Untestable, rep.Aborted)
	}
	faults, _ := gobd.OBDUniverse(c)
	if len(faults) != len(rep.Verdicts) {
		t.Fatalf("%d verdicts for %d faults", len(rep.Verdicts), len(faults))
	}
	for i, v := range rep.Verdicts {
		if err := gobd.VerifyExactVerdict(c, faults[i], v); err != nil {
			t.Fatalf("verdict %s does not verify: %v", v.Fault, err)
		}
	}
}
