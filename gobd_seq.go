// Sequential/DFT layer of the public facade: scan models lifted out of
// DFF-bearing netlists, scan-chain insertion back into flat netlists,
// time-frame unrolling into combinational equivalents, and the
// style-parameterized two-pattern generators (enhanced scan,
// launch-on-shift, launch-on-capture). The gate-level DFF primitive
// itself lives in the Circuit type (gobd_logic.go).
package gobd

import (
	"gobd/internal/seq"
)

// Sequential/DFT layer.
type (
	// SeqCircuit is a combinational core with a scan chain.
	SeqCircuit = seq.Circuit
	// ScanFF is one scan flip-flop (Q feeds a core input, D captures a net).
	ScanFF = seq.FF
	// ScanStyle is a two-pattern test-application style: how the second
	// vector of a pair may be produced by the scan hardware.
	ScanStyle = seq.Style
	// ScanOptions is the one knob set shared by every style's generator.
	ScanOptions = seq.Options
	// ScanResult is the outcome of a batch sequential generation run.
	ScanResult = seq.Result
	// ScanState is one present-state assignment of a scan chain.
	ScanState = seq.State

	// ScanMode is a two-pattern test-application style.
	//
	// Deprecated: use ScanStyle.
	ScanMode = seq.Mode
)

// Scan application styles.
const (
	// EnhancedScanStyle applies arbitrary vector pairs (hold-scan cells).
	EnhancedScanStyle = seq.Enhanced
	// LOSStyle launches the second vector by a one-bit chain shift.
	LOSStyle = seq.LOS
	// LOCStyle launches the second vector through the circuit's own
	// next-state logic (broadside).
	LOCStyle = seq.LOC
)

// Deprecated scan-mode names.
const (
	// EnhancedScanMode applies arbitrary vector pairs.
	//
	// Deprecated: use EnhancedScanStyle.
	EnhancedScanMode = seq.EnhancedScan
	// LaunchOnShiftMode launches by a one-bit chain shift.
	//
	// Deprecated: use LOSStyle.
	LaunchOnShiftMode = seq.LaunchOnShift
	// LaunchOnCaptureMode launches through the next-state logic.
	//
	// Deprecated: use LOCStyle.
	LaunchOnCaptureMode = seq.LaunchOnCapture
)

// Sequential constructors and generators.
var (
	// ScanFromCircuit lifts a DFF-bearing gate-level netlist into its scan
	// model: the combinational core plus the flip-flop chain in canonical
	// (gate declaration) order.
	ScanFromCircuit = seq.FromCircuit
	// ScanInsert stitches a scan model back into one flat DFF-bearing
	// netlist — the inverse of ScanFromCircuit.
	ScanInsert = seq.Insert
	// ScanUnroll compiles k time frames of a scan model into one
	// combinational circuit the combinational graders and provers run on
	// unchanged.
	ScanUnroll = seq.Unroll
	// ParseScanStyle resolves a style name ("enhanced", "los", "loc" or
	// the long forms) to its ScanStyle.
	ParseScanStyle = seq.ParseStyle
	// DefaultScanOptions returns the generator settings used by the
	// experiments.
	DefaultScanOptions = seq.DefaultOptions
	// GenerateScanTest searches one style's pair space for a two-pattern
	// test of a single core OBD fault.
	GenerateScanTest = seq.Generate
	// GenerateScanTests runs a style's generator over a fault list across
	// the scheduler pool (bit-identical for any worker count).
	GenerateScanTests = seq.GenerateTests
	// GenerateLOCTest is GenerateScanTest specialized to launch-on-capture.
	GenerateLOCTest = seq.GenerateLOCTest
	// GenerateLOCTests is GenerateScanTests specialized to launch-on-capture.
	GenerateLOCTests = seq.GenerateLOCTests
	// Accumulator builds the n-bit accumulator testbed.
	Accumulator = seq.Accumulator

	// NewSeqCircuit wraps a combinational core with a scan chain.
	//
	// Deprecated: use ScanFromCircuit on a DFF-bearing netlist, or
	// ScanInsert followed by ScanFromCircuit to round-trip an explicit
	// chain.
	NewSeqCircuit = seq.New
)
