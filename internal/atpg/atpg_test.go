package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

func mustCircuit(t *testing.T, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const xorNandSrc = `circuit xor4
input a b
output y
nand n1 n1 a b
nand n2 n2 a n1
nand n3 n3 b n1
nand n4 y n2 n3
`

// allPatterns enumerates complete PI assignments.
func allPatterns(c *logic.Circuit) []Pattern {
	n := 1 << len(c.Inputs)
	out := make([]Pattern, 0, n)
	for m := 0; m < n; m++ {
		p := make(Pattern, len(c.Inputs))
		for i, in := range c.Inputs {
			p[in] = logic.FromBool(m&(1<<i) != 0)
		}
		out = append(out, p)
	}
	return out
}

func TestStuckAtSingleNand(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	// y stuck-at-0: need y=1 good: any input 0; always observable.
	p, st := GenerateStuckAtTest(c, fault.StuckAt{Net: "y", V: logic.Zero}, nil)
	if st != Detected {
		t.Fatalf("status %v", st)
	}
	if !DetectsStuckAt(c, fault.StuckAt{Net: "y", V: logic.Zero}, p) {
		t.Fatalf("generated pattern %v does not detect", p)
	}
	// a stuck-at-1: need a=0, b=1 to observe through the NAND.
	f := fault.StuckAt{Net: "a", V: logic.One}
	p, st = GenerateStuckAtTest(c, f, nil)
	if st != Detected {
		t.Fatalf("status %v", st)
	}
	if p["a"] != logic.Zero || p["b"] != logic.One {
		t.Fatalf("pattern %v, want a=0 b=1", p)
	}
}

func TestStuckAtUntestableRedundant(t *testing.T) {
	// y = AND(a, !a) is constant 0: y/sa0 is untestable.
	c := mustCircuit(t, "circuit r\ninput a\noutput y\ninv i1 an a\nand g1 y a an\n")
	_, st := GenerateStuckAtTest(c, fault.StuckAt{Net: "y", V: logic.Zero}, nil)
	if st != Untestable {
		t.Fatalf("status %v, want untestable", st)
	}
	// y/sa1 IS testable (any pattern shows 0 vs 1).
	p, st := GenerateStuckAtTest(c, fault.StuckAt{Net: "y", V: logic.One}, nil)
	if st != Detected || !DetectsStuckAt(c, fault.StuckAt{Net: "y", V: logic.One}, p) {
		t.Fatalf("status %v", st)
	}
}

func TestOBDSingleNandAllFaults(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	faults, _ := fault.OBDUniverse(c)
	if len(faults) != 4 {
		t.Fatalf("%d faults", len(faults))
	}
	for _, f := range faults {
		tp, st := GenerateOBDTest(c, f, nil)
		if st != Detected {
			t.Fatalf("%s: status %v", f, st)
		}
		if !DetectsOBD(c, f, *tp) {
			t.Fatalf("%s: test %s does not detect", f, tp.StringFor(c))
		}
	}
	// PMOS@a must be tested by exactly (11,01).
	fa := fault.OBD{Gate: c.Gates[0], Input: 0, Side: fault.PullUp}
	tp, _ := GenerateOBDTest(c, fa, nil)
	if got := tp.StringFor(c); got != "(11,01)" {
		t.Fatalf("PMOS@a test %s, want (11,01)", got)
	}
}

func TestOBDThroughLogic(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	if len(faults) != 16 {
		t.Fatalf("%d faults, want 16", len(faults))
	}
	ts := must(GenerateOBDTests(c, faults, nil))
	for _, r := range ts.Results {
		if r.Status == Aborted {
			t.Fatalf("%s aborted", r.Fault)
		}
	}
	// Cross-check claimed coverage with exhaustive analysis.
	ex := must(AnalyzeExhaustive(c, faults))
	if ts.Coverage.Detected != ex.TestableCount() {
		t.Fatalf("ATPG coverage %v but exhaustively testable %d", ts.Coverage, ex.TestableCount())
	}
}

func TestTransitionSingleNand(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	for _, f := range []fault.Transition{
		{Net: "y", Rising: true},
		{Net: "y", Rising: false},
		{Net: "a", Rising: true},
	} {
		tp, st := GenerateTransitionTest(c, f, nil)
		if st != Detected {
			t.Fatalf("%s: status %v", f, st)
		}
		if !DetectsTransition(c, f, *tp) {
			t.Fatalf("%s: test %s does not detect", f, tp.StringFor(c))
		}
	}
}

// TestCoverageGap reproduces the paper's central testing claim: a complete
// transition-fault test set does NOT cover all OBD faults, because it is
// insensitive to which input causes the transition, while the OBD-aware
// generator reaches every testable OBD fault.
func TestCoverageGap(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	trFaults := fault.TransitionUniverse(c)
	trSet := must(GenerateTransitionTests(c, trFaults, nil))
	if trSet.Coverage.Ratio() != 1 {
		t.Fatalf("transition coverage %v, want 100%%", trSet.Coverage)
	}
	obdFaults, _ := fault.OBDUniverse(c)
	gap := GradeOBD(c, obdFaults, trSet.Tests)
	if gap.Ratio() >= 1 {
		t.Fatalf("expected a coverage gap, transition tests cover OBD %v", gap)
	}
	obdSet := must(GenerateOBDTests(c, obdFaults, nil))
	if obdSet.Coverage.Ratio() != 1 {
		t.Fatalf("OBD ATPG coverage %v, want 100%%", obdSet.Coverage)
	}
	// And the OBD set covers all transition faults too (it is stronger).
	back := must(GradeTransition(c, trFaults, obdSet.Tests))
	if back.Ratio() != 1 {
		t.Fatalf("OBD set should subsume transition faults here, got %v", back)
	}
}

func TestExhaustiveGreedyCover(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ex := must(AnalyzeExhaustive(c, faults))
	cover := ex.GreedyCover()
	if len(cover) == 0 {
		t.Fatal("empty cover")
	}
	cov := GradeOBD(c, faults, cover)
	if cov.Detected != ex.TestableCount() {
		t.Fatalf("greedy cover detects %d, testable %d", cov.Detected, ex.TestableCount())
	}
	if len(cover) > 8 {
		t.Fatalf("greedy cover suspiciously large: %d pairs", len(cover))
	}
}

func TestPatternHelpers(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	p := Pattern{"a": logic.One}
	q := p.Filled(c, logic.Zero)
	if q["a"] != logic.One || q["b"] != logic.Zero {
		t.Fatalf("filled %v", q)
	}
	if p.KeyFor(c) != "1X" {
		t.Fatalf("key %q", p.KeyFor(c))
	}
	cl := p.Clone()
	cl["a"] = logic.Zero
	if p["a"] != logic.One {
		t.Fatal("clone aliases source")
	}
	tp := TwoPattern{V1: Pattern{"a": logic.One, "b": logic.One}, V2: Pattern{"a": logic.Zero, "b": logic.One}}
	if tp.StringFor(c) != "(11,01)" {
		t.Fatalf("two-pattern string %q", tp.StringFor(c))
	}
}

func TestStatusStrings(t *testing.T) {
	if Detected.String() != "detected" || Untestable.String() != "untestable" || Aborted.String() != "aborted" {
		t.Fatal("status strings broken")
	}
}

// TestQuickStuckAtMatchesBruteForce: PODEM agrees with exhaustive
// simulation about testability, and its tests are valid.
func TestQuickStuckAtMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(4), Gates: 1 + rng.Intn(12)})
		pats := allPatterns(c)
		faults := fault.StuckAtUniverse(c)
		// Sample a few faults per circuit to bound runtime.
		for k := 0; k < 4 && k < len(faults); k++ {
			fl := faults[rng.Intn(len(faults))]
			p, st := GenerateStuckAtTest(c, fl, nil)
			bruteDetectable := false
			for _, bp := range pats {
				if DetectsStuckAt(c, fl, bp) {
					bruteDetectable = true
					break
				}
			}
			switch st {
			case Detected:
				if !DetectsStuckAt(c, fl, p) {
					return false
				}
				if !bruteDetectable {
					return false
				}
			case Untestable:
				if bruteDetectable {
					return false
				}
			case Aborted:
				// Allowed, though unexpected at this size.
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOBDMatchesExhaustive: the OBD two-pattern generator agrees with
// exhaustive pair enumeration about testability, and its tests validate
// against the independent fault simulator.
func TestQuickOBDMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(4), Gates: 1 + rng.Intn(10), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		ex := must(AnalyzeExhaustive(c, faults))
		for k := 0; k < 4; k++ {
			fi := rng.Intn(len(faults))
			tp, st := GenerateOBDTest(c, faults[fi], nil)
			switch st {
			case Detected:
				if !DetectsOBD(c, faults[fi], *tp) {
					return false
				}
				if !ex.Testable[fi] {
					return false
				}
			case Untestable:
				if ex.Testable[fi] {
					return false
				}
			case Aborted:
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransitionValid: generated transition tests always detect their
// target per the independent simulator.
func TestQuickTransitionValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(4), Gates: 1 + rng.Intn(12), Primitive: true})
		faults := fault.TransitionUniverse(c)
		for k := 0; k < 4; k++ {
			fl := faults[rng.Intn(len(faults))]
			tp, st := GenerateTransitionTest(c, fl, nil)
			if st == Detected && !DetectsTransition(c, fl, *tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOBDSubsetOfTransitionDetection: any pair detecting an OBD fault
// also detects the corresponding transition fault at the gate output —
// OBD excitation is strictly stronger.
func TestQuickOBDSubsetOfTransitionDetection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(4), Gates: 1 + rng.Intn(10), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		pats := allPatterns(c)
		for k := 0; k < 6; k++ {
			fl := faults[rng.Intn(len(faults))]
			tp := TwoPattern{V1: pats[rng.Intn(len(pats))], V2: pats[rng.Intn(len(pats))]}
			if DetectsOBD(c, fl, tp) {
				tf := fault.Transition{Net: fl.Gate.Output, Rising: fl.SlowRising()}
				if !DetectsTransition(c, tf, tp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
