package atpg

import (
	"errors"
	"fmt"
)

// This file defines the typed errors of the hardened scheduler layer.
// The batch drivers used to panic on misuse (an invalid circuit, an
// oversized exhaustive enumeration) and to let a worker panic poison the
// whole pool; every such condition is now a value a caller can match
// with errors.As / errors.Is, and a panicking work item is confined to a
// per-item *PanicError while the rest of the run commits normally.

// InvalidCircuitError reports that a batch entry point was handed a
// circuit that fails logic validation. It wraps the underlying
// validation error.
type InvalidCircuitError struct {
	Err error
}

// Error implements error.
func (e *InvalidCircuitError) Error() string {
	return fmt.Sprintf("atpg: invalid circuit: %v", e.Err)
}

// Unwrap exposes the underlying validation error.
func (e *InvalidCircuitError) Unwrap() error { return e.Err }

// SequentialCircuitError reports that a combinational entry point was
// handed a DFF-bearing circuit. The combinational generators and graders
// have no clock model; route sequential circuits through internal/seq
// (FromCircuit for the scan model, Unroll for time-frame expansion) or
// grade their logic.CombinationalCore directly.
type SequentialCircuitError struct {
	DFFs int // flip-flop count of the offending circuit
}

// Error implements error.
func (e *SequentialCircuitError) Error() string {
	return fmt.Sprintf("atpg: circuit has %d flip-flops; combinational ATPG needs the combinational core (see internal/seq)", e.DFFs)
}

// InputLimitError reports that an exhaustive enumeration was requested
// for a circuit with more primary inputs than the enumerator supports.
type InputLimitError struct {
	Inputs int // primary inputs of the offending circuit
	Limit  int // maximum supported by the enumeration
}

// Error implements error.
func (e *InputLimitError) Error() string {
	return fmt.Sprintf("atpg: exhaustive analysis limited to %d inputs, circuit has %d", e.Limit, e.Inputs)
}

// ResumeMismatchError reports that a prior partial test set handed to a
// Resume entry point is not a committable prefix of the given fault
// list — the checkpoint and the request have drifted apart (different
// netlist, different fault universe, or a corrupted snapshot). Resuming
// anyway would break the bit-identical-to-uninterrupted contract, so
// the caller must restart generation from scratch instead.
type ResumeMismatchError struct {
	Index  int    // offending result index (-1 when the mismatch is structural)
	Reason string // what disagreed
}

// Error implements error.
func (e *ResumeMismatchError) Error() string {
	return fmt.Sprintf("atpg: resume prefix mismatch: %s", e.Reason)
}

// PanicError is a panic recovered inside a scheduler worker, converted
// into an ordinary error so one poisoned work item (e.g. a fault whose
// gate pointer was corrupted) cannot abort the run or take down the
// process. Stack holds the goroutine stack captured at recovery time.
type PanicError struct {
	Value any    // the value passed to panic
	Stack string // stack trace at the recovery point
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("atpg: worker panic: %v", e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As reach through recovered panic(err) sites.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ItemError ties a failure to the index of the work item that produced
// it. Errors in a RunReport are ItemErrors in ascending index order.
type ItemError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *ItemError) Error() string {
	return fmt.Sprintf("item %d: %v", e.Index, e.Err)
}

// Unwrap exposes the per-item cause.
func (e *ItemError) Unwrap() error { return e.Err }

// RunReport is the outcome of a hardened ForEachCtx run: which items
// completed, which failed (including recovered worker panics), and
// whether the run was cut short by context cancellation.
type RunReport struct {
	N      int          // items requested
	Done   []bool       // Done[i]: fn(i) ran to completion (with or without error)
	Errors []*ItemError // per-item failures in ascending index order
	Err    error        // context error when the run was cut short, else nil
}

// Prefix returns the length of the longest contiguous completed prefix
// [0, k). After a cancelled run, the results for those k items are
// bit-identical to the same prefix of an uncancelled run.
func (r *RunReport) Prefix() int {
	for i, d := range r.Done {
		if !d {
			return i
		}
	}
	return r.N
}

// Complete reports whether every item ran (regardless of item errors).
func (r *RunReport) Complete() bool { return r.Err == nil && r.Prefix() == r.N }

// ErrAt returns the error recorded for item i, or nil.
func (r *RunReport) ErrAt(i int) error {
	for _, e := range r.Errors {
		if e.Index == i {
			return e.Err
		}
		if e.Index > i {
			break
		}
	}
	return nil
}

// FirstErr returns the lowest-index item error, the context error when
// the run was cut short, or nil.
func (r *RunReport) FirstErr() error {
	if len(r.Errors) > 0 {
		return r.Errors[0]
	}
	return r.Err
}

// AsError folds the report into a single error for callers that do not
// need per-item attribution: nil when the run is complete and clean.
func (r *RunReport) AsError() error {
	switch {
	case r.Err != nil && len(r.Errors) > 0:
		return errors.Join(r.Err, r.Errors[0])
	case r.Err != nil:
		return r.Err
	case len(r.Errors) > 0:
		return r.Errors[0]
	}
	return nil
}
