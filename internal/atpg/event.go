package atpg

import (
	"math/bits"
	"sync"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file is the levelized event-driven grading engine — the scale
// successor to the full-sweep SweepGrader. The observation is that one
// OBD fault perturbs one net; everything outside the fault site's fanout
// cone keeps its good-machine value, so re-evaluating the whole circuit
// per fault (the sweep) wastes work proportional to circuit size. The
// engine instead
//
//   - precomputes both good-machine frames once per 64-pair block over
//     the circuit's dense-ID levelization index (logic.Index), storing
//     words in net-ID-indexed arrays instead of string-keyed maps;
//   - per fault, seeds the forced faulty words at the site and pushes
//     only gates whose input words actually changed through level-ordered
//     buckets, so each cone gate is evaluated at most once and gates
//     outside the cone are never touched;
//   - widens packing to word-wide single-rail lanes when a block's
//     patterns are complete: the known rail is constant-1 there, so the
//     dual-rail evaluation collapses to one word per net (EvalBits
//     instead of EvalBits3), halving both memory traffic and ALU work;
//   - pools the per-worker scratch (faulty words, dirty marks, level
//     buckets) in a sync.Pool, so grading allocates nothing per fault.
//
// Every verdict is bit-identical to the SweepGrader and to the scalar
// DetectsOBD; the property tests in event_test.go enforce this.

// PairGrader grades OBD faults against a packed two-pattern test set with
// the levelized event-driven engine. It is immutable after construction
// and safe for concurrent use by the Scheduler's workers. Faults on gates
// that are not part of the circuit (synthetic gates used by local
// analyses) fall back to the full-sweep path.
type PairGrader struct {
	c     *logic.Circuit
	idx   *logic.Index
	tests []TwoPattern

	blocks   []eventBlock
	complete bool // every block complete: enables single-rail math and fault collapsing

	// nets caches GateNetworks per gate position (valid where netsOK):
	// building the series-parallel trees per graded fault would be the
	// hot path's only allocation.
	nets   []fault.Networks
	netsOK []bool

	scratch sync.Pool

	legacyOnce sync.Once
	legacy     *SweepGrader
}

// eventBlock holds the good-machine frames of up to 64 vector pairs,
// dense-ID indexed. For complete blocks the known rails are nil: every
// in-range lane is known, so only the value words are carried.
type eventBlock struct {
	n        int
	complete bool
	g1v, g1k []uint64
	g2v, g2k []uint64
}

// eventScratch is one worker's reusable faulty-machine state. Dirty nets
// and queued gates are epoch-stamped so nothing is cleared between
// faults; the level buckets are drained by the propagation loop itself.
type eventScratch struct {
	fv, fk  []uint64 // faulty words by net ID, valid where mark==epoch
	mark    []uint32 // net dirty stamps
	qmark   []uint32 // gate queued stamps
	epoch   uint32
	buckets [][]int32 // gate positions by level, drained ascending
	touched []int32   // dirty net IDs of the current fault
	vbuf    []uint64
	kbuf    []uint64
}

func newEventScratch(x *logic.Index) *eventScratch {
	return &eventScratch{
		fv:      make([]uint64, x.NumNets()),
		fk:      make([]uint64, x.NumNets()),
		mark:    make([]uint32, x.NumNets()),
		qmark:   make([]uint32, len(x.Gates)),
		buckets: make([][]int32, x.MaxLevel+1),
		vbuf:    make([]uint64, 0, 8),
		kbuf:    make([]uint64, 0, 8),
	}
}

// grow widens the gather buffers to hold n input words without the
// append path reallocating (and losing) them.
func (sc *eventScratch) grow(n int) {
	if cap(sc.vbuf) < n {
		sc.vbuf = make([]uint64, 0, n)
		sc.kbuf = make([]uint64, 0, n)
	}
}

// begin opens a new fault simulation epoch.
//
//obdcheck:hotpath
func (sc *eventScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap: stale stamps could alias, reset them
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		for i := range sc.qmark {
			sc.qmark[i] = 0
		}
		sc.epoch = 1
	}
	sc.touched = sc.touched[:0]
}

// NewPairGrader packs vector pairs into 64-wide blocks over the circuit's
// levelization index and evaluates both good-machine frames per block.
// The circuit must validate (grading entry points check first).
func NewPairGrader(c *logic.Circuit, tests []TwoPattern) *PairGrader {
	idx := c.Index()
	pg := &PairGrader{c: c, idx: idx, tests: tests, complete: true}
	pg.scratch.New = func() any { return newEventScratch(idx) }
	pg.nets = make([]fault.Networks, len(idx.Gates))
	pg.netsOK = make([]bool, len(idx.Gates))
	for gi, g := range idx.Gates {
		pg.nets[gi], pg.netsOK[gi] = fault.GateNetworks(g.Type, len(idx.GateIn[gi]))
	}
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		b := packEventBlock(idx, tests[start:end])
		pg.complete = pg.complete && b.complete
		pg.blocks = append(pg.blocks, b)
	}
	return pg
}

// Complete reports whether every pattern of every pair assigns every
// input — the precondition for single-rail math and for the chain part of
// fault collapsing (equivalence arguments break under X lanes).
func (pg *PairGrader) Complete() bool { return pg.complete }

// packEventBlock packs up to 64 pairs into dense-ID words and evaluates
// the good frames. Complete blocks are evaluated single-rail so their
// beyond-n lanes follow the two-valued semantics of EvalBits; detection
// masks are laneMask-clipped before use, so those lanes never surface.
func packEventBlock(x *logic.Index, pairs []TwoPattern) eventBlock {
	b := eventBlock{n: len(pairs), complete: true}
	nv := x.NumNets()
	b.g1v, b.g1k = make([]uint64, nv), make([]uint64, nv)
	b.g2v, b.g2k = make([]uint64, nv), make([]uint64, nv)
	full := laneMask(len(pairs))
	for k, tp := range pairs {
		bit := uint64(1) << uint(k)
		for _, id := range x.InputIDs {
			name := x.NetNames[id]
			if v, ok := tp.V1[name]; ok && v.IsKnown() {
				b.g1k[id] |= bit
				if v == logic.One {
					b.g1v[id] |= bit
				}
			}
			if v, ok := tp.V2[name]; ok && v.IsKnown() {
				b.g2k[id] |= bit
				if v == logic.One {
					b.g2v[id] |= bit
				}
			}
		}
	}
	for _, id := range x.InputIDs {
		if b.g1k[id]&full != full || b.g2k[id]&full != full {
			b.complete = false
			break
		}
	}
	if b.complete {
		forwardEval2(x, b.g1v)
		forwardEval2(x, b.g2v)
		b.g1k, b.g2k = nil, nil
	} else {
		forwardEval3(x, b.g1v, b.g1k)
		forwardEval3(x, b.g2v, b.g2k)
	}
	return b
}

// forwardEval2 completes a two-valued evaluation in place: val holds the
// input words on entry and every net's word on return.
//
//obdcheck:hotpath
func forwardEval2(x *logic.Index, val []uint64) {
	var buf [8]uint64
	for _, bucket := range x.Levels {
		for _, gi := range bucket {
			ins := x.GateIn[gi]
			vbuf := buf[:0]
			for _, id := range ins {
				vbuf = append(vbuf, val[id])
			}
			val[x.GateOut[gi]] = x.Gates[gi].EvalBits(vbuf)
		}
	}
}

// forwardEval3 is forwardEval2 in dual-rail form.
//
//obdcheck:hotpath
func forwardEval3(x *logic.Index, val, known []uint64) {
	var vb, kb [8]uint64
	for _, bucket := range x.Levels {
		for _, gi := range bucket {
			ins := x.GateIn[gi]
			vbuf, kbuf := vb[:0], kb[:0]
			for _, id := range ins {
				vbuf = append(vbuf, val[id])
				kbuf = append(kbuf, known[id])
			}
			v, k := x.Gates[gi].EvalBits3(vbuf, kbuf)
			out := x.GateOut[gi]
			val[out], known[out] = v, k
		}
	}
}

// Detects reports whether any pair in the set detects the fault.
func (pg *PairGrader) Detects(f fault.OBD) bool {
	return pg.FirstDetecting(f) >= 0
}

// FirstDetecting returns the index of the first detecting pair, or -1.
// Verdicts are bit-identical to the SweepGrader's.
func (pg *PairGrader) FirstDetecting(f fault.OBD) int {
	gp := pg.idx.GatePos(f.Gate)
	if gp < 0 {
		return pg.legacyGrader().FirstDetecting(f)
	}
	sc := pg.scratch.Get().(*eventScratch)
	defer pg.scratch.Put(sc)
	for bi := range pg.blocks {
		b := &pg.blocks[bi]
		mask := pg.detectMaskEvent(b, f, gp, sc)
		if mask != 0 {
			return bi*64 + bits.TrailingZeros64(mask)
		}
	}
	return -1
}

// CountDetecting returns how many pairs of the set detect the fault.
func (pg *PairGrader) CountDetecting(f fault.OBD) int {
	gp := pg.idx.GatePos(f.Gate)
	if gp < 0 {
		return pg.legacyGrader().CountDetecting(f)
	}
	sc := pg.scratch.Get().(*eventScratch)
	defer pg.scratch.Put(sc)
	n := 0
	for bi := range pg.blocks {
		n += bits.OnesCount64(pg.detectMaskEvent(&pg.blocks[bi], f, gp, sc))
	}
	return n
}

// legacyGrader lazily builds the sweep fallback used for faults on gates
// outside the circuit.
func (pg *PairGrader) legacyGrader() *SweepGrader {
	pg.legacyOnce.Do(func() { pg.legacy = NewSweepGrader(pg.c, pg.tests) })
	return pg.legacy
}

// detectMaskEvent grades one fault against one block, returning the
// laneMask-clipped bitmask of detecting pairs. The excitation rule is the
// same bit-parallel condition the sweep applies; the faulty frame is then
// propagated event-driven from the site through its fanout cone only.
// The zero-allocation contract (DESIGN.md §11) is enforced statically by
// the marker below and dynamically by TestDetectMaskEventZeroAlloc.
//
//obdcheck:hotpath
func (pg *PairGrader) detectMaskEvent(b *eventBlock, f fault.OBD, gp int, sc *eventScratch) uint64 {
	x := pg.idx
	if !pg.netsOK[gp] {
		return 0
	}
	nets := pg.nets[gp]
	site := int(x.GateOut[gp])
	o1, o2 := b.g1v[site], b.g2v[site]
	ins := x.GateIn[gp]
	sc.grow(len(ins))
	lv2 := sc.vbuf[:0]
	localKnown := ^uint64(0)
	for _, id := range ins {
		lv2 = append(lv2, b.g2v[id])
		if !b.complete {
			localKnown &= b.g1k[id] & b.g2k[id]
		}
	}
	net := nets.PullUp
	driveMask := o2 // pull-up drives when the new value is 1
	if f.Side == fault.PullDown {
		net = nets.PullDown
		driveMask = ^o2
	}
	excited := (o1 ^ o2) & driveMask & localKnown &
		conductBits(net, f.Side, lv2, -1) &^
		conductBits(net, f.Side, lv2, f.Input)
	excited &= laneMask(b.n)
	if excited == 0 {
		return 0
	}

	// Faulty frame 2: the site holds its frame-1 value in the excited
	// lanes (known there: localKnown spans both frames, so o1 is the
	// output of fully known inputs). Propagate only what changes.
	sc.begin()
	nfv := (o2 &^ excited) | (o1 & excited)
	nfk := uint64(0)
	if !b.complete {
		nfk = (b.g2k[site] &^ excited) | (b.g1k[site] & excited)
		if nfv == b.g2v[site] && nfk == b.g2k[site] {
			return 0
		}
	}
	sc.fv[site], sc.fk[site] = nfv, nfk
	sc.mark[site] = sc.epoch
	sc.touched = append(sc.touched, int32(site))
	minLvl := len(sc.buckets)
	for _, gi := range x.Fanouts[site] {
		sc.qmark[gi] = sc.epoch
		lvl := int(x.GateLevel[gi])
		sc.buckets[lvl] = append(sc.buckets[lvl], gi)
		if lvl < minLvl {
			minLvl = lvl
		}
	}
	for lvl := minLvl; lvl < len(sc.buckets); lvl++ {
		bucket := sc.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		// The loop appends only to strictly higher levels (gate level >
		// every input driver's level), so ranging the snapshot is safe and
		// each cone gate is evaluated exactly once.
		for _, gi := range bucket {
			g := x.Gates[gi]
			out := int(x.GateOut[gi])
			sc.grow(len(x.GateIn[gi]))
			var v, k uint64
			if b.complete {
				vbuf := sc.vbuf[:0]
				for _, id := range x.GateIn[gi] {
					if sc.mark[id] == sc.epoch {
						vbuf = append(vbuf, sc.fv[id])
					} else {
						vbuf = append(vbuf, b.g2v[id])
					}
				}
				v = g.EvalBits(vbuf)
				if v == b.g2v[out] {
					continue
				}
			} else {
				vbuf, kbuf := sc.vbuf[:0], sc.kbuf[:0]
				for _, id := range x.GateIn[gi] {
					if sc.mark[id] == sc.epoch {
						vbuf = append(vbuf, sc.fv[id])
						kbuf = append(kbuf, sc.fk[id])
					} else {
						vbuf = append(vbuf, b.g2v[id])
						kbuf = append(kbuf, b.g2k[id])
					}
				}
				v, k = g.EvalBits3(vbuf, kbuf)
				if v == b.g2v[out] && k == b.g2k[out] {
					continue
				}
			}
			sc.fv[out], sc.fk[out] = v, k
			sc.mark[out] = sc.epoch
			sc.touched = append(sc.touched, int32(out))
			for _, gj := range x.Fanouts[out] {
				if sc.qmark[gj] == sc.epoch {
					continue
				}
				sc.qmark[gj] = sc.epoch
				sc.buckets[x.GateLevel[gj]] = append(sc.buckets[x.GateLevel[gj]], gj)
			}
		}
		sc.buckets[lvl] = bucket[:0]
	}

	// Only touched POs can differ from the good machine; the sweep's scan
	// over all POs contributes zero everywhere else.
	detected := uint64(0)
	if b.complete {
		for _, id := range sc.touched {
			if x.IsPO[id] {
				detected |= b.g2v[id] ^ sc.fv[id]
			}
		}
	} else {
		for _, id := range sc.touched {
			if x.IsPO[id] {
				detected |= (b.g2v[id] ^ sc.fv[id]) & b.g2k[id] & sc.fk[id]
			}
		}
	}
	return detected & excited
}
