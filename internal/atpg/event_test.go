package atpg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// completeRandomTests builds a test set whose patterns assign every input
// a known value — the precondition for single-rail blocks and collapsing.
func completeRandomTests(rng *rand.Rand, c *logic.Circuit, n int) []TwoPattern {
	mk := func() Pattern {
		p := make(Pattern, len(c.Inputs))
		for _, in := range c.Inputs {
			p[in] = logic.FromBool(rng.Intn(2) == 1)
		}
		return p
	}
	out := make([]TwoPattern, n)
	for i := range out {
		out[i] = TwoPattern{V1: mk(), V2: mk()}
	}
	return out
}

// sweepMasks returns a fault's per-block detection masks from the
// full-sweep reference grader, laneMask-clipped.
func sweepMasks(sg *SweepGrader, f fault.OBD) []uint64 {
	out := make([]uint64, 0, len(sg.blocks))
	for _, b := range sg.blocks {
		out = append(out, detectMaskWithEvals(sg.c, f, b.v2, b.g1v, b.g1k, b.g2v, b.g2k)&laneMask(b.n))
	}
	return out
}

// eventMasks returns a fault's per-block detection masks from the
// event-driven engine (already clipped by detectMaskEvent).
func eventMasks(pg *PairGrader, f fault.OBD) []uint64 {
	gp := pg.idx.GatePos(f.Gate)
	if gp < 0 {
		return nil
	}
	sc := pg.scratch.Get().(*eventScratch)
	defer pg.scratch.Put(sc)
	out := make([]uint64, 0, len(pg.blocks))
	for bi := range pg.blocks {
		out = append(out, pg.detectMaskEvent(&pg.blocks[bi], f, gp, sc))
	}
	return out
}

// TestEventGraderBitIdenticalToSweep: over random circuits (primitive and
// mixed gate sets) × random partial AND complete test sets, the event
// engine's per-lane detection masks equal the sweep grader's for every
// fault of the universe — not merely the summary verdicts.
func TestEventGraderBitIdenticalToSweep(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs: 2 + rng.Intn(5), Gates: 2 + rng.Intn(24), Primitive: seed%2 == 0})
		faults, _ := fault.OBDUniverse(c)
		for _, complete := range []bool{false, true} {
			var tests []TwoPattern
			if complete {
				tests = completeRandomTests(rng, c, 1+rng.Intn(150))
			} else {
				tests = randomTests(rng, c, 1+rng.Intn(150))
			}
			pg := NewPairGrader(c, tests)
			sg := NewSweepGrader(c, tests)
			for _, f := range faults {
				em, sm := eventMasks(pg, f), sweepMasks(sg, f)
				if !reflect.DeepEqual(em, sm) {
					t.Fatalf("seed %d complete=%v fault %v: event masks %x, sweep masks %x",
						seed, complete, f, em, sm)
				}
				if ef, sf := pg.FirstDetecting(f), sg.FirstDetecting(f); ef != sf {
					t.Fatalf("seed %d fault %v: FirstDetecting event %d sweep %d", seed, f, ef, sf)
				}
				if ec, sc := pg.CountDetecting(f), sg.CountDetecting(f); ec != sc {
					t.Fatalf("seed %d fault %v: CountDetecting event %d sweep %d", seed, f, ec, sc)
				}
			}
		}
	}
}

// TestEventGraderMatchesScalar pins the event engine to the scalar
// DetectsOBD semantics pair by pair: the per-lane mask bits are exactly
// the pairs the scalar grader detects.
func TestEventGraderMatchesScalar(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(12), Primitive: seed%2 == 0})
		faults, _ := fault.OBDUniverse(c)
		tests := randomTests(rng, c, 1+rng.Intn(100))
		pg := NewPairGrader(c, tests)
		for _, f := range faults {
			masks := eventMasks(pg, f)
			for ti, tp := range tests {
				want := DetectsOBD(c, f, tp)
				got := masks[ti/64]&(1<<uint(ti%64)) != 0
				if got != want {
					t.Fatalf("seed %d fault %v pair %d: event %v scalar %v", seed, f, ti, got, want)
				}
			}
		}
	}
}

// TestGradeOBDCollapseEquivalence: collapsed grading fans class verdicts
// out to exactly the per-site Coverage of the uncollapsed run, the scalar
// reference, for every worker count, on complete and partial sets alike.
func TestGradeOBDCollapseEquivalence(t *testing.T) {
	circuits := 0
	for seed := int64(0); circuits < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Primitive circuits grow inverter chains; mixed ones exercise the
		// structural guards (XOR gates have no OBD networks to collapse).
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs: 2 + rng.Intn(4), Gates: 3 + rng.Intn(16), Primitive: seed%3 != 0})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) < 2 {
			continue
		}
		circuits++
		for _, complete := range []bool{true, false} {
			var tests []TwoPattern
			if complete {
				tests = completeRandomTests(rng, c, 1+rng.Intn(120))
			} else {
				tests = randomTests(rng, c, 1+rng.Intn(120))
			}
			want := GradeOBD(c, faults, tests)
			for _, w := range sweepWorkers {
				s := NewScheduler(w)
				collapsed := must(s.gradeOBD(context.Background(), c, faults, tests, true))
				plain := must(s.gradeOBD(context.Background(), c, faults, tests, false))
				if !reflect.DeepEqual(collapsed, want) {
					t.Fatalf("seed %d workers %d complete=%v: collapsed %+v, scalar %+v",
						seed, w, complete, collapsed, want)
				}
				if !reflect.DeepEqual(plain, want) {
					t.Fatalf("seed %d workers %d complete=%v: uncollapsed %+v, scalar %+v",
						seed, w, complete, plain, want)
				}
			}
		}
	}
}

// TestCollapseClassesShareVerdicts: under complete test sets, every member
// of a CollapseOBDComplete class has bit-identical per-pair detection
// masks — the equivalence is per pair, which is what licenses grading the
// representative only.
func TestCollapseClassesShareVerdicts(t *testing.T) {
	merges := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs: 2 + rng.Intn(4), Gates: 3 + rng.Intn(16), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		tests := completeRandomTests(rng, c, 1+rng.Intn(120))
		pg := NewPairGrader(c, tests)
		if !pg.Complete() {
			t.Fatalf("seed %d: complete test set not recognised as complete", seed)
		}
		for _, cl := range netcheck.CollapseOBDComplete(c, faults) {
			if len(cl) > 1 {
				merges++
			}
			ref := eventMasks(pg, faults[cl[0]])
			for _, fi := range cl[1:] {
				if got := eventMasks(pg, faults[fi]); !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed %d: class member %v masks %x differ from representative %v masks %x",
						seed, faults[fi], got, faults[cl[0]], ref)
				}
			}
		}
	}
	if merges == 0 {
		t.Fatal("no multi-fault class across 40 random circuits; collapsing never exercised")
	}
}

// TestCollapseChainHandcrafted pins the inverter-chain rule on the
// canonical chain NAND → INV → INV → PO: the series NMOS pair of the NAND
// merges with the first inverter's pull-up and the second inverter's
// pull-down, the complementary inverter sides merge with each other, and
// the parallel PMOS defects stay distinct — 4 classes from 8 sites. The
// collapsed exhaustive grade equals the uncollapsed one.
func TestCollapseChainHandcrafted(t *testing.T) {
	c := logic.New("chain")
	for _, in := range []string{"a", "b"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddGate("g1", logic.Nand, "s", "a", "b"))
	must(c.AddGate("h", logic.Inv, "t", "s"))
	must(c.AddGate("k", logic.Inv, "u", "t"))
	c.AddOutput("u")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(c)
	if len(faults) != 8 {
		t.Fatalf("universe has %d faults, want 8", len(faults))
	}
	classes := netcheck.CollapseOBDComplete(c, faults)
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4: %v", len(classes), classes)
	}
	// Reassemble each class as a set of fault strings for shape checks.
	sets := make([]map[string]bool, len(classes))
	for i, cl := range classes {
		sets[i] = make(map[string]bool, len(cl))
		for _, fi := range cl {
			sets[i][faults[fi].String()] = true
		}
	}
	wantChain := map[string]bool{
		"g1/NMOS@a": true, "g1/NMOS@b": true, "h/PMOS@s": true, "k/NMOS@t": true,
	}
	wantPair := map[string]bool{"h/NMOS@s": true, "k/PMOS@t": true}
	found := 0
	for _, s := range sets {
		if reflect.DeepEqual(s, wantChain) || reflect.DeepEqual(s, wantPair) {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("chain classes not formed as expected: %v", sets)
	}

	// Exhaustive complete pairs: collapsed and uncollapsed grades agree.
	var tests []TwoPattern
	for m1 := 0; m1 < 4; m1++ {
		for m2 := 0; m2 < 4; m2++ {
			tests = append(tests, TwoPattern{
				V1: Pattern{"a": logic.FromBool(m1&1 != 0), "b": logic.FromBool(m1&2 != 0)},
				V2: Pattern{"a": logic.FromBool(m2&1 != 0), "b": logic.FromBool(m2&2 != 0)},
			})
		}
	}
	s := NewScheduler(1)
	collapsed := must(s.gradeOBD(context.Background(), c, faults, tests, true))
	plain := must(s.gradeOBD(context.Background(), c, faults, tests, false))
	if !reflect.DeepEqual(collapsed, plain) {
		t.Fatalf("collapsed %+v, uncollapsed %+v", collapsed, plain)
	}
	if !reflect.DeepEqual(collapsed, GradeOBD(c, faults, tests)) {
		t.Fatalf("collapsed grade diverges from scalar reference")
	}
}

// TestPairGraderCompleteGate: X-bearing or unassigned lanes must demote
// the grader to dual-rail and keep collapsing out of GradeOBD.
func TestPairGraderCompleteGate(t *testing.T) {
	c := logic.C17()
	rng := rand.New(rand.NewSource(7))
	if pg := NewPairGrader(c, completeRandomTests(rng, c, 70)); !pg.Complete() {
		t.Fatal("complete set reported incomplete")
	}
	tests := completeRandomTests(rng, c, 70)
	tests[66].V2[c.Inputs[3]] = logic.X
	if pg := NewPairGrader(c, tests); pg.Complete() {
		t.Fatal("X lane reported complete")
	}
	partial := completeRandomTests(rng, c, 3)
	delete(partial[1].V1, c.Inputs[0])
	if pg := NewPairGrader(c, partial); pg.Complete() {
		t.Fatal("unassigned input reported complete")
	}
}

// TestPairGraderForeignGateFallback: a fault on a gate outside the circuit
// must take the sweep fallback and agree with the scalar grader.
func TestPairGraderForeignGateFallback(t *testing.T) {
	c := logic.C17()
	rng := rand.New(rand.NewSource(11))
	tests := randomTests(rng, c, 40)
	// A synthetic local gate reading circuit nets but not wired into it.
	g := &logic.Gate{Name: "syn", Type: logic.Nand, Inputs: []string{"n1", "n3"}, Output: "n11"}
	f := fault.OBD{Gate: g, Input: 0, Side: fault.PullDown}
	pg := NewPairGrader(c, tests)
	if got := pg.idx.GatePos(g); got != -1 {
		t.Fatalf("foreign gate resolved to position %d", got)
	}
	want := -1
	for ti, tp := range tests {
		if DetectsOBD(c, f, tp) {
			want = ti
			break
		}
	}
	if got := pg.FirstDetecting(f); got != want {
		t.Fatalf("foreign-gate FirstDetecting %d, scalar %d", got, want)
	}
}

// TestDetectMaskEventZeroAlloc is the dynamic half of the hot-path
// contract: detectMaskEvent (marked //obdcheck:hotpath, statically
// audited by the hotalloc rule) must allocate nothing per graded fault
// once a worker's scratch is warm.
func TestDetectMaskEventZeroAlloc(t *testing.T) {
	c := logic.C17()
	rng := rand.New(rand.NewSource(7))
	tests := completeRandomTests(rng, c, 130) // three blocks, last partial-width
	pg := NewPairGrader(c, tests)
	faults, _ := fault.OBDUniverse(c)
	if len(faults) == 0 {
		t.Fatal("no faults in the universe")
	}
	sc := pg.scratch.Get().(*eventScratch)
	defer pg.scratch.Put(sc)
	// Warm pass: lets grow() size the gather buffers once.
	for _, f := range faults {
		if gp := pg.idx.GatePos(f.Gate); gp >= 0 {
			for bi := range pg.blocks {
				pg.detectMaskEvent(&pg.blocks[bi], f, gp, sc)
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, f := range faults {
			gp := pg.idx.GatePos(f.Gate)
			if gp < 0 {
				t.Fatalf("fault %v not on an indexed gate", f)
			}
			for bi := range pg.blocks {
				pg.detectMaskEvent(&pg.blocks[bi], f, gp, sc)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("detectMaskEvent allocated %v times per full-universe grade, want 0", allocs)
	}
}
