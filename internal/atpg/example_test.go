package atpg_test

import (
	"fmt"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// ExampleGenerateOBDTest justifies a two-pattern test through logic: the
// PMOS defect on the first NAND of a 4-NAND XOR needs its (11,01) local
// excitation delivered from the primary inputs and its slow rise
// propagated to the output.
func ExampleGenerateOBDTest() {
	c, _ := logic.ParseString(`circuit xor4
input a b
output y
nand n1 n1 a b
nand n2 n2 a n1
nand n3 n3 b n1
nand n4 y n2 n3
`)
	f := fault.OBD{Gate: c.Gates[0], Input: 0, Side: fault.PullUp}
	tp, status := atpg.GenerateOBDTest(c, f, nil)
	fmt.Println(status)
	fmt.Println(atpg.DetectsOBD(c, f, *tp))
	// Output:
	// detected
	// true
}

// ExampleGradeOBD shows the paper's central comparison in miniature: a
// transition-fault test for the NAND output's slow rise uses (11,00),
// which turns on both PMOS devices and therefore misses each individual
// PMOS defect.
func ExampleGradeOBD() {
	c, _ := logic.ParseString("circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	faults, _ := fault.OBDUniverse(c)
	one := func(s string) atpg.Pattern {
		p := atpg.Pattern{}
		for i, in := range c.Inputs {
			p[in] = logic.FromBool(s[i] == '1')
		}
		return p
	}
	transitionStyle := []atpg.TwoPattern{
		{V1: one("11"), V2: one("00")}, // slow-to-rise, input-insensitive
		{V1: one("00"), V2: one("11")}, // slow-to-fall
	}
	fmt.Println("transition-style:", atpg.GradeOBD(c, faults, transitionStyle))
	obdAware := append(transitionStyle,
		atpg.TwoPattern{V1: one("11"), V2: one("01")},
		atpg.TwoPattern{V1: one("11"), V2: one("10")})
	fmt.Println("OBD-aware:       ", atpg.GradeOBD(c, faults, obdAware))
	// Output:
	// transition-style: 2/4 (50.0%)
	// OBD-aware:        4/4 (100.0%)
}
