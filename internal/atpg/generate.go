package atpg

import (
	"context"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// guidance returns the SCOAP testability measures for PODEM steering, or
// nil when disabled.
func guidance(c *logic.Circuit, opt *Options) *logic.Testability {
	if opt.DisableSCOAP {
		return nil
	}
	return logic.ComputeTestability(c)
}

// drain accumulates an engine's backtracks into the configured sink.
func drain(opt *Options, engines ...*podemEngine) {
	if opt.BacktrackSink == nil {
		return
	}
	for _, e := range engines {
		*opt.BacktrackSink += e.backtracks
	}
}

// GenerateStuckAtTest produces a single pattern detecting the stuck-at
// fault, or reports Untestable/Aborted.
func GenerateStuckAtTest(c *logic.Circuit, f fault.StuckAt, opt *Options) (Pattern, Status) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if c.HasDFF() {
		return nil, Errored // sequential circuit: use internal/seq or the combinational core
	}
	return generateStuckAtTestWith(c, f, opt, guidance(c, opt))
}

// generateStuckAtTestWith is GenerateStuckAtTest with the SCOAP guidance
// precomputed, so batch drivers share one testability analysis across
// faults (and workers).
func generateStuckAtTestWith(c *logic.Circuit, f fault.StuckAt, opt *Options, tb *logic.Testability) (Pattern, Status) {
	req := map[string]logic.Value{f.Net: f.V.Not()}
	e := newPodem(c, req, f.Net, f.V, true, opt.MaxBacktracks, tb)
	p, st := e.run()
	drain(opt, e)
	if st != Detected {
		return nil, st
	}
	return p.Filled(c, opt.Fill), Detected
}

// GenerateTransitionTest produces a two-pattern test for a classical
// transition fault: frame 2 detects the site holding its old value
// (a stuck-at test with the required final value), frame 1 justifies the
// initial value. Frame 2 is free to cause the transition with any input
// change — the insensitivity that separates this model from OBD.
func GenerateTransitionTest(c *logic.Circuit, f fault.Transition, opt *Options) (*TwoPattern, Status) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if c.HasDFF() {
		return nil, Errored // sequential circuit: use internal/seq or the combinational core
	}
	return generateTransitionTestWith(c, f, opt, guidance(c, opt))
}

// generateTransitionTestWith is GenerateTransitionTest with the SCOAP
// guidance precomputed.
func generateTransitionTestWith(c *logic.Circuit, f fault.Transition, opt *Options, tb *logic.Testability) (*TwoPattern, Status) {
	var from, to logic.Value
	if f.Rising {
		from, to = logic.Zero, logic.One
	} else {
		from, to = logic.One, logic.Zero
	}
	e2 := newPodem(c, map[string]logic.Value{f.Net: to}, f.Net, from, true, opt.MaxBacktracks, tb)
	v2, st := e2.run()
	drain(opt, e2)
	if st != Detected {
		return nil, st
	}
	e1 := newPodem(c, map[string]logic.Value{f.Net: from}, "", logic.X, false, opt.MaxBacktracks, tb)
	v1, st1 := e1.run()
	drain(opt, e1)
	if st1 != Detected {
		return nil, st1
	}
	return &TwoPattern{V1: v1.Filled(c, opt.Fill), V2: v2.Filled(c, opt.Fill)}, Detected
}

// GenerateOBDTest produces a two-pattern test for an OBD fault by
// enumerating the gate's local excitation pairs (Section 4.1 of the
// paper), justifying the first pattern and justifying-and-propagating the
// second. The generated test is validated with the independent fault
// simulator before being returned.
func GenerateOBDTest(c *logic.Circuit, f fault.OBD, opt *Options) (*TwoPattern, Status) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if c.HasDFF() {
		return nil, Errored // sequential circuit: use internal/seq or the combinational core
	}
	if opt.Prune && netcheck.ProveOBD(c, f).Untestable {
		return nil, Untestable
	}
	tp, st := generateOBDTestWith(c, f, opt, guidance(c, opt))
	if st == Aborted && opt.SATFallback {
		return satResolveOBD(c, f, opt)
	}
	return tp, st
}

// generateOBDTestWith is GenerateOBDTest with the SCOAP guidance
// precomputed.
func generateOBDTestWith(c *logic.Circuit, f fault.OBD, opt *Options, tb *logic.Testability) (*TwoPattern, Status) {
	pairs := f.ExcitationPairs()
	if len(pairs) == 0 {
		return nil, Untestable
	}
	anyAborted := false
	for _, pr := range pairs {
		o1 := f.Gate.Eval(pr.V1)
		o2 := f.Gate.Eval(pr.V2)
		req2 := map[string]logic.Value{f.Gate.Output: o2}
		conflict := false
		for i, in := range f.Gate.Inputs {
			if prev, ok := req2[in]; ok && prev != pr.V2[i] {
				conflict = true // same net feeds two gate pins with different demands
				break
			}
			req2[in] = pr.V2[i]
		}
		if conflict {
			continue
		}
		e2 := newPodem(c, req2, f.Gate.Output, o1, true, opt.MaxBacktracks, tb)
		v2, st := e2.run()
		drain(opt, e2)
		if st == Aborted {
			anyAborted = true
			continue
		}
		if st != Detected {
			continue
		}
		req1 := map[string]logic.Value{}
		for i, in := range f.Gate.Inputs {
			if prev, ok := req1[in]; ok && prev != pr.V1[i] {
				conflict = true
				break
			}
			req1[in] = pr.V1[i]
		}
		if conflict {
			continue
		}
		e1 := newPodem(c, req1, "", logic.X, false, opt.MaxBacktracks, tb)
		v1, st1 := e1.run()
		drain(opt, e1)
		if st1 == Aborted {
			anyAborted = true
			continue
		}
		if st1 != Detected {
			continue
		}
		tp := &TwoPattern{V1: v1.Filled(c, opt.Fill), V2: v2.Filled(c, opt.Fill)}
		if DetectsOBD(c, f, *tp) {
			return tp, Detected
		}
		// The pair justified locally but the filled vectors do not detect
		// (possible when fills disturb reconvergent excitation); try the
		// next excitation pair.
		anyAborted = true
	}
	if anyAborted {
		return nil, Aborted
	}
	return nil, Untestable
}

// Result pairs a fault name with the generation outcome.
type Result struct {
	Fault  string
	Status Status
	Test   *TwoPattern // nil unless Status == Detected and not drop-covered
	Err    error       // non-nil only for Status == Errored: the per-item *ItemError
}

// TestSet is the outcome of a batch generation run.
type TestSet struct {
	Tests    []TwoPattern
	Results  []Result
	Coverage Coverage
}

// GenerateOBDTests runs the OBD generator over a fault list with optional
// fault dropping, speculating across the default scheduler's worker pool
// (results are bit-identical to the sequential loop for any worker count).
func GenerateOBDTests(c *logic.Circuit, faults []fault.OBD, opt *Options) (*TestSet, error) {
	return DefaultScheduler().GenerateOBDTests(c, faults, opt)
}

// GenerateOBDTestsCtx is GenerateOBDTests with cooperative cancellation
// through ctx (see Scheduler.GenerateOBDTestsCtx).
func GenerateOBDTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.OBD, opt *Options) (*TestSet, error) {
	return DefaultScheduler().GenerateOBDTestsCtx(ctx, c, faults, opt)
}

// GenerateTransitionTests runs the transition-fault generator over a fault
// list with optional fault dropping across the default scheduler's pool.
func GenerateTransitionTests(c *logic.Circuit, faults []fault.Transition, opt *Options) (*TestSet, error) {
	return DefaultScheduler().GenerateTransitionTests(c, faults, opt)
}

// GenerateTransitionTestsCtx is GenerateTransitionTests with cooperative
// cancellation through ctx.
func GenerateTransitionTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.Transition, opt *Options) (*TestSet, error) {
	return DefaultScheduler().GenerateTransitionTestsCtx(ctx, c, faults, opt)
}

// StuckAtTestSet is the single-pattern analogue of TestSet.
type StuckAtTestSet struct {
	Tests    []Pattern
	Results  []Result
	Coverage Coverage
}

// GenerateStuckAtTests runs the stuck-at generator over a fault list with
// optional fault dropping across the default scheduler's pool.
func GenerateStuckAtTests(c *logic.Circuit, faults []fault.StuckAt, opt *Options) (*StuckAtTestSet, error) {
	return DefaultScheduler().GenerateStuckAtTests(c, faults, opt)
}

// GenerateStuckAtTestsCtx is GenerateStuckAtTests with cooperative
// cancellation through ctx.
func GenerateStuckAtTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.StuckAt, opt *Options) (*StuckAtTestSet, error) {
	return DefaultScheduler().GenerateStuckAtTestsCtx(ctx, c, faults, opt)
}
