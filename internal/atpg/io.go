package atpg

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gobd/internal/logic"
)

// WriteTests renders a two-pattern test set in the text exchange format:
//
//	# comment
//	circuit <name>
//	inputs <in> [<in> ...]
//	pair <v1bits> <v2bits>
//
// Bits follow the declared input order; X marks don't-care.
func WriteTests(w io.Writer, c *logic.Circuit, tests []TwoPattern) error {
	if _, err := fmt.Fprintf(w, "circuit %s\ninputs %s\n", c.Name, strings.Join(c.Inputs, " ")); err != nil {
		return err
	}
	for _, tp := range tests {
		if _, err := fmt.Fprintf(w, "pair %s %s\n", tp.V1.KeyFor(c), tp.V2.KeyFor(c)); err != nil {
			return err
		}
	}
	return nil
}

// TestFileError is a typed parse or validation failure from ReadTests.
// Line is 1-based in the input stream; Err, when non-nil, is the
// underlying vector parse error (reachable through errors.Unwrap).
type TestFileError struct {
	Line int
	Msg  string
	Err  error
}

func (e *TestFileError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("atpg: line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("atpg: line %d: %s", e.Line, e.Msg)
}

func (e *TestFileError) Unwrap() error { return e.Err }

// ReadTests parses the WriteTests format and validates it against the
// circuit (the input list must match the circuit's, in order).
func ReadTests(r io.Reader, c *logic.Circuit) ([]TwoPattern, error) {
	sc := bufio.NewScanner(r)
	var tests []TwoPattern
	sawInputs := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "circuit":
			// Informational; mismatches are tolerated deliberately so sets
			// can be replayed on renamed circuits.
		case "inputs":
			if len(f)-1 != len(c.Inputs) {
				return nil, &TestFileError{Line: line, Msg: fmt.Sprintf("%d inputs, circuit has %d", len(f)-1, len(c.Inputs))}
			}
			for i, in := range f[1:] {
				if in != c.Inputs[i] {
					return nil, &TestFileError{Line: line, Msg: fmt.Sprintf("input %d is %q, circuit has %q", i, in, c.Inputs[i])}
				}
			}
			sawInputs = true
		case "pair":
			if !sawInputs {
				return nil, &TestFileError{Line: line, Msg: "pair before inputs declaration"}
			}
			if len(f) != 3 {
				return nil, &TestFileError{Line: line, Msg: "pair wants two vectors"}
			}
			v1, err := parseBits(f[1], c)
			if err != nil {
				return nil, &TestFileError{Line: line, Err: err}
			}
			v2, err := parseBits(f[2], c)
			if err != nil {
				return nil, &TestFileError{Line: line, Err: err}
			}
			tests = append(tests, TwoPattern{V1: v1, V2: v2})
		default:
			return nil, &TestFileError{Line: line, Msg: fmt.Sprintf("unknown directive %q", f[0])}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tests, nil
}

func parseBits(s string, c *logic.Circuit) (Pattern, error) {
	if len(s) != len(c.Inputs) {
		return nil, fmt.Errorf("vector %q has %d bits, circuit has %d inputs", s, len(s), len(c.Inputs))
	}
	p := make(Pattern, len(s))
	for i, ch := range s {
		switch ch {
		case '0':
			p[c.Inputs[i]] = logic.Zero
		case '1':
			p[c.Inputs[i]] = logic.One
		case 'X', 'x':
			p[c.Inputs[i]] = logic.X
		default:
			return nil, fmt.Errorf("bad bit %q in vector %q", string(ch), s)
		}
	}
	return p, nil
}
