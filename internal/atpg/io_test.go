package atpg

import (
	"bytes"
	"strings"
	"testing"

	"gobd/internal/fault"
)

func TestTestSetRoundTrip(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	var buf bytes.Buffer
	if err := WriteTests(&buf, c, ts.Tests); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTests(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts.Tests) {
		t.Fatalf("%d pairs back, want %d", len(back), len(ts.Tests))
	}
	for i := range back {
		if back[i].StringFor(c) != ts.Tests[i].StringFor(c) {
			t.Fatalf("pair %d changed: %s vs %s", i, back[i].StringFor(c), ts.Tests[i].StringFor(c))
		}
	}
	// The reloaded set grades identically.
	a := GradeOBD(c, faults, ts.Tests)
	b := GradeOBD(c, faults, back)
	if a.Detected != b.Detected {
		t.Fatalf("coverage changed after round trip: %v vs %v", a, b)
	}
}

func TestReadTestsErrors(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	bad := []string{
		"pair 11 00",             // pair before inputs
		"inputs a b\npair 1 0",   // short vector
		"inputs a b\npair 12 00", // bad bit
		"inputs b a\npair 11 00", // wrong order
		"inputs a\npair 1 0",     // wrong count
		"inputs a b\nfrobnicate", // unknown directive
	}
	for _, src := range bad {
		if _, err := ReadTests(strings.NewReader(src), c); err == nil {
			t.Errorf("accepted bad test file %q", src)
		}
	}
	// X bits round-trip.
	ok := "inputs a b\npair 1X 01\n"
	tests, err := ReadTests(strings.NewReader(ok), c)
	if err != nil {
		t.Fatal(err)
	}
	if tests[0].V1.KeyFor(c) != "1X" {
		t.Fatalf("X bit lost: %s", tests[0].V1.KeyFor(c))
	}
}
