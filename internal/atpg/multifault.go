package atpg

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// DetectsOBDMulti grades a vector pair against a set of SIMULTANEOUS OBD
// defects under the gross-delay model: every excited defect's gate output
// holds its first-frame value in the faulty second frame. Excitation is
// evaluated on the good machine (defects are rare enough that upstream
// interaction before the capture edge is second-order; this is the
// standard multiple-fault extension of launch/capture grading). The pair
// detects the ensemble if any primary output differs.
func DetectsOBDMulti(c *logic.Circuit, fs []fault.OBD, tp TwoPattern) bool {
	g1 := c.Eval(tp.V1, nil)
	g2 := c.Eval(tp.V2, nil)
	override := make(map[string]logic.Value)
	for _, f := range fs {
		lv1 := localValues(f.Gate, g1)
		lv2 := localValues(f.Gate, g2)
		known := true
		for _, v := range lv1 {
			if !v.IsKnown() {
				known = false
			}
		}
		for _, v := range lv2 {
			if !v.IsKnown() {
				known = false
			}
		}
		if known && f.Excited(lv1, lv2) {
			override[f.Gate.Output] = g1[f.Gate.Output]
		}
	}
	if len(override) == 0 {
		return false
	}
	faulty := c.Eval(tp.V2, override)
	for _, po := range c.Outputs {
		a, b := g2[po], faulty[po]
		if a.IsKnown() && b.IsKnown() && a != b {
			return true
		}
	}
	return false
}

// ensembleName joins the member fault names of a multi-defect scenario.
func ensembleName(fs []fault.OBD) string {
	name := ""
	for i, f := range fs {
		if i > 0 {
			name += "+"
		}
		name += f.String()
	}
	return name
}

// GradeOBDMulti fault-simulates a test set against a list of fault
// ENSEMBLES (each a multi-defect scenario), sharding the ensemble list
// across the default scheduler's pool.
func GradeOBDMulti(c *logic.Circuit, ensembles [][]fault.OBD, tests []TwoPattern) (Coverage, error) {
	return DefaultScheduler().GradeOBDMulti(c, ensembles, tests)
}
