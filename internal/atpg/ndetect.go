package atpg

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// GenerateNDetectOBDTests builds an n-detect OBD test set (the
// transition-fault n-detection idea of Pomeranz & Reddy, which the paper
// cites): every testable fault is detected by at least n DISTINCT vector
// pairs where the pair space allows. Higher n hardens the set against
// timing marginality and sharpens diagnosis. The generator enumerates each
// fault's detecting pairs from the exhaustive space (so it requires ≤16
// primary inputs) and greedily reuses pairs across faults.
func GenerateNDetectOBDTests(c *logic.Circuit, faults []fault.OBD, n int) (*TestSet, error) {
	if n < 1 {
		n = 1
	}
	ex, err := AnalyzeExhaustive(c, faults)
	if err != nil {
		return nil, err
	}
	// detectedBy[f] = pair indices detecting fault f.
	detectedBy := make([][]int, len(faults))
	for pi, det := range ex.DetectedBy {
		for _, fi := range det {
			detectedBy[fi] = append(detectedBy[fi], pi)
		}
	}
	count := make([]int, len(faults))
	chosen := make(map[int]bool)
	// Greedy: repeatedly pick the pair adding the most missing detections.
	for {
		best, bestGain := -1, 0
		for pi, det := range ex.DetectedBy {
			if chosen[pi] {
				continue
			}
			gain := 0
			for _, fi := range det {
				if count[fi] < n && count[fi] < len(detectedBy[fi]) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		for _, fi := range ex.DetectedBy[best] {
			count[fi]++
		}
	}
	ts := &TestSet{}
	for pi := range ex.Pairs {
		if chosen[pi] {
			ts.Tests = append(ts.Tests, ex.Pairs[pi])
		}
	}
	for fi, f := range faults {
		st := Untestable
		if count[fi] > 0 {
			st = Detected
		}
		ts.Results = append(ts.Results, Result{Fault: f.String(), Status: st})
	}
	cov, err := GradeOBDParallel(c, faults, ts.Tests)
	if err != nil {
		return nil, err
	}
	ts.Coverage = cov
	return ts, nil
}

// DetectionCounts returns, per fault, how many pairs of the test set
// detect it, sharding the fault list across the default scheduler's pool.
func DetectionCounts(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) ([]int, error) {
	return DefaultScheduler().DetectionCounts(c, faults, tests)
}
