package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

func TestNDetectCountsMeetTarget(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ex := must(AnalyzeExhaustive(c, faults))
	maxDet := make([]int, len(faults))
	for _, det := range ex.DetectedBy {
		for _, fi := range det {
			maxDet[fi]++
		}
	}
	for _, n := range []int{1, 3, 5} {
		ts := must(GenerateNDetectOBDTests(c, faults, n))
		counts := must(DetectionCounts(c, faults, ts.Tests))
		for fi := range faults {
			want := n
			if maxDet[fi] < want {
				want = maxDet[fi]
			}
			if counts[fi] < want {
				t.Fatalf("n=%d: fault %s detected %d times, want >= %d",
					n, faults[fi], counts[fi], want)
			}
		}
	}
}

func TestNDetectSetGrowsWithN(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	prev := 0
	for _, n := range []int{1, 2, 4} {
		ts := must(GenerateNDetectOBDTests(c, faults, n))
		if len(ts.Tests) < prev {
			t.Fatalf("n=%d produced fewer tests (%d) than smaller n (%d)", n, len(ts.Tests), prev)
		}
		prev = len(ts.Tests)
		// Coverage must match exhaustive testability regardless of n.
		ex := must(AnalyzeExhaustive(c, faults))
		if ts.Coverage.Detected != ex.TestableCount() {
			t.Fatalf("n=%d coverage %v vs testable %d", n, ts.Coverage, ex.TestableCount())
		}
	}
}

func TestMultiFaultSingleReduces(t *testing.T) {
	// A one-element ensemble must behave exactly like the single-fault
	// simulator.
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	pats := allPatterns(c)
	for _, f := range faults[:6] {
		for _, v1 := range pats {
			for _, v2 := range pats {
				tp := TwoPattern{V1: v1, V2: v2}
				if DetectsOBD(c, f, tp) != DetectsOBDMulti(c, []fault.OBD{f}, tp) {
					t.Fatalf("single-fault mismatch for %s at %s", f, tp.StringFor(c))
				}
			}
		}
	}
}

func TestMultiFaultMaskingExists(t *testing.T) {
	// Two defects can mask each other on some pair where one alone is
	// detected — find at least one masking instance on the XOR circuit.
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	pats := allPatterns(c)
	masked := false
	for i := 0; i < len(faults) && !masked; i++ {
		for j := i + 1; j < len(faults) && !masked; j++ {
			pair := []fault.OBD{faults[i], faults[j]}
			for _, v1 := range pats {
				for _, v2 := range pats {
					tp := TwoPattern{V1: v1, V2: v2}
					single := DetectsOBD(c, faults[i], tp) || DetectsOBD(c, faults[j], tp)
					multi := DetectsOBDMulti(c, pair, tp)
					if single && !multi {
						masked = true
					}
				}
			}
		}
	}
	if !masked {
		t.Fatal("expected at least one masking instance between fault pairs")
	}
}

func TestGradeOBDMulti(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	var ensembles [][]fault.OBD
	for i := 0; i+1 < len(faults); i += 2 {
		ensembles = append(ensembles, []fault.OBD{faults[i], faults[i+1]})
	}
	cov := must(GradeOBDMulti(c, ensembles, ts.Tests))
	if cov.Total != len(ensembles) {
		t.Fatalf("total %d", cov.Total)
	}
	if cov.Detected == 0 {
		t.Fatal("single-fault set detected no double faults at all")
	}
}

// TestQuickMultiFaultUnionBound: an ensemble is detected by a pair
// whenever exactly one of its members is excited and that member alone is
// detected by the pair (no second defect interferes when it is silent on
// both frames at the fault site).
func TestQuickMultiFaultExcitedSingleton(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(3), Gates: 2 + rng.Intn(10), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) < 2 {
			return true
		}
		fa := faults[rng.Intn(len(faults))]
		fb := faults[rng.Intn(len(faults))]
		if fa == fb {
			return true
		}
		mk := func() Pattern {
			p := make(Pattern, len(c.Inputs))
			for _, in := range c.Inputs {
				p[in] = logic.FromBool(rng.Intn(2) == 1)
			}
			return p
		}
		tp := TwoPattern{V1: mk(), V2: mk()}
		g1 := c.Eval(tp.V1, nil)
		g2 := c.Eval(tp.V2, nil)
		lv := func(f fault.OBD, vals map[string]logic.Value) []logic.Value {
			out := make([]logic.Value, len(f.Gate.Inputs))
			for i, in := range f.Gate.Inputs {
				out[i] = vals[in]
			}
			return out
		}
		bExcited := fb.Excited(lv(fb, g1), lv(fb, g2))
		if bExcited {
			return true // only check the singleton-excitation case
		}
		single := DetectsOBD(c, fa, tp)
		multi := DetectsOBDMulti(c, []fault.OBD{fa, fb}, tp)
		return single == multi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
