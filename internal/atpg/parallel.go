package atpg

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file implements 64-way bit-parallel two-pattern OBD fault
// simulation: 64 vector pairs are packed into machine words and graded
// against each fault with bitwise evaluations of both frames, the
// series-parallel excitation rule and the forced-value faulty frame. It
// produces exactly the same verdicts as DetectsOBD (see the property
// test) at a fraction of the cost — the substrate that makes test-set
// grading on larger circuits cheap.

// PackPatterns packs up to 64 complete patterns into per-input words
// (bit k = pattern k).
func PackPatterns(c *logic.Circuit, pats []Pattern) map[string]uint64 {
	if len(pats) > 64 {
		panic("atpg: PackPatterns takes at most 64 patterns")
	}
	words := make(map[string]uint64, len(c.Inputs))
	for k, p := range pats {
		for _, in := range c.Inputs {
			if p[in] == logic.One {
				words[in] |= 1 << uint(k)
			}
		}
	}
	return words
}

// conductBits evaluates series-parallel conduction bitwise over 64
// assignments: bit k is 1 iff the network conducts under assignment k.
// The transistor at leaf `removed` is forced off; pass -1 for none.
func conductBits(n *fault.Network, side fault.Side, in []uint64, removed int) uint64 {
	switch n.Kind {
	case fault.Leaf:
		if n.Input == removed {
			return 0
		}
		v := in[n.Input]
		if side == fault.PullUp {
			v = ^v
		}
		return v
	case fault.Series:
		r := ^uint64(0)
		for _, ch := range n.Children {
			r &= conductBits(ch, side, in, removed)
		}
		return r
	default: // Parallel
		r := uint64(0)
		for _, ch := range n.Children {
			r |= conductBits(ch, side, in, removed)
		}
		return r
	}
}

// DetectMaskOBD grades one OBD fault against 64 packed vector pairs at
// once, returning the bitmask of detecting pairs. v1w and v2w are packed
// complete first/second-frame input words.
func DetectMaskOBD(c *logic.Circuit, f fault.OBD, v1w, v2w map[string]uint64) uint64 {
	g1 := c.EvalBits(v1w, nil, nil)
	g2 := c.EvalBits(v2w, nil, nil)
	return detectMaskWithEvals(c, f, v1w, v2w, g1, g2)
}

// detectMaskWithEvals is DetectMaskOBD with the good-machine frame
// evaluations precomputed (shared across faults by PairGrader).
func detectMaskWithEvals(c *logic.Circuit, f fault.OBD, v1w, v2w, g1, g2 map[string]uint64) uint64 {
	_ = v1w
	nets, ok := fault.GateNetworks(f.Gate.Type, len(f.Gate.Inputs))
	if !ok {
		return 0
	}
	site := f.Gate.Output
	o1, o2 := g1[site], g2[site]

	// Local second-frame gate-input words.
	lv2 := make([]uint64, len(f.Gate.Inputs))
	for i, in := range f.Gate.Inputs {
		lv2[i] = g2[in]
	}
	net := nets.PullUp
	driveMask := o2 // pull-up drives when the new value is 1
	if f.Side == fault.PullDown {
		net = nets.PullDown
		driveMask = ^o2
	}
	excited := (o1 ^ o2) &
		driveMask &
		conductBits(net, f.Side, lv2, -1) &
		^conductBits(net, f.Side, lv2, f.Input)
	if excited == 0 {
		return 0
	}
	// Faulty frame 2: the site holds its frame-1 value in the excited
	// lanes.
	faulty := c.EvalBits(v2w,
		map[string]uint64{site: excited},
		map[string]uint64{site: o1})
	detected := uint64(0)
	for _, po := range c.Outputs {
		detected |= g2[po] ^ faulty[po]
	}
	return detected & excited
}

// PairGrader precomputes the packed blocks and good-machine evaluations of
// a test set, so many faults can be graded against it cheaply (the good
// frames are evaluated once per block instead of once per fault).
type PairGrader struct {
	c      *logic.Circuit
	blocks []gradeBlock
}

type gradeBlock struct {
	v1w, v2w, g1, g2 map[string]uint64
	n                int
}

// NewPairGrader packs complete vector pairs into 64-wide blocks.
func NewPairGrader(c *logic.Circuit, tests []TwoPattern) *PairGrader {
	pg := &PairGrader{c: c}
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		v1s := make([]Pattern, 0, end-start)
		v2s := make([]Pattern, 0, end-start)
		for _, tp := range tests[start:end] {
			v1s = append(v1s, tp.V1)
			v2s = append(v2s, tp.V2)
		}
		b := gradeBlock{v1w: PackPatterns(c, v1s), v2w: PackPatterns(c, v2s), n: end - start}
		b.g1 = c.EvalBits(b.v1w, nil, nil)
		b.g2 = c.EvalBits(b.v2w, nil, nil)
		pg.blocks = append(pg.blocks, b)
	}
	return pg
}

// Detects reports whether any pair in the set detects the fault.
func (pg *PairGrader) Detects(f fault.OBD) bool {
	return pg.FirstDetecting(f) >= 0
}

// FirstDetecting returns the index of the first detecting pair, or -1.
func (pg *PairGrader) FirstDetecting(f fault.OBD) int {
	for bi, b := range pg.blocks {
		mask := detectMaskWithEvals(pg.c, f, b.v1w, b.v2w, b.g1, b.g2)
		if b.n < 64 {
			mask &= (uint64(1) << uint(b.n)) - 1
		}
		if mask != 0 {
			lane := 0
			for mask&1 == 0 {
				mask >>= 1
				lane++
			}
			return bi*64 + lane
		}
	}
	return -1
}

// GradeOBDParallel fault-simulates a test set against an OBD fault list
// using the 64-way engine; it returns the same Coverage as GradeOBD.
func GradeOBDParallel(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) Coverage {
	cov := Coverage{Total: len(faults)}
	if len(faults) == 0 {
		return cov
	}
	pg := NewPairGrader(c, tests)
	for _, f := range faults {
		if pg.Detects(f) {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f.String())
		}
	}
	return cov
}
