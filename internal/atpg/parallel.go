package atpg

import (
	"math/bits"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file implements 64-way bit-parallel two-pattern OBD fault
// simulation: 64 vector pairs are packed into machine words and graded
// against each fault with bitwise evaluations of both frames, the
// series-parallel excitation rule and the forced-value faulty frame. The
// packing is dual-rail (a value word plus a known word per net), so
// partial patterns are carried as X rather than silently coerced to 0 —
// every lane verdict agrees with DetectsOBD, which rejects unknown local
// values (see the property test). It is the substrate that makes test-set
// grading on larger circuits cheap.

// PackedPatterns is the dual-rail image of up to 64 (possibly partial)
// patterns: bit k of Val[net] is set when pattern k assigns One, bit k of
// Known[net] when it assigns Zero or One. Unassigned and X inputs leave
// both bits clear.
type PackedPatterns struct {
	Val, Known map[string]uint64
}

// laneMask returns the mask selecting the first n of 64 lanes.
func laneMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// Complete reports whether all n packed patterns assign every input.
func (pp PackedPatterns) Complete(c *logic.Circuit, n int) bool {
	full := laneMask(n)
	for _, in := range c.Inputs {
		if pp.Known[in]&full != full {
			return false
		}
	}
	return true
}

// PackPatterns packs up to 64 patterns into per-input dual-rail words
// (bit k = pattern k). Incomplete patterns are explicitly X-masked, never
// coerced to 0: lanes whose local values are unknown at a fault site are
// excluded from detection exactly as DetectsOBD refuses them.
func PackPatterns(c *logic.Circuit, pats []Pattern) PackedPatterns {
	if len(pats) > 64 {
		//obdcheck:allow paniccontract — documented hard precondition: callers shard into 64-pattern words before packing
		panic("atpg: PackPatterns takes at most 64 patterns")
	}
	pp := PackedPatterns{
		Val:   make(map[string]uint64, len(c.Inputs)),
		Known: make(map[string]uint64, len(c.Inputs)),
	}
	for k, p := range pats {
		bit := uint64(1) << uint(k)
		for _, in := range c.Inputs {
			v, ok := p[in]
			if !ok {
				v = logic.X
			}
			switch v {
			case logic.One:
				pp.Val[in] |= bit
				pp.Known[in] |= bit
			case logic.Zero:
				pp.Known[in] |= bit
			case logic.X:
				// Lane stays unknown: the Known bit is left clear, which is
				// exactly the X-masking the package contract promises.
			}
		}
	}
	return pp
}

// conductBits evaluates series-parallel conduction bitwise over 64
// assignments: bit k is 1 iff the network conducts under assignment k.
// The transistor at leaf `removed` is forced off; pass -1 for none.
func conductBits(n *fault.Network, side fault.Side, in []uint64, removed int) uint64 {
	switch n.Kind {
	case fault.Leaf:
		if n.Input == removed {
			return 0
		}
		v := in[n.Input]
		if side == fault.PullUp {
			v = ^v
		}
		return v
	case fault.Series:
		r := ^uint64(0)
		for _, ch := range n.Children {
			r &= conductBits(ch, side, in, removed)
		}
		return r
	default: // Parallel
		r := uint64(0)
		for _, ch := range n.Children {
			r |= conductBits(ch, side, in, removed)
		}
		return r
	}
}

// DetectMaskOBD grades one OBD fault against 64 packed vector pairs at
// once, returning the bitmask of detecting pairs. v1 and v2 are the packed
// first/second-frame input words.
func DetectMaskOBD(c *logic.Circuit, f fault.OBD, v1, v2 PackedPatterns) uint64 {
	g1v, g1k := c.EvalBits3(v1.Val, v1.Known, nil, nil, nil)
	g2v, g2k := c.EvalBits3(v2.Val, v2.Known, nil, nil, nil)
	return detectMaskWithEvals(c, f, v2, g1v, g1k, g2v, g2k)
}

// detectMaskWithEvals is DetectMaskOBD with the good-machine frame
// evaluations precomputed (shared across faults by SweepGrader).
func detectMaskWithEvals(c *logic.Circuit, f fault.OBD, v2 PackedPatterns, g1v, g1k, g2v, g2k map[string]uint64) uint64 {
	nets, ok := fault.GateNetworks(f.Gate.Type, len(f.Gate.Inputs))
	if !ok {
		return 0
	}
	site := f.Gate.Output
	o1, o2 := g1v[site], g2v[site]

	// Local second-frame gate-input words, and the lanes where every local
	// value of both frames is known — the bit-parallel image of the
	// IsKnown rejection in DetectsOBD.
	localKnown := ^uint64(0)
	lv2 := make([]uint64, len(f.Gate.Inputs))
	for i, in := range f.Gate.Inputs {
		localKnown &= g1k[in] & g2k[in]
		lv2[i] = g2v[in]
	}
	net := nets.PullUp
	driveMask := o2 // pull-up drives when the new value is 1
	if f.Side == fault.PullDown {
		net = nets.PullDown
		driveMask = ^o2
	}
	excited := (o1 ^ o2) &
		driveMask &
		localKnown &
		conductBits(net, f.Side, lv2, -1) &
		^conductBits(net, f.Side, lv2, f.Input)
	if excited == 0 {
		return 0
	}
	// Faulty frame 2: the site holds its frame-1 value in the excited
	// lanes (o1 is known there, localKnown being a subset of g1k[site]).
	fv, fk := c.EvalBits3(v2.Val, v2.Known,
		map[string]uint64{site: excited},
		map[string]uint64{site: o1},
		map[string]uint64{site: g1k[site]})
	detected := uint64(0)
	for _, po := range c.Outputs {
		detected |= (g2v[po] ^ fv[po]) & g2k[po] & fk[po]
	}
	return detected & excited
}

// SweepGrader is the full-sweep reference grader: every fault evaluation
// re-walks the whole circuit with the map-keyed bit-parallel evaluators.
// It precomputes the packed blocks and good-machine evaluations of a test
// set so the good frames are shared across faults, is immutable after
// construction and safe for concurrent use. PairGrader (the levelized
// event-driven engine in event.go) is property-tested bit-identical to it
// and supersedes it on the hot paths; the sweep stays as the semantic
// baseline, the perf-trajectory comparison point, and the fallback for
// faults on gates outside the circuit.
type SweepGrader struct {
	c      *logic.Circuit
	blocks []gradeBlock
}

type gradeBlock struct {
	v2       PackedPatterns
	g1v, g1k map[string]uint64
	g2v, g2k map[string]uint64
	n        int
}

// NewSweepGrader packs vector pairs into 64-wide dual-rail blocks.
func NewSweepGrader(c *logic.Circuit, tests []TwoPattern) *SweepGrader {
	pg := &SweepGrader{c: c}
	for start := 0; start < len(tests); start += 64 {
		end := start + 64
		if end > len(tests) {
			end = len(tests)
		}
		v1s := make([]Pattern, 0, end-start)
		v2s := make([]Pattern, 0, end-start)
		for _, tp := range tests[start:end] {
			v1s = append(v1s, tp.V1)
			v2s = append(v2s, tp.V2)
		}
		v1 := PackPatterns(c, v1s)
		b := gradeBlock{v2: PackPatterns(c, v2s), n: end - start}
		b.g1v, b.g1k = c.EvalBits3(v1.Val, v1.Known, nil, nil, nil)
		b.g2v, b.g2k = c.EvalBits3(b.v2.Val, b.v2.Known, nil, nil, nil)
		pg.blocks = append(pg.blocks, b)
	}
	return pg
}

// Detects reports whether any pair in the set detects the fault.
func (pg *SweepGrader) Detects(f fault.OBD) bool {
	return pg.FirstDetecting(f) >= 0
}

// FirstDetecting returns the index of the first detecting pair, or -1.
func (pg *SweepGrader) FirstDetecting(f fault.OBD) int {
	for bi, b := range pg.blocks {
		mask := detectMaskWithEvals(pg.c, f, b.v2, b.g1v, b.g1k, b.g2v, b.g2k)
		mask &= laneMask(b.n)
		if mask != 0 {
			return bi*64 + bits.TrailingZeros64(mask)
		}
	}
	return -1
}

// CountDetecting returns how many pairs of the set detect the fault.
func (pg *SweepGrader) CountDetecting(f fault.OBD) int {
	n := 0
	for _, b := range pg.blocks {
		mask := detectMaskWithEvals(pg.c, f, b.v2, b.g1v, b.g1k, b.g2v, b.g2k)
		n += bits.OnesCount64(mask & laneMask(b.n))
	}
	return n
}

// GradeOBDParallel fault-simulates a test set against an OBD fault list
// using the 64-way engine sharded across the default scheduler's worker
// pool; it returns the same Coverage as GradeOBD (including the order of
// Undetected) for any worker count. The error is a typed
// *InvalidCircuitError when the circuit fails validation.
func GradeOBDParallel(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) (Coverage, error) {
	return DefaultScheduler().GradeOBD(c, faults, tests)
}
