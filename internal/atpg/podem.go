package atpg

import (
	"sort"

	"gobd/internal/logic"
)

// podemEngine is a PODEM search over primary-input assignments. It serves
// two problem shapes:
//
//   - justify-and-propagate (propagate=true): make every net in req take
//     its required good value AND drive a good/faulty difference from the
//     fault site (faulty machine: site forced to faultyVal) to a primary
//     output — the classical stuck-at PODEM formulation;
//   - justification only (propagate=false): make every net in req take its
//     required value (used for the first pattern of two-pattern tests).
//
// Completeness comes from branching both values of each decided PI; the
// objective/backtrace logic is only a search-direction heuristic.
type podemEngine struct {
	c         *logic.Circuit
	req       []netReq // sorted for determinism
	site      string
	faultyVal logic.Value
	propagate bool

	maxBacktracks int
	backtracks    int
	aborted       bool
	tb            *logic.Testability // optional SCOAP guidance

	assign Pattern
	result Pattern
}

type netReq struct {
	net string
	val logic.Value
}

// newPodem builds an engine. For propagate problems req must include the
// fault site's required good value. tb, when non-nil, steers the search
// heuristics (SCOAP guidance).
func newPodem(c *logic.Circuit, req map[string]logic.Value, site string, faultyVal logic.Value, propagate bool, maxBacktracks int, tb *logic.Testability) *podemEngine {
	e := &podemEngine{
		c: c, site: site, faultyVal: faultyVal, propagate: propagate,
		maxBacktracks: maxBacktracks, assign: make(Pattern), tb: tb,
	}
	for n, v := range req {
		e.req = append(e.req, netReq{net: n, val: v})
	}
	sort.Slice(e.req, func(i, j int) bool { return e.req[i].net < e.req[j].net })
	return e
}

// run executes the search. On success the returned pattern is the partial
// PI assignment (unmentioned inputs are don't-care).
func (e *podemEngine) run() (Pattern, Status) {
	if e.search() {
		return e.result, Detected
	}
	if e.aborted {
		return nil, Aborted
	}
	return nil, Untestable
}

func (e *podemEngine) search() bool {
	good := e.c.Eval(e.assign, nil)
	var faulty map[string]logic.Value
	if e.propagate {
		faulty = e.c.Eval(e.assign, map[string]logic.Value{e.site: e.faultyVal})
	}

	// Requirement check and completion status.
	reqDone := true
	for _, r := range e.req {
		g := good[r.net]
		if g.IsKnown() && g != r.val {
			return false // requirement violated: dead branch
		}
		if g != r.val {
			reqDone = false
		}
	}

	if e.propagate {
		if reqDone {
			for _, po := range sortedPOs(e.c) {
				a, b := good[po], faulty[po]
				if a.IsKnown() && b.IsKnown() && a != b {
					e.result = e.assign.Clone()
					return true
				}
			}
		}
		if !e.dReachable(good, faulty) {
			return false
		}
	} else if reqDone {
		e.result = e.assign.Clone()
		return true
	}

	objNet, objVal := e.objective(good, faulty)
	if objNet == "" {
		return false
	}
	pi, piVal, ok := e.backtrace(objNet, objVal, good)
	if !ok {
		return false
	}
	for k, v := 0, piVal; k < 2; k, v = k+1, piVal.Not() {
		e.assign[pi] = v
		if e.search() {
			return true
		}
		delete(e.assign, pi)
		e.backtracks++
		if e.backtracks > e.maxBacktracks {
			e.aborted = true
			return false
		}
		if e.aborted {
			return false
		}
	}
	return false
}

// dReachable is the X-path check: can a good/faulty difference still reach
// a primary output? A net is "alive" if its good or faulty value is X, or
// the two differ; we flood forward from the fault site through alive nets.
func (e *podemEngine) dReachable(good, faulty map[string]logic.Value) bool {
	alive := func(n string) bool {
		a, b := good[n], faulty[n]
		return !a.IsKnown() || !b.IsKnown() || a != b
	}
	if !alive(e.site) {
		return false
	}
	isPO := make(map[string]bool, len(e.c.Outputs))
	for _, po := range e.c.Outputs {
		isPO[po] = true
	}
	seen := map[string]bool{e.site: true}
	queue := []string{e.site}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if isPO[n] {
			return true
		}
		for _, g := range e.c.Fanout(n) {
			out := g.Output
			if !seen[out] && alive(out) {
				seen[out] = true
				queue = append(queue, out)
			}
		}
	}
	return false
}

// objective picks the next goal: first an unjustified requirement, then a
// D-frontier advance.
func (e *podemEngine) objective(good, faulty map[string]logic.Value) (string, logic.Value) {
	for _, r := range e.req {
		if good[r.net] == logic.X {
			return r.net, r.val
		}
	}
	if !e.propagate {
		return "", logic.X
	}
	// D-frontier: gates with a known good/faulty difference on an input and
	// an undecided output; objective sets an X side-input non-controlling.
	// With SCOAP guidance the frontier gate with the most observable
	// output is advanced first.
	var bestIn string
	var bestVal logic.Value
	bestCO := int(^uint(0) >> 1)
	for _, g := range e.c.Ordered() {
		outA, outB := good[g.Output], faulty[g.Output]
		if outA.IsKnown() && outB.IsKnown() {
			continue // output already decided (D or equal)
		}
		hasD := false
		for _, in := range g.Inputs {
			a, b := good[in], faulty[in]
			if a.IsKnown() && b.IsKnown() && a != b {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		for idx, in := range g.Inputs {
			if good[in] == logic.X {
				if e.tb == nil {
					return in, sideInputValue(g.Type, idx)
				}
				if co := e.tb.CO[g.Output]; co < bestCO {
					bestCO = co
					bestIn, bestVal = in, sideInputValue(g.Type, idx)
				}
				break
			}
		}
	}
	if bestIn != "" {
		return bestIn, bestVal
	}
	return "", logic.X
}

// sideInputValue returns the non-controlling value to put on a side input
// when propagating through a gate of the given type.
func sideInputValue(t logic.GateType, idx int) logic.Value {
	switch t {
	case logic.Nand, logic.And:
		return logic.One
	case logic.Nor, logic.Or:
		return logic.Zero
	case logic.Aoi21:
		if idx == 2 {
			return logic.Zero // keep the OR branch quiet
		}
		return logic.One // sensitize the AND branch
	case logic.Oai21:
		if idx == 2 {
			return logic.One
		}
		return logic.Zero
	default: // Xor/Xnor/Inv/Buf: any value sensitizes
		return logic.Zero
	}
}

// backtrace maps an objective (net, value) to a primary-input decision by
// walking back through X-valued nets. With SCOAP guidance the X input
// whose required value is cheapest to control is taken at each gate.
func (e *podemEngine) backtrace(net string, val logic.Value, good map[string]logic.Value) (string, logic.Value, bool) {
	for !e.c.IsInput(net) {
		g := e.c.Driver(net)
		if g == nil {
			return "", logic.X, false
		}
		inVal := backtraceValue(g.Type, val)
		next := ""
		bestCC := int(^uint(0) >> 1)
		for _, in := range g.Inputs {
			if good[in] != logic.X {
				continue
			}
			if e.tb == nil {
				next = in
				break
			}
			cc := e.tb.CC0[in]
			if inVal == logic.One {
				cc = e.tb.CC1[in]
			}
			if cc < bestCC {
				bestCC = cc
				next = in
			}
		}
		if next == "" {
			return "", logic.X, false // output X with all inputs known: impossible
		}
		val = inVal
		net = next
	}
	return net, val, true
}

// backtraceValue transforms the desired output value into a heuristic
// input target when crossing a gate.
func backtraceValue(t logic.GateType, v logic.Value) logic.Value {
	switch t {
	case logic.Inv, logic.Nand, logic.Nor, logic.Xnor, logic.Aoi21, logic.Oai21:
		return v.Not()
	default:
		return v
	}
}
