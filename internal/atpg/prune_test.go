package atpg

import (
	"testing"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// TestPruneAgreesWithSearch checks the Prune contract on the paper's
// full adder: the pruned run must produce the same verdict for every
// fault (the prover is sound, so the only permitted drift is a would-be
// Aborted settling as Untestable) and identical coverage.
func TestPruneAgreesWithSearch(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)

	plain := must(GenerateOBDTests(c, faults, DefaultOptions()))
	opt := DefaultOptions()
	opt.Prune = true
	pruned := must(GenerateOBDTests(c, faults, opt))

	if len(plain.Results) != len(pruned.Results) {
		t.Fatalf("result lengths differ: %d vs %d", len(plain.Results), len(pruned.Results))
	}
	for i := range plain.Results {
		a, b := plain.Results[i], pruned.Results[i]
		if a.Status == b.Status {
			continue
		}
		if a.Status == Aborted && b.Status == Untestable {
			continue // prover settled what the search gave up on
		}
		t.Errorf("%s: status %v without pruning, %v with", a.Fault, a.Status, b.Status)
	}
	if plain.Coverage.String() != pruned.Coverage.String() {
		t.Errorf("coverage drifted: %v vs %v", plain.Coverage, pruned.Coverage)
	}

	// The statically discharged faults must surface as Untestable results.
	mask := netcheck.UntestableOBD(c, faults)
	for i, m := range mask {
		if m && pruned.Results[i].Status != Untestable {
			t.Errorf("%s: pruned but status %v", faults[i], pruned.Results[i].Status)
		}
	}
}

// TestPruneWorkerInvariance extends the scheduler's determinism contract
// to pruned runs: any worker count, bit-identical output.
func TestPruneWorkerInvariance(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	opt := DefaultOptions()
	opt.Prune = true

	ref := must(NewScheduler(1).GenerateOBDTests(c, faults, opt))
	for _, workers := range []int{2, 4, 8} {
		got := must(NewScheduler(workers).GenerateOBDTests(c, faults, opt))
		if len(got.Results) != len(ref.Results) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got.Results), len(ref.Results))
		}
		for i := range ref.Results {
			if got.Results[i] != ref.Results[i] && (got.Results[i].Status != ref.Results[i].Status ||
				got.Results[i].Fault != ref.Results[i].Fault) {
				t.Fatalf("workers=%d: result %d differs: %+v vs %+v", workers, i, got.Results[i], ref.Results[i])
			}
		}
		if got.Coverage.String() != ref.Coverage.String() {
			t.Fatalf("workers=%d: coverage %v, want %v", workers, got.Coverage, ref.Coverage)
		}
	}
}

// TestPruneSingleFault checks the single-fault entry point honors Prune.
func TestPruneSingleFault(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	opt := DefaultOptions()
	opt.Prune = true
	for i, m := range netcheck.UntestableOBD(c, faults) {
		if !m {
			continue
		}
		if tp, st := GenerateOBDTest(c, faults[i], opt); st != Untestable || tp != nil {
			t.Fatalf("%s: GenerateOBDTest with Prune returned (%v, %v)", faults[i], tp, st)
		}
	}
}

func benchGenerate(b *testing.B, c *logic.Circuit, prune bool) {
	faults, _ := fault.OBDUniverse(c)
	opt := DefaultOptions()
	opt.Prune = prune
	pruned := 0
	if prune {
		for _, m := range netcheck.UntestableOBD(c, faults) {
			if m {
				pruned++
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		must(GenerateOBDTests(c, faults, opt))
	}
	b.StopTimer()
	if prune {
		b.ReportMetric(float64(pruned)/float64(len(faults)), "pruned-frac")
	}
}

// BenchmarkGenerateUnpruned/Pruned measure what the static prover saves
// (or costs) PODEM. The redundant full adder is where pruning pays —
// 13/78 faults never enter the search; the irredundant ripple-carry
// adder bounds the overhead of proving nothing (see EXPERIMENTS.md).
func BenchmarkGenerateUnpruned(b *testing.B) {
	b.Run("fulladder", func(b *testing.B) { benchGenerate(b, cells.FullAdderSumLogic(), false) })
	b.Run("rca4", func(b *testing.B) { benchGenerate(b, logic.RippleCarryAdder(4), false) })
}

func BenchmarkGeneratePruned(b *testing.B) {
	b.Run("fulladder", func(b *testing.B) { benchGenerate(b, cells.FullAdderSumLogic(), true) })
	b.Run("rca4", func(b *testing.B) { benchGenerate(b, logic.RippleCarryAdder(4), true) })
}
