package atpg

import (
	"context"
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// This file adds checkpoint/resume to the generation drivers. The
// commit loops of GenerateOBDTestsCtx and friends settle faults
// strictly in list order, and the verdict committed for fault i depends
// only on (circuit, faults[i], options) plus the tests committed at
// indices before i — speculation runs ahead in parallel but its results
// are discarded whenever an earlier commit drop-covers the fault. That
// dependency structure makes any Results prefix a complete checkpoint:
// re-seeding the fault-dropping state by regrading the prefix's tests
// against the uncommitted tail reconstructs the loop state at the
// boundary exactly, so a resumed run commits bit-identical Results,
// Tests and Coverage to an uninterrupted one. The durable job runtime
// (internal/jobs) leans on this to survive crashes mid-generation.
//
// The Resume entry points also serve as bounded-segment drivers: upto
// caps how many faults are committed before returning, so a caller can
// alternate generate-segment / persist-checkpoint without cancelling
// and restarting the scheduler.

// checkResumePrefix validates that results is a committable prefix of
// an n-fault list: not longer than the list, and naming the same faults
// in the same order. It returns the resume index.
func checkResumePrefix(n int, results []Result, faultName func(i int) string) (int, error) {
	start := len(results)
	if start > n {
		return 0, &ResumeMismatchError{Index: -1,
			Reason: fmt.Sprintf("prior has %d results, fault list has %d faults", start, n)}
	}
	for i := range results {
		if want := faultName(i); results[i].Fault != want {
			return 0, &ResumeMismatchError{Index: i,
				Reason: fmt.Sprintf("prior result %d is for fault %q, fault list has %q", i, results[i].Fault, want)}
		}
	}
	return start, nil
}

// countTests cross-checks the test list length against the results that
// should have contributed a test.
func countTests(results []Result, tests int) error {
	withTest := 0
	for i := range results {
		if results[i].Test != nil {
			withTest++
		}
	}
	if withTest != tests {
		return &ResumeMismatchError{Index: -1,
			Reason: fmt.Sprintf("prior has %d tests but %d generated results", tests, withTest)}
	}
	return nil
}

// clampUpto normalizes the segment bound: negative or oversized means
// run to completion, and a bound inside the committed prefix is a no-op
// segment.
func clampUpto(upto, start, n int) int {
	if upto < 0 || upto > n {
		upto = n
	}
	if upto < start {
		upto = start
	}
	return upto
}

// ResumeOBDTestsCtx continues an OBD generation run from a previously
// committed prefix. prior carries the Results (and their Tests) of an
// earlier Resume or cancelled Generate call over the same circuit,
// fault list and options; nil (or empty) starts from scratch. The run
// commits faults up to index upto (exclusive; pass len(faults) or -1 to
// finish) and returns the extended set — Coverage is graded only when
// the whole list is committed, and a partial set's Coverage stays zero.
//
// Chaining segments over any boundaries yields Tests, Results and
// Coverage bit-identical to a single uninterrupted GenerateOBDTestsCtx
// with the same inputs, for any worker count. A prior that does not
// match the fault list is rejected with a *ResumeMismatchError; prior
// itself is never mutated.
func (s *Scheduler) ResumeOBDTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.OBD, opt *Options, prior *TestSet, upto int) (*TestSet, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	n := len(faults)
	ts := &TestSet{}
	start := 0
	if prior != nil {
		var err error
		start, err = checkResumePrefix(n, prior.Results, func(i int) string { return faults[i].String() })
		if err != nil {
			return nil, err
		}
		if err := countTests(prior.Results, len(prior.Tests)); err != nil {
			return nil, err
		}
		ts.Tests = append(ts.Tests, prior.Tests...)
		ts.Results = append(ts.Results, prior.Results...)
	}
	upto = clampUpto(upto, start, n)
	tb := guidance(c, opt)
	covered := make([]bool, n)
	done := make([]bool, n)
	specTP := make([]*TwoPattern, n)
	specSt := make([]Status, n)
	specErr := make([]error, n)
	batch := genBatch(s.WorkerCount())
	if opt.BacktrackSink != nil {
		batch = 1
	}
	// Re-seed the fault-dropping state for the uncommitted tail:
	// covered[j] at commit time means "a test committed before index j
	// detects fault j", and every committed test precedes every
	// uncommitted index, so regrading the prefix's tests reconstructs
	// the loop state at the boundary exactly.
	if opt.FaultDropping && len(ts.Tests) > 0 && start < n {
		pg := NewPairGrader(c, ts.Tests)
		m := n - start
		err := s.runCtx(ctx, m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
			for k := lo; k < hi; k++ {
				j := start + k
				covered[j] = pg.FirstDetecting(faults[j]) >= 0
				ws.Items++
				ws.Pairs += int64(len(ts.Tests))
			}
		})
		if err != nil {
			return ts, err
		}
	}
	if opt.Prune {
		// Static untestability proofs settle tail faults before PODEM
		// sees them (committed indices already carry their verdicts).
		pruned := make([]bool, n-start)
		rep := s.ForEachCtx(ctx, n-start, func(k int) error {
			pruned[k] = netcheck.ProveOBD(c, faults[start+k]).Untestable
			return nil
		})
		if rep.Err != nil {
			return ts, rep.Err
		}
		for k, p := range pruned {
			if p {
				done[start+k] = true
				specSt[start+k] = Untestable
			}
		}
	}
	for i := start; i < upto; i++ {
		f := faults[i]
		if err := ctx.Err(); err != nil {
			return ts, err
		}
		if covered[i] {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Detected})
			continue
		}
		if !done[i] {
			s.speculate(ctx, i, batch, covered, done, func(j int) {
				specErr[j] = protect(func() error {
					specTP[j], specSt[j] = generateOBDTestWith(c, faults[j], opt, tb)
					return nil
				})
			})
			if !done[i] { // speculation cut short by cancellation
				return ts, ctx.Err()
			}
		}
		tp, st := specTP[i], specSt[i]
		if specErr[i] != nil {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Errored, Err: &ItemError{Index: i, Err: specErr[i]}})
			continue
		}
		if st == Aborted && opt.SATFallback {
			// Resolved here in the sequential commit loop — speculation
			// results stay advisory and worker counts cannot change what
			// is committed (or the SATStats counters).
			tp, st = satResolveOBD(c, f, opt)
		}
		res := Result{Fault: f.String(), Status: st}
		if st == Detected {
			res.Test = tp
			ts.Tests = append(ts.Tests, *tp)
			if opt.FaultDropping {
				s.dropOBD(c, faults, covered, i, *tp)
			}
		}
		ts.Results = append(ts.Results, res)
	}
	if upto < n {
		return ts, ctx.Err()
	}
	cov, err := s.GradeOBDCtx(ctx, c, faults, ts.Tests)
	if err != nil {
		return ts, err
	}
	ts.Coverage = cov
	return ts, nil
}

// ResumeTransitionTestsCtx continues a transition-fault generation run
// from a committed prefix (see ResumeOBDTestsCtx for the segment and
// bit-identity contract).
func (s *Scheduler) ResumeTransitionTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.Transition, opt *Options, prior *TestSet, upto int) (*TestSet, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	n := len(faults)
	ts := &TestSet{}
	start := 0
	if prior != nil {
		var err error
		start, err = checkResumePrefix(n, prior.Results, func(i int) string { return faults[i].String() })
		if err != nil {
			return nil, err
		}
		if err := countTests(prior.Results, len(prior.Tests)); err != nil {
			return nil, err
		}
		ts.Tests = append(ts.Tests, prior.Tests...)
		ts.Results = append(ts.Results, prior.Results...)
	}
	upto = clampUpto(upto, start, n)
	tb := guidance(c, opt)
	covered := make([]bool, n)
	done := make([]bool, n)
	specTP := make([]*TwoPattern, n)
	specSt := make([]Status, n)
	specErr := make([]error, n)
	batch := genBatch(s.WorkerCount())
	if opt.BacktrackSink != nil {
		batch = 1
	}
	if opt.FaultDropping && len(ts.Tests) > 0 && start < n {
		m := n - start
		err := s.runCtx(ctx, m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
			for k := lo; k < hi; k++ {
				j := start + k
				scanned := len(ts.Tests)
				for ti := range ts.Tests {
					if DetectsTransition(c, faults[j], ts.Tests[ti]) {
						covered[j] = true
						scanned = ti + 1
						break
					}
				}
				ws.Items++
				ws.Pairs += int64(scanned)
			}
		})
		if err != nil {
			return ts, err
		}
	}
	for i := start; i < upto; i++ {
		f := faults[i]
		if err := ctx.Err(); err != nil {
			return ts, err
		}
		if covered[i] {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Detected})
			continue
		}
		if !done[i] {
			s.speculate(ctx, i, batch, covered, done, func(j int) {
				specErr[j] = protect(func() error {
					specTP[j], specSt[j] = generateTransitionTestWith(c, faults[j], opt, tb)
					return nil
				})
			})
			if !done[i] {
				return ts, ctx.Err()
			}
		}
		tp, st := specTP[i], specSt[i]
		if specErr[i] != nil {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Errored, Err: &ItemError{Index: i, Err: specErr[i]}})
			continue
		}
		res := Result{Fault: f.String(), Status: st}
		if st == Detected {
			res.Test = tp
			ts.Tests = append(ts.Tests, *tp)
			if opt.FaultDropping {
				m := n - i
				// A cancelled drop is caught by the ctx check at the top of
				// the next iteration; the partially updated covered[] only
				// concerns items that check never reaches.
				_ = s.runCtx(ctx, m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
					for k := lo; k < hi; k++ {
						j := i + k
						if !covered[j] && DetectsTransition(c, faults[j], *tp) {
							covered[j] = true
						}
						ws.Pairs++
					}
				})
			}
		}
		ts.Results = append(ts.Results, res)
	}
	if upto < n {
		return ts, ctx.Err()
	}
	cov, err := s.GradeTransitionCtx(ctx, c, faults, ts.Tests)
	if err != nil {
		return ts, err
	}
	ts.Coverage = cov
	return ts, nil
}

// ResumeStuckAtTestsCtx continues a stuck-at generation run from a
// committed prefix (see ResumeOBDTestsCtx for the segment and
// bit-identity contract). Stuck-at Results never carry a Test pointer,
// so the prefix check bounds the test list by the Detected count
// instead of an exact cross-check.
func (s *Scheduler) ResumeStuckAtTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.StuckAt, opt *Options, prior *StuckAtTestSet, upto int) (*StuckAtTestSet, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	n := len(faults)
	ts := &StuckAtTestSet{}
	start := 0
	if prior != nil {
		var err error
		start, err = checkResumePrefix(n, prior.Results, func(i int) string { return faults[i].String() })
		if err != nil {
			return nil, err
		}
		detected := 0
		for i := range prior.Results {
			if prior.Results[i].Status == Detected {
				detected++
			}
		}
		if len(prior.Tests) > detected {
			return nil, &ResumeMismatchError{Index: -1,
				Reason: fmt.Sprintf("prior has %d tests but only %d detected results", len(prior.Tests), detected)}
		}
		ts.Tests = append(ts.Tests, prior.Tests...)
		ts.Results = append(ts.Results, prior.Results...)
	}
	upto = clampUpto(upto, start, n)
	tb := guidance(c, opt)
	covered := make([]bool, n)
	done := make([]bool, n)
	specP := make([]Pattern, n)
	specSt := make([]Status, n)
	specErr := make([]error, n)
	batch := genBatch(s.WorkerCount())
	if opt.BacktrackSink != nil {
		batch = 1
	}
	if opt.FaultDropping && len(ts.Tests) > 0 && start < n {
		m := n - start
		err := s.runCtx(ctx, m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
			for k := lo; k < hi; k++ {
				j := start + k
				scanned := len(ts.Tests)
				for ti := range ts.Tests {
					if DetectsStuckAt(c, faults[j], ts.Tests[ti]) {
						covered[j] = true
						scanned = ti + 1
						break
					}
				}
				ws.Items++
				ws.Pairs += int64(scanned)
			}
		})
		if err != nil {
			return ts, err
		}
	}
	for i := start; i < upto; i++ {
		f := faults[i]
		if err := ctx.Err(); err != nil {
			return ts, err
		}
		if covered[i] {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Detected})
			continue
		}
		if !done[i] {
			s.speculate(ctx, i, batch, covered, done, func(j int) {
				specErr[j] = protect(func() error {
					specP[j], specSt[j] = generateStuckAtTestWith(c, faults[j], opt, tb)
					return nil
				})
			})
			if !done[i] {
				return ts, ctx.Err()
			}
		}
		p, st := specP[i], specSt[i]
		if specErr[i] != nil {
			ts.Results = append(ts.Results, Result{Fault: f.String(), Status: Errored, Err: &ItemError{Index: i, Err: specErr[i]}})
			continue
		}
		res := Result{Fault: f.String(), Status: st}
		if st == Detected {
			ts.Tests = append(ts.Tests, p)
			if opt.FaultDropping {
				m := n - i
				// Same contract as the transition drop above: cancellation
				// is re-checked before the next item commits.
				_ = s.runCtx(ctx, m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
					for k := lo; k < hi; k++ {
						j := i + k
						if !covered[j] && DetectsStuckAt(c, faults[j], p) {
							covered[j] = true
						}
						ws.Pairs++
					}
				})
			}
		}
		ts.Results = append(ts.Results, res)
	}
	if upto < n {
		return ts, ctx.Err()
	}
	cov, err := s.GradeStuckAtCtx(ctx, c, faults, ts.Tests)
	if err != nil {
		return ts, err
	}
	ts.Coverage = cov
	return ts, nil
}
