package atpg

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// segmentPlans yields checkpoint boundary layouts to exercise: single
// jump, halves, every-k strides down to single-fault steps.
func segmentPlans(n int) [][]int {
	plans := [][]int{{n}}
	if n > 1 {
		plans = append(plans, []int{n / 2, n})
	}
	for _, k := range []int{1, 3} {
		var plan []int
		for b := k; b < n; b += k {
			plan = append(plan, b)
		}
		plans = append(plans, append(plan, n))
	}
	return plans
}

// TestResumeOBDEquivalence: chaining ResumeOBDTestsCtx over any
// checkpoint boundaries must reproduce the single-shot generation run
// bit-identically — Tests, Results and Coverage — for any worker count
// and with pruning on or off. This is the property the durable job
// runtime's crash recovery rests on.
func TestResumeOBDEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		for _, prune := range []bool{false, true} {
			opt := DefaultOptions()
			opt.Prune = prune
			want := must(NewScheduler(1).GenerateOBDTests(c, faults, opt))
			for _, w := range []int{1, 2, 8} {
				s := NewScheduler(w)
				for _, plan := range segmentPlans(len(faults)) {
					var ts *TestSet
					for _, upto := range plan {
						var err error
						ts, err = s.ResumeOBDTestsCtx(context.Background(), c, faults, opt, ts, upto)
						if err != nil {
							t.Fatalf("seed %d workers %d prune %v: %v", seed, w, prune, err)
						}
					}
					if !reflect.DeepEqual(ts, want) {
						t.Fatalf("seed %d workers %d prune %v plan %v: resumed OBD run diverged", seed, w, prune, plan)
					}
				}
			}
		}
	}
}

// TestResumeTransitionEquivalence: same property for the transition
// generator.
func TestResumeTransitionEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults := fault.TransitionUniverse(c)
		want := must(NewScheduler(1).GenerateTransitionTests(c, faults, nil))
		for _, w := range []int{1, 2, 8} {
			s := NewScheduler(w)
			for _, plan := range segmentPlans(len(faults)) {
				var ts *TestSet
				for _, upto := range plan {
					var err error
					ts, err = s.ResumeTransitionTestsCtx(context.Background(), c, faults, nil, ts, upto)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
				}
				if !reflect.DeepEqual(ts, want) {
					t.Fatalf("seed %d workers %d plan %v: resumed transition run diverged", seed, w, plan)
				}
			}
		}
	}
}

// TestResumeStuckAtEquivalence: same property for the stuck-at
// generator.
func TestResumeStuckAtEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults := fault.StuckAtUniverse(c)
		want := must(NewScheduler(1).GenerateStuckAtTests(c, faults, nil))
		for _, w := range []int{1, 2, 8} {
			s := NewScheduler(w)
			for _, plan := range segmentPlans(len(faults)) {
				var ts *StuckAtTestSet
				for _, upto := range plan {
					var err error
					ts, err = s.ResumeStuckAtTestsCtx(context.Background(), c, faults, nil, ts, upto)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
				}
				if !reflect.DeepEqual(ts, want) {
					t.Fatalf("seed %d workers %d plan %v: resumed stuck-at run diverged", seed, w, plan)
				}
			}
		}
	}
}

// TestResumeFromCancelledRun: a prefix produced by context cancellation
// is itself a valid checkpoint — resuming it finishes the run
// bit-identically.
func TestResumeFromCancelledRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 4, Gates: 12, Primitive: true})
	faults, _ := fault.OBDUniverse(c)
	s := NewScheduler(2)
	want := must(s.GenerateOBDTests(c, faults, nil))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := s.GenerateOBDTestsCtx(ctx, c, faults, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: %v", err)
	}
	got, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, partial, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resume from cancelled prefix diverged")
	}
}

// TestResumeDoesNotMutatePrior: the checkpoint handed in must come back
// untouched so a caller can retry a failed segment.
func TestResumeDoesNotMutatePrior(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 4, Gates: 10, Primitive: true})
	faults, _ := fault.OBDUniverse(c)
	s := NewScheduler(2)
	prior, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, nil, len(faults)/2)
	if err != nil {
		t.Fatal(err)
	}
	snap := &TestSet{
		Tests:   append([]TwoPattern(nil), prior.Tests...),
		Results: append([]Result(nil), prior.Results...),
	}
	if _, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, prior, -1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prior.Tests, snap.Tests) || !reflect.DeepEqual(prior.Results, snap.Results) {
		t.Fatal("resume mutated the prior checkpoint")
	}
}

// TestResumeMismatchRejected: a checkpoint from a different fault list
// (or an internally inconsistent one) must be refused with a typed
// *ResumeMismatchError, never silently resumed.
func TestResumeMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 4, Gates: 10, Primitive: true})
	faults, _ := fault.OBDUniverse(c)
	s := NewScheduler(2)
	good, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, nil, len(faults)/2)
	if err != nil {
		t.Fatal(err)
	}
	var rme *ResumeMismatchError

	tooLong := &TestSet{Results: make([]Result, len(faults)+1)}
	if _, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, tooLong, -1); !errors.As(err, &rme) {
		t.Fatalf("oversized prior: %v, want *ResumeMismatchError", err)
	}

	renamed := &TestSet{
		Tests:   append([]TwoPattern(nil), good.Tests...),
		Results: append([]Result(nil), good.Results...),
	}
	renamed.Results[0].Fault = "not-a-fault"
	if _, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, renamed, -1); !errors.As(err, &rme) {
		t.Fatalf("renamed fault: %v, want *ResumeMismatchError", err)
	}
	if rme.Index != 0 {
		t.Fatalf("mismatch index = %d, want 0", rme.Index)
	}

	extraTests := &TestSet{
		Tests:   append(append([]TwoPattern(nil), good.Tests...), TwoPattern{}),
		Results: append([]Result(nil), good.Results...),
	}
	if _, err := s.ResumeOBDTestsCtx(context.Background(), c, faults, nil, extraTests, -1); !errors.As(err, &rme) {
		t.Fatalf("inconsistent test count: %v, want *ResumeMismatchError", err)
	}
}
