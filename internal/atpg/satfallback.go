package atpg

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// The SAT fallback (Options.SATFallback) closes PODEM's completeness
// gap: a backtrack-limited search can return Aborted, but the exact
// prover in internal/netcheck decides the same question outright —
// frame-by-frame SAT over every excitation pair. Each abort handed over
// comes back as a validated test, a proven-untestable verdict, or (only
// when the solver's own conflict budget runs out too) the original
// Aborted. The fallback never overrides a Detected or Untestable PODEM
// verdict, so enabling it can only improve accuracy.

// SATStats counts what the fallback did during one run. Aborts always
// equals Detected + Untestable + Undecided afterwards.
type SATStats struct {
	Aborts     int // PODEM aborts handed to the exact prover
	Detected   int // resolved: witness validated and committed as a test
	Untestable int // resolved: proven untestable with a checkable proof
	Undecided  int // solver conflict budget exhausted; verdict stays Aborted
}

// satResolveOBD runs the exact prover on one PODEM-aborted fault. The
// returned status is Detected (with a simulator-validated two-pattern),
// Untestable, or Aborted when the prover's budget ran out as well.
func satResolveOBD(c *logic.Circuit, f fault.OBD, opt *Options) (*TwoPattern, Status) {
	if opt.SATStats != nil {
		opt.SATStats.Aborts++
	}
	//obdcheck:allow paniccontract — the encoder's DFF panic is unreachable: GenerateOBDTest(s) return Errored on DFF-bearing circuits before any fallback runs
	ev := netcheck.ProveOBDExactBudget(c, f, netcheck.DefaultExactBudget)
	switch {
	case ev.Testable:
		tp := &TwoPattern{V1: Pattern(ev.Witness.V1), V2: Pattern(ev.Witness.V2)}
		// The witness is complete by construction; the replay is a
		// belt-and-braces check so a prover bug can never commit a test
		// the simulator disagrees with.
		if DetectsOBD(c, f, *tp) {
			if opt.SATStats != nil {
				opt.SATStats.Detected++
			}
			return tp, Detected
		}
		if opt.SATStats != nil {
			opt.SATStats.Undecided++
		}
		return nil, Aborted
	case ev.Aborted:
		if opt.SATStats != nil {
			opt.SATStats.Undecided++
		}
		return nil, Aborted
	default:
		if opt.SATStats != nil {
			opt.SATStats.Untestable++
		}
		return nil, Untestable
	}
}
