package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// abortingSetup builds a random primitive circuit plus options strangled
// enough (1 backtrack) that PODEM aborts on a real share of the
// universe.
func abortingSetup(seed int64) (*logic.Circuit, []fault.OBD, Options) {
	rng := rand.New(rand.NewSource(seed))
	c := logic.RandomCircuit(rng, logic.RandomOptions{
		Inputs:    4 + rng.Intn(3),
		Gates:     12 + rng.Intn(10),
		Primitive: true,
	})
	faults, _ := fault.OBDUniverse(c)
	opt := *DefaultOptions()
	opt.MaxBacktracks = 1
	opt.FaultDropping = false
	return c, faults, opt
}

// TestSATFallbackResolvesAborts pins the fallback contract on batch
// runs: versus a plain run the only status drift is Aborted →
// Detected/Untestable, every committed fallback test is simulator
// -validated, and the stats decompose exactly.
func TestSATFallbackResolvesAborts(t *testing.T) {
	resolved := 0
	for _, seed := range []int64{3, 5, 9, 21} {
		c, faults, opt := abortingSetup(seed)
		plain, err := NewScheduler(1).GenerateOBDTests(c, faults, &opt)
		if err != nil {
			t.Fatalf("seed %d plain: %v", seed, err)
		}
		fb := opt
		fb.SATFallback = true
		stats := &SATStats{}
		fb.SATStats = stats
		got, err := NewScheduler(1).GenerateOBDTests(c, faults, &fb)
		if err != nil {
			t.Fatalf("seed %d fallback: %v", seed, err)
		}
		if stats.Aborts != stats.Detected+stats.Untestable+stats.Undecided {
			t.Fatalf("seed %d: stats do not decompose: %+v", seed, stats)
		}
		for i := range plain.Results {
			ps, gs := plain.Results[i].Status, got.Results[i].Status
			if ps == gs {
				continue
			}
			if ps != Aborted {
				t.Errorf("seed %d: %s drifted %v → %v (only aborts may move)", seed, faults[i], ps, gs)
				continue
			}
			if gs != Detected && gs != Untestable {
				t.Errorf("seed %d: %s abort resolved to %v", seed, faults[i], gs)
				continue
			}
			resolved++
			if gs == Detected {
				if got.Results[i].Test == nil {
					t.Errorf("seed %d: %s resolved Detected without a test", seed, faults[i])
				} else if !DetectsOBD(c, faults[i], *got.Results[i].Test) {
					t.Errorf("seed %d: %s fallback test fails simulation", seed, faults[i])
				}
			}
		}
		// Any abort left must be accounted as Undecided.
		left := 0
		for i := range got.Results {
			if got.Results[i].Status == Aborted {
				left++
			}
		}
		if left != stats.Undecided {
			t.Errorf("seed %d: %d aborts remain but stats say %d undecided", seed, left, stats.Undecided)
		}
	}
	if resolved == 0 {
		t.Fatal("fallback never resolved an abort; the property was not exercised")
	}
	t.Logf("fallback resolved %d aborts across the sweep", resolved)
}

// TestSATFallbackWorkerInvariance checks the scheduler contract
// survives the fallback: Tests, Results and SATStats must be
// bit-identical for every worker count, with fault dropping both off
// and on.
func TestSATFallbackWorkerInvariance(t *testing.T) {
	for _, dropping := range []bool{false, true} {
		c, faults, opt := abortingSetup(7)
		opt.FaultDropping = dropping
		opt.SATFallback = true
		var refTS *TestSet
		var refStats *SATStats
		for _, w := range sweepWorkers {
			o := opt
			stats := &SATStats{}
			o.SATStats = stats
			ts, err := NewScheduler(w).GenerateOBDTests(c, faults, &o)
			if err != nil {
				t.Fatalf("dropping=%v workers=%d: %v", dropping, w, err)
			}
			if refTS == nil {
				refTS, refStats = ts, stats
				continue
			}
			if !reflect.DeepEqual(refTS.Tests, ts.Tests) {
				t.Errorf("dropping=%v workers=%d: Tests differ from workers=%d", dropping, w, sweepWorkers[0])
			}
			if !reflect.DeepEqual(refTS.Results, ts.Results) {
				t.Errorf("dropping=%v workers=%d: Results differ from workers=%d", dropping, w, sweepWorkers[0])
			}
			if !reflect.DeepEqual(refStats, stats) {
				t.Errorf("dropping=%v workers=%d: stats %+v differ from %+v", dropping, w, stats, refStats)
			}
		}
	}
}

// TestSATFallbackSingleFault checks GenerateOBDTest parity: the
// single-fault entry point must resolve its aborts the same way the
// batch commit loop does.
func TestSATFallbackSingleFault(t *testing.T) {
	c, faults, opt := abortingSetup(5)
	fb := opt
	fb.SATFallback = true
	stats := &SATStats{}
	fb.SATStats = stats
	exercised := false
	for _, f := range faults {
		_, st := GenerateOBDTest(c, f, &opt)
		if st != Aborted {
			continue
		}
		exercised = true
		tp2, st2 := GenerateOBDTest(c, f, &fb)
		switch st2 {
		case Detected:
			if tp2 == nil || !DetectsOBD(c, f, *tp2) {
				t.Errorf("%s: fallback test invalid", f)
			}
		case Untestable, Aborted:
			// proven untestable, or honestly undecided
		default:
			t.Errorf("%s: fallback returned %v", f, st2)
		}
	}
	if !exercised {
		t.Skip("no aborts at this seed; covered by the batch test")
	}
	if stats.Aborts == 0 {
		t.Fatal("stats never incremented on the single-fault path")
	}
}
