package atpg

import (
	"math/rand"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file models the paper's Section 5 design-for-testability remark:
// two-pattern OBD tests need two specific vectors on consecutive cycles,
// which scan infrastructure constrains. Enhanced scan (hold-scan cells)
// can apply arbitrary vector pairs — that is the unconstrained generator
// in this package — while standard scan with launch-on-shift (LOS) can
// only launch a 1-bit shift of the first vector, shrinking the reachable
// pair space and therefore the OBD coverage.

// ShiftPattern returns the launch-on-shift successor of v1: the scan chain
// (the circuit's inputs in declaration order) shifts by one position and
// scanIn enters at the head. v1 must be complete.
func ShiftPattern(c *logic.Circuit, v1 Pattern, scanIn logic.Value) Pattern {
	v2 := make(Pattern, len(c.Inputs))
	prev := scanIn
	for _, in := range c.Inputs {
		v2[in] = prev
		prev = v1[in]
	}
	return v2
}

// LOSOptions configures the launch-on-shift generator.
//
// Deprecated: use seq.Options with seq.GenerateTests(s, faults, seq.LOS,
// opt), which applies the shift to the scan chain only (state bits)
// instead of treating every circuit input as part of the chain. This
// flat-chain generator remains for circuits without an explicit scan
// model.
type LOSOptions struct {
	// SampleBudget bounds the random search used beyond ExhaustiveMaxIn
	// inputs.
	SampleBudget int
	// ExhaustiveMaxIn is the input count up to which the (v1, scanIn)
	// space is enumerated exhaustively.
	ExhaustiveMaxIn int
	// Seed drives the random sampling.
	Seed int64
}

// DefaultLOSOptions returns the settings used by the experiments.
func DefaultLOSOptions() *LOSOptions {
	return &LOSOptions{SampleBudget: 4096, ExhaustiveMaxIn: 14, Seed: 1}
}

// GenerateLOSTest searches for a launch-on-shift pair detecting the OBD
// fault. Status Untestable is exact when the search was exhaustive and a
// best-effort verdict otherwise.
func GenerateLOSTest(c *logic.Circuit, f fault.OBD, opt *LOSOptions) (*TwoPattern, Status) {
	if opt == nil {
		opt = DefaultLOSOptions()
	}
	if c.HasDFF() {
		return nil, Errored // sequential circuit: use seq.Generate with seq.LOS
	}
	n := len(c.Inputs)
	try := func(v1 Pattern, scanIn logic.Value) *TwoPattern {
		tp := TwoPattern{V1: v1, V2: ShiftPattern(c, v1, scanIn)}
		if DetectsOBD(c, f, tp) {
			return &tp
		}
		return nil
	}
	if n <= opt.ExhaustiveMaxIn {
		for m := 0; m < 1<<n; m++ {
			v1 := make(Pattern, n)
			for i, in := range c.Inputs {
				v1[in] = logic.FromBool(m&(1<<i) != 0)
			}
			for _, s := range []logic.Value{logic.Zero, logic.One} {
				if tp := try(v1, s); tp != nil {
					return tp, Detected
				}
			}
		}
		return nil, Untestable
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for k := 0; k < opt.SampleBudget; k++ {
		v1 := make(Pattern, n)
		for _, in := range c.Inputs {
			v1[in] = logic.FromBool(rng.Intn(2) == 1)
		}
		if tp := try(v1, logic.FromBool(rng.Intn(2) == 1)); tp != nil {
			return tp, Detected
		}
	}
	return nil, Aborted
}

// LOSResult summarizes a batch launch-on-shift run.
type LOSResult struct {
	Tests    []TwoPattern
	Coverage Coverage
	Exact    bool // the untestable verdicts are exhaustive
}

// GenerateLOSTests runs the LOS generator over a fault list with fault
// dropping across the default scheduler's pool; the final set is graded
// with the (now X-aware) bit-parallel engine, so dropped-fault bookkeeping
// and the returned Coverage come from the same verdicts.
func GenerateLOSTests(c *logic.Circuit, faults []fault.OBD, opt *LOSOptions) (*LOSResult, error) {
	return DefaultScheduler().GenerateLOSTests(c, faults, opt)
}
