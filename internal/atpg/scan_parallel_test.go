package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

func TestShiftPattern(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b c\noutput y\nnand g1 n1 a b\nnand g2 y n1 c\n")
	v1 := Pattern{"a": logic.One, "b": logic.Zero, "c": logic.One}
	v2 := ShiftPattern(c, v1, logic.Zero)
	// Chain order a, b, c: scan-in enters a; a's old value moves to b; etc.
	if v2["a"] != logic.Zero || v2["b"] != logic.One || v2["c"] != logic.Zero {
		t.Fatalf("shifted pattern %v", v2)
	}
}

func TestLOSRespectsShiftConstraint(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	faults, _ := fault.OBDUniverse(c)
	for _, f := range faults {
		tp, st := GenerateLOSTest(c, f, nil)
		if st != Detected {
			continue
		}
		want := ShiftPattern(c, tp.V1, tp.V2[c.Inputs[0]])
		for _, in := range c.Inputs {
			if tp.V2[in] != want[in] {
				t.Fatalf("%s: LOS pair %s violates shift constraint", f, tp.StringFor(c))
			}
		}
		if !DetectsOBD(c, f, *tp) {
			t.Fatalf("%s: LOS pair does not detect", f)
		}
	}
}

// TestLOSWeakerThanEnhancedScan: for the 2-input NAND, LOS cannot reach
// the PMOS@b test (11,10): shifting (1,1) gives (s,1), never (1,0) — so
// enhanced scan covers strictly more.
func TestLOSWeakerThanEnhancedScan(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	faults, _ := fault.OBDUniverse(c)
	los := must(GenerateLOSTests(c, faults, nil))
	if !los.Exact {
		t.Fatal("search should be exhaustive at 2 inputs")
	}
	enh := must(GenerateOBDTests(c, faults, nil))
	if los.Coverage.Detected >= enh.Coverage.Detected {
		t.Fatalf("LOS %v should be strictly below enhanced scan %v", los.Coverage, enh.Coverage)
	}
	// The specific gap: (11,10) requires v2 = shift(v1, s) with v2=(1,0),
	// i.e. v1 starts with b-position value 0... verify PMOS@b is missed.
	missed := false
	for _, u := range los.Coverage.Undetected {
		if u == "g1/PMOS@b" {
			missed = true
		}
	}
	if !missed {
		t.Fatalf("expected g1/PMOS@b missed, undetected=%v", los.Coverage.Undetected)
	}
}

func TestGradeOBDParallelMatchesOnFullAdderTests(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	seq := GradeOBD(c, faults, ts.Tests)
	par := must(GradeOBDParallel(c, faults, ts.Tests))
	if seq.Detected != par.Detected || seq.Total != par.Total {
		t.Fatalf("parallel %v != sequential %v", par, seq)
	}
}

// TestQuickParallelMatchesScalar: the 64-way fault simulator agrees with
// DetectsOBD lane by lane on random circuits and random pairs — including
// PARTIAL patterns, whose unassigned/X inputs must be X-masked rather than
// coerced to 0.
func TestQuickParallelMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(15), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		mk := func() Pattern {
			p := make(Pattern, len(c.Inputs))
			for _, in := range c.Inputs {
				switch rng.Intn(8) {
				case 0:
					// leave unassigned (evaluates as X)
				case 1:
					p[in] = logic.X
				default:
					p[in] = logic.FromBool(rng.Intn(2) == 1)
				}
			}
			return p
		}
		nPairs := 1 + rng.Intn(64)
		tests := make([]TwoPattern, nPairs)
		v1s := make([]Pattern, nPairs)
		v2s := make([]Pattern, nPairs)
		for i := range tests {
			tests[i] = TwoPattern{V1: mk(), V2: mk()}
			v1s[i], v2s[i] = tests[i].V1, tests[i].V2
		}
		v1w, v2w := PackPatterns(c, v1s), PackPatterns(c, v2s)
		for k := 0; k < 3; k++ {
			fl := faults[rng.Intn(len(faults))]
			mask := DetectMaskOBD(c, fl, v1w, v2w)
			lane := rng.Intn(nPairs)
			want := DetectsOBD(c, fl, tests[lane])
			got := mask&(1<<uint(lane)) != 0
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLOSSubsetOfUnconstrained: any LOS-detected fault is detectable
// by the unconstrained generator too.
func TestQuickLOSSubsetOfUnconstrained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(3), Gates: 1 + rng.Intn(8), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		fl := faults[rng.Intn(len(faults))]
		tp, st := GenerateLOSTest(c, fl, nil)
		if st != Detected {
			return true
		}
		if !DetectsOBD(c, fl, *tp) {
			return false
		}
		_, st2 := GenerateOBDTest(c, fl, nil)
		return st2 == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGradeOBDSequential(b *testing.B) {
	c, err := logic.ParseString(xorNandSrc)
	if err != nil {
		b.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GradeOBD(c, faults, ts.Tests)
	}
}

func BenchmarkGradeOBDParallel(b *testing.B) {
	c, err := logic.ParseString(xorNandSrc)
	if err != nil {
		b.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		must(GradeOBDParallel(c, faults, ts.Tests))
	}
}
