package atpg

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// This file is the goroutine-parallel driver layer over the scalar and
// 64-way bit-parallel fault-simulation substrates. A Scheduler shards
// fault lists (and the speculative test-generation work) across a worker
// pool with a determinism contract: every method returns results
// bit-identical to the single-worker sequential path regardless of worker
// count. The contract holds because
//
//   - shards are index ranges pulled from an atomic cursor, and each
//     worker writes only the result slots of its own range;
//   - merges walk the slots in input order, so Coverage.Undetected, test
//     lists and Results keep the sequential ordering;
//   - the generation loops commit strictly in fault order: tests are
//     produced speculatively in parallel, but a speculated test whose
//     fault turns out to be drop-covered by an earlier committed test is
//     discarded — exactly the test the sequential loop never generates.
//
// The layer is additionally hardened for long-running campaigns:
//
//   - every batch entry point reports misuse (an invalid circuit, an
//     oversized enumeration) as a typed error instead of panicking;
//   - the Ctx variants observe context cancellation between work chunks
//     and return promptly with a deterministic prefix of the results;
//   - ForEachCtx recovers worker panics into per-item *PanicError values,
//     so one poisoned item cannot abort the run or perturb the other
//     items' result slots.

// WorkerStats aggregates one worker's share of the work.
type WorkerStats struct {
	Worker int           // worker index within the pool
	Items  int64         // faults graded / generation attempts
	Pairs  int64         // pattern(-pair) simulations, bit-parallel lanes counted individually
	Busy   time.Duration // wall time spent inside work chunks
}

// String implements fmt.Stringer.
func (ws WorkerStats) String() string {
	return fmt.Sprintf("worker %d: %d items, %d pair-sims, busy %s",
		ws.Worker, ws.Items, ws.Pairs, ws.Busy.Round(time.Microsecond))
}

// Scheduler is a deterministic multicore fault-simulation and ATPG
// driver. The zero value is ready to use and sizes the pool to
// runtime.GOMAXPROCS(0). A Scheduler may be reused across calls; the
// methods themselves must not be invoked concurrently with each other
// when CollectStats is set (the counters are merged under a mutex, but
// interleaved runs would blur attribution).
type Scheduler struct {
	Workers      int  // pool size; <=0 means runtime.GOMAXPROCS(0)
	ChunkSize    int  // faults per work unit; <=0 picks a per-call grain
	CollectStats bool // accumulate per-worker counters (see Stats)

	mu    sync.Mutex
	stats []WorkerStats
}

// NewScheduler returns a scheduler with the given worker count
// (0 = all cores).
func NewScheduler(workers int) *Scheduler { return &Scheduler{Workers: workers} }

var (
	defaultMu    sync.Mutex
	defaultSched = &Scheduler{}
)

// DefaultScheduler returns the process-wide scheduler used by the
// package-level grading and generation functions.
func DefaultScheduler() *Scheduler {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultSched
}

// SetDefaultScheduler replaces the process-wide scheduler (nil restores a
// GOMAXPROCS-sized default). Call it before starting work, not during.
func SetDefaultScheduler(s *Scheduler) {
	if s == nil {
		s = &Scheduler{}
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultSched = s
}

// SetDefaultWorkers resizes the process-wide scheduler's pool
// (0 restores GOMAXPROCS sizing).
func SetDefaultWorkers(n int) { SetDefaultScheduler(&Scheduler{Workers: n}) }

// WorkerCount returns the effective pool size.
func (s *Scheduler) WorkerCount() int {
	if s == nil || s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// Stats returns a copy of the accumulated per-worker counters (empty
// unless CollectStats is set).
func (s *Scheduler) Stats() []WorkerStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]WorkerStats(nil), s.stats...)
}

// ResetStats clears the accumulated counters.
func (s *Scheduler) ResetStats() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = nil
}

func (s *Scheduler) record(wk int, ws WorkerStats) {
	if s == nil || !s.CollectStats {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.stats) <= wk {
		s.stats = append(s.stats, WorkerStats{Worker: len(s.stats)})
	}
	s.stats[wk].Items += ws.Items
	s.stats[wk].Pairs += ws.Pairs
	s.stats[wk].Busy += ws.Busy
}

// gradeGrain picks a chunk size amortizing cursor contention without
// starving the tail of the pool.
func gradeGrain(n, workers int) int {
	g := n / (8 * workers)
	if g < 1 {
		g = 1
	}
	if g > 256 {
		g = 256
	}
	return g
}

// run partitions [0,n) into chunks pulled from an atomic cursor by the
// pool. fn must write only to per-index state within [lo,hi); under that
// discipline the overall result is independent of scheduling order.
func (s *Scheduler) run(n, grain int, fn func(lo, hi int, ws *WorkerStats)) {
	s.runCtx(context.Background(), n, grain, fn) //nolint:errcheck // Background is never cancelled
}

// runCtx is run with cooperative cancellation: workers stop pulling new
// chunks once ctx is done (a chunk in flight still completes, so every
// slot is either fully written or untouched). It returns ctx's error when
// the run was cut short, else nil.
func (s *Scheduler) runCtx(ctx context.Context, n, grain int, fn func(lo, hi int, ws *WorkerStats)) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	w := s.WorkerCount()
	if w > n {
		w = n
	}
	chunk := grain
	if s != nil && s.ChunkSize > 0 {
		chunk = s.ChunkSize
	}
	if chunk < 1 {
		chunk = 1
	}
	if w <= 1 {
		var ws WorkerStats
		start := time.Now() //obdcheck:allow timenow — Busy is a stats counter, never a result
		if done == nil {
			fn(0, n, &ws)
		} else {
			for lo := 0; lo < n; lo += chunk {
				if ctx.Err() != nil {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi, &ws)
			}
		}
		ws.Busy += time.Since(start)
		s.record(0, ws)
		return ctx.Err()
	}
	var next int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var ws WorkerStats
			for {
				select {
				case <-done:
					s.record(wk, ws)
					return
				default:
				}
				hi := int(atomic.AddInt64(&next, int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					break
				}
				if hi > n {
					hi = n
				}
				start := time.Now() //obdcheck:allow timenow — Busy is a stats counter, never a result
				fn(lo, hi, &ws)
				ws.Busy += time.Since(start)
			}
			s.record(wk, ws)
		}(wk)
	}
	wg.Wait()
	return ctx.Err()
}

// protect runs fn, converting a panic into a *PanicError so a poisoned
// work item is confined to its own result slot.
func protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// ForEach runs fn(i) for every i in [0,n) across the pool. fn must only
// write to per-index state; under that discipline the result is
// deterministic for any worker count. It is the unhardened fast path:
// fn must not panic and the run cannot be cancelled (see ForEachCtx).
func (s *Scheduler) ForEach(n int, fn func(i int)) {
	s.run(n, gradeGrain(n, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			fn(i)
			ws.Items++
		}
	})
}

// ForEachCtx is the hardened ForEach: fn may return an error or panic
// (recovered into a *PanicError) without aborting the run or perturbing
// the other items, and cancelling ctx stops the run promptly. The report
// lists per-item failures in index order; after cancellation, the
// completed items' side effects are bit-identical to the same items of
// an uncancelled run.
func (s *Scheduler) ForEachCtx(ctx context.Context, n int, fn func(i int) error) *RunReport {
	rep := &RunReport{N: n, Done: make([]bool, n)}
	errs := make([]error, n)
	rep.Err = s.runCtx(ctx, n, gradeGrain(n, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			i := i
			errs[i] = protect(func() error { return fn(i) })
			rep.Done[i] = true
			ws.Items++
		}
	})
	for i, err := range errs {
		if err != nil {
			rep.Errors = append(rep.Errors, &ItemError{Index: i, Err: err})
		}
	}
	return rep
}

// ensureValid levelizes the circuit up-front so the workers never race on
// the lazy validation cache. An invalid circuit is reported as a typed
// *InvalidCircuitError instead of the panic earlier revisions threw, and
// a DFF-bearing circuit as a *SequentialCircuitError: the combinational
// engines would treat flip-flops as transparent, silently grading a
// different machine.
func ensureValid(c *logic.Circuit) error {
	if err := c.Validate(); err != nil {
		return &InvalidCircuitError{Err: err}
	}
	if ffs := c.DFFs(); len(ffs) > 0 {
		return &SequentialCircuitError{DFFs: len(ffs)}
	}
	return nil
}

// mergeCoverage folds per-fault verdict slots into a Coverage, keeping
// the fault-list order of Undetected.
func mergeCoverage(det []bool, name func(i int) string) Coverage {
	cov := Coverage{Total: len(det)}
	for i, d := range det {
		if d {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, name(i))
		}
	}
	return cov
}

// GradeOBD fault-simulates a test set against an OBD fault list with the
// levelized event-driven 64-way engine sharded across the pool. The
// Coverage — including the order of Undetected — is identical to the
// scalar GradeOBD for any worker count. On complete test sets,
// collapsed-equivalent fault sites are graded once through a class
// representative and the verdict fanned back out (an exact, not
// approximate, sharing — see netcheck.CollapseOBDComplete).
func (s *Scheduler) GradeOBD(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) (Coverage, error) {
	return s.gradeOBD(context.Background(), c, faults, tests, true)
}

// GradeOBDCtx is GradeOBD with cooperative cancellation: when ctx is
// cancelled before the grade completes, ctx's error is returned and the
// Coverage is zero — a partial grade would silently understate coverage,
// so none is reported. A completed grade is bit-identical to GradeOBD.
func (s *Scheduler) GradeOBDCtx(ctx context.Context, c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) (Coverage, error) {
	return s.gradeOBD(ctx, c, faults, tests, true)
}

// gradeOBD is the shared GradeOBD implementation. collapse gates the
// fault-collapsing fast path (the equivalence tests exercise both arms);
// it only ever engages on complete test sets, where class equivalence is
// exact per pair. Work sharding is per class, and every class writes only
// its own members' verdict slots, so the determinism contract holds for
// any worker count. Items counts every fault settled; Pairs counts the
// pair simulations actually run (collapsing makes the two diverge).
func (s *Scheduler) gradeOBD(ctx context.Context, c *logic.Circuit, faults []fault.OBD, tests []TwoPattern, collapse bool) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(faults) == 0 {
		return Coverage{Total: 0}, nil
	}
	pg := NewPairGrader(c, tests)
	classes := [][]int(nil)
	if collapse && pg.Complete() && len(faults) > 1 {
		classes = netcheck.CollapseOBDComplete(c, faults)
	} else {
		classes = make([][]int, len(faults))
		for i := range faults {
			classes[i] = []int{i}
		}
	}
	det := make([]bool, len(faults))
	err := s.runCtx(ctx, len(classes), gradeGrain(len(classes), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for ci := lo; ci < hi; ci++ {
			cl := classes[ci]
			idx := pg.FirstDetecting(faults[cl[0]])
			hit := idx >= 0
			for _, fi := range cl {
				det[fi] = hit
			}
			ws.Items += int64(len(cl))
			if hit {
				ws.Pairs += int64(idx + 1)
			} else {
				ws.Pairs += int64(len(tests))
			}
		}
	})
	if err != nil {
		return Coverage{}, err
	}
	return mergeCoverage(det, func(i int) string { return faults[i].String() }), nil
}

// GradeTransition fault-simulates a test set against transition faults,
// sharding the fault list across the pool.
func (s *Scheduler) GradeTransition(c *logic.Circuit, faults []fault.Transition, tests []TwoPattern) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(faults) == 0 {
		return Coverage{Total: 0}, nil
	}
	det := make([]bool, len(faults))
	s.run(len(faults), gradeGrain(len(faults), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			scanned := len(tests)
			for ti, tp := range tests {
				if DetectsTransition(c, faults[i], tp) {
					det[i] = true
					scanned = ti + 1
					break
				}
			}
			ws.Items++
			ws.Pairs += int64(scanned)
		}
	})
	return mergeCoverage(det, func(i int) string { return faults[i].String() }), nil
}

// GradeTransitionCtx is GradeTransition with cooperative cancellation
// (see GradeOBDCtx for the no-partial-coverage contract).
func (s *Scheduler) GradeTransitionCtx(ctx context.Context, c *logic.Circuit, faults []fault.Transition, tests []TwoPattern) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(faults) == 0 {
		return Coverage{Total: 0}, nil
	}
	det := make([]bool, len(faults))
	err := s.runCtx(ctx, len(faults), gradeGrain(len(faults), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			scanned := len(tests)
			for ti, tp := range tests {
				if DetectsTransition(c, faults[i], tp) {
					det[i] = true
					scanned = ti + 1
					break
				}
			}
			ws.Items++
			ws.Pairs += int64(scanned)
		}
	})
	if err != nil {
		return Coverage{}, err
	}
	return mergeCoverage(det, func(i int) string { return faults[i].String() }), nil
}

// GradeStuckAt fault-simulates single patterns against stuck-at faults,
// sharding the fault list across the pool.
func (s *Scheduler) GradeStuckAt(c *logic.Circuit, faults []fault.StuckAt, tests []Pattern) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(faults) == 0 {
		return Coverage{Total: 0}, nil
	}
	det := make([]bool, len(faults))
	s.run(len(faults), gradeGrain(len(faults), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			scanned := len(tests)
			for ti, p := range tests {
				if DetectsStuckAt(c, faults[i], p) {
					det[i] = true
					scanned = ti + 1
					break
				}
			}
			ws.Items++
			ws.Pairs += int64(scanned)
		}
	})
	return mergeCoverage(det, func(i int) string { return faults[i].String() }), nil
}

// GradeStuckAtCtx is GradeStuckAt with cooperative cancellation
// (see GradeOBDCtx for the no-partial-coverage contract).
func (s *Scheduler) GradeStuckAtCtx(ctx context.Context, c *logic.Circuit, faults []fault.StuckAt, tests []Pattern) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(faults) == 0 {
		return Coverage{Total: 0}, nil
	}
	det := make([]bool, len(faults))
	err := s.runCtx(ctx, len(faults), gradeGrain(len(faults), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			scanned := len(tests)
			for ti, p := range tests {
				if DetectsStuckAt(c, faults[i], p) {
					det[i] = true
					scanned = ti + 1
					break
				}
			}
			ws.Items++
			ws.Pairs += int64(scanned)
		}
	})
	if err != nil {
		return Coverage{}, err
	}
	return mergeCoverage(det, func(i int) string { return faults[i].String() }), nil
}

// GradeOBDMulti fault-simulates a test set against multi-defect
// ensembles, sharding the ensemble list across the pool.
func (s *Scheduler) GradeOBDMulti(c *logic.Circuit, ensembles [][]fault.OBD, tests []TwoPattern) (Coverage, error) {
	if err := ensureValid(c); err != nil {
		return Coverage{}, err
	}
	if len(ensembles) == 0 {
		return Coverage{Total: 0}, nil
	}
	det := make([]bool, len(ensembles))
	s.run(len(ensembles), gradeGrain(len(ensembles), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			scanned := len(tests)
			for ti, tp := range tests {
				if DetectsOBDMulti(c, ensembles[i], tp) {
					det[i] = true
					scanned = ti + 1
					break
				}
			}
			ws.Items++
			ws.Pairs += int64(scanned)
		}
	})
	return mergeCoverage(det, func(i int) string { return ensembleName(ensembles[i]) }), nil
}

// DetectionCounts returns, per fault, how many pairs of the test set
// detect it, sharding the fault list across the pool. Counts come from
// the event-driven engine's per-lane masks (popcounts), which the
// property tests pin to the scalar DetectsOBD verdicts.
func (s *Scheduler) DetectionCounts(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) ([]int, error) {
	out := make([]int, len(faults))
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	if len(faults) == 0 {
		return out, nil
	}
	pg := NewPairGrader(c, tests)
	s.run(len(faults), gradeGrain(len(faults), s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for i := lo; i < hi; i++ {
			out[i] = pg.CountDetecting(faults[i])
			ws.Items++
			ws.Pairs += int64(len(tests))
		}
	})
	return out, nil
}

// exhaustiveInputLimit bounds the 2^n first-frame enumeration of
// AnalyzeExhaustive.
const exhaustiveInputLimit = 16

// AnalyzeExhaustive runs the full-enumeration analysis sharded over the
// first-frame vectors; the merged Pairs/DetectedBy keep the sequential
// (m1, m2) enumeration order. Circuits with more than 16 primary inputs
// are rejected with a typed *InputLimitError.
func (s *Scheduler) AnalyzeExhaustive(c *logic.Circuit, faults []fault.OBD) (*ExhaustiveOBDAnalysis, error) {
	if len(c.Inputs) > exhaustiveInputLimit {
		return nil, &InputLimitError{Inputs: len(c.Inputs), Limit: exhaustiveInputLimit}
	}
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	n := 1 << len(c.Inputs)
	mk := func(m int) Pattern {
		p := make(Pattern, len(c.Inputs))
		for i, in := range c.Inputs {
			p[in] = logic.FromBool(m&(1<<i) != 0)
		}
		return p
	}
	a := &ExhaustiveOBDAnalysis{Circuit: c, Faults: faults, Testable: make([]bool, len(faults))}
	type slot struct {
		pairs    []TwoPattern
		det      [][]int
		testable []bool // nil when this shard detected nothing
	}
	slots := make([]slot, n)
	s.run(n, 1, func(lo, hi int, ws *WorkerStats) {
		for m1 := lo; m1 < hi; m1++ {
			sl := slot{}
			for m2 := 0; m2 < n; m2++ {
				if m1 == m2 {
					continue
				}
				tp := TwoPattern{V1: mk(m1), V2: mk(m2)}
				var det []int
				for fi, f := range faults {
					if DetectsOBD(c, f, tp) {
						det = append(det, fi)
						if sl.testable == nil {
							sl.testable = make([]bool, len(faults))
						}
						sl.testable[fi] = true
					}
				}
				sl.pairs = append(sl.pairs, tp)
				sl.det = append(sl.det, det)
				ws.Pairs += int64(len(faults))
			}
			slots[m1] = sl
			ws.Items++
		}
	})
	for m1 := 0; m1 < n; m1++ {
		a.Pairs = append(a.Pairs, slots[m1].pairs...)
		a.DetectedBy = append(a.DetectedBy, slots[m1].det...)
		if t := slots[m1].testable; t != nil {
			for fi, b := range t {
				if b {
					a.Testable[fi] = true
				}
			}
		}
	}
	return a, nil
}

// speculate fills the generation slots of the first up-to-batch uncovered,
// not-yet-generated faults at or after index i, farming the work out to
// the pool. gen(j) must write only slot j. Cancelling ctx stops the
// speculation early; slots whose chunks never ran keep done[j] == false.
func (s *Scheduler) speculate(ctx context.Context, i, batch int, covered, done []bool, gen func(j int)) {
	idxs := make([]int, 0, batch)
	for j := i; j < len(covered) && len(idxs) < batch; j++ {
		if !covered[j] && !done[j] {
			idxs = append(idxs, j)
		}
	}
	s.runCtx(ctx, len(idxs), 1, func(lo, hi int, ws *WorkerStats) { //nolint:errcheck // commit loop re-checks ctx
		for k := lo; k < hi; k++ {
			gen(idxs[k])
			done[idxs[k]] = true
			ws.Items++
		}
	})
}

// genBatch returns the speculation depth for a pool: one fault ahead per
// slot of headroom, and none at all for a single worker (which degrades
// to the plain sequential loop).
func genBatch(workers int) int {
	if workers <= 1 {
		return 1
	}
	return 2 * workers
}

// dropOBD marks every fault at or after index from that the new test
// detects, sharding the drop simulation across the pool. The single pair
// is packed once and each fault graded with the event-driven engine, so
// a drop pass costs two good-machine evaluations plus one cone
// propagation per fault instead of per-fault full sweeps.
func (s *Scheduler) dropOBD(c *logic.Circuit, faults []fault.OBD, covered []bool, from int, tp TwoPattern) {
	pg := NewPairGrader(c, []TwoPattern{tp})
	m := len(faults) - from
	s.run(m, gradeGrain(m, s.WorkerCount()), func(lo, hi int, ws *WorkerStats) {
		for k := lo; k < hi; k++ {
			j := from + k
			if !covered[j] && pg.Detects(faults[j]) {
				covered[j] = true
			}
			ws.Pairs++
		}
	})
}

// GenerateOBDTests runs the OBD generator over a fault list with optional
// fault dropping, speculatively generating ahead across the pool. Tests,
// Results and Coverage are bit-identical to the sequential loop for any
// worker count. When Options.BacktrackSink is set the loop stays
// sequential so the backtrack census matches the single-threaded search.
func (s *Scheduler) GenerateOBDTests(c *logic.Circuit, faults []fault.OBD, opt *Options) (*TestSet, error) {
	return s.GenerateOBDTestsCtx(context.Background(), c, faults, opt)
}

// GenerateOBDTestsCtx is GenerateOBDTests with cooperative cancellation:
// when ctx is cancelled the commit loop stops and the partial TestSet is
// returned together with ctx's error. The committed Results are a
// deterministic prefix of the uncancelled run (the partial set's Coverage
// is left zero — grading a cut-short test list would be misleading). A
// per-fault generator panic is confined to that fault's Result (Status
// Errored, Err carrying the *PanicError) without perturbing the others.
// The commit loop lives in ResumeOBDTestsCtx (resume.go); this is the
// from-scratch, run-to-completion entry point.
func (s *Scheduler) GenerateOBDTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.OBD, opt *Options) (*TestSet, error) {
	return s.ResumeOBDTestsCtx(ctx, c, faults, opt, nil, len(faults))
}

// GenerateTransitionTests runs the transition-fault generator over a
// fault list with optional fault dropping, speculating across the pool
// under the same determinism contract as GenerateOBDTests.
func (s *Scheduler) GenerateTransitionTests(c *logic.Circuit, faults []fault.Transition, opt *Options) (*TestSet, error) {
	return s.GenerateTransitionTestsCtx(context.Background(), c, faults, opt)
}

// GenerateTransitionTestsCtx is GenerateTransitionTests with cooperative
// cancellation and per-fault panic confinement (see GenerateOBDTestsCtx).
// The commit loop lives in ResumeTransitionTestsCtx (resume.go).
func (s *Scheduler) GenerateTransitionTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.Transition, opt *Options) (*TestSet, error) {
	return s.ResumeTransitionTestsCtx(ctx, c, faults, opt, nil, len(faults))
}

// GenerateStuckAtTests runs the stuck-at generator over a fault list with
// optional fault dropping, speculating across the pool under the same
// determinism contract as GenerateOBDTests.
func (s *Scheduler) GenerateStuckAtTests(c *logic.Circuit, faults []fault.StuckAt, opt *Options) (*StuckAtTestSet, error) {
	return s.GenerateStuckAtTestsCtx(context.Background(), c, faults, opt)
}

// GenerateStuckAtTestsCtx is GenerateStuckAtTests with cooperative
// cancellation and per-fault panic confinement (see GenerateOBDTestsCtx).
// The commit loop lives in ResumeStuckAtTestsCtx (resume.go).
func (s *Scheduler) GenerateStuckAtTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.StuckAt, opt *Options) (*StuckAtTestSet, error) {
	return s.ResumeStuckAtTestsCtx(ctx, c, faults, opt, nil, len(faults))
}

// GenerateLOSTests runs the launch-on-shift generator over a fault list
// with fault dropping, speculating across the pool, and grades the final
// set with the bit-parallel engine. Deterministic for any worker count.
func (s *Scheduler) GenerateLOSTests(c *logic.Circuit, faults []fault.OBD, opt *LOSOptions) (*LOSResult, error) {
	return s.GenerateLOSTestsCtx(context.Background(), c, faults, opt)
}

// GenerateLOSTestsCtx is GenerateLOSTests with cooperative cancellation
// (see GenerateOBDTestsCtx for the partial-result contract).
func (s *Scheduler) GenerateLOSTestsCtx(ctx context.Context, c *logic.Circuit, faults []fault.OBD, opt *LOSOptions) (*LOSResult, error) {
	if opt == nil {
		opt = DefaultLOSOptions()
	}
	if err := ensureValid(c); err != nil {
		return nil, err
	}
	n := len(faults)
	out := &LOSResult{Exact: len(c.Inputs) <= opt.ExhaustiveMaxIn}
	covered := make([]bool, n)
	done := make([]bool, n)
	specTP := make([]*TwoPattern, n)
	specSt := make([]Status, n)
	batch := genBatch(s.WorkerCount())
	for i := range faults {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if covered[i] {
			continue
		}
		if !done[i] {
			s.speculate(ctx, i, batch, covered, done, func(j int) {
				specTP[j], specSt[j] = GenerateLOSTest(c, faults[j], opt)
			})
			if !done[i] {
				return out, ctx.Err()
			}
		}
		if specSt[i] != Detected {
			continue
		}
		tp := *specTP[i]
		out.Tests = append(out.Tests, tp)
		s.dropOBD(c, faults, covered, i, tp)
	}
	cov, err := s.GradeOBDCtx(ctx, c, faults, out.Tests)
	if err != nil {
		return out, err
	}
	out.Coverage = cov
	return out, nil
}
