package atpg

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// TestForEachCtxPanicConfined: a panicking work item becomes a typed
// per-item error; every other item still runs and the pool survives.
func TestForEachCtxPanicConfined(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		s := NewScheduler(w)
		var ran atomic.Int64
		rep := s.ForEachCtx(context.Background(), 64, func(i int) error {
			ran.Add(1)
			if i == 17 {
				panic("poisoned item")
			}
			if i == 40 {
				return errors.New("plain failure")
			}
			return nil
		})
		if got := ran.Load(); got != 64 {
			t.Fatalf("workers=%d: only %d/64 items ran", w, got)
		}
		if !rep.Complete() {
			t.Fatalf("workers=%d: run not complete: %+v", w, rep)
		}
		if len(rep.Errors) != 2 {
			t.Fatalf("workers=%d: %d errors, want 2", w, len(rep.Errors))
		}
		if rep.Errors[0].Index != 17 || rep.Errors[1].Index != 40 {
			t.Fatalf("workers=%d: error indices %d,%d want 17,40",
				w, rep.Errors[0].Index, rep.Errors[1].Index)
		}
		var pe *PanicError
		if !errors.As(rep.ErrAt(17), &pe) {
			t.Fatalf("workers=%d: item 17 error %v is not a *PanicError", w, rep.ErrAt(17))
		}
		if pe.Value != "poisoned item" {
			t.Fatalf("workers=%d: panic value %v", w, pe.Value)
		}
		if !strings.Contains(pe.Stack, "goroutine") {
			t.Fatalf("workers=%d: panic stack not captured", w)
		}
		if rep.ErrAt(40) == nil || rep.ErrAt(0) != nil {
			t.Fatalf("workers=%d: ErrAt misattributed", w)
		}
		if rep.AsError() == nil {
			t.Fatalf("workers=%d: AsError nil despite item errors", w)
		}
	}
}

// TestForEachCtxCancelPrefix: a cancelled run stops promptly and the
// completed slots form a prefix bit-identical to the uncancelled run.
func TestForEachCtxCancelPrefix(t *testing.T) {
	const n = 200
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{1, 2, 4} {
		s := NewScheduler(w)
		ctx, cancel := context.WithCancel(context.Background())
		got := make([]int, n)
		rep := s.ForEachCtx(ctx, n, func(i int) error {
			if i == 50 {
				cancel()
			}
			got[i] = i * i
			return nil
		})
		if rep.Err == nil || !errors.Is(rep.Err, context.Canceled) {
			t.Fatalf("workers=%d: Err = %v, want context.Canceled", w, rep.Err)
		}
		if rep.Complete() {
			t.Fatalf("workers=%d: cancelled run reported complete", w)
		}
		k := rep.Prefix()
		if k >= n {
			t.Fatalf("workers=%d: cancellation did not cut the run (prefix %d)", w, k)
		}
		if !reflect.DeepEqual(got[:k], want[:k]) {
			t.Fatalf("workers=%d: prefix [0,%d) diverges from uncancelled run", w, k)
		}
		for i, d := range rep.Done {
			if !d && got[i] != 0 {
				t.Fatalf("workers=%d: item %d wrote a result but is not Done", w, i)
			}
		}
		cancel()
	}
}

// TestForEachCtxPreCancelled: an already-dead context does no work at all.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		var ran atomic.Int64
		rep := NewScheduler(w).ForEachCtx(ctx, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(rep.Err, context.Canceled) {
			t.Fatalf("workers=%d: Err = %v", w, rep.Err)
		}
		// The chunked loop may admit at most a chunk that was already
		// claimed; with a pre-cancelled context nothing should start.
		if got := ran.Load(); got != 0 {
			t.Fatalf("workers=%d: %d items ran under a dead context", w, got)
		}
	}
}

// TestGenerateOBDTestsCtxCancelPrefix: cancelling generation mid-run
// returns promptly with a Results slice that is a deterministic prefix of
// the uncancelled run's Results.
func TestGenerateOBDTestsCtxCancelPrefix(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	full := must(NewScheduler(1).GenerateOBDTests(c, faults, nil))

	for _, w := range []int{1, 2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ts, err := NewScheduler(w).GenerateOBDTestsCtx(ctx, c, faults, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if ts == nil {
			t.Fatalf("workers=%d: nil TestSet on cancellation", w)
		}
		if len(ts.Results) > len(full.Results) {
			t.Fatalf("workers=%d: cancelled run produced MORE results", w)
		}
		for i := range ts.Results {
			if !reflect.DeepEqual(ts.Results[i], full.Results[i]) {
				t.Fatalf("workers=%d: result %d diverges from uncancelled run:\n  got %+v\n want %+v",
					w, i, ts.Results[i], full.Results[i])
			}
		}
	}
}

// TestGenerateOBDTestsCtxDeadline: a deadline context makes generation
// return within a bounded wall time instead of running to completion.
func TestGenerateOBDTestsCtxDeadline(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline definitely pass
	_, err := NewScheduler(4).GenerateOBDTestsCtx(ctx, c, faults, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBatchEntryPointsRejectInvalidCircuit: the former mustValid panic is
// now a typed *InvalidCircuitError from every batch entry point.
func TestBatchEntryPointsRejectInvalidCircuit(t *testing.T) {
	bad := &logic.Circuit{Name: "dangling"}
	bad.Inputs = []string{"a"}
	bad.Outputs = []string{"nosuch"}

	var ice *InvalidCircuitError
	if _, err := GradeOBDParallel(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("GradeOBDParallel: %v is not *InvalidCircuitError", err)
	}
	if _, err := GradeTransition(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("GradeTransition: %v is not *InvalidCircuitError", err)
	}
	if _, err := GradeStuckAt(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("GradeStuckAt: %v is not *InvalidCircuitError", err)
	}
	if _, err := GradeOBDMulti(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("GradeOBDMulti: %v is not *InvalidCircuitError", err)
	}
	if _, err := AnalyzeExhaustive(bad, nil); !errors.As(err, &ice) {
		t.Fatalf("AnalyzeExhaustive: %v is not *InvalidCircuitError", err)
	}
	if _, err := GenerateOBDTests(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("GenerateOBDTests: %v is not *InvalidCircuitError", err)
	}
	if _, err := DetectionCounts(bad, nil, nil); !errors.As(err, &ice) {
		t.Fatalf("DetectionCounts: %v is not *InvalidCircuitError", err)
	}
	if ice.Unwrap() == nil {
		t.Fatal("InvalidCircuitError does not wrap the validation cause")
	}
}

// TestAnalyzeExhaustiveInputLimit: >16 inputs is a typed error, not a
// panic, and carries the offending sizes.
func TestAnalyzeExhaustiveInputLimit(t *testing.T) {
	c := logic.RippleCarryAdder(9) // 2*9+1 = 19 primary inputs
	faults, _ := fault.OBDUniverse(c)
	_, err := AnalyzeExhaustive(c, faults)
	var ile *InputLimitError
	if !errors.As(err, &ile) {
		t.Fatalf("err %v is not *InputLimitError", err)
	}
	if ile.Limit != 16 || ile.Inputs <= 16 {
		t.Fatalf("limit error carries %d/%d", ile.Inputs, ile.Limit)
	}
}

// TestRunReportPrefixSemantics exercises the report accessors directly.
func TestRunReportPrefixSemantics(t *testing.T) {
	r := &RunReport{N: 5, Done: []bool{true, true, false, true, false}}
	if r.Prefix() != 2 {
		t.Fatalf("prefix %d, want 2", r.Prefix())
	}
	if r.Complete() {
		t.Fatal("incomplete report claims completion")
	}
	if r.AsError() != nil {
		t.Fatal("AsError should be nil without Err/Errors")
	}
	r.Err = context.Canceled
	r.Errors = []*ItemError{{Index: 1, Err: errors.New("boom")}}
	if !errors.Is(r.AsError(), context.Canceled) {
		t.Fatal("AsError loses the context error")
	}
	if r.FirstErr() != r.Errors[0] {
		t.Fatal("FirstErr should prefer the item error")
	}
}

// TestGradeCtxMatchesPlain: the Ctx graders reproduce the plain graders
// bit-for-bit when uncancelled, for several worker counts.
func TestGradeCtxMatchesPlain(t *testing.T) {
	c := cells.FullAdderSumLogic()
	obdFaults, _ := fault.OBDUniverse(c)
	trFaults := fault.TransitionUniverse(c)
	saFaults := fault.StuckAtUniverse(c)
	ts, err := GenerateOBDTests(c, obdFaults, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pats []Pattern
	for _, tp := range ts.Tests {
		pats = append(pats, tp.V1, tp.V2)
	}
	ctx := context.Background()
	for _, w := range []int{1, 2, 8} {
		s := NewScheduler(w)
		wantO, err := s.GradeOBD(c, obdFaults, ts.Tests)
		if err != nil {
			t.Fatal(err)
		}
		gotO, err := s.GradeOBDCtx(ctx, c, obdFaults, ts.Tests)
		if err != nil || !reflect.DeepEqual(gotO, wantO) {
			t.Fatalf("workers=%d: GradeOBDCtx %v (%v), want %v", w, gotO, err, wantO)
		}
		wantT, err := s.GradeTransition(c, trFaults, ts.Tests)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := s.GradeTransitionCtx(ctx, c, trFaults, ts.Tests)
		if err != nil || !reflect.DeepEqual(gotT, wantT) {
			t.Fatalf("workers=%d: GradeTransitionCtx %v (%v), want %v", w, gotT, err, wantT)
		}
		wantS, err := s.GradeStuckAt(c, saFaults, pats)
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := s.GradeStuckAtCtx(ctx, c, saFaults, pats)
		if err != nil || !reflect.DeepEqual(gotS, wantS) {
			t.Fatalf("workers=%d: GradeStuckAtCtx %v (%v), want %v", w, gotS, err, wantS)
		}
	}
}

// TestGradeCtxCancelled: a cancelled grade reports the context error and
// no (misleading partial) coverage.
func TestGradeCtxCancelled(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	ts, err := GenerateOBDTests(c, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cov, err := NewScheduler(2).GradeOBDCtx(ctx, c, faults, ts.Tests)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cov.Total != 0 || cov.Detected != 0 || cov.Undetected != nil {
		t.Fatalf("cancelled grade leaked partial coverage: %+v", cov)
	}
	// Invalid circuits still surface the typed error, not the ctx error.
	bad := logic.New("bad")
	if err := bad.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	bad.AddOutput("undriven")
	var ice *InvalidCircuitError
	if _, err := NewScheduler(2).GradeOBDCtx(context.Background(), bad, faults, nil); !errors.As(err, &ice) {
		t.Fatalf("err = %v, want *InvalidCircuitError", err)
	}
}
