package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// sweepWorkers are the pool sizes every equivalence sweep exercises.
var sweepWorkers = []int{1, 2, 8}

// randomTests builds a test set whose patterns are randomly complete,
// partial or X-bearing, so the sweeps exercise the X-masking paths too.
func randomTests(rng *rand.Rand, c *logic.Circuit, n int) []TwoPattern {
	mk := func() Pattern {
		p := make(Pattern, len(c.Inputs))
		for _, in := range c.Inputs {
			switch rng.Intn(10) {
			case 0:
				// unassigned
			case 1:
				p[in] = logic.X
			default:
				p[in] = logic.FromBool(rng.Intn(2) == 1)
			}
		}
		return p
	}
	out := make([]TwoPattern, n)
	for i := range out {
		out[i] = TwoPattern{V1: mk(), V2: mk()}
	}
	return out
}

// randomFaultSubset samples a random non-empty subsequence of the universe.
func randomFaultSubset(rng *rand.Rand, faults []fault.OBD) []fault.OBD {
	var out []fault.OBD
	for _, f := range faults {
		if rng.Intn(4) > 0 {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = faults
	}
	return out
}

// TestWorkerSweepGradeOBD: for ≥20 random circuits × random fault lists ×
// random (partially-X) test sets, every worker count yields a Coverage
// DeepEqual to the scalar reference — Undetected ordering included.
func TestWorkerSweepGradeOBD(t *testing.T) {
	circuits := 0
	for seed := int64(0); circuits < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(14), Primitive: true})
		universe, _ := fault.OBDUniverse(c)
		if len(universe) == 0 {
			continue
		}
		circuits++
		faults := randomFaultSubset(rng, universe)
		tests := randomTests(rng, c, 1+rng.Intn(150))
		want := GradeOBD(c, faults, tests)
		for _, w := range sweepWorkers {
			got := must(NewScheduler(w).GradeOBD(c, faults, tests))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: %+v != scalar %+v", seed, w, got, want)
			}
		}
		// An adversarial chunk size must not change the result either.
		s := NewScheduler(3)
		s.ChunkSize = 2
		if got := must(s.GradeOBD(c, faults, tests)); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d chunked: %+v != scalar %+v", seed, got, want)
		}
	}
}

// TestWorkerSweepGradeTransition checks the transition grader against an
// inline scalar loop across worker counts.
func TestWorkerSweepGradeTransition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults := fault.TransitionUniverse(c)
		tests := randomTests(rng, c, 1+rng.Intn(60))
		want := Coverage{Total: len(faults)}
		for _, f := range faults {
			hit := false
			for _, tp := range tests {
				if DetectsTransition(c, f, tp) {
					hit = true
					break
				}
			}
			if hit {
				want.Detected++
			} else {
				want.Undetected = append(want.Undetected, f.String())
			}
		}
		for _, w := range sweepWorkers {
			if got := must(NewScheduler(w).GradeTransition(c, faults, tests)); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: %+v != scalar %+v", seed, w, got, want)
			}
		}
	}
}

// TestWorkerSweepGradeStuckAt checks the stuck-at grader against an inline
// scalar loop across worker counts.
func TestWorkerSweepGradeStuckAt(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults := fault.StuckAtUniverse(c)
		tps := randomTests(rng, c, 1+rng.Intn(40))
		tests := make([]Pattern, len(tps))
		for i, tp := range tps {
			tests[i] = tp.V1
		}
		want := Coverage{Total: len(faults)}
		for _, f := range faults {
			hit := false
			for _, p := range tests {
				if DetectsStuckAt(c, f, p) {
					hit = true
					break
				}
			}
			if hit {
				want.Detected++
			} else {
				want.Undetected = append(want.Undetected, f.String())
			}
		}
		for _, w := range sweepWorkers {
			if got := must(NewScheduler(w).GradeStuckAt(c, faults, tests)); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: %+v != scalar %+v", seed, w, got, want)
			}
		}
	}
}

// TestWorkerSweepGeneration: the speculative generation loops must produce
// bit-identical TestSets (Tests, Results and Coverage) for any worker
// count — the fault-dropping commit order is part of the contract.
func TestWorkerSweepGeneration(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		obdFaults, _ := fault.OBDUniverse(c)
		want := must(NewScheduler(1).GenerateOBDTests(c, obdFaults, nil))
		for _, w := range sweepWorkers[1:] {
			got := must(NewScheduler(w).GenerateOBDTests(c, obdFaults, nil))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: OBD generation diverged", seed, w)
			}
		}
		trWant := must(NewScheduler(1).GenerateTransitionTests(c, fault.TransitionUniverse(c), nil))
		saWant := must(NewScheduler(1).GenerateStuckAtTests(c, fault.StuckAtUniverse(c), nil))
		losWant := must(NewScheduler(1).GenerateLOSTests(c, obdFaults, nil))
		for _, w := range sweepWorkers[1:] {
			if got := must(NewScheduler(w).GenerateTransitionTests(c, fault.TransitionUniverse(c), nil)); !reflect.DeepEqual(got, trWant) {
				t.Fatalf("seed %d workers %d: transition generation diverged", seed, w)
			}
			if got := must(NewScheduler(w).GenerateStuckAtTests(c, fault.StuckAtUniverse(c), nil)); !reflect.DeepEqual(got, saWant) {
				t.Fatalf("seed %d workers %d: stuck-at generation diverged", seed, w)
			}
			if got := must(NewScheduler(w).GenerateLOSTests(c, obdFaults, nil)); !reflect.DeepEqual(got, losWant) {
				t.Fatalf("seed %d workers %d: LOS generation diverged", seed, w)
			}
		}
	}
}

// TestWorkerSweepAnalyzeExhaustive: the sharded enumeration keeps the
// sequential (m1, m2) pair order.
func TestWorkerSweepAnalyzeExhaustive(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(3), Gates: 2 + rng.Intn(8), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		want := must(NewScheduler(1).AnalyzeExhaustive(c, faults))
		for _, w := range sweepWorkers[1:] {
			got := must(NewScheduler(w).AnalyzeExhaustive(c, faults))
			if !reflect.DeepEqual(got.Pairs, want.Pairs) ||
				!reflect.DeepEqual(got.DetectedBy, want.DetectedBy) ||
				!reflect.DeepEqual(got.Testable, want.Testable) {
				t.Fatalf("seed %d workers %d: exhaustive analysis diverged", seed, w)
			}
		}
	}
}

// TestWorkerSweepDetectionCounts: per-fault counts are slot-stable.
func TestWorkerSweepDetectionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 4, Gates: 12, Primitive: true})
	faults, _ := fault.OBDUniverse(c)
	tests := randomTests(rng, c, 80)
	want := must(NewScheduler(1).DetectionCounts(c, faults, tests))
	for _, w := range sweepWorkers[1:] {
		if got := must(NewScheduler(w).DetectionCounts(c, faults, tests)); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: counts diverged", w)
		}
	}
}

// TestSchedulerStats: the optional per-worker counters account for every
// fault exactly once.
func TestSchedulerStats(t *testing.T) {
	c := mustCircuit(t, xorNandSrc)
	faults, _ := fault.OBDUniverse(c)
	ts := must(GenerateOBDTests(c, faults, nil))
	s := NewScheduler(4)
	s.CollectStats = true
	s.GradeOBD(c, faults, ts.Tests)
	var items int64
	for _, ws := range s.Stats() {
		items += ws.Items
		if ws.Busy < 0 {
			t.Fatalf("negative busy time in %s", ws)
		}
	}
	if items != int64(len(faults)) {
		t.Fatalf("stats account for %d items, want %d", items, len(faults))
	}
	s.ResetStats()
	if len(s.Stats()) != 0 {
		t.Fatal("ResetStats left counters behind")
	}
}

// TestSchedulerForEachCoversAllIndices: the exported per-index primitive
// visits every slot exactly once for any worker count.
func TestSchedulerForEachCoversAllIndices(t *testing.T) {
	for _, w := range sweepWorkers {
		n := 1000
		hits := make([]int32, n)
		NewScheduler(w).ForEach(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers %d: index %d visited %d times", w, i, h)
			}
		}
	}
}

// must unwraps a (value, error) return in tests, panicking on error; the
// panic fails the calling test with the full error in the log.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
