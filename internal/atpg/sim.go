package atpg

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// localValues extracts a gate's input values from a full net-value map.
func localValues(g *logic.Gate, vals map[string]logic.Value) []logic.Value {
	out := make([]logic.Value, len(g.Inputs))
	for i, in := range g.Inputs {
		out[i] = vals[in]
	}
	return out
}

// DetectsOBD reports whether the ordered vector pair detects the OBD fault
// under the gross-delay assumption: if the local excitation condition
// holds, the defective gate's output fails to complete its transition by
// capture time, so the faulty second-frame value at the fault site is the
// first-frame value; the fault is detected if that difference reaches a
// primary output.
func DetectsOBD(c *logic.Circuit, f fault.OBD, tp TwoPattern) bool {
	g1 := c.Eval(tp.V1, nil)
	g2 := c.Eval(tp.V2, nil)
	lv1 := localValues(f.Gate, g1)
	lv2 := localValues(f.Gate, g2)
	for _, v := range lv1 {
		if !v.IsKnown() {
			return false
		}
	}
	for _, v := range lv2 {
		if !v.IsKnown() {
			return false
		}
	}
	if !f.Excited(lv1, lv2) {
		return false
	}
	site := f.Gate.Output
	faulty := c.Eval(tp.V2, map[string]logic.Value{site: g1[site]})
	for _, po := range c.Outputs {
		a, b := g2[po], faulty[po]
		if a.IsKnown() && b.IsKnown() && a != b {
			return true
		}
	}
	return false
}

// DetectsEM grades an EM fault with the shared series-parallel excitation
// rule.
func DetectsEM(c *logic.Circuit, f fault.EM, tp TwoPattern) bool {
	return DetectsOBD(c, fault.OBD(f), tp)
}

// DetectsTransition reports whether the vector pair detects a classical
// transition fault (slow-to-rise/fall at a net) under the gross-delay
// assumption: the net must make the slow transition between the frames,
// and holding the old value in frame 2 must be observable at an output.
func DetectsTransition(c *logic.Circuit, f fault.Transition, tp TwoPattern) bool {
	g1 := c.Eval(tp.V1, nil)
	g2 := c.Eval(tp.V2, nil)
	var from, to logic.Value
	if f.Rising {
		from, to = logic.Zero, logic.One
	} else {
		from, to = logic.One, logic.Zero
	}
	if g1[f.Net] != from || g2[f.Net] != to {
		return false
	}
	faulty := c.Eval(tp.V2, map[string]logic.Value{f.Net: from})
	for _, po := range c.Outputs {
		a, b := g2[po], faulty[po]
		if a.IsKnown() && b.IsKnown() && a != b {
			return true
		}
	}
	return false
}

// DetectsStuckAt reports whether the single pattern detects the stuck-at
// fault.
func DetectsStuckAt(c *logic.Circuit, f fault.StuckAt, p Pattern) bool {
	good := c.Eval(p, nil)
	if v := good[f.Net]; !v.IsKnown() || v == f.V {
		return false
	}
	faulty := c.Eval(p, map[string]logic.Value{f.Net: f.V})
	for _, po := range c.Outputs {
		a, b := good[po], faulty[po]
		if a.IsKnown() && b.IsKnown() && a != b {
			return true
		}
	}
	return false
}

// GradeOBD fault-simulates a test set against an OBD fault list with the
// scalar reference simulator, one fault and one pair at a time. It is the
// semantic baseline the bit-parallel multicore path (Scheduler.GradeOBD /
// GradeOBDParallel) is property-tested against.
func GradeOBD(c *logic.Circuit, faults []fault.OBD, tests []TwoPattern) Coverage {
	cov := Coverage{Total: len(faults)}
	for _, f := range faults {
		hit := false
		for _, tp := range tests {
			if DetectsOBD(c, f, tp) {
				hit = true
				break
			}
		}
		if hit {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f.String())
		}
	}
	return cov
}

// GradeTransition fault-simulates a test set against transition faults,
// sharding the fault list across the default scheduler's worker pool
// (results are identical to the sequential scan for any worker count).
func GradeTransition(c *logic.Circuit, faults []fault.Transition, tests []TwoPattern) (Coverage, error) {
	return DefaultScheduler().GradeTransition(c, faults, tests)
}

// GradeStuckAt fault-simulates single patterns against stuck-at faults,
// sharding the fault list across the default scheduler's worker pool.
func GradeStuckAt(c *logic.Circuit, faults []fault.StuckAt, tests []Pattern) (Coverage, error) {
	return DefaultScheduler().GradeStuckAt(c, faults, tests)
}

// ExhaustiveOBDAnalysis enumerates every ordered pair of distinct complete
// input vectors (the paper's "input transitions") and records which OBD
// faults each pair detects. It requires ≤16 primary inputs.
type ExhaustiveOBDAnalysis struct {
	Circuit    *logic.Circuit
	Faults     []fault.OBD
	Pairs      []TwoPattern
	DetectedBy [][]int // DetectedBy[p] = indices of faults detected by pair p
	Testable   []bool  // Testable[f] = some pair detects fault f
}

// AnalyzeExhaustive runs the full-enumeration analysis used for the
// Section 4.3 full-adder counts, sharded over the default scheduler's
// worker pool (the enumeration order of Pairs/DetectedBy is preserved).
// A circuit with more than 16 primary inputs is rejected with a typed
// *InputLimitError instead of the panic earlier revisions threw.
func AnalyzeExhaustive(c *logic.Circuit, faults []fault.OBD) (*ExhaustiveOBDAnalysis, error) {
	return DefaultScheduler().AnalyzeExhaustive(c, faults)
}

// TestableCount returns the number of faults detectable by at least one
// pair.
func (a *ExhaustiveOBDAnalysis) TestableCount() int {
	n := 0
	for _, t := range a.Testable {
		if t {
			n++
		}
	}
	return n
}

// GreedyCover returns a small pair set covering every testable fault,
// chosen greedily by marginal coverage (ties broken by pair order).
func (a *ExhaustiveOBDAnalysis) GreedyCover() []TwoPattern {
	covered := make([]bool, len(a.Faults))
	need := a.TestableCount()
	var out []TwoPattern
	for need > 0 {
		best, bestGain := -1, 0
		for pi, det := range a.DetectedBy {
			gain := 0
			for _, fi := range det {
				if !covered[fi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break
		}
		for _, fi := range a.DetectedBy[best] {
			if !covered[fi] {
				covered[fi] = true
				need--
			}
		}
		out = append(out, a.Pairs[best])
	}
	return out
}
