// Package atpg implements test pattern generation and fault simulation for
// the fault models in internal/fault: classical single-pattern PODEM for
// stuck-at faults, and two-pattern PODEM for transition and OBD faults.
// For OBD faults the generator enumerates the paper's local excitation
// pairs at the defective gate (Section 4.1), justifies the first pattern,
// and justifies-and-propagates the second — the "similar fashion to
// traditional fault models" road the paper describes in Section 4.2.
package atpg

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/logic"
)

// Pattern is a (possibly partial) primary-input assignment.
type Pattern map[string]logic.Value

// Clone deep-copies the pattern.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Filled returns a copy with every missing/X input of the circuit set to
// fill.
func (p Pattern) Filled(c *logic.Circuit, fill logic.Value) Pattern {
	q := p.Clone()
	for _, in := range c.Inputs {
		if v, ok := q[in]; !ok || v == logic.X {
			q[in] = fill
		}
	}
	return q
}

// KeyFor renders the pattern as a canonical bit string over the circuit's
// input order (X for unassigned).
func (p Pattern) KeyFor(c *logic.Circuit) string {
	var b strings.Builder
	for _, in := range c.Inputs {
		v, ok := p[in]
		if !ok {
			v = logic.X
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// TwoPattern is an ordered vector pair (the two-cycle test the paper's
// Section 5 notes sequential TPG must deliver on consecutive clocks).
type TwoPattern struct {
	V1, V2 Pattern
}

// String renders the pair over the given circuit's input order.
func (tp TwoPattern) StringFor(c *logic.Circuit) string {
	return "(" + tp.V1.KeyFor(c) + "," + tp.V2.KeyFor(c) + ")"
}

// Status classifies a generation attempt for one fault.
type Status int

// Generation outcomes.
const (
	Detected   Status = iota // a test was produced (or the fault was caught by fault dropping)
	Untestable               // search space exhausted without a test
	Aborted                  // backtrack limit hit
	Errored                  // the generator failed on this fault (see Result.Err)
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	case Errored:
		return "errored"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes the generators.
type Options struct {
	MaxBacktracks int         // per-fault PODEM backtrack limit
	FaultDropping bool        // simulate each new test against remaining faults
	Fill          logic.Value // value used to complete don't-care inputs

	// DisableSCOAP turns off the SCOAP testability guidance of the PODEM
	// backtrace and D-frontier selection. Guidance only affects search
	// order (and therefore backtrack counts), never completeness.
	DisableSCOAP bool
	// Prune runs netcheck's static untestability prover over the OBD fault
	// list before PODEM and reports the discharged faults as Untestable
	// without searching. The prover is sound (static-untestable ⊆
	// PODEM-untestable), so detected/untestable verdicts are unchanged;
	// the only possible drift is a fault PODEM would have Aborted on being
	// settled as Untestable — an accuracy improvement. Only OBD generation
	// consults it.
	Prune bool
	// BacktrackSink, when non-nil, accumulates the PODEM backtracks spent
	// by the generator — the observable of the guidance ablation.
	BacktrackSink *int
	// SATFallback hands every PODEM Aborted verdict to netcheck's exact
	// SAT prover, which either produces a validated test, proves the
	// fault untestable, or (budget exhausted) leaves the Aborted verdict
	// standing. Detected/Untestable verdicts never change, so the only
	// possible drift versus a plain run is Aborted → Detected/Untestable.
	// The fallback runs in the sequential commit loop, keeping batch
	// results bit-identical for any worker count.
	SATFallback bool
	// SATStats, when non-nil, accumulates SATFallback counters. It is
	// only ever touched from the sequential commit path (or the
	// single-fault generators), never from worker goroutines.
	SATStats *SATStats
}

// DefaultOptions returns the settings used by the experiments.
func DefaultOptions() *Options {
	return &Options{MaxBacktracks: 20000, FaultDropping: true, Fill: logic.Zero}
}

// Coverage summarizes a grading run.
type Coverage struct {
	Total      int
	Detected   int
	Undetected []string // fault names left undetected
}

// Ratio returns detected/total (1 for an empty universe).
func (c Coverage) Ratio() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.Total)
}

// String implements fmt.Stringer.
func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", c.Detected, c.Total, 100*c.Ratio())
}

// sortedPOs returns the circuit outputs in deterministic order.
func sortedPOs(c *logic.Circuit) []string {
	out := append([]string(nil), c.Outputs...)
	sort.Strings(out)
	return out
}
