package atpg

import (
	"reflect"
	"testing"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// findFault pulls one named fault out of a circuit's OBD universe.
func findFault(t *testing.T, c *logic.Circuit, name string) fault.OBD {
	t.Helper()
	faults, _ := fault.OBDUniverse(c)
	for _, f := range faults {
		if f.String() == name {
			return f
		}
	}
	t.Fatalf("fault %s not in universe", name)
	return fault.OBD{}
}

// TestXMaskRegression is the regression for the silent X→0 coercion:
// PackPatterns used to read unassigned inputs through a plain map lookup,
// turning X into logic 0. For the 2-input NAND with V1=(1,1) and a PARTIAL
// V2 that leaves input a unassigned, the coerced grader saw the pair
// (11,01) and claimed a detection of g1/PMOS@a that the scalar reference
// DetectsOBD — which refuses unknown local values — rejects. The grader
// must now agree with the scalar verdict.
func TestXMaskRegression(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	f := findFault(t, c, "g1/PMOS@a")
	v1 := Pattern{"a": logic.One, "b": logic.One}
	v2 := Pattern{"b": logic.One} // a unassigned: reads as X, NOT 0
	tp := TwoPattern{V1: v1, V2: v2}

	if DetectsOBD(c, f, tp) {
		t.Fatal("scalar reference must reject the partial pair")
	}
	g := NewPairGrader(c, []TwoPattern{tp})
	if g.Detects(f) {
		t.Fatal("bit-parallel grader coerced the unassigned input to 0 and claimed a false detection")
	}

	// Sanity: the COMPLETE pair (11,01) legitimately detects the fault in
	// both engines — the X-masking must not simply kill all detections.
	full := TwoPattern{V1: v1, V2: Pattern{"a": logic.Zero, "b": logic.One}}
	if !DetectsOBD(c, f, full) {
		t.Fatal("scalar reference should detect with the complete pair")
	}
	g2 := NewPairGrader(c, []TwoPattern{full})
	if !g2.Detects(f) {
		t.Fatal("bit-parallel grader should detect with the complete pair")
	}
}

// TestPartialPatternCanStillDetect: a pattern with an X on an input that is
// IRRELEVANT to the fault (touches neither the fault gate's local values
// nor the observing outputs) must still count as a detection — X-masking is
// per-lane and per-net, not a blanket rejection of incomplete patterns.
func TestPartialPatternCanStillDetect(t *testing.T) {
	c := mustCircuit(t, "circuit g\ninput a b c\noutput y z\nnand g1 y a b\ninv g2 z c\n")
	f := findFault(t, c, "g1/PMOS@a")
	// c is unassigned in both frames: X reaches only output z, never y.
	tp := TwoPattern{
		V1: Pattern{"a": logic.One, "b": logic.One},
		V2: Pattern{"a": logic.Zero, "b": logic.One},
	}
	if !DetectsOBD(c, f, tp) {
		t.Fatal("scalar reference should detect despite the unassigned input c")
	}
	g := NewPairGrader(c, []TwoPattern{tp})
	if !g.Detects(f) {
		t.Fatal("bit-parallel grader should detect despite the unassigned input c")
	}
}

// TestLOSCoverageMatchesScalarOnFullAdder: GenerateLOSTests grades its
// final set with the bit-parallel engine; the Coverage must equal a scalar
// regrade of the same tests, Undetected ordering included.
func TestLOSCoverageMatchesScalarOnFullAdder(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	res := must(GenerateLOSTests(c, faults, nil))
	scalar := GradeOBD(c, faults, res.Tests)
	if !reflect.DeepEqual(res.Coverage, scalar) {
		t.Fatalf("LOS coverage %+v != scalar regrade %+v", res.Coverage, scalar)
	}
}
