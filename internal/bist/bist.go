// Package bist implements logic built-in self-test for OBD defects — the
// direction the paper's Section 5 closes on: "the small set of input
// transitions … makes built-in-testing for such defects promising,
// particularly for safety-critical applications". An LFSR applies a
// test-per-clock pattern stream (every pair of consecutive patterns is a
// two-pattern launch), and a MISR compacts the output responses into a
// signature compared against the fault-free golden signature.
package bist

import (
	"context"
	"fmt"
	"sort"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// maximalTaps holds the feedback masks of maximal-length GALOIS LFSRs
// (the mask for width w sets bit t−1 for each 1-based tap position t of
// the standard primitive polynomials, e.g. width 8 uses taps 8,6,5,4).
// The period tests verify every entry reaches 2^w − 1.
var maximalTaps = map[int]uint64{
	2:  0x3,    // 2,1
	3:  0x6,    // 3,2
	4:  0xC,    // 4,3
	5:  0x14,   // 5,3
	6:  0x30,   // 6,5
	7:  0x60,   // 7,6
	8:  0xB8,   // 8,6,5,4
	9:  0x110,  // 9,5
	10: 0x240,  // 10,7
	11: 0x500,  // 11,9
	12: 0x829,  // 12,6,4,1
	13: 0x100D, // 13,4,3,1
	14: 0x2015, // 14,5,3,1
	15: 0x6000, // 15,14
	16: 0xD008, // 16,15,13,4
}

// LFSR is a Galois linear-feedback shift register (right-shifting; the
// tap mask is XORed in when the shifted-out bit is 1).
type LFSR struct {
	width int
	taps  uint64
	state uint64
}

// NewLFSR builds a maximal-length LFSR of the given width (2–16) with a
// non-zero seed (the seed is folded into range).
func NewLFSR(width int, seed uint64) (*LFSR, error) {
	taps, ok := maximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal tap set for width %d", width)
	}
	mask := uint64(1)<<uint(width) - 1
	seed &= mask
	if seed == 0 {
		seed = 1
	}
	return &LFSR{width: width, taps: taps, state: seed}, nil
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Next advances one clock and returns the new state.
func (l *LFSR) Next() uint64 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb == 1 {
		l.state ^= l.taps
	}
	return l.state
}

// Period returns the sequence length until the state repeats (2^w − 1 for
// maximal-length configurations).
func (l *LFSR) Period() int {
	start := l.state
	n := 0
	for {
		l.Next()
		n++
		if l.state == start {
			return n
		}
	}
}

// PatternSequence expands n successive LFSR states into primary-input
// patterns. Input i is driven by state bit (i·spread) mod width: with a
// spread ≥ 2 (a simple phase spreader), consecutive patterns stop being
// shift-images of each other, which matters enormously for OBD coverage —
// consecutive shift-correlated patterns are exactly the launch-on-shift
// constraint that misses input-specific PMOS faults.
func PatternSequence(c *logic.Circuit, l *LFSR, n, spread int) []atpg.Pattern {
	if spread < 1 {
		spread = 1
	}
	out := make([]atpg.Pattern, 0, n)
	for k := 0; k < n; k++ {
		st := l.Next()
		p := make(atpg.Pattern, len(c.Inputs))
		for i, in := range c.Inputs {
			bit := uint((i * spread) % l.width)
			p[in] = logic.FromBool(st&(1<<bit) != 0)
		}
		out = append(out, p)
	}
	return out
}

// MISR is a multiple-input signature register compacting one word of
// primary-output response per clock.
type MISR struct {
	width int
	taps  uint64
	state uint64
	mask  uint64
}

// NewMISR builds a MISR of the given width (2–16).
func NewMISR(width int, seed uint64) (*MISR, error) {
	taps, ok := maximalTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal tap set for width %d", width)
	}
	mask := uint64(1)<<uint(width) - 1
	return &MISR{width: width, taps: taps, state: seed & mask, mask: mask}, nil
}

// Shift folds one response word into the signature (Galois step, then the
// response XORed in).
func (m *MISR) Shift(resp uint64) {
	lsb := m.state & 1
	m.state >>= 1
	if lsb == 1 {
		m.state ^= m.taps
	}
	m.state = (m.state ^ resp) & m.mask
}

// Signature returns the compacted signature.
func (m *MISR) Signature() uint64 { return m.state }

// responseWord packs the primary-output values (sorted order) into a word.
func responseWord(c *logic.Circuit, vals map[string]logic.Value, pos []string) uint64 {
	var w uint64
	for i, po := range pos {
		if vals[po] == logic.One {
			w |= 1 << uint(i)
		}
	}
	return w
}

// Session is a test-per-clock BIST run over one circuit: the LFSR stream
// is applied as consecutive launch pairs and both the per-cycle detection
// record and the MISR signatures are computed.
type Session struct {
	Circuit *logic.Circuit
	Pats    []atpg.Pattern
	pos     []string
	misrW   int
}

// NewSession prepares a BIST session of n clocks. The LFSR is sized to
// roughly twice the input count (phase-spread across the register) and
// the MISR to at least 12 bits so signature aliasing stays below 0.1%.
func NewSession(c *logic.Circuit, seed uint64, n int) (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	width := 2 * len(c.Inputs)
	if width < 4 {
		width = 4
	}
	if width > 16 {
		width = 16
	}
	l, err := NewLFSR(width, seed)
	if err != nil {
		return nil, err
	}
	pos := append([]string(nil), c.Outputs...)
	sort.Strings(pos)
	misrW := len(pos)
	if misrW < 12 {
		misrW = 12
	}
	if misrW > 16 {
		misrW = 16
	}
	return &Session{Circuit: c, Pats: PatternSequence(c, l, n, 2), pos: pos, misrW: misrW}, nil
}

// Pairs returns the consecutive launch pairs of the stream. A session
// with fewer than two patterns has no launch pairs.
func (s *Session) Pairs() []atpg.TwoPattern {
	if len(s.Pats) == 0 {
		return nil
	}
	out := make([]atpg.TwoPattern, 0, len(s.Pats)-1)
	for i := 1; i < len(s.Pats); i++ {
		out = append(out, atpg.TwoPattern{V1: s.Pats[i-1], V2: s.Pats[i]})
	}
	return out
}

// GoldenSignature compacts the fault-free responses.
func (s *Session) GoldenSignature() (uint64, error) {
	m, err := NewMISR(s.misrW, 0)
	if err != nil {
		return 0, err
	}
	for _, p := range s.Pats {
		vals := s.Circuit.Eval(p, nil)
		m.Shift(responseWord(s.Circuit, vals, s.pos))
	}
	return m.Signature(), nil
}

// FaultResult grades one OBD fault against the session.
type FaultResult struct {
	DetectedCycles int    // launch pairs whose response differs at a PO
	FirstCycle     int    // first detecting pair index (-1 when none)
	Signature      uint64 // the compacted faulty signature
	Aliased        bool   // detected per-cycle but signature equals golden
}

// RunFault simulates the stream against one OBD fault under the
// gross-delay model (each consecutive pair is an independent launch).
func (s *Session) RunFault(f fault.OBD, golden uint64) (FaultResult, error) {
	m, err := NewMISR(s.misrW, 0)
	if err != nil {
		return FaultResult{}, err
	}
	res := FaultResult{FirstCycle: -1}
	// Cycle 0 has no launch: fault-free response by construction.
	if len(s.Pats) > 0 {
		vals := s.Circuit.Eval(s.Pats[0], nil)
		m.Shift(responseWord(s.Circuit, vals, s.pos))
	}
	for i := 1; i < len(s.Pats); i++ {
		tp := atpg.TwoPattern{V1: s.Pats[i-1], V2: s.Pats[i]}
		good := s.Circuit.Eval(tp.V2, nil)
		word := responseWord(s.Circuit, good, s.pos)
		if atpg.DetectsOBD(s.Circuit, f, tp) {
			g1 := s.Circuit.Eval(tp.V1, nil)
			faulty := s.Circuit.Eval(tp.V2, map[string]logic.Value{f.Gate.Output: g1[f.Gate.Output]})
			word = responseWord(s.Circuit, faulty, s.pos)
			res.DetectedCycles++
			if res.FirstCycle < 0 {
				res.FirstCycle = i
			}
		}
		m.Shift(word)
	}
	res.Signature = m.Signature()
	res.Aliased = res.DetectedCycles > 0 && res.Signature == golden
	return res, nil
}

// RunFaults simulates the stream against every fault in the list, sharding
// the faults across the scheduler's worker pool (nil means the package
// default). Results come back in fault-list order regardless of worker
// count; the first error in that order, if any, is returned.
func (s *Session) RunFaults(faults []fault.OBD, golden uint64, sched *atpg.Scheduler) ([]FaultResult, error) {
	out, rep := s.RunFaultsCtx(context.Background(), faults, golden, sched)
	if err := rep.AsError(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunFaultsCtx is RunFaults under the hardened scheduler contract: the
// run honors ctx cancellation (completed slots form a deterministic
// prefix), a panicking fault simulation is confined to a per-item error,
// and the RunReport carries per-fault attribution.
func (s *Session) RunFaultsCtx(ctx context.Context, faults []fault.OBD, golden uint64, sched *atpg.Scheduler) ([]FaultResult, *atpg.RunReport) {
	if sched == nil {
		sched = atpg.DefaultScheduler()
	}
	out := make([]FaultResult, len(faults))
	rep := sched.ForEachCtx(ctx, len(faults), func(i int) error {
		var err error
		out[i], err = s.RunFault(faults[i], golden)
		return err
	})
	return out, rep
}
