package bist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

func TestLFSRMaximalPeriods(t *testing.T) {
	for w := 2; w <= 16; w++ {
		l, err := NewLFSR(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 1<<uint(w) - 1
		if got := l.Period(); got != want {
			t.Fatalf("width %d period %d, want %d", w, got, want)
		}
	}
}

func TestLFSRRejectsUnsupportedWidth(t *testing.T) {
	if _, err := NewLFSR(1, 1); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := NewLFSR(20, 1); err == nil {
		t.Fatal("width 20 accepted")
	}
}

func TestLFSRZeroSeedCorrected(t *testing.T) {
	l, err := NewLFSR(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("zero seed must be corrected (all-zero state locks up)")
	}
}

func TestMISRSensitivity(t *testing.T) {
	// Changing a single response word must change the signature.
	m1, _ := NewMISR(4, 0)
	m2, _ := NewMISR(4, 0)
	words := []uint64{3, 5, 9, 1, 7, 2}
	for _, w := range words {
		m1.Shift(w)
	}
	for i, w := range words {
		if i == 3 {
			w ^= 1
		}
		m2.Shift(w)
	}
	if m1.Signature() == m2.Signature() {
		t.Fatal("single-bit response change aliased")
	}
}

func TestSessionGoldenStable(t *testing.T) {
	c := cells.FullAdderSumLogic()
	s1, err := NewSession(c, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(c, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s1.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s2.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("golden signature not deterministic")
	}
	if len(s1.Pairs()) != 63 {
		t.Fatalf("pairs %d", len(s1.Pairs()))
	}
}

func TestSessionDetectsKnownFault(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	s, err := NewSession(c, 3, 256)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := s.GoldenSignature()
	if err != nil {
		t.Fatal(err)
	}
	detectedAny := false
	for _, f := range faults[:12] {
		res, err := s.RunFault(f, golden)
		if err != nil {
			t.Fatal(err)
		}
		if res.DetectedCycles > 0 {
			detectedAny = true
			if res.FirstCycle < 1 {
				t.Fatalf("%s: first cycle %d", f, res.FirstCycle)
			}
			if !res.Aliased && res.Signature == golden {
				t.Fatalf("%s: detected but signature equals golden and not marked aliased", f)
			}
		} else if res.Signature != golden {
			t.Fatalf("%s: no detection but signature differs", f)
		}
	}
	if !detectedAny {
		t.Fatal("256-cycle BIST detected nothing among 12 faults")
	}
}

// TestQuickSessionConsistentWithGrading: the per-cycle detection record
// matches grading the stream's pairs with the reference fault simulator.
func TestQuickSessionConsistentWithGrading(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(10), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		s, err := NewSession(c, uint64(rng.Int63())|1, 32)
		if err != nil {
			return false
		}
		golden, err := s.GoldenSignature()
		if err != nil {
			return false
		}
		fl := faults[rng.Intn(len(faults))]
		res, err := s.RunFault(fl, golden)
		if err != nil {
			return false
		}
		count := 0
		first := -1
		for i, tp := range s.Pairs() {
			if atpg.DetectsOBD(c, fl, tp) {
				count++
				if first < 0 {
					first = i + 1
				}
			}
		}
		return count == res.DetectedCycles && first == res.FirstCycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
