package bist

import "testing"

// FuzzLFSRPeriod hardens the pattern generator's core invariant: for
// every supported width and any seed, the Galois LFSR built from the
// maximal tap table must traverse the full 2^w − 1 non-zero state cycle
// — a mis-entered tap mask would shrink the period and silently gut the
// pattern stream's coverage.
func FuzzLFSRPeriod(f *testing.F) {
	f.Add(uint(4), uint64(0xACE1))
	f.Add(uint(2), uint64(0)) // zero seed is folded to 1
	f.Add(uint(16), uint64(1))
	f.Add(uint(7), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint(1), uint64(5))  // below the supported range
	f.Add(uint(40), uint64(5)) // above the supported range
	f.Fuzz(func(t *testing.T, width uint, seed uint64) {
		l, err := NewLFSR(int(width), seed)
		if err != nil {
			if width >= 2 && width <= 16 {
				t.Fatalf("width %d rejected: %v", width, err)
			}
			return
		}
		if l.State() == 0 {
			t.Fatal("LFSR seeded to the all-zero lock-up state")
		}
		mask := uint64(1)<<width - 1
		if l.State()&^mask != 0 {
			t.Fatalf("state %#x exceeds width %d", l.State(), width)
		}
		want := int(mask) // 2^w − 1
		if got := l.Period(); got != want {
			t.Fatalf("width %d seed %#x: period %d, want %d", width, seed, got, want)
		}
	})
}
