// Package cells builds transistor-level realizations of static CMOS gates
// on top of the spice simulator: inverters, NAND/NOR stacks, AOI gates,
// the paper's Fig. 5 measurement harness (the defective gate driven by
// real gates, not ideal sources), and the Fig. 8 full-adder sum circuit.
// It also elaborates whole gate-level logic.Circuits down to transistors,
// which is how the paper's Section 4.3 propagation experiment is run.
package cells

import (
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/spice"
)

// Builder accumulates cells into one spice circuit with a shared supply.
type Builder struct {
	C   *spice.Circuit
	P   *spice.Process
	VDD spice.NodeID

	cells map[string]*Cell
	seq   int
}

// NewBuilder creates a circuit containing the VDD supply source.
func NewBuilder(p *spice.Process) *Builder {
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(p.VDD))
	return &Builder{C: c, P: p, VDD: vdd, cells: make(map[string]*Cell)}
}

// Node resolves a named node in the underlying circuit.
func (b *Builder) Node(name string) spice.NodeID { return b.C.Node(name) }

// Cell returns a previously built cell by name, or nil.
func (b *Builder) Cell(name string) *Cell { return b.cells[name] }

// Cell is one gate instance at transistor level.
type Cell struct {
	Name   string
	Type   logic.GateType
	Inputs []string // node names, in gate-input order
	Output string   // node name

	fets map[string]*spice.MOSFET
}

// FET returns the transistor on the given network side driven by the
// idx-th gate input. It panics if the cell has no such transistor (a
// programming error in experiment code).
func (c *Cell) FET(side fault.Side, idx int) *spice.MOSFET {
	key := fetKey(side, idx)
	m, ok := c.fets[key]
	if !ok {
		panic(fmt.Sprintf("cells: cell %s has no transistor %s", c.Name, key))
	}
	return m
}

// FETCount returns the number of transistors in the cell.
func (c *Cell) FETCount() int { return len(c.fets) }

func fetKey(side fault.Side, idx int) string {
	if side == fault.PullUp {
		return fmt.Sprintf("P%d", idx)
	}
	return fmt.Sprintf("N%d", idx)
}

func (b *Builder) register(c *Cell) *Cell {
	if _, dup := b.cells[c.Name]; dup {
		panic(fmt.Sprintf("cells: duplicate cell name %q", c.Name))
	}
	b.cells[c.Name] = c
	return c
}

// internal returns a fresh uniquely named internal node.
func (b *Builder) internal(cell, tag string) spice.NodeID {
	b.seq++
	return b.C.Node(fmt.Sprintf("%s.%s%d", cell, tag, b.seq))
}

// wireCap is the parasitic capacitance added to every cell output node.
const wireCap = 1e-15

// Inverter builds a static CMOS inverter.
func (b *Builder) Inverter(name, in, out string) *Cell {
	inN, outN := b.Node(in), b.Node(out)
	c := &Cell{Name: name, Type: logic.Inv, Inputs: []string{in}, Output: out, fets: map[string]*spice.MOSFET{}}
	c.fets["P0"] = b.C.AddMOSFET(name+".P0", outN, inN, b.VDD, b.VDD, b.P.PMOSParams(b.P.WPUnit))
	c.fets["N0"] = b.C.AddMOSFET(name+".N0", outN, inN, spice.Ground, spice.Ground, b.P.NMOSParams(b.P.WNUnit))
	b.C.AddCapacitor(name+".Cw", outN, spice.Ground, wireCap)
	return b.register(c)
}

// NAND builds an n-input NAND: parallel PMOS to VDD, series NMOS stack with
// the input-0 transistor at the output end of the stack.
func (b *Builder) NAND(name string, out string, ins ...string) *Cell {
	if len(ins) < 2 {
		panic("cells: NAND needs at least 2 inputs")
	}
	outN := b.Node(out)
	c := &Cell{Name: name, Type: logic.Nand, Inputs: ins, Output: out, fets: map[string]*spice.MOSFET{}}
	for i, in := range ins {
		c.fets[fetKey(fault.PullUp, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.P%d", name, i), outN, b.Node(in), b.VDD, b.VDD, b.P.PMOSParams(b.P.WPUnit))
	}
	top := outN
	for i, in := range ins {
		var src spice.NodeID
		if i == len(ins)-1 {
			src = spice.Ground
		} else {
			src = b.internal(name, "m")
		}
		c.fets[fetKey(fault.PullDown, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.N%d", name, i), top, b.Node(in), src, spice.Ground, b.P.NMOSParams(b.P.WNStack))
		top = src
	}
	b.C.AddCapacitor(name+".Cw", outN, spice.Ground, wireCap)
	return b.register(c)
}

// NANDWithEM builds a 2-input NAND with an intra-gate electromigration
// defect modeled at circuit level: a series resistance of rEM ohms in the
// source leg of the transistor on (side, idx) — the resistive contact
// degradation EM produces. This is the analog counterpart of the
// gate-level fault.EM model and powers the EM-vs-OBD divergence ablation.
func (b *Builder) NANDWithEM(name string, out, in0, in1 string, side fault.Side, idx int, rEM float64) *Cell {
	if idx < 0 || idx > 1 {
		panic("cells: NANDWithEM input index must be 0 or 1")
	}
	if rEM <= 0 {
		panic("cells: NANDWithEM needs a positive EM resistance")
	}
	outN := b.Node(out)
	ins := []string{in0, in1}
	c := &Cell{Name: name, Type: logic.Nand, Inputs: ins, Output: out, fets: map[string]*spice.MOSFET{}}
	emNode := b.internal(name, "em")
	for i, in := range ins {
		src := b.VDD
		if side == fault.PullUp && i == idx {
			src = emNode
			b.C.AddResistor(name+".Rem", b.VDD, emNode, rEM)
		}
		c.fets[fetKey(fault.PullUp, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.P%d", name, i), outN, b.Node(in), src, b.VDD, b.P.PMOSParams(b.P.WPUnit))
	}
	mid := b.internal(name, "m")
	nmosSrc := func(i int) spice.NodeID {
		if i == 0 {
			return mid
		}
		return spice.Ground
	}
	for i, in := range ins {
		drain := outN
		if i == 1 {
			drain = mid
		}
		src := nmosSrc(i)
		if side == fault.PullDown && i == idx {
			b.C.AddResistor(name+".Rem", src, emNode, rEM)
			src = emNode
		}
		c.fets[fetKey(fault.PullDown, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.N%d", name, i), drain, b.Node(in), src, spice.Ground, b.P.NMOSParams(b.P.WNStack))
	}
	b.C.AddCapacitor(name+".Cw", outN, spice.Ground, wireCap)
	return b.register(c)
}

// NOR builds an n-input NOR: series PMOS stack (input 0 at the output end)
// and parallel NMOS.
func (b *Builder) NOR(name string, out string, ins ...string) *Cell {
	if len(ins) < 2 {
		panic("cells: NOR needs at least 2 inputs")
	}
	outN := b.Node(out)
	c := &Cell{Name: name, Type: logic.Nor, Inputs: ins, Output: out, fets: map[string]*spice.MOSFET{}}
	top := outN
	for i, in := range ins {
		var src spice.NodeID
		if i == len(ins)-1 {
			src = b.VDD
		} else {
			src = b.internal(name, "m")
		}
		c.fets[fetKey(fault.PullUp, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.P%d", name, i), top, b.Node(in), src, b.VDD, b.P.PMOSParams(b.P.WPStack))
		top = src
	}
	for i, in := range ins {
		c.fets[fetKey(fault.PullDown, i)] = b.C.AddMOSFET(
			fmt.Sprintf("%s.N%d", name, i), outN, b.Node(in), spice.Ground, spice.Ground, b.P.NMOSParams(b.P.WNUnit))
	}
	b.C.AddCapacitor(name+".Cw", outN, spice.Ground, wireCap)
	return b.register(c)
}

// AOI21 builds out = !(a·b + c): NMOS parallel(series(a,b), c), PMOS
// series(parallel(a,b), c).
func (b *Builder) AOI21(name string, out, a, bIn, cIn string) *Cell {
	outN := b.Node(out)
	c := &Cell{Name: name, Type: logic.Aoi21, Inputs: []string{a, bIn, cIn}, Output: out, fets: map[string]*spice.MOSFET{}}
	// Pull-down: na: out->m, nb: m->gnd, nc: out->gnd.
	m := b.internal(name, "m")
	c.fets["N0"] = b.C.AddMOSFET(name+".N0", outN, b.Node(a), m, spice.Ground, b.P.NMOSParams(b.P.WNStack))
	c.fets["N1"] = b.C.AddMOSFET(name+".N1", m, b.Node(bIn), spice.Ground, spice.Ground, b.P.NMOSParams(b.P.WNStack))
	c.fets["N2"] = b.C.AddMOSFET(name+".N2", outN, b.Node(cIn), spice.Ground, spice.Ground, b.P.NMOSParams(b.P.WNUnit))
	// Pull-up: pa,pb parallel from VDD to k; pc from k to out.
	k := b.internal(name, "k")
	c.fets["P0"] = b.C.AddMOSFET(name+".P0", k, b.Node(a), b.VDD, b.VDD, b.P.PMOSParams(b.P.WPStack))
	c.fets["P1"] = b.C.AddMOSFET(name+".P1", k, b.Node(bIn), b.VDD, b.VDD, b.P.PMOSParams(b.P.WPStack))
	c.fets["P2"] = b.C.AddMOSFET(name+".P2", outN, b.Node(cIn), k, b.VDD, b.P.PMOSParams(b.P.WPStack))
	b.C.AddCapacitor(name+".Cw", outN, spice.Ground, wireCap)
	return b.register(c)
}

// Gate dispatches on a logic gate type.
func (b *Builder) Gate(name string, t logic.GateType, out string, ins ...string) (*Cell, error) {
	switch t {
	case logic.Inv:
		if len(ins) != 1 {
			return nil, fmt.Errorf("cells: inverter %s needs 1 input", name)
		}
		return b.Inverter(name, ins[0], out), nil
	case logic.Nand:
		return b.NAND(name, out, ins...), nil
	case logic.Nor:
		return b.NOR(name, out, ins...), nil
	case logic.Aoi21:
		if len(ins) != 3 {
			return nil, fmt.Errorf("cells: AOI21 %s needs 3 inputs", name)
		}
		return b.AOI21(name, out, ins[0], ins[1], ins[2]), nil
	default:
		return nil, fmt.Errorf("cells: gate type %v has no transistor-level builder", t)
	}
}

// Elaborate builds every gate of a validated logic circuit at transistor
// level, naming nodes after nets. Primary inputs become undriven nodes the
// caller attaches sources to.
func (b *Builder) Elaborate(lc *logic.Circuit) (map[string]*Cell, error) {
	if err := lc.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]*Cell, len(lc.Gates))
	for _, g := range lc.Gates {
		cell, err := b.Gate(g.Name, g.Type, g.Output, g.Inputs...)
		if err != nil {
			return nil, fmt.Errorf("cells: elaborating %s: %w", g.Name, err)
		}
		out[g.Name] = cell
	}
	return out, nil
}
