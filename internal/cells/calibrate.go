package cells

import (
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// CalibrateDelays measures rise/fall propagation delays of the primitive
// cells on the analog simulator (gate-driven, loaded harness) and returns
// a gate-level timing.DelayModel — so the event-driven simulator's numbers
// are grounded in the same process card as the OBD experiments rather than
// hand-picked. Composite gate types (AND/OR/XOR/...) are derived from
// their NAND+INV realizations.
func CalibrateDelays(p *spice.Process) (*timing.DelayModel, error) {
	const (
		tSwitch = 1e-9
		tEdge   = 50e-12
		tStop   = 3e-9
		tStep   = 2e-12
	)
	measure := func(typ logic.GateType, arity int, pair string) (float64, error) {
		h, err := NewGateHarness(p, typ, arity)
		if err != nil {
			return 0, err
		}
		pr, err := fault.ParsePair(pair)
		if err != nil {
			return 0, err
		}
		if err := h.Apply(pr, tSwitch, tEdge); err != nil {
			return 0, err
		}
		res, err := h.Run(tStop, tStep)
		if err != nil {
			return 0, err
		}
		m, err := h.Measure(res, pr, tSwitch, tEdge)
		if err != nil {
			return 0, err
		}
		if m.Kind != waveform.TransitionOK {
			return 0, fmt.Errorf("cells: calibration %v %s did not transition", typ, pair)
		}
		return m.Delay, nil
	}
	// The harness measurement includes the two-inverter driver chain; the
	// inverter's own pair isolates one stage so the chain share can be
	// removed from every cell measurement.
	invFall, err := measure(logic.Inv, 1, "(0,1)")
	if err != nil {
		return nil, err
	}
	invRise, err := measure(logic.Inv, 1, "(1,0)")
	if err != nil {
		return nil, err
	}
	// Driver chain ≈ one rising plus one falling inverter stage; the raw
	// inverter measurement is chain + one stage, so one stage ≈ raw/3 per
	// direction on average. Use the averaged stage estimate for offsetting.
	stage := (invFall + invRise) / 6
	chain := 2 * stage
	adjust := func(raw float64) float64 {
		d := raw - chain
		if d < 1e-12 {
			d = 1e-12
		}
		return d
	}
	dm := &timing.DelayModel{
		Rise: map[logic.GateType]float64{},
		Fall: map[logic.GateType]float64{},
	}
	dm.Fall[logic.Inv] = adjust(invFall)
	dm.Rise[logic.Inv] = adjust(invRise)
	dm.Fall[logic.Buf] = dm.Fall[logic.Inv] + dm.Rise[logic.Inv]
	dm.Rise[logic.Buf] = dm.Fall[logic.Buf]
	type probe struct {
		typ   logic.GateType
		arity int
		fall  string
		rise  string
	}
	for _, pb := range []probe{
		{logic.Nand, 2, "(01,11)", "(11,01)"},
		{logic.Nor, 2, "(00,10)", "(10,00)"},
		{logic.Aoi21, 3, "(000,110)", "(110,000)"},
	} {
		f, err := measure(pb.typ, pb.arity, pb.fall)
		if err != nil {
			return nil, err
		}
		r, err := measure(pb.typ, pb.arity, pb.rise)
		if err != nil {
			return nil, err
		}
		dm.Fall[pb.typ] = adjust(f)
		dm.Rise[pb.typ] = adjust(r)
	}
	// Composite types from their NAND+INV realizations.
	dm.Fall[logic.And] = dm.Rise[logic.Nand] + dm.Fall[logic.Inv]
	dm.Rise[logic.And] = dm.Fall[logic.Nand] + dm.Rise[logic.Inv]
	dm.Fall[logic.Or] = dm.Rise[logic.Nor] + dm.Fall[logic.Inv]
	dm.Rise[logic.Or] = dm.Fall[logic.Nor] + dm.Rise[logic.Inv]
	// XOR as the 4-NAND block: roughly two NAND stages.
	dm.Fall[logic.Xor] = dm.Fall[logic.Nand] + dm.Rise[logic.Nand]
	dm.Rise[logic.Xor] = dm.Fall[logic.Xor]
	dm.Fall[logic.Xnor] = dm.Fall[logic.Xor]
	dm.Rise[logic.Xnor] = dm.Rise[logic.Xor]
	dm.Fall[logic.Oai21] = dm.Fall[logic.Aoi21]
	dm.Rise[logic.Oai21] = dm.Rise[logic.Aoi21]
	return dm, nil
}
