package cells

import (
	"fmt"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// opGateCheck drives a cell's inputs with DC sources over every input
// combination and checks the output settles to the gate function.
func opGateCheck(t *testing.T, typ logic.GateType, arity int, build func(b *Builder, ins []string) *Cell) {
	t.Helper()
	p := spice.Default350()
	for m := 0; m < 1<<arity; m++ {
		b := NewBuilder(p)
		ins := make([]string, arity)
		vals := make([]logic.Value, arity)
		for i := range ins {
			ins[i] = fmt.Sprintf("in%d", i)
			vals[i] = logic.FromBool(m&(1<<i) != 0)
			lvl := 0.0
			if vals[i] == logic.One {
				lvl = p.VDD
			}
			b.C.AddVSource(fmt.Sprintf("V%d", i), b.Node(ins[i]), spice.Ground, spice.DC(lvl))
		}
		cell := build(b, ins)
		s, err := spice.OperatingPoint(b.C, nil)
		if err != nil {
			t.Fatalf("%v inputs %v: op failed: %v", typ, vals, err)
		}
		g := &logic.Gate{Name: "x", Type: typ, Inputs: ins}
		want := g.Eval(vals)
		got := s.V(cell.Output)
		if want == logic.One && got < p.VDD-0.15 {
			t.Fatalf("%v%v: out %.3f V, want ~VDD", typ, vals, got)
		}
		if want == logic.Zero && got > 0.15 {
			t.Fatalf("%v%v: out %.3f V, want ~0", typ, vals, got)
		}
	}
}

func TestInverterDC(t *testing.T) {
	opGateCheck(t, logic.Inv, 1, func(b *Builder, ins []string) *Cell {
		return b.Inverter("DUT", ins[0], "y")
	})
}

func TestNAND2DC(t *testing.T) {
	opGateCheck(t, logic.Nand, 2, func(b *Builder, ins []string) *Cell {
		return b.NAND("DUT", "y", ins...)
	})
}

func TestNAND3DC(t *testing.T) {
	opGateCheck(t, logic.Nand, 3, func(b *Builder, ins []string) *Cell {
		return b.NAND("DUT", "y", ins...)
	})
}

func TestNOR2DC(t *testing.T) {
	opGateCheck(t, logic.Nor, 2, func(b *Builder, ins []string) *Cell {
		return b.NOR("DUT", "y", ins...)
	})
}

func TestAOI21DC(t *testing.T) {
	opGateCheck(t, logic.Aoi21, 3, func(b *Builder, ins []string) *Cell {
		return b.AOI21("DUT", "y", ins[0], ins[1], ins[2])
	})
}

func TestCellFETAccess(t *testing.T) {
	p := spice.Default350()
	b := NewBuilder(p)
	c := b.NAND("DUT", "y", "a", "bb")
	if c.FETCount() != 4 {
		t.Fatalf("NAND2 has %d FETs, want 4", c.FETCount())
	}
	if m := c.FET(fault.PullUp, 0); m.P.Polarity != spice.PMOS {
		t.Fatal("PullUp FET is not PMOS")
	}
	if m := c.FET(fault.PullDown, 1); m.P.Polarity != spice.NMOS {
		t.Fatal("PullDown FET is not NMOS")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing FET")
		}
	}()
	c.FET(fault.PullDown, 5)
}

func TestFullAdderSumLogicStructure(t *testing.T) {
	c := FullAdderSumLogic()
	nands, invs := 0, 0
	for _, g := range c.Gates {
		switch g.Type {
		case logic.Nand:
			nands++
			if len(g.Inputs) != 2 {
				t.Fatalf("gate %s has %d inputs, want 2", g.Name, len(g.Inputs))
			}
		case logic.Inv:
			invs++
		default:
			t.Fatalf("unexpected gate type %v", g.Type)
		}
	}
	if nands != 14 || invs != 11 {
		t.Fatalf("gate counts %d NAND + %d INV, want 14 + 11", nands, invs)
	}
	if d := c.Depth(); d != 9 {
		t.Fatalf("depth %d, want 9", d)
	}
	// The injection target has four upstream and four downstream stages.
	var target *logic.Gate
	for _, g := range c.Gates {
		if g.Name == FullAdderTarget {
			target = g
		}
	}
	if target == nil || target.Level != 5 {
		t.Fatalf("target gate level %v, want 5", target)
	}
	// 14 NAND2 gates provide the paper's 56 OBD locations.
	faults, skipped := fault.OBDUniverse(c)
	if len(skipped) != 0 {
		t.Fatalf("skipped gates: %v", skipped)
	}
	nandFaults := 0
	for _, f := range faults {
		if f.Gate.Type == logic.Nand {
			nandFaults++
		}
	}
	if nandFaults != 56 {
		t.Fatalf("NAND OBD locations %d, want 56", nandFaults)
	}
}

func TestFullAdderSumLogicFunction(t *testing.T) {
	c := FullAdderSumLogic()
	tt := c.TruthTable("s")
	// Input order A,B,C with index bit i = input i: parity of the bits.
	for m, got := range tt {
		par := (m ^ (m >> 1) ^ (m >> 2)) & 1
		want := logic.FromBool(par == 1)
		if got != want {
			t.Fatalf("sum(%03b) = %v, want %v", m, got, want)
		}
	}
}

func TestElaborateRejectsComposite(t *testing.T) {
	lc := logic.New("bad")
	if err := lc.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := lc.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.AddGate("g1", logic.Xor, "y", "a", "b"); err != nil {
		t.Fatal(err)
	}
	lc.AddOutput("y")
	b := NewBuilder(spice.Default350())
	if _, err := b.Elaborate(lc); err == nil {
		t.Fatal("composite gate elaboration should fail")
	}
}

func TestHarnessFaultFreeDelays(t *testing.T) {
	p := spice.Default350()
	h := NewNANDHarness(p, 2)
	const (
		tSwitch = 1e-9
		tEdge   = 50e-12
		tStop   = 3e-9
		dt      = 1e-12
	)
	for _, tc := range []struct {
		pair   string
		rising bool
	}{
		{"(01,11)", false},
		{"(10,11)", false},
		{"(11,01)", true},
		{"(11,10)", true},
	} {
		pr, err := fault.ParsePair(tc.pair)
		if err != nil {
			t.Fatal(err)
		}
		h.Apply(pr, tSwitch, tEdge)
		res, err := h.Run(tStop, dt)
		if err != nil {
			t.Fatalf("%s: transient: %v", tc.pair, err)
		}
		m, err := h.Measure(res, pr, tSwitch, tEdge)
		if err != nil {
			t.Fatalf("%s: measure: %v", tc.pair, err)
		}
		if m.Kind != waveform.TransitionOK {
			t.Fatalf("%s: fault-free NAND classified %v", tc.pair, m.Kind)
		}
		if m.Delay < 10e-12 || m.Delay > 500e-12 {
			t.Fatalf("%s: fault-free delay %.1f ps outside [10, 500] ps", tc.pair, m.Delay*1e12)
		}
	}
}

func TestHarnessRejectsNonTransitionPair(t *testing.T) {
	p := spice.Default350()
	h := NewNANDHarness(p, 2)
	pr, err := fault.ParsePair("(00,01)") // output stays 1
	if err != nil {
		t.Fatal(err)
	}
	h.Apply(pr, 1e-9, 50e-12)
	res, err := h.Run(1.5e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Measure(res, pr, 1e-9, 50e-12); err == nil {
		t.Fatal("expected error for non-transition pair")
	}
}

func TestInverterVTCRig(t *testing.T) {
	p := spice.Default350()
	v := NewInverterVTC(p)
	in, out, err := v.Sweep(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != len(out) || len(in) < 30 {
		t.Fatalf("sweep sizes %d/%d", len(in), len(out))
	}
	if out[0] < p.VDD-0.05 || out[len(out)-1] > 0.05 {
		t.Fatalf("VTC endpoints wrong: %.3f .. %.3f", out[0], out[len(out)-1])
	}
}

func TestFullAdderRigDC(t *testing.T) {
	p := spice.Default350()
	rig, err := NewFullAdderRig(p)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive DC check of the 25-cell transistor netlist.
	for m := 0; m < 8; m++ {
		vals := map[string]logic.Value{
			"A": logic.FromBool(m&1 != 0),
			"B": logic.FromBool(m&2 != 0),
			"C": logic.FromBool(m&4 != 0),
		}
		for in, v := range vals {
			lvl := 0.0
			if v == logic.One {
				lvl = p.VDD
			}
			rig.Srcs[in].Wave = spice.DC(lvl)
		}
		s, err := spice.OperatingPoint(rig.B.C, nil)
		if err != nil {
			t.Fatalf("op(%03b): %v", m, err)
		}
		want := rig.Logic.Eval(vals, nil)["s"]
		got := s.V("s")
		if want == logic.One && got < p.VDD-0.2 {
			t.Fatalf("sum(%03b) analog %.3f V, want high", m, got)
		}
		if want == logic.Zero && got > 0.2 {
			t.Fatalf("sum(%03b) analog %.3f V, want low", m, got)
		}
	}
}

func TestFullAdderRigTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("analog full-adder transient is slow")
	}
	p := spice.Default350()
	rig, err := NewFullAdderRig(p)
	if err != nil {
		t.Fatal(err)
	}
	one, zero := logic.One, logic.Zero
	// A:1->1, B:1->1, C:0->1 flips the sum 0 -> 1.
	v1 := map[string]logic.Value{"A": one, "B": one, "C": zero}
	v2 := map[string]logic.Value{"A": one, "B": one, "C": one}
	if err := rig.Apply(v1, v2, 0.5e-9, 50e-12); err != nil {
		t.Fatal(err)
	}
	res, err := rig.Run(2.5e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	s := waveform.MustNew("s", res.Times, res.V("s"))
	if s.V[0] > 0.2 {
		t.Fatalf("initial sum %.3f, want low", s.V[0])
	}
	if got := s.Final(); got < p.VDD-0.2 {
		t.Fatalf("final sum %.3f, want high", got)
	}
	if _, ok := s.Crossing(p.VDD/2, true, 0.5e-9); !ok {
		t.Fatal("sum never crossed 50%")
	}
}

func TestApplyRejectsX(t *testing.T) {
	p := spice.Default350()
	rig, err := NewFullAdderRig(p)
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]logic.Value{"A": logic.One, "B": logic.X, "C": logic.Zero}
	if err := rig.Apply(v, v, 1e-9, 50e-12); err == nil {
		t.Fatal("expected error for X stimulus")
	}
}

func TestNANDWithEMStaysFunctional(t *testing.T) {
	// The EM series resistance must not change the logic function.
	p := spice.Default350()
	for _, side := range []fault.Side{fault.PullUp, fault.PullDown} {
		for idx := 0; idx < 2; idx++ {
			for m := 0; m < 4; m++ {
				b := NewBuilder(p)
				ins := []string{"ia", "ib"}
				vals := []logic.Value{logic.FromBool(m&1 != 0), logic.FromBool(m&2 != 0)}
				for i, in := range ins {
					lvl := 0.0
					if vals[i] == logic.One {
						lvl = p.VDD
					}
					b.C.AddVSource(fmt.Sprintf("V%d", i), b.Node(in), spice.Ground, spice.DC(lvl))
				}
				cell := b.NANDWithEM("DUT", "y", "ia", "ib", side, idx, 1000)
				if cell.FETCount() != 4 {
					t.Fatalf("EM NAND has %d FETs", cell.FETCount())
				}
				s, err := spice.OperatingPoint(b.C, nil)
				if err != nil {
					t.Fatalf("op: %v", err)
				}
				g := &logic.Gate{Name: "x", Type: logic.Nand, Inputs: ins}
				want := g.Eval(vals)
				got := s.V("y")
				if want == logic.One && got < p.VDD-0.2 {
					t.Fatalf("EM NAND %v/%d inputs %v: %f", side, idx, vals, got)
				}
				if want == logic.Zero && got > 0.2 {
					t.Fatalf("EM NAND %v/%d inputs %v: %f", side, idx, vals, got)
				}
			}
		}
	}
}

func TestGateHarnessNOR(t *testing.T) {
	p := spice.Default350()
	h, err := NewGateHarness(p, logic.Nor, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fault.ParsePair("(10,00)") // output rises
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Apply(pr, 1e-9, 50e-12); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(3e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(res, pr, 1e-9, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != waveform.TransitionOK || m.Delay < 10e-12 || m.Delay > 600e-12 {
		t.Fatalf("NOR rise measurement %+v", m)
	}
	// Width mismatch rejected.
	bad, err := fault.ParsePair("(101,000)")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Apply(bad, 1e-9, 50e-12); err == nil {
		t.Fatal("wrong-arity pair accepted")
	}
}

func TestElaborateC17AnalogMatchesLogic(t *testing.T) {
	// Cross-layer check: the transistor-level elaboration of c17 computes
	// the same function as the gate-level model for all 32 input vectors.
	p := spice.Default350()
	lc := logic.C17()
	b := NewBuilder(p)
	if _, err := b.Elaborate(lc); err != nil {
		t.Fatal(err)
	}
	srcs := make(map[string]*spice.VSource, len(lc.Inputs))
	for _, in := range lc.Inputs {
		srcs[in] = b.C.AddVSource("V"+in, b.Node(in), spice.Ground, spice.DC(0))
	}
	for m := 0; m < 32; m++ {
		assign := make(map[string]logic.Value, 5)
		for i, in := range lc.Inputs {
			v := logic.FromBool(m&(1<<i) != 0)
			assign[in] = v
			lvl := 0.0
			if v == logic.One {
				lvl = p.VDD
			}
			srcs[in].Wave = spice.DC(lvl)
		}
		sol, err := spice.OperatingPoint(b.C, nil)
		if err != nil {
			t.Fatalf("op(%05b): %v", m, err)
		}
		want := lc.Eval(assign, nil)
		for _, po := range lc.Outputs {
			got := sol.V(po)
			if want[po] == logic.One && got < p.VDD-0.2 {
				t.Fatalf("c17(%05b) %s analog %.2f, want high", m, po, got)
			}
			if want[po] == logic.Zero && got > 0.2 {
				t.Fatalf("c17(%05b) %s analog %.2f, want low", m, po, got)
			}
		}
	}
}

func TestCalibrateDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("10 calibration transients")
	}
	p := spice.Default350()
	dm, err := CalibrateDelays(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every primitive and composite type the timing simulator needs must
	// be present and plausible (1..500 ps).
	for _, typ := range []logic.GateType{
		logic.Inv, logic.Buf, logic.Nand, logic.Nor, logic.And,
		logic.Or, logic.Xor, logic.Xnor, logic.Aoi21, logic.Oai21,
	} {
		g := &logic.Gate{Name: "x", Type: typ}
		for _, rising := range []bool{true, false} {
			d, err := dm.Delay(g, rising)
			if err != nil {
				t.Fatalf("%v rising=%v: %v", typ, rising, err)
			}
			if d < 1e-12 || d > 500e-12 {
				t.Fatalf("%v rising=%v delay %.1f ps implausible", typ, rising, d*1e12)
			}
		}
	}
	// Stacked/compound gates must be slower than the inverter.
	if dm.Fall[logic.Nand] <= dm.Fall[logic.Inv] {
		t.Fatalf("NAND fall %.1f ps not above INV %.1f ps",
			dm.Fall[logic.Nand]*1e12, dm.Fall[logic.Inv]*1e12)
	}
	// The calibrated model must drive the timing simulator.
	lc := FullAdderSumLogic()
	sim, err := timing.New(lc, dm)
	if err != nil {
		t.Fatal(err)
	}
	v1 := map[string]logic.Value{"A": logic.One, "B": logic.One, "C": logic.Zero}
	v2 := map[string]logic.Value{"A": logic.One, "B": logic.One, "C": logic.One}
	tr, err := sim.Run(v1, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	settle := tr.SettleTime()
	if settle < 100e-12 || settle > 3e-9 {
		t.Fatalf("calibrated critical path %.0f ps implausible", settle*1e12)
	}
}
