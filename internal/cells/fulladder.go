package cells

import (
	"fmt"

	"gobd/internal/logic"
	"gobd/internal/spice"
)

// FullAdderSumLogic reconstructs the paper's Fig. 8 experimental circuit:
// the sum bit of a full adder implemented "without any optimizations" from
// exactly 14 two-input NAND gates and 11 inverters with logic depth 9 and
// intentional redundancy. The paper gives only these structural properties
// (gate counts, depth, redundancy, and that the injected NAND has four
// logic stages both upstream and downstream); this netlist satisfies all
// of them and computes S = A⊕B⊕C:
//
//	first XOR   g  = A⊕B      via inverter-heavy sum-of-products (p,q paths)
//	complement  gb = !(A⊕B)   via a parallel XNOR built from t1,t2
//	second XOR  s  = g⊕C      via r1 = !(g·!C), r2 = !(gb·C), s = !(r1·r2)
//	redundancy  d1..d3        recompute A·!B and join a constant-1 into the
//	                          r2 path through the u1/u2 NAND pair, leaving
//	                          several OBD sites structurally untestable
//
// Gate g sits at level 5 of 9 — four stages of upstream and four stages of
// downstream logic — and is the OBD injection target of the Fig. 9
// experiment.
func FullAdderSumLogic() *logic.Circuit {
	c := logic.New("fulladder_sum")
	for _, in := range []string{"A", "B", "C"} {
		if err := c.AddInput(in); err != nil {
			panic(err)
		}
	}
	c.AddOutput("s")
	type gd struct {
		t    logic.GateType
		name string
		ins  []string
	}
	gates := []gd{
		// Inverters (11).
		{logic.Inv, "an", []string{"A"}},
		{logic.Inv, "bn", []string{"B"}},
		{logic.Inv, "cn", []string{"C"}},
		{logic.Inv, "pi", []string{"p"}},
		{logic.Inv, "qi", []string{"q"}},
		{logic.Inv, "pii", []string{"pi"}},
		{logic.Inv, "qii", []string{"qi"}},
		{logic.Inv, "r1i", []string{"r1"}},
		{logic.Inv, "r1ii", []string{"r1i"}},
		{logic.Inv, "r2i", []string{"r2"}},
		{logic.Inv, "r2ii", []string{"r2i"}},
		// Two-input NANDs (14).
		{logic.Nand, "t2", []string{"A", "B"}},
		{logic.Nand, "p", []string{"A", "bn"}},
		{logic.Nand, "q", []string{"an", "B"}},
		{logic.Nand, "t1", []string{"an", "bn"}},
		{logic.Nand, "d1", []string{"A", "bn"}},
		{logic.Nand, "gbar", []string{"t1", "t2"}},
		{logic.Nand, "d2", []string{"d1", "d1"}},
		{logic.Nand, "r2", []string{"gbar", "C"}},
		{logic.Nand, "d3", []string{"d2", "qi"}},
		{logic.Nand, "g", []string{"pii", "qii"}},
		{logic.Nand, "r1", []string{"g", "cn"}},
		{logic.Nand, "u1", []string{"r2ii", "d3"}},
		{logic.Nand, "u2", []string{"u1", "u1"}},
		{logic.Nand, "s", []string{"r1ii", "u2"}},
	}
	for _, g := range gates {
		if _, err := c.AddGate(g.name, g.t, g.name, g.ins...); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// FullAdderTarget is the name of the NAND gate with four upstream and four
// downstream stages — the injection site of the paper's Fig. 9 experiment.
const FullAdderTarget = "g"

// FullAdderRig is the transistor-level elaboration of the Fig. 8 circuit
// with PWL-drivable sources on A, B and C.
type FullAdderRig struct {
	B     *Builder
	Logic *logic.Circuit
	Cells map[string]*Cell
	Srcs  map[string]*spice.VSource
}

// NewFullAdderRig elaborates FullAdderSumLogic to transistors.
func NewFullAdderRig(p *spice.Process) (*FullAdderRig, error) {
	lc := FullAdderSumLogic()
	b := NewBuilder(p)
	cellsByGate, err := b.Elaborate(lc)
	if err != nil {
		return nil, err
	}
	rig := &FullAdderRig{B: b, Logic: lc, Cells: cellsByGate, Srcs: make(map[string]*spice.VSource)}
	for _, in := range lc.Inputs {
		rig.Srcs[in] = b.C.AddVSource("V"+in, b.Node(in), spice.Ground, spice.DC(0))
	}
	return rig, nil
}

// Apply programs the input sources with a two-pattern stimulus given as
// per-input (v1, v2) logic values.
func (r *FullAdderRig) Apply(v1, v2 map[string]logic.Value, tSwitch, tEdge float64) error {
	vdd := r.B.P.VDD
	level := func(v logic.Value) (float64, error) {
		switch v {
		case logic.One:
			return vdd, nil
		case logic.Zero:
			return 0, nil
		default:
			return 0, fmt.Errorf("cells: analog stimulus needs complete vectors, got X")
		}
	}
	for _, in := range r.Logic.Inputs {
		l1, err := level(v1[in])
		if err != nil {
			return fmt.Errorf("%w (input %s, frame 1)", err, in)
		}
		l2, err := level(v2[in])
		if err != nil {
			return fmt.Errorf("%w (input %s, frame 2)", err, in)
		}
		r.Srcs[in].Wave = spice.NewPWL(0, l1, tSwitch, l1, tSwitch+tEdge, l2)
	}
	return nil
}

// Run runs the transient analysis.
func (r *FullAdderRig) Run(tstop, dt float64) (*spice.TranResult, error) {
	return spice.Transient(r.B.C, tstop, dt, nil)
}
