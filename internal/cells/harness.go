package cells

import (
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// NANDHarness is the paper's Fig. 5 measurement set-up: a NAND2 whose
// inputs are driven by chains of real inverters (so the OBD leakage loads
// a finite-strength driver, the effect prior work missed by using ideal
// sources) and whose output drives a two-inverter load chain.
type NANDHarness struct {
	B    *Builder
	NAND *Cell

	srcs    [2]*spice.VSource
	inNodes [2]string // NAND input node names
	outNode string
	chain   int
}

// NewNANDHarness builds the harness. driveChain is the number of inverter
// stages between each stimulus source and the NAND input; it must be even
// (non-inverting) — 2 reproduces Fig. 5, 0 is the ideal-source ablation.
func NewNANDHarness(p *spice.Process, driveChain int) *NANDHarness {
	return newNANDHarness(p, driveChain, func(b *Builder, out, in0, in1 string) *Cell {
		return b.NAND("DUT", out, in0, in1)
	})
}

// NewNANDHarnessEM builds the same harness with an EM-defective DUT: a
// series resistance of rEM ohms in the source leg of the transistor on
// (side, idx).
func NewNANDHarnessEM(p *spice.Process, driveChain int, side fault.Side, idx int, rEM float64) *NANDHarness {
	return newNANDHarness(p, driveChain, func(b *Builder, out, in0, in1 string) *Cell {
		return b.NANDWithEM("DUT", out, in0, in1, side, idx, rEM)
	})
}

func newNANDHarness(p *spice.Process, driveChain int, dut func(b *Builder, out, in0, in1 string) *Cell) *NANDHarness {
	if driveChain%2 != 0 {
		panic("cells: driveChain must be even to keep the stimulus non-inverting")
	}
	b := NewBuilder(p)
	h := &NANDHarness{B: b, chain: driveChain}
	for i := 0; i < 2; i++ {
		src := fmt.Sprintf("src%c", 'a'+i)
		h.srcs[i] = b.C.AddVSource(fmt.Sprintf("V%c", 'A'+i), b.Node(src), spice.Ground, spice.DC(0))
		prev := src
		for s := 0; s < driveChain; s++ {
			next := fmt.Sprintf("drv%c%d", 'a'+i, s)
			b.Inverter(fmt.Sprintf("DRV%c%d", 'A'+i, s), prev, next)
			prev = next
		}
		h.inNodes[i] = prev
	}
	h.outNode = "out"
	h.NAND = dut(b, h.outNode, h.inNodes[0], h.inNodes[1])
	b.Inverter("LOAD0", h.outNode, "load0")
	b.Inverter("LOAD1", "load0", "load1")
	return h
}

// OutputNode returns the observed NAND output node name.
func (h *NANDHarness) OutputNode() string { return h.outNode }

// InputNode returns the NAND-side node of input i.
func (h *NANDHarness) InputNode(i int) string { return h.inNodes[i] }

// InjectOBD attaches a breakdown network to the DUT transistor on the
// given side/input. The returned injection can be re-staged in place.
func (h *NANDHarness) FETFor(side fault.Side, input int) *spice.MOSFET {
	return h.NAND.FET(side, input)
}

// Apply programs the stimulus sources with the two-pattern sequence: V1
// until tSwitch, then a linear edge of tEdge to V2.
func (h *NANDHarness) Apply(pair fault.Pair, tSwitch, tEdge float64) {
	vdd := h.B.P.VDD
	level := func(v logic.Value) float64 {
		if v == logic.One {
			return vdd
		}
		return 0
	}
	for i := 0; i < 2; i++ {
		h.srcs[i].Wave = spice.NewPWL(
			0, level(pair.V1[i]),
			tSwitch, level(pair.V1[i]),
			tSwitch+tEdge, level(pair.V2[i]),
		)
	}
}

// Run runs the transient analysis.
func (h *NANDHarness) Run(tstop, dt float64) (*spice.TranResult, error) {
	return spice.Transient(h.B.C, tstop, dt, nil)
}

// Measure extracts the paper's Table 1 observable from a transient run:
// the delay from the stimulus edge midpoint to the NAND output's 50%
// crossing, or the sa-0/sa-1 classification when the output fails to
// transition. The timing reference is the analytic source-edge midpoint
// (tSwitch + tEdge/2) rather than a measured crossing of the NAND input
// node, because a severe breakdown clamps that input so hard it never
// crosses mid-rail — exactly the upstream-damage regime of the paper's
// Fig. 2. tSwitch and tEdge must match the values passed to Apply.
func (h *NANDHarness) Measure(res *spice.TranResult, pair fault.Pair, tSwitch, tEdge float64) (waveform.DelayMeasurement, error) {
	gate := &logic.Gate{Name: "DUT", Type: logic.Nand, Inputs: []string{"a", "b"}}
	o1, o2 := gate.Eval(pair.V1), gate.Eval(pair.V2)
	if o1 == o2 || !o1.IsKnown() || !o2.IsKnown() {
		return waveform.DelayMeasurement{}, fmt.Errorf("cells: pair %s causes no output transition", pair)
	}
	out := waveform.MustNew("out", res.Times, res.V(h.outNode))
	return waveform.MeasureTransitionFrom(out, h.B.P.VDD, o2 == logic.One, tSwitch+tEdge/2)
}

// GateHarness generalizes the Fig. 5 set-up to any primitive static CMOS
// DUT (NAND/NOR of any width, AOI21, inverter): every input is driven by a
// two-inverter chain and the output drives a two-inverter load, so OBD
// injections interact with realistic driver strengths — the vehicle for
// cross-validating the gate-level excitation rule against the analog
// model on gate types beyond the paper's NAND.
type GateHarness struct {
	B    *Builder
	DUT  *Cell
	Type logic.GateType

	srcs    []*spice.VSource
	inNodes []string
	outNode string
}

// NewGateHarness builds the harness around a DUT of the given type/arity.
func NewGateHarness(p *spice.Process, typ logic.GateType, arity int) (*GateHarness, error) {
	b := NewBuilder(p)
	h := &GateHarness{B: b, Type: typ, outNode: "out"}
	for i := 0; i < arity; i++ {
		src := fmt.Sprintf("src%d", i)
		h.srcs = append(h.srcs, b.C.AddVSource(fmt.Sprintf("V%d", i), b.Node(src), spice.Ground, spice.DC(0)))
		d0 := fmt.Sprintf("drv%da", i)
		d1 := fmt.Sprintf("drv%db", i)
		b.Inverter(fmt.Sprintf("DRV%dA", i), src, d0)
		b.Inverter(fmt.Sprintf("DRV%dB", i), d0, d1)
		h.inNodes = append(h.inNodes, d1)
	}
	dut, err := b.Gate("DUT", typ, h.outNode, h.inNodes...)
	if err != nil {
		return nil, err
	}
	h.DUT = dut
	b.Inverter("LOAD0", h.outNode, "load0")
	b.Inverter("LOAD1", "load0", "load1")
	return h, nil
}

// FETFor returns the DUT transistor on (side, input).
func (h *GateHarness) FETFor(side fault.Side, input int) *spice.MOSFET {
	return h.DUT.FET(side, input)
}

// Apply programs the stimulus sources with a two-pattern sequence.
func (h *GateHarness) Apply(pair fault.Pair, tSwitch, tEdge float64) error {
	if len(pair.V1) != len(h.srcs) || len(pair.V2) != len(h.srcs) {
		return fmt.Errorf("cells: pair width %d does not match %d DUT inputs", len(pair.V1), len(h.srcs))
	}
	vdd := h.B.P.VDD
	level := func(v logic.Value) float64 {
		if v == logic.One {
			return vdd
		}
		return 0
	}
	for i, src := range h.srcs {
		src.Wave = spice.NewPWL(
			0, level(pair.V1[i]),
			tSwitch, level(pair.V1[i]),
			tSwitch+tEdge, level(pair.V2[i]),
		)
	}
	return nil
}

// Run runs the transient analysis.
func (h *GateHarness) Run(tstop, dt float64) (*spice.TranResult, error) {
	return spice.Transient(h.B.C, tstop, dt, nil)
}

// Measure measures the DUT output transition against the analytic edge
// time, exactly like NANDHarness.Measure.
func (h *GateHarness) Measure(res *spice.TranResult, pair fault.Pair, tSwitch, tEdge float64) (waveform.DelayMeasurement, error) {
	gate := &logic.Gate{Name: "DUT", Type: h.Type, Inputs: make([]string, len(h.inNodes))}
	o1, o2 := gate.Eval(pair.V1), gate.Eval(pair.V2)
	if o1 == o2 || !o1.IsKnown() || !o2.IsKnown() {
		return waveform.DelayMeasurement{}, fmt.Errorf("cells: pair %s causes no output transition", pair)
	}
	out := waveform.MustNew("out", res.Times, res.V(h.outNode))
	return waveform.MeasureTransitionFrom(out, h.B.P.VDD, o2 == logic.One, tSwitch+tEdge/2)
}

// OutputNode returns the DUT output node name.
func (h *GateHarness) OutputNode() string { return h.outNode }

// InverterVTC is the Fig. 4 rig: an inverter with a sweepable input source
// so the static voltage transfer characteristic can be traced while an OBD
// network progresses through its stages.
type InverterVTC struct {
	B   *Builder
	Vin *spice.VSource
	Inv *Cell
	Out string
}

// NewInverterVTC builds the rig.
func NewInverterVTC(p *spice.Process) *InverterVTC {
	b := NewBuilder(p)
	v := &InverterVTC{B: b, Out: "out"}
	v.Vin = b.C.AddVSource("VIN", b.Node("in"), spice.Ground, spice.DC(0))
	v.Inv = b.Inverter("DUT", "in", "out")
	return v
}

// Sweep runs the DC sweep from 0 to VDD with the given step and returns
// input and output samples.
func (v *InverterVTC) Sweep(step float64) (in, out []float64, err error) {
	res, err := spice.DCSweep(v.B.C, v.Vin, 0, v.B.P.VDD, step, nil)
	if err != nil {
		return nil, nil, err
	}
	return res.Values, res.V(v.Out), nil
}
