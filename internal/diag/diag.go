// Package diag implements fault-dictionary diagnosis for OBD defects —
// the "diagnose" leg of the concurrent test/diagnose/repair loop the paper
// motivates. A dictionary records, for every OBD fault, the full response
// signature of a two-pattern test set (which tests fail, and on which
// primary outputs); an observed failing response is then matched back to
// the candidate defect locations, exactly or by nearest signature when the
// observation is noisy.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// Response is the pass/fail observation of a test set: Response[i][j] is
// true when test i fails on primary output j (outputs in sorted order).
type Response [][]bool

// Key serializes a response for map keys and equality.
func (r Response) Key() string {
	var b strings.Builder
	for _, row := range r {
		for _, f := range row {
			if f {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Distance returns the Hamming distance between two responses of the same
// shape (number of differing pass/fail bits).
func (r Response) Distance(o Response) int {
	d := 0
	for i := range r {
		for j := range r[i] {
			if r[i][j] != o[i][j] {
				d++
			}
		}
	}
	return d
}

// AnyFail reports whether any bit fails.
func (r Response) AnyFail() bool {
	for _, row := range r {
		for _, f := range row {
			if f {
				return true
			}
		}
	}
	return false
}

// Dictionary is a full-response fault dictionary.
type Dictionary struct {
	Circuit *logic.Circuit
	Tests   []atpg.TwoPattern
	Faults  []fault.OBD

	pos        []string
	signatures []Response
	byKey      map[string][]int // signature key -> fault indices
}

// SimulateResponse computes the response of one OBD fault to the test set
// under the gross-delay model.
func SimulateResponse(c *logic.Circuit, f fault.OBD, tests []atpg.TwoPattern) Response {
	pos := sortedOutputs(c)
	resp := make(Response, len(tests))
	for i, tp := range tests {
		resp[i] = make([]bool, len(pos))
		g1 := c.Eval(tp.V1, nil)
		g2 := c.Eval(tp.V2, nil)
		lv1 := make([]logic.Value, len(f.Gate.Inputs))
		lv2 := make([]logic.Value, len(f.Gate.Inputs))
		for k, in := range f.Gate.Inputs {
			lv1[k], lv2[k] = g1[in], g2[in]
		}
		known := true
		for _, v := range append(append([]logic.Value{}, lv1...), lv2...) {
			if !v.IsKnown() {
				known = false
			}
		}
		if !known || !f.Excited(lv1, lv2) {
			continue
		}
		site := f.Gate.Output
		faulty := c.Eval(tp.V2, map[string]logic.Value{site: g1[site]})
		for j, po := range pos {
			a, b := g2[po], faulty[po]
			if a.IsKnown() && b.IsKnown() && a != b {
				resp[i][j] = true
			}
		}
	}
	return resp
}

func sortedOutputs(c *logic.Circuit) []string {
	pos := append([]string(nil), c.Outputs...)
	sort.Strings(pos)
	return pos
}

// Build simulates every fault against the test set and indexes the
// signatures.
func Build(c *logic.Circuit, faults []fault.OBD, tests []atpg.TwoPattern) *Dictionary {
	d := &Dictionary{
		Circuit: c, Tests: tests, Faults: faults,
		pos:   sortedOutputs(c),
		byKey: make(map[string][]int),
	}
	d.signatures = make([]Response, len(faults))
	for i, f := range faults {
		r := SimulateResponse(c, f, tests)
		d.signatures[i] = r
		d.byKey[r.Key()] = append(d.byKey[r.Key()], i)
	}
	return d
}

// Signature returns fault i's stored response.
func (d *Dictionary) Signature(i int) Response { return d.signatures[i] }

// Classes partitions the DETECTED faults into indistinguishability classes
// (faults sharing a signature). Undetected faults (all-pass signature) are
// excluded.
func (d *Dictionary) Classes() [][]int {
	var out [][]int
	keys := make([]string, 0, len(d.byKey))
	for k := range d.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idxs := d.byKey[k]
		if !d.signatures[idxs[0]].AnyFail() {
			continue
		}
		out = append(out, idxs)
	}
	return out
}

// UniquelyDiagnosable returns how many detected faults have a signature no
// other fault shares.
func (d *Dictionary) UniquelyDiagnosable() int {
	n := 0
	for _, cl := range d.Classes() {
		if len(cl) == 1 {
			n++
		}
	}
	return n
}

// Diagnose matches an observed response: an exact signature hit returns
// that class with distance 0; otherwise the class(es) at minimum Hamming
// distance are returned. An all-pass observation returns no candidates.
func (d *Dictionary) Diagnose(obs Response) (candidates []int, distance int, err error) {
	if len(obs) != len(d.Tests) {
		return nil, 0, fmt.Errorf("diag: observation has %d rows, want %d", len(obs), len(d.Tests))
	}
	for i := range obs {
		if len(obs[i]) != len(d.pos) {
			return nil, 0, fmt.Errorf("diag: observation row %d has %d outputs, want %d", i, len(obs[i]), len(d.pos))
		}
	}
	if !obs.AnyFail() {
		return nil, 0, nil
	}
	if idxs, ok := d.byKey[obs.Key()]; ok && d.signatures[idxs[0]].AnyFail() {
		return append([]int(nil), idxs...), 0, nil
	}
	best := -1
	for i, sig := range d.signatures {
		if !sig.AnyFail() {
			continue
		}
		dist := sig.Distance(obs)
		switch {
		case best < 0 || dist < best:
			best = dist
			candidates = candidates[:0]
			candidates = append(candidates, i)
		case dist == best:
			candidates = append(candidates, i)
		}
	}
	return candidates, best, nil
}
