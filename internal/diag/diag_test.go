package diag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

func buildFullAdderDict(t *testing.T) *Dictionary {
	t.Helper()
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	ts := must(atpg.GenerateOBDTests(c, faults, nil))
	return Build(c, faults, ts.Tests)
}

func TestSelfDiagnosis(t *testing.T) {
	d := buildFullAdderDict(t)
	for i, f := range d.Faults {
		sig := d.Signature(i)
		if !sig.AnyFail() {
			continue // undetected fault: nothing to diagnose
		}
		cands, dist, err := d.Diagnose(sig)
		if err != nil {
			t.Fatal(err)
		}
		if dist != 0 {
			t.Fatalf("%s: own signature at distance %d", f, dist)
		}
		found := false
		for _, ci := range cands {
			if ci == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not in its own diagnosis class", f)
		}
	}
}

func TestClassesPartitionDetected(t *testing.T) {
	d := buildFullAdderDict(t)
	seen := make(map[int]bool)
	for _, cl := range d.Classes() {
		for _, i := range cl {
			if seen[i] {
				t.Fatalf("fault %d in two classes", i)
			}
			seen[i] = true
			if !d.Signature(i).AnyFail() {
				t.Fatalf("undetected fault %d inside a class", i)
			}
		}
	}
	// Every detected fault must be covered by some class.
	for i := range d.Faults {
		if d.Signature(i).AnyFail() && !seen[i] {
			t.Fatalf("detected fault %d missing from classes", i)
		}
	}
	if u := d.UniquelyDiagnosable(); u == 0 {
		t.Fatal("no uniquely diagnosable faults at all")
	}
}

func TestDiagnoseValidation(t *testing.T) {
	d := buildFullAdderDict(t)
	if _, _, err := d.Diagnose(Response{}); err == nil {
		t.Fatal("short observation accepted")
	}
	bad := make(Response, len(d.Tests))
	for i := range bad {
		bad[i] = []bool{true, true, true} // wrong PO count (full adder has 1)
	}
	if _, _, err := d.Diagnose(bad); err == nil {
		t.Fatal("wrong-width observation accepted")
	}
	// All-pass observation: no candidates, no error.
	pass := make(Response, len(d.Tests))
	for i := range pass {
		pass[i] = make([]bool, 1)
	}
	cands, _, err := d.Diagnose(pass)
	if err != nil || len(cands) != 0 {
		t.Fatalf("all-pass diagnosis: %v %v", cands, err)
	}
}

func TestNoisyDiagnosisNearest(t *testing.T) {
	d := buildFullAdderDict(t)
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := range d.Faults {
		sig := d.Signature(i)
		if !sig.AnyFail() {
			continue
		}
		// Flip one random bit of the observation.
		noisy := make(Response, len(sig))
		for r := range sig {
			noisy[r] = append([]bool(nil), sig[r]...)
		}
		ri := rng.Intn(len(noisy))
		bi := rng.Intn(len(noisy[ri]))
		noisy[ri][bi] = !noisy[ri][bi]
		if !noisy.AnyFail() {
			continue
		}
		cands, dist, err := d.Diagnose(noisy)
		if err != nil {
			t.Fatal(err)
		}
		if dist > 1 {
			t.Fatalf("fault %d: nearest distance %d after single flip", i, dist)
		}
		if len(cands) == 0 {
			t.Fatalf("fault %d: no candidates for noisy observation", i)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no noisy cases exercised")
	}
}

func TestResponseHelpers(t *testing.T) {
	a := Response{{true, false}, {false, false}}
	b := Response{{false, false}, {false, true}}
	if a.Distance(b) != 2 {
		t.Fatalf("distance %d", a.Distance(b))
	}
	if a.Key() == b.Key() {
		t.Fatal("distinct responses share a key")
	}
	if !a.AnyFail() {
		t.Fatal("AnyFail broken")
	}
	if (Response{{false}}).AnyFail() {
		t.Fatal("AnyFail false positive")
	}
}

// TestQuickDictionaryConsistency: on random circuits with random tests,
// the stored signature equals a fresh simulation, and exact diagnosis of
// any fault's signature returns a class containing it.
func TestQuickDictionaryConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(3), Gates: 3 + rng.Intn(12), Primitive: true})
		faults, _ := fault.OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		mk := func() atpg.Pattern {
			p := make(atpg.Pattern, len(c.Inputs))
			for _, in := range c.Inputs {
				p[in] = logic.FromBool(rng.Intn(2) == 1)
			}
			return p
		}
		tests := make([]atpg.TwoPattern, 4+rng.Intn(8))
		for i := range tests {
			tests[i] = atpg.TwoPattern{V1: mk(), V2: mk()}
		}
		d := Build(c, faults, tests)
		i := rng.Intn(len(faults))
		fresh := SimulateResponse(c, faults[i], tests)
		if fresh.Key() != d.Signature(i).Key() {
			return false
		}
		if !fresh.AnyFail() {
			return true
		}
		cands, dist, err := d.Diagnose(fresh)
		if err != nil || dist != 0 {
			return false
		}
		for _, ci := range cands {
			if ci == i {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// must unwraps a (value, error) return in tests, panicking on error; the
// panic fails the calling test with the full error in the log.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
