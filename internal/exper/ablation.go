package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// measureNAND runs one sequence on a harness and returns the measurement.
func measureNAND(h *cells.NANDHarness, seq string) (waveform.DelayMeasurement, error) {
	pr, err := fault.ParsePair(seq)
	if err != nil {
		return waveform.DelayMeasurement{}, err
	}
	h.Apply(pr, TSwitch, TEdge)
	res, err := h.Run(TStop, TStep)
	if err != nil {
		return waveform.DelayMeasurement{}, err
	}
	return h.Measure(res, pr, TSwitch, TEdge)
}

// AblationNetwork is a two-knob factor analysis of the breakdown network
// at a fixed mid progression point (NMOS MBD2, falling sequence): the
// Table 1 progression moves Isat up AND R down together; here each knob is
// moved alone. Both contribute — the junction sets the conduction knee,
// the series resistance limits the current beyond it — which is why the
// paper's model needs both elements.
type AblationNetwork struct {
	FaultFree waveform.DelayMeasurement // (Isat_ff, R_ff)
	Full      waveform.DelayMeasurement // (Isat_mbd2, R_mbd2)
	IsatOnly  waveform.DelayMeasurement // (Isat_mbd2, R_ff)
	ROnly     waveform.DelayMeasurement // (Isat_ff, R_mbd2)
}

// RunAblationNetwork runs the three variants.
func RunAblationNetwork(p *spice.Process) (*AblationNetwork, error) {
	out := &AblationNetwork{}
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	seq := "(01,11)"
	run := func(par obd.Params) (waveform.DelayMeasurement, error) {
		inj.SetParams(par)
		return measureNAND(h, seq)
	}
	var err error
	ff := obd.StageParams(spice.NMOS, obd.FaultFree)
	mbd2 := obd.StageParams(spice.NMOS, obd.MBD2)
	if out.FaultFree, err = run(ff); err != nil {
		return nil, err
	}
	if out.Full, err = run(mbd2); err != nil {
		return nil, err
	}
	if out.IsatOnly, err = run(obd.Params{Isat: mbd2.Isat, R: ff.R}); err != nil {
		return nil, err
	}
	if out.ROnly, err = run(obd.Params{Isat: ff.Isat, R: mbd2.R}); err != nil {
		return nil, err
	}
	return out, nil
}

// Format prints the variant delays.
func (a *AblationNetwork) Format() string {
	var b strings.Builder
	b.WriteString("Ablation: breakdown-network factor analysis (NMOS MBD2, seq (01,11))\n")
	fmt.Fprintf(&b, "  fault-free (Isat_ff, R_ff):      %s\n", Table1Cell{Meas: a.FaultFree}.EntryString())
	fmt.Fprintf(&b, "  full MBD2 (Isat_mbd2, R_mbd2):   %s\n", Table1Cell{Meas: a.Full}.EntryString())
	fmt.Fprintf(&b, "  Isat knob only (Isat_mbd2, R_ff): %s\n", Table1Cell{Meas: a.IsatOnly}.EntryString())
	fmt.Fprintf(&b, "  R knob only (Isat_ff, R_mbd2):   %s\n", Table1Cell{Meas: a.ROnly}.EntryString())
	return b.String()
}

// Check verifies both knobs matter: the full MBD2 network delays at least
// as much as either single knob, and each single knob stays at or above
// the fault-free baseline.
func (a *AblationNetwork) Check() []string {
	var bad []string
	if a.FaultFree.Kind != waveform.TransitionOK || a.Full.Kind != waveform.TransitionOK {
		return []string{"baseline measurements stuck"}
	}
	if a.Full.Delay <= a.FaultFree.Delay {
		bad = append(bad, "MBD2 network shows no delay over fault-free")
	}
	for _, v := range []struct {
		name string
		m    waveform.DelayMeasurement
	}{{"Isat-only", a.IsatOnly}, {"R-only", a.ROnly}} {
		if v.m.Kind != waveform.TransitionOK {
			bad = append(bad, v.name+" variant stuck")
			continue
		}
		if v.m.Delay < 0.98*a.FaultFree.Delay {
			bad = append(bad, v.name+" below fault-free baseline")
		}
		if v.m.Delay > 1.02*a.Full.Delay {
			bad = append(bad, v.name+" exceeds the full network delay")
		}
	}
	return bad
}

// AblationDriver reproduces the paper's Fig. 5 point: the defective gate
// must be driven by real gates, because an ideal voltage source
// misrepresents the defect — the finite driver current both limits the
// injected junction current and lets the leakage degrade the gate's input
// level. In this harness the ideal source's unlimited current floods the
// output node through the drain junction and flips the observation from a
// graded delay to a stuck output; in the prior static-analysis work the
// paper cites, the same modeling shortcut hid the timing effect entirely.
// Either way, the conclusion drawn from an ideal-source set-up does not
// transfer to embedded logic.
type AblationDriver struct {
	GateDriven  struct{ FaultFree, MBD2 waveform.DelayMeasurement }
	IdealDriven struct{ FaultFree, MBD2 waveform.DelayMeasurement }
}

// RunAblationDriver measures the MBD2/fault-free delay ratio under both
// driving styles.
func RunAblationDriver(p *spice.Process) (*AblationDriver, error) {
	out := &AblationDriver{}
	seq := "(01,11)"
	for _, chain := range []int{2, 0} {
		h := cells.NewNANDHarness(p, chain)
		inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
		ff, err := measureNAND(h, seq)
		if err != nil {
			return nil, err
		}
		inj.SetStage(obd.MBD2)
		m, err := measureNAND(h, seq)
		if err != nil {
			return nil, err
		}
		if chain == 2 {
			out.GateDriven.FaultFree, out.GateDriven.MBD2 = ff, m
		} else {
			out.IdealDriven.FaultFree, out.IdealDriven.MBD2 = ff, m
		}
	}
	return out, nil
}

// Ratios returns the MBD2/fault-free delay ratios (gate-driven,
// ideal-driven).
func (a *AblationDriver) Ratios() (gate, ideal float64) {
	gate = a.GateDriven.MBD2.Delay / a.GateDriven.FaultFree.Delay
	ideal = a.IdealDriven.MBD2.Delay / a.IdealDriven.FaultFree.Delay
	return gate, ideal
}

// Format prints both ratios.
func (a *AblationDriver) Format() string {
	g, i := a.Ratios()
	var b strings.Builder
	b.WriteString("Ablation: gate-driven vs ideal-source-driven DUT (NMOS MBD2)\n")
	fmt.Fprintf(&b, "  gate-driven:  %s -> %s (ratio %.2f)\n",
		Table1Cell{Meas: a.GateDriven.FaultFree}.EntryString(),
		Table1Cell{Meas: a.GateDriven.MBD2}.EntryString(), g)
	fmt.Fprintf(&b, "  ideal-driven: %s -> %s (ratio %.2f)\n",
		Table1Cell{Meas: a.IdealDriven.FaultFree}.EntryString(),
		Table1Cell{Meas: a.IdealDriven.MBD2}.EntryString(), i)
	return b.String()
}

// Check verifies the gate-driven set-up shows a graded, measurable delay
// while the ideal-source set-up reports something qualitatively different
// (a stuck output or a ratio differing by more than 20%) — i.e. the
// driving style is load-bearing for the model, the paper's Fig. 5 point.
func (a *AblationDriver) Check() []string {
	var bad []string
	if a.GateDriven.FaultFree.Kind != waveform.TransitionOK || a.GateDriven.MBD2.Kind != waveform.TransitionOK {
		return []string{"gate-driven measurements stuck"}
	}
	g, i := a.Ratios()
	if g < 1.1 {
		bad = append(bad, fmt.Sprintf("gate-driven MBD2 ratio %.2f shows no graded delay", g))
	}
	if a.IdealDriven.MBD2.Kind != waveform.TransitionOK {
		return bad // qualitative divergence: ideal source turns the defect stuck
	}
	if diff := g - i; diff < 0.2 && diff > -0.2 {
		bad = append(bad, fmt.Sprintf("ideal-driven ratio %.2f indistinguishable from gate-driven %.2f", i, g))
	}
	return bad
}

// AblationInjection demonstrates where OBD and EM diverge below gate
// level (the paper's Section 5 caveat): under a FALLING output sequence,
// a PMOS defect is outside both models' series-parallel excitation sets,
// yet the OBD network still injects current (through the conducting PMOS
// defect's junctions into the input net and from the output node), while
// a resistive EM defect in a transistor that carries no current does
// nothing.
type AblationInjection struct {
	FaultFree waveform.DelayMeasurement
	OBD       waveform.DelayMeasurement // PMOS@a OBD at MBD1, seq (01,11)
	EM        waveform.DelayMeasurement // PMOS@a EM 1kΩ, seq (01,11)
}

// RunAblationInjection runs the three measurements.
func RunAblationInjection(p *spice.Process) (*AblationInjection, error) {
	out := &AblationInjection{}
	seq := "(01,11)" // falling output: outside the PMOS excitation sets
	hFF := cells.NewNANDHarness(p, 2)
	var err error
	if out.FaultFree, err = measureNAND(hFF, seq); err != nil {
		return nil, err
	}
	hOBD := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(hOBD.B.C, "f", hOBD.FETFor(fault.PullUp, 0), obd.FaultFree)
	inj.SetStage(obd.MBD1)
	if out.OBD, err = measureNAND(hOBD, seq); err != nil {
		return nil, err
	}
	hEM := cells.NewNANDHarnessEM(p, 2, fault.PullUp, 0, 1000)
	if out.EM, err = measureNAND(hEM, seq); err != nil {
		return nil, err
	}
	return out, nil
}

// Shifts returns the absolute delay shifts of the OBD and EM variants
// against fault-free.
func (a *AblationInjection) Shifts() (obdShift, emShift float64) {
	return a.OBD.Delay - a.FaultFree.Delay, a.EM.Delay - a.FaultFree.Delay
}

// Format prints the three delays and shifts.
func (a *AblationInjection) Format() string {
	o, e := a.Shifts()
	var b strings.Builder
	b.WriteString("Ablation: current injection beyond the series-parallel rule\n")
	b.WriteString("  (PMOS@a defect, FALLING sequence (01,11) — outside both excitation sets)\n")
	fmt.Fprintf(&b, "  fault-free: %s\n", Table1Cell{Meas: a.FaultFree}.EntryString())
	fmt.Fprintf(&b, "  OBD MBD1:   %s (shift %+.1f ps)\n", Table1Cell{Meas: a.OBD}.EntryString(), o*1e12)
	fmt.Fprintf(&b, "  EM 1kΩ:     %s (shift %+.1f ps)\n", Table1Cell{Meas: a.EM}.EntryString(), e*1e12)
	return b.String()
}

// Check verifies the divergence: the OBD injection perturbs the timing
// more than the EM defect does under the non-exciting sequence.
func (a *AblationInjection) Check() []string {
	var bad []string
	if a.FaultFree.Kind != waveform.TransitionOK || a.OBD.Kind != waveform.TransitionOK || a.EM.Kind != waveform.TransitionOK {
		return []string{"injection ablation has stuck measurements"}
	}
	o, e := a.Shifts()
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(o) <= abs(e) {
		bad = append(bad, fmt.Sprintf("OBD shift %.1f ps not above EM shift %.1f ps", o*1e12, e*1e12))
	}
	return bad
}
