package exper

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// ExcitationSets reproduces the Section 4.1 (NAND) and Section 5 (NOR)
// necessary-and-sufficient input-sequence derivations, plus the AOI21
// extension the paper's "complex gates" remark points at.
type ExcitationSets struct {
	Tables map[string]map[string][]fault.Pair // gate -> fault -> pairs
	Covers map[string][]fault.Pair            // gate -> exact minimum cover
}

// RunExcitationSets computes the tables and minimal covers.
func RunExcitationSets() (*ExcitationSets, error) {
	out := &ExcitationSets{
		Tables: make(map[string]map[string][]fault.Pair),
		Covers: make(map[string][]fault.Pair),
	}
	for _, tc := range []struct {
		name  string
		typ   logic.GateType
		arity int
	}{
		{"inv", logic.Inv, 1},
		{"nand2", logic.Nand, 2},
		{"nor2", logic.Nor, 2},
		{"nand3", logic.Nand, 3},
		{"aoi21", logic.Aoi21, 3},
	} {
		table, err := fault.GatePairTable(tc.typ, tc.arity)
		if err != nil {
			return nil, err
		}
		out.Tables[tc.name] = table
		cover, err := fault.MinimalPairCover(tc.typ, tc.arity)
		if err != nil {
			return nil, err
		}
		out.Covers[tc.name] = cover
	}
	return out, nil
}

// Format renders per-gate fault tables and covers.
func (e *ExcitationSets) Format() string {
	var b strings.Builder
	b.WriteString("Sections 4.1 & 5: OBD excitation conditions per gate type\n")
	var gates []string
	for g := range e.Tables {
		gates = append(gates, g)
	}
	sort.Strings(gates)
	for _, g := range gates {
		fmt.Fprintf(&b, "%s:\n", g)
		var fs []string
		for f := range e.Tables[g] {
			fs = append(fs, f)
		}
		sort.Strings(fs)
		for _, f := range fs {
			var ps []string
			for _, p := range e.Tables[g][f] {
				ps = append(ps, p.String())
			}
			sort.Strings(ps)
			fmt.Fprintf(&b, "  %-14s %s\n", f, strings.Join(ps, " "))
		}
		var cs []string
		for _, p := range e.Covers[g] {
			cs = append(cs, p.String())
		}
		fmt.Fprintf(&b, "  minimum cover (%d): %s\n", len(cs), strings.Join(cs, " "))
	}
	return b.String()
}

// Check verifies the exact statements the paper makes for NAND and NOR.
func (e *ExcitationSets) Check() []string {
	var bad []string
	expect := func(gate, flt string, want ...string) {
		got := map[string]bool{}
		for _, p := range e.Tables[gate][flt] {
			got[p.String()] = true
		}
		if len(got) != len(want) {
			bad = append(bad, fmt.Sprintf("%s %s: %d pairs, want %d", gate, flt, len(got), len(want)))
			return
		}
		for _, w := range want {
			if !got[w] {
				bad = append(bad, fmt.Sprintf("%s %s missing %s", gate, flt, w))
			}
		}
	}
	expect("nand2", "nand/NMOS@a", "(00,11)", "(01,11)", "(10,11)")
	expect("nand2", "nand/NMOS@b", "(00,11)", "(01,11)", "(10,11)")
	expect("nand2", "nand/PMOS@a", "(11,01)")
	expect("nand2", "nand/PMOS@b", "(11,10)")
	expect("nor2", "nor/PMOS@a", "(01,00)", "(10,00)", "(11,00)")
	expect("nor2", "nor/PMOS@b", "(01,00)", "(10,00)", "(11,00)")
	expect("nor2", "nor/NMOS@a", "(00,10)")
	expect("nor2", "nor/NMOS@b", "(00,01)")
	if n := len(e.Covers["nand2"]); n != 3 {
		bad = append(bad, fmt.Sprintf("nand2 cover size %d, want 3", n))
	}
	if n := len(e.Covers["nor2"]); n != 3 {
		bad = append(bad, fmt.Sprintf("nor2 cover size %d, want 3", n))
	}
	return bad
}

// FullAdderCounts reproduces the Section 4.3 census on the reconstructed
// Fig. 8 circuit: OBD locations in the NANDs, testable fault count, the
// exhaustive input-transition universe, and the size of a small covering
// test set.
type FullAdderCounts struct {
	Circuit         *logic.Circuit
	NANDLocations   int // paper: 56
	TotalLocations  int // including the 11 inverters
	TestableNAND    int // paper: 32
	TestableTotal   int
	TransitionPairs int // ordered distinct vector pairs; paper speaks of 72
	CoverSize       int // paper: 18
	Cover           []atpg.TwoPattern
	ATPGDetected    int
	ATPGUntestable  int
	ATPGAborted     int
	CollapsedTotal  int // local-equivalence classes over the whole universe
}

// RunFullAdderCounts performs the exhaustive analysis and the ATPG run.
func RunFullAdderCounts() (*FullAdderCounts, error) {
	lc := cells.FullAdderSumLogic()
	faults, skipped := fault.OBDUniverse(lc)
	if len(skipped) != 0 {
		return nil, fmt.Errorf("exper: unexpected composite gates in full adder")
	}
	out := &FullAdderCounts{Circuit: lc, TotalLocations: len(faults)}
	var nandIdx []int
	for i, f := range faults {
		if f.Gate.Type == logic.Nand {
			out.NANDLocations++
			nandIdx = append(nandIdx, i)
		}
	}
	out.CollapsedTotal = len(fault.CollapseOBD(faults))
	ex, err := atpg.AnalyzeExhaustive(lc, faults)
	if err != nil {
		return nil, err
	}
	out.TransitionPairs = len(ex.Pairs)
	out.TestableTotal = ex.TestableCount()
	for _, i := range nandIdx {
		if ex.Testable[i] {
			out.TestableNAND++
		}
	}
	out.Cover = ex.GreedyCover()
	out.CoverSize = len(out.Cover)
	ts, err := atpg.GenerateOBDTests(lc, faults, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range ts.Results {
		switch r.Status {
		case atpg.Detected:
			out.ATPGDetected++
		case atpg.Untestable:
			out.ATPGUntestable++
		default:
			out.ATPGAborted++
		}
	}
	return out, nil
}

// Format prints the census beside the paper's numbers.
func (f *FullAdderCounts) Format() string {
	var b strings.Builder
	b.WriteString("Section 4.3: full-adder sum OBD census (paper values in brackets)\n")
	fmt.Fprintf(&b, "  OBD locations in the 14 NANDs:     %d  [56]\n", f.NANDLocations)
	fmt.Fprintf(&b, "  OBD locations incl. inverters:     %d\n", f.TotalLocations)
	fmt.Fprintf(&b, "  local-equivalence classes:         %d (series stacks collapse)\n", f.CollapsedTotal)
	fmt.Fprintf(&b, "  testable NAND OBD faults:          %d  [32]\n", f.TestableNAND)
	fmt.Fprintf(&b, "  testable OBD faults (all gates):   %d\n", f.TestableTotal)
	fmt.Fprintf(&b, "  ordered input transitions:         %d  [72]\n", f.TransitionPairs)
	fmt.Fprintf(&b, "  covering transition set (greedy):  %d  [18]\n", f.CoverSize)
	fmt.Fprintf(&b, "  ATPG: %d detected, %d untestable, %d aborted\n",
		f.ATPGDetected, f.ATPGUntestable, f.ATPGAborted)
	var ps []string
	for _, tp := range f.Cover {
		ps = append(ps, tp.StringFor(f.Circuit))
	}
	fmt.Fprintf(&b, "  cover: %s\n", strings.Join(ps, " "))
	return b.String()
}

// Check verifies the structural count (exact) and the qualitative claims:
// redundancy makes a substantial fraction of faults untestable, and a
// small transition subset covers everything testable.
func (f *FullAdderCounts) Check() []string {
	var bad []string
	if f.NANDLocations != 56 {
		bad = append(bad, fmt.Sprintf("NAND OBD locations %d, want 56", f.NANDLocations))
	}
	if f.TestableNAND >= f.NANDLocations {
		bad = append(bad, "expected some untestable faults from the intentional redundancy")
	}
	if f.TestableNAND < f.NANDLocations/3 {
		bad = append(bad, fmt.Sprintf("testable NAND faults %d suspiciously low", f.TestableNAND))
	}
	if f.CoverSize > f.TransitionPairs/2 {
		bad = append(bad, fmt.Sprintf("cover %d is not small against %d transitions", f.CoverSize, f.TransitionPairs))
	}
	if f.ATPGDetected != f.TestableTotal {
		bad = append(bad, fmt.Sprintf("ATPG detected %d but exhaustive testable %d", f.ATPGDetected, f.TestableTotal))
	}
	if f.ATPGAborted != 0 {
		bad = append(bad, fmt.Sprintf("%d ATPG aborts", f.ATPGAborted))
	}
	// The 14 NAND stacks collapse their two series NMOS sites each, the
	// inverters don't collapse: 78 - 14 = 64 classes.
	if f.CollapsedTotal != f.TotalLocations-14 {
		bad = append(bad, fmt.Sprintf("collapse classes %d, want %d", f.CollapsedTotal, f.TotalLocations-14))
	}
	return bad
}

// CoverageGap quantifies the paper's central testing claim on a circuit:
// complete stuck-at and transition test sets graded against the OBD fault
// universe, versus the OBD-aware generator.
type CoverageGap struct {
	Name            string
	OBDUniverse     int
	OBDTestable     int
	TransitionCov   atpg.Coverage // transition test set vs OBD universe
	StuckAtCov      atpg.Coverage // stuck-at patterns (paired as v1=v2-neighbours) vs OBD universe
	OBDCov          atpg.Coverage // OBD ATPG vs OBD universe
	TransitionTests int
	OBDTests        int
}

// RunCoverageGap runs the comparison for one gate-level circuit.
func RunCoverageGap(name string, lc *logic.Circuit) (*CoverageGap, error) {
	obdFaults, _ := fault.OBDUniverse(lc)
	ex, err := atpg.AnalyzeExhaustive(lc, obdFaults)
	if err != nil {
		return nil, err
	}
	out := &CoverageGap{Name: name, OBDUniverse: len(obdFaults), OBDTestable: ex.TestableCount()}

	trSet, err := atpg.GenerateTransitionTests(lc, fault.TransitionUniverse(lc), nil)
	if err != nil {
		return nil, err
	}
	out.TransitionTests = len(trSet.Tests)
	if out.TransitionCov, err = atpg.GradeOBDParallel(lc, obdFaults, trSet.Tests); err != nil {
		return nil, err
	}

	// A stuck-at test set has no transition structure at all; pair each
	// pattern with its predecessor to form vectors the way a scan chain
	// would stream them.
	saSet, err := atpg.GenerateStuckAtTests(lc, fault.StuckAtUniverse(lc), nil)
	if err != nil {
		return nil, err
	}
	var saPairs []atpg.TwoPattern
	for i := 1; i < len(saSet.Tests); i++ {
		saPairs = append(saPairs, atpg.TwoPattern{V1: saSet.Tests[i-1], V2: saSet.Tests[i]})
	}
	if out.StuckAtCov, err = atpg.GradeOBDParallel(lc, obdFaults, saPairs); err != nil {
		return nil, err
	}

	obdSet, err := atpg.GenerateOBDTests(lc, obdFaults, nil)
	if err != nil {
		return nil, err
	}
	out.OBDTests = len(obdSet.Tests)
	out.OBDCov = obdSet.Coverage
	return out, nil
}

// Format prints the comparison.
func (g *CoverageGap) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coverage of the OBD fault universe on %q (%d faults, %d testable):\n",
		g.Name, g.OBDUniverse, g.OBDTestable)
	fmt.Fprintf(&b, "  stuck-at test set (chained):   %s\n", g.StuckAtCov)
	fmt.Fprintf(&b, "  transition test set (%2d vec): %s\n", g.TransitionTests, g.TransitionCov)
	fmt.Fprintf(&b, "  OBD-aware ATPG     (%2d vec): %s\n", g.OBDTests, g.OBDCov)
	return b.String()
}

// Check verifies the ordering the paper implies: OBD-aware ATPG reaches
// every testable fault; the traditional sets fall short.
func (g *CoverageGap) Check() []string {
	var bad []string
	if g.OBDCov.Detected != g.OBDTestable {
		bad = append(bad, fmt.Sprintf("OBD ATPG %d < testable %d", g.OBDCov.Detected, g.OBDTestable))
	}
	if g.TransitionCov.Detected >= g.OBDCov.Detected {
		bad = append(bad, "transition tests unexpectedly cover all OBD faults")
	}
	if g.StuckAtCov.Detected > g.TransitionCov.Detected {
		bad = append(bad, "stuck-at chaining outperformed transition tests (unexpected)")
	}
	return bad
}

// EMComparison reproduces the Section 5 statement: intra-gate EM test
// sequences coincide with OBD's for NAND/NOR at the series-parallel
// abstraction.
type EMComparison struct {
	GateResults map[string]bool // gate -> sets identical
}

// RunEMComparison compares EM and OBD excitation pair sets per gate type.
func RunEMComparison() (*EMComparison, error) {
	out := &EMComparison{GateResults: make(map[string]bool)}
	for _, tc := range []struct {
		name  string
		typ   logic.GateType
		arity int
	}{
		{"nand2", logic.Nand, 2},
		{"nor2", logic.Nor, 2},
		{"nand3", logic.Nand, 3},
		{"aoi21", logic.Aoi21, 3},
	} {
		faults, err := fault.GateOBDFaults(tc.typ, tc.arity)
		if err != nil {
			return nil, err
		}
		same := true
		for _, f := range faults {
			obdPairs := f.ExcitationPairs()
			em := fault.EM(f)
			for _, p := range obdPairs {
				if !em.Excited(p.V1, p.V2) {
					same = false
				}
			}
		}
		out.GateResults[tc.name] = same
	}
	return out, nil
}

// Format prints the per-gate verdicts.
func (e *EMComparison) Format() string {
	var b strings.Builder
	b.WriteString("Section 5: EM vs OBD excitation sets at the series-parallel level\n")
	var gs []string
	for g := range e.GateResults {
		gs = append(gs, g)
	}
	sort.Strings(gs)
	for _, g := range gs {
		fmt.Fprintf(&b, "  %-7s identical=%v\n", g, e.GateResults[g])
	}
	b.WriteString("  (the models diverge below gate level: see the injection ablation)\n")
	return b.String()
}

// Check verifies the NAND/NOR coincidence the paper states.
func (e *EMComparison) Check() []string {
	var bad []string
	for _, g := range []string{"nand2", "nor2"} {
		if !e.GateResults[g] {
			bad = append(bad, fmt.Sprintf("%s: EM and OBD sets differ, paper says identical", g))
		}
	}
	return bad
}
