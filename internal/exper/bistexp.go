package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/bist"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// BISTRow is one (circuit, stream length) measurement.
type BISTRow struct {
	Name          string
	Cycles        int
	Universe      int
	Testable      int // exhaustively testable (the ceiling)
	Detected      int // faults with at least one detecting launch in the stream
	Aliased       int // detected per-cycle but masked in the MISR signature
	Deterministic int // size of the deterministic ATPG set for comparison
}

// BIST evaluates the paper's closing suggestion — built-in self test for
// OBD — quantitatively: an LFSR test-per-clock stream with MISR signature
// compaction, graded against the OBD fault universe. Coverage climbs with
// stream length toward the exhaustive-testability ceiling, and signature
// aliasing stays negligible, which is what makes autonomous in-field
// testing of these defects practical.
type BIST struct {
	Rows []BISTRow
}

// RunBIST runs LFSR streams of increasing length on the benchmark suite.
func RunBIST() (*BIST, error) {
	out := &BIST{}
	for _, lc := range []*logic.Circuit{
		cells.FullAdderSumLogic(),
		logic.C17(),
		logic.Mux41(),
	} {
		faults, _ := fault.OBDUniverse(lc)
		ex, err := atpg.AnalyzeExhaustive(lc, faults)
		if err != nil {
			return nil, err
		}
		det, err := atpg.GenerateOBDTests(lc, faults, nil)
		if err != nil {
			return nil, err
		}
		for _, cycles := range []int{16, 64, 256} {
			s, err := bist.NewSession(lc, 0xACE1, cycles)
			if err != nil {
				return nil, err
			}
			golden, err := s.GoldenSignature()
			if err != nil {
				return nil, err
			}
			row := BISTRow{
				Name: lc.Name, Cycles: cycles,
				Universe: len(faults), Testable: ex.TestableCount(),
				Deterministic: len(det.Tests),
			}
			for _, f := range faults {
				res, err := s.RunFault(f, golden)
				if err != nil {
					return nil, err
				}
				if res.DetectedCycles > 0 {
					row.Detected++
					if res.Aliased {
						row.Aliased++
					}
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format prints the coverage-vs-length table.
func (b *BIST) Format() string {
	var sb strings.Builder
	sb.WriteString("BIST: LFSR test-per-clock OBD coverage with MISR compaction\n")
	fmt.Fprintf(&sb, "  %-15s %7s %9s %10s %8s %8s\n", "circuit", "cycles", "testable", "detected", "aliased", "det.set")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "  %-15s %7d %9d %10d %8d %8d\n",
			r.Name, r.Cycles, r.Testable, r.Detected, r.Aliased, r.Deterministic)
	}
	return sb.String()
}

// Check verifies: coverage never decreases with stream length, the longest
// stream reaches at least 90% of the exhaustive-testability ceiling on
// every circuit, and aliasing never exceeds 2% of detections.
func (b *BIST) Check() []string {
	var bad []string
	prev := map[string]int{}
	last := map[string]BISTRow{}
	for _, r := range b.Rows {
		if p, ok := prev[r.Name]; ok && r.Detected < p {
			bad = append(bad, fmt.Sprintf("%s: coverage fell from %d to %d at %d cycles", r.Name, p, r.Detected, r.Cycles))
		}
		prev[r.Name] = r.Detected
		last[r.Name] = r
		if r.Detected > 0 && r.Aliased*50 > r.Detected {
			bad = append(bad, fmt.Sprintf("%s/%d: aliasing %d of %d detections", r.Name, r.Cycles, r.Aliased, r.Detected))
		}
	}
	for _, name := range sortedKeys(last) {
		r := last[name]
		if r.Detected*10 < r.Testable*9 {
			bad = append(bad, fmt.Sprintf("%s: %d-cycle BIST reaches only %d of %d testable", name, r.Cycles, r.Detected, r.Testable))
		}
	}
	return bad
}
