package exper

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// CaptureSweep quantifies the Section 4.2 early-capture requirement on the
// full adder: per-stage delay penalties are characterized on the analog
// Fig. 5 harness, imposed on the defective gate in the event-driven timing
// simulator, and the OBD test set is graded while the capture time sweeps
// past the designed clock period. Later capture means more slack for the
// defect to finish its slow transition — coverage decays, which is exactly
// why concurrent OBD detection needs early capture.
type CaptureSweep struct {
	Stages      []obd.Stage
	Multipliers []float64 // capture time as a multiple of the critical path
	Critical    float64   // designed critical path over the test set (s)
	PenaltyN    map[obd.Stage]float64
	PenaltyP    map[obd.Stage]float64
	StuckN      map[obd.Stage]bool
	StuckP      map[obd.Stage]bool
	Total       int                           // faults with a generated test
	Detected    map[obd.Stage]map[float64]int // stage -> multiplier -> detected
}

// RunCaptureSweep runs the experiment.
func RunCaptureSweep(p *spice.Process) (*CaptureSweep, error) {
	out := &CaptureSweep{
		Stages:      []obd.Stage{obd.MBD1, obd.MBD2, obd.MBD3, obd.HBD},
		Multipliers: []float64{1.0, 1.2, 1.5, 2.0, 3.0},
		PenaltyN:    make(map[obd.Stage]float64),
		PenaltyP:    make(map[obd.Stage]float64),
		StuckN:      make(map[obd.Stage]bool),
		StuckP:      make(map[obd.Stage]bool),
		Detected:    make(map[obd.Stage]map[float64]int),
	}
	if err := out.characterize(p); err != nil {
		return nil, err
	}

	lc := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(lc)
	type testedFault struct {
		f  fault.OBD
		tp atpg.TwoPattern
	}
	var tested []testedFault
	for _, f := range faults {
		tp, st := atpg.GenerateOBDTest(lc, f, nil)
		if st != atpg.Detected {
			continue
		}
		tested = append(tested, testedFault{f: f, tp: *tp})
	}
	out.Total = len(tested)

	// Ground the gate-level delays in the same process card as the analog
	// penalty characterization.
	dm, err := cells.CalibrateDelays(p)
	if err != nil {
		return nil, err
	}
	sim, err := timing.New(lc, dm)
	if err != nil {
		return nil, err
	}
	// Designed critical path: worst settle over the good-machine runs.
	worst := 0.0
	goodTraces := make([]*timing.Trace, len(tested))
	for i, tf := range tested {
		tr, err := sim.Run(tf.tp.V1, tf.tp.V2, nil)
		if err != nil {
			return nil, err
		}
		goodTraces[i] = tr
		if t := tr.SettleTime(); t > worst {
			worst = t
		}
	}
	out.Critical = worst

	for _, st := range out.Stages {
		out.Detected[st] = make(map[float64]int)
		for i, tf := range tested {
			pen := timing.Penalty{GateName: tf.f.Gate.Name, Rising: tf.f.SlowRising()}
			if tf.f.Side == fault.PullDown {
				pen.Extra, pen.Stuck = out.PenaltyN[st], out.StuckN[st]
			} else {
				pen.Extra, pen.Stuck = out.PenaltyP[st], out.StuckP[st]
			}
			faulty, err := sim.Run(tf.tp.V1, tf.tp.V2, []timing.Penalty{pen})
			if err != nil {
				return nil, err
			}
			for _, mult := range out.Multipliers {
				if timing.DetectsAt(lc, goodTraces[i], faulty, out.Critical*mult) {
					out.Detected[st][mult]++
				}
			}
		}
	}
	return out, nil
}

// characterize measures the per-stage added delay of NMOS and PMOS OBD on
// the Fig. 5 harness (NA under (01,11), PB under (11,10)).
func (cs *CaptureSweep) characterize(p *spice.Process) error {
	type target struct {
		side fault.Side
		inp  int
		seq  string
	}
	for _, tg := range []target{
		{fault.PullDown, 0, "(01,11)"},
		{fault.PullUp, 1, "(11,10)"},
	} {
		h := cells.NewNANDHarness(p, 2)
		inj := obd.Inject(h.B.C, "f", h.FETFor(tg.side, tg.inp), obd.FaultFree)
		pr, err := fault.ParsePair(tg.seq)
		if err != nil {
			return err
		}
		measure := func() (waveform.DelayMeasurement, error) {
			h.Apply(pr, TSwitch, TEdge)
			res, err := h.Run(TStop, TStep)
			if err != nil {
				return waveform.DelayMeasurement{}, err
			}
			return h.Measure(res, pr, TSwitch, TEdge)
		}
		ff, err := measure()
		if err != nil {
			return err
		}
		if ff.Kind != waveform.TransitionOK {
			return fmt.Errorf("exper: capture characterization baseline stuck")
		}
		for _, st := range cs.Stages {
			inj.SetStage(st)
			m, err := measure()
			if err != nil {
				return err
			}
			stuck := m.Kind != waveform.TransitionOK
			extra := 0.0
			if !stuck {
				extra = m.Delay - ff.Delay
			}
			if tg.side == fault.PullDown {
				cs.PenaltyN[st], cs.StuckN[st] = extra, stuck
			} else {
				cs.PenaltyP[st], cs.StuckP[st] = extra, stuck
			}
		}
	}
	return nil
}

// Format prints penalties and the coverage-vs-capture matrix.
func (cs *CaptureSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.2: coverage vs capture time (full adder, %d tested faults, critical path %.0f ps)\n",
		cs.Total, cs.Critical*1e12)
	for _, st := range cs.Stages {
		n := fmt.Sprintf("%.0f ps", cs.PenaltyN[st]*1e12)
		if cs.StuckN[st] {
			n = "stuck"
		}
		pp := fmt.Sprintf("%.0f ps", cs.PenaltyP[st]*1e12)
		if cs.StuckP[st] {
			pp = "stuck"
		}
		fmt.Fprintf(&b, "  %-5v penalties: NMOS %-8s PMOS %-8s\n", st, n, pp)
	}
	fmt.Fprintf(&b, "  %-8s", "capture")
	for _, m := range cs.Multipliers {
		fmt.Fprintf(&b, " %6.1fx", m)
	}
	b.WriteString("\n")
	for _, st := range cs.Stages {
		fmt.Fprintf(&b, "  %-8v", st)
		for _, m := range cs.Multipliers {
			fmt.Fprintf(&b, " %3d/%-3d", cs.Detected[st][m], cs.Total)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Check verifies the qualitative Section 4.2 claims: coverage never
// increases with later capture; it never decreases with breakdown
// severity at fixed capture; HBD (stuck transitions) is immune to capture
// slack; and even at the tightest functional capture (1.0× the critical
// path) the early-stage coverage is partial — faults on short paths hide
// inside their slack, the reason the paper calls for early-capture
// mechanisms — while at the loosest capture pre-HBD coverage collapses.
func (cs *CaptureSweep) Check() []string {
	var bad []string
	mults := append([]float64(nil), cs.Multipliers...)
	sort.Float64s(mults)
	for _, st := range cs.Stages {
		prev := cs.Total + 1
		for _, m := range mults {
			d := cs.Detected[st][m]
			if d > prev {
				bad = append(bad, fmt.Sprintf("%v: coverage grew with later capture (%d -> %d)", st, prev, d))
			}
			prev = d
		}
	}
	for _, m := range mults {
		prev := -1
		for _, st := range cs.Stages {
			d := cs.Detected[st][m]
			if d < prev {
				bad = append(bad, fmt.Sprintf("capture %.1fx: coverage fell with severity at %v", m, st))
			}
			prev = d
		}
	}
	for _, m := range mults {
		if cs.Detected[obd.HBD][m] != cs.Total {
			bad = append(bad, fmt.Sprintf("HBD missed faults at %.1fx capture", m))
		}
	}
	tight := cs.Detected[obd.MBD1][mults[0]]
	if tight == 0 {
		bad = append(bad, "tightest capture should detect some MBD1 faults")
	}
	if tight >= cs.Total {
		bad = append(bad, "even the tightest functional capture should miss slack-hidden MBD1 faults")
	}
	last := mults[len(mults)-1]
	if cs.Detected[obd.MBD3][last] >= cs.Detected[obd.MBD3][mults[0]] &&
		cs.Detected[obd.MBD3][mults[0]] > 0 {
		bad = append(bad, "loosest capture should lose pre-HBD coverage")
	}
	return bad
}
