package exper

import (
	"fmt"
	"math/rand"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/timing"
	"gobd/internal/waveform"
)

// ConcurrentStrategy is one online-detection policy evaluated over the
// defect's lifetime.
type ConcurrentStrategy struct {
	Name        string
	DetectHour  float64 // -1 when the defect reaches HBD undetected
	Remaining   float64 // hours left for diagnose/repair before HBD
	TestsIssued int
}

// ConcurrentSim is the paper's title scenario end to end: a single OBD
// defect progresses from SBD to HBD over ~27 hours while the system
// operates; different concurrent-testing policies race to catch it before
// hard breakdown. The defect's per-hour delay penalty comes from the
// analog characterization of the progression trajectory; detection is
// evaluated with the event-driven timing simulator at a realistic capture
// time.
type ConcurrentSim struct {
	FaultName  string
	HBDHour    float64
	Curve      []WindowSample // analog-characterized delay along the lifetime
	Nominal    float64
	Strategies []ConcurrentStrategy
}

// RunConcurrentSim simulates the policies against an NMOS OBD in the full
// adder's mid-path NAND.
func RunConcurrentSim(p *spice.Process) (*ConcurrentSim, error) {
	prog := obd.NewProgression(spice.NMOS)
	out := &ConcurrentSim{HBDHour: prog.Window / 3600}

	// Analog characterization of the defect's extra delay over time.
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	pr, err := fault.ParsePair("(01,11)")
	if err != nil {
		return nil, err
	}
	measure := func() (waveform.DelayMeasurement, error) {
		h.Apply(pr, TSwitch, TEdge)
		res, err := h.Run(TStop, TStep)
		if err != nil {
			return waveform.DelayMeasurement{}, err
		}
		return h.Measure(res, pr, TSwitch, TEdge)
	}
	nominal, err := measure()
	if err != nil {
		return nil, err
	}
	if nominal.Kind != waveform.TransitionOK {
		return nil, fmt.Errorf("exper: concurrent baseline stuck")
	}
	out.Nominal = nominal.Delay
	const points = 10
	for i := 0; i < points; i++ {
		t := prog.Window * float64(i) / float64(points-1)
		par := prog.ParamsAt(t)
		inj.SetParams(par)
		m, err := measure()
		if err != nil {
			return nil, err
		}
		out.Curve = append(out.Curve, WindowSample{T: t, Meas: m, Param: par})
	}

	// The monitored defect at gate level.
	lc := cells.FullAdderSumLogic()
	var target *logic.Gate
	for _, g := range lc.Gates {
		if g.Name == cells.FullAdderTarget {
			target = g
		}
	}
	fl := fault.OBD{Gate: target, Input: 0, Side: fault.PullDown}
	out.FaultName = fl.String()
	dm, err := cells.CalibrateDelays(p)
	if err != nil {
		return nil, err
	}
	sim, err := timing.New(lc, dm)
	if err != nil {
		return nil, err
	}

	// The BIST test set and its designed capture time.
	faults, _ := fault.OBDUniverse(lc)
	ts, err := atpg.GenerateOBDTests(lc, faults, nil)
	if err != nil {
		return nil, err
	}
	critical := 0.0
	goodTraces := make([]*timing.Trace, len(ts.Tests))
	for i, tp := range ts.Tests {
		tr, err := sim.Run(tp.V1, tp.V2, nil)
		if err != nil {
			return nil, err
		}
		goodTraces[i] = tr
		if t := tr.SettleTime(); t > critical {
			critical = t
		}
	}

	// penaltyAt interpolates the analog curve; (extra delay, stuck).
	penaltyAt := func(hour float64) (float64, bool) {
		tsec := hour * 3600
		base := out.Nominal
		var prev WindowSample
		for i, s := range out.Curve {
			if s.T >= tsec || i == len(out.Curve)-1 {
				if s.Meas.Kind != waveform.TransitionOK {
					if i == 0 || prev.Meas.Kind != waveform.TransitionOK {
						return 0, true
					}
					// Between a delayed and a stuck sample: treat as stuck
					// past the midpoint.
					if tsec > (prev.T+s.T)/2 {
						return 0, true
					}
					return prev.Meas.Delay - base, false
				}
				if i == 0 {
					return s.Meas.Delay - base, false
				}
				if prev.Meas.Kind != waveform.TransitionOK {
					return s.Meas.Delay - base, false
				}
				f := (tsec - prev.T) / (s.T - prev.T)
				d := prev.Meas.Delay + f*(s.Meas.Delay-prev.Meas.Delay)
				return d - base, false
			}
			prev = s
		}
		return 0, true
	}

	detects := func(tp atpg.TwoPattern, good *timing.Trace, hour, capture float64) (bool, error) {
		extra, stuck := penaltyAt(hour)
		pen := timing.Penalty{GateName: fl.Gate.Name, Rising: fl.SlowRising(), Extra: extra, Stuck: stuck}
		faulty, err := sim.Run(tp.V1, tp.V2, []timing.Penalty{pen})
		if err != nil {
			return false, err
		}
		return timing.DetectsAt(lc, good, faulty, capture), nil
	}

	// Periodic BIST policies: run the whole test set every T hours with
	// capture at the designed clock (1.0× critical path).
	for _, period := range []float64{2, 6, 12} {
		st := ConcurrentStrategy{Name: fmt.Sprintf("BIST every %2.0f h", period), DetectHour: -1}
		for hour := period; hour < out.HBDHour; hour += period {
			st.TestsIssued += len(ts.Tests)
			hit := false
			for i, tp := range ts.Tests {
				ok, err := detects(tp, goodTraces[i], hour, critical)
				if err != nil {
					return nil, err
				}
				if ok {
					hit = true
					break
				}
			}
			if hit {
				st.DetectHour = hour
				st.Remaining = out.HBDHour - hour
				break
			}
		}
		out.Strategies = append(out.Strategies, st)
	}

	// Functional workload policy: a duplicate-and-compare checker samples
	// K random consecutive vector pairs per hour at the functional clock.
	rng := rand.New(rand.NewSource(11))
	mk := func() atpg.Pattern {
		pt := make(atpg.Pattern, len(lc.Inputs))
		for _, in := range lc.Inputs {
			pt[in] = logic.FromBool(rng.Intn(2) == 1)
		}
		return pt
	}
	st := ConcurrentStrategy{Name: "workload checker", DetectHour: -1}
	const samplesPerHour = 40
	prevVec := mk()
	for hour := 1.0; hour < out.HBDHour; hour++ {
		hit := false
		for k := 0; k < samplesPerHour; k++ {
			v2 := mk()
			tp := atpg.TwoPattern{V1: prevVec, V2: v2}
			prevVec = v2
			st.TestsIssued++
			good, err := sim.Run(tp.V1, tp.V2, nil)
			if err != nil {
				return nil, err
			}
			ok, err := detects(tp, good, hour, critical)
			if err != nil {
				return nil, err
			}
			if ok {
				hit = true
				break
			}
		}
		if hit {
			st.DetectHour = hour
			st.Remaining = out.HBDHour - hour
			break
		}
	}
	out.Strategies = append(out.Strategies, st)
	return out, nil
}

// Format prints the race results.
func (c *ConcurrentSim) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent testing race: %s progressing to HBD at %.1f h (nominal %.0f ps)\n",
		c.FaultName, c.HBDHour, c.Nominal*1e12)
	for _, s := range c.Strategies {
		if s.DetectHour < 0 {
			fmt.Fprintf(&b, "  %-18s NOT detected before HBD (%d vectors applied)\n", s.Name, s.TestsIssued)
			continue
		}
		fmt.Fprintf(&b, "  %-18s detected at %5.1f h, %5.1f h left to repair (%d vectors applied)\n",
			s.Name, s.DetectHour, s.Remaining, s.TestsIssued)
	}
	return b.String()
}

// Check verifies: every periodic BIST policy catches the defect before
// HBD; shorter periods never detect later (the schedules are nested); and
// detection leaves a positive repair margin for the tightest policy.
func (c *ConcurrentSim) Check() []string {
	var bad []string
	prev := -1.0
	for _, s := range c.Strategies {
		if !strings.HasPrefix(s.Name, "BIST") {
			continue
		}
		if s.DetectHour < 0 {
			bad = append(bad, s.Name+" missed the defect entirely")
			continue
		}
		if prev >= 0 && s.DetectHour < prev {
			bad = append(bad, s.Name+" detected earlier than a tighter schedule")
		}
		prev = s.DetectHour
	}
	if len(c.Strategies) > 0 {
		first := c.Strategies[0]
		if first.DetectHour >= 0 && first.Remaining <= 0 {
			bad = append(bad, "tightest policy left no repair margin")
		}
	}
	return bad
}
