package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/diag"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// DiagRow is one circuit's diagnosability summary under two test sets:
// the compact detection-oriented ATPG set, and the exhaustive transition
// set a diagnosis-oriented flow could afford.
type DiagRow struct {
	Name      string
	Detected  int
	Unique    int // singleton classes under the compact ATPG set
	Classes   int
	MaxClass  int
	TestCount int
	// Exhaustive-set counterparts.
	FullUnique   int
	FullClasses  int
	FullMaxClass int
	FullTests    int
}

// Diagnosis evaluates the "diagnose" leg of the paper's concurrent
// test/diagnose/repair loop: how well the OBD test set's failing responses
// localize the defective transistor, measured as indistinguishability
// classes over the fault dictionary.
type Diagnosis struct {
	Rows []DiagRow
}

// RunDiagnosis builds dictionaries for the benchmark circuits.
func RunDiagnosis() (*Diagnosis, error) {
	out := &Diagnosis{}
	for _, lc := range []*logic.Circuit{
		cells.FullAdderSumLogic(),
		logic.C17(),
		logic.Mux41(),
	} {
		faults, _ := fault.OBDUniverse(lc)
		ts, err := atpg.GenerateOBDTests(lc, faults, nil)
		if err != nil {
			return nil, err
		}
		d := diag.Build(lc, faults, ts.Tests)
		row := DiagRow{Name: lc.Name, TestCount: len(ts.Tests)}
		classes := d.Classes()
		row.Classes = len(classes)
		for _, cl := range classes {
			row.Detected += len(cl)
			if len(cl) == 1 {
				row.Unique++
			}
			if len(cl) > row.MaxClass {
				row.MaxClass = len(cl)
			}
		}
		// Diagnosis-oriented set: every ordered input transition.
		ex, err := atpg.AnalyzeExhaustive(lc, faults)
		if err != nil {
			return nil, err
		}
		dFull := diag.Build(lc, faults, ex.Pairs)
		row.FullTests = len(ex.Pairs)
		for _, cl := range dFull.Classes() {
			row.FullClasses++
			if len(cl) == 1 {
				row.FullUnique++
			}
			if len(cl) > row.FullMaxClass {
				row.FullMaxClass = len(cl)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format prints the diagnosability table.
func (d *Diagnosis) Format() string {
	var b strings.Builder
	b.WriteString("Diagnosis: OBD fault dictionary resolution (full-response signatures)\n")
	fmt.Fprintf(&b, "  %-15s %8s | %6s %8s %8s %8s | %6s %8s %8s\n",
		"circuit", "detected", "tests", "classes", "unique", "maxcls", "tests", "unique", "maxcls")
	fmt.Fprintf(&b, "  %-15s %8s | %31s | %24s\n", "", "", "compact ATPG set", "exhaustive transitions")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-15s %8d | %6d %8d %8d %8d | %6d %8d %8d\n",
			r.Name, r.Detected, r.TestCount, r.Classes, r.Unique, r.MaxClass,
			r.FullTests, r.FullUnique, r.FullMaxClass)
	}
	return b.String()
}

// Check verifies the dictionaries are useful and that diagnosis-oriented
// sets sharpen them: at least a quarter of the detected faults resolve
// uniquely under the compact set, the exhaustive set never resolves worse
// and improves somewhere, and ambiguity classes stay bounded (a repair
// controller must bound its replacement scope).
func (d *Diagnosis) Check() []string {
	var bad []string
	improved := false
	for _, r := range d.Rows {
		if r.Detected == 0 {
			bad = append(bad, r.Name+": nothing detected")
			continue
		}
		if r.Unique*4 < r.Detected {
			bad = append(bad, fmt.Sprintf("%s: only %d/%d uniquely diagnosable", r.Name, r.Unique, r.Detected))
		}
		if r.FullUnique < r.Unique {
			bad = append(bad, fmt.Sprintf("%s: exhaustive set resolved worse (%d < %d)", r.Name, r.FullUnique, r.Unique))
		}
		if r.FullUnique > r.Unique {
			improved = true
		}
		if r.MaxClass > 8 || r.FullMaxClass > 8 {
			bad = append(bad, fmt.Sprintf("%s: ambiguity class of %d/%d", r.Name, r.MaxClass, r.FullMaxClass))
		}
	}
	if !improved {
		bad = append(bad, "exhaustive set never improved resolution")
	}
	return bad
}
