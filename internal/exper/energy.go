package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
)

// EnergyRow is one stage's supply-charge measurement.
type EnergyRow struct {
	Stage       obd.Stage
	EdgeCharge  float64 // supply charge delivered around one falling-output launch (C)
	StaticPower float64 // quiescent supply power in the leaky state (W)
}

// Energy quantifies the power cost of a progressing OBD defect — the
// observable behind the paper's IDDQ-related citations and the physical
// driver of the progression itself (the leakage current that "continuously
// increases" is supply charge): per breakdown stage, the quiescent supply
// power in the defect-biasing state and the charge drawn around a
// switching event on the Fig. 5 harness.
type Energy struct {
	Rows []EnergyRow
}

// RunEnergy measures an NMOS OBD on input A of the NAND.
func RunEnergy(p *spice.Process) (*Energy, error) {
	out := &Energy{}
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	vdd, ok := h.B.C.Device("VDD").(*spice.VSource)
	if !ok {
		return nil, fmt.Errorf("exper: harness has no VDD source")
	}
	pr, err := fault.ParsePair("(01,11)")
	if err != nil {
		return nil, err
	}
	for _, st := range []obd.Stage{obd.FaultFree, obd.MBD1, obd.MBD2, obd.MBD3} {
		inj.SetStage(st)
		h.Apply(pr, TSwitch, TEdge)
		res, err := h.Run(TStop, TStep)
		if err != nil {
			return nil, fmt.Errorf("exper: energy %v: %w", st, err)
		}
		// Supply current flows out of the + terminal into the circuit, so
		// the branch current is negative while delivering charge.
		q := -res.ChargeThrough(vdd, TSwitch, TSwitch+1.5e-9)
		// Quiescent power in the final (leaky: A=1,B=1) state.
		iq := res.SourceCurrent(vdd)
		pq := -iq[len(iq)-1] * p.VDD
		out.Rows = append(out.Rows, EnergyRow{Stage: st, EdgeCharge: q, StaticPower: pq})
	}
	return out, nil
}

// Format prints the per-stage energy table.
func (e *Energy) Format() string {
	var b strings.Builder
	b.WriteString("Energy: supply cost of a progressing NMOS OBD (NAND, seq (01,11))\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s\n", "Stage", "edge charge", "static power")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "  %-10s %11.2f pC %11.2f mW\n", r.Stage, r.EdgeCharge*1e12, r.StaticPower*1e3)
	}
	return b.String()
}

// Check verifies both observables grow monotonically with breakdown stage
// and that MBD3 draws at least twice the fault-free static power — the
// "continuously increasing leakage" the progression literature reports.
func (e *Energy) Check() []string {
	var bad []string
	var prev *EnergyRow
	for i := range e.Rows {
		r := &e.Rows[i]
		if r.EdgeCharge <= 0 || r.StaticPower < 0 {
			bad = append(bad, fmt.Sprintf("%v: implausible measurements %g C, %g W", r.Stage, r.EdgeCharge, r.StaticPower))
		}
		if prev != nil {
			if r.EdgeCharge < prev.EdgeCharge*0.98 {
				bad = append(bad, fmt.Sprintf("%v: edge charge fell", r.Stage))
			}
			if r.StaticPower < prev.StaticPower*0.98 {
				bad = append(bad, fmt.Sprintf("%v: static power fell", r.Stage))
			}
		}
		prev = r
	}
	first, last := e.Rows[0], e.Rows[len(e.Rows)-1]
	if last.StaticPower < 2*first.StaticPower {
		bad = append(bad, fmt.Sprintf("MBD3 static power %.2g not clearly above fault-free %.2g",
			last.StaticPower, first.StaticPower))
	}
	return bad
}
