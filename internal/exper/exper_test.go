package exper

import (
	"strings"
	"testing"

	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
)

func TestExcitationSets(t *testing.T) {
	e, err := RunExcitationSets()
	if err != nil {
		t.Fatal(err)
	}
	if bad := e.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
	out := e.Format()
	for _, want := range []string{"nand2", "(11,01)", "minimum cover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFullAdderCounts(t *testing.T) {
	f, err := RunFullAdderCounts()
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, f.Format())
	}
	t.Log("\n" + f.Format())
}

func TestCoverageGapFullAdder(t *testing.T) {
	g, err := RunCoverageGap("fulladder_sum", cells.FullAdderSumLogic())
	if err != nil {
		t.Fatal(err)
	}
	if bad := g.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, g.Format())
	}
	t.Log("\n" + g.Format())
}

func TestEMComparison(t *testing.T) {
	e, err := RunEMComparison()
	if err != nil {
		t.Fatal(err)
	}
	if bad := e.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("80 transients")
	}
	tab, err := RunTable1(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := tab.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, tab.Format())
	}
	t.Log("\n" + tab.Format())
}

func TestFigure4(t *testing.T) {
	f, err := RunFigure4(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, f.Format())
	}
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("10 transients")
	}
	f, err := RunFigure6(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, f.Format())
	}
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("4 transients")
	}
	f, err := RunFigure7(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, f.Format())
	}
}

func TestFigure9(t *testing.T) {
	if testing.Short() {
		t.Skip("8 full-adder transients")
	}
	f, err := RunFigure9(spice.Default350(), obd.MBD2)
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, f.Format())
	}
	t.Log("\n" + f.Format())
}

func TestDetectionWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("progression transients")
	}
	d, err := RunDetectionWindow(spice.Default350(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v\n%s", bad, d.Format())
	}
	t.Log("\n" + d.Format())
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("transients")
	}
	p := spice.Default350()
	n, err := RunAblationNetwork(p)
	if err != nil {
		t.Fatal(err)
	}
	if bad := n.Check(); len(bad) != 0 {
		t.Fatalf("network ablation violations: %v\n%s", bad, n.Format())
	}
	d, err := RunAblationDriver(p)
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.Check(); len(bad) != 0 {
		t.Fatalf("driver ablation violations: %v\n%s", bad, d.Format())
	}
	i, err := RunAblationInjection(p)
	if err != nil {
		t.Fatal(err)
	}
	if bad := i.Check(); len(bad) != 0 {
		t.Fatalf("injection ablation violations: %v\n%s", bad, i.Format())
	}
	t.Log("\n" + n.Format() + d.Format() + i.Format())
}

func TestRuleValidationNANDNOR(t *testing.T) {
	if testing.Short() {
		t.Skip("60 transients")
	}
	p := spice.Default350()
	for _, tc := range []struct {
		typ   logic.GateType
		arity int
	}{{logic.Nand, 2}, {logic.Nor, 2}} {
		v, err := RunRuleValidation(p, tc.typ, tc.arity, obd.MBD2)
		if err != nil {
			t.Fatal(err)
		}
		if bad := v.Check(); len(bad) != 0 {
			t.Errorf("violations: %v\n%s", bad, v.Format())
		}
	}
}

func TestRuleValidationAOI(t *testing.T) {
	if testing.Short() {
		t.Skip("210 transients")
	}
	v, err := RunRuleValidation(spice.Default350(), logic.Aoi21, 3, obd.MBD2)
	if err != nil {
		t.Fatal(err)
	}
	if bad := v.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, v.Format())
	}
	// The complex gate must still show per-fault ordering for all six
	// faults, and the static corruptions outside the excitation set are a
	// documented divergence, not an accident: they must all be NMOS sites.
	for _, s := range v.StaticCorruptions() {
		if !strings.Contains(s.Fault, "NMOS") {
			t.Errorf("unexpected PMOS static corruption: %s %s", s.Fault, s.Pair)
		}
	}
}

func TestIDDQ(t *testing.T) {
	if testing.Short() {
		t.Skip("operating points")
	}
	q, err := RunIDDQ(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := q.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, q.Format())
	}
	t.Log("\n" + q.Format())
}

func TestCaptureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization transients")
	}
	cs, err := RunCaptureSweep(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := cs.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, cs.Format())
	}
	t.Log("\n" + cs.Format())
}

func TestScanComparison(t *testing.T) {
	s, err := RunScanComparison()
	if err != nil {
		t.Fatal(err)
	}
	if bad := s.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, s.Format())
	}
	t.Log("\n" + s.Format())
}

func TestGapSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive analyses")
	}
	g, err := RunGapSuite()
	if err != nil {
		t.Fatal(err)
	}
	if bad := g.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, g.Format())
	}
	t.Log("\n" + g.Format())
}

func TestSeqModes(t *testing.T) {
	s, err := RunSeqModes()
	if err != nil {
		t.Fatal(err)
	}
	if bad := s.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, s.Format())
	}
	t.Log("\n" + s.Format())
}

func TestDiagnosis(t *testing.T) {
	d, err := RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, d.Format())
	}
	t.Log("\n" + d.Format())
}

func TestConcurrentSim(t *testing.T) {
	if testing.Short() {
		t.Skip("progression characterization transients")
	}
	c, err := RunConcurrentSim(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := c.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, c.Format())
	}
	t.Log("\n" + c.Format())
}

func TestNDetect(t *testing.T) {
	nd, err := RunNDetect()
	if err != nil {
		t.Fatal(err)
	}
	if bad := nd.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, nd.Format())
	}
	t.Log("\n" + nd.Format())
}

func TestSupplyRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("12 transients")
	}
	r, err := RunSupplyRobustness(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := r.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, r.Format())
	}
	t.Log("\n" + r.Format())
}

func TestBIST(t *testing.T) {
	b, err := RunBIST()
	if err != nil {
		t.Fatal(err)
	}
	if bad := b.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, b.Format())
	}
	t.Log("\n" + b.Format())
}

func TestDetectProfile(t *testing.T) {
	d, err := RunDetectProfile()
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, d.Format())
	}
	t.Log("\n" + d.Format())
}

func TestATPGGuidance(t *testing.T) {
	g, err := RunATPGGuidance()
	if err != nil {
		t.Fatal(err)
	}
	if bad := g.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, g.Format())
	}
	t.Log("\n" + g.Format())
}

func TestNORTable(t *testing.T) {
	if testing.Short() {
		t.Skip("80 transients")
	}
	r, err := RunNORTable(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := r.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, r.Format())
	}
	t.Log("\n" + r.Format())
}

func TestEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("4 transients")
	}
	e, err := RunEnergy(spice.Default350())
	if err != nil {
		t.Fatal(err)
	}
	if bad := e.Check(); len(bad) != 0 {
		t.Errorf("violations: %v\n%s", bad, e.Format())
	}
	t.Log("\n" + e.Format())
}
