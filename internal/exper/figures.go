package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// Figure4 reproduces the inverter voltage-transfer characteristics under a
// progressing NMOS OBD defect: the VOL value shifts upward with stage.
type Figure4 struct {
	In     []float64               // swept input voltage
	Curves map[obd.Stage][]float64 // stage -> output voltage
	VOL    map[obd.Stage]float64   // output at full-high input
	Stages []obd.Stage
}

// RunFigure4 sweeps the inverter VTC at every breakdown stage.
func RunFigure4(p *spice.Process) (*Figure4, error) {
	f := &Figure4{
		Curves: make(map[obd.Stage][]float64),
		VOL:    make(map[obd.Stage]float64),
		Stages: obd.Stages(),
	}
	rig := cells.NewInverterVTC(p)
	inj := obd.Inject(rig.B.C, "f", rig.Inv.FET(fault.PullDown, 0), obd.FaultFree)
	for _, st := range f.Stages {
		inj.SetStage(st)
		in, out, err := rig.Sweep(0.05)
		if err != nil {
			return nil, fmt.Errorf("exper: figure 4 at %v: %w", st, err)
		}
		f.In = in
		f.Curves[st] = out
		f.VOL[st] = out[len(out)-1]
	}
	return f, nil
}

// Format prints the VOL trend and an ASCII rendition of the curves.
func (f *Figure4) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4: inverter VTC under NMOS OBD (VOL shift)\n")
	for _, st := range f.Stages {
		fmt.Fprintf(&b, "  %-10s VOL = %.3f V\n", st, f.VOL[st])
	}
	for _, st := range f.Stages {
		s := waveform.MustNew(st.String(), f.In, f.Curves[st])
		b.WriteString(waveform.ASCIIPlot(s, 8, 60))
	}
	return b.String()
}

// Check verifies the paper's claim: VOL rises monotonically with stage.
func (f *Figure4) Check() []string {
	var bad []string
	prev := -1.0
	for _, st := range f.Stages {
		if f.VOL[st] < prev-1e-3 {
			bad = append(bad, fmt.Sprintf("VOL not monotone at %v: %.3f after %.3f", st, f.VOL[st], prev))
		}
		prev = f.VOL[st]
	}
	if f.VOL[obd.FaultFree] > 0.1 {
		bad = append(bad, fmt.Sprintf("fault-free VOL %.3f too high", f.VOL[obd.FaultFree]))
	}
	if f.VOL[obd.HBD] < f.VOL[obd.FaultFree]+0.2 {
		bad = append(bad, "HBD VOL shift too small")
	}
	return bad
}

// Figure6 reproduces the NMOS OBD progression transients for the NAND:
// per-stage output waveforms and delays under both falling sequences,
// showing the fault is independent of which input switches.
type Figure6 struct {
	Stages []obd.Stage
	Waves  map[obd.Stage]*waveform.Series                     // (01,11) output waveforms
	Delays map[obd.Stage]map[string]waveform.DelayMeasurement // stage -> seq -> measurement
}

// RunFigure6 runs the progression transients.
func RunFigure6(p *spice.Process) (*Figure6, error) {
	f := &Figure6{
		Stages: obd.Stages(),
		Waves:  make(map[obd.Stage]*waveform.Series),
		Delays: make(map[obd.Stage]map[string]waveform.DelayMeasurement),
	}
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	for _, st := range f.Stages {
		inj.SetStage(st)
		f.Delays[st] = make(map[string]waveform.DelayMeasurement)
		for _, seq := range []string{"(01,11)", "(10,11)"} {
			pr, err := fault.ParsePair(seq)
			if err != nil {
				return nil, err
			}
			h.Apply(pr, TSwitch, TEdge)
			res, err := h.Run(TStop, TStep)
			if err != nil {
				return nil, fmt.Errorf("exper: figure 6 %v %s: %w", st, seq, err)
			}
			m, err := h.Measure(res, pr, TSwitch, TEdge)
			if err != nil {
				return nil, err
			}
			f.Delays[st][seq] = m
			if seq == "(01,11)" {
				f.Waves[st] = waveform.MustNew(st.String(), res.Times, res.V(h.OutputNode()))
			}
		}
	}
	return f, nil
}

// Format renders delays and waveforms.
func (f *Figure6) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6: NMOS OBD progression for NAND (defect on input A)\n")
	for _, st := range f.Stages {
		m1, m2 := f.Delays[st]["(01,11)"], f.Delays[st]["(10,11)"]
		fmt.Fprintf(&b, "  %-10s (01,11): %-8s (10,11): %-8s\n", st,
			Table1Cell{Meas: m1}.EntryString(), Table1Cell{Meas: m2}.EntryString())
	}
	for _, st := range f.Stages {
		b.WriteString(waveform.ASCIIPlot(f.Waves[st], 8, 60))
	}
	return b.String()
}

// Check verifies the progression grows monotonically, ends stuck, and is
// insensitive to which input switches (pre-HBD delays within 20% across
// the two sequences).
func (f *Figure6) Check() []string {
	var bad []string
	prev := 0.0
	for _, st := range []obd.Stage{obd.FaultFree, obd.MBD1, obd.MBD2, obd.MBD3} {
		m1, m2 := f.Delays[st]["(01,11)"], f.Delays[st]["(10,11)"]
		if m1.Kind != waveform.TransitionOK || m2.Kind != waveform.TransitionOK {
			bad = append(bad, fmt.Sprintf("stuck before HBD at %v", st))
			continue
		}
		if m1.Delay < prev*0.98 {
			bad = append(bad, fmt.Sprintf("delay not monotone at %v", st))
		}
		prev = m1.Delay
		ratio := m1.Delay / m2.Delay
		if ratio < 0.8 || ratio > 1.25 {
			bad = append(bad, fmt.Sprintf("input dependence at %v: %.0f vs %.0f ps", st, m1.Delay*1e12, m2.Delay*1e12))
		}
	}
	if m := f.Delays[obd.HBD]["(01,11)"]; m.Kind != waveform.StuckHigh {
		bad = append(bad, fmt.Sprintf("HBD classified %v, want sa-1", m.Kind))
	}
	return bad
}

// Figure7 reproduces the input-specific PMOS detection experiment: OBD on
// PMOS A or B, measured under both rising sequences at a mid progression
// stage.
type Figure7 struct {
	Stage  obd.Stage
	Delays map[string]map[string]waveform.DelayMeasurement // defect ("PA"/"PB") -> seq -> measurement
	Waves  map[string]map[string]*waveform.Series
}

// RunFigure7 runs the experiment at MBD2.
func RunFigure7(p *spice.Process) (*Figure7, error) {
	f := &Figure7{
		Stage:  obd.MBD2,
		Delays: make(map[string]map[string]waveform.DelayMeasurement),
		Waves:  make(map[string]map[string]*waveform.Series),
	}
	for input, name := range map[int]string{0: "PA", 1: "PB"} {
		h := cells.NewNANDHarness(p, 2)
		inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullUp, input), obd.FaultFree)
		inj.SetStage(f.Stage)
		f.Delays[name] = make(map[string]waveform.DelayMeasurement)
		f.Waves[name] = make(map[string]*waveform.Series)
		for _, seq := range []string{"(11,01)", "(11,10)"} {
			pr, err := fault.ParsePair(seq)
			if err != nil {
				return nil, err
			}
			h.Apply(pr, TSwitch, TEdge)
			res, err := h.Run(TStop, TStep)
			if err != nil {
				return nil, fmt.Errorf("exper: figure 7 %s %s: %w", name, seq, err)
			}
			m, err := h.Measure(res, pr, TSwitch, TEdge)
			if err != nil {
				return nil, err
			}
			f.Delays[name][seq] = m
			f.Waves[name][seq] = waveform.MustNew(name+seq, res.Times, res.V(h.OutputNode()))
		}
	}
	return f, nil
}

// Format prints the 2×2 delay matrix.
func (f *Figure7) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: input-specific PMOS OBD detection (stage %v)\n", f.Stage)
	for _, name := range []string{"PA", "PB"} {
		for _, seq := range []string{"(11,01)", "(11,10)"} {
			fmt.Fprintf(&b, "  defect %s under %s: %s\n", name, seq,
				Table1Cell{Meas: f.Delays[name][seq]}.EntryString())
		}
	}
	return b.String()
}

// Check verifies each PMOS defect is slowed only by its own sequence
// (≥25% slower than the other defect's reading under that sequence).
func (f *Figure7) Check() []string {
	var bad []string
	get := func(name, seq string) float64 {
		m := f.Delays[name][seq]
		if m.Kind != waveform.TransitionOK {
			bad = append(bad, fmt.Sprintf("%s %s unexpectedly stuck", name, seq))
			return 0
		}
		return m.Delay
	}
	paOwn, paOther := get("PA", "(11,01)"), get("PA", "(11,10)")
	pbOwn, pbOther := get("PB", "(11,10)"), get("PB", "(11,01)")
	if len(bad) > 0 {
		return bad
	}
	if paOwn < 1.25*paOther {
		bad = append(bad, fmt.Sprintf("PA not input-specific: own %.0f vs other %.0f ps", paOwn*1e12, paOther*1e12))
	}
	if pbOwn < 1.25*pbOther {
		bad = append(bad, fmt.Sprintf("PB not input-specific: own %.0f vs other %.0f ps", pbOwn*1e12, pbOther*1e12))
	}
	return bad
}

// Figure9Case is one fault of the full-adder propagation experiment.
type Figure9Case struct {
	Fault      string
	Pair       atpg.TwoPattern
	PairText   string
	FaultFree  waveform.DelayMeasurement
	Faulty     waveform.DelayMeasurement
	Wave       *waveform.Series // faulty sum waveform
	WaveGolden *waveform.Series // fault-free sum waveform under the same stimulus
}

// Figure9 reproduces the propagation experiment: OBD injected (one at a
// time) into the four transistors of the NAND gate with four stages of
// upstream and downstream logic; the justified input sequences come from
// the OBD ATPG and the delay is observed at the primary output.
type Figure9 struct {
	Stage obd.Stage
	Cases []Figure9Case
}

// RunFigure9 runs the four injections at the given stage (the paper plots
// a visible-but-not-stuck stage; MBD2 works well).
func RunFigure9(p *spice.Process, stage obd.Stage) (*Figure9, error) {
	lc := cells.FullAdderSumLogic()
	var target *logic.Gate
	for _, g := range lc.Gates {
		if g.Name == cells.FullAdderTarget {
			target = g
		}
	}
	if target == nil {
		return nil, fmt.Errorf("exper: full adder target gate missing")
	}
	out := &Figure9{Stage: stage}
	targets := []struct {
		name  string
		side  fault.Side
		input int
	}{
		{"NMOS OBD1", fault.PullDown, 0},
		{"NMOS OBD2", fault.PullDown, 1},
		{"PMOS OBD1", fault.PullUp, 0},
		{"PMOS OBD2", fault.PullUp, 1},
	}
	for _, tg := range targets {
		fl := fault.OBD{Gate: target, Input: tg.input, Side: tg.side}
		tp, st := atpg.GenerateOBDTest(lc, fl, nil)
		if st != atpg.Detected {
			return nil, fmt.Errorf("exper: figure 9: ATPG failed for %s: %v", fl, st)
		}
		// Fault-free reference run under the justified stimulus.
		rigFF, err := cells.NewFullAdderRig(p)
		if err != nil {
			return nil, err
		}
		mFF, wFF, err := runFullAdderOnce(rigFF, *tp)
		if err != nil {
			return nil, fmt.Errorf("exper: figure 9 fault-free (%s): %w", tg.name, err)
		}
		// Faulty run.
		rig, err := cells.NewFullAdderRig(p)
		if err != nil {
			return nil, err
		}
		cell := rig.Cells[cells.FullAdderTarget]
		inj := obd.Inject(rig.B.C, "f", cell.FET(tg.side, tg.input), obd.FaultFree)
		inj.SetStage(stage)
		m, w, err := runFullAdderOnce(rig, *tp)
		if err != nil {
			return nil, fmt.Errorf("exper: figure 9 %s: %w", tg.name, err)
		}
		out.Cases = append(out.Cases, Figure9Case{
			Fault: tg.name, Pair: *tp, PairText: tp.StringFor(lc),
			FaultFree: mFF, Faulty: m, Wave: w, WaveGolden: wFF,
		})
	}
	return out, nil
}

// runFullAdderOnce applies a two-pattern stimulus to the rig, runs the
// transient and measures the sum output against the analytic edge time.
func runFullAdderOnce(rig *cells.FullAdderRig, tp atpg.TwoPattern) (waveform.DelayMeasurement, *waveform.Series, error) {
	if err := rig.Apply(tp.V1, tp.V2, TSwitch, TEdge); err != nil {
		return waveform.DelayMeasurement{}, nil, err
	}
	res, err := rig.Run(TStop, 2e-12)
	if err != nil {
		return waveform.DelayMeasurement{}, nil, err
	}
	s := waveform.MustNew("s", res.Times, res.V("s"))
	o1 := rig.Logic.Eval(tp.V1, nil)["s"]
	o2 := rig.Logic.Eval(tp.V2, nil)["s"]
	if o1 == o2 {
		return waveform.DelayMeasurement{}, nil, fmt.Errorf("stimulus does not toggle the sum")
	}
	m, err := waveform.MeasureTransitionFrom(s, rig.B.P.VDD, o2 == logic.One, TSwitch+TEdge/2)
	return m, s, err
}

// Format prints the per-fault delays.
func (f *Figure9) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: OBD fault propagation through the full adder (stage %v)\n", f.Stage)
	for _, c := range f.Cases {
		fmt.Fprintf(&b, "  %-10s stimulus %s: fault-free %s -> faulty %s\n",
			c.Fault, c.PairText,
			Table1Cell{Meas: c.FaultFree}.EntryString(),
			Table1Cell{Meas: c.Faulty}.EntryString())
	}
	return b.String()
}

// Check verifies every injected defect shows up as extra delay at the
// primary output (≥15%) while the final logic value is restored to the
// rails (the paper: the degraded level is restored, the delay survives).
func (f *Figure9) Check() []string {
	var bad []string
	for _, c := range f.Cases {
		if c.FaultFree.Kind != waveform.TransitionOK {
			bad = append(bad, fmt.Sprintf("%s: fault-free run did not transition", c.Fault))
			continue
		}
		if c.Faulty.Kind != waveform.TransitionOK {
			bad = append(bad, fmt.Sprintf("%s: faulty run stuck at stage %v", c.Fault, f.Stage))
			continue
		}
		if c.Faulty.Delay < 1.15*c.FaultFree.Delay {
			bad = append(bad, fmt.Sprintf("%s: no observable delay increase (%.0f vs %.0f ps)",
				c.Fault, c.Faulty.Delay*1e12, c.FaultFree.Delay*1e12))
		}
		final := c.Wave.Final()
		vdd := 3.3
		if final > 0.3 && final < vdd-0.3 {
			bad = append(bad, fmt.Sprintf("%s: final value %.2f V not restored to a rail", c.Fault, final))
		}
	}
	return bad
}
