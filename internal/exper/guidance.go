package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// GuidanceRow is one circuit's guided-vs-unguided comparison.
type GuidanceRow struct {
	Name        string
	Faults      int
	GuidedBT    int
	UnguidedBT  int
	GuidedCov   atpg.Coverage
	UnguidedCov atpg.Coverage
}

// ATPGGuidance is the SCOAP-steering ablation: PODEM's completeness never
// depends on the heuristics, so coverage must be identical with and
// without testability guidance, while the backtrack spend differs —
// showing the guidance is purely a search-order accelerator.
type ATPGGuidance struct {
	Rows []GuidanceRow
}

// RunATPGGuidance runs OBD ATPG with and without SCOAP over the suite plus
// a larger adder.
func RunATPGGuidance() (*ATPGGuidance, error) {
	out := &ATPGGuidance{}
	for _, lc := range []*logic.Circuit{
		cells.FullAdderSumLogic(),
		logic.C17(),
		logic.Mux41(),
		logic.RippleCarryAdder(4),
	} {
		faults, _ := fault.OBDUniverse(lc)
		row := GuidanceRow{Name: lc.Name, Faults: len(faults)}

		optG := atpg.DefaultOptions()
		optG.BacktrackSink = &row.GuidedBT
		tsG, err := atpg.GenerateOBDTests(lc, faults, optG)
		if err != nil {
			return nil, err
		}
		row.GuidedCov = tsG.Coverage

		optU := atpg.DefaultOptions()
		optU.DisableSCOAP = true
		optU.BacktrackSink = &row.UnguidedBT
		tsU, err := atpg.GenerateOBDTests(lc, faults, optU)
		if err != nil {
			return nil, err
		}
		row.UnguidedCov = tsU.Coverage

		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format prints the comparison.
func (g *ATPGGuidance) Format() string {
	var b strings.Builder
	b.WriteString("ATPG guidance ablation: SCOAP-steered vs unguided PODEM\n")
	fmt.Fprintf(&b, "  %-15s %7s %16s %12s %12s\n", "circuit", "faults", "coverage", "guided BT", "unguided BT")
	for _, r := range g.Rows {
		fmt.Fprintf(&b, "  %-15s %7d %16s %12d %12d\n",
			r.Name, r.Faults, r.GuidedCov.String(), r.GuidedBT, r.UnguidedBT)
	}
	return b.String()
}

// Check verifies coverage is heuristic-independent on every circuit and
// that guidance does not inflate the total backtrack spend.
func (g *ATPGGuidance) Check() []string {
	var bad []string
	totG, totU := 0, 0
	for _, r := range g.Rows {
		if r.GuidedCov.Detected != r.UnguidedCov.Detected {
			bad = append(bad, fmt.Sprintf("%s: coverage differs with guidance (%v vs %v)",
				r.Name, r.GuidedCov, r.UnguidedCov))
		}
		totG += r.GuidedBT
		totU += r.UnguidedBT
	}
	if totG > totU {
		bad = append(bad, fmt.Sprintf("guidance increased total backtracks (%d vs %d)", totG, totU))
	}
	return bad
}
