package exper

import (
	"fmt"
	"math"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
)

// IDDQ reproduces the current-testing angle of the related work the paper
// builds on (Segura et al. propose IDDQ patterns for hard OBD): the
// quiescent supply current of the Fig. 5 harness under each static input
// state, per breakdown stage. An OBD defect lifts IDDQ by orders of
// magnitude — but only in the states that bias its junctions, which is the
// static counterpart of the input-specific excitation story.
type IDDQ struct {
	FaultName string
	States    []string                         // "00".."11"
	Currents  map[obd.Stage]map[string]float64 // stage -> state -> |IDDQ| (A)
	Clean     map[string]float64               // no breakdown network at all
}

// RunIDDQ measures the quiescent current for an NMOS OBD on input A of
// the NAND across stages and static input states, plus a clean baseline
// without any breakdown network. Note the leak path of the NMOS@A defect
// needs the stack's internal node grounded, i.e. B=1: the revealing state
// is AB=11 — IDDQ patterns are input-specific just like the dynamic
// excitation conditions.
func RunIDDQ(p *spice.Process) (*IDDQ, error) {
	out := &IDDQ{
		FaultName: "NAND NMOS@A",
		States:    []string{"00", "01", "10", "11"},
		Currents:  make(map[obd.Stage]map[string]float64),
		Clean:     make(map[string]float64),
	}
	measureStates := func(h *cells.NANDHarness, into map[string]float64) error {
		vddSrc, ok := h.B.C.Device("VDD").(*spice.VSource)
		if !ok {
			return fmt.Errorf("exper: harness has no VDD source")
		}
		for _, state := range out.States {
			pr, err := fault.ParsePair("(" + state + "," + state + ")")
			if err != nil {
				return err
			}
			h.Apply(pr, TSwitch, TEdge)
			sol, err := spice.OperatingPoint(h.B.C, nil)
			if err != nil {
				return fmt.Errorf("exper: IDDQ state %s: %w", state, err)
			}
			into[state] = math.Abs(sol.SourceCurrent(vddSrc))
		}
		return nil
	}
	clean := cells.NewNANDHarness(p, 2)
	if err := measureStates(clean, out.Clean); err != nil {
		return nil, err
	}
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	for _, st := range obd.Stages() {
		inj.SetStage(st)
		out.Currents[st] = make(map[string]float64)
		if err := measureStates(h, out.Currents[st]); err != nil {
			return nil, fmt.Errorf("%w (stage %v)", err, st)
		}
	}
	return out, nil
}

// Format prints the IDDQ matrix.
func (q *IDDQ) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IDDQ under %s OBD (quiescent supply current, A)\n", q.FaultName)
	fmt.Fprintf(&b, "  %-10s", "Stage")
	for _, s := range q.States {
		fmt.Fprintf(&b, " %10s", "AB="+s)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-10s", "(clean)")
	for _, s := range q.States {
		fmt.Fprintf(&b, " %10.2e", q.Clean[s])
	}
	b.WriteString("\n")
	for _, st := range obd.Stages() {
		fmt.Fprintf(&b, "  %-10s", st.String())
		for _, s := range q.States {
			fmt.Fprintf(&b, " %10.2e", q.Currents[st][s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Check verifies: (a) the defect lifts IDDQ in the revealing state AB=11
// by at least 3× over the clean circuit at every MBD stage, growing
// monotonically; (b) the non-revealing states (A low, or the stack
// ungrounded) stay within 3× of clean pre-HBD.
func (q *IDDQ) Check() []string {
	var bad []string
	clean11 := math.Max(q.Clean["11"], 1e-15)
	prev := 0.0
	for _, st := range []obd.Stage{obd.MBD1, obd.MBD2, obd.MBD3} {
		c := q.Currents[st]["11"]
		if c < 3*clean11 {
			bad = append(bad, fmt.Sprintf("%v AB=11 IDDQ %.2e not elevated over clean %.2e", st, c, clean11))
		}
		if c < prev {
			bad = append(bad, fmt.Sprintf("%v IDDQ not monotone", st))
		} else {
			prev = c
		}
		for _, s := range []string{"00", "01", "10"} {
			cl := math.Max(q.Clean[s], 1e-15)
			if cc := q.Currents[st][s]; cc > 3*cl && cc > 1e-6 {
				bad = append(bad, fmt.Sprintf("%v non-revealing state %s IDDQ %.2e unexpectedly elevated", st, s, cc))
			}
		}
	}
	return bad
}
