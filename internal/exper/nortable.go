package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// NORTable extends the paper's Table 1 to the NOR gate of Section 5's
// generalization: PMOS defects (series stack) disturb every rising
// sequence, NMOS defects (parallel) only the sequence where their own
// input switches alone — the exact dual of the NAND.
type NORTable struct {
	Columns []Table1Column
	Stages  []obd.Stage
}

// RunNORTable measures the driven NOR harness across stages and sequences.
func RunNORTable(p *spice.Process) (*NORTable, error) {
	t := &NORTable{
		Stages: obd.Stages(),
		Columns: []Table1Column{
			{Name: "PA", Side: fault.PullUp, Input: 0, Seqs: []string{"(10,00)", "(01,00)"}},
			{Name: "PB", Side: fault.PullUp, Input: 1, Seqs: []string{"(10,00)", "(01,00)"}},
			{Name: "NA", Side: fault.PullDown, Input: 0, Seqs: []string{"(00,10)", "(00,01)"}},
			{Name: "NB", Side: fault.PullDown, Input: 1, Seqs: []string{"(00,10)", "(00,01)"}},
		},
	}
	for ci := range t.Columns {
		col := &t.Columns[ci]
		col.Cells = make(map[obd.Stage]map[string]Table1Cell)
		h, err := cells.NewGateHarness(p, logic.Nor, 2)
		if err != nil {
			return nil, err
		}
		inj := obd.Inject(h.B.C, "f", h.FETFor(col.Side, col.Input), obd.FaultFree)
		for _, st := range t.Stages {
			inj.SetStage(st)
			col.Cells[st] = make(map[string]Table1Cell)
			for _, seq := range col.Seqs {
				pr, err := fault.ParsePair(seq)
				if err != nil {
					return nil, err
				}
				if err := h.Apply(pr, TSwitch, TEdge); err != nil {
					return nil, err
				}
				res, err := h.Run(TStop, TStep)
				if err != nil {
					return nil, fmt.Errorf("exper: NOR table %s %v %s: %w", col.Name, st, seq, err)
				}
				m, err := h.Measure(res, pr, TSwitch, TEdge)
				if err != nil {
					return nil, err
				}
				col.Cells[st][seq] = Table1Cell{Stage: st, Seq: seq, Meas: m}
			}
		}
	}
	return t, nil
}

// Format renders the table.
func (t *NORTable) Format() string {
	var b strings.Builder
	b.WriteString("Section 5 extension: NOR OBD progression (driven-gate harness)\n")
	fmt.Fprintf(&b, "%-10s", "Stage")
	for _, col := range t.Columns {
		for _, seq := range col.Seqs {
			fmt.Fprintf(&b, " %14s", col.Name+seq)
		}
	}
	b.WriteString("\n")
	for _, st := range t.Stages {
		fmt.Fprintf(&b, "%-10s", st.String())
		for _, col := range t.Columns {
			for _, seq := range col.Seqs {
				fmt.Fprintf(&b, " %14s", col.Cells[st][seq].EntryString())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// norSeqExcites encodes the Section 5 NOR rule: PMOS (series) defects by
// every rising sequence; NMOS defects only when their own input rises
// alone: NA ← (00,10), NB ← (00,01).
func norSeqExcites(col *Table1Column, seq string) bool {
	if col.Side == fault.PullUp {
		return true
	}
	if col.Name == "NA" {
		return seq == "(00,10)"
	}
	return seq == "(00,01)"
}

// Check verifies the dual of the Table 1 shape: excited cells grow
// monotonically pre-HBD; non-excited cells stay at their fault-free value;
// every excited progression ends stuck (or static-corrupted) at HBD.
func (t *NORTable) Check() []string {
	var bad []string
	pre := []obd.Stage{obd.FaultFree, obd.MBD1, obd.MBD2, obd.MBD3}
	for ci := range t.Columns {
		col := &t.Columns[ci]
		for _, seq := range col.Seqs {
			if !norSeqExcites(col, seq) {
				ff := col.Cells[obd.FaultFree][seq].Meas.Delay
				for _, st := range pre[1:] {
					c := col.Cells[st][seq]
					if c.Meas.Kind != waveform.TransitionOK || c.Meas.Delay > 1.15*ff {
						bad = append(bad, fmt.Sprintf("NOR %s %s should be unaffected at %v", col.Name, seq, st))
					}
				}
				continue
			}
			prev := 0.0
			for _, st := range pre {
				c := col.Cells[st][seq]
				if c.Meas.Kind != waveform.TransitionOK {
					// NMOS OBD in a sole pulldown corrupts the static level
					// already pre-HBD (the Fig. 4 mechanism); accept stuck
					// classifications on the NMOS side from MBD2 on.
					if col.Side == fault.PullDown && st >= obd.MBD2 {
						continue
					}
					bad = append(bad, fmt.Sprintf("NOR %s %s stuck too early at %v", col.Name, seq, st))
					continue
				}
				if c.Meas.Delay < prev*0.98 {
					bad = append(bad, fmt.Sprintf("NOR %s %s not monotone at %v", col.Name, seq, st))
				}
				prev = c.Meas.Delay
			}
			if c := col.Cells[obd.HBD][seq]; c.Meas.Kind == waveform.TransitionOK {
				bad = append(bad, fmt.Sprintf("NOR %s %s not stuck at HBD", col.Name, seq))
			}
		}
	}
	return bad
}
