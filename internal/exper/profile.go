package exper

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
)

// DetectProfile characterizes how random-resistant each testable OBD fault
// is: its detection probability p = (detecting pairs) / (all input
// transitions). The profile explains the empirical behaviour of both the
// workload checker (expected detection latency ≈ 1/p launches) and the
// BIST stream length requirements — the tail of low-p faults is what the
// paper's deterministic, excitation-aware sequences buy over random
// exercise.
type DetectProfile struct {
	Name      string
	Pairs     int
	Probs     []float64 // sorted detection probabilities of testable faults
	Hardest   string    // fault with the smallest p
	HardestP  float64
	MedianP   float64
	HardCount int // faults with p < 0.1
}

// RunDetectProfile profiles the full adder.
func RunDetectProfile() (*DetectProfile, error) {
	lc := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(lc)
	ex, err := atpg.AnalyzeExhaustive(lc, faults)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(faults))
	for _, det := range ex.DetectedBy {
		for _, fi := range det {
			counts[fi]++
		}
	}
	out := &DetectProfile{Name: lc.Name, Pairs: len(ex.Pairs), HardestP: 2}
	for fi, n := range counts {
		if n == 0 {
			continue // untestable
		}
		p := float64(n) / float64(len(ex.Pairs))
		out.Probs = append(out.Probs, p)
		if p < out.HardestP {
			out.HardestP = p
			out.Hardest = faults[fi].String()
		}
		if p < 0.1 {
			out.HardCount++
		}
	}
	sort.Float64s(out.Probs)
	if n := len(out.Probs); n > 0 {
		out.MedianP = out.Probs[n/2]
	}
	return out, nil
}

// Format prints the profile summary.
func (d *DetectProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection-probability profile on %s (%d transitions)\n", d.Name, d.Pairs)
	fmt.Fprintf(&b, "  testable faults: %d, median p = %.3f\n", len(d.Probs), d.MedianP)
	fmt.Fprintf(&b, "  hardest fault: %s at p = %.3f (expected random latency %.0f launches)\n",
		d.Hardest, d.HardestP, 1/d.HardestP)
	fmt.Fprintf(&b, "  random-resistant faults (p < 0.1): %d\n", d.HardCount)
	return b.String()
}

// Check verifies the profile has the long-tail structure the deterministic
// sequences exploit: a hardest fault well below the median, and at least
// one random-resistant fault.
func (d *DetectProfile) Check() []string {
	var bad []string
	if len(d.Probs) == 0 {
		return []string{"no testable faults profiled"}
	}
	if d.HardestP <= 0 || d.HardestP > d.MedianP {
		bad = append(bad, fmt.Sprintf("profile not long-tailed: hardest %.3f vs median %.3f", d.HardestP, d.MedianP))
	}
	if d.HardCount == 0 {
		bad = append(bad, "no random-resistant faults found")
	}
	return bad
}
