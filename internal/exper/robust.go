package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/diag"
	"gobd/internal/fault"
)

// NDetectRow is one n value's summary.
type NDetectRow struct {
	N           int
	Tests       int
	Coverage    atpg.Coverage
	MinDetected int           // minimum per-fault detection count among detected faults
	Unique      int           // uniquely diagnosable faults under this set
	DoubleCov   atpg.Coverage // coverage of all two-defect ensembles
}

// NDetect evaluates n-detect OBD test sets (the Pomeranz-style
// n-detection the paper cites for transition faults) on the full adder:
// larger n costs more vectors but hardens the set — better diagnosis
// resolution and better coverage of multi-defect scenarios, both relevant
// to a long-running concurrent test/diagnose/repair loop where defects
// accumulate.
type NDetect struct {
	Rows []NDetectRow
}

// RunNDetect runs n ∈ {1, 3, 5} on the full adder.
func RunNDetect() (*NDetect, error) {
	lc := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(lc)
	// Two-defect ensembles over the testable faults.
	ex, err := atpg.AnalyzeExhaustive(lc, faults)
	if err != nil {
		return nil, err
	}
	var testable []fault.OBD
	for i, ok := range ex.Testable {
		if ok {
			testable = append(testable, faults[i])
		}
	}
	var ensembles [][]fault.OBD
	for i := 0; i < len(testable); i++ {
		for j := i + 1; j < len(testable); j++ {
			ensembles = append(ensembles, []fault.OBD{testable[i], testable[j]})
		}
	}
	out := &NDetect{}
	for _, n := range []int{1, 3, 5} {
		ts, err := atpg.GenerateNDetectOBDTests(lc, faults, n)
		if err != nil {
			return nil, err
		}
		row := NDetectRow{N: n, Tests: len(ts.Tests), Coverage: ts.Coverage}
		counts, err := atpg.DetectionCounts(lc, faults, ts.Tests)
		if err != nil {
			return nil, err
		}
		row.MinDetected = 1 << 30
		for fi := range faults {
			if counts[fi] > 0 && counts[fi] < row.MinDetected {
				row.MinDetected = counts[fi]
			}
		}
		d := diag.Build(lc, faults, ts.Tests)
		row.Unique = d.UniquelyDiagnosable()
		if row.DoubleCov, err = atpg.GradeOBDMulti(lc, ensembles, ts.Tests); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format prints the n-detect table.
func (nd *NDetect) Format() string {
	var b strings.Builder
	b.WriteString("n-detect OBD test sets on the full adder (robustness & diagnosis)\n")
	fmt.Fprintf(&b, "  %2s %6s %16s %8s %8s %18s\n", "n", "tests", "coverage", "min-det", "unique", "double-defect cov")
	for _, r := range nd.Rows {
		fmt.Fprintf(&b, "  %2d %6d %16s %8d %8d %18s\n",
			r.N, r.Tests, r.Coverage.String(), r.MinDetected, r.Unique, r.DoubleCov.String())
	}
	return b.String()
}

// Check verifies monotone hardening: set size, minimum detection count,
// unique diagnosability and double-defect coverage never decrease with n,
// single-fault coverage stays at the testable maximum throughout, and n=5
// strictly improves diagnosis or double coverage over n=1.
func (nd *NDetect) Check() []string {
	var bad []string
	var prev *NDetectRow
	for i := range nd.Rows {
		r := &nd.Rows[i]
		if prev != nil {
			if r.Tests < prev.Tests {
				bad = append(bad, fmt.Sprintf("n=%d: fewer tests than n=%d", r.N, prev.N))
			}
			if r.MinDetected < prev.MinDetected {
				bad = append(bad, fmt.Sprintf("n=%d: min detection count fell", r.N))
			}
			if r.Unique < prev.Unique {
				bad = append(bad, fmt.Sprintf("n=%d: diagnosis resolution fell", r.N))
			}
			if r.DoubleCov.Detected < prev.DoubleCov.Detected {
				bad = append(bad, fmt.Sprintf("n=%d: double-defect coverage fell", r.N))
			}
			if r.Coverage.Detected != prev.Coverage.Detected {
				bad = append(bad, fmt.Sprintf("n=%d: single-fault coverage changed", r.N))
			}
		}
		prev = r
	}
	first, last := nd.Rows[0], nd.Rows[len(nd.Rows)-1]
	if last.Unique <= first.Unique && last.DoubleCov.Detected <= first.DoubleCov.Detected {
		bad = append(bad, "n=5 shows no hardening over n=1")
	}
	return bad
}
