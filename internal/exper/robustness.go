package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// SupplyPoint is one supply-voltage corner of the robustness sweep.
type SupplyPoint struct {
	VDD      float64
	Nominal  waveform.DelayMeasurement // fault-free falling delay
	NMOSMBD2 waveform.DelayMeasurement // NMOS@A defect at MBD2
	PMOSMBD2 waveform.DelayMeasurement // PMOS@B defect at MBD2 (own sequence)
	PMOSOpp  waveform.DelayMeasurement // PMOS@B defect under the other sequence
}

// RatioN returns the NMOS MBD2/nominal delay ratio.
func (s SupplyPoint) RatioN() float64 { return s.NMOSMBD2.Delay / s.Nominal.Delay }

// SupplyRobustness checks that the paper's qualitative conclusions are
// not artifacts of the chosen supply voltage: the Table 1 orderings
// (defect slower than nominal, PMOS input-specificity) must hold across
// VDD corners, because the diode-resistor network competes with drivers
// whose strength scales with VDD.
type SupplyRobustness struct {
	Points []SupplyPoint
}

// RunSupplyRobustness sweeps VDD over ±10% corners.
func RunSupplyRobustness(base *spice.Process) (*SupplyRobustness, error) {
	out := &SupplyRobustness{}
	for _, vdd := range []float64{base.VDD * 0.9, base.VDD, base.VDD * 1.1} {
		p := *base
		p.VDD = vdd
		pt := SupplyPoint{VDD: vdd}

		measure := func(side fault.Side, input int, stage obd.Stage, seq string) (waveform.DelayMeasurement, error) {
			h := cells.NewNANDHarness(&p, 2)
			inj := obd.Inject(h.B.C, "f", h.FETFor(side, input), obd.FaultFree)
			inj.SetStage(stage)
			pr, err := fault.ParsePair(seq)
			if err != nil {
				return waveform.DelayMeasurement{}, err
			}
			h.Apply(pr, TSwitch, TEdge)
			res, err := h.Run(TStop, TStep)
			if err != nil {
				return waveform.DelayMeasurement{}, err
			}
			return h.Measure(res, pr, TSwitch, TEdge)
		}
		var err error
		if pt.Nominal, err = measure(fault.PullDown, 0, obd.FaultFree, "(01,11)"); err != nil {
			return nil, fmt.Errorf("exper: robustness VDD=%.2f nominal: %w", vdd, err)
		}
		if pt.NMOSMBD2, err = measure(fault.PullDown, 0, obd.MBD2, "(01,11)"); err != nil {
			return nil, err
		}
		if pt.PMOSMBD2, err = measure(fault.PullUp, 1, obd.MBD2, "(11,10)"); err != nil {
			return nil, err
		}
		if pt.PMOSOpp, err = measure(fault.PullUp, 1, obd.MBD2, "(11,01)"); err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Format prints the corner table.
func (r *SupplyRobustness) Format() string {
	var b strings.Builder
	b.WriteString("Robustness: Table 1 orderings across supply corners\n")
	fmt.Fprintf(&b, "  %6s %10s %12s %14s %14s %8s\n",
		"VDD", "nominal", "NMOS MBD2", "PMOS own-seq", "PMOS other", "N-ratio")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "  %5.2fV %10s %12s %14s %14s %8.2f\n",
			pt.VDD,
			Table1Cell{Meas: pt.Nominal}.EntryString(),
			Table1Cell{Meas: pt.NMOSMBD2}.EntryString(),
			Table1Cell{Meas: pt.PMOSMBD2}.EntryString(),
			Table1Cell{Meas: pt.PMOSOpp}.EntryString(),
			pt.RatioN())
	}
	return b.String()
}

// Check verifies at every corner: the NMOS defect slows the gate by at
// least 20%, the PMOS defect slows its own sequence by at least 15%, and
// the PMOS defect leaves the other sequence within 5% of itself across
// corners (input-specificity is supply-independent).
func (r *SupplyRobustness) Check() []string {
	var bad []string
	for _, pt := range r.Points {
		if pt.Nominal.Kind != waveform.TransitionOK || pt.NMOSMBD2.Kind != waveform.TransitionOK ||
			pt.PMOSMBD2.Kind != waveform.TransitionOK || pt.PMOSOpp.Kind != waveform.TransitionOK {
			bad = append(bad, fmt.Sprintf("VDD=%.2f: unexpected stuck measurement", pt.VDD))
			continue
		}
		if pt.RatioN() < 1.2 {
			bad = append(bad, fmt.Sprintf("VDD=%.2f: NMOS ratio %.2f below 1.2", pt.VDD, pt.RatioN()))
		}
		if pt.PMOSMBD2.Delay < 1.15*pt.PMOSOpp.Delay {
			bad = append(bad, fmt.Sprintf("VDD=%.2f: PMOS input-specificity lost", pt.VDD))
		}
	}
	return bad
}
