package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// ScanRow is one circuit's entry in the DFT comparison.
type ScanRow struct {
	Name       string
	Universe   int
	Enhanced   atpg.Coverage // unconstrained vector pairs (enhanced scan)
	LOS        atpg.Coverage // launch-on-shift constrained pairs
	LOSExact   bool
	LOSVectors int
	EnhVectors int
}

// ScanComparison reproduces the paper's Section 5 DFT remark
// quantitatively: OBD tests need two specific vectors on consecutive
// cycles, so standard scan with launch-on-shift — which can only launch a
// 1-bit shift of the loaded vector — covers fewer OBD faults than
// enhanced scan, which applies arbitrary pairs. "We need
// design-for-testability methods to enhance controllability."
type ScanComparison struct {
	Rows []ScanRow
}

// scanSuite returns the circuits used by the comparison.
func scanSuite() []*logic.Circuit {
	return []*logic.Circuit{
		cells.FullAdderSumLogic(),
		logic.C17(),
		logic.ParityTree(4),
		logic.Mux41(),
	}
}

// RunScanComparison runs both generators over the benchmark suite.
func RunScanComparison() (*ScanComparison, error) {
	out := &ScanComparison{}
	for _, lc := range scanSuite() {
		faults, _ := fault.OBDUniverse(lc)
		enh, err := atpg.GenerateOBDTests(lc, faults, nil)
		if err != nil {
			return nil, err
		}
		los, err := atpg.GenerateLOSTests(lc, faults, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ScanRow{
			Name:       lc.Name,
			Universe:   len(faults),
			Enhanced:   enh.Coverage,
			LOS:        los.Coverage,
			LOSExact:   los.Exact,
			LOSVectors: len(los.Tests),
			EnhVectors: len(enh.Tests),
		})
	}
	return out, nil
}

// Format prints the comparison table.
func (s *ScanComparison) Format() string {
	var b strings.Builder
	b.WriteString("Section 5 DFT: enhanced scan vs launch-on-shift OBD coverage\n")
	fmt.Fprintf(&b, "  %-15s %8s %18s %18s\n", "circuit", "faults", "enhanced scan", "launch-on-shift")
	for _, r := range s.Rows {
		exact := ""
		if r.LOSExact {
			exact = " (exact)"
		}
		fmt.Fprintf(&b, "  %-15s %8d %18s %18s%s\n", r.Name, r.Universe,
			r.Enhanced.String(), r.LOS.String(), exact)
	}
	return b.String()
}

// Check verifies LOS never exceeds enhanced scan and falls strictly short
// somewhere — the reason the paper calls for DFT support.
func (s *ScanComparison) Check() []string {
	var bad []string
	strict := false
	for _, r := range s.Rows {
		if r.LOS.Detected > r.Enhanced.Detected {
			bad = append(bad, fmt.Sprintf("%s: LOS above enhanced scan", r.Name))
		}
		if r.LOS.Detected < r.Enhanced.Detected {
			strict = true
		}
	}
	if !strict {
		bad = append(bad, "LOS matched enhanced scan everywhere (no DFT motivation shown)")
	}
	return bad
}

// GapSuite runs the traditional-vs-OBD coverage comparison across the
// benchmark circuits (the multi-circuit generalization of the paper's
// full-adder result).
type GapSuite struct {
	Gaps []*CoverageGap
}

// RunGapSuite runs RunCoverageGap on every benchmark circuit.
func RunGapSuite() (*GapSuite, error) {
	out := &GapSuite{}
	for _, lc := range scanSuite() {
		g, err := RunCoverageGap(lc.Name, lc)
		if err != nil {
			return nil, err
		}
		out.Gaps = append(out.Gaps, g)
	}
	return out, nil
}

// Format prints every circuit's comparison.
func (g *GapSuite) Format() string {
	var b strings.Builder
	for _, gap := range g.Gaps {
		b.WriteString(gap.Format())
	}
	return b.String()
}

// Check requires every circuit to show the gap.
func (g *GapSuite) Check() []string {
	var bad []string
	for _, gap := range g.Gaps {
		for _, v := range gap.Check() {
			bad = append(bad, gap.Name+": "+v)
		}
	}
	return bad
}
