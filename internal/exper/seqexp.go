package exper

import (
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/seq"
)

// SeqModeRow is one sequential testbed's coverage per application mode.
type SeqModeRow struct {
	Name     string
	Universe int
	Cov      map[seq.Mode]atpg.Coverage
}

// SeqModes extends the DFT study to sequential circuits: the same
// combinational core graded under enhanced scan, launch-on-shift and
// launch-on-capture pair spaces (each enumerated exhaustively). It
// quantifies the paper's Section 5 statement that sequential TPG for OBD
// "is more complicated than sequential TPG for stuck-at faults due to the
// need to generate two distinct input combinations at consecutive clock
// cycles".
type SeqModes struct {
	Rows []SeqModeRow
}

// RunSeqModes runs the three modes over the sequential testbeds.
func RunSeqModes() (*SeqModes, error) {
	out := &SeqModes{}
	testbeds := []struct {
		name  string
		build func() (*seq.Circuit, error)
	}{
		{"accumulator2", func() (*seq.Circuit, error) { return seq.Accumulator(2) }},
		{"accumulator3", func() (*seq.Circuit, error) { return seq.Accumulator(3) }},
		{"doubler2", func() (*seq.Circuit, error) { return seq.Doubler(2) }},
		{"doubler3", func() (*seq.Circuit, error) { return seq.Doubler(3) }},
	}
	for _, tb := range testbeds {
		s, err := tb.build()
		if err != nil {
			return nil, err
		}
		row := SeqModeRow{Name: tb.name, Cov: make(map[seq.Mode]atpg.Coverage)}
		for _, m := range []seq.Mode{seq.EnhancedScan, seq.LaunchOnShift, seq.LaunchOnCapture} {
			cov, err := s.ModeCoverage(m)
			if err != nil {
				return nil, fmt.Errorf("exper: %s %v: %w", tb.name, m, err)
			}
			row.Cov[m] = cov
			row.Universe = cov.Total
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format prints the mode table.
func (s *SeqModes) Format() string {
	var b strings.Builder
	b.WriteString("Section 5 (sequential): OBD coverage per test-application mode (exhaustive pair spaces)\n")
	fmt.Fprintf(&b, "  %-14s %8s %18s %18s %18s\n", "testbed", "faults", "enhanced-scan", "launch-on-shift", "launch-on-capture")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "  %-14s %8d %18s %18s %18s\n", r.Name, r.Universe,
			r.Cov[seq.EnhancedScan].String(), r.Cov[seq.LaunchOnShift].String(), r.Cov[seq.LaunchOnCapture].String())
	}
	return b.String()
}

// Check verifies: no constrained mode exceeds enhanced scan anywhere, and
// at least one testbed shows a strict launch-on-capture gap (the
// functional-launch limitation that motivates DFT support).
func (s *SeqModes) Check() []string {
	var bad []string
	strictLOC := false
	for _, r := range s.Rows {
		enh := r.Cov[seq.EnhancedScan].Detected
		for _, m := range []seq.Mode{seq.LaunchOnShift, seq.LaunchOnCapture} {
			if r.Cov[m].Detected > enh {
				bad = append(bad, fmt.Sprintf("%s: %v exceeds enhanced scan", r.Name, m))
			}
		}
		if r.Cov[seq.LaunchOnCapture].Detected < enh {
			strictLOC = true
		}
	}
	if !strictLOC {
		bad = append(bad, "no testbed shows a launch-on-capture gap")
	}
	return bad
}
