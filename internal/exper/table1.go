// Package exper contains the experiment runners that regenerate every data
// table and figure of the paper (Table 1, Figures 4, 6, 7 and 9, the
// Section 4.1/5 excitation sets, the Section 4.3 full-adder counts, the
// coverage-gap and EM-comparison studies, and the Section 4.2 detection
// window), plus the ablations called out in DESIGN.md. Each runner returns
// a structured result with a Format method that prints paper-style text;
// cmd/obdrepro and the repository benchmarks are thin wrappers around this
// package.
package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// Transient stimulus timing shared by the analog experiments.
const (
	TSwitch = 1e-9   // time of the stimulus edge start
	TEdge   = 50e-12 // stimulus edge duration
	TStop   = 4e-9   // transient end
	TStep   = 1e-12  // nominal transient step
)

// Table1Cell is one measured entry of Table 1.
type Table1Cell struct {
	Stage obd.Stage
	Seq   string // paper notation, e.g. "(01,11)"
	Meas  waveform.DelayMeasurement
}

// EntryString renders the cell the way the paper's table does.
func (c Table1Cell) EntryString() string {
	if c.Meas.Kind != waveform.TransitionOK {
		return c.Meas.Kind.String()
	}
	return fmt.Sprintf("%.0fps", c.Meas.Delay*1e12)
}

// Table1Column is one fault target (NA/NB/PA/PB) with its two measured
// sequences per stage.
type Table1Column struct {
	Name  string // "NA", "NB", "PA", "PB"
	Side  fault.Side
	Input int
	Seqs  []string
	Cells map[obd.Stage]map[string]Table1Cell // stage -> seq -> cell
}

// Table1 is the full reproduction of the paper's Table 1.
type Table1 struct {
	Columns []Table1Column
	Stages  []obd.Stage
}

// table1Targets mirrors the paper's column layout: NMOS defects measured
// under the falling-output sequences, PMOS defects under the rising ones.
func table1Targets() []Table1Column {
	return []Table1Column{
		{Name: "NA", Side: fault.PullDown, Input: 0, Seqs: []string{"(01,11)", "(10,11)"}},
		{Name: "NB", Side: fault.PullDown, Input: 1, Seqs: []string{"(01,11)", "(10,11)"}},
		{Name: "PA", Side: fault.PullUp, Input: 0, Seqs: []string{"(11,10)", "(11,01)"}},
		{Name: "PB", Side: fault.PullUp, Input: 1, Seqs: []string{"(11,10)", "(11,01)"}},
	}
}

// RunTable1 measures the Fig. 5 harness across all breakdown stages and
// input sequences for each of the four NAND transistors.
func RunTable1(p *spice.Process) (*Table1, error) {
	t := &Table1{Stages: obd.Stages(), Columns: table1Targets()}
	for ci := range t.Columns {
		col := &t.Columns[ci]
		col.Cells = make(map[obd.Stage]map[string]Table1Cell)
		h := cells.NewNANDHarness(p, 2)
		inj := obd.Inject(h.B.C, "f", h.FETFor(col.Side, col.Input), obd.FaultFree)
		for _, st := range t.Stages {
			inj.SetStage(st)
			col.Cells[st] = make(map[string]Table1Cell)
			for _, seq := range col.Seqs {
				pr, err := fault.ParsePair(seq)
				if err != nil {
					return nil, err
				}
				h.Apply(pr, TSwitch, TEdge)
				res, err := h.Run(TStop, TStep)
				if err != nil {
					return nil, fmt.Errorf("exper: table1 %s %v %s: %w", col.Name, st, seq, err)
				}
				m, err := h.Measure(res, pr, TSwitch, TEdge)
				if err != nil {
					return nil, fmt.Errorf("exper: table1 %s %v %s: %w", col.Name, st, seq, err)
				}
				col.Cells[st][seq] = Table1Cell{Stage: st, Seq: seq, Meas: m}
			}
		}
	}
	return t, nil
}

// Format renders the table in the paper's layout.
func (t *Table1) Format() string {
	var b strings.Builder
	b.WriteString("Table 1: NMOS and PMOS OBD progression (Fig. 5 harness)\n")
	fmt.Fprintf(&b, "%-10s", "Stage")
	for _, col := range t.Columns {
		for _, seq := range col.Seqs {
			fmt.Fprintf(&b, " %14s", col.Name+seq)
		}
	}
	b.WriteString("\n")
	for _, st := range t.Stages {
		fmt.Fprintf(&b, "%-10s", st.String())
		for _, col := range t.Columns {
			for _, seq := range col.Seqs {
				fmt.Fprintf(&b, " %14s", col.Cells[st][seq].EntryString())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Check validates the paper's qualitative claims against the measured
// table, returning a list of violations (empty = full shape agreement):
//   - NMOS columns grow monotonically with stage and end stuck (sa-1);
//   - NMOS delays are input-sequence independent to within a factor;
//   - each PMOS defect responds ONLY to its own sequence and ends stuck.
func (t *Table1) Check() []string {
	var bad []string
	mbd := []obd.Stage{obd.FaultFree, obd.MBD1, obd.MBD2, obd.MBD3}
	for _, col := range t.Columns {
		for _, seq := range col.Seqs {
			excites := col.Side == fault.PullDown || pmosSeqExcites(col.Name, seq)
			if !excites {
				// Non-exciting sequence: delay must stay within 15% of the
				// fault-free value at every pre-HBD stage.
				ff := col.Cells[obd.FaultFree][seq].Meas.Delay
				for _, st := range mbd[1:] {
					c := col.Cells[st][seq]
					if c.Meas.Kind != waveform.TransitionOK || c.Meas.Delay > 1.15*ff {
						bad = append(bad, fmt.Sprintf("%s %s should be unaffected at %v", col.Name, seq, st))
					}
				}
				continue
			}
			prev := 0.0
			for _, st := range mbd {
				c := col.Cells[st][seq]
				if c.Meas.Kind != waveform.TransitionOK {
					bad = append(bad, fmt.Sprintf("%s %s stuck too early at %v", col.Name, seq, st))
					continue
				}
				if c.Meas.Delay < prev*0.98 {
					bad = append(bad, fmt.Sprintf("%s %s not monotone at %v", col.Name, seq, st))
				}
				prev = c.Meas.Delay
			}
			if c := col.Cells[obd.HBD][seq]; c.Meas.Kind == waveform.TransitionOK {
				bad = append(bad, fmt.Sprintf("%s %s not stuck at HBD", col.Name, seq))
			}
		}
	}
	return bad
}

// pmosSeqExcites reports whether a rising sequence excites the given PMOS
// column per the paper's input-specific rule.
func pmosSeqExcites(col, seq string) bool {
	switch col {
	case "PA":
		return seq == "(11,01)"
	case "PB":
		return seq == "(11,10)"
	default:
		return false
	}
}
