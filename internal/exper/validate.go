package exper

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// RuleSample is one (fault, pair) analog measurement of the rule
// validation.
type RuleSample struct {
	Fault     string
	Pair      fault.Pair
	Predicted bool // gate-level excitation rule says detectable
	FaultFree waveform.DelayMeasurement
	Faulty    waveform.DelayMeasurement
	Delta     float64 // (faulty-faultfree)/faultfree, when both transition
}

// RuleValidation cross-validates the paper's gate-level excitation rule
// against the analog OBD model on one gate type: every OBD fault of the
// gate is injected at a mid breakdown stage and measured under every
// ordered input pair that toggles the output; pairs the rule marks as
// exciting must show substantially more added delay than pairs it does
// not.
type RuleValidation struct {
	GateName string
	Stage    obd.Stage
	Samples  []RuleSample
	// MinExcitedFloor is the added-delay fraction every rule-predicted
	// pair must reach. It is 0.12 for the paper's NAND/NOR claims; for
	// complex gates (AOI) the rule still orders pairs correctly but the
	// weakest PMOS effects shrink — the magnitude softness the paper's
	// Section 5 "complex gates" caveat anticipates — so the runner lowers
	// the floor to 0.05 there.
	MinExcitedFloor float64
}

// RunRuleValidation runs the cross-validation for one primitive gate type.
func RunRuleValidation(p *spice.Process, typ logic.GateType, arity int, stage obd.Stage) (*RuleValidation, error) {
	faults, err := fault.GateOBDFaults(typ, arity)
	if err != nil {
		return nil, err
	}
	out := &RuleValidation{GateName: fmt.Sprintf("%v/%d", typ, arity), Stage: stage, MinExcitedFloor: 0.12}
	if typ == logic.Aoi21 || typ == logic.Oai21 {
		out.MinExcitedFloor = 0.05
	}
	// Enumerate output-toggling complete pairs once.
	gate := &logic.Gate{Name: "DUT", Type: typ, Inputs: make([]string, arity)}
	var pairs []fault.Pair
	asg := allAssignments(arity)
	for _, v1 := range asg {
		for _, v2 := range asg {
			o1, o2 := gate.Eval(v1), gate.Eval(v2)
			if o1.IsKnown() && o2.IsKnown() && o1 != o2 {
				pairs = append(pairs, fault.Pair{V1: v1, V2: v2})
			}
		}
	}
	// Fault-free reference per pair.
	ffH, err := cells.NewGateHarness(p, typ, arity)
	if err != nil {
		return nil, err
	}
	ff := make(map[string]waveform.DelayMeasurement, len(pairs))
	for _, pr := range pairs {
		m, err := measureGate(ffH, pr)
		if err != nil {
			return nil, fmt.Errorf("exper: rule validation fault-free %s: %w", pr, err)
		}
		ff[pr.String()] = m
	}
	for _, f := range faults {
		h, err := cells.NewGateHarness(p, typ, arity)
		if err != nil {
			return nil, err
		}
		inj := obd.Inject(h.B.C, "f", h.FETFor(f.Side, f.Input), obd.FaultFree)
		inj.SetStage(stage)
		for _, pr := range pairs {
			m, err := measureGate(h, pr)
			if err != nil {
				return nil, fmt.Errorf("exper: rule validation %s %s: %w", f, pr, err)
			}
			s := RuleSample{
				Fault:     f.String(),
				Pair:      pr,
				Predicted: f.Excited(pr.V1, pr.V2),
				FaultFree: ff[pr.String()],
				Faulty:    m,
			}
			if s.FaultFree.Kind == waveform.TransitionOK && s.Faulty.Kind == waveform.TransitionOK {
				s.Delta = (s.Faulty.Delay - s.FaultFree.Delay) / s.FaultFree.Delay
			}
			out.Samples = append(out.Samples, s)
		}
	}
	return out, nil
}

// allAssignments yields every complete 0/1 assignment of width n (index
// bit i = value of input i).
func allAssignments(n int) [][]logic.Value {
	out := make([][]logic.Value, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		vs := make([]logic.Value, n)
		for i := range vs {
			vs[i] = logic.FromBool(m&(1<<i) != 0)
		}
		out = append(out, vs)
	}
	return out
}

func measureGate(h *cells.GateHarness, pr fault.Pair) (waveform.DelayMeasurement, error) {
	if err := h.Apply(pr, TSwitch, TEdge); err != nil {
		return waveform.DelayMeasurement{}, err
	}
	res, err := h.Run(TStop, TStep)
	if err != nil {
		return waveform.DelayMeasurement{}, err
	}
	return h.Measure(res, pr, TSwitch, TEdge)
}

// FaultSeparation returns, per fault, the smallest added-delay fraction
// among its rule-predicted pairs and the largest among its non-predicted
// pairs (a stuck faulty output counts as a very large delay on the
// predicted side; non-predicted pairs whose run failed to transition are
// static-level corruptions — see StaticCorruptions — and are excluded from
// the delay comparison).
func (v *RuleValidation) FaultSeparation() map[string][2]float64 {
	out := make(map[string][2]float64)
	for _, s := range v.Samples {
		cur, ok := out[s.Fault]
		if !ok {
			cur = [2]float64{1e9, -1e9}
		}
		if s.Predicted {
			d := s.Delta
			if s.Faulty.Kind != waveform.TransitionOK {
				d = 10
			}
			if d < cur[0] {
				cur[0] = d
			}
		} else if s.Faulty.Kind == waveform.TransitionOK && s.Delta > cur[1] {
			cur[1] = s.Delta
		}
		out[s.Fault] = cur
	}
	return out
}

// StaticCorruptions returns the non-predicted samples whose faulty run
// never completed the expected transition — cases where the defect has
// corrupted the static launch level (the Fig. 4 VOL/VOH-shift mechanism),
// a divergence from the pure delay-fault view that static or IDDQ testing
// would catch instead.
func (v *RuleValidation) StaticCorruptions() []RuleSample {
	var out []RuleSample
	for _, s := range v.Samples {
		if !s.Predicted && s.Faulty.Kind != waveform.TransitionOK {
			out = append(out, s)
		}
	}
	return out
}

// Format prints the per-sample deltas, predicted rows first.
func (v *RuleValidation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rule validation on %s at %v (%d samples)\n", v.GateName, v.Stage, len(v.Samples))
	samples := append([]RuleSample(nil), v.Samples...)
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Predicted != samples[j].Predicted {
			return samples[i].Predicted
		}
		return samples[i].Delta > samples[j].Delta
	})
	for _, s := range samples {
		tag := "-"
		if s.Predicted {
			tag = "EXCITE"
		}
		entry := fmt.Sprintf("%+.1f%%", s.Delta*100)
		if s.Faulty.Kind != waveform.TransitionOK {
			entry = s.Faulty.Kind.String()
		}
		fmt.Fprintf(&b, "  %-16s %-10s %-7s %s\n", s.Fault, s.Pair, tag, entry)
	}
	sep := v.FaultSeparation()
	for _, f := range sortedKeys(sep) {
		fmt.Fprintf(&b, "  %-16s min excited %+.1f%%, max non-excited %+.1f%%\n", f, sep[f][0]*100, sep[f][1]*100)
	}
	if sc := v.StaticCorruptions(); len(sc) > 0 {
		fmt.Fprintf(&b, "  %d static-level corruptions outside the excitation set (Fig. 4 mechanism):\n", len(sc))
		for _, s := range sc {
			fmt.Fprintf(&b, "    %s %s -> %v\n", s.Fault, s.Pair, s.Faulty.Kind)
		}
	}
	return b.String()
}

// Check verifies the per-fault separation the paper's test-generation use
// requires: for every fault, its weakest rule-predicted pair adds at least
// MinExcitedFloor delay (or sticks the output) AND clearly exceeds the
// strongest non-predicted pair for that same fault. Cross-fault
// comparisons are deliberately not made — a redundant parallel transistor
// weakened by OBD still perturbs timing somewhat (a known softness of
// series-parallel abstractions that the paper's Section 5 caveat
// anticipates).
func (v *RuleValidation) Check() []string {
	var bad []string
	seps := v.FaultSeparation()
	for _, f := range sortedKeys(seps) {
		mp, mo := seps[f][0], seps[f][1]
		if mp == 1e9 {
			continue // fault has no predicted pair at this gate (untestable)
		}
		if mp < v.MinExcitedFloor {
			bad = append(bad, fmt.Sprintf("%s %s: weakest excited pair only %+.1f%%", v.GateName, f, mp*100))
		}
		if mo > -1e9 && mo >= mp {
			bad = append(bad, fmt.Sprintf("%s %s: no separation (%.1f%% vs %.1f%%)", v.GateName, f, mp*100, mo*100))
		}
	}
	return bad
}

// sortedKeys returns the map's keys in sorted order, so per-fault output
// is reproducible run to run.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
