package exper

import (
	"fmt"
	"strings"

	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/obd"
	"gobd/internal/sched"
	"gobd/internal/spice"
	"gobd/internal/waveform"
)

// WindowSample is one point of the delay-versus-time characterization.
type WindowSample struct {
	T     float64 // seconds after SBD onset
	Meas  waveform.DelayMeasurement
	Param obd.Params
}

// DetectionWindow reproduces the Section 4.2 analysis: the diode-resistor
// model determines the delay at each progression stage, which in turn
// determines when a concurrent detection mechanism with a given timing
// slack first sees the defect — and therefore how often it must test.
type DetectionWindow struct {
	Nominal  float64 // fault-free delay (s)
	Samples  []WindowSample
	Windows  []sched.Window // per-slack detection windows
	Progress *obd.Progression
}

// RunDetectionWindow characterizes an NMOS OBD on the Fig. 5 NAND along
// the progression trajectory and computes windows for several slacks.
func RunDetectionWindow(p *spice.Process, points int) (*DetectionWindow, error) {
	if points < 3 {
		points = 3
	}
	prog := obd.NewProgression(spice.NMOS)
	out := &DetectionWindow{Progress: prog}
	h := cells.NewNANDHarness(p, 2)
	inj := obd.Inject(h.B.C, "f", h.FETFor(fault.PullDown, 0), obd.FaultFree)
	pr, err := fault.ParsePair("(01,11)")
	if err != nil {
		return nil, err
	}
	measure := func() (waveform.DelayMeasurement, error) {
		h.Apply(pr, TSwitch, TEdge)
		res, err := h.Run(TStop, TStep)
		if err != nil {
			return waveform.DelayMeasurement{}, err
		}
		return h.Measure(res, pr, TSwitch, TEdge)
	}
	m0, err := measure()
	if err != nil {
		return nil, fmt.Errorf("exper: window nominal: %w", err)
	}
	if m0.Kind != waveform.TransitionOK {
		return nil, fmt.Errorf("exper: nominal measurement stuck")
	}
	out.Nominal = m0.Delay
	for i := 0; i < points; i++ {
		t := prog.Window * float64(i) / float64(points-1)
		par := prog.ParamsAt(t)
		inj.SetParams(par)
		m, err := measure()
		if err != nil {
			return nil, fmt.Errorf("exper: window sample %d: %w", i, err)
		}
		out.Samples = append(out.Samples, WindowSample{T: t, Meas: m, Param: par})
	}
	curve := make([]sched.DelayPoint, 0, len(out.Samples))
	for _, s := range out.Samples {
		d := s.Meas.Delay
		if s.Meas.Kind != waveform.TransitionOK {
			d = 1 // effectively infinite against ps-scale slacks
		}
		curve = append(curve, sched.DelayPoint{T: s.T, Delay: d})
	}
	for _, frac := range []float64{0.10, 0.25, 0.50, 1.00} {
		w, err := sched.ComputeWindow(curve, out.Nominal, out.Nominal*frac, prog.Window)
		if err != nil {
			return nil, err
		}
		w.SlackFraction = frac
		out.Windows = append(out.Windows, w)
	}
	return out, nil
}

// Format prints the characterization and the schedule table.
func (d *DetectionWindow) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.2: detection window (nominal delay %.0f ps, SBD->HBD %.1f h)\n",
		d.Nominal*1e12, d.Progress.Window/3600)
	for _, s := range d.Samples {
		fmt.Fprintf(&b, "  t=%6.1f h  Isat=%8.2e R=%7.1f  delay=%s\n",
			s.T/3600, s.Param.Isat, s.Param.R, Table1Cell{Meas: s.Meas}.EntryString())
	}
	for _, w := range d.Windows {
		if !w.Detectable {
			fmt.Fprintf(&b, "  slack %3.0f%%: defect never exceeds slack before HBD\n", w.SlackFraction*100)
			continue
		}
		fmt.Fprintf(&b, "  slack %3.0f%%: first detectable at %5.1f h, window %5.1f h, max test period %5.1f h\n",
			w.SlackFraction*100, w.Start/3600, w.Length()/3600, w.MaxTestPeriod()/3600)
	}
	return b.String()
}

// Check verifies the qualitative Section 4.2 claims: delay grows with
// time, and tighter detection slack yields a longer usable window (so a
// faster detector can test less often, while a slow detector's window can
// vanish entirely).
func (d *DetectionWindow) Check() []string {
	var bad []string
	prev := 0.0
	for i, s := range d.Samples {
		if s.Meas.Kind != waveform.TransitionOK {
			continue // stuck tail of the progression
		}
		if s.Meas.Delay < prev*0.98 {
			bad = append(bad, fmt.Sprintf("delay not monotone at sample %d", i))
		}
		prev = s.Meas.Delay
	}
	var lengths []float64
	for _, w := range d.Windows {
		if !w.Detectable {
			lengths = append(lengths, 0)
			continue
		}
		lengths = append(lengths, w.Length())
	}
	for i := 1; i < len(lengths); i++ {
		if lengths[i] > lengths[i-1]+1 {
			bad = append(bad, fmt.Sprintf("window grew with looser slack: %v", lengths))
			break
		}
	}
	if len(lengths) > 0 && lengths[0] <= 0 {
		bad = append(bad, "10%-slack detector sees no window at all")
	}
	return bad
}
