package fault

import (
	"sort"
	"strings"
	"sync"

	"gobd/internal/logic"
)

// CollapseOBD partitions an OBD fault list into local-equivalence classes:
// two faults of the SAME gate are equivalent when their excitation pair
// sets are identical, because they then produce exactly the same slowed
// transition at the same site for every possible vector pair — no test can
// tell them apart anywhere in any circuit. For a NAND this merges the
// series NMOS defects (all excited by every falling pair) while keeping
// each parallel PMOS defect distinct, mirroring the paper's Table 1
// structure. The first fault of each class is its representative.
func CollapseOBD(faults []OBD) [][]OBD {
	out := make([][]OBD, 0)
	for _, idxs := range CollapseOBDIndices(faults) {
		cl := make([]OBD, 0, len(idxs))
		for _, i := range idxs {
			cl = append(cl, faults[i])
		}
		out = append(out, cl)
	}
	return out
}

// CollapseOBDIndices is CollapseOBD over fault-list positions: each class
// holds the indices of its members in ascending order, and classes appear
// in first-member order. The index form is what grading uses to fan a
// representative's verdicts back out onto every collapsed site.
func CollapseOBDIndices(faults []OBD) [][]int {
	// Gates are keyed by identity, not name: a fault list may mix gates
	// from different circuits (or synthetic local gates) whose names
	// collide, and same-gate equivalence only holds within one instance.
	type key struct {
		g     *logic.Gate
		pairs string
	}
	byKey := make(map[key][]int)
	var order []key
	for i, f := range faults {
		k := key{f.Gate, pairSetKey(f)}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// EdgeComplete reports whether the fault is excited by EVERY complete
// local vector pair that makes the matching output transition — true
// exactly when the defective transistor lies on every conducting path of
// its pull network, i.e. every ancestor of its leaf is a Series node (or
// the leaf is the whole network, as in an inverter). For such faults the
// conduction conditions are implied by the output edge itself: the side
// conducting means all series devices are on, and removing any one cuts
// the only path. Series NMOS stacks (NAND pull-down), series PMOS stacks
// (NOR pull-up) and both inverter devices qualify; parallel devices do
// not (their excitation additionally demands solitary conduction).
// Edge-complete faults are what inverter-chain collapsing may merge
// across gates (see netcheck.CollapseOBDComplete).
func (f OBD) EdgeComplete() bool {
	nets, ok := GateNetworks(f.Gate.Type, len(f.Gate.Inputs))
	if !ok {
		return false
	}
	n := nets.PullUp
	if f.Side == PullDown {
		n = nets.PullDown
	}
	_, all := onEveryPath(n, f.Input)
	return all
}

// onEveryPath walks the network for the leaf of the given input:
// contains reports the leaf is in this subtree, all that every ancestor
// within the subtree keeps it on every conducting path.
func onEveryPath(n *Network, input int) (contains, all bool) {
	switch n.Kind {
	case Leaf:
		return n.Input == input, n.Input == input
	case Series:
		for _, ch := range n.Children {
			if c, a := onEveryPath(ch, input); c {
				return true, a
			}
		}
		return false, false
	default: // Parallel: a sibling branch can conduct around the leaf
		for _, ch := range n.Children {
			if c, _ := onEveryPath(ch, input); c {
				return true, false
			}
		}
		return false, false
	}
}

// Representatives returns one fault per equivalence class.
func Representatives(classes [][]OBD) []OBD {
	out := make([]OBD, 0, len(classes))
	for _, cl := range classes {
		out = append(out, cl[0])
	}
	return out
}

// pairKeyID identifies an excitation pair set without the gate instance:
// the set is determined by the gate function and the defect location
// alone, so the canonical key can be computed once per shape and shared
// across every instance in a big circuit.
type pairKeyID struct {
	typ   logic.GateType
	arity int
	input int
	side  Side
}

var pairKeyCache sync.Map // pairKeyID → string

// pairSetKey canonicalizes a fault's excitation pair set.
func pairSetKey(f OBD) string {
	id := pairKeyID{f.Gate.Type, len(f.Gate.Inputs), f.Input, f.Side}
	if v, ok := pairKeyCache.Load(id); ok {
		return v.(string)
	}
	ps := f.ExcitationPairs()
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = p.String()
	}
	sort.Strings(ss)
	key := strings.Join(ss, ";")
	pairKeyCache.Store(id, key)
	return key
}
