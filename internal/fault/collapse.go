package fault

import (
	"sort"
	"strings"
)

// CollapseOBD partitions an OBD fault list into local-equivalence classes:
// two faults of the SAME gate are equivalent when their excitation pair
// sets are identical, because they then produce exactly the same slowed
// transition at the same site for every possible vector pair — no test can
// tell them apart anywhere in any circuit. For a NAND this merges the
// series NMOS defects (all excited by every falling pair) while keeping
// each parallel PMOS defect distinct, mirroring the paper's Table 1
// structure. The first fault of each class is its representative.
func CollapseOBD(faults []OBD) [][]OBD {
	byKey := make(map[string][]OBD)
	var order []string
	for _, f := range faults {
		key := f.Gate.Name + "\x00" + pairSetKey(f)
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], f)
	}
	out := make([][]OBD, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// Representatives returns one fault per equivalence class.
func Representatives(classes [][]OBD) []OBD {
	out := make([]OBD, 0, len(classes))
	for _, cl := range classes {
		out = append(out, cl[0])
	}
	return out
}

// pairSetKey canonicalizes a fault's excitation pair set.
func pairSetKey(f OBD) string {
	ps := f.ExcitationPairs()
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = p.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, ";")
}
