package fault

import (
	"reflect"
	"testing"

	"gobd/internal/logic"
)

// TestEdgeComplete pins the structural characterization: a fault is
// edge-complete exactly when its transistor sits on every conducting path
// of its pull network — series stacks and inverter devices, never members
// of a parallel group.
func TestEdgeComplete(t *testing.T) {
	mk := func(typ logic.GateType, n int) *logic.Gate {
		ins := []string{"a", "b", "c"}[:n]
		return &logic.Gate{Name: "g", Type: typ, Inputs: ins, Output: "y"}
	}
	cases := []struct {
		typ   logic.GateType
		n     int
		input int
		side  Side
		want  bool
	}{
		{logic.Inv, 1, 0, PullUp, true},
		{logic.Inv, 1, 0, PullDown, true},
		{logic.Nand, 2, 0, PullDown, true}, // series NMOS stack
		{logic.Nand, 2, 1, PullDown, true},
		{logic.Nand, 2, 0, PullUp, false}, // parallel PMOS
		{logic.Nand, 3, 2, PullDown, true},
		{logic.Nor, 2, 0, PullUp, true},    // series PMOS stack
		{logic.Nor, 2, 1, PullDown, false}, // parallel NMOS
		{logic.Aoi21, 3, 2, PullUp, true},  // c in series with the (a|b) pair
		{logic.Aoi21, 3, 0, PullUp, false}, // a inside the parallel pair
		{logic.Aoi21, 3, 1, PullUp, false},
		{logic.Aoi21, 3, 0, PullDown, false}, // every PD path has a parallel sibling
		{logic.Aoi21, 3, 2, PullDown, false},
		{logic.Oai21, 3, 2, PullDown, true},
		{logic.Oai21, 3, 2, PullUp, false},
	}
	for _, tc := range cases {
		f := OBD{Gate: mk(tc.typ, tc.n), Input: tc.input, Side: tc.side}
		if got := f.EdgeComplete(); got != tc.want {
			t.Errorf("%v %d-input %v@%d: EdgeComplete = %v, want %v",
				tc.typ, tc.n, tc.side, tc.input, got, tc.want)
		}
	}
	// Gates without transistor networks are never edge-complete.
	xor := OBD{Gate: mk(logic.Xor, 2), Input: 0, Side: PullDown}
	if xor.EdgeComplete() {
		t.Error("XOR fault reported edge-complete despite having no network")
	}
}

// TestCollapseIndicesKeyedByGateIdentity: two distinct gates with the SAME
// name must never merge — equivalence classes are per gate instance.
func TestCollapseIndicesKeyedByGateIdentity(t *testing.T) {
	g1 := &logic.Gate{Name: "g", Type: logic.Nand, Inputs: []string{"a", "b"}, Output: "y"}
	g2 := &logic.Gate{Name: "g", Type: logic.Nand, Inputs: []string{"a", "b"}, Output: "z"}
	faults := []OBD{
		{Gate: g1, Input: 0, Side: PullDown},
		{Gate: g2, Input: 0, Side: PullDown},
		{Gate: g1, Input: 1, Side: PullDown},
		{Gate: g2, Input: 1, Side: PullDown},
	}
	want := [][]int{{0, 2}, {1, 3}}
	if got := CollapseOBDIndices(faults); !reflect.DeepEqual(got, want) {
		t.Fatalf("CollapseOBDIndices = %v, want %v", got, want)
	}
}

// TestCollapseIndicesMatchCollapse: the index form is exactly CollapseOBD
// over positions, classes in first-member order, members ascending.
func TestCollapseIndicesMatchCollapse(t *testing.T) {
	g := &logic.Gate{Name: "g", Type: logic.Nand, Inputs: []string{"a", "b", "c"}, Output: "y"}
	faults := make([]OBD, 0, 6)
	for i := 0; i < 3; i++ {
		faults = append(faults, OBD{Gate: g, Input: i, Side: PullUp})
		faults = append(faults, OBD{Gate: g, Input: i, Side: PullDown})
	}
	idxs := CollapseOBDIndices(faults)
	cls := CollapseOBD(faults)
	if len(idxs) != len(cls) {
		t.Fatalf("index classes %d, fault classes %d", len(idxs), len(cls))
	}
	for ci, cl := range idxs {
		for mi, fi := range cl {
			if faults[fi] != cls[ci][mi] {
				t.Fatalf("class %d member %d: index %d resolves to %v, CollapseOBD has %v",
					ci, mi, fi, faults[fi], cls[ci][mi])
			}
			if mi > 0 && cl[mi-1] >= fi {
				t.Fatalf("class %d not ascending: %v", ci, cl)
			}
		}
	}
}
