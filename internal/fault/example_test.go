package fault_test

import (
	"fmt"
	"sort"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// ExampleGatePairTable reproduces the paper's Section 4.1 derivation for
// the NAND gate: NMOS defects are excited by any falling-output pair,
// PMOS defects only by the pair where their own input switches alone.
func ExampleGatePairTable() {
	table, _ := fault.GatePairTable(logic.Nand, 2)
	var names []string
	for f := range table {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		var ps []string
		for _, p := range table[f] {
			ps = append(ps, p.String())
		}
		sort.Strings(ps)
		fmt.Println(f, ps)
	}
	// Output:
	// nand/NMOS@a [(00,11) (01,11) (10,11)]
	// nand/NMOS@b [(00,11) (01,11) (10,11)]
	// nand/PMOS@a [(11,01)]
	// nand/PMOS@b [(11,10)]
}

// ExampleMinimalPairCover computes the paper's "necessary and sufficient"
// sequence count for NOR2: three sequences cover all four OBD defects.
func ExampleMinimalPairCover() {
	cover, _ := fault.MinimalPairCover(logic.Nor, 2)
	fmt.Println(len(cover), "sequences suffice")
	// Output:
	// 3 sequences suffice
}
