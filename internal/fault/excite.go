package fault

import (
	"fmt"
	"strings"

	"gobd/internal/logic"
)

// Pair is an ordered two-pattern assignment (v1 then v2) to one gate's
// inputs — the local excitation condition format of the paper's Table 1
// header, e.g. (01,11).
type Pair struct {
	V1, V2 []logic.Value
}

// String renders the pair in the paper's notation.
func (p Pair) String() string {
	var b strings.Builder
	b.WriteString("(")
	for _, v := range p.V1 {
		b.WriteString(v.String())
	}
	b.WriteString(",")
	for _, v := range p.V2 {
		b.WriteString(v.String())
	}
	b.WriteString(")")
	return b.String()
}

// Equal reports value equality.
func (p Pair) Equal(q Pair) bool {
	if len(p.V1) != len(q.V1) || len(p.V2) != len(q.V2) {
		return false
	}
	for i := range p.V1 {
		if p.V1[i] != q.V1[i] {
			return false
		}
	}
	for i := range p.V2 {
		if p.V2[i] != q.V2[i] {
			return false
		}
	}
	return true
}

// ParsePair parses the paper notation "(01,11)".
func ParsePair(s string) (Pair, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return Pair{}, fmt.Errorf("fault: bad pair syntax %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 2 {
		return Pair{}, fmt.Errorf("fault: bad pair syntax %q", s)
	}
	conv := func(t string) ([]logic.Value, error) {
		vs := make([]logic.Value, len(t))
		for i, ch := range t {
			switch ch {
			case '0':
				vs[i] = logic.Zero
			case '1':
				vs[i] = logic.One
			case 'X', 'x':
				vs[i] = logic.X
			default:
				return nil, fmt.Errorf("fault: bad value %q in %q", string(ch), t)
			}
		}
		return vs, nil
	}
	v1, err := conv(strings.TrimSpace(parts[0]))
	if err != nil {
		return Pair{}, err
	}
	v2, err := conv(strings.TrimSpace(parts[1]))
	if err != nil {
		return Pair{}, err
	}
	if len(v1) != len(v2) {
		return Pair{}, fmt.Errorf("fault: pair halves differ in width: %q", s)
	}
	return Pair{V1: v1, V2: v2}, nil
}

// Excited applies the paper's excitation rule to a complete local input
// pair: the output must switch, the defective transistor's network must
// drive the new value, and removing the defective transistor must break
// conduction (it conducts with no conducting parallel sibling).
func (f OBD) Excited(v1, v2 []logic.Value) bool {
	nets, ok := GateNetworks(f.Gate.Type, len(f.Gate.Inputs))
	if !ok {
		return false
	}
	o1, o2 := f.Gate.Eval(v1), f.Gate.Eval(v2)
	if !o1.IsKnown() || !o2.IsKnown() || o1 == o2 {
		return false
	}
	// The network driving the final value must be the defective one.
	var drive Side
	if o2 == logic.One {
		drive = PullUp
	} else {
		drive = PullDown
	}
	if drive != f.Side {
		return false
	}
	net := nets.PullUp
	if f.Side == PullDown {
		net = nets.PullDown
	}
	if net.Conducts(v2, f.Side, -1) != logic.One {
		return false
	}
	return net.Conducts(v2, f.Side, f.Input) == logic.Zero
}

// Excited for EM applies the same series-parallel rule (see the EM type
// documentation for where the models diverge below gate level).
func (f EM) Excited(v1, v2 []logic.Value) bool { return OBD(f).Excited(v1, v2) }

// enumAssignments yields all complete 0/1 assignments of width n in
// ascending binary order with index bit i = value of input i.
func enumAssignments(n int) [][]logic.Value {
	out := make([][]logic.Value, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		vs := make([]logic.Value, n)
		for i := range vs {
			vs[i] = logic.FromBool(m&(1<<i) != 0)
		}
		out = append(out, vs)
	}
	return out
}

// ExcitationPairs enumerates every complete local input pair that excites
// the fault.
func (f OBD) ExcitationPairs() []Pair {
	n := len(f.Gate.Inputs)
	asg := enumAssignments(n)
	var out []Pair
	for _, v1 := range asg {
		for _, v2 := range asg {
			if f.Excited(v1, v2) {
				out = append(out, Pair{V1: v1, V2: v2})
			}
		}
	}
	return out
}

// syntheticGate builds a standalone gate instance for per-type analysis.
func syntheticGate(t logic.GateType, arity int) *logic.Gate {
	ins := make([]string, arity)
	for i := range ins {
		ins[i] = string(rune('a' + i))
	}
	return &logic.Gate{Name: t.String(), Type: t, Inputs: ins, Output: "y"}
}

// GateOBDFaults returns the OBD faults of a standalone gate of the given
// type and arity.
func GateOBDFaults(t logic.GateType, arity int) ([]OBD, error) {
	nets, ok := GateNetworks(t, arity)
	if !ok {
		return nil, fmt.Errorf("fault: %v is not a primitive CMOS gate", t)
	}
	g := syntheticGate(t, arity)
	var out []OBD
	for i := 0; i < arity; i++ {
		if nets.PullUp.ContainsInput(i) {
			out = append(out, OBD{Gate: g, Input: i, Side: PullUp})
		}
		if nets.PullDown.ContainsInput(i) {
			out = append(out, OBD{Gate: g, Input: i, Side: PullDown})
		}
	}
	return out, nil
}

// GatePairTable maps each OBD fault of a gate type to its full excitation
// pair list — the machine-checkable form of the paper's Section 4.1 and
// Section 5 statements.
func GatePairTable(t logic.GateType, arity int) (map[string][]Pair, error) {
	faults, err := GateOBDFaults(t, arity)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Pair, len(faults))
	for _, f := range faults {
		out[f.String()] = f.ExcitationPairs()
	}
	return out, nil
}

// MinimalPairCover computes an exact minimum set of local input pairs that
// excites every OBD fault of the gate ("necessary and sufficient" in the
// paper's wording). It brute-forces subset sizes, which is fine for the
// ≤3-input primitive gates involved.
func MinimalPairCover(t logic.GateType, arity int) ([]Pair, error) {
	faults, err := GateOBDFaults(t, arity)
	if err != nil {
		return nil, err
	}
	// Candidate pairs: those exciting at least one fault, with per-pair
	// fault coverage bitmaps.
	type cand struct {
		p    Pair
		mask uint64
	}
	var cands []cand
	asg := enumAssignments(arity)
	for _, v1 := range asg {
		for _, v2 := range asg {
			var mask uint64
			for fi, f := range faults {
				if f.Excited(v1, v2) {
					mask |= 1 << uint(fi)
				}
			}
			if mask != 0 {
				cands = append(cands, cand{p: Pair{V1: v1, V2: v2}, mask: mask})
			}
		}
	}
	full := uint64(1)<<uint(len(faults)) - 1
	if full == 0 {
		return nil, nil
	}
	// Increasing subset size; recursive choose.
	var pick func(start int, left int, acc uint64, chosen []int) []int
	pick = func(start, left int, acc uint64, chosen []int) []int {
		if acc == full {
			return append([]int(nil), chosen...)
		}
		if left == 0 || start >= len(cands) {
			return nil
		}
		for i := start; i <= len(cands)-left; i++ {
			if r := pick(i+1, left-1, acc|cands[i].mask, append(chosen, i)); r != nil {
				return r
			}
		}
		return nil
	}
	for k := 1; k <= len(cands); k++ {
		if sel := pick(0, k, 0, nil); sel != nil {
			out := make([]Pair, len(sel))
			for i, ci := range sel {
				out[i] = cands[ci].p
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("fault: no pair cover exists for %v/%d", t, arity)
}
