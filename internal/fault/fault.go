package fault

import (
	"fmt"

	"gobd/internal/logic"
)

// OBD is a gate-oxide-breakdown fault in one transistor of a primitive
// static CMOS gate: the transistor on the given Side that is driven by the
// gate's Input-th input net.
type OBD struct {
	Gate  *logic.Gate
	Input int
	Side  Side
}

// String implements fmt.Stringer, e.g. "g7/NMOS@a".
func (f OBD) String() string {
	return fmt.Sprintf("%s/%v@%s", f.Gate.Name, f.Side, f.Gate.Inputs[f.Input])
}

// SlowRising reports the direction of the transition the defect slows:
// a pull-up (PMOS) defect produces a slow-to-rise output, a pull-down
// (NMOS) defect a slow-to-fall output.
func (f OBD) SlowRising() bool { return f.Side == PullUp }

// StuckAt is the classical single stuck-at fault on a net.
type StuckAt struct {
	Net string
	V   logic.Value // Zero or One
}

// String implements fmt.Stringer.
func (f StuckAt) String() string { return fmt.Sprintf("%s/sa%v", f.Net, f.V) }

// Transition is the classical transition (gate-delay) fault on a net:
// slow-to-rise or slow-to-fall, insensitive to which inputs caused the
// transition — the insensitivity the paper identifies as the reason
// traditional transition TPG under-tests OBD defects.
type Transition struct {
	Net    string
	Rising bool // true: slow-to-rise
}

// String implements fmt.Stringer.
func (f Transition) String() string {
	if f.Rising {
		return f.Net + "/str"
	}
	return f.Net + "/stf"
}

// EM is an intra-gate electromigration fault on a transistor's contact: a
// resistive degradation in series with the device. At the series-parallel
// abstraction its excitation coincides with OBD's (the transistor must
// carry the switching current alone), which reproduces the paper's Section
// 5 observation that EM and OBD test sets coincide for NAND/NOR; the
// models diverge only below gate level, where OBD additionally injects
// current through the gate oxide (see the analog EM-vs-OBD experiment).
type EM struct {
	Gate  *logic.Gate
	Input int
	Side  Side
}

// String implements fmt.Stringer.
func (f EM) String() string {
	return fmt.Sprintf("%s/EM-%v@%s", f.Gate.Name, f.Side, f.Gate.Inputs[f.Input])
}

// OBDUniverse enumerates every OBD fault in the circuit: one per
// transistor of every primitive gate. Gates without a single-cell CMOS
// realization (BUF/AND/OR/XOR/XNOR) contribute none and are reported in
// skipped.
func OBDUniverse(c *logic.Circuit) (faults []OBD, skipped []*logic.Gate) {
	for _, g := range c.Gates {
		nets, ok := GateNetworks(g.Type, len(g.Inputs))
		if !ok {
			skipped = append(skipped, g)
			continue
		}
		for i := range g.Inputs {
			if nets.PullUp.ContainsInput(i) {
				faults = append(faults, OBD{Gate: g, Input: i, Side: PullUp})
			}
			if nets.PullDown.ContainsInput(i) {
				faults = append(faults, OBD{Gate: g, Input: i, Side: PullDown})
			}
		}
	}
	return faults, skipped
}

// EMUniverse enumerates every intra-gate EM fault (one per transistor of
// every primitive gate).
func EMUniverse(c *logic.Circuit) (faults []EM, skipped []*logic.Gate) {
	obd, sk := OBDUniverse(c)
	faults = make([]EM, len(obd))
	for i, f := range obd {
		faults[i] = EM(f)
	}
	return faults, sk
}

// StuckAtUniverse enumerates stuck-at-0/1 on every net (primary inputs and
// gate outputs; fanout-branch faults are not modeled separately).
func StuckAtUniverse(c *logic.Circuit) []StuckAt {
	var out []StuckAt
	add := func(n string) {
		out = append(out, StuckAt{Net: n, V: logic.Zero}, StuckAt{Net: n, V: logic.One})
	}
	for _, in := range c.Inputs {
		add(in)
	}
	for _, g := range c.Gates {
		add(g.Output)
	}
	return out
}

// TransitionUniverse enumerates slow-to-rise/fall on every net.
func TransitionUniverse(c *logic.Circuit) []Transition {
	var out []Transition
	add := func(n string) {
		out = append(out, Transition{Net: n, Rising: true}, Transition{Net: n, Rising: false})
	}
	for _, in := range c.Inputs {
		add(in)
	}
	for _, g := range c.Gates {
		add(g.Output)
	}
	return out
}
