package fault

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gobd/internal/logic"
)

func pairsToStrings(ps []Pair) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNANDExcitationSetsMatchPaper checks the Section 4.1 result exactly:
// NMOS defects are excited by every falling-output pair, while a PMOS
// defect needs its own input to be the only one that switches the output.
func TestNANDExcitationSetsMatchPaper(t *testing.T) {
	table, err := GatePairTable(logic.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"nand/NMOS@a": {"(00,11)", "(01,11)", "(10,11)"},
		"nand/NMOS@b": {"(00,11)", "(01,11)", "(10,11)"},
		"nand/PMOS@a": {"(11,01)"},
		"nand/PMOS@b": {"(11,10)"},
	}
	if len(table) != len(want) {
		t.Fatalf("fault table has %d entries: %v", len(table), table)
	}
	for f, pairs := range table {
		got := pairsToStrings(pairs)
		if !equalStrings(got, want[f]) {
			t.Errorf("%s: pairs %v, want %v", f, got, want[f])
		}
	}
}

// TestNORExcitationSetsMatchPaper checks the Section 5 NOR result: one of
// {(10,00),(01,00),(11,00)} plus {(00,01)} and {(00,10)}.
func TestNORExcitationSetsMatchPaper(t *testing.T) {
	table, err := GatePairTable(logic.Nor, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"nor/PMOS@a": {"(01,00)", "(10,00)", "(11,00)"},
		"nor/PMOS@b": {"(01,00)", "(10,00)", "(11,00)"},
		"nor/NMOS@a": {"(00,10)"},
		"nor/NMOS@b": {"(00,01)"},
	}
	for f, pairs := range table {
		got := pairsToStrings(pairs)
		if !equalStrings(got, want[f]) {
			t.Errorf("%s: pairs %v, want %v", f, got, want[f])
		}
	}
}

func TestInverterExcitationSets(t *testing.T) {
	table, err := GatePairTable(logic.Inv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pairsToStrings(table["inv/NMOS@a"]); !equalStrings(got, []string{"(0,1)"}) {
		t.Errorf("inv NMOS pairs %v", got)
	}
	if got := pairsToStrings(table["inv/PMOS@a"]); !equalStrings(got, []string{"(1,0)"}) {
		t.Errorf("inv PMOS pairs %v", got)
	}
}

func TestMinimalCoverNAND2(t *testing.T) {
	cover, err := MinimalPairCover(logic.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 3 {
		t.Fatalf("NAND2 minimal cover size %d, want 3 (%v)", len(cover), cover)
	}
	ss := pairsToStrings(cover)
	has := func(s string) bool {
		for _, x := range ss {
			if x == s {
				return true
			}
		}
		return false
	}
	if !has("(11,01)") || !has("(11,10)") {
		t.Fatalf("cover %v must contain the two PMOS-specific pairs", ss)
	}
	falling := map[string]bool{"(00,11)": true, "(01,11)": true, "(10,11)": true}
	found := false
	for _, s := range ss {
		if falling[s] {
			found = true
		}
	}
	if !found {
		t.Fatalf("cover %v lacks a falling-output pair", ss)
	}
}

func TestMinimalCoverNOR2(t *testing.T) {
	cover, err := MinimalPairCover(logic.Nor, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 3 {
		t.Fatalf("NOR2 minimal cover size %d, want 3 (%v)", len(cover), cover)
	}
}

func TestMinimalCoverNAND3(t *testing.T) {
	// 3-input NAND: three PMOS in parallel need three dedicated rising
	// pairs, plus any one falling pair: minimum 4.
	cover, err := MinimalPairCover(logic.Nand, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 4 {
		t.Fatalf("NAND3 minimal cover size %d, want 4 (%v)", len(cover), pairsToStrings(cover))
	}
}

func TestAOI21FaultsAndCover(t *testing.T) {
	faults, err := GateOBDFaults(logic.Aoi21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 6 {
		t.Fatalf("AOI21 has %d OBD faults, want 6", len(faults))
	}
	table, err := GatePairTable(logic.Aoi21, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f, pairs := range table {
		if len(pairs) == 0 {
			t.Errorf("AOI21 fault %s has no excitation pair", f)
		}
	}
	cover, err := MinimalPairCover(logic.Aoi21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 || len(cover) > 6 {
		t.Fatalf("AOI21 cover size %d implausible", len(cover))
	}
	// Every fault must be excited by some cover member.
	for _, f := range faults {
		hit := false
		for _, p := range cover {
			if f.Excited(p.V1, p.V2) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("cover misses %s", f)
		}
	}
}

// TestEMSetsEqualOBDForNAND reproduces the paper's Section 5 statement that
// the intra-gate EM test sequences coincide with OBD's for a NAND gate.
func TestEMSetsEqualOBDForNAND(t *testing.T) {
	faults, err := GateOBDFaults(logic.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		em := EM(f)
		for _, v1 := range enumAssignments(2) {
			for _, v2 := range enumAssignments(2) {
				if f.Excited(v1, v2) != em.Excited(v1, v2) {
					t.Fatalf("EM and OBD disagree on %s at (%v,%v)", f, v1, v2)
				}
			}
		}
	}
}

func TestCompositeGateRejected(t *testing.T) {
	if _, err := GateOBDFaults(logic.Xor, 2); err == nil {
		t.Fatal("XOR should have no primitive CMOS realization")
	}
	if _, ok := GateNetworks(logic.Buf, 1); ok {
		t.Fatal("BUF should not be primitive")
	}
}

func TestNetworkConduction(t *testing.T) {
	nets, ok := GateNetworks(logic.Nand, 2)
	if !ok {
		t.Fatal("NAND2 not primitive?")
	}
	v := func(a, b logic.Value) []logic.Value { return []logic.Value{a, b} }
	// Pull-down (series NMOS): conducts only at 11.
	if nets.PullDown.Conducts(v(logic.One, logic.One), PullDown, -1) != logic.One {
		t.Fatal("PD should conduct at 11")
	}
	if nets.PullDown.Conducts(v(logic.One, logic.Zero), PullDown, -1) != logic.Zero {
		t.Fatal("PD should block at 10")
	}
	// Removing either series transistor breaks conduction.
	if nets.PullDown.Conducts(v(logic.One, logic.One), PullDown, 0) != logic.Zero {
		t.Fatal("removing series leaf should block")
	}
	// Pull-up (parallel PMOS) at 01: conducts via a; removing a blocks.
	if nets.PullUp.Conducts(v(logic.Zero, logic.One), PullUp, -1) != logic.One {
		t.Fatal("PU should conduct at 01")
	}
	if nets.PullUp.Conducts(v(logic.Zero, logic.One), PullUp, 0) != logic.Zero {
		t.Fatal("removing sole conductor should block")
	}
	// At 00 both conduct; removing one still conducts.
	if nets.PullUp.Conducts(v(logic.Zero, logic.Zero), PullUp, 0) != logic.One {
		t.Fatal("parallel sibling should keep conducting")
	}
	// X handling.
	if nets.PullDown.Conducts(v(logic.One, logic.X), PullDown, -1) != logic.X {
		t.Fatal("1,X series should be X")
	}
	if nets.PullDown.Conducts(v(logic.Zero, logic.X), PullDown, -1) != logic.Zero {
		t.Fatal("0,X series should be 0")
	}
}

func TestTransistorCount(t *testing.T) {
	for _, tc := range []struct {
		t     logic.GateType
		arity int
		want  int
	}{
		{logic.Inv, 1, 2},
		{logic.Nand, 2, 4},
		{logic.Nor, 2, 4},
		{logic.Nand, 3, 6},
		{logic.Aoi21, 3, 6},
		{logic.Oai21, 3, 6},
	} {
		nets, ok := GateNetworks(tc.t, tc.arity)
		if !ok {
			t.Fatalf("%v not primitive", tc.t)
		}
		if n := nets.PullUp.TransistorCount() + nets.PullDown.TransistorCount(); n != tc.want {
			t.Errorf("%v/%d has %d transistors, want %d", tc.t, tc.arity, n, tc.want)
		}
	}
}

func TestOBDUniverseCounts(t *testing.T) {
	c := logic.New("mix")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g1", logic.Nand, "n1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", logic.Inv, "n2", "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g3", logic.Xor, "n3", "n2", "a"); err != nil {
		t.Fatal(err)
	}
	c.AddOutput("n3")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	faults, skipped := OBDUniverse(c)
	if len(faults) != 4+2 {
		t.Fatalf("universe has %d faults, want 6", len(faults))
	}
	if len(skipped) != 1 || skipped[0].Name != "g3" {
		t.Fatalf("skipped = %v, want [g3]", skipped)
	}
	sa := StuckAtUniverse(c)
	if len(sa) != 2*(2+3) {
		t.Fatalf("stuck-at universe %d, want 10", len(sa))
	}
	tr := TransitionUniverse(c)
	if len(tr) != 2*(2+3) {
		t.Fatalf("transition universe %d, want 10", len(tr))
	}
}

func TestParsePairRoundTrip(t *testing.T) {
	for _, s := range []string{"(01,11)", "(11,10)", "(0,1)", "(0X1,111)"} {
		p, err := ParsePair(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	}
	for _, s := range []string{"01,11", "(01;11)", "(0,11)", "(2,1)", "()"} {
		if _, err := ParsePair(s); err == nil {
			t.Errorf("accepted bad pair %q", s)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	g := syntheticGate(logic.Nand, 2)
	f := OBD{Gate: g, Input: 1, Side: PullUp}
	if f.String() != "nand/PMOS@b" {
		t.Fatalf("OBD string %q", f.String())
	}
	if !f.SlowRising() {
		t.Fatal("PMOS fault should be slow-to-rise")
	}
	if (OBD{Gate: g, Input: 0, Side: PullDown}).SlowRising() {
		t.Fatal("NMOS fault should be slow-to-fall")
	}
	if s := (StuckAt{Net: "n1", V: logic.One}).String(); s != "n1/sa1" {
		t.Fatalf("stuck-at string %q", s)
	}
	if s := (Transition{Net: "n1", Rising: true}).String(); s != "n1/str" {
		t.Fatalf("transition string %q", s)
	}
	if s := (EM{Gate: g, Input: 0, Side: PullDown}).String(); s != "nand/EM-NMOS@a" {
		t.Fatalf("EM string %q", s)
	}
}

// TestQuickExcitationImpliesSwitch: for random primitive gates and random
// pairs, excitation implies the output switches and the defective side
// drives the final value.
func TestQuickExcitationImpliesSwitch(t *testing.T) {
	types := []struct {
		t     logic.GateType
		arity int
	}{
		{logic.Inv, 1}, {logic.Nand, 2}, {logic.Nand, 3}, {logic.Nor, 2},
		{logic.Nor, 3}, {logic.Aoi21, 3}, {logic.Oai21, 3},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := types[rng.Intn(len(types))]
		faults, err := GateOBDFaults(tc.t, tc.arity)
		if err != nil {
			return false
		}
		ft := faults[rng.Intn(len(faults))]
		mk := func() []logic.Value {
			vs := make([]logic.Value, tc.arity)
			for i := range vs {
				vs[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			return vs
		}
		v1, v2 := mk(), mk()
		if !ft.Excited(v1, v2) {
			return true // nothing to verify
		}
		o1, o2 := ft.Gate.Eval(v1), ft.Gate.Eval(v2)
		if o1 == o2 {
			return false
		}
		if (o2 == logic.One) != (ft.Side == PullUp) {
			return false
		}
		// The defective transistor itself must conduct in v2.
		if leafOn(v2[ft.Input], ft.Side) != logic.One {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeriesAlwaysEssential: in a pure series network (NAND pull-down)
// every conducting transistor is essential, so every falling pair excites
// every NMOS fault.
func TestQuickSeriesAlwaysEssential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := 2 + rng.Intn(3)
		faults, err := GateOBDFaults(logic.Nand, arity)
		if err != nil {
			return false
		}
		all1 := make([]logic.Value, arity)
		for i := range all1 {
			all1[i] = logic.One
		}
		// Any v1 with at least one zero gives output 1 -> 0 transition.
		v1 := make([]logic.Value, arity)
		for i := range v1 {
			v1[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		v1[rng.Intn(arity)] = logic.Zero
		for _, ft := range faults {
			if ft.Side != PullDown {
				continue
			}
			if !ft.Excited(v1, all1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseNAND(t *testing.T) {
	faults, err := GateOBDFaults(logic.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	classes := CollapseOBD(faults)
	// Series NMOS pair merges; each PMOS stays alone: 3 classes.
	if len(classes) != 3 {
		t.Fatalf("NAND2 collapses to %d classes, want 3", len(classes))
	}
	sizes := map[int]int{}
	for _, cl := range classes {
		sizes[len(cl)]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("class sizes %v, want one pair and two singletons", sizes)
	}
	reps := Representatives(classes)
	if len(reps) != 3 {
		t.Fatalf("representatives %d", len(reps))
	}
}

func TestCollapseNAND3(t *testing.T) {
	faults, err := GateOBDFaults(logic.Nand, 3)
	if err != nil {
		t.Fatal(err)
	}
	classes := CollapseOBD(faults)
	// Three series NMOS merge; three PMOS distinct: 4 classes of 6 faults.
	if len(classes) != 4 {
		t.Fatalf("NAND3 collapses to %d classes, want 4", len(classes))
	}
}

// TestQuickCollapseSoundness: faults in the same class are detected by
// exactly the same vector pairs on random circuits (local equivalence is
// global equivalence).
func TestQuickCollapseSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logicRandom(rng)
		faults, _ := OBDUniverse(c)
		if len(faults) == 0 {
			return true
		}
		classes := CollapseOBD(faults)
		// Pick a multi-fault class if any.
		var cl []OBD
		for _, cand := range classes {
			if len(cand) > 1 {
				cl = cand
				break
			}
		}
		if cl == nil {
			return true
		}
		// Random pairs must agree across the class members via the local
		// excitation rule (global detection follows since the site and the
		// slowed direction coincide).
		mk := func() []logic.Value {
			vs := make([]logic.Value, len(cl[0].Gate.Inputs))
			for i := range vs {
				vs[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			return vs
		}
		for k := 0; k < 20; k++ {
			v1, v2 := mk(), mk()
			e0 := cl[0].Excited(v1, v2)
			for _, other := range cl[1:] {
				if other.Excited(v1, v2) != e0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func logicRandom(rng *rand.Rand) *logic.Circuit {
	return logic.RandomCircuit(rng, logic.RandomOptions{
		Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(12), Primitive: true,
	})
}
