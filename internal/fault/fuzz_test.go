package fault

import "testing"

// FuzzParsePair hardens the pair-notation parser: arbitrary strings must
// either error or round-trip through String.
func FuzzParsePair(f *testing.F) {
	for _, s := range []string{
		"(01,11)", "(1,0)", "(0X1,111)", "(,)", "((,))", "(01;11)", "(01,1)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePair(src)
		if err != nil {
			return
		}
		back, err := ParsePair(p.String())
		if err != nil {
			t.Fatalf("String output does not re-parse: %q -> %q: %v", src, p.String(), err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed pair: %q", src)
		}
	})
}
