// Package fault defines the gate-level fault models used in the
// reproduction — stuck-at, transition, intra-gate electromigration (EM) and
// the paper's per-transistor gate-oxide-breakdown (OBD) model — together
// with the series-parallel pull-network analysis that yields the paper's
// excitation rule: an OBD defect in a transistor is detectable at the gate
// output only if the output switches, the transistor conducts in the final
// state, and no transistor connected in parallel with it also conducts
// (Section 5 of the paper).
package fault

import (
	"fmt"

	"gobd/internal/logic"
)

// NetKind is the node kind of a series-parallel network expression.
type NetKind int

// Network node kinds.
const (
	Leaf NetKind = iota
	Series
	Parallel
)

// Network is a series-parallel transistor network: leaves are transistors
// identified by the gate input index that drives them.
type Network struct {
	Kind     NetKind
	Input    int // for Leaf: driving gate-input index
	Children []*Network
}

func leaf(i int) *Network { return &Network{Kind: Leaf, Input: i} }

func series(ns ...*Network) *Network { return &Network{Kind: Series, Children: ns} }

func parallel(ns ...*Network) *Network { return &Network{Kind: Parallel, Children: ns} }

// Side distinguishes the pull-up (PMOS) and pull-down (NMOS) networks of a
// static CMOS gate.
type Side int

// Network sides.
const (
	PullUp   Side = iota // PMOS network to VDD
	PullDown             // NMOS network to ground
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == PullUp {
		return "PMOS"
	}
	return "NMOS"
}

// Networks holds both pull networks of a primitive static CMOS gate.
type Networks struct {
	PullUp   *Network
	PullDown *Network
}

// GateNetworks returns the transistor networks of a primitive static CMOS
// gate type, or ok=false for composite types (BUF/AND/OR/XOR/XNOR), which
// have no single-gate transistor-level realization.
func GateNetworks(t logic.GateType, arity int) (Networks, bool) {
	leaves := func() []*Network {
		ls := make([]*Network, arity)
		for i := range ls {
			ls[i] = leaf(i)
		}
		return ls
	}
	switch t {
	case logic.Inv:
		return Networks{PullUp: leaf(0), PullDown: leaf(0)}, true
	case logic.Nand:
		return Networks{PullUp: parallel(leaves()...), PullDown: series(leaves()...)}, true
	case logic.Nor:
		return Networks{PullUp: series(leaves()...), PullDown: parallel(leaves()...)}, true
	case logic.Aoi21:
		// out = !(a·b + c): pull-down parallel(series(a,b), c),
		// pull-up series(parallel(a,b), c).
		return Networks{
			PullUp:   series(parallel(leaf(0), leaf(1)), leaf(2)),
			PullDown: parallel(series(leaf(0), leaf(1)), leaf(2)),
		}, true
	case logic.Oai21:
		// out = !((a+b)·c): pull-down series(parallel(a,b), c),
		// pull-up parallel(series(a,b), c).
		return Networks{
			PullUp:   parallel(series(leaf(0), leaf(1)), leaf(2)),
			PullDown: series(parallel(leaf(0), leaf(1)), leaf(2)),
		}, true
	default:
		return Networks{}, false
	}
}

// leafOn reports whether the transistor driven by input value v conducts on
// the given side (NMOS conducts on 1, PMOS on 0). X inputs yield X.
func leafOn(v logic.Value, side Side) logic.Value {
	if side == PullDown {
		return v
	}
	return v.Not()
}

// Conducts evaluates three-valued conduction of the network under the gate
// input values. The transistor at leaf input index `removed` (on this
// side) is treated as forced off; pass -1 to remove nothing.
func (n *Network) Conducts(in []logic.Value, side Side, removed int) logic.Value {
	switch n.Kind {
	case Leaf:
		if n.Input == removed {
			return logic.Zero
		}
		return leafOn(in[n.Input], side)
	case Series:
		vs := make([]logic.Value, len(n.Children))
		for i, ch := range n.Children {
			vs[i] = ch.Conducts(in, side, removed)
		}
		return andAll(vs)
	case Parallel:
		vs := make([]logic.Value, len(n.Children))
		for i, ch := range n.Children {
			vs[i] = ch.Conducts(in, side, removed)
		}
		return orAll(vs)
	default:
		panic(fmt.Sprintf("fault: bad network kind %d", n.Kind))
	}
}

// ContainsInput reports whether the network has a leaf for the given input.
func (n *Network) ContainsInput(i int) bool {
	switch n.Kind {
	case Leaf:
		return n.Input == i
	default:
		for _, ch := range n.Children {
			if ch.ContainsInput(i) {
				return true
			}
		}
		return false
	}
}

// TransistorCount returns the number of leaves.
func (n *Network) TransistorCount() int {
	if n.Kind == Leaf {
		return 1
	}
	c := 0
	for _, ch := range n.Children {
		c += ch.TransistorCount()
	}
	return c
}

func andAll(vs []logic.Value) logic.Value {
	sawX := false
	for _, v := range vs {
		switch v {
		case logic.Zero:
			return logic.Zero
		case logic.X:
			sawX = true
		case logic.One:
			// Neutral for AND: contributes nothing.
		}
	}
	if sawX {
		return logic.X
	}
	return logic.One
}

func orAll(vs []logic.Value) logic.Value {
	sawX := false
	for _, v := range vs {
		switch v {
		case logic.One:
			return logic.One
		case logic.X:
			sawX = true
		case logic.Zero:
			// Neutral for OR: contributes nothing.
		}
	}
	if sawX {
		return logic.X
	}
	return logic.Zero
}
