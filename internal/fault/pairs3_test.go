package fault

import (
	"testing"

	"gobd/internal/logic"
)

// TestExcitationPairs3Input pins the pair counts of every 3-input
// primitive down to the series-parallel theory:
//
//   - a parallel transistor is excited only when it conducts alone, so a
//     NAND3 PMOS has exactly one V2 (its input 0, siblings 1) and one V1
//     (the single all-ones falling start): 1 pair;
//   - a series transistor always carries the whole chain current, so a
//     NAND3 NMOS is excited by every falling transition: 7 V1s × 1 V2;
//   - AOI21 (pull-down (a·b)∥c, pull-up (a∥b)–c) mixes both: the a/b
//     NMOS pair needs its branch to drive alone (V2=110, 3 rising V1s),
//     the c devices are the series/parallel duals (9 and 15 pairs), and
//     the a/b PMOS conduct alone only against the partner (5 pairs);
//   - OAI21 is the exact dual of AOI21.
func TestExcitationPairs3Input(t *testing.T) {
	want := map[logic.GateType]map[string]int{
		logic.Nand:  {"PMOS@a": 1, "NMOS@a": 7, "PMOS@b": 1, "NMOS@b": 7, "PMOS@c": 1, "NMOS@c": 7},
		logic.Nor:   {"PMOS@a": 7, "NMOS@a": 1, "PMOS@b": 7, "NMOS@b": 1, "PMOS@c": 7, "NMOS@c": 1},
		logic.Aoi21: {"PMOS@a": 5, "NMOS@a": 3, "PMOS@b": 5, "NMOS@b": 3, "PMOS@c": 15, "NMOS@c": 9},
		logic.Oai21: {"PMOS@a": 3, "NMOS@a": 5, "PMOS@b": 3, "NMOS@b": 5, "PMOS@c": 9, "NMOS@c": 15},
	}
	for gt, counts := range want {
		faults, err := GateOBDFaults(gt, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(faults) != 6 {
			t.Fatalf("%v/3: %d faults, want 6", gt, len(faults))
		}
		for _, f := range faults {
			key := f.Side.String() + "@" + f.Gate.Inputs[f.Input]
			pairs := f.ExcitationPairs()
			if len(pairs) != counts[key] {
				t.Errorf("%v/3 %s: %d pairs, want %d", gt, key, len(pairs), counts[key])
			}
			// Every enumerated pair must satisfy the excitation rule.
			for _, p := range pairs {
				if !f.Excited(p.V1, p.V2) {
					t.Errorf("%v/3 %s: pair %s not actually exciting", gt, key, p)
				}
			}
		}
	}

	// Structure of the NAND3 extremes: the series NMOS shares the single
	// all-ones V2 across all its pairs; the parallel PMOS pair starts from
	// the all-ones state and ends with only its own input low.
	faults, _ := GateOBDFaults(logic.Nand, 3)
	for _, f := range faults {
		for _, p := range f.ExcitationPairs() {
			if f.Side == PullDown {
				for i, v := range p.V2 {
					if v != logic.One {
						t.Fatalf("NAND3 NMOS pair %s: V2[%d] != 1", p, i)
					}
				}
			} else {
				for i, v := range p.V1 {
					if v != logic.One {
						t.Fatalf("NAND3 PMOS pair %s: V1[%d] != 1", p, i)
					}
				}
				for i, v := range p.V2 {
					if want := logic.FromBool(i != f.Input); v != want {
						t.Fatalf("NAND3 PMOS@%d pair %s: V2[%d]=%v, want sole zero at the fault input", f.Input, p, i, v)
					}
				}
			}
		}
	}
}

// TestCollapseAOI21 checks collapsing inside a complex gate: the series
// a/b NMOS pair is one class, everything else stays apart.
func TestCollapseAOI21(t *testing.T) {
	faults, err := GateOBDFaults(logic.Aoi21, 3)
	if err != nil {
		t.Fatal(err)
	}
	classes := CollapseOBD(faults)
	if len(classes) != 5 {
		t.Fatalf("AOI21 collapses to %d classes, want 5", len(classes))
	}
	var merged []OBD
	for _, cl := range classes {
		if len(cl) > 1 {
			merged = cl
		}
	}
	if len(merged) != 2 || merged[0].Side != PullDown || merged[1].Side != PullDown ||
		merged[0].Input > 1 || merged[1].Input > 1 {
		t.Fatalf("merged class %v, want the a/b NMOS series pair", merged)
	}
}

// TestCollapseSingleGateCircuit runs collapsing over a one-gate circuit's
// OBD universe (the smallest end of the spectrum).
func TestCollapseSingleGateCircuit(t *testing.T) {
	c := logic.New("single")
	for _, in := range []string{"a", "b"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddGate("g", logic.Nand, "y", "a", "b"); err != nil {
		t.Fatal(err)
	}
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	faults, _ := OBDUniverse(c)
	if len(faults) != 4 {
		t.Fatalf("NAND2 universe has %d faults, want 4", len(faults))
	}
	classes := CollapseOBD(faults)
	if len(classes) != 3 {
		t.Fatalf("%d classes, want 3 (merged NMOS pair + 2 PMOS)", len(classes))
	}
	reps := Representatives(classes)
	for i, cl := range classes {
		if reps[i] != cl[0] {
			t.Fatalf("representative %d is not its class's first member", i)
		}
	}
}

// TestCollapseFanoutHeavyCircuit: one input pair fans out to several
// structurally identical gates. Their local pair sets coincide, but
// collapsing must stay per-gate — the defects live at different sites and
// are told apart by observation, so classes may never span gates.
func TestCollapseFanoutHeavyCircuit(t *testing.T) {
	c := logic.New("fanout")
	for _, in := range []string{"x", "y"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	const n = 4
	for i := 0; i < n; i++ {
		name := string(rune('p' + i))
		if _, err := c.AddGate(name, logic.Nand, name+"_o", "x", "y"); err != nil {
			t.Fatal(err)
		}
		c.AddOutput(name + "_o")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	faults, _ := OBDUniverse(c)
	if len(faults) != 4*n {
		t.Fatalf("universe has %d faults, want %d", len(faults), 4*n)
	}
	classes := CollapseOBD(faults)
	if len(classes) != 3*n {
		t.Fatalf("%d classes, want %d (3 per gate, never merged across gates)", len(classes), 3*n)
	}
	total := 0
	for _, cl := range classes {
		total += len(cl)
		for _, f := range cl[1:] {
			if f.Gate != cl[0].Gate {
				t.Fatalf("class spans gates %s and %s", cl[0].Gate.Name, f.Gate.Name)
			}
		}
	}
	if total != 4*n {
		t.Fatalf("classes cover %d faults, want %d", total, 4*n)
	}
	if got := len(Representatives(classes)); got != 3*n {
		t.Fatalf("%d representatives, want %d", got, 3*n)
	}
}
