package jobs

import (
	"errors"
	"fmt"
)

// ErrDraining reports a submission rejected because the manager is
// draining for shutdown. Match with errors.Is; the serving layer maps
// it to 503 so a load balancer retries against a live replica.
var ErrDraining = errors.New("jobs: manager is draining")

// errHalted marks the manager after an injected crash (tests only): the
// simulated process is dead, so every durable operation is refused.
var errHalted = errors.New("jobs: runtime halted by injected crash")

// NotFoundError reports a job ID with no record in the journal. Match
// with errors.As; the serving layer maps it to 404.
type NotFoundError struct {
	ID string
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("jobs: job %s not found", e.ID)
}

// NotDoneError reports a result fetch on a job that has not (or not
// yet) produced an artifact. State carries where the job actually is.
type NotDoneError struct {
	ID    string
	State State
}

// Error implements error.
func (e *NotDoneError) Error() string {
	return fmt.Sprintf("jobs: job %s is %s, not done", e.ID, e.State)
}

// SpecError reports an invalid job specification at submission time.
// The serving layer maps it to 400.
type SpecError struct {
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("jobs: invalid spec: %s", e.Reason)
}

func badSpec(format string, args ...any) *SpecError {
	return &SpecError{Reason: fmt.Sprintf(format, args...)}
}
