package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/store"
)

// testNetlist is the full-adder sum cell — the paper's running example:
// big enough for several checkpoint segments, small enough to simulate
// in milliseconds.
func testNetlist(t *testing.T) string {
	t.Helper()
	return logic.Format(cells.FullAdderSumLogic())
}

func missionSpec(netlist string) Spec {
	return Spec{Kind: KindMission, Netlist: netlist, Mission: &MissionSpec{
		Seed:      42,
		Chips:     10,
		Duration:  5 * obd.DefaultWindow,
		FaultRate: 3,
		Adversity: "heavy",
		PerChip:   true,
	}}
}

func atpgSpec(netlist, model string) Spec {
	return Spec{Kind: KindATPG, Netlist: netlist, ATPG: &ATPGSpec{Model: model}}
}

// openTestManager opens a store+manager pair rooted at dir with small
// checkpoint segments so even tiny jobs cross several boundaries.
func openTestManager(t *testing.T, dir string, hook store.Hook) (*store.Store, *Manager) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"), hook)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Config{
		Store:         st,
		JournalPath:   filepath.Join(dir, "journal"),
		Workers:       2,
		SegmentChips:  3,
		SegmentFaults: 4,
		Hook:          hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// waitState polls until the job reaches want (returning its snapshot)
// or the deadline expires.
func waitState(t *testing.T, m *Manager, id string, want State) *Job {
	t.Helper()
	for i := 0; i < 2000; i++ {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s (want %s)", id, j.State, want)
	return nil
}

// TestMissionJobLifecycle: submit → poll → fetch, and the artifact is
// the same JSON the synchronous mission path computes.
func TestMissionJobLifecycle(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	if j.Kind != KindMission || j.Total != 10 {
		t.Fatalf("snapshot = %+v", j)
	}
	done := waitState(t, m, j.ID, StateDone)
	if done.Committed != done.Total {
		t.Fatalf("done job committed %d/%d", done.Committed, done.Total)
	}
	body, err := m.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res MissionResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("artifact is not MissionResult JSON: %v", err)
	}
	if res.Report == nil || res.Report.Chips != 10 || res.Report.Complete != 10 {
		t.Fatalf("report = %+v", res.Report)
	}
	if !bytes.HasSuffix(body, []byte("\n")) {
		t.Fatal("artifact missing trailing newline (wire-format parity)")
	}
}

// TestATPGJobLifecycle for each fault model.
func TestATPGJobLifecycle(t *testing.T) {
	for _, model := range []string{"obd", "transition", "stuckat"} {
		_, m := openTestManager(t, t.TempDir(), nil)
		j, err := m.Submit(atpgSpec(testNetlist(t), model))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, j.ID, StateDone)
		body, err := m.Result(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var res ATPGResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Model != model || res.Faults == 0 || res.Coverage.Total != res.Faults {
			t.Fatalf("%s result = %+v", model, res)
		}
		m.Close()
	}
}

// TestSubmitDedupes: spelling variants of one canonical spec map to one
// job ID; resubmission of a done job returns the done snapshot.
func TestSubmitDedupes(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	nl := testNetlist(t)
	a, err := m.Submit(missionSpec(nl))
	if err != nil {
		t.Fatal(err)
	}
	// Whitespace/comment variant of the same netlist, same params.
	variant := missionSpec("# a comment\n" + nl + "\n\n")
	b, err := m.Submit(variant)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("canonicalization failed: %s vs %s", a.ID, b.ID)
	}
	waitState(t, m, a.ID, StateDone)
	c, err := m.Submit(missionSpec(nl))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != a.ID || c.State != StateDone {
		t.Fatalf("resubmit of done job = %+v", c)
	}

	other := missionSpec(nl)
	other.Mission.Seed = 43
	d, err := m.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID == a.ID {
		t.Fatal("different seed must be a different job")
	}
}

// TestSpecValidation: invalid submissions are typed *SpecError and
// never reach the journal.
func TestSpecValidation(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	nl := testNetlist(t)
	bad := []Spec{
		{Kind: KindMission, Netlist: nl}, // missing params
		{Kind: "bake", Netlist: nl},      // unknown kind
		{Kind: KindMission, Netlist: "circuit g\nbogus\n", Mission: &MissionSpec{Chips: 1}}, // parse error
		{Kind: KindMission, Netlist: nl, Mission: &MissionSpec{Chips: 0, Duration: 1}},      // bad chips
		{Kind: KindMission, Netlist: nl, Mission: &MissionSpec{Chips: 1, Duration: 1, Adversity: "bogus=1"}},
		{Kind: KindATPG, Netlist: nl, ATPG: &ATPGSpec{Model: "parity"}},               // bad model
		{Kind: KindATPG, Netlist: nl, ATPG: &ATPGSpec{Model: "stuckat", Prune: true}}, // prune misuse
		{Kind: KindATPG, Netlist: nl, ATPG: &ATPGSpec{MaxBacktracks: -1}},             // bad limit
		{Kind: KindATPG, Netlist: nl, Mission: &MissionSpec{Chips: 1}},                // cross-kind params
	}
	for i, sp := range bad {
		_, err := m.Submit(sp)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("bad[%d]: err = %v, want *SpecError", i, err)
		}
	}
	if n := m.Stats()["jobs_queued"] + m.Stats()["jobs_running"]; n != 0 {
		t.Fatalf("invalid specs enqueued %d jobs", n)
	}
}

// TestNotFoundAndNotDone: the typed negative-path errors.
func TestNotFoundAndNotDone(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	var nfe *NotFoundError
	if _, err := m.Get("jdeadbeef"); !errors.As(err, &nfe) {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := m.Result("jdeadbeef"); !errors.As(err, &nfe) {
		t.Fatalf("Result unknown: %v", err)
	}
	if _, err := m.Cancel("jdeadbeef"); !errors.As(err, &nfe) {
		t.Fatalf("Cancel unknown: %v", err)
	}
	if nfe.ID != "jdeadbeef" {
		t.Fatalf("NotFoundError.ID = %q", nfe.ID)
	}

	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); err != nil {
		var nde *NotDoneError
		if !errors.As(err, &nde) {
			t.Fatalf("Result before done: %v, want *NotDoneError", err)
		}
	} else {
		// The tiny job may already be done; that's fine.
		waitState(t, m, j.ID, StateDone)
	}
}

// TestCancelRunningJob: cancel lands at a checkpoint boundary and the
// job can be revived by resubmission, finishing from its checkpoint.
func TestCancelRunningJob(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		snap, err := m.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == StateCancelled || snap.State == StateDone {
			break
		}
		if i > 2000 {
			t.Fatalf("cancel never settled: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Revive: a cancelled job resubmits and completes.
	if _, err := m.Submit(missionSpec(testNetlist(t))); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	if _, err := m.Result(j.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRestartCompletesJournaledJob: a job interrupted by a hard Close
// (no drain) is requeued by journal replay and finishes with artifact
// bytes identical to an uninterrupted run.
func TestRestartCompletesJournaledJob(t *testing.T) {
	base := t.TempDir()
	_, ref := openTestManager(t, filepath.Join(base, "ref"), nil)
	defer ref.Close()
	refJob, err := ref.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ref, refJob.ID, StateDone)
	want, err := ref.Result(refJob.ID)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(base, "victim")
	_, m := openTestManager(t, dir, nil)
	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // interrupt: no drain, in-flight work is abandoned

	_, m2 := openTestManager(t, dir, nil)
	defer m2.Close()
	got, err := m2.Get(j.ID)
	if err != nil {
		t.Fatalf("journal lost the job across restart: %v", err)
	}
	if got.State != StateQueued && got.State != StateRunning && got.State != StateDone {
		t.Fatalf("replayed state = %s", got.State)
	}
	waitState(t, m2, j.ID, StateDone)
	body, err := m2.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("artifact after restart differs from uninterrupted run")
	}
}

// TestDrainParksAndRestartResumes: Drain checkpoints the in-flight job,
// journals it back to queued, refuses new submissions, and a fresh
// manager on the same directory completes it byte-identically.
func TestDrainParksAndRestartResumes(t *testing.T) {
	base := t.TempDir()
	_, ref := openTestManager(t, filepath.Join(base, "ref"), nil)
	defer ref.Close()
	refJob, err := ref.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ref, refJob.ID, StateDone)
	want, err := ref.Result(refJob.ID)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(base, "drained")
	_, m := openTestManager(t, dir, nil)
	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !m.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := m.Submit(atpgSpec(testNetlist(t), "obd")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	snap, err := m.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued && snap.State != StateDone {
		t.Fatalf("drained job state = %s, want queued or done", snap.State)
	}
	m.Close()

	_, m2 := openTestManager(t, dir, nil)
	defer m2.Close()
	waitState(t, m2, j.ID, StateDone)
	body, err := m2.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("artifact after drain+restart differs from uninterrupted run")
	}
}

// TestCorruptArtifactRequeues: a done job whose artifact rots on disk is
// never served corrupt bytes — the fetch returns the typed store error,
// the job recomputes, and the next fetch returns intact bytes.
func TestCorruptArtifactRequeues(t *testing.T) {
	st, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	j, err := m.Submit(atpgSpec(testNetlist(t), "obd"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	want, err := m.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Rot the artifact in place (flip one payload byte).
	var path string
	err = filepath.Walk(filepath.Join(st.Root(), "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) != ".ckpt" {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("artifact file not found: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = m.Result(j.ID)
	var cae *store.CorruptArtifactError
	if !errors.As(err, &cae) {
		t.Fatalf("corrupt fetch: %v, want *store.CorruptArtifactError", err)
	}
	if cae.Quarantined == "" {
		t.Fatal("corrupt artifact was not quarantined")
	}

	waitState(t, m, j.ID, StateDone)
	got, err := m.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed artifact differs from the original")
	}
}

// TestStatsGauges: the /metrics-facing counters move.
func TestStatsGauges(t *testing.T) {
	_, m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()

	j, err := m.Submit(missionSpec(testNetlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	stats := m.Stats()
	if stats["jobs_done"] != 1 {
		t.Fatalf("jobs_done = %d", stats["jobs_done"])
	}
	if stats["jobs_checkpoints"] == 0 {
		t.Fatal("no checkpoints recorded for a multi-segment job")
	}
	if stats["jobs_journal_records"] < 3 {
		t.Fatalf("journal_records = %d, want >= 3 (submit, running, done)", stats["jobs_journal_records"])
	}
}
