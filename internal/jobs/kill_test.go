package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gobd/internal/store"
)

// crashArm is the kill-injection trigger: it counts every failpoint the
// store and journal fire and, when armed, simulates a process kill at
// the at-th occurrence by returning store.ErrInjectedCrash — after
// which the store leaves the disk exactly as a real crash would (torn
// temp files, missing renames, half-written journal lines included).
type crashArm struct {
	mu    sync.Mutex
	at    int // 0 = count only, never fire
	count int
	fired bool
}

func (a *crashArm) hook(fp store.Failpoint) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fired {
		return nil // the simulated process is already dead
	}
	a.count++
	if a.at > 0 && a.count == a.at {
		a.fired = true
		return store.ErrInjectedCrash
	}
	return nil
}

func (a *crashArm) total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// runKillMatrix is the crash-recovery property test: run the job once
// uninterrupted to get the baseline artifact and the failpoint count N,
// then for every k in 1..N kill the worker at the k-th failpoint,
// reboot a fresh manager on the survivor directory, and require the
// finished artifact to be byte-identical to the baseline.
func runKillMatrix(t *testing.T, sp Spec) {
	t.Helper()
	baseArm := &crashArm{}
	_, base := openTestManager(t, t.TempDir(), baseArm.hook)
	j, err := base.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, base, j.ID, StateDone)
	want, err := base.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	base.Close()
	total := baseArm.total()
	if total < 15 {
		t.Fatalf("only %d failpoint occurrences — the job is not crossing checkpoint boundaries", total)
	}

	resumed := 0
	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("kill-at-%03d", k), func(t *testing.T) {
			dir := t.TempDir()
			arm := &crashArm{at: k}
			_, victim := openTestManager(t, dir, arm.hook)
			if _, serr := victim.Submit(sp); serr != nil && !errors.Is(serr, store.ErrInjectedCrash) {
				t.Fatalf("submit: %v", serr)
			}
			// Wait for the kill to land or the job to finish (a crash
			// after the final fsync still completes the work).
			for i := 0; i < 4000; i++ {
				if victim.halted.Load() {
					break
				}
				if snap, gerr := victim.Get(j.ID); gerr == nil && snap.State == StateDone {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			victim.Close()

			// Reboot: fresh store and manager over the crashed state.
			st, err := store.Open(filepath.Join(dir, "store"), nil)
			if err != nil {
				t.Fatalf("store did not recover: %v", err)
			}
			m, err := Open(Config{
				Store:         st,
				JournalPath:   filepath.Join(dir, "journal"),
				Workers:       2,
				SegmentChips:  3,
				SegmentFaults: 4,
			})
			if err != nil {
				t.Fatalf("journal did not recover: %v", err)
			}
			defer m.Close()
			// Resubmit: a no-op when the journal kept the job, a fresh
			// submission when the crash preceded the submit record.
			j2, err := m.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			if j2.ID != j.ID {
				t.Fatalf("job ID drifted across crash: %s vs %s", j2.ID, j.ID)
			}
			waitState(t, m, j2.ID, StateDone)
			got, err := m.Result(j2.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("artifact after kill-at-%d differs from uninterrupted run:\n got %d bytes\nwant %d bytes", k, len(got), len(want))
			}
			if m.Stats()["jobs_resumes"] > 0 {
				resumed++
			}
		})
	}
	if resumed == 0 {
		t.Fatal("no kill point resumed from a checkpoint — the matrix is not exercising resume")
	}
}

// TestKillInjectionMission: every failpoint occurrence of a mission
// campaign job is a survivable kill point.
func TestKillInjectionMission(t *testing.T) {
	runKillMatrix(t, missionSpec(testNetlist(t)))
}

// TestKillInjectionATPG: same property for OBD test generation.
func TestKillInjectionATPG(t *testing.T) {
	runKillMatrix(t, atpgSpec(testNetlist(t), "obd"))
}
