package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gobd/internal/store"
)

// Config parameterizes a Manager.
type Config struct {
	// Store holds artifacts and checkpoints (required). It may be shared
	// with the serving layer's durable response cache: keys are
	// namespaced by the digest scheme, not by the consumer.
	Store *store.Store
	// JournalPath is the crash-safe lifecycle journal file (required).
	JournalPath string
	// Workers sizes the scheduler pool each job computes with (0 = 1).
	// The worker count never changes results — only wall-clock time.
	Workers int
	// SegmentChips is the mission checkpoint granularity in chips (0 = 16).
	SegmentChips int
	// SegmentFaults is the ATPG checkpoint granularity in faults (0 = 32).
	SegmentFaults int
	// Hook receives journal failpoints (tests only).
	Hook store.Hook
}

// journalRec is one journal entry: a submission (with its canonical
// spec) or a state transition.
type journalRec struct {
	Op    string `json:"op"` // "submit" | "state"
	ID    string `json:"id"`
	Spec  *Spec  `json:"spec,omitempty"`
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// jobEntry is the in-memory record of a job. All fields are guarded by
// Manager.mu except norm, which is immutable after creation.
type jobEntry struct {
	id              string
	norm            *normalized
	state           State
	errMsg          string
	committed       int
	resumed         bool
	cancelRequested bool
	ctx             context.Context
	cancel          context.CancelFunc
}

// Manager is the durable job runtime: a journaled job table and a
// single background runner that executes queued jobs with checkpointed
// progress. Open it on a directory that survived a crash and every
// queued or interrupted job resumes from its last checkpoint.
type Manager struct {
	cfg     Config
	journal *store.Journal

	runCtx  context.Context
	runStop context.CancelFunc
	wg      sync.WaitGroup
	wakeCh  chan struct{}

	// halted marks the manager dead after an injected crash (tests):
	// from that instant nothing may touch the disk, mimicking a killed
	// process whose on-disk state is frozen mid-operation.
	halted atomic.Bool

	checkpoints atomic.Int64
	resumes     atomic.Int64

	mu          sync.Mutex
	jobs        map[string]*jobEntry
	queue       []string
	draining    bool
	drainCh     chan struct{}
	drainedCh   chan struct{}
	drainedOnce sync.Once
	closeOnce   sync.Once
	closeErr    error
}

// Open replays the journal, requeues every job that had not reached a
// terminal state, and starts the runner.
func Open(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("jobs: open: %w", badSpec("Config.Store is required"))
	}
	if cfg.JournalPath == "" {
		return nil, fmt.Errorf("jobs: open: %w", badSpec("Config.JournalPath is required"))
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.SegmentChips <= 0 {
		cfg.SegmentChips = 16
	}
	if cfg.SegmentFaults <= 0 {
		cfg.SegmentFaults = 32
	}
	journal, recs, err := store.OpenJournal(cfg.JournalPath, cfg.Hook)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	m := &Manager{
		cfg:       cfg,
		journal:   journal,
		wakeCh:    make(chan struct{}, 1),
		jobs:      make(map[string]*jobEntry),
		drainCh:   make(chan struct{}),
		drainedCh: make(chan struct{}),
	}
	m.runCtx, m.runStop = context.WithCancel(context.Background()) //obdcheck:allow ctxflow — manager-lifetime root context: the runner outlives any request and is cancelled by Close
	if err := m.replay(recs); err != nil {
		_ = journal.Close()
		return nil, err
	}
	m.wg.Add(1)
	go m.runner()
	return m, nil
}

// replay rebuilds the job table from journal records and queues every
// non-terminal job in submission order. A job that was running when the
// process died is indistinguishable from a queued one here — its
// checkpoint (if any) carries the progress.
func (m *Manager) replay(recs [][]byte) error {
	var order []string
	for i, raw := range recs {
		var rec journalRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("jobs: journal record %d: %w", i, err)
		}
		switch rec.Op {
		case "submit":
			if rec.Spec == nil || rec.ID == "" {
				return fmt.Errorf("jobs: journal record %d: %w", i, badSpec("submit without spec or id"))
			}
			norm, err := rec.Spec.normalize()
			if err != nil {
				// The spec was valid when journaled; if it no longer
				// normalizes (format drift across versions) the job is
				// failed, not silently dropped.
				m.jobs[rec.ID] = &jobEntry{id: rec.ID, state: StateFailed, errMsg: err.Error()}
				continue
			}
			m.jobs[rec.ID] = &jobEntry{id: rec.ID, norm: norm, state: StateQueued}
			order = append(order, rec.ID)
		case "state":
			e := m.jobs[rec.ID]
			if e == nil {
				return fmt.Errorf("jobs: journal record %d: %w", i, badSpec("state for unknown job %s", rec.ID))
			}
			e.state = rec.State
			e.errMsg = rec.Error
		default:
			return fmt.Errorf("jobs: journal record %d: %w", i, badSpec("unknown op %q", rec.Op))
		}
	}
	for _, id := range order {
		e := m.jobs[id]
		switch e.state {
		case StateRunning:
			// Died mid-run: requeue; the checkpoint carries progress.
			e.state = StateQueued
			e.resumed = true
			m.queue = append(m.queue, id)
		case StateQueued:
			m.queue = append(m.queue, id)
		case StateDone:
			e.committed = e.norm.total
		case StateFailed, StateCancelled:
		}
	}
	return nil
}

// Submit validates, canonicalizes and journals a job, returning its
// snapshot. Identical specs dedupe onto one job; resubmitting a failed
// or cancelled job requeues it.
func (m *Manager) Submit(sp Spec) (*Job, error) {
	if m.halted.Load() {
		return nil, fmt.Errorf("jobs: submit: %w", errHalted)
	}
	norm, err := sp.normalize()
	if err != nil {
		return nil, err
	}
	id := jobID(norm.digest)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, fmt.Errorf("jobs: submit: %w", ErrDraining)
	}
	if e, ok := m.jobs[id]; ok {
		if e.state == StateFailed || e.state == StateCancelled {
			if err := m.appendLocked(journalRec{Op: "state", ID: id, State: StateQueued}); err != nil {
				return nil, err
			}
			e.state = StateQueued
			e.errMsg = ""
			e.cancelRequested = false
			e.committed = 0
			m.queue = append(m.queue, id)
			m.wakeLocked()
		}
		return e.snapshotLocked(), nil
	}
	e := &jobEntry{id: id, norm: norm, state: StateQueued}
	if err := m.appendLocked(journalRec{Op: "submit", ID: id, Spec: &norm.spec}); err != nil {
		return nil, err
	}
	m.jobs[id] = e
	m.queue = append(m.queue, id)
	m.wakeLocked()
	return e.snapshotLocked(), nil
}

// Get returns a job snapshot.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.jobs[id]
	if e == nil {
		return nil, &NotFoundError{ID: id}
	}
	return e.snapshotLocked(), nil
}

// Result returns the artifact bytes of a done job. A corrupt or missing
// artifact is never served: the store quarantines it, the job is
// requeued for recomputation, and the caller gets the typed error.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	e := m.jobs[id]
	if e == nil {
		m.mu.Unlock()
		return nil, &NotFoundError{ID: id}
	}
	if e.state != StateDone {
		st := e.state
		m.mu.Unlock()
		return nil, &NotDoneError{ID: id, State: st}
	}
	key := artifactKey(e.norm.digest)
	m.mu.Unlock()
	body, err := m.cfg.Store.Get(key)
	if err == nil {
		return body, nil
	}
	m.mu.Lock()
	if e.state == StateDone {
		if jerr := m.appendLocked(journalRec{Op: "state", ID: id, State: StateQueued}); jerr == nil {
			e.state = StateQueued
			e.committed = 0
			m.queue = append(m.queue, id)
			m.wakeLocked()
		}
	}
	m.mu.Unlock()
	return nil, fmt.Errorf("jobs: result %s: %w", id, err)
}

// Cancel stops a job: queued jobs are cancelled immediately, running
// jobs at the next checkpoint boundary (the runner journals the
// transition when it observes the cancellation). Terminal jobs are
// unchanged.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.jobs[id]
	if e == nil {
		return nil, &NotFoundError{ID: id}
	}
	switch e.state {
	case StateQueued:
		if err := m.appendLocked(journalRec{Op: "state", ID: id, State: StateCancelled}); err != nil {
			return nil, err
		}
		e.state = StateCancelled
		for i, qid := range m.queue {
			if qid == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
	case StateRunning:
		e.cancelRequested = true
		if e.cancel != nil {
			e.cancel()
		}
	case StateDone, StateFailed, StateCancelled:
	}
	return e.snapshotLocked(), nil
}

// Drain stops accepting submissions and parks the runner at the next
// checkpoint boundary, journaling the in-flight job back to queued so a
// restart resumes it from its checkpoint. It returns once the runner
// has parked or ctx expires.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainCh)
	}
	m.mu.Unlock()
	m.wake()
	select {
	case <-m.drainedCh:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Close stops the runner and closes the journal. In-flight work is
// interrupted (not checkpointed); use Drain first for a clean handoff.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.runStop()
		m.wg.Wait()
		if err := m.journal.Close(); err != nil && !m.halted.Load() {
			m.closeErr = fmt.Errorf("jobs: close: %w", err)
		}
	})
	return m.closeErr
}

// Stats reports job and runtime gauges for /metrics.
func (m *Manager) Stats() map[string]int64 {
	counts := map[State]int64{}
	m.mu.Lock()
	for _, e := range m.jobs {
		counts[e.state]++
	}
	m.mu.Unlock()
	records, truncated := m.journal.Stats()
	return map[string]int64{
		"jobs_queued":                  counts[StateQueued],
		"jobs_running":                 counts[StateRunning],
		"jobs_done":                    counts[StateDone],
		"jobs_failed":                  counts[StateFailed],
		"jobs_cancelled":               counts[StateCancelled],
		"jobs_checkpoints":             m.checkpoints.Load(),
		"jobs_resumes":                 m.resumes.Load(),
		"jobs_journal_records":         records,
		"jobs_journal_truncated_bytes": truncated,
	}
}

// snapshotLocked builds the public view; the caller holds m.mu.
func (e *jobEntry) snapshotLocked() *Job {
	j := &Job{ID: e.id, State: e.state, Error: e.errMsg, Committed: e.committed, Resumed: e.resumed}
	if e.norm != nil {
		j.Kind = e.norm.spec.Kind
		j.Total = e.norm.total
	}
	return j
}

// appendLocked journals a record; the caller holds m.mu. A failed
// append on the injected-crash path halts the manager — the simulated
// process is dead and must not touch the disk again.
func (m *Manager) appendLocked(rec journalRec) error {
	if m.halted.Load() {
		return fmt.Errorf("jobs: journal: %w", errHalted)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	if err := m.journal.Append(raw); err != nil {
		if errors.Is(err, store.ErrInjectedCrash) {
			m.halted.Store(true)
		}
		return fmt.Errorf("jobs: journal: %w", err)
	}
	return nil
}

func (m *Manager) append(rec journalRec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appendLocked(rec)
}

func (m *Manager) wakeLocked() {
	select {
	case m.wakeCh <- struct{}{}:
	default:
	}
}

func (m *Manager) wake() {
	m.mu.Lock()
	m.wakeLocked()
	m.mu.Unlock()
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

func (m *Manager) signalDrained() {
	m.drainedOnce.Do(func() { close(m.drainedCh) })
}

// runner is the single job-execution goroutine.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		e := m.next()
		if e == nil {
			return
		}
		m.runJob(e)
		if m.halted.Load() {
			return
		}
	}
}

// next blocks until a job is runnable, returning nil when the manager
// is draining, closing, or (tests) crash-halted.
func (m *Manager) next() *jobEntry {
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			m.signalDrained()
			return nil
		}
		for len(m.queue) > 0 {
			id := m.queue[0]
			m.queue = m.queue[1:]
			e := m.jobs[id]
			if e == nil || e.state != StateQueued {
				continue // stale queue entry (cancelled while queued)
			}
			if err := m.appendLocked(journalRec{Op: "state", ID: id, State: StateRunning}); err != nil {
				m.mu.Unlock()
				return nil // journal unwritable: park rather than run unjournaled
			}
			e.state = StateRunning
			e.ctx, e.cancel = context.WithCancel(m.runCtx)
			m.mu.Unlock()
			return e
		}
		m.mu.Unlock()
		select {
		case <-m.wakeCh:
		case <-m.drainCh:
		case <-m.runCtx.Done():
			return nil
		}
	}
}

// runJob executes one job to its next terminal state (or parks it back
// to queued on drain/shutdown). Every durable write it performs is
// crash-ordered: artifact before done-record, checkpoint before
// progress is considered committed.
func (m *Manager) runJob(e *jobEntry) {
	m.mu.Lock()
	ctx := e.ctx
	norm := e.norm
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if e.cancel != nil {
			e.cancel()
			e.cancel = nil
			e.ctx = nil
		}
		m.mu.Unlock()
	}()

	// Fast path: the artifact already exists and verifies (journal lost
	// the done record to a crash, or a resubmitted spec). Get verifies
	// the digest, so a corrupt object falls through to recompute.
	if _, err := m.cfg.Store.Get(artifactKey(norm.digest)); err == nil {
		m.finalize(e, norm)
		return
	}

	var body []byte
	var err error
	switch norm.spec.Kind {
	case KindMission:
		body, err = m.runMission(ctx, e, norm)
	case KindATPG:
		body, err = m.runATPG(ctx, e, norm)
	default:
		err = badSpec("unknown kind %q", norm.spec.Kind)
	}

	switch {
	case err == nil:
		if perr := m.cfg.Store.Put(artifactKey(norm.digest), body); perr != nil {
			if errors.Is(perr, store.ErrInjectedCrash) {
				m.halted.Store(true)
				return
			}
			m.settle(e, StateFailed, perr.Error())
			return
		}
		m.finalize(e, norm)
	case errors.Is(err, store.ErrInjectedCrash):
		m.halted.Store(true)
	case errors.Is(err, errPaused):
		// Drain: the last checkpoint carries progress; journal the job
		// back to queued so a restarted process resumes it.
		m.settle(e, StateQueued, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.mu.Lock()
		cancelled := e.cancelRequested
		closing := m.runCtx.Err() != nil
		m.mu.Unlock()
		switch {
		case cancelled:
			m.settle(e, StateCancelled, "")
		case closing:
			// Close without drain: leave the journal at running; replay
			// requeues the job exactly like a crash would.
			m.mu.Lock()
			e.state = StateQueued
			m.mu.Unlock()
		default:
			m.settle(e, StateQueued, "")
		}
	default:
		m.settle(e, StateFailed, err.Error())
	}
}

// finalize journals the done record (the artifact is already durable)
// and drops the checkpoint, which is now dead weight.
func (m *Manager) finalize(e *jobEntry, norm *normalized) {
	if err := m.append(journalRec{Op: "state", ID: e.id, State: StateDone}); err != nil {
		return // halted (injected crash) or unwritable journal: replay will re-run the fast path
	}
	m.mu.Lock()
	e.state = StateDone
	e.errMsg = ""
	e.committed = norm.total
	m.mu.Unlock()
	_ = m.cfg.Store.Delete(checkpointKey(norm.digest))
}

// settle journals and applies a terminal (or requeued) state.
func (m *Manager) settle(e *jobEntry, st State, msg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.appendLocked(journalRec{Op: "state", ID: e.id, State: st, Error: msg}); err != nil {
		return
	}
	e.state = st
	e.errMsg = msg
	if st == StateQueued {
		m.queue = append(m.queue, e.id)
	}
}

// errPaused signals a drain interruption out of a run loop.
var errPaused = errors.New("jobs: paused for drain")

// putCheckpoint persists a progress prefix. Checkpoint writes go
// through the same atomic-rename path as artifacts, so a crash leaves
// either the previous checkpoint or the new one, never a torn file.
func (m *Manager) putCheckpoint(norm *normalized, payload []byte) error {
	if m.halted.Load() {
		return fmt.Errorf("jobs: checkpoint: %w", errHalted)
	}
	if err := m.cfg.Store.Put(checkpointKey(norm.digest), payload); err != nil {
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	m.checkpoints.Add(1)
	return nil
}

func (m *Manager) setCommitted(e *jobEntry, n int) {
	m.mu.Lock()
	e.committed = n
	m.mu.Unlock()
}

func (m *Manager) markResumed(e *jobEntry) {
	m.resumes.Add(1)
	m.mu.Lock()
	e.resumed = true
	m.mu.Unlock()
}
