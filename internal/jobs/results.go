package jobs

import (
	"gobd/internal/atpg"
	"gobd/internal/logic"
	"gobd/internal/mission"
)

// Pair is a two-pattern test rendered over the circuit's input order,
// matching the synchronous API's wire shape.
type Pair struct {
	V1 string `json:"v1"`
	V2 string `json:"v2"`
}

// CoverageResult summarizes grading, matching the synchronous wire shape.
type CoverageResult struct {
	Total      int      `json:"total"`
	Detected   int      `json:"detected"`
	Ratio      float64  `json:"ratio"`
	Undetected []string `json:"undetected,omitempty"`
}

// MissionResult is the artifact body of a done mission job — the same
// JSON a successful /v1/mission call returns.
type MissionResult struct {
	Circuit     string          `json:"circuit"`
	Fingerprint string          `json:"fingerprint"`
	Report      *mission.Report `json:"report"`
}

// ATPGResult is the artifact body of a done atpg job — the same JSON a
// successful /v1/atpg call returns.
type ATPGResult struct {
	Circuit     string         `json:"circuit"`
	Fingerprint string         `json:"fingerprint"`
	Model       string         `json:"model"`
	Faults      int            `json:"faults"`
	Pairs       []Pair         `json:"pairs,omitempty"`    // obd, transition
	Patterns    []string       `json:"patterns,omitempty"` // stuckat
	Detected    int            `json:"detected"`
	Untestable  int            `json:"untestable"`
	Aborted     int            `json:"aborted"`
	Errored     int            `json:"errored"`
	Coverage    CoverageResult `json:"coverage"`
}

func coverageResult(c atpg.Coverage) CoverageResult {
	return CoverageResult{Total: c.Total, Detected: c.Detected, Ratio: c.Ratio(), Undetected: c.Undetected}
}

func pairsFor(c *logic.Circuit, tests []atpg.TwoPattern) []Pair {
	var out []Pair
	for _, tp := range tests {
		out = append(out, Pair{V1: tp.V1.KeyFor(c), V2: tp.V2.KeyFor(c)})
	}
	return out
}

func patternsFor(c *logic.Circuit, tests []atpg.Pattern) []string {
	var out []string
	for _, p := range tests {
		out = append(out, p.KeyFor(c))
	}
	return out
}
