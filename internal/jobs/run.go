package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/mission"
)

// missionCkpt is a mission job's checkpoint: the chip-result prefix for
// chips [0, len(Results)). Because simulateChip is a pure function of
// (config, bench, chip index), any prefix stitched with the remaining
// range reproduces the uninterrupted campaign bit-identically.
type missionCkpt struct {
	Chips   int                   `json:"chips"`
	Results []mission.ChipResult  `json:"results"`
	Failed  []mission.ChipFailure `json:"failed,omitempty"`
}

// atpgCkpt is a generation job's checkpoint: the committed-fault prefix
// of a TestSet. Result errors are flattened to text (the final artifact
// only counts statuses) and patterns round-trip exactly through
// logic.Value's text marshaling.
type atpgCkpt struct {
	Model    string            `json:"model"`
	Tests    []atpg.TwoPattern `json:"tests,omitempty"`
	Patterns []atpg.Pattern    `json:"patterns,omitempty"` // stuckat
	Results  []ckptResult      `json:"results"`
}

// ckptResult is the JSON-safe form of atpg.Result.
type ckptResult struct {
	Fault  string           `json:"fault"`
	Status int              `json:"status"`
	Test   *atpg.TwoPattern `json:"test,omitempty"`
	Err    string           `json:"err,omitempty"`
}

func encodeResults(rs []atpg.Result) []ckptResult {
	out := make([]ckptResult, len(rs))
	for i, r := range rs {
		out[i] = ckptResult{Fault: r.Fault, Status: int(r.Status), Test: r.Test}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

func decodeResults(rs []ckptResult) []atpg.Result {
	if rs == nil {
		return nil
	}
	out := make([]atpg.Result, len(rs))
	for i, r := range rs {
		// Err is restored nil: the error value is not reconstructible
		// and nothing downstream of a checkpoint reads it — the final
		// artifact counts statuses only.
		out[i] = atpg.Result{Fault: r.Fault, Status: atpg.Status(r.Status), Test: r.Test}
	}
	return out
}

// marshalArtifact renders a result exactly like the synchronous
// endpoints do (compact JSON plus trailing newline), so a job artifact
// is byte-identical to the equivalent /v1 response body.
func marshalArtifact(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode result: %w", err)
	}
	return append(body, '\n'), nil
}

// runMission executes a mission job in SegmentChips-sized chip ranges,
// checkpointing the stitched prefix after each segment.
func (m *Manager) runMission(ctx context.Context, e *jobEntry, n *normalized) ([]byte, error) {
	ms := n.spec.Mission
	//obdcheck:allow paniccontract — mission.New's only panic path is the obd stage tables, which cover every defined Stage by construction; the spec itself was validated by normalize
	camp, err := mission.New(mission.Config{
		Circuit:             n.circuit,
		Seed:                ms.Seed,
		Chips:               ms.Chips,
		Duration:            ms.Duration,
		Period:              ms.Period,
		FaultRate:           ms.FaultRate,
		BISTCycles:          ms.BISTCycles,
		Adversity:           n.adv,
		IncludeUndetectable: ms.IncludeUndetectable,
		RecordPerChip:       ms.PerChip,
		Scheduler:           atpg.NewScheduler(m.cfg.Workers),
	})
	if err != nil {
		return nil, fmt.Errorf("jobs: mission: %w", err)
	}

	ck := m.loadMissionCheckpoint(e, n)
	results, failed := ck.Results, ck.Failed
	for lo := len(results); lo < ms.Chips; {
		if m.isDraining() {
			return nil, errPaused
		}
		hi := lo + m.cfg.SegmentChips
		if hi > ms.Chips {
			hi = ms.Chips
		}
		rs, fs, err := camp.SimulateRange(ctx, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("jobs: mission chips [%d,%d): %w", lo, hi, err)
		}
		results = append(results, rs...)
		failed = append(failed, fs...)
		lo = hi
		m.setCommitted(e, hi)
		if hi < ms.Chips {
			payload, err := json.Marshal(missionCkpt{Chips: ms.Chips, Results: results, Failed: failed})
			if err != nil {
				return nil, fmt.Errorf("jobs: encode checkpoint: %w", err)
			}
			if err := m.putCheckpoint(n, payload); err != nil {
				return nil, err
			}
		}
	}
	rep, err := camp.Aggregate(results, failed)
	if err != nil {
		return nil, fmt.Errorf("jobs: mission: %w", err)
	}
	return marshalArtifact(&MissionResult{Circuit: n.circuit.Name, Fingerprint: n.fp.String(), Report: rep})
}

// loadMissionCheckpoint restores a chip-prefix checkpoint, dropping it
// (fresh start) when missing, corrupt — the store has already
// quarantined those — or inconsistent with the spec.
func (m *Manager) loadMissionCheckpoint(e *jobEntry, n *normalized) missionCkpt {
	body, err := m.cfg.Store.Get(checkpointKey(n.digest))
	if err != nil {
		return missionCkpt{}
	}
	var ck missionCkpt
	if err := json.Unmarshal(body, &ck); err != nil || ck.Chips != n.spec.Mission.Chips || len(ck.Results) > ck.Chips {
		_ = m.cfg.Store.Delete(checkpointKey(n.digest))
		return missionCkpt{}
	}
	if len(ck.Results) > 0 {
		m.markResumed(e)
		m.setCommitted(e, len(ck.Results))
	}
	return ck
}

// runATPG executes a generation job in SegmentFaults-sized commit
// steps via the scheduler's resume entry points, checkpointing the
// committed prefix after each step.
func (m *Manager) runATPG(ctx context.Context, e *jobEntry, n *normalized) ([]byte, error) {
	c := n.circuit
	model := n.spec.ATPG.Model
	s := atpg.NewScheduler(m.cfg.Workers)

	var obdFaults []fault.OBD
	var transFaults []fault.Transition
	var saFaults []fault.StuckAt
	switch model {
	case "obd":
		obdFaults, _ = fault.OBDUniverse(c)
	case "transition":
		transFaults = fault.TransitionUniverse(c)
	default:
		saFaults = fault.StuckAtUniverse(c)
	}
	total := n.total

	ts, sts := m.loadATPGCheckpoint(e, n, model)
	retried := false
	for {
		if m.isDraining() {
			return nil, errPaused
		}
		committed := 0
		if ts != nil {
			committed = len(ts.Results)
		} else if sts != nil {
			committed = len(sts.Results)
		}
		upto := committed + m.cfg.SegmentFaults
		if upto > total {
			upto = total
		}
		var err error
		switch model {
		case "obd":
			//obdcheck:allow paniccontract — PackPatterns' input-count precondition holds: the circuit passed Validate in normalize, so its input count is within the packer's word bound
			ts, err = s.ResumeOBDTestsCtx(ctx, c, obdFaults, n.opt, ts, upto)
		case "transition":
			ts, err = s.ResumeTransitionTestsCtx(ctx, c, transFaults, n.opt, ts, upto)
		default:
			sts, err = s.ResumeStuckAtTestsCtx(ctx, c, saFaults, n.opt, sts, upto)
		}
		if err != nil {
			var rme *atpg.ResumeMismatchError
			if errors.As(err, &rme) && !retried {
				// Poisoned checkpoint (e.g. written by a different
				// version): drop it and regenerate from scratch.
				retried = true
				_ = m.cfg.Store.Delete(checkpointKey(n.digest))
				ts, sts = nil, nil
				m.setCommitted(e, 0)
				continue
			}
			return nil, fmt.Errorf("jobs: atpg: %w", err)
		}
		if ts != nil {
			committed = len(ts.Results)
		} else {
			committed = len(sts.Results)
		}
		m.setCommitted(e, committed)
		if committed >= total {
			break // the final Resume call graded Coverage
		}
		ck := atpgCkpt{Model: model}
		if ts != nil {
			ck.Tests = ts.Tests
			ck.Results = encodeResults(ts.Results)
		} else {
			ck.Patterns = sts.Tests
			ck.Results = encodeResults(sts.Results)
		}
		payload, err := json.Marshal(ck)
		if err != nil {
			return nil, fmt.Errorf("jobs: encode checkpoint: %w", err)
		}
		if err := m.putCheckpoint(n, payload); err != nil {
			return nil, err
		}
	}

	res := &ATPGResult{
		Circuit:     c.Name,
		Fingerprint: n.fp.String(),
		Model:       model,
		Faults:      total,
	}
	var results []atpg.Result
	if ts != nil {
		results = ts.Results
		res.Coverage = coverageResult(ts.Coverage)
		res.Pairs = pairsFor(c, ts.Tests)
	} else {
		results = sts.Results
		res.Coverage = coverageResult(sts.Coverage)
		res.Patterns = patternsFor(c, sts.Tests)
	}
	for _, r := range results {
		switch r.Status {
		case atpg.Detected:
			res.Detected++
		case atpg.Untestable:
			res.Untestable++
		case atpg.Aborted:
			res.Aborted++
		case atpg.Errored:
			res.Errored++
		}
	}
	return marshalArtifact(res)
}

// loadATPGCheckpoint restores a committed-prefix checkpoint into the
// model's test-set shape, dropping stale or mismatched ones.
func (m *Manager) loadATPGCheckpoint(e *jobEntry, n *normalized, model string) (*atpg.TestSet, *atpg.StuckAtTestSet) {
	body, err := m.cfg.Store.Get(checkpointKey(n.digest))
	if err != nil {
		return nil, nil
	}
	var ck atpgCkpt
	if err := json.Unmarshal(body, &ck); err != nil || ck.Model != model {
		_ = m.cfg.Store.Delete(checkpointKey(n.digest))
		return nil, nil
	}
	if len(ck.Results) == 0 {
		return nil, nil
	}
	m.markResumed(e)
	m.setCommitted(e, len(ck.Results))
	if model == "stuckat" {
		return nil, &atpg.StuckAtTestSet{Tests: ck.Patterns, Results: decodeResults(ck.Results)}
	}
	return &atpg.TestSet{Tests: ck.Tests, Results: decodeResults(ck.Results)}, nil
}
