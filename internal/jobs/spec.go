// Package jobs is the durable job runtime: mission campaigns and ATPG
// generation submitted as background jobs that survive process crashes.
// Every job is keyed by a content digest of its canonicalized spec, its
// lifecycle is recorded in a crash-safe journal, and its progress is
// checkpointed into the artifact store at deterministic boundaries —
// chip-index prefixes for missions, committed-fault prefixes for ATPG.
// Because both compute cores guarantee bit-identical prefix/resume
// semantics (mission.SimulateRange, atpg.Resume*TestsCtx), a job killed
// at any checkpoint and resumed by a fresh process produces an artifact
// byte-identical to an uninterrupted run. See DESIGN.md §13.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/mission"
)

// Kind names a job type.
type Kind string

// Job kinds.
const (
	KindMission Kind = "mission"
	KindATPG    Kind = "atpg"
)

// State is a job lifecycle state.
type State string

// Job states. Queued and running jobs are requeued on restart; done,
// failed and cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// MissionSpec parameterizes a mission-campaign job. It mirrors the
// synchronous /v1/mission request (minus the netlist, which lives on
// the enclosing Spec); see mission.Config for field semantics.
type MissionSpec struct {
	Seed                uint64  `json:"seed"`
	Chips               int     `json:"chips"`
	Duration            float64 `json:"duration"`
	Period              float64 `json:"period,omitempty"`
	FaultRate           float64 `json:"fault_rate"`
	BISTCycles          int     `json:"bist_cycles,omitempty"`
	Adversity           string  `json:"adversity,omitempty"`
	IncludeUndetectable bool    `json:"include_undetectable,omitempty"`
	PerChip             bool    `json:"per_chip,omitempty"`
}

// ATPGSpec parameterizes a test-generation job, mirroring /v1/atpg.
type ATPGSpec struct {
	Model         string `json:"model,omitempty"`
	Prune         bool   `json:"prune,omitempty"`
	MaxBacktracks int    `json:"max_backtracks,omitempty"`
}

// Spec is a job submission. Exactly the sub-spec matching Kind must be
// populated (a nil ATPG spec means all-defaults generation).
type Spec struct {
	Kind    Kind         `json:"kind"`
	Netlist string       `json:"netlist"`
	Mission *MissionSpec `json:"mission,omitempty"`
	ATPG    *ATPGSpec    `json:"atpg,omitempty"`
}

// Job is a point-in-time snapshot of a job's public state.
type Job struct {
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Committed/Total report checkpoint progress in work units (chips
	// for missions, faults for ATPG).
	Committed int `json:"committed"`
	Total     int `json:"total"`
	// Resumed is set when this process continued the job from a
	// checkpoint written by an earlier (possibly crashed) run.
	Resumed bool `json:"resumed,omitempty"`
}

// normalized is a validated, canonicalized spec ready to run: the
// netlist re-rendered by logic.Format, model/limit defaults resolved,
// and the content digest that keys the job's artifacts.
type normalized struct {
	spec    Spec // canonical form — what the journal records
	circuit *logic.Circuit
	fp      logic.Fingerprint
	digest  string
	total   int
	adv     mission.Adversity // mission jobs
	opt     *atpg.Options     // atpg jobs
}

// normalize validates a spec and derives its canonical form and digest.
// It is deterministic and idempotent: normalizing the canonical spec
// reproduces the same digest, which is what makes journal replay safe.
func (sp Spec) normalize() (*normalized, error) {
	if strings.TrimSpace(sp.Netlist) == "" {
		return nil, badSpec("netlist is required")
	}
	c, err := logic.ParseLenientString(sp.Netlist)
	if err != nil {
		return nil, badSpec("netlist: %v", err)
	}
	if err := c.Validate(); err != nil {
		return nil, badSpec("netlist: %v", err)
	}
	fp, err := c.Fingerprint()
	if err != nil {
		return nil, badSpec("netlist: %v", err)
	}
	n := &normalized{circuit: c, fp: fp}
	canon := Spec{Kind: sp.Kind, Netlist: logic.Format(c)}

	var params any
	switch sp.Kind {
	case KindMission:
		ms := sp.Mission
		if ms == nil {
			return nil, badSpec("mission job needs mission params")
		}
		if sp.ATPG != nil {
			return nil, badSpec("mission job carries atpg params")
		}
		if ms.Chips <= 0 {
			return nil, badSpec("mission.chips = %d, need > 0", ms.Chips)
		}
		if ms.Duration <= 0 {
			return nil, badSpec("mission.duration = %g, need > 0", ms.Duration)
		}
		if ms.Period < 0 {
			return nil, badSpec("mission.period = %g, need >= 0", ms.Period)
		}
		if ms.FaultRate < 0 || ms.FaultRate > 100 {
			return nil, badSpec("mission.fault_rate = %g outside [0, 100]", ms.FaultRate)
		}
		if ms.BISTCycles < 0 {
			return nil, badSpec("mission.bist_cycles = %d, need >= 0", ms.BISTCycles)
		}
		advSpec := ms.Adversity
		if advSpec == "" {
			advSpec = "off"
		}
		adv, err := mission.ParseAdversity(advSpec)
		if err != nil {
			return nil, badSpec("mission.adversity: %v", err)
		}
		msCopy := *ms
		canon.Mission = &msCopy
		n.adv = adv
		n.total = ms.Chips
		// Hash the parsed profile instead of its spelling so adversity
		// spec variants of the same profile share one artifact.
		hashed := msCopy
		hashed.Adversity = ""
		params = struct {
			MissionSpec
			Profile mission.Adversity `json:"profile"`
		}{MissionSpec: hashed, Profile: adv}
	case KindATPG:
		if sp.Mission != nil {
			return nil, badSpec("atpg job carries mission params")
		}
		as := sp.ATPG
		if as == nil {
			as = &ATPGSpec{}
		}
		model := as.Model
		if model == "" {
			model = "obd"
		}
		switch model {
		case "obd", "transition", "stuckat":
		default:
			return nil, badSpec("unknown model %q (want obd, transition or stuckat)", model)
		}
		if as.MaxBacktracks < 0 {
			return nil, badSpec("atpg.max_backtracks = %d, need >= 0", as.MaxBacktracks)
		}
		if as.Prune && model != "obd" {
			return nil, badSpec("atpg.prune applies to the obd model only")
		}
		opt := atpg.DefaultOptions()
		opt.Prune = as.Prune
		if as.MaxBacktracks > 0 {
			opt.MaxBacktracks = as.MaxBacktracks
		}
		resolved := ATPGSpec{Model: model, Prune: as.Prune, MaxBacktracks: opt.MaxBacktracks}
		canon.ATPG = &resolved
		n.opt = opt
		switch model {
		case "obd":
			u, _ := fault.OBDUniverse(c)
			n.total = len(u)
		case "transition":
			n.total = len(fault.TransitionUniverse(c))
		default:
			n.total = len(fault.StuckAtUniverse(c))
		}
		params = resolved
	default:
		return nil, badSpec("unknown kind %q (want mission or atpg)", sp.Kind)
	}

	n.spec = canon
	dig, err := digestOf(string(sp.Kind), fp, canon.Netlist, params)
	if err != nil {
		return nil, fmt.Errorf("jobs: digest: %w", err)
	}
	n.digest = dig
	return n, nil
}

// digestOf mirrors the serving layer's cache-key scheme with a "jobs/"
// endpoint namespace: endpoint, structural fingerprint, a hash of the
// canonical netlist, and the remaining params in canonical JSON.
func digestOf(kind string, fp logic.Fingerprint, canonicalNetlist string, params any) (string, error) {
	pj, err := json.Marshal(params)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte("jobs/" + kind))
	h.Write([]byte{0})
	h.Write(fp[:])
	h.Write([]byte{0})
	nl := sha256.Sum256([]byte(canonicalNetlist))
	h.Write(nl[:])
	h.Write([]byte{0})
	h.Write(pj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// jobID derives the public job ID from the content digest. IDs are
// content-addressed, so resubmitting an identical spec dedupes.
func jobID(digest string) string { return "j" + digest[:16] }

// artifactKey and checkpointKey name a job's durable objects in the
// store; the digest is 64 hex chars, a valid store key.
func artifactKey(digest string) string   { return digest }
func checkpointKey(digest string) string { return digest + ".ckpt" }
