package logic

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file reads and writes the ISCAS-85 ".bench" netlist format — the
// interchange format the classical benchmark circuits (c432, c880,
// c6288, ...) are distributed in, and the ingestion path that takes the
// repo past the paper's ~25-gate worked examples:
//
//	# c17
//	INPUT(1)
//	INPUT(2)
//	OUTPUT(22)
//	22 = NAND(10, 16)
//	10 = NAND(1, 3)
//
// Nets and gates share names: a gate is named by the net it drives.
// Keywords are matched case-insensitively. Single-input DFF lines (the
// ISCAS-89 sequential element, e.g. `G5 = DFF(G10)`) parse into the Dff
// gate type; sequential constructs beyond that (multi-input DFF) fail with
// a *ParseError naming the construct and line.

var benchTypes = map[string]GateType{
	"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
	"NOT": Inv, "INV": Inv, "BUFF": Buf, "BUF": Buf,
	"XOR": Xor, "XNOR": Xnor, "DFF": Dff,
}

var benchNames = map[GateType]string{
	Inv: "NOT", Buf: "BUFF", Nand: "NAND", Nor: "NOR",
	And: "AND", Or: "OR", Xor: "XOR", Xnor: "XNOR", Dff: "DFF",
}

// ParseBench reads an ISCAS-85 .bench netlist into a validated Circuit.
// Single-input AND/OR collapse to BUFF and single-input NAND/NOR to NOT
// (degenerate forms some netlist generators emit).
func ParseBench(r io.Reader) (*Circuit, error) {
	c := New("")
	sc := netlistScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if eq := strings.IndexByte(line, '='); eq >= 0 {
			name := strings.TrimSpace(line[:eq])
			if name == "" {
				return nil, fmt.Errorf("bench: line %d: gate without an output net", lineNo)
			}
			typ, args, err := benchCall(line[eq+1:])
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %w", lineNo, err)
			}
			if err := benchAddGate(c, name, typ, args); err != nil {
				var pe *ParseError
				if errors.As(err, &pe) {
					pe.Line = lineNo
					return nil, pe
				}
				return nil, fmt.Errorf("bench: line %d: %w", lineNo, err)
			}
			continue
		}
		typ, args, err := benchCall(line)
		if err != nil {
			return nil, fmt.Errorf("bench: line %d: %w", lineNo, err)
		}
		switch strings.ToUpper(typ) {
		case "INPUT":
			if len(args) != 1 {
				return nil, fmt.Errorf("bench: line %d: INPUT wants one net", lineNo)
			}
			if err := c.AddInput(args[0]); err != nil {
				return nil, fmt.Errorf("bench: line %d: %w", lineNo, err)
			}
		case "OUTPUT":
			if len(args) != 1 {
				return nil, fmt.Errorf("bench: line %d: OUTPUT wants one net", lineNo)
			}
			c.AddOutput(args[0])
		default:
			return nil, fmt.Errorf("bench: line %d: unexpected directive %q", lineNo, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// benchCall parses `TYPE(a, b, ...)`, returning the keyword and the
// comma-separated argument names.
func benchCall(s string) (string, []string, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	closeP := strings.LastIndexByte(s, ')')
	if open < 0 || closeP < open {
		return "", nil, fmt.Errorf("malformed call %q", trunc(s))
	}
	if tail := strings.TrimSpace(s[closeP+1:]); tail != "" {
		return "", nil, fmt.Errorf("trailing text %q after call", trunc(tail))
	}
	typ := strings.TrimSpace(s[:open])
	if typ == "" {
		return "", nil, fmt.Errorf("malformed call %q", trunc(s))
	}
	args := splitNames(s[open+1 : closeP])
	return typ, args, nil
}

// benchAddGate maps one `out = TYPE(args)` line onto AddGate.
func benchAddGate(c *Circuit, name, typ string, args []string) error {
	upper := strings.ToUpper(typ)
	t, ok := benchTypes[upper]
	if !ok {
		return fmt.Errorf("unknown gate type %q", typ)
	}
	if len(args) == 0 {
		return fmt.Errorf("gate %q has no inputs", name)
	}
	if t == Dff {
		if len(args) != 1 {
			// Set/reset/enable-style flip-flops are not modeled; report
			// the construct so the failure is actionable. ParseBench
			// fills Line, ParseFile fills Path.
			return &ParseError{
				Format:    "bench",
				Construct: fmt.Sprintf("%d-input DFF %q", len(args), name),
				Err:       ErrUnsupportedSeq,
			}
		}
	} else if len(args) == 1 {
		switch t {
		case And, Or, Buf:
			t = Buf
		case Nand, Nor, Inv:
			t = Inv
		default:
			return fmt.Errorf("gate %q: %s wants two inputs", name, upper)
		}
	}
	_, err := c.AddGate(name, t, name, args...)
	return err
}

// ParseBenchString is ParseBench over a string.
func ParseBenchString(s string) (*Circuit, error) { return ParseBench(strings.NewReader(s)) }

// FormatBench renders the circuit in .bench format. Gate types without a
// .bench primitive (AOI21/OAI21) are rejected, as are gates whose name
// differs from their output net (the format has no way to say that).
func FormatBench(c *Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&b, "# %s\n", c.Name)
	}
	for _, in := range c.Inputs {
		fmt.Fprintf(&b, "INPUT(%s)\n", in)
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(&b, "OUTPUT(%s)\n", out)
	}
	for _, g := range c.Gates {
		prim, ok := benchNames[g.Type]
		if !ok {
			return "", fmt.Errorf("bench: gate %q type %v has no .bench primitive", g.Name, g.Type)
		}
		if g.Name != g.Output {
			return "", fmt.Errorf("bench: gate %q drives net %q; .bench requires gate name == output net", g.Name, g.Output)
		}
		fmt.Fprintf(&b, "%s = %s(%s)\n", g.Output, prim, strings.Join(g.Inputs, ", "))
	}
	return b.String(), nil
}

// ErrEmptyNetlist is the sentinel under a ParseFile failure on a file
// that parses to a circuit with no inputs, gates or outputs — almost
// always the wrong file or the wrong format for its extension.
var ErrEmptyNetlist = errors.New("logic: empty netlist")

// ErrUnsupportedSeq is the sentinel under parse failures on sequential
// constructs the netlist formats cannot represent in this model — e.g. a
// multi-input (set/reset/enable) DFF. Plain single-input DFFs parse fine.
var ErrUnsupportedSeq = errors.New("logic: unsupported sequential construct")

// ParseError is the typed parse failure: it names the file (when parsing
// came through ParseFile), the format, and — when known — the 1-based line
// and the offending construct, and wraps the underlying error so errors.Is
// and errors.As see through the dispatch. I/O failures (os.Open) are
// returned as-is, not wrapped: no format was chosen yet.
type ParseError struct {
	Path      string
	Format    string // "bench", "verilog" or "native"
	Line      int    // 1-based source line, 0 when unknown
	Construct string // offending construct (e.g. `2-input DFF "G5"`), "" when unknown
	Err       error
}

func (e *ParseError) Error() string {
	loc := e.Path
	if loc == "" {
		loc = "netlist"
	}
	if e.Line > 0 {
		loc = fmt.Sprintf("%s:%d", loc, e.Line)
	}
	if e.Construct != "" {
		return fmt.Sprintf("logic: parse %s as %s: %s: %v", loc, e.Format, e.Construct, e.Err)
	}
	return fmt.Sprintf("logic: parse %s as %s: %v", loc, e.Format, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ParseFile loads a netlist from disk, dispatching on the extension:
// ".bench" → ParseBench, ".v" → ParseVerilog, anything else → the native
// Parse text format. Every parse failure comes back as a *ParseError,
// and a file that yields a completely empty circuit fails with one
// wrapping ErrEmptyNetlist.
func ParseFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var (
		c      *Circuit
		format string
	)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		format = "bench"
		c, err = ParseBench(f)
	case ".v":
		format = "verilog"
		c, err = ParseVerilog(f)
	default:
		format = "native"
		c, err = Parse(f)
	}
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) && pe.Path == "" {
			// The format parser already built a typed error (line and
			// construct attribution); just attach the path.
			pe.Path = path
			return nil, pe
		}
		return nil, &ParseError{Path: path, Format: format, Err: err}
	}
	if len(c.Inputs) == 0 && len(c.Gates) == 0 && len(c.Outputs) == 0 {
		return nil, &ParseError{Path: path, Format: format, Err: ErrEmptyNetlist}
	}
	return c, nil
}
