package logic

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

const benchC17 = `# c17 in ISCAS-85 form
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBenchString(benchC17)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 || len(c.Gates) != 6 {
		t.Fatalf("structure: %d in %d out %d gates", len(c.Inputs), len(c.Outputs), len(c.Gates))
	}
	// Same function as the built-in C17 (inputs correspond in order).
	ref := C17()
	for i, po := range c.Outputs {
		a, b := c.TruthTable(po), ref.TruthTable(ref.Outputs[i])
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("output %s differs from built-in c17 at row %d", po, k)
			}
		}
	}
}

func TestParseBenchSingleInputCollapse(t *testing.T) {
	c, err := ParseBenchString("INPUT(a)\nOUTPUT(y)\nn = NAND(a)\ny = AND(n)\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Type != Inv || c.Gates[1].Type != Buf {
		t.Fatalf("degenerate forms: got %v, %v", c.Gates[0].Type, c.Gates[1].Type)
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := map[string]string{
		"dff2":      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n",
		"unknown":   "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n",
		"malformed": "INPUT(a)\nOUTPUT(y)\ny = NAND a, a\n",
		"trailing":  "INPUT(a)\nOUTPUT(y)\ny = NOT(a) junk\n",
		"noargs":    "INPUT(a)\nOUTPUT(y)\ny = NAND()\n",
		"xor3":      "INPUT(a)\nOUTPUT(y)\ny = XOR(a, a, a)\n",
		"noout":     "INPUT(a)\nOUTPUT(y)\n = NOT(a)\n",
		"directive": "INPUT(a)\nWIBBLE(a)\n",
		"twoinput":  "INPUT(a, b)\nOUTPUT(y)\ny = NAND(a, b)\n",
		"undriven":  "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n",
	}
	for name, src := range bad {
		if _, err := ParseBenchString(src); err == nil {
			t.Errorf("%s: accepted bad bench:\n%s", name, src)
		}
	}
}

func TestFormatBenchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(25), Primitive: true})
		out, err := FormatBench(c)
		if err != nil {
			return false
		}
		back, err := ParseBenchString(out)
		if err != nil {
			return false
		}
		if len(back.Gates) != len(c.Gates) || len(back.Inputs) != len(c.Inputs) ||
			len(back.Outputs) != len(c.Outputs) {
			return false
		}
		if len(c.Inputs) <= 10 {
			for _, po := range c.Outputs {
				a, b := c.TruthTable(po), back.TruthTable(po)
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBenchRejectsAOI(t *testing.T) {
	c := New("m")
	for _, in := range []string{"a", "b", "d"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	mustGate(t, c, "y", Aoi21, "y", "a", "b", "d")
	c.AddOutput("y")
	if _, err := FormatBench(c); err == nil {
		t.Fatal("AOI21 export should fail (no .bench primitive)")
	}
}

func TestParseFileDispatch(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"c.bench": benchC17,
		"c.v":     "module m (a, y); input a; output y; not g1 (y, a); endmodule\n",
		"c.net":   "circuit m\ninput a\noutput y\ninv g1 y a\n",
	}
	for name, src := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(c.Gates) == 0 {
			t.Fatalf("%s: no gates parsed", name)
		}
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.bench")); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestParseFileTypedErrors pins the dispatch's failure contract: every
// parse-stage failure is a *ParseError naming the dispatched format and
// wrapping the parser's error, an empty netlist wraps ErrEmptyNetlist,
// and an I/O failure (no format chosen yet) stays unwrapped.
func TestParseFileTypedErrors(t *testing.T) {
	dir := t.TempDir()
	nativeC17 := "circuit m\ninput a\noutput y\ninv g1 y a\n"
	cases := []struct {
		name    string
		file    string
		content string
		format  string
		wantIs  error // optional sentinel the chain must contain
	}{
		{"unknown extension with bench content", "c.xyz", benchC17, "native", nil},
		{"bench extension with native content", "c.bench", nativeC17, "bench", nil},
		{"verilog extension with bench content", "c.v", benchC17, "verilog", nil},
		{"empty bench file", "empty.bench", "", "bench", ErrEmptyNetlist},
		{"empty native file", "empty.net", "", "native", ErrEmptyNetlist},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.file)
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ParseFile(path)
			if err == nil {
				t.Fatal("want an error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Format != tc.format {
				t.Fatalf("dispatched format %q, want %q", pe.Format, tc.format)
			}
			if pe.Path != path {
				t.Fatalf("path %q, want %q", pe.Path, path)
			}
			if pe.Err == nil {
				t.Fatal("ParseError wraps no cause")
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Fatalf("error %v does not wrap %v", err, tc.wantIs)
			}
		})
	}
	// I/O failures predate format dispatch and must stay unwrapped.
	var pe *ParseError
	if _, err := ParseFile(filepath.Join(dir, "missing.bench")); errors.As(err, &pe) {
		t.Fatalf("open failure %v should not be a *ParseError", err)
	}
}

// TestParseLongLine: machine-generated netlists put thousands of names on
// one line; the scanner must accept lines far past bufio's 64 KiB default.
func TestParseLongLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("circuit wide\ninput")
	n := 12000 // ~84 KiB of input names on one line
	for i := 0; i < n; i++ {
		b.WriteString(" in")
		b.WriteString(strconv.Itoa(i))
	}
	b.WriteString("\noutput y\nnand g1 y in0 in1\n")
	if b.Len() < 70<<10 {
		t.Fatalf("test line too short to exercise the buffer: %d bytes", b.Len())
	}
	c, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != n {
		t.Fatalf("inputs: %d", len(c.Inputs))
	}
}
