package logic

import "fmt"

// This file provides standard combinational benchmark circuits built from
// the primitive CMOS gate set (NAND/NOR/INV), so every gate carries OBD
// fault sites. They widen the experiments beyond the paper's full adder.

// C17 returns the ISCAS-85 c17 benchmark: six NAND2 gates, five inputs,
// two outputs.
func C17() *Circuit {
	c := New("c17")
	for _, in := range []string{"i1", "i2", "i3", "i6", "i7"} {
		if err := c.AddInput(in); err != nil {
			panic(err)
		}
	}
	type gd struct{ name, a, b string }
	for _, g := range []gd{
		{"n10", "i1", "i3"},
		{"n11", "i3", "i6"},
		{"n16", "i2", "n11"},
		{"n19", "n11", "i7"},
		{"n22", "n10", "n16"},
		{"n23", "n16", "n19"},
	} {
		if _, err := c.AddGate(g.name, Nand, g.name, g.a, g.b); err != nil {
			panic(err)
		}
	}
	c.AddOutput("n22")
	c.AddOutput("n23")
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// addXor4 adds the classic 4-NAND XOR computing out = a ⊕ b.
func addXor4(c *Circuit, prefix, out, a, b string) {
	m := prefix + "_m"
	p := prefix + "_p"
	q := prefix + "_q"
	mustAdd(c, m, Nand, m, a, b)
	mustAdd(c, p, Nand, p, a, m)
	mustAdd(c, q, Nand, q, b, m)
	mustAdd(c, prefix+"_o", Nand, out, p, q)
}

func mustAdd(c *Circuit, name string, t GateType, out string, ins ...string) {
	if _, err := c.AddGate(name, t, out, ins...); err != nil {
		panic(err)
	}
}

// RippleCarryAdder returns an n-bit ripple-carry adder over inputs
// a0..a{n-1}, b0..b{n-1}, cin with outputs s0..s{n-1} and cout, built
// entirely from NAND2 gates (9 per bit).
func RippleCarryAdder(n int) *Circuit {
	if n < 1 {
		panic("logic: adder needs at least one bit")
	}
	c := New(fmt.Sprintf("rca%d", n))
	for i := 0; i < n; i++ {
		if err := c.AddInput(fmt.Sprintf("a%d", i)); err != nil {
			panic(err)
		}
		if err := c.AddInput(fmt.Sprintf("b%d", i)); err != nil {
			panic(err)
		}
	}
	if err := c.AddInput("cin"); err != nil {
		panic(err)
	}
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		x := fmt.Sprintf("x%d", i)
		s := fmt.Sprintf("s%d", i)
		addXor4(c, fmt.Sprintf("u%d", i), x, a, b)
		addXor4(c, fmt.Sprintf("v%d", i), s, x, carry)
		// cout = !( !(a·b) · !(x·carry) ): the 4-NAND XOR already computed
		// !(a·b) as u<i>_m and !(x·carry) as v<i>_m.
		next := fmt.Sprintf("c%d", i+1)
		mustAdd(c, fmt.Sprintf("w%d", i), Nand, next, fmt.Sprintf("u%d_m", i), fmt.Sprintf("v%d_m", i))
		c.AddOutput(s)
		carry = next
	}
	c.AddOutput(carry)
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// ParityTree returns an n-input parity (XOR) tree built from 4-NAND XOR
// blocks.
func ParityTree(n int) *Circuit {
	if n < 2 {
		panic("logic: parity tree needs at least two inputs")
	}
	c := New(fmt.Sprintf("parity%d", n))
	level := make([]string, 0, n)
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("i%d", i)
		if err := c.AddInput(in); err != nil {
			panic(err)
		}
		level = append(level, in)
	}
	stage := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			out := fmt.Sprintf("p%d_%d", stage, i/2)
			addXor4(c, out+"x", out, level[i], level[i+1])
			next = append(next, out)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		stage++
	}
	c.AddOutput(level[0])
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Mux41 returns a 4-to-1 multiplexer (data d0..d3, selects s0, s1) built
// from inverters and NAND gates.
func Mux41() *Circuit {
	c := New("mux41")
	for _, in := range []string{"d0", "d1", "d2", "d3", "s0", "s1"} {
		if err := c.AddInput(in); err != nil {
			panic(err)
		}
	}
	mustAdd(c, "s0n", Inv, "s0n", "s0")
	mustAdd(c, "s1n", Inv, "s1n", "s1")
	sel := [][2]string{{"s0n", "s1n"}, {"s0", "s1n"}, {"s0n", "s1"}, {"s0", "s1"}}
	for i, s := range sel {
		e := fmt.Sprintf("e%d", i)
		t := fmt.Sprintf("t%d", i)
		mustAdd(c, e, Nand, e, s[0], s[1]) // !(sel term)
		en := fmt.Sprintf("en%d", i)
		mustAdd(c, en, Inv, en, e)
		mustAdd(c, t, Nand, t, en, fmt.Sprintf("d%d", i))
	}
	// y = t0·t1·t2·t3 inverted twice: OR of the enabled terms.
	mustAdd(c, "m0", Nand, "m0", "t0", "t1")
	mustAdd(c, "m1", Nand, "m1", "t2", "t3")
	mustAdd(c, "m0n", Inv, "m0n", "m0")
	mustAdd(c, "m1n", Inv, "m1n", "m1")
	mustAdd(c, "y", Nand, "y", "m0n", "m1n")
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}
