package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func evalWith(c *Circuit, bits map[string]bool) map[string]Value {
	assign := make(map[string]Value, len(bits))
	for k, v := range bits {
		assign[k] = FromBool(v)
	}
	return c.Eval(assign, nil)
}

func TestC17Function(t *testing.T) {
	c := C17()
	if len(c.Gates) != 6 {
		t.Fatalf("c17 has %d gates, want 6", len(c.Gates))
	}
	for m := 0; m < 32; m++ {
		in := map[string]bool{
			"i1": m&1 != 0, "i2": m&2 != 0, "i3": m&4 != 0,
			"i6": m&8 != 0, "i7": m&16 != 0,
		}
		vals := evalWith(c, in)
		nand := func(a, b bool) bool { return !(a && b) }
		n10 := nand(in["i1"], in["i3"])
		n11 := nand(in["i3"], in["i6"])
		n16 := nand(in["i2"], n11)
		n19 := nand(n11, in["i7"])
		if vals["n22"] != FromBool(nand(n10, n16)) {
			t.Fatalf("c17 n22 wrong at %05b", m)
		}
		if vals["n23"] != FromBool(nand(n16, n19)) {
			t.Fatalf("c17 n23 wrong at %05b", m)
		}
	}
}

// TestQuickRippleCarryAdder: the NAND-only adder matches integer addition
// for random widths and operands.
func TestQuickRippleCarryAdder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := RippleCarryAdder(n)
		a := rng.Intn(1 << n)
		b := rng.Intn(1 << n)
		cin := rng.Intn(2)
		in := map[string]bool{"cin": cin == 1}
		for i := 0; i < n; i++ {
			in[key("a", i)] = a&(1<<i) != 0
			in[key("b", i)] = b&(1<<i) != 0
		}
		vals := evalWith(c, in)
		sum := a + b + cin
		for i := 0; i < n; i++ {
			if vals[key("s", i)] != FromBool(sum&(1<<i) != 0) {
				return false
			}
		}
		return vals[key("c", n)] == FromBool(sum&(1<<n) != 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func key(p string, i int) string {
	return p + string(rune('0'+i))
}

// TestQuickParityTree: the XOR tree computes the parity of its inputs.
func TestQuickParityTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := ParityTree(n)
		in := make(map[string]bool, n)
		par := false
		for i := 0; i < n; i++ {
			b := rng.Intn(2) == 1
			in[c.Inputs[i]] = b
			par = par != b
		}
		vals := evalWith(c, in)
		return vals[c.Outputs[0]] == FromBool(par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMux41Function(t *testing.T) {
	c := Mux41()
	for m := 0; m < 64; m++ {
		in := map[string]bool{
			"d0": m&1 != 0, "d1": m&2 != 0, "d2": m&4 != 0, "d3": m&8 != 0,
			"s0": m&16 != 0, "s1": m&32 != 0,
		}
		sel := 0
		if in["s0"] {
			sel |= 1
		}
		if in["s1"] {
			sel |= 2
		}
		want := in[[]string{"d0", "d1", "d2", "d3"}[sel]]
		if got := evalWith(c, in)["y"]; got != FromBool(want) {
			t.Fatalf("mux(%06b) = %v, want %v", m, got, want)
		}
	}
}

func TestBenchCircuitsArePrimitive(t *testing.T) {
	for _, c := range []*Circuit{C17(), RippleCarryAdder(3), ParityTree(5), Mux41()} {
		for _, g := range c.Gates {
			switch g.Type {
			case Nand, Nor, Inv:
			default:
				t.Errorf("%s gate %s has composite type %v", c.Name, g.Name, g.Type)
			}
		}
	}
}
