package logic

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// This file computes a canonical structural fingerprint of a circuit:
// a cryptographic hash that depends only on the netlist's shape — which
// gate types are wired to which positional inputs and outputs — and not
// on the order gates were added, nor on how gates and nets are named.
// Two netlists that differ only by renumbering g1→g7 / n3→tmp, by
// renaming primary inputs, or by listing the same gates in a different
// order hash identically; changing a gate type, a wire, a pin order, or
// the input/output interface shape changes the hash.
//
// The serving layer (internal/serve) uses the fingerprint as the primary
// cache shard key for grading results. Note the deliberate asymmetry:
// the fingerprint is rename-invariant, but grading RESPONSES are not
// (fault and net names appear in them), so the serve cache key combines
// the fingerprint with a hash of the concrete naming — see DESIGN.md §10.

// Fingerprint is a canonical structural hash of a circuit.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lower-case hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// MarshalText makes fingerprints render as hex strings in JSON.
func (f Fingerprint) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText parses the hex form produced by MarshalText.
func (f *Fingerprint) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != sha256.Size {
		return fmt.Errorf("logic: fingerprint must be %d hex digits, got %d bytes", 2*sha256.Size, len(b))
	}
	_, err := hex.Decode(f[:], b)
	return err
}

// Fingerprint computes the canonical structural hash. The circuit must
// validate (the hash is defined over acyclic, fully driven netlists);
// validation failures are returned unchanged.
func (c *Circuit) Fingerprint() (Fingerprint, error) {
	if err := c.Validate(); err != nil {
		return Fingerprint{}, err
	}
	// Per-net structural hash, bottom-up: a primary input hashes its
	// position in the interface, a gate output hashes the gate type over
	// the pin-ordered input hashes. Names never enter.
	inputPos := make(map[string]int, len(c.Inputs))
	for i, in := range c.Inputs {
		inputPos[in] = i
	}
	memo := make(map[string]Fingerprint, len(c.Inputs)+len(c.Gates))
	netHash := func(net string) Fingerprint {
		if h, ok := memo[net]; ok {
			return h
		}
		// Inputs are seeded below and gates are walked in topological
		// order, so every antecedent is already memoized.
		panic("logic: fingerprint walk reached unhashed net " + net)
	}
	for _, in := range c.Inputs {
		h := sha256.New()
		h.Write([]byte("pi"))
		writeInt(h, inputPos[in])
		memo[in] = Fingerprint(h.Sum(nil))
	}
	// Flip-flop outputs are pseudo primary inputs seeded by chain position
	// (DFFs in netlist order — the canonical scan order), so Q consumers can
	// hash before the flip-flop gate is reached in the topological walk. The
	// flip-flop gate itself hashes its chain position over the D-cone hash
	// below, which binds each state bit to its next-state function: swapping
	// two D wires between flip-flops changes the fingerprint.
	ffPos := make(map[*Gate]int)
	for _, g := range c.Gates {
		if g.Type != Dff {
			continue
		}
		ffPos[g] = len(ffPos)
		h := sha256.New()
		h.Write([]byte("dffq"))
		writeInt(h, ffPos[g])
		memo[g.Output] = Fingerprint(h.Sum(nil))
	}
	gateHashes := make([]Fingerprint, 0, len(c.Gates))
	for _, g := range c.ordered {
		h := sha256.New()
		h.Write([]byte("gate"))
		writeInt(h, int(g.Type))
		if g.Type == Dff {
			writeInt(h, ffPos[g])
		}
		writeInt(h, len(g.Inputs))
		for _, in := range g.Inputs {
			fh := netHash(in)
			h.Write(fh[:])
		}
		fp := Fingerprint(h.Sum(nil))
		if g.Type != Dff {
			// Q keeps its pseudo-input hash; the gate hash still enters
			// the multiset fold so the D cone shapes the fingerprint.
			memo[g.Output] = fp
		}
		gateHashes = append(gateHashes, fp)
	}
	// Gate-order independence: fold the per-gate hashes as a sorted
	// multiset. The sorted fold (rather than only hashing the outputs)
	// keeps gates that reach no primary output in the fingerprint, so
	// structurally different netlists with identical output cones still
	// hash apart.
	sortFingerprints(gateHashes)
	top := sha256.New()
	top.Write([]byte("circuit"))
	writeInt(top, len(c.Inputs))
	writeInt(top, len(c.Outputs))
	writeInt(top, len(c.Gates))
	for _, out := range c.Outputs {
		fh := netHash(out)
		top.Write(fh[:])
	}
	for _, fh := range gateHashes {
		top.Write(fh[:])
	}
	return Fingerprint(top.Sum(nil)), nil
}

// writeInt feeds an int into a hash in a fixed-width encoding.
func writeInt(h interface{ Write([]byte) (int, error) }, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

// sortFingerprints sorts hashes bytewise (insertion-order independent
// canonical multiset fold).
func sortFingerprints(fs []Fingerprint) {
	sort.Slice(fs, func(i, j int) bool { return bytes.Compare(fs[i][:], fs[j][:]) < 0 })
}
