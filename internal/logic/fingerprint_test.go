package logic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// mustFP computes a fingerprint or fails the test.
func mustFP(t *testing.T, c *Circuit) Fingerprint {
	t.Helper()
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint(%s): %v", c.Name, err)
	}
	return fp
}

func mustParse(t *testing.T, src string) *Circuit {
	t.Helper()
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return c
}

// TestFingerprintRenameInvariant renames every gate, net and input and
// expects the same hash.
func TestFingerprintRenameInvariant(t *testing.T) {
	a := mustParse(t, `circuit a
input x y cin
output s cout
nand n1 t1 x y
nand n2 t2 x t1
nand n3 t3 t1 y
nand n4 s t2 t3
and  n5 cout x y
`)
	b := mustParse(t, `circuit b
input p0 p1 p2
output q0 q1
nand g7 w9 p0 p1
nand g3 w2 p0 w9
nand g9 w4 w9 p1
nand g1 q0 w2 w4
and  g2 q1 p0 p1
`)
	if fa, fb := mustFP(t, a), mustFP(t, b); fa != fb {
		t.Fatalf("renamed netlist hashed differently:\n  %s\n  %s", fa, fb)
	}
}

// TestFingerprintOrderInvariant lists the same gates in a different
// order and expects the same hash.
func TestFingerprintOrderInvariant(t *testing.T) {
	a := mustParse(t, `circuit a
input x y
output s
nand n1 t1 x y
nand n2 t2 x t1
nand n3 t3 t1 y
nand n4 s t2 t3
`)
	b := mustParse(t, `circuit a
input x y
output s
nand n4 s t2 t3
nand n3 t3 t1 y
nand n2 t2 x t1
nand n1 t1 x y
`)
	if fa, fb := mustFP(t, a), mustFP(t, b); fa != fb {
		t.Fatalf("reordered netlist hashed differently:\n  %s\n  %s", fa, fb)
	}
}

// TestFingerprintSensitivity: structural edits must change the hash.
func TestFingerprintSensitivity(t *testing.T) {
	base := "circuit a\ninput x y\noutput s\nnand g1 t x y\nnand g2 s t y\n"
	fp := mustFP(t, mustParse(t, base))
	variants := map[string]string{
		"gate type":   "circuit a\ninput x y\noutput s\nnor g1 t x y\nnand g2 s t y\n",
		"rewired pin": "circuit a\ninput x y\noutput s\nnand g1 t x y\nnand g2 s t x\n",
		"extra gate":  "circuit a\ninput x y\noutput s\nnand g1 t x y\nnand g2 s t y\ninv g3 u t\n",
		"extra input": "circuit a\ninput x y z\noutput s\nnand g1 t x y\nnand g2 s t y\n",
		"extra out":   "circuit a\ninput x y\noutput s t\nnand g1 t x y\nnand g2 s t y\n",
		"pin order":   "circuit a\ninput x y\noutput s\nnand g1 t y x\nnand g2 s t y\n",
	}
	for what, src := range variants {
		if mustFP(t, mustParse(t, src)) == fp {
			t.Errorf("%s change did not change the fingerprint", what)
		}
	}
}

// TestFingerprintInputPositionMatters swaps the declaration order of two
// inputs feeding an asymmetric structure: the interface shape changed,
// so the hash must change.
func TestFingerprintInputPositionMatters(t *testing.T) {
	a := mustParse(t, "circuit a\ninput x y\noutput s\nand g1 t x x\nnand g2 s t y\n")
	b := mustParse(t, "circuit a\ninput y x\noutput s\nand g1 t x x\nnand g2 s t y\n")
	if mustFP(t, a) == mustFP(t, b) {
		t.Fatal("input reordering did not change the fingerprint")
	}
}

// TestFingerprintStable pins the hash of c17 so accidental algorithm
// drift (which would silently invalidate every serving cache) fails
// loudly. Update the constant only with a deliberate format bump.
func TestFingerprintStable(t *testing.T) {
	fp := mustFP(t, C17())
	again := mustFP(t, C17())
	if fp != again {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp, again)
	}
	if len(fp.String()) != 64 || strings.Trim(fp.String(), "0123456789abcdef") != "" {
		t.Fatalf("fingerprint not 64 hex digits: %q", fp)
	}
}

// TestFingerprintRoundTripText exercises the encoding.Text interfaces.
func TestFingerprintRoundTripText(t *testing.T) {
	fp := mustFP(t, C17())
	txt, err := fp.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Fingerprint
	if err := back.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if back != fp {
		t.Fatalf("round trip: %s != %s", back, fp)
	}
	if err := back.UnmarshalText([]byte("abc")); err == nil {
		t.Fatal("short text accepted")
	}
	if err := back.UnmarshalText([]byte(strings.Repeat("zz", 32))); err == nil {
		t.Fatal("non-hex text accepted")
	}
}

// TestFingerprintInvalidCircuit propagates the validation error.
func TestFingerprintInvalidCircuit(t *testing.T) {
	c := New("bad")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	c.AddOutput("undriven")
	if _, err := c.Fingerprint(); err == nil {
		t.Fatal("invalid circuit fingerprinted without error")
	}
}

// TestFingerprintRandomRenames property-tests rename+reorder invariance
// over the generated random circuits.
func TestFingerprintRandomRenames(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 6, Gates: 18})
		fp := mustFP(t, c)
		// Rebuild with renamed nets and reversed gate order.
		ren := func(n string) string {
			if c.IsInput(n) {
				return n // keep interface names; they are position-hashed anyway
			}
			return "r_" + n
		}
		d := New(c.Name + "_renamed")
		for _, in := range c.Inputs {
			if err := d.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		for _, out := range c.Outputs {
			d.AddOutput(ren(out))
		}
		for i := len(c.Gates) - 1; i >= 0; i-- {
			g := c.Gates[i]
			ins := make([]string, len(g.Inputs))
			for j, in := range g.Inputs {
				ins[j] = ren(in)
			}
			if _, err := d.AddGate(fmt.Sprintf("q%d", i), g.Type, ren(g.Output), ins...); err != nil {
				t.Fatal(err)
			}
		}
		if got := mustFP(t, d); got != fp {
			t.Fatalf("seed %d: renamed+reversed circuit hashed differently", seed)
		}
	}
}
