package logic

import (
	"testing"
)

// FuzzParse hardens the netlist parser: arbitrary input must either error
// or yield a circuit that validates and survives a format/parse round trip
// with its function intact.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"circuit x\ninput a b\noutput y\nnand g1 y a b\n",
		"input a\noutput y\ninv g1 y a\n",
		"# only a comment\n",
		"circuit c\ninput a b c\noutput y\naoi21 g y a b c\n",
		"input a\ninv g1 n1 a\ninv g2 y n1\noutput y\n",
		"garbage line\n",
		"circuit\n",
		"input a a\n",
		"nand g y a b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed circuit does not validate: %v", err)
		}
		back, err := ParseString(Format(c))
		if err != nil {
			t.Fatalf("format output does not re-parse: %v", err)
		}
		if len(back.Gates) != len(c.Gates) || len(back.Inputs) != len(c.Inputs) {
			t.Fatalf("round trip changed structure")
		}
		if len(c.Inputs) <= 12 && len(c.Outputs) > 0 {
			a := c.TruthTable(c.Outputs[0])
			b := back.TruthTable(back.Outputs[0])
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed function at %d", i)
				}
			}
		}
	})
}

// FuzzEval hardens the evaluator against arbitrary (possibly partial)
// assignments on a fixed circuit: it must never panic and must be
// monotone in the information order (completing Xs never flips a known
// output).
func FuzzEval(f *testing.F) {
	f.Add(uint8(0b01), uint8(0b10))
	f.Add(uint8(0xFF), uint8(0x00))
	f.Fuzz(func(t *testing.T, known, vals uint8) {
		c, err := ParseString("circuit x\ninput a b\noutput y\nnand n1 n1 a b\nnand n2 y n1 a\n")
		if err != nil {
			t.Fatal(err)
		}
		partial := map[string]Value{}
		full := map[string]Value{}
		for i, in := range c.Inputs {
			v := FromBool(vals&(1<<i) != 0)
			full[in] = v
			if known&(1<<i) != 0 {
				partial[in] = v
			}
		}
		py := c.Eval(partial, nil)["y"]
		fy := c.Eval(full, nil)["y"]
		if py.IsKnown() && py != fy {
			t.Fatalf("X-completion flipped a known output: %v -> %v", py, fy)
		}
	})
}
