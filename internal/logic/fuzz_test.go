package logic

import (
	"testing"
)

// FuzzCircuitValidate hardens Validate against hand-assembled circuits
// that bypass AddGate's invariants (multiple drivers, cycles, dangling
// nets, arity violations): whatever the structure, Validate must return
// a verdict rather than panic, the verdict must be stable across calls,
// and an accepted circuit must actually evaluate.
func FuzzCircuitValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x11, 0x22})                         // single gate
	f.Add([]byte{0x21, 0x03, 0x30, 0x21, 0x30, 0x03})       // 2-cycle
	f.Add([]byte{0x02, 0x45, 0x67, 0x02, 0x54, 0x76})       // duplicate driver
	f.Add([]byte{0x80, 0x01, 0x23, 0x91, 0x45, 0x67, 0xff}) // aoi/oai mix
	f.Fuzz(func(t *testing.T, data []byte) {
		// Nets n0..n7; n0 and n1 are primary inputs, n7 the primary
		// output. Each 3-byte group requests one gate; arity violations
		// and duplicate drivers are rejected by AddGate, while cycles,
		// undriven inputs and undriven outputs get through to Validate.
		net := func(b byte) string { return "n" + string(rune('0'+b%8)) }
		types := []GateType{Inv, Buf, Nand, Nor, And, Or, Xor, Xnor, Aoi21, Oai21}
		c := New("fuzz")
		if err := c.AddInput("n0"); err != nil {
			t.Fatal(err)
		}
		if err := c.AddInput("n1"); err != nil {
			t.Fatal(err)
		}
		c.AddOutput("n7")
		for i := 0; i+2 < len(data) && i < 3*24; i += 3 {
			ty := types[int(data[i])%len(types)]
			nIn := 1 + int(data[i]>>4)%3
			ins := make([]string, nIn)
			for j := range ins {
				ins[j] = net(data[i+1] >> (2 * j))
			}
			// A rejected gate (arity, duplicate driver, drives a PI) is
			// simply dropped, as a netlist generator would.
			_, _ = c.AddGate("g"+string(rune('a'+byte(i/3))), ty, net(data[i+2]), ins...)
		}
		err1 := c.Validate()
		err2 := c.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Validate verdict unstable: %v then %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		p := map[string]Value{}
		for _, in := range c.Inputs {
			p[in] = Zero
		}
		vals := c.Eval(p, nil)
		for _, po := range c.Outputs {
			if _, ok := vals[po]; !ok {
				t.Fatalf("validated circuit did not evaluate output %q", po)
			}
		}
		_ = c.Depth()
	})
}

// FuzzParse hardens the netlist parser: arbitrary input must either error
// or yield a circuit that validates and survives a format/parse round trip
// with its function intact.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"circuit x\ninput a b\noutput y\nnand g1 y a b\n",
		"input a\noutput y\ninv g1 y a\n",
		"# only a comment\n",
		"circuit c\ninput a b c\noutput y\naoi21 g y a b c\n",
		"input a\ninv g1 n1 a\ninv g2 y n1\noutput y\n",
		"garbage line\n",
		"circuit\n",
		"input a a\n",
		"nand g y a b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed circuit does not validate: %v", err)
		}
		back, err := ParseString(Format(c))
		if err != nil {
			t.Fatalf("format output does not re-parse: %v", err)
		}
		if len(back.Gates) != len(c.Gates) || len(back.Inputs) != len(c.Inputs) {
			t.Fatalf("round trip changed structure")
		}
		if len(c.Inputs) <= 12 && len(c.Outputs) > 0 {
			a := c.TruthTable(c.Outputs[0])
			b := back.TruthTable(back.Outputs[0])
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed function at %d", i)
				}
			}
		}
	})
}

// FuzzEval hardens the evaluator against arbitrary (possibly partial)
// assignments on a fixed circuit: it must never panic and must be
// monotone in the information order (completing Xs never flips a known
// output).
func FuzzEval(f *testing.F) {
	f.Add(uint8(0b01), uint8(0b10))
	f.Add(uint8(0xFF), uint8(0x00))
	f.Fuzz(func(t *testing.T, known, vals uint8) {
		c, err := ParseString("circuit x\ninput a b\noutput y\nnand n1 n1 a b\nnand n2 y n1 a\n")
		if err != nil {
			t.Fatal(err)
		}
		partial := map[string]Value{}
		full := map[string]Value{}
		for i, in := range c.Inputs {
			v := FromBool(vals&(1<<i) != 0)
			full[in] = v
			if known&(1<<i) != 0 {
				partial[in] = v
			}
		}
		py := c.Eval(partial, nil)["y"]
		fy := c.Eval(full, nil)["y"]
		if py.IsKnown() && py != fy {
			t.Fatalf("X-completion flipped a known output: %v -> %v", py, fy)
		}
	})
}

// FuzzParseBench hardens the ISCAS-85 ingestion path: arbitrary input
// must either error or parse to a circuit that validates, exports back
// to .bench (every parseable primitive is exportable and gate name ==
// output net by construction), and re-parses with structure and function
// intact.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		benchC17,
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
		"# only a comment\n",
		"INPUT(a)\nOUTPUT(y)\ny = AND(a)\n",                             // degenerate arity: AND/1 → BUFF
		"INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n",                             // sequential: single-input DFF parses
		"INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n",                          // multi-input DFF: must be rejected
		"INPUT(a)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = NOT(q)\n", // state feedback loop

		"INPUT(a)\nOUTPUT(y)\ny = NOT(a) x\n",
		"garbage\n",
		"y = (a, b)\n",
		"OUTPUT(y)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBenchString(src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed circuit does not validate: %v", err)
		}
		out, err := FormatBench(c)
		if err != nil {
			t.Fatalf("parsed circuit does not export: %v", err)
		}
		back, err := ParseBenchString(out)
		if err != nil {
			t.Fatalf("FormatBench output does not re-parse: %v", err)
		}
		if len(back.Gates) != len(c.Gates) || len(back.Inputs) != len(c.Inputs) || len(back.Outputs) != len(c.Outputs) {
			t.Fatal("round trip changed structure")
		}
		if len(c.Inputs) <= 12 && len(c.Outputs) > 0 {
			a := c.TruthTable(c.Outputs[0])
			b := back.TruthTable(back.Outputs[0])
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed function at %d", i)
				}
			}
		}
	})
}
