package logic

// Index is a dense-ID, levelized view of a validated circuit, built once
// and cached on the Circuit (any mutation or re-Validate drops it). The
// map-of-string-keyed evaluators in logic.go are fine for the paper's
// ~25-gate examples, but event-driven fault grading over thousands of
// gates needs array indexing: every net gets a contiguous int ID, every
// gate its slice position, and the gates are bucketed by topological
// level so a simulator can sweep a changed-net frontier strictly
// level-ascending and touch each gate at most once.
type Index struct {
	// NetIDs maps a net name to its dense ID; NetNames is the inverse.
	// IDs are assigned primary inputs first (declaration order), then
	// gate outputs in Gates order.
	NetIDs   map[string]int
	NetNames []string

	// InputIDs and OutputIDs are the PI / PO nets in declaration order.
	OutputIDs []int32
	InputIDs  []int32

	// Gates is the gate list (same order as Circuit.Gates); GateIn,
	// GateOut and GateLevel are indexed by position in that slice.
	Gates     []*Gate
	GateIn    [][]int32
	GateOut   []int32
	GateLevel []int32

	// Fanouts maps a net ID to the positions of its consuming gates, in
	// ascending position order.
	Fanouts [][]int32

	// Levels buckets gate positions by topological level (Levels[0] is
	// empty: Validate assigns levels from 1). MaxLevel == len(Levels)-1.
	Levels   [][]int32
	MaxLevel int

	// IsPO marks net IDs that appear in Outputs.
	IsPO []bool

	pos map[*Gate]int
}

// Index returns the circuit's evaluation index, building and caching it
// on first use. Like Ordered it validates first and panics when
// validation fails.
func (c *Circuit) Index() *Index {
	c.mustValidate()
	if c.index != nil {
		return c.index
	}
	x := &Index{
		NetIDs: make(map[string]int, len(c.Inputs)+len(c.Gates)),
		pos:    make(map[*Gate]int, len(c.Gates)),
	}
	addNet := func(n string) int32 {
		if id, ok := x.NetIDs[n]; ok {
			return int32(id)
		}
		id := len(x.NetNames)
		x.NetIDs[n] = id
		x.NetNames = append(x.NetNames, n)
		return int32(id)
	}
	for _, in := range c.Inputs {
		x.InputIDs = append(x.InputIDs, addNet(in))
	}
	for _, g := range c.Gates {
		addNet(g.Output)
	}
	x.Gates = append([]*Gate(nil), c.Gates...)
	x.GateIn = make([][]int32, len(c.Gates))
	x.GateOut = make([]int32, len(c.Gates))
	x.GateLevel = make([]int32, len(c.Gates))
	x.Fanouts = make([][]int32, len(x.NetNames))
	for gi, g := range c.Gates {
		x.pos[g] = gi
		ins := make([]int32, len(g.Inputs))
		for k, in := range g.Inputs {
			id := addNet(in) // validated: always a PI or a gate output, so already present
			ins[k] = id
			x.Fanouts[id] = append(x.Fanouts[id], int32(gi))
		}
		x.GateIn[gi] = ins
		x.GateOut[gi] = int32(x.NetIDs[g.Output])
		x.GateLevel[gi] = int32(g.Level)
		if g.Level > x.MaxLevel {
			x.MaxLevel = g.Level
		}
	}
	x.Levels = make([][]int32, x.MaxLevel+1)
	for gi, g := range c.Gates {
		x.Levels[g.Level] = append(x.Levels[g.Level], int32(gi))
	}
	x.IsPO = make([]bool, len(x.NetNames))
	for _, po := range c.Outputs {
		id := addNet(po) // validated: a PI or driven, so already present
		x.OutputIDs = append(x.OutputIDs, id)
		x.IsPO[id] = true
	}
	return c.cacheIndex(x)
}

// cacheIndex stores the index; split out so Index stays readable.
func (c *Circuit) cacheIndex(x *Index) *Index {
	c.index = x
	return x
}

// NumNets returns the number of distinct nets (PIs plus gate outputs).
func (x *Index) NumNets() int { return len(x.NetNames) }

// FanoutCone returns the transitive fanout cone of a net as a dense
// mask over net IDs, including the net itself — the set of nets a value
// change at the root can influence. CNF encoders (netcheck's exact
// prover) use it to bound the faulty-copy duplication of a miter.
func (x *Index) FanoutCone(net int32) []bool {
	cone := make([]bool, x.NumNets())
	cone[net] = true
	stack := []int32{net}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, gi := range x.Fanouts[n] {
			out := x.GateOut[gi]
			if !cone[out] {
				cone[out] = true
				stack = append(stack, out)
			}
		}
	}
	return cone
}

// GatePos returns the slice position of g in Gates, or -1 when g is not a
// gate of the indexed circuit (fault lists sometimes carry synthetic
// gates that were never added to a circuit; callers must fall back to a
// full evaluation for those).
func (x *Index) GatePos(g *Gate) int {
	if p, ok := x.pos[g]; ok {
		return p
	}
	return -1
}
