package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexStructure(t *testing.T) {
	c := C17()
	x := c.Index()
	if got := x.NumNets(); got != len(c.Inputs)+len(c.Gates) {
		t.Fatalf("nets: %d", got)
	}
	for name, id := range x.NetIDs {
		if x.NetNames[id] != name {
			t.Fatalf("NetIDs/NetNames disagree at %q", name)
		}
	}
	if len(x.InputIDs) != len(c.Inputs) || len(x.OutputIDs) != len(c.Outputs) {
		t.Fatalf("IO: %d/%d", len(x.InputIDs), len(x.OutputIDs))
	}
	for i, in := range c.Inputs {
		if x.NetNames[x.InputIDs[i]] != in {
			t.Fatalf("input %d mismatch", i)
		}
	}
	for i, po := range c.Outputs {
		if x.NetNames[x.OutputIDs[i]] != po || !x.IsPO[x.OutputIDs[i]] {
			t.Fatalf("output %d mismatch", i)
		}
	}
	for gi, g := range c.Gates {
		if x.GatePos(g) != gi || x.Gates[gi] != g {
			t.Fatalf("gate position %d mismatch", gi)
		}
		if x.NetNames[x.GateOut[gi]] != g.Output || int(x.GateLevel[gi]) != g.Level {
			t.Fatalf("gate %s out/level mismatch", g.Name)
		}
		for k, in := range g.Inputs {
			if x.NetNames[x.GateIn[gi][k]] != in {
				t.Fatalf("gate %s input %d mismatch", g.Name, k)
			}
		}
	}
	// Fanouts must agree with the string-keyed Fanout view.
	for id, name := range x.NetNames {
		want := c.Fanout(name)
		got := x.Fanouts[id]
		if len(want) != len(got) {
			t.Fatalf("fanout size of %s: %d vs %d", name, len(got), len(want))
		}
		for k := range got {
			if x.Gates[got[k]] != want[k] {
				t.Fatalf("fanout of %s differs at %d", name, k)
			}
		}
	}
	// Level buckets: every gate in exactly one bucket, at its own level.
	seen := 0
	for lvl, bucket := range x.Levels {
		for _, gi := range bucket {
			seen++
			if int(x.GateLevel[gi]) != lvl {
				t.Fatalf("gate %d bucketed at level %d, has level %d", gi, lvl, x.GateLevel[gi])
			}
		}
	}
	if seen != len(c.Gates) {
		t.Fatalf("buckets hold %d gates, want %d", seen, len(c.Gates))
	}
	if x.GatePos(&Gate{Name: "foreign"}) != -1 {
		t.Fatal("foreign gate must map to -1")
	}
}

func TestIndexCachedAndInvalidated(t *testing.T) {
	c := C17()
	x := c.Index()
	if c.Index() != x {
		t.Fatal("index not cached")
	}
	if err := c.AddInput("extra"); err != nil {
		t.Fatal(err)
	}
	y := c.Index()
	if y == x {
		t.Fatal("AddInput did not invalidate the index")
	}
	if y.NumNets() != x.NumNets()+1 {
		t.Fatalf("rebuilt index nets: %d", y.NumNets())
	}
	mustGate(t, c, "gx", Inv, "nx", "extra")
	c.AddOutput("nx")
	z := c.Index()
	if z == y {
		t.Fatal("AddGate/AddOutput did not invalidate the index")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Index() == z {
		t.Fatal("Validate did not invalidate the index")
	}
}

// TestQuickIndexAgrees: on random circuits the index is a faithful
// renaming of the string-keyed structure.
func TestQuickIndexAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(6), Gates: 1 + rng.Intn(40)})
		x := c.Index()
		if x.NumNets() != len(c.Inputs)+len(c.Gates) {
			return false
		}
		for gi, g := range c.Gates {
			if x.GatePos(g) != gi || x.NetNames[x.GateOut[gi]] != g.Output {
				return false
			}
			for _, in := range x.GateIn[gi] {
				// Inputs must be levelized strictly below the gate.
				if d := c.Driver(x.NetNames[in]); d != nil && d.Level >= g.Level {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
