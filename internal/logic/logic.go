// Package logic models gate-level combinational circuits: construction and
// validation, levelization, three-valued and 64-way bit-parallel
// evaluation, and a small netlist text format. It is the structural layer
// under the fault model and ATPG packages, mirroring how the paper lifts
// its transistor-level OBD analysis to gate-level test generation.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// GateType enumerates the supported gate functions.
type GateType int

// Gate types. NAND/NOR/AND/OR accept 2+ inputs; INV and BUF exactly one;
// XOR/XNOR exactly two; AOI21/OAI21 exactly three (inputs a, b, c with
// AOI21 = !(a·b + c) and OAI21 = !((a+b)·c)). DFF is the one sequential
// element: a D flip-flop with exactly one input (D) whose output net is
// the stored state Q. The clock is implicit (single global edge). For
// combinational analysis Q is a level-0 pseudo primary input and D a
// pseudo primary output: Validate cuts the Q edges, the evaluators seed Q
// from the assignment (default X) and never evaluate the gate function,
// and CombinationalCore extracts the DFF-free core.
const (
	Inv GateType = iota
	Buf
	Nand
	Nor
	And
	Or
	Xor
	Xnor
	Aoi21
	Oai21
	Dff
)

var gateTypeNames = map[GateType]string{
	Inv: "inv", Buf: "buf", Nand: "nand", Nor: "nor", And: "and",
	Or: "or", Xor: "xor", Xnor: "xnor", Aoi21: "aoi21", Oai21: "oai21",
	Dff: "dff",
}

// String implements fmt.Stringer.
func (t GateType) String() string {
	if s, ok := gateTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// ParseGateType resolves a lower-case gate type name.
func ParseGateType(s string) (GateType, error) {
	for t, n := range gateTypeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("logic: unknown gate type %q", s)
}

// arityOK validates the input count for a gate type.
func arityOK(t GateType, n int) bool {
	switch t {
	case Inv, Buf, Dff:
		return n == 1
	case Xor, Xnor:
		return n == 2
	case Aoi21, Oai21:
		return n == 3
	default:
		return n >= 2
	}
}

// Gate is one gate instance. The output net shares the gate's name space
// with all other nets; a net is driven by at most one gate.
type Gate struct {
	Name    string
	Type    GateType
	Inputs  []string
	Output  string
	Level   int // topological level, assigned by Validate
	Ordinal int // insertion index
}

// Eval computes the gate function over three-valued inputs.
func (g *Gate) Eval(in []Value) Value {
	switch g.Type {
	case Inv:
		return in[0].Not()
	case Buf:
		return in[0]
	case Nand:
		return and3(in).Not()
	case And:
		return and3(in)
	case Nor:
		return or3(in).Not()
	case Or:
		return or3(in)
	case Xor:
		return xor3(in)
	case Xnor:
		return xor3(in).Not()
	case Aoi21:
		return or3([]Value{and3(in[:2]), in[2]}).Not()
	case Oai21:
		return and3([]Value{or3(in[:2]), in[2]}).Not()
	case Dff:
		// The stored state, not a function of D; the circuit evaluators
		// seed Q from the assignment instead of calling this.
		return X
	default:
		panic(fmt.Sprintf("logic: gate %s has unknown type", g.Name))
	}
}

// EvalBits computes the gate function over 64 parallel two-valued patterns.
func (g *Gate) EvalBits(in []uint64) uint64 {
	andAll := func(vs []uint64) uint64 {
		r := ^uint64(0)
		for _, v := range vs {
			r &= v
		}
		return r
	}
	orAll := func(vs []uint64) uint64 {
		r := uint64(0)
		for _, v := range vs {
			r |= v
		}
		return r
	}
	switch g.Type {
	case Inv:
		return ^in[0]
	case Buf:
		return in[0]
	case Nand:
		return ^andAll(in)
	case And:
		return andAll(in)
	case Nor:
		return ^orAll(in)
	case Or:
		return orAll(in)
	case Xor:
		return in[0] ^ in[1]
	case Xnor:
		return ^(in[0] ^ in[1])
	case Aoi21:
		return ^((in[0] & in[1]) | in[2])
	case Oai21:
		return ^((in[0] | in[1]) & in[2])
	case Dff:
		// Stored state; circuit evaluators seed Q from the assignment.
		return 0
	default:
		panic(fmt.Sprintf("logic: gate %s has unknown type", g.Name))
	}
}

// EvalBits3 computes the gate function over 64 parallel three-valued
// patterns in dual-rail encoding: bit k of val is set when lane k carries
// One, bit k of known when lane k carries Zero or One. Unknown lanes must
// carry a 0 val bit (the canonical form); the result is canonical again
// and agrees lane-by-lane with Eval over three-valued inputs.
func (g *Gate) EvalBits3(val, known []uint64) (uint64, uint64) {
	switch g.Type {
	case Inv:
		return ^val[0] & known[0], known[0]
	case Buf:
		return val[0], known[0]
	case Nand:
		v, k := and3Bits(val, known)
		return ^v & k, k
	case And:
		return and3Bits(val, known)
	case Nor:
		v, k := or3Bits(val, known)
		return ^v & k, k
	case Or:
		return or3Bits(val, known)
	case Xor:
		k := known[0] & known[1]
		return (val[0] ^ val[1]) & k, k
	case Xnor:
		k := known[0] & known[1]
		return ^(val[0] ^ val[1]) & k, k
	case Aoi21:
		av, ak := and3Bits(val[:2], known[:2])
		ov, ok := or3Bits([]uint64{av, val[2]}, []uint64{ak, known[2]})
		return ^ov & ok, ok
	case Oai21:
		ov, ok := or3Bits(val[:2], known[:2])
		av, ak := and3Bits([]uint64{ov, val[2]}, []uint64{ok, known[2]})
		return ^av & ak, ak
	case Dff:
		// Stored state (all lanes unknown); circuit evaluators seed Q
		// from the assignment.
		return 0, 0
	default:
		panic(fmt.Sprintf("logic: gate %s has unknown type", g.Name))
	}
}

// and3Bits is the n-ary three-valued AND over dual-rail words: the result
// is known where some input is a known Zero or where every input is known
// (the bitwise image of and3).
func and3Bits(val, known []uint64) (uint64, uint64) {
	allKnown := ^uint64(0)
	knownZero := uint64(0)
	v := ^uint64(0)
	for i := range val {
		allKnown &= known[i]
		knownZero |= known[i] &^ val[i]
		v &= val[i]
	}
	return v, allKnown | knownZero
}

// or3Bits is the n-ary three-valued OR over dual-rail words (the bitwise
// image of or3: known where some input is a known One or all are known).
func or3Bits(val, known []uint64) (uint64, uint64) {
	allKnown := ^uint64(0)
	v := uint64(0)
	for i := range val {
		allKnown &= known[i]
		v |= val[i]
	}
	return v, allKnown | v
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []*Gate

	driver    map[string]*Gate   // net -> driving gate
	fanout    map[string][]*Gate // net -> consuming gates
	isInput   map[string]bool
	isOutput  map[string]bool
	ordered   []*Gate // topological order, built by Validate
	validated bool
	index     *Index // levelized evaluation index, built lazily by Index
}

// New creates an empty circuit.
func New(name string) *Circuit {
	return &Circuit{
		Name:     name,
		driver:   make(map[string]*Gate),
		fanout:   make(map[string][]*Gate),
		isInput:  make(map[string]bool),
		isOutput: make(map[string]bool),
	}
}

// AddInput declares a primary input net.
func (c *Circuit) AddInput(name string) error {
	if c.isInput[name] {
		return fmt.Errorf("logic: duplicate input %q", name)
	}
	if _, driven := c.driver[name]; driven {
		return fmt.Errorf("logic: input %q is already driven by a gate", name)
	}
	c.isInput[name] = true
	c.Inputs = append(c.Inputs, name)
	c.invalidate()
	return nil
}

// AddOutput declares a primary output net (it must be driven by Validate
// time). Declaring the same net twice is a no-op: a duplicate entry in
// Outputs would silently double the net in pattern/response rendering and
// in serve JSON, so repeat declarations are collapsed here. (Circuits
// assembled by writing Outputs directly can still carry duplicates; the
// netcheck lint reports those.)
func (c *Circuit) AddOutput(name string) {
	if c.isOutput == nil {
		c.isOutput = make(map[string]bool)
	}
	if c.isOutput[name] {
		return
	}
	c.isOutput[name] = true
	c.Outputs = append(c.Outputs, name)
	c.invalidate()
}

// invalidate drops the validation verdict and every structure derived
// from it (the topological order stays in place but is recomputed by the
// next Validate; the evaluation index is rebuilt on demand).
func (c *Circuit) invalidate() {
	c.validated = false
	c.index = nil
}

// AddGate adds a gate driving net output from the input nets.
func (c *Circuit) AddGate(name string, t GateType, output string, inputs ...string) (*Gate, error) {
	if !arityOK(t, len(inputs)) {
		return nil, fmt.Errorf("logic: gate %q type %v cannot take %d inputs", name, t, len(inputs))
	}
	if _, dup := c.driver[output]; dup {
		return nil, fmt.Errorf("logic: net %q driven by more than one gate", output)
	}
	if c.isInput[output] {
		return nil, fmt.Errorf("logic: gate %q drives primary input %q", name, output)
	}
	g := &Gate{Name: name, Type: t, Inputs: append([]string(nil), inputs...), Output: output, Ordinal: len(c.Gates)}
	c.Gates = append(c.Gates, g)
	c.driver[output] = g
	for _, in := range inputs {
		c.fanout[in] = append(c.fanout[in], g)
	}
	c.invalidate()
	return g, nil
}

// Driver returns the gate driving a net, or nil for primary inputs. Like
// Ordered and Depth it validates the circuit first (and panics when
// validation fails), so structural queries never observe a half-built or
// cyclic netlist.
func (c *Circuit) Driver(net string) *Gate {
	c.mustValidate()
	return c.driver[net]
}

// Fanout returns the gates consuming a net. Like Ordered and Depth it
// validates the circuit first (and panics when validation fails).
func (c *Circuit) Fanout(net string) []*Gate {
	c.mustValidate()
	return c.fanout[net]
}

// IsInput reports whether net is a primary input.
func (c *Circuit) IsInput(net string) bool { return c.isInput[net] }

// Validate checks structural sanity (every used net driven or an input, no
// combinational cycles, outputs resolvable) and computes the topological
// order and gate levels. It must be called before evaluation; evaluation
// helpers call it implicitly.
func (c *Circuit) Validate() error {
	c.index = nil // rebuilt on demand; the order/levels below may change
	// Every gate input must be a PI or driven.
	for _, g := range c.Gates {
		for _, in := range g.Inputs {
			if !c.isInput[in] {
				if _, ok := c.driver[in]; !ok {
					return fmt.Errorf("logic: gate %q input net %q is undriven", g.Name, in)
				}
			}
		}
	}
	for _, out := range c.Outputs {
		if !c.isInput[out] {
			if _, ok := c.driver[out]; !ok {
				return fmt.Errorf("logic: output net %q is undriven", out)
			}
		}
	}
	// Kahn levelization. Q edges (nets driven by a DFF) are cut: the
	// stored state is a level-0 pseudo primary input for its consumers, so
	// only combinational driving edges contribute to indegree and level.
	indeg := make(map[*Gate]int, len(c.Gates))
	var ready []*Gate
	for _, g := range c.Gates {
		n := 0
		for _, in := range g.Inputs {
			if d, ok := c.driver[in]; ok && d.Type != Dff {
				n++
			}
		}
		indeg[g] = n
		if n == 0 {
			g.Level = 1
			ready = append(ready, g)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Ordinal < ready[j].Ordinal })
	ordered := make([]*Gate, 0, len(c.Gates))
	for len(ready) > 0 {
		g := ready[0]
		ready = ready[1:]
		ordered = append(ordered, g)
		if g.Type == Dff {
			// Q consumers do not wait on the flip-flop: their indegree
			// never counted this edge, so don't relax it either.
			continue
		}
		for _, succ := range c.fanout[g.Output] {
			indeg[succ]--
			if lvl := g.Level + 1; lvl > succ.Level {
				succ.Level = lvl
			}
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	if len(ordered) != len(c.Gates) {
		if cyc := c.FindCycle(); len(cyc) > 0 {
			names := make([]string, 0, len(cyc)+1)
			for _, g := range cyc {
				names = append(names, g.Name)
			}
			names = append(names, cyc[0].Name)
			return fmt.Errorf("logic: circuit %q has a combinational cycle: %s",
				c.Name, strings.Join(names, " -> "))
		}
		return fmt.Errorf("logic: circuit %q has a combinational cycle", c.Name)
	}
	c.ordered = ordered
	c.validated = true
	return nil
}

// FindCycle returns the gates of one combinational cycle in driving order
// (gate i drives an input of gate i+1, and the last drives the first), or
// nil when the netlist is acyclic. It indexes the raw Gates slice rather
// than the construction caches, so it works on unvalidated — even
// hand-assembled — circuits; both Validate and the netcheck structural
// lint report cycles through it.
func (c *Circuit) FindCycle() []*Gate {
	driver := make(map[string]*Gate, len(c.Gates))
	for _, g := range c.Gates {
		if _, dup := driver[g.Output]; !dup {
			driver[g.Output] = g
		}
	}
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored, not on any cycle reachable from here
	)
	color := make(map[*Gate]int, len(c.Gates))
	var stack []*Gate
	// visit walks the "driven-by" edges; a grey hit closes a cycle. The
	// returned slice is the cycle in driven-by order; callers reverse it.
	var visit func(g *Gate) []*Gate
	visit = func(g *Gate) []*Gate {
		color[g] = grey
		stack = append(stack, g)
		for _, in := range g.Inputs {
			d := driver[in]
			if d == nil || d.Type == Dff {
				// Q edges are sequential, not combinational: a feedback
				// loop through a flip-flop is legal state, not a cycle.
				continue
			}
			switch color[d] {
			case grey:
				// Slice the stack from d to g: that is the cycle.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == d {
						return append([]*Gate(nil), stack[i:]...)
					}
				}
			case white:
				if cyc := visit(d); cyc != nil {
					return cyc
				}
			}
		}
		color[g] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	for _, g := range c.Gates {
		if color[g] != white {
			continue
		}
		stack = stack[:0]
		if cyc := visit(g); cyc != nil {
			// The DFS followed driven-by edges, so reverse into driving order.
			for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
				cyc[i], cyc[j] = cyc[j], cyc[i]
			}
			return cyc
		}
	}
	return nil
}

// Ordered returns the gates in topological order (Validate must have
// succeeded).
func (c *Circuit) Ordered() []*Gate {
	c.mustValidate()
	return c.ordered
}

// Depth returns the maximum gate level (logic depth).
func (c *Circuit) Depth() int {
	c.mustValidate()
	d := 0
	for _, g := range c.Gates {
		if g.Level > d {
			d = g.Level
		}
	}
	return d
}

func (c *Circuit) mustValidate() {
	if c.validated {
		return
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// Eval evaluates the circuit under a PI assignment, returning every net's
// value. Unassigned inputs evaluate to X. The optional override map forces
// net values regardless of their drivers — the hook used by fault
// simulation to impose a faulty value at a fault site. DFF output nets are
// pseudo primary inputs: their value comes from the assignment (default X),
// never from evaluating the flip-flop.
func (c *Circuit) Eval(assign map[string]Value, override map[string]Value) map[string]Value {
	c.mustValidate()
	vals := make(map[string]Value, len(c.Gates)+len(c.Inputs))
	for _, in := range c.Inputs {
		v, ok := assign[in]
		if !ok {
			v = X
		}
		if ov, ok := override[in]; ok {
			v = ov
		}
		vals[in] = v
	}
	for _, g := range c.Gates {
		if g.Type != Dff {
			continue
		}
		v, ok := assign[g.Output]
		if !ok {
			v = X
		}
		if ov, ok := override[g.Output]; ok {
			v = ov
		}
		vals[g.Output] = v
	}
	buf := make([]Value, 0, 4)
	for _, g := range c.ordered {
		if g.Type == Dff {
			continue
		}
		buf = buf[:0]
		for _, in := range g.Inputs {
			buf = append(buf, vals[in])
		}
		v := g.Eval(buf)
		if ov, ok := override[g.Output]; ok {
			v = ov
		}
		vals[g.Output] = v
	}
	return vals
}

// EvalBits evaluates 64 parallel two-valued patterns. overrideMask/Value,
// when non-nil, force (per net) the bits selected by the mask to the given
// values.
func (c *Circuit) EvalBits(assign map[string]uint64, overrideMask, overrideValue map[string]uint64) map[string]uint64 {
	c.mustValidate()
	vals := make(map[string]uint64, len(c.Gates)+len(c.Inputs))
	apply := func(net string, v uint64) uint64 {
		if overrideMask == nil {
			return v
		}
		if m, ok := overrideMask[net]; ok {
			return (v &^ m) | (overrideValue[net] & m)
		}
		return v
	}
	for _, in := range c.Inputs {
		vals[in] = apply(in, assign[in])
	}
	for _, g := range c.Gates {
		if g.Type == Dff {
			vals[g.Output] = apply(g.Output, assign[g.Output])
		}
	}
	buf := make([]uint64, 0, 4)
	for _, g := range c.ordered {
		if g.Type == Dff {
			continue
		}
		buf = buf[:0]
		for _, in := range g.Inputs {
			buf = append(buf, vals[in])
		}
		vals[g.Output] = apply(g.Output, g.EvalBits(buf))
	}
	return vals
}

// EvalBits3 evaluates 64 parallel three-valued patterns in dual-rail
// encoding (see Gate.EvalBits3): per net, bit k of the first returned map
// is the One-rail, bit k of the second the known-rail. Input lanes absent
// from assignKnown are unknown — the bit-parallel image of Eval treating
// unassigned inputs as X. overrideMask/Val/Known, when non-nil, force
// (per net) the lanes selected by the mask to the given value and known
// bits — the hook fault simulation uses to impose a faulty site value.
func (c *Circuit) EvalBits3(assignVal, assignKnown map[string]uint64, overrideMask, overrideVal, overrideKnown map[string]uint64) (map[string]uint64, map[string]uint64) {
	c.mustValidate()
	vals := make(map[string]uint64, len(c.Gates)+len(c.Inputs))
	knowns := make(map[string]uint64, len(c.Gates)+len(c.Inputs))
	apply := func(net string, v, k uint64) (uint64, uint64) {
		if overrideMask == nil {
			return v, k
		}
		m, ok := overrideMask[net]
		if !ok {
			return v, k
		}
		return (v &^ m) | (overrideVal[net] & m), (k &^ m) | (overrideKnown[net] & m)
	}
	for _, in := range c.Inputs {
		k := assignKnown[in]
		v, k := apply(in, assignVal[in]&k, k)
		vals[in], knowns[in] = v, k
	}
	for _, g := range c.Gates {
		if g.Type != Dff {
			continue
		}
		k := assignKnown[g.Output]
		v, k := apply(g.Output, assignVal[g.Output]&k, k)
		vals[g.Output], knowns[g.Output] = v, k
	}
	vbuf := make([]uint64, 0, 4)
	kbuf := make([]uint64, 0, 4)
	for _, g := range c.ordered {
		if g.Type == Dff {
			continue
		}
		vbuf, kbuf = vbuf[:0], kbuf[:0]
		for _, in := range g.Inputs {
			vbuf = append(vbuf, vals[in])
			kbuf = append(kbuf, knowns[in])
		}
		v, k := g.EvalBits3(vbuf, kbuf)
		v, k = apply(g.Output, v, k)
		vals[g.Output], knowns[g.Output] = v, k
	}
	return vals, knowns
}

// TruthTable exhaustively evaluates one output over all PI assignments
// (inputs in declaration order, index bit i = value of input i). It panics
// beyond 20 inputs.
func (c *Circuit) TruthTable(output string) []Value {
	if len(c.Inputs) > 20 {
		panic("logic: TruthTable limited to 20 inputs")
	}
	n := 1 << len(c.Inputs)
	out := make([]Value, n)
	assign := make(map[string]Value, len(c.Inputs))
	for i := 0; i < n; i++ {
		for b, in := range c.Inputs {
			assign[in] = FromBool(i&(1<<b) != 0)
		}
		out[i] = c.Eval(assign, nil)[output]
	}
	return out
}

// Nets returns all net names (inputs plus gate outputs), sorted.
func (c *Circuit) Nets() []string {
	seen := make(map[string]bool)
	var nets []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nets = append(nets, n)
		}
	}
	for _, in := range c.Inputs {
		add(in)
	}
	for _, g := range c.Gates {
		add(g.Output)
	}
	sort.Strings(nets)
	return nets
}
