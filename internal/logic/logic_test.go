package logic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGate(t *testing.T, c *Circuit, name string, typ GateType, out string, ins ...string) *Gate {
	t.Helper()
	g, err := c.AddGate(name, typ, out, ins...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildXorNand(t *testing.T) *Circuit {
	// XOR via 4 NANDs.
	c := New("xor4nand")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	c.AddOutput("y")
	mustGate(t, c, "n1", Nand, "n1", "a", "b")
	mustGate(t, c, "n2", Nand, "n2", "a", "n1")
	mustGate(t, c, "n3", Nand, "n3", "b", "n1")
	mustGate(t, c, "n4", Nand, "y", "n2", "n3")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAddOutputDedup: declaring the same output twice must not duplicate
// it — a doubled Outputs entry silently doubles the net in pattern and
// response rendering and in serve JSON.
func TestAddOutputDedup(t *testing.T) {
	c := New("m")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Inv, "y", "a")
	c.AddOutput("y")
	c.AddOutput("y")
	c.AddOutput("z2")
	mustGate(t, c, "g2", Inv, "z2", "y")
	c.AddOutput("z2")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs) != 2 || c.Outputs[0] != "y" || c.Outputs[1] != "z2" {
		t.Fatalf("Outputs = %v, want [y z2]", c.Outputs)
	}
	// A circuit assembled without New must not panic on AddOutput.
	var raw Circuit
	raw.AddOutput("q")
	raw.AddOutput("q")
	if len(raw.Outputs) != 1 {
		t.Fatalf("raw Outputs = %v", raw.Outputs)
	}
}

func TestXorFromNands(t *testing.T) {
	c := buildXorNand(t)
	tt := c.TruthTable("y")
	want := []Value{Zero, One, One, Zero}
	for i := range want {
		if tt[i] != want[i] {
			t.Fatalf("tt[%d] = %v, want %v", i, tt[i], want[i])
		}
	}
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

func TestGateEvalAllTypes(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []Value
		want Value
	}{
		{Inv, []Value{One}, Zero},
		{Inv, []Value{X}, X},
		{Buf, []Value{Zero}, Zero},
		{Nand, []Value{One, One}, Zero},
		{Nand, []Value{Zero, X}, One}, // controlling value beats X
		{Nand, []Value{One, X}, X},
		{And, []Value{One, One, One}, One},
		{And, []Value{One, Zero, X}, Zero},
		{Nor, []Value{Zero, Zero}, One},
		{Nor, []Value{One, X}, Zero},
		{Nor, []Value{Zero, X}, X},
		{Or, []Value{Zero, One}, One},
		{Xor, []Value{One, Zero}, One},
		{Xor, []Value{One, X}, X},
		{Xnor, []Value{One, One}, One},
		{Aoi21, []Value{One, One, Zero}, Zero},
		{Aoi21, []Value{Zero, One, Zero}, One},
		{Aoi21, []Value{Zero, Zero, One}, Zero},
		{Oai21, []Value{Zero, Zero, One}, One},
		{Oai21, []Value{One, Zero, One}, Zero},
		{Oai21, []Value{One, One, Zero}, One},
	}
	for _, cse := range cases {
		g := &Gate{Name: "g", Type: cse.t}
		if got := g.Eval(cse.in); got != cse.want {
			t.Errorf("%v%v = %v, want %v", cse.t, cse.in, got, cse.want)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Fatal("Not broken")
	}
	if !One.IsKnown() || !Zero.IsKnown() || X.IsKnown() {
		t.Fatal("IsKnown broken")
	}
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool broken")
	}
	if One.String() != "1" || Zero.String() != "0" || X.String() != "X" {
		t.Fatal("String broken")
	}
}

func TestValidateErrors(t *testing.T) {
	c := New("bad")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Inv, "y", "missing")
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("undriven input not caught: %v", err)
	}

	c2 := New("bad2")
	if err := c2.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	c2.AddOutput("nowhere")
	if err := c2.Validate(); err == nil {
		t.Fatal("undriven output not caught")
	}

	// Cycle: g1 -> g2 -> g1.
	c3 := New("cycle")
	if err := c3.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c3, "g1", Nand, "x", "a", "y")
	mustGate(t, c3, "g2", Inv, "y", "x")
	if err := c3.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not caught: %v", err)
	} else {
		// The error must name the gates on the cycle, not just report one.
		for _, g := range []string{"g1", "g2"} {
			if !strings.Contains(err.Error(), g) {
				t.Fatalf("cycle error %q does not name gate %s", err, g)
			}
		}
	}
}

func TestFindCycle(t *testing.T) {
	c := New("cyc")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "front", Inv, "f", "a")
	mustGate(t, c, "g1", Nand, "x", "f", "z")
	mustGate(t, c, "g2", Inv, "y", "x")
	mustGate(t, c, "g3", Inv, "z", "y")
	cyc := c.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("FindCycle returned %d gates, want 3", len(cyc))
	}
	// Driving order: each gate drives an input of the next, wrapping.
	for i, g := range cyc {
		next := cyc[(i+1)%len(cyc)]
		found := false
		for _, in := range next.Inputs {
			if in == g.Output {
				found = true
			}
		}
		if !found {
			t.Fatalf("cycle order broken: %s does not drive %s", g.Name, next.Name)
		}
	}

	if got := C17().FindCycle(); got != nil {
		t.Fatalf("FindCycle on acyclic c17 returned %v", got)
	}
}

// Driver and Fanout must behave like Ordered/Depth: validate implicitly
// and panic on structurally broken circuits instead of silently answering
// from stale caches.
func TestDriverFanoutValidate(t *testing.T) {
	c := New("broken")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Inv, "y", "nosuch")
	for name, probe := range map[string]func(){
		"Driver": func() { c.Driver("y") },
		"Fanout": func() { c.Fanout("a") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on an invalid circuit did not panic", name)
				}
			}()
			probe()
		}()
	}

	// On a valid but not-yet-validated circuit they validate implicitly.
	ok := New("ok")
	if err := ok.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, ok, "g1", Inv, "y", "a")
	ok.AddOutput("y")
	if g := ok.Driver("y"); g == nil || g.Name != "g1" {
		t.Fatalf("Driver(y) = %v, want g1", g)
	}
	if fo := ok.Fanout("a"); len(fo) != 1 || fo[0].Name != "g1" {
		t.Fatalf("Fanout(a) = %v, want [g1]", fo)
	}
}

func TestConstructionErrors(t *testing.T) {
	c := New("c")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("a"); err == nil {
		t.Fatal("duplicate input accepted")
	}
	if _, err := c.AddGate("g", Inv, "y", "a", "a"); err == nil {
		t.Fatal("bad arity accepted")
	}
	if _, err := c.AddGate("g", Xor, "y", "a"); err == nil {
		t.Fatal("bad xor arity accepted")
	}
	if _, err := c.AddGate("g", Inv, "a", "a"); err == nil {
		t.Fatal("driving a primary input accepted")
	}
	if _, err := c.AddGate("g1", Inv, "y", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", Inv, "y", "a"); err == nil {
		t.Fatal("double-driven net accepted")
	}
}

func TestEvalOverride(t *testing.T) {
	c := buildXorNand(t)
	assign := map[string]Value{"a": One, "b": One}
	// Force internal net n1 (normally 0 for 11) to 1: y = nand(nand(a,1)=0.. )
	vals := c.Eval(assign, map[string]Value{"n1": One})
	// With n1 forced 1: n2 = nand(1,1)=0, n3 = nand(1,1)=0, y = nand(0,0)=1.
	if vals["y"] != One {
		t.Fatalf("override eval y = %v, want 1", vals["y"])
	}
	// Unforced: y = xor(1,1) = 0.
	if v := c.Eval(assign, nil)["y"]; v != Zero {
		t.Fatalf("plain eval y = %v, want 0", v)
	}
}

func TestEvalUnassignedInputIsX(t *testing.T) {
	c := buildXorNand(t)
	vals := c.Eval(map[string]Value{"a": One}, nil)
	if vals["y"] != X {
		t.Fatalf("y = %v, want X with unassigned b", vals["y"])
	}
	// A controlling value still decides: NAND(0, X) = 1.
	c2 := New("c2")
	if err := c2.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c2, "g", Nand, "y", "a", "b")
	c2.AddOutput("y")
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := c2.Eval(map[string]Value{"a": Zero}, nil)["y"]; v != One {
		t.Fatalf("NAND(0,X) = %v, want 1", v)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := `# the 4-NAND XOR
circuit xor4
input a b
output y
nand n1 n1 a b
nand n2 n2 a n1
nand n3 n3 b n1
nand n4 y n2 n3
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "xor4" || len(c.Gates) != 4 || c.Depth() != 3 {
		t.Fatalf("parsed circuit wrong: name=%q gates=%d depth=%d", c.Name, len(c.Gates), c.Depth())
	}
	c2, err := ParseString(Format(c))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	tt1, tt2 := c.TruthTable("y"), c2.TruthTable("y")
	for i := range tt1 {
		if tt1[i] != tt2[i] {
			t.Fatalf("round trip changed function at %d", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate g y a",      // unknown type
		"inv g",                 // too few fields
		"circuit a b",           // circuit arity
		"input a\ninv g1 a a",   // drives an input
		"input a\ninv g1 y zzz", // undriven used net
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted bad netlist %q", src)
		}
	}
}

// TestQuickBitsMatchesScalar: the 64-way evaluator agrees with the scalar
// evaluator on random circuits and random patterns.
func TestQuickBitsMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(6), Gates: 1 + rng.Intn(40)})
		// 64 random patterns packed into words.
		bits := make(map[string]uint64, len(c.Inputs))
		for _, in := range c.Inputs {
			bits[in] = rng.Uint64()
		}
		got := c.EvalBits(bits, nil, nil)
		for k := 0; k < 64; k += 7 { // sample bit lanes
			assign := make(map[string]Value, len(c.Inputs))
			for _, in := range c.Inputs {
				assign[in] = FromBool(bits[in]&(1<<k) != 0)
			}
			vals := c.Eval(assign, nil)
			for _, out := range c.Outputs {
				want := vals[out]
				gotBit := FromBool(got[out]&(1<<k) != 0)
				if want != gotBit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomCircuitsValid: generated circuits always validate, have
// outputs, and levels respect topology.
func TestQuickRandomCircuitsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(30), Primitive: seed%2 == 0})
		if err := c.Validate(); err != nil {
			return false
		}
		if len(c.Outputs) == 0 {
			return false
		}
		for _, g := range c.Gates {
			for _, in := range g.Inputs {
				if d := c.Driver(in); d != nil && d.Level >= g.Level {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvalBitsOverride: the bitwise override hook behaves like the
// scalar override.
func TestQuickEvalBitsOverride(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 2 + rng.Intn(20), Primitive: true})
		g := c.Gates[rng.Intn(len(c.Gates))]
		bits := make(map[string]uint64)
		for _, in := range c.Inputs {
			bits[in] = rng.Uint64()
		}
		forced := rng.Uint64()
		got := c.EvalBits(bits,
			map[string]uint64{g.Output: ^uint64(0)},
			map[string]uint64{g.Output: forced})
		k := rng.Intn(64)
		assign := make(map[string]Value)
		for _, in := range c.Inputs {
			assign[in] = FromBool(bits[in]&(1<<uint(k)) != 0)
		}
		vals := c.Eval(assign, map[string]Value{g.Output: FromBool(forced&(1<<uint(k)) != 0)})
		for _, out := range c.Outputs {
			if FromBool(got[out]&(1<<uint(k)) != 0) != vals[out] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNets(t *testing.T) {
	c := buildXorNand(t)
	nets := c.Nets()
	want := map[string]bool{"a": true, "b": true, "n1": true, "n2": true, "n3": true, "y": true}
	if len(nets) != len(want) {
		t.Fatalf("nets = %v", nets)
	}
	for _, n := range nets {
		if !want[n] {
			t.Fatalf("unexpected net %q", n)
		}
	}
}

func TestGateTypeStringParse(t *testing.T) {
	for _, typ := range []GateType{Inv, Buf, Nand, Nor, And, Or, Xor, Xnor, Aoi21, Oai21} {
		back, err := ParseGateType(typ.String())
		if err != nil || back != typ {
			t.Fatalf("round trip %v failed: %v %v", typ, back, err)
		}
	}
	if _, err := ParseGateType("nope"); err == nil {
		t.Fatal("unknown type accepted")
	}
}
