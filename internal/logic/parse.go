package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads the netlist text format:
//
//	# comment
//	circuit <name>
//	input <net> [<net> ...]
//	output <net> [<net> ...]
//	<gatetype> <gatename> <outnet> <innet> [<innet> ...]
//
// Gate types are the lower-case names from GateType. Validate is run on
// the result.
func Parse(r io.Reader) (*Circuit, error) {
	c, err := ParseLenient(r)
	if err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// maxNetlistLine bounds one line of netlist text. Generated big-circuit
// netlists routinely put thousands of input or output names on a single
// line, far past bufio's 64 KiB default token size, so every netlist
// scanner in this package grows its buffer to this limit.
const maxNetlistLine = 16 << 20

// netlistScanner returns a line scanner sized for machine-generated
// netlists (see maxNetlistLine).
func netlistScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxNetlistLine)
	return sc
}

// ParseLenient reads the Parse text format but skips the final Validate,
// returning structurally broken circuits (undriven outputs, dangling
// nets, cycles) for diagnosis. Line-level syntax errors still fail.
// netcheck.Analyze and the /v1/lint endpoint are the intended consumers:
// their whole purpose is reporting on circuits Validate would refuse.
func ParseLenient(r io.Reader) (*Circuit, error) {
	c := New("")
	sc := netlistScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "circuit":
			if len(f) != 2 {
				return nil, fmt.Errorf("logic: line %d: circuit wants one name", lineNo)
			}
			c.Name = f[1]
		case "input":
			for _, n := range f[1:] {
				if err := c.AddInput(n); err != nil {
					return nil, fmt.Errorf("logic: line %d: %w", lineNo, err)
				}
			}
		case "output":
			for _, n := range f[1:] {
				c.AddOutput(n)
			}
		default:
			t, err := ParseGateType(f[0])
			if err != nil {
				return nil, fmt.Errorf("logic: line %d: %w", lineNo, err)
			}
			if len(f) < 4 {
				return nil, fmt.Errorf("logic: line %d: gate needs name, output and inputs", lineNo)
			}
			if _, err := c.AddGate(f[1], t, f[2], f[3:]...); err != nil {
				return nil, fmt.Errorf("logic: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Circuit, error) { return Parse(strings.NewReader(s)) }

// ParseLenientString is ParseLenient over a string.
func ParseLenientString(s string) (*Circuit, error) { return ParseLenient(strings.NewReader(s)) }

// Format renders the circuit in the Parse text format. Unnamed circuits
// omit the circuit line (Parse treats the name as optional).
func Format(c *Circuit) string {
	var b strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&b, "circuit %s\n", c.Name)
	}
	if len(c.Inputs) > 0 {
		fmt.Fprintf(&b, "input %s\n", strings.Join(c.Inputs, " "))
	}
	if len(c.Outputs) > 0 {
		fmt.Fprintf(&b, "output %s\n", strings.Join(c.Outputs, " "))
	}
	for _, g := range c.Gates {
		fmt.Fprintf(&b, "%s %s %s %s\n", g.Type, g.Name, g.Output, strings.Join(g.Inputs, " "))
	}
	return b.String()
}
