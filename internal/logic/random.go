package logic

import (
	"fmt"
	"math/rand"
)

// RandomOptions configures RandomCircuit.
type RandomOptions struct {
	Inputs int // number of primary inputs (>=1)
	Gates  int // number of gates (>=1)
	// Primitive restricts gate choice to INV/NAND2/NOR2 — the static-CMOS
	// primitive set for which per-transistor OBD faults are defined.
	Primitive bool
}

// RandomCircuit generates a random valid combinational circuit. Gate
// inputs are drawn from earlier nets so the result is acyclic by
// construction; every net with no fanout becomes a primary output, which
// guarantees full structural observability.
func RandomCircuit(rng *rand.Rand, opt RandomOptions) *Circuit {
	if opt.Inputs < 1 || opt.Gates < 1 {
		panic("logic: RandomCircuit needs at least one input and one gate")
	}
	c := New("random")
	nets := make([]string, 0, opt.Inputs+opt.Gates)
	for i := 0; i < opt.Inputs; i++ {
		n := fmt.Sprintf("i%d", i)
		if err := c.AddInput(n); err != nil {
			panic(err)
		}
		nets = append(nets, n)
	}
	types := []GateType{Inv, Nand, Nand, Nor, Nor}
	if !opt.Primitive {
		types = append(types, And, Or, Xor, Xnor, Buf, Aoi21)
	}
	for i := 0; i < opt.Gates; i++ {
		t := types[rng.Intn(len(types))]
		var arity int
		switch t {
		case Inv, Buf:
			arity = 1
		case Aoi21, Oai21:
			arity = 3
		default:
			arity = 2
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := fmt.Sprintf("g%d", i)
		if _, err := c.AddGate(out, t, out, ins...); err != nil {
			panic(err)
		}
		nets = append(nets, out)
	}
	// Read the construction fanout map directly: Fanout would re-Validate
	// after every AddOutput invalidation, turning this loop quadratic on
	// the thousands-of-gates circuits the generator exists for.
	for _, n := range nets {
		if len(c.fanout[n]) == 0 && !c.isInput[n] {
			c.AddOutput(n)
		}
	}
	if len(c.Outputs) == 0 {
		c.AddOutput(nets[len(nets)-1])
	}
	if err := c.Validate(); err != nil {
		panic(err) // impossible by construction
	}
	return c
}
