package logic

import (
	"fmt"
	"math/rand"
)

// RandomOptions configures RandomCircuit.
type RandomOptions struct {
	Inputs int // number of primary inputs (>=1)
	Gates  int // number of gates (>=1)
	// FFs adds this many D flip-flops (default 0 = purely combinational).
	// Flip-flop i stores net q<i> and samples a random combinational gate
	// output, so state feeds back into the logic: the result is a valid
	// sequential circuit with chain order ff0, ff1, ...
	FFs int
	// Primitive restricts gate choice to INV/NAND2/NOR2 — the static-CMOS
	// primitive set for which per-transistor OBD faults are defined.
	Primitive bool
}

// RandomCircuit generates a random valid circuit. Combinational gate
// inputs are drawn from earlier nets (including flip-flop outputs) so the
// core is acyclic by construction; flip-flop D inputs are drawn from the
// full gate pool, which is where sequential feedback loops come from.
// Every net with no fanout becomes a primary output, which guarantees
// full structural observability.
func RandomCircuit(rng *rand.Rand, opt RandomOptions) *Circuit {
	if opt.Inputs < 1 || opt.Gates < 1 {
		panic("logic: RandomCircuit needs at least one input and one gate")
	}
	c := New("random")
	nets := make([]string, 0, opt.Inputs+opt.FFs+opt.Gates)
	for i := 0; i < opt.Inputs; i++ {
		n := fmt.Sprintf("i%d", i)
		if err := c.AddInput(n); err != nil {
			panic(err)
		}
		nets = append(nets, n)
	}
	for i := 0; i < opt.FFs; i++ {
		q := fmt.Sprintf("q%d", i)
		d := fmt.Sprintf("g%d", rng.Intn(opt.Gates)) // forward reference, resolved below
		if _, err := c.AddGate(q, Dff, q, d); err != nil {
			panic(err)
		}
		nets = append(nets, q)
	}
	types := []GateType{Inv, Nand, Nand, Nor, Nor}
	if !opt.Primitive {
		types = append(types, And, Or, Xor, Xnor, Buf, Aoi21)
	}
	for i := 0; i < opt.Gates; i++ {
		t := types[rng.Intn(len(types))]
		var arity int
		switch t {
		case Inv, Buf:
			arity = 1
		case Aoi21, Oai21:
			arity = 3
		default:
			arity = 2
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := fmt.Sprintf("g%d", i)
		if _, err := c.AddGate(out, t, out, ins...); err != nil {
			panic(err)
		}
		nets = append(nets, out)
	}
	// Read the construction fanout map directly: Fanout would re-Validate
	// after every AddOutput invalidation, turning this loop quadratic on
	// the thousands-of-gates circuits the generator exists for.
	for _, n := range nets {
		if len(c.fanout[n]) == 0 && !c.isInput[n] {
			c.AddOutput(n)
		}
	}
	if len(c.Outputs) == 0 {
		c.AddOutput(nets[len(nets)-1])
	}
	if err := c.Validate(); err != nil {
		panic(err) // impossible by construction
	}
	return c
}
