package logic

// This file implements SCOAP testability analysis (Goldstein's
// controllability/observability program): CC0/CC1 estimate how many input
// assignments it costs to force a net to 0/1, CO how hard a net's value is
// to observe at an output. The ATPG package uses these measures to steer
// PODEM's backtrace — a classical efficiency aid that leaves the search's
// completeness untouched.

// Testability holds per-net SCOAP measures.
type Testability struct {
	CC0 map[string]int // cost to set the net to 0
	CC1 map[string]int // cost to set the net to 1
	CO  map[string]int // cost to observe the net at a primary output
}

const coUnreachable = 1 << 28

// ComputeTestability runs the SCOAP recurrences over a validated circuit.
func ComputeTestability(c *Circuit) *Testability {
	c.mustValidate()
	t := &Testability{
		CC0: make(map[string]int),
		CC1: make(map[string]int),
		CO:  make(map[string]int),
	}
	for _, in := range c.Inputs {
		t.CC0[in] = 1
		t.CC1[in] = 1
	}
	// Under the scan model flip-flop outputs are scan-in controllable like
	// primary inputs and flip-flop D nets scan-out observable like primary
	// outputs; the DFF gates themselves are skipped in both walks.
	for _, g := range c.Gates {
		if g.Type == Dff {
			t.CC0[g.Output] = 1
			t.CC1[g.Output] = 1
		}
	}
	for _, g := range c.Ordered() {
		if g.Type == Dff {
			continue
		}
		t.CC0[g.Output], t.CC1[g.Output] = gateControllability(g, t)
	}
	// Observability: POs are free; walk gates in reverse topological order.
	for _, n := range c.Nets() {
		t.CO[n] = coUnreachable
	}
	for _, po := range c.Outputs {
		t.CO[po] = 0
	}
	for _, g := range c.Gates {
		if g.Type == Dff {
			t.CO[g.Inputs[0]] = 0
		}
	}
	ordered := c.Ordered()
	for i := len(ordered) - 1; i >= 0; i-- {
		g := ordered[i]
		if g.Type == Dff {
			continue
		}
		outCO := t.CO[g.Output]
		if outCO >= coUnreachable {
			continue
		}
		for idx, in := range g.Inputs {
			co := outCO + sensitizeCost(g, idx, t) + 1
			if co < t.CO[in] {
				t.CO[in] = co
			}
		}
	}
	return t
}

// sum clamps additions below the unreachable sentinel.
func sum(vals ...int) int {
	s := 0
	for _, v := range vals {
		s += v
		if s >= coUnreachable {
			return coUnreachable
		}
	}
	return s
}

func minOf(vals []int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// gateControllability returns (CC0, CC1) of the gate output.
func gateControllability(g *Gate, t *Testability) (int, int) {
	cc0 := make([]int, len(g.Inputs))
	cc1 := make([]int, len(g.Inputs))
	for i, in := range g.Inputs {
		cc0[i], cc1[i] = t.CC0[in], t.CC1[in]
	}
	allPlus := func(v []int) int { return sum(append(append([]int{}, v...), 1)...) }
	minPlus := func(v []int) int { return sum(minOf(v), 1) }
	switch g.Type {
	case Inv:
		return cc1[0] + 1, cc0[0] + 1
	case Buf:
		return cc0[0] + 1, cc1[0] + 1
	case And:
		return minPlus(cc0), allPlus(cc1)
	case Nand:
		return allPlus(cc1), minPlus(cc0)
	case Or:
		return allPlus(cc0), minPlus(cc1)
	case Nor:
		return minPlus(cc1), allPlus(cc0)
	case Xor:
		// 0: equal inputs; 1: differing inputs.
		even := minOf([]int{sum(cc0[0], cc0[1]), sum(cc1[0], cc1[1])})
		odd := minOf([]int{sum(cc0[0], cc1[1]), sum(cc1[0], cc0[1])})
		return even + 1, odd + 1
	case Xnor:
		even := minOf([]int{sum(cc0[0], cc0[1]), sum(cc1[0], cc1[1])})
		odd := minOf([]int{sum(cc0[0], cc1[1]), sum(cc1[0], cc0[1])})
		return odd + 1, even + 1
	case Aoi21:
		// out = !(a·b + c): out=0 needs (a·b) or c; out=1 needs c=0 and (a=0 or b=0).
		set0 := minOf([]int{sum(cc1[0], cc1[1]), cc1[2]})
		set1 := sum(cc0[2], minOf([]int{cc0[0], cc0[1]}))
		return set0 + 1, set1 + 1
	case Oai21:
		// out = !((a+b)·c): out=0 needs c=1 and (a or b); out=1 needs c=0 or (a=0 and b=0).
		set0 := sum(cc1[2], minOf([]int{cc1[0], cc1[1]}))
		set1 := minOf([]int{cc0[2], sum(cc0[0], cc0[1])})
		return set0 + 1, set1 + 1
	default:
		return coUnreachable, coUnreachable
	}
}

// sensitizeCost estimates the cost of making gate g transparent from its
// idx-th input to its output (non-controlling values on the side inputs).
func sensitizeCost(g *Gate, idx int, t *Testability) int {
	cost := 0
	switch g.Type {
	case Inv, Buf, Dff:
		return 0
	case And, Nand:
		for i, in := range g.Inputs {
			if i != idx {
				cost = sum(cost, t.CC1[in])
			}
		}
	case Or, Nor:
		for i, in := range g.Inputs {
			if i != idx {
				cost = sum(cost, t.CC0[in])
			}
		}
	case Xor, Xnor:
		other := g.Inputs[1-idx]
		cost = minOf([]int{t.CC0[other], t.CC1[other]})
	case Aoi21, Oai21:
		// Sensitize the AND/OR branch (idx 0/1: partner non-controlling,
		// third input quiet) or the direct input (branch off).
		a, b, c := g.Inputs[0], g.Inputs[1], g.Inputs[2]
		quietAnd := map[GateType]map[string]int{
			Aoi21: {"third": t.CC0[c], "pair0": t.CC1[b], "pair1": t.CC1[a]},
			Oai21: {"third": t.CC1[c], "pair0": t.CC0[b], "pair1": t.CC0[a]},
		}[g.Type]
		switch idx {
		case 0:
			cost = sum(quietAnd["pair0"], quietAnd["third"])
		case 1:
			cost = sum(quietAnd["pair1"], quietAnd["third"])
		default:
			if g.Type == Aoi21 {
				cost = minOf([]int{sum(t.CC0[a]), sum(t.CC0[b])})
			} else {
				cost = sum(t.CC1[a]) // one of a,b high opens the OR branch
				if alt := sum(t.CC1[b]); alt < cost {
					cost = alt
				}
			}
		}
	}
	return cost
}
