package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCOAPInverterChain(t *testing.T) {
	c := New("chain")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Inv, "n1", "a")
	mustGate(t, c, "g2", Inv, "y", "n1")
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tb := ComputeTestability(c)
	// a: 1/1; n1: CC0 = CC1(a)+1 = 2, CC1 = 2; y: 3/3.
	if tb.CC0["a"] != 1 || tb.CC1["a"] != 1 {
		t.Fatalf("PI controllability %d/%d", tb.CC0["a"], tb.CC1["a"])
	}
	if tb.CC0["n1"] != 2 || tb.CC1["n1"] != 2 {
		t.Fatalf("n1 controllability %d/%d", tb.CC0["n1"], tb.CC1["n1"])
	}
	if tb.CC0["y"] != 3 || tb.CC1["y"] != 3 {
		t.Fatalf("y controllability %d/%d", tb.CC0["y"], tb.CC1["y"])
	}
	// Observability: y=0; n1 = 0+0+1 = 1; a = 2.
	if tb.CO["y"] != 0 || tb.CO["n1"] != 1 || tb.CO["a"] != 2 {
		t.Fatalf("observability %d/%d/%d", tb.CO["y"], tb.CO["n1"], tb.CO["a"])
	}
}

func TestSCOAPNand(t *testing.T) {
	c := New("g")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Nand, "y", "a", "b")
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tb := ComputeTestability(c)
	// CC0(y) = CC1(a)+CC1(b)+1 = 3; CC1(y) = min(CC0)+1 = 2.
	if tb.CC0["y"] != 3 || tb.CC1["y"] != 2 {
		t.Fatalf("NAND output controllability %d/%d", tb.CC0["y"], tb.CC1["y"])
	}
	// CO(a) = CO(y) + CC1(b) + 1 = 2.
	if tb.CO["a"] != 2 || tb.CO["b"] != 2 {
		t.Fatalf("NAND input observability %d/%d", tb.CO["a"], tb.CO["b"])
	}
}

func TestSCOAPDeeperIsHarder(t *testing.T) {
	c := RippleCarryAdder(2)
	tb := ComputeTestability(c)
	// The second sum bit sits behind more logic than the first XOR's
	// internal NAND, so it must be harder to control.
	if tb.CC0["s1"] <= tb.CC0["u0_m"] && tb.CC1["s1"] <= tb.CC1["u0_m"] {
		t.Fatalf("deep net not harder to control: s1 %d/%d vs u0_m %d/%d",
			tb.CC0["s1"], tb.CC1["s1"], tb.CC0["u0_m"], tb.CC1["u0_m"])
	}
	for _, po := range c.Outputs {
		if tb.CO[po] != 0 {
			t.Fatalf("PO %s observability %d", po, tb.CO[po])
		}
	}
	if tb.CO["a0"] <= 0 {
		t.Fatalf("input observability %d, want positive", tb.CO["a0"])
	}
}

// TestQuickSCOAPBounds: on random circuits, every reachable net has
// CC ≥ 1 and CO ≥ 0, and every net on a path to an output has finite CO.
func TestQuickSCOAPBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(25)})
		tb := ComputeTestability(c)
		for _, n := range c.Nets() {
			if tb.CC0[n] < 1 || tb.CC1[n] < 1 {
				return false
			}
			if tb.CO[n] < 0 {
				return false
			}
		}
		// POs are free to observe.
		for _, po := range c.Outputs {
			if tb.CO[po] != 0 {
				return false
			}
		}
		// Every gate output either is a PO or fans out to one (sinks become
		// POs in RandomCircuit), so its CO must be finite; likewise any
		// primary input that something reads. Unread inputs legitimately
		// stay unobservable.
		for _, g := range c.Gates {
			if tb.CO[g.Output] >= 1<<28 {
				return false
			}
		}
		for _, in := range c.Inputs {
			if len(c.Fanout(in)) > 0 && tb.CO[in] >= 1<<28 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
