package logic

import "fmt"

// Sequential-circuit views. A DFF-bearing circuit is analyzed through its
// combinational core: every flip-flop output Q becomes a pseudo primary
// input (scan-in controllable state) and every flip-flop input D a pseudo
// primary output (scan-out observable next state). The helpers here expose
// that cut without the caller having to know which nets are state; the
// internal/seq package builds its scan model on top of them.

// HasDFF reports whether the circuit contains any flip-flop.
func (c *Circuit) HasDFF() bool {
	for _, g := range c.Gates {
		if g.Type == Dff {
			return true
		}
	}
	return false
}

// DFFs returns the flip-flop gates in netlist (insertion) order. That order
// is the canonical scan-chain order everywhere in the module: state bit i of
// a scan pattern is the Q net of DFFs()[i].
func (c *Circuit) DFFs() []*Gate {
	var ffs []*Gate
	for _, g := range c.Gates {
		if g.Type == Dff {
			ffs = append(ffs, g)
		}
	}
	return ffs
}

// CombinationalCore extracts the flip-flop-free core: inputs are the
// original primary inputs followed by the Q nets in chain order, gates are
// the non-DFF gates (copied), and outputs are the original primary outputs
// followed by the D nets in chain order (duplicates collapsed). For a
// circuit with no flip-flops it returns an equivalent copy. The returned
// circuit is validated.
func (c *Circuit) CombinationalCore() (*Circuit, error) {
	core := New(c.Name + "_core")
	for _, in := range c.Inputs {
		if err := core.AddInput(in); err != nil {
			return nil, err
		}
	}
	ffs := c.DFFs()
	for _, ff := range ffs {
		if err := core.AddInput(ff.Output); err != nil {
			return nil, fmt.Errorf("logic: flip-flop %q output: %w", ff.Name, err)
		}
	}
	for _, g := range c.Gates {
		if g.Type == Dff {
			continue
		}
		if _, err := core.AddGate(g.Name, g.Type, g.Output, g.Inputs...); err != nil {
			return nil, err
		}
	}
	for _, out := range c.Outputs {
		core.AddOutput(out)
	}
	for _, ff := range ffs {
		core.AddOutput(ff.Inputs[0])
	}
	if err := core.Validate(); err != nil {
		return nil, err
	}
	return core, nil
}
