package logic

import (
	"testing"
)

// toggler builds the canonical minimal sequential circuit: a flip-flop
// whose next state is its own inversion gated by an enable input.
//
//	q  = DFF(d)
//	nq = NOT(q)
//	d  = AND(en, nq)
//	y  = NOT(q)   (well, y = nq is the observed output)
func toggler(t *testing.T) *Circuit {
	t.Helper()
	c := New("toggler")
	if err := c.AddInput("en"); err != nil {
		t.Fatal(err)
	}
	mustGate := func(name string, gt GateType, out string, ins ...string) {
		t.Helper()
		if _, err := c.AddGate(name, gt, out, ins...); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("q", Dff, "q", "d")
	mustGate("nq", Inv, "nq", "q")
	mustGate("d", And, "d", "en", "nq")
	c.AddOutput("nq")
	if err := c.Validate(); err != nil {
		t.Fatalf("toggler does not validate: %v", err)
	}
	return c
}

func TestDFFValidateBreaksSequentialLoops(t *testing.T) {
	c := toggler(t)
	if !c.HasDFF() {
		t.Fatal("HasDFF = false for a DFF-bearing circuit")
	}
	if got := len(c.DFFs()); got != 1 {
		t.Fatalf("DFFs() returned %d gates, want 1", got)
	}
	// The q -> nq -> d -> q loop runs through the flip-flop, so it is a
	// sequential loop, not a combinational cycle.
	if cyc := c.FindCycle(); cyc != nil {
		t.Fatalf("FindCycle flagged the sequential loop: %v", cyc)
	}
	// A genuine combinational cycle must still be refused.
	bad := New("comb-loop")
	if err := bad.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.AddGate("x", And, "x", "a", "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.AddGate("y", And, "y", "a", "x"); err != nil {
		t.Fatal(err)
	}
	bad.AddOutput("y")
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a combinational cycle")
	}
}

func TestDFFOrderedTreatsQAsLevelZero(t *testing.T) {
	c := toggler(t)
	// Every non-DFF gate must appear after the nets it reads are
	// available; the DFF's Q is available from the start.
	seen := map[string]bool{"en": true, "q": true}
	for _, g := range c.Ordered() {
		if g.Type == Dff {
			continue
		}
		for _, in := range g.Inputs {
			if !seen[in] {
				t.Fatalf("gate %q reads %q before it is computed", g.Name, in)
			}
		}
		seen[g.Output] = true
	}
}

func TestDFFEvalSeedsState(t *testing.T) {
	c := toggler(t)
	for _, tc := range []struct {
		q, en, wantD, wantNQ Value
	}{
		{Zero, One, One, One},   // q=0: toggle arms, nq=1, d=1
		{One, One, Zero, Zero},  // q=1: nq=0, d=0
		{Zero, Zero, Zero, One}, // disabled: d=0
	} {
		vals := c.Eval(map[string]Value{"en": tc.en, "q": tc.q}, nil)
		if vals["d"] != tc.wantD || vals["nq"] != tc.wantNQ {
			t.Fatalf("q=%v en=%v: d=%v nq=%v, want d=%v nq=%v",
				tc.q, tc.en, vals["d"], vals["nq"], tc.wantD, tc.wantNQ)
		}
	}
	// Unseeded state is unknown, and the X must flow through the cone.
	vals := c.Eval(map[string]Value{"en": One}, nil)
	if vals["nq"] != X || vals["d"] != X {
		t.Fatalf("unseeded state: nq=%v d=%v, want X X", vals["nq"], vals["d"])
	}
}

func TestCombinationalCore(t *testing.T) {
	c := toggler(t)
	core, err := c.CombinationalCore()
	if err != nil {
		t.Fatal(err)
	}
	if core.HasDFF() {
		t.Fatal("core still has flip-flops")
	}
	wantIns := []string{"en", "q"}
	if len(core.Inputs) != len(wantIns) {
		t.Fatalf("core inputs %v, want %v", core.Inputs, wantIns)
	}
	for i, in := range wantIns {
		if core.Inputs[i] != in {
			t.Fatalf("core inputs %v, want %v", core.Inputs, wantIns)
		}
	}
	// Outputs: the original PO then the next-state net.
	wantOuts := []string{"nq", "d"}
	if len(core.Outputs) != len(wantOuts) {
		t.Fatalf("core outputs %v, want %v", core.Outputs, wantOuts)
	}
	for i, out := range wantOuts {
		if core.Outputs[i] != out {
			t.Fatalf("core outputs %v, want %v", core.Outputs, wantOuts)
		}
	}
	if len(core.Gates) != len(c.Gates)-1 {
		t.Fatalf("core has %d gates, want %d", len(core.Gates), len(c.Gates)-1)
	}
	if err := core.Validate(); err != nil {
		t.Fatalf("core does not validate: %v", err)
	}
}

// TestDFFFingerprintBindsChain checks the fingerprint distinguishes which
// next-state function feeds which state bit: swapping the D nets of two
// flip-flops rewires the machine and must change the hash.
func TestDFFFingerprintBindsChain(t *testing.T) {
	build := func(d0, d1 string) *Circuit {
		c := New("pair")
		for _, in := range []string{"a", "b"} {
			if err := c.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		mustGate := func(name string, gt GateType, out string, ins ...string) {
			if _, err := c.AddGate(name, gt, out, ins...); err != nil {
				t.Fatal(err)
			}
		}
		mustGate("n0", And, "n0", "a", "q1")
		mustGate("n1", Or, "n1", "b", "q0")
		mustGate("q0", Dff, "q0", d0)
		mustGate("q1", Dff, "q1", d1)
		mustGate("y", Xor, "y", "q0", "q1")
		c.AddOutput("y")
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	straight := build("n0", "n1")
	swapped := build("n1", "n0")
	fp1, err := straight.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := swapped.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("fingerprint did not change when the DFF chain was rewired")
	}
}

func TestDFFNetlistFormatRoundTrip(t *testing.T) {
	c := toggler(t)
	text := Format(c)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing the formatted netlist: %v", err)
	}
	fp1, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("native-format round trip changed structure:\n%s", text)
	}
}

func TestDFFBenchRoundTrip(t *testing.T) {
	c := toggler(t)
	text, err := FormatBench(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchString(text)
	if err != nil {
		t.Fatalf("re-parsing the formatted bench: %v", err)
	}
	fp1, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf(".bench round trip changed structure:\n%s", text)
	}
}

func TestParseBenchMultiInputDFFError(t *testing.T) {
	_, err := ParseBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")
	if err == nil {
		t.Fatal("multi-input DFF accepted")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Fatalf("ParseError.Line = %d, want 4", pe.Line)
	}
	if pe.Construct == "" {
		t.Fatal("ParseError.Construct is empty; it should name the offending DFF")
	}
}
