package logic

import "fmt"

// Value is a three-valued logic level: 0, 1 or X (unknown/unassigned).
type Value uint8

// Logic values.
const (
	Zero Value = iota
	One
	X
)

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v))
	}
}

// MarshalText renders the value as "0"/"1"/"X" so JSON reports stay
// readable instead of exposing the raw uint8.
func (v Value) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses "0", "1", "X"/"x".
func (v *Value) UnmarshalText(b []byte) error {
	switch string(b) {
	case "0":
		*v = Zero
	case "1":
		*v = One
	case "X", "x":
		*v = X
	default:
		return fmt.Errorf("logic: bad value %q", b)
	}
	return nil
}

// Not returns the three-valued complement.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// IsKnown reports whether v is 0 or 1.
func (v Value) IsKnown() bool { return v == Zero || v == One }

// FromBool converts a bool to a Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// and3 is the n-ary three-valued AND.
func and3(vs []Value) Value {
	sawX := false
	for _, v := range vs {
		switch v {
		case Zero:
			return Zero
		case X:
			sawX = true
		case One:
			// Neutral for AND: contributes nothing.
		}
	}
	if sawX {
		return X
	}
	return One
}

// or3 is the n-ary three-valued OR.
func or3(vs []Value) Value {
	sawX := false
	for _, v := range vs {
		switch v {
		case One:
			return One
		case X:
			sawX = true
		case Zero:
			// Neutral for OR: contributes nothing.
		}
	}
	if sawX {
		return X
	}
	return Zero
}

// xor3 is the n-ary three-valued XOR (X-pessimistic).
func xor3(vs []Value) Value {
	p := Zero
	for _, v := range vs {
		if v == X {
			return X
		}
		if v == One {
			p = p.Not()
		}
	}
	return p
}
