package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements import/export of a small structural Verilog subset
// — the interchange format downstream users actually have netlists in.
// Supported: one module; `input`, `output`, `wire` declarations (comma
// lists); gate-primitive instantiations `nand g1 (out, in1, in2);` for
// not/buf/nand/nor/and/or/xor/xnor; `//` and `/* */` comments. Everything
// else is rejected with a line-numbered error.

var verilogPrimitives = map[string]GateType{
	"not": Inv, "buf": Buf, "nand": Nand, "nor": Nor,
	"and": And, "or": Or, "xor": Xor, "xnor": Xnor,
}

var verilogNames = map[GateType]string{
	Inv: "not", Buf: "buf", Nand: "nand", Nor: "nor",
	And: "and", Or: "or", Xor: "xor", Xnor: "xnor",
}

// ParseVerilog reads a structural Verilog module into a Circuit.
func ParseVerilog(r io.Reader) (*Circuit, error) {
	raw, err := io.ReadAll(bufio.NewReader(r))
	if err != nil {
		return nil, err
	}
	src := stripVerilogComments(string(raw))
	c := New("")
	sawModule := false
	sawEnd := false
	// Statements end with ';' except module/endmodule handling.
	rest := src
	line := func(s string) string { return strings.TrimSpace(s) }
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		// Keywords must match on token boundaries: "endmodulex" is an
		// identifier, not endmodule followed by garbage.
		if tok, _ := identToken(rest); tok == "endmodule" {
			sawEnd = true
			rest = rest[len("endmodule"):]
			continue
		}
		semi := strings.IndexByte(rest, ';')
		if semi < 0 {
			return nil, fmt.Errorf("verilog: unterminated statement near %q", trunc(rest))
		}
		stmt := line(rest[:semi])
		rest = rest[semi+1:]
		kw, tail := identToken(stmt)
		switch kw {
		case "module":
			if sawModule {
				return nil, fmt.Errorf("verilog: multiple modules are not supported")
			}
			sawModule = true
			header := strings.TrimSpace(tail)
			if i := strings.IndexByte(header, '('); i >= 0 {
				header = header[:i]
			}
			c.Name = strings.TrimSpace(header)
			if c.Name == "" || strings.ContainsAny(c.Name, " \t\n") {
				return nil, fmt.Errorf("verilog: bad module name %q", c.Name)
			}
		case "input":
			for _, n := range splitNames(tail) {
				if err := c.AddInput(n); err != nil {
					return nil, fmt.Errorf("verilog: %w", err)
				}
			}
		case "output":
			for _, n := range splitNames(tail) {
				c.AddOutput(n)
			}
		case "wire":
			// Declarations only; connectivity comes from the instances.
		default:
			f := strings.Fields(stmt)
			if len(f) < 2 {
				return nil, fmt.Errorf("verilog: cannot parse statement %q", trunc(stmt))
			}
			typ, ok := verilogPrimitives[f[0]]
			if !ok {
				return nil, fmt.Errorf("verilog: unsupported primitive or construct %q", f[0])
			}
			rest2 := strings.TrimSpace(stmt[len(f[0]):])
			open := strings.IndexByte(rest2, '(')
			closeP := strings.LastIndexByte(rest2, ')')
			if open < 0 || closeP < open {
				return nil, fmt.Errorf("verilog: malformed port list in %q", trunc(stmt))
			}
			name := strings.TrimSpace(rest2[:open])
			if name == "" {
				return nil, fmt.Errorf("verilog: unnamed gate instance in %q", trunc(stmt))
			}
			ports := splitNames(rest2[open+1 : closeP])
			if len(ports) < 2 {
				return nil, fmt.Errorf("verilog: gate %q needs an output and inputs", name)
			}
			if _, err := c.AddGate(name, typ, ports[0], ports[1:]...); err != nil {
				return nil, fmt.Errorf("verilog: %w", err)
			}
		}
	}
	if !sawModule {
		return nil, fmt.Errorf("verilog: no module declaration found")
	}
	if !sawEnd {
		return nil, fmt.Errorf("verilog: missing endmodule")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseVerilogString is ParseVerilog over a string.
func ParseVerilogString(s string) (*Circuit, error) {
	return ParseVerilog(strings.NewReader(s))
}

// FormatVerilog renders the circuit as a structural Verilog module. Gate
// types without a Verilog primitive (AOI21/OAI21) are rejected.
func FormatVerilog(c *Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	name := c.Name
	if name == "" {
		name = "top"
	}
	var ports []string
	ports = append(ports, c.Inputs...)
	ports = append(ports, c.Outputs...)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (%s);\n", name, strings.Join(ports, ", "))
	if len(c.Inputs) > 0 {
		fmt.Fprintf(&b, "  input %s;\n", strings.Join(c.Inputs, ", "))
	}
	if len(c.Outputs) > 0 {
		fmt.Fprintf(&b, "  output %s;\n", strings.Join(c.Outputs, ", "))
	}
	isPort := make(map[string]bool)
	for _, n := range ports {
		isPort[n] = true
	}
	var wires []string
	for _, g := range c.Gates {
		if !isPort[g.Output] {
			wires = append(wires, g.Output)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(&b, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for _, g := range c.Gates {
		prim, ok := verilogNames[g.Type]
		if !ok {
			return "", fmt.Errorf("verilog: gate %q type %v has no Verilog primitive", g.Name, g.Type)
		}
		fmt.Fprintf(&b, "  %s %s (%s, %s);\n", prim, g.Name, g.Output, strings.Join(g.Inputs, ", "))
	}
	b.WriteString("endmodule\n")
	return b.String(), nil
}

func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if n := strings.TrimSpace(part); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func stripVerilogComments(src string) string {
	var b strings.Builder
	for i := 0; i < len(src); {
		if strings.HasPrefix(src[i:], "//") {
			j := strings.IndexByte(src[i:], '\n')
			if j < 0 {
				break
			}
			i += j
			continue
		}
		if strings.HasPrefix(src[i:], "/*") {
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				return b.String() // unterminated: let the parser complain
			}
			i += 2 + j + 2
			b.WriteByte(' ')
			continue
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String()
}

// identToken splits the leading identifier off s (Verilog simple
// identifier characters: letters, digits, '_', '$'; no leading digit).
// tok is empty when s does not start with an identifier. Keyword
// dispatch goes through this so `inputs` or `endmodulex` is an ordinary
// identifier rather than a keyword with trailing garbage.
func identToken(s string) (tok, rest string) {
	i := 0
	for i < len(s) {
		c := s[i]
		isAlpha := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if isAlpha || (i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	return s[:i], s[i:]
}

func trunc(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
