package logic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const verilogXor = `// 4-NAND XOR
module xor4 (a, b, y);
  input a, b;
  output y;
  wire n1, n2, n3;
  nand g1 (n1, a, b);
  nand g2 (n2, a, n1);
  nand g3 (n3, b, n1);
  nand g4 (y, n2, n3);
endmodule
`

func TestParseVerilogXor(t *testing.T) {
	c, err := ParseVerilogString(verilogXor)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "xor4" || len(c.Gates) != 4 || len(c.Inputs) != 2 {
		t.Fatalf("structure: %s %d gates %d inputs", c.Name, len(c.Gates), len(c.Inputs))
	}
	tt := c.TruthTable("y")
	want := []Value{Zero, One, One, Zero}
	for i := range want {
		if tt[i] != want[i] {
			t.Fatalf("function wrong at %d", i)
		}
	}
}

func TestVerilogComments(t *testing.T) {
	src := `/* block
comment */ module m (a, y); // ports
  input a; output y;
  not g1 (y, a); /* inline */
endmodule`
	c, err := ParseVerilogString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Type != Inv {
		t.Fatalf("gates: %v", c.Gates)
	}
}

func TestVerilogErrors(t *testing.T) {
	bad := []string{
		"",                                     // no module
		"module m (a);\n input a;\n",           // missing endmodule
		"module m (); foo g (y, a); endmodule", // unknown primitive
		"module m (); nand (y, a, b); endmodule\nmodule n (); endmodule",  // unnamed + two modules
		"module m (a, y); input a; output y; nand g1 (y); endmodule",      // too few ports
		"module m (a, y); input a; output y; not g1 (y, a) endmodule",     // unterminated... ends up unsupported
		"module m (a, y); input a; output y; not g1 (y, zzz); endmodule",  // undriven
		"module m (a, y); input a, a; output y; not g1 (y, a); endmodule", // dup input
		"module (a, y); input a; output y; not g1 (y, a); endmodule",      // unnamed module
	}
	for _, src := range bad {
		if _, err := ParseVerilogString(src); err == nil {
			t.Errorf("accepted bad verilog %q", src)
		}
	}
}

// TestVerilogKeywordBoundaries: keywords must match whole tokens.
// `inputs a;` once parsed as an input declaration of a net "s a", and
// `modulexyz`, `output_reg`, `wires` were all swallowed as keyword
// statements; they are unsupported constructs and must be rejected.
func TestVerilogKeywordBoundaries(t *testing.T) {
	bad := map[string]string{
		"inputs":     "module m (a, y); inputs a; output y; not g1 (y, a); endmodule",
		"output_reg": "module m (a, y); input a; output_reg y; not g1 (y, a); endmodule",
		"modulexyz":  "modulexyz (a, y); input a; output y; not g1 (y, a); endmodule",
		"wires":      "module m (a, y); input a; output y; wires n1; not g1 (y, a); endmodule",
		"endmodulex": "module m (a, y); input a; output y; not g1 (y, a); endmodulex",
	}
	for name, src := range bad {
		if _, err := ParseVerilogString(src); err == nil {
			t.Errorf("%s: accepted bad verilog %q", name, src)
		}
	}
	// Keyword-prefixed identifiers in identifier positions stay legal.
	good := `module m (input1, wire2); input input1; output wire2;
	  not endmodule_g (wire2, input1); endmodule`
	c, err := ParseVerilogString(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Name != "endmodule_g" {
		t.Fatalf("gates: %v", c.Gates)
	}
}

func TestFormatVerilogRoundTrip(t *testing.T) {
	c, err := ParseVerilogString(verilogXor)
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatVerilog(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilogString(out)
	if err != nil {
		t.Fatalf("formatted Verilog does not re-parse: %v\n%s", err, out)
	}
	a, b := c.TruthTable("y"), back.TruthTable("y")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed function at %d", i)
		}
	}
	if !strings.Contains(out, "wire n1, n2, n3;") {
		t.Fatalf("wires not declared:\n%s", out)
	}
}

func TestFormatVerilogRejectsAOI(t *testing.T) {
	c := New("m")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInput("d"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", Aoi21, "y", "a", "b", "d")
	c.AddOutput("y")
	if _, err := FormatVerilog(c); err == nil {
		t.Fatal("AOI21 export should fail (no Verilog primitive)")
	}
}

// TestQuickVerilogRoundTrip: random primitive circuits survive a Verilog
// export/import cycle with structure and function intact.
func TestQuickVerilogRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(20), Primitive: true})
		out, err := FormatVerilog(c)
		if err != nil {
			return false
		}
		back, err := ParseVerilogString(out)
		if err != nil {
			return false
		}
		if len(back.Gates) != len(c.Gates) || len(back.Inputs) != len(c.Inputs) ||
			len(back.Outputs) != len(c.Outputs) {
			return false
		}
		if len(c.Inputs) <= 10 {
			for _, po := range c.Outputs {
				a, b := c.TruthTable(po), back.TruthTable(po)
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
