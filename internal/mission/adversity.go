package mission

import (
	"fmt"
	"strconv"
	"strings"
)

// Adversity parameterizes the operational hazards injected into a
// campaign: the concurrent test policy of the paper assumes every test
// interval runs on time and every failing signature is captured; a
// fielded system gets neither. All times are simulated seconds.
type Adversity struct {
	// SkipProb is the probability a scheduled test interval is skipped
	// entirely (the system was busy and the BIST slot was forfeited).
	SkipProb float64
	// LateProb is the probability a test interval slips, and LateFrac is
	// the slip as a fraction of the test period.
	LateProb float64
	LateFrac float64
	// MissProb is the per-attempt probability of a transient
	// signature-capture miss; a missed capture is retried after
	// RetryBackoff simulated seconds, doubling per retry, at most
	// MaxRetries times per fault.
	MissProb     float64
	MaxRetries   int
	RetryBackoff float64
	// DiagTimePerCand is the diagnosis cost per candidate defect in the
	// dictionary class of the captured signature: ambiguous diagnoses
	// delay the repair proportionally.
	DiagTimePerCand float64
	// RepairTime is the time from a completed diagnosis to a completed
	// repair (spare row/column swap-in).
	RepairTime float64
	// Spares is the per-chip repair resource budget; a detection with no
	// spare left puts the chip into degraded mode (the defect stays,
	// tracked as unrepaired). Negative means unlimited.
	Spares int
}

// Off is the zero-adversity profile: every test runs on time, every
// capture succeeds, diagnosis and repair are instant, spares unlimited.
func Off() Adversity { return Adversity{Spares: -1} }

// Light is a mildly hostile profile: occasional skipped or late
// intervals, rare capture misses with generous retry budget, unlimited
// spares.
func Light() Adversity {
	return Adversity{
		SkipProb: 0.05, LateProb: 0.10, LateFrac: 0.25,
		MissProb: 0.05, MaxRetries: 3, RetryBackoff: 60,
		DiagTimePerCand: 10, RepairTime: 300,
		Spares: -1,
	}
}

// Heavy is a hostile profile: frequent schedule disruption, lossy
// signature capture with a tight retry budget, slow diagnosis and
// repair, and only two spares per chip.
func Heavy() Adversity {
	return Adversity{
		SkipProb: 0.20, LateProb: 0.30, LateFrac: 0.50,
		MissProb: 0.25, MaxRetries: 2, RetryBackoff: 120,
		DiagTimePerCand: 30, RepairTime: 900,
		Spares: 2,
	}
}

// ParseAdversity parses a profile spec: "off", "light", "heavy", or a
// comma-separated key=value list overriding the off profile, e.g.
// "miss=0.1,retries=4,backoff=30,spares=1". Keys: skip, late, latefrac,
// miss, retries, backoff, diagtime, repairtime, spares.
func ParseAdversity(spec string) (Adversity, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "off", "none":
		return Off(), nil
	case "light":
		return Light(), nil
	case "heavy":
		return Heavy(), nil
	}
	adv := Off()
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return adv, fmt.Errorf("mission: adversity term %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return adv, fmt.Errorf("mission: adversity %s: %v", k, err)
		}
		switch strings.ToLower(k) {
		case "skip":
			adv.SkipProb = f
		case "late":
			adv.LateProb = f
		case "latefrac":
			adv.LateFrac = f
		case "miss":
			adv.MissProb = f
		case "retries":
			adv.MaxRetries = int(f)
		case "backoff":
			adv.RetryBackoff = f
		case "diagtime":
			adv.DiagTimePerCand = f
		case "repairtime":
			adv.RepairTime = f
		case "spares":
			adv.Spares = int(f)
		default:
			return adv, fmt.Errorf("mission: unknown adversity key %q", k)
		}
	}
	return adv.validate()
}

// validate rejects out-of-range probabilities.
func (a Adversity) validate() (Adversity, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"skip", a.SkipProb}, {"late", a.LateProb}, {"miss", a.MissProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return a, fmt.Errorf("mission: adversity %s=%g outside [0,1)", p.name, p.v)
		}
	}
	if a.LateFrac < 0 || a.MaxRetries < 0 || a.RetryBackoff < 0 ||
		a.DiagTimePerCand < 0 || a.RepairTime < 0 {
		return a, fmt.Errorf("mission: negative adversity parameter")
	}
	return a, nil
}
