package mission

import "container/heap"

// The per-chip simulator is a discrete-event loop over simulated time.
// Ties are broken by (kind, fault ordinal) so the replay order is a pure
// function of the chip's draws: a repair completing at the instant of a
// test lands first, an HBD crossing at the instant of a test wins the
// race (the paper's window is half-open — detection strictly before hard
// breakdown), and retries run after the periodic test of the same
// instant.

type eventKind int

const (
	evRepair eventKind = iota // repair completes for fault idx
	evHBD                     // fault idx crosses into hard breakdown
	evTest                    // a periodic BIST interval runs (idx unused)
	evRetry                   // bounded-backoff capture retry for fault idx
)

type event struct {
	t    float64
	kind eventKind
	idx  int // fault ordinal for evRepair/evHBD/evRetry; -1 for evTest
}

// before is the deterministic total order of the event queue.
func (e event) before(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	return e.idx < o.idx
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].before(q[j]) }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *eventQueue) push(e event)      { heap.Push(q, e) }
func (q *eventQueue) pop() event        { return heap.Pop(q).(event) }
