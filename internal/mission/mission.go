// Package mission is a deterministic, seeded discrete-event simulator of
// a chip population running the paper's concurrent test/diagnose/repair
// loop in the field. OBD defects initiate at random (seeded) times on
// random transistor sites and progress from soft toward hard breakdown
// per obd.Progression; a periodic BIST policy — its period derived from
// sched.Window.MaxTestPeriod — must detect each defect while it is
// observable, diagnose it against a diag.Dictionary, and swap in a spare
// before the defect crosses HBD. Injected adversity (skipped and late
// intervals, transient signature-capture misses with bounded backoff,
// diagnosis ambiguity, exhausted repair resources) turns the idealized
// policy of the paper into a mission whose escapes can be counted.
//
// The campaign fans the chip population out over an atpg.Scheduler and
// is bit-identical for any worker count: all randomness comes from keyed
// splitmix64 streams (see rng.go), simulated time never reads the wall
// clock, and per-chip results are committed to index-stable slots.
package mission

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gobd/internal/atpg"
	"gobd/internal/bist"
	"gobd/internal/diag"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/obd"
	"gobd/internal/sched"
	"gobd/internal/spice"
)

// Config parameterizes a campaign. All times are simulated seconds.
type Config struct {
	// Circuit is the unit under concurrent test.
	Circuit *logic.Circuit
	// Seed drives every random draw of the campaign.
	Seed uint64
	// Chips is the population size.
	Chips int
	// Duration is the mission length.
	Duration float64
	// Period is the test interval; 0 derives the largest safe period from
	// the observability window (sched.Window.MaxTestPeriod).
	Period float64
	// FaultRate is the expected number of defect initiations per chip
	// over the mission (Poisson).
	FaultRate float64
	// BISTCycles is the length of the LFSR stream each interval applies.
	BISTCycles int
	// Adversity is the hazard profile.
	Adversity Adversity
	// IncludeUndetectable also injects defects the BIST stream cannot
	// detect (aliased or never-excited sites); they are reported as
	// structural escapes instead of silently excluded.
	IncludeUndetectable bool
	// RecordPerChip keeps every chip's ChipResult in the report.
	RecordPerChip bool
	// Scheduler shards the population; nil uses the package default.
	Scheduler *atpg.Scheduler
}

// maxTestEvents bounds Duration/Period so a mistyped flag cannot ask for
// a billion-event schedule.
const maxTestEvents = 5_000_000

// bench is the per-circuit precomputation shared read-only by every
// chip worker: BIST detectability, the diagnosis dictionary, and the
// side-dependent observability window of the progression model.
type bench struct {
	c        *logic.Circuit
	universe []fault.OBD
	pairs    []atpg.TwoPattern
	detect   []bool       // universe-indexed: non-aliased BIST detection
	cands    []int        // universe-indexed: diagnosis candidates for the site's signature
	inject   []int        // universe indices eligible for injection
	obsStart [2]float64   // fault.Side-indexed: time after initiation the defect becomes observable (MBD2)
	hbdAt    [2]float64   // fault.Side-indexed: time after initiation of hard breakdown
	window   sched.Window // tightest observability window across sides
}

// Campaign is a configured, reusable mission simulation.
type Campaign struct {
	cfg Config
	b   *bench
	// testHook, when set (tests only), runs at the start of each chip's
	// simulation; it is the injection point for worker-panic tests.
	testHook func(chip int)
}

// polarity maps a defect side to the broken transistor's polarity: a
// pull-up defect breaks a PMOS device, a pull-down defect an NMOS one.
func polarity(s fault.Side) spice.MOSPolarity {
	if s == fault.PullUp {
		return spice.PMOS
	}
	return spice.NMOS
}

// New validates the configuration and precomputes the shared bench.
func New(cfg Config) (*Campaign, error) {
	if cfg.Circuit == nil {
		return nil, fmt.Errorf("mission: nil circuit")
	}
	if err := cfg.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("mission: %w", err)
	}
	if cfg.Chips <= 0 {
		return nil, fmt.Errorf("mission: Chips = %d, need > 0", cfg.Chips)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("mission: Duration = %g, need > 0", cfg.Duration)
	}
	if cfg.FaultRate < 0 || cfg.FaultRate > 100 {
		return nil, fmt.Errorf("mission: FaultRate = %g outside [0, 100]", cfg.FaultRate)
	}
	if cfg.BISTCycles == 0 {
		cfg.BISTCycles = 64
	}
	if cfg.BISTCycles < 2 {
		return nil, fmt.Errorf("mission: BISTCycles = %d, need >= 2", cfg.BISTCycles)
	}
	if _, err := cfg.Adversity.validate(); err != nil {
		return nil, err
	}
	b, err := buildBench(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Period == 0 {
		cfg.Period = b.window.MaxTestPeriod()
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("mission: Period = %g, need > 0", cfg.Period)
	}
	if cfg.Duration/cfg.Period > maxTestEvents {
		return nil, fmt.Errorf("mission: %g test intervals exceed the %d-event bound",
			cfg.Duration/cfg.Period, maxTestEvents)
	}
	return &Campaign{cfg: cfg, b: b}, nil
}

// Config returns the resolved configuration (defaults applied).
func (m *Campaign) Config() Config { return m.cfg }

// Window returns the tightest observability window the test period must
// beat: Start is the MBD2 onset after initiation, End the HBD crossing.
func (m *Campaign) Window() sched.Window { return m.b.window }

// buildBench runs the BIST stream against the fault universe once and
// derives the observability windows from the progression model.
func buildBench(cfg *Config) (*bench, error) {
	c := cfg.Circuit
	universe, _ := fault.OBDUniverse(c)
	if len(universe) == 0 {
		return nil, fmt.Errorf("mission: circuit %q has no OBD fault sites", c.Name)
	}
	// The BIST stream is a function of the campaign seed, so two
	// campaigns with the same seed test with the same patterns.
	session, err := bist.NewSession(c, mix(cfg.Seed+0xB157), cfg.BISTCycles)
	if err != nil {
		return nil, fmt.Errorf("mission: %w", err)
	}
	golden, err := session.GoldenSignature()
	if err != nil {
		return nil, fmt.Errorf("mission: %w", err)
	}
	results, err := session.RunFaults(universe, golden, cfg.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("mission: %w", err)
	}
	b := &bench{
		c:        c,
		universe: universe,
		pairs:    session.Pairs(),
		detect:   make([]bool, len(universe)),
		cands:    make([]int, len(universe)),
	}
	dict := diag.Build(c, universe, b.pairs)
	for i, r := range results {
		b.detect[i] = r.DetectedCycles > 0 && !r.Aliased
		if b.detect[i] {
			obs := diag.SimulateResponse(c, universe[i], b.pairs)
			cands, _, err := dict.Diagnose(obs)
			if err != nil {
				return nil, fmt.Errorf("mission: diagnosing %s: %w", universe[i], err)
			}
			b.cands[i] = len(cands)
		}
		if b.detect[i] || cfg.IncludeUndetectable {
			b.inject = append(b.inject, i)
		}
	}
	if len(b.inject) == 0 {
		return nil, fmt.Errorf("mission: no BIST-detectable OBD site in %q (%d-cycle stream); raise BISTCycles or set IncludeUndetectable", c.Name, cfg.BISTCycles)
	}
	// Observability windows per side from the progression model: the
	// defect's delay contribution is taken as test-observable from the
	// MBD2 stage onward, and the mission is lost at hard breakdown.
	for _, side := range []fault.Side{fault.PullUp, fault.PullDown} {
		prog := obd.NewProgression(polarity(side)) //obdcheck:allow paniccontract — polarity() returns only the two defined MOS polarities, whose default progressions visit only defined stages
		st := prog.StageTimes()                    //obdcheck:allow paniccontract — same contract: the default progression's stages are all Table 1 rows
		b.obsStart[side] = st[obd.MBD2]
		b.hbdAt[side] = st[obd.HBD]
	}
	// The paper's scheduling rule wants the test period at most half the
	// detectable window; take the tightest window across sides.
	b.window = sched.Window{Detectable: true}
	for _, side := range []fault.Side{fault.PullUp, fault.PullDown} {
		w := sched.Window{Detectable: true, Start: b.obsStart[side], End: b.hbdAt[side]}
		if !b.window.Detectable || b.window.Length() == 0 || w.Length() < b.window.Length() {
			b.window = w
		}
	}
	return b, nil
}

// chipFault is one defect instance on one chip.
type chipFault struct {
	site    int // index into bench.universe
	initAt  float64
	obsAt   float64 // initAt + obsStart(side): first test-observable instant
	hbdAt   float64 // initAt + window(side): hard-breakdown crossing
	state   faultState
	retries int
	miss    *stream // per-fault capture-miss stream, immune to interleaving
	detAt   float64
	repAt   float64
}

type faultState int

const (
	statePending    faultState = iota // latent or observable, not yet captured
	stateDetected                     // captured; diagnosis/repair in flight
	stateRepaired                     // spare swapped in before HBD
	stateEscaped                      // crossed HBD undetected
	stateUnrepaired                   // captured but no spare left: degraded
)

// simulateChip replays one chip's mission. It is a pure function of
// (cfg, bench, chip): no wall clock, no shared mutable state.
func simulateChip(cfg *Config, b *bench, chip int) ChipResult {
	res := ChipResult{Chip: chip}
	adv := cfg.Adversity

	// Defect initiations: count, sites and times from the chip stream.
	chipRng := newStream(cfg.Seed, uint64(chip), 1)
	n := chipRng.poisson(cfg.FaultRate)
	faults := make([]*chipFault, n)
	for j := range faults {
		site := b.inject[chipRng.intn(len(b.inject))]
		initAt := chipRng.float64() * cfg.Duration
		side := b.universe[site].Side
		faults[j] = &chipFault{
			site:   site,
			initAt: initAt,
			obsAt:  initAt + b.obsStart[side],
			hbdAt:  initAt + b.hbdAt[side],
			miss:   newStream(cfg.Seed, uint64(chip), 2, uint64(j)),
		}
	}
	res.Faults = n

	var q eventQueue
	// The test schedule: skip/late draws consumed in interval order from
	// a dedicated stream, so the schedule is independent of the defects.
	schedRng := newStream(cfg.Seed, uint64(chip), 3)
	for k := 1; float64(k)*cfg.Period <= cfg.Duration; k++ {
		t := float64(k) * cfg.Period
		if adv.SkipProb > 0 && schedRng.float64() < adv.SkipProb {
			res.SkippedTests++
			continue
		}
		if adv.LateProb > 0 && schedRng.float64() < adv.LateProb {
			t += adv.LateFrac * cfg.Period
			res.LateTests++
		}
		if t <= cfg.Duration {
			q.push(event{t: t, kind: evTest, idx: -1})
		}
	}
	spares := adv.Spares
	for j, f := range faults {
		if f.hbdAt <= cfg.Duration {
			q.push(event{t: f.hbdAt, kind: evHBD, idx: j})
		}
	}

	attempt := func(f *chipFault, j int, t float64) {
		if adv.MissProb > 0 && f.miss.float64() < adv.MissProb {
			if f.retries < adv.MaxRetries {
				f.retries++
				res.Retries++
				backoff := adv.RetryBackoff * float64(uint64(1)<<uint(f.retries-1))
				q.push(event{t: t + backoff, kind: evRetry, idx: j})
			}
			return
		}
		f.state = stateDetected
		f.detAt = t
		res.Detected++
		res.Latencies = append(res.Latencies, t-f.obsAt)
		res.Margins = append(res.Margins, f.hbdAt-t)
		nCands := b.cands[f.site]
		if nCands > 1 {
			res.Ambiguous++
		}
		done := t + adv.DiagTimePerCand*float64(nCands) + adv.RepairTime
		if spares == 0 {
			f.state = stateUnrepaired
			res.Degraded = true
			return
		}
		if spares > 0 {
			spares--
		}
		f.repAt = done
		q.push(event{t: done, kind: evRepair, idx: j})
	}

	for q.Len() > 0 {
		e := q.pop()
		switch e.kind {
		case evTest:
			for j, f := range faults {
				if f.state != statePending {
					continue
				}
				if e.t < f.obsAt || e.t >= f.hbdAt || !b.detect[f.site] {
					continue
				}
				attempt(f, j, e.t)
			}
		case evRetry:
			f := faults[e.idx]
			if f.state == statePending && e.t < f.hbdAt {
				attempt(f, e.idx, e.t)
			}
		case evHBD:
			f := faults[e.idx]
			switch f.state {
			case statePending:
				f.state = stateEscaped
				res.Escapes++
				if !b.detect[f.site] {
					res.StructuralEscapes++
				}
			case stateDetected:
				if f.repAt > f.hbdAt {
					res.LateRepairs++
				}
			default:
				// stateRepaired/stateUnrepaired: the breakdown was already
				// resolved (or accounted as degraded) before its HBD instant;
				// stateEscaped cannot recur — each fault has one evHBD event.
			}
		case evRepair:
			f := faults[e.idx]
			if f.state == stateDetected {
				f.state = stateRepaired
				res.Repaired++
			}
		}
	}
	for _, f := range faults {
		if f.state == statePending && f.hbdAt > cfg.Duration {
			res.ActiveAtEnd++
		}
	}
	return res
}

// Run executes the campaign, fanning the chip population out over the
// scheduler. The report is bit-identical for any worker count. A chip
// whose simulation panics is confined to a typed per-chip error in the
// report without perturbing the other chips; ctx cancellation returns
// promptly with ctx's error and a report covering the completed
// deterministic prefix.
func (m *Campaign) Run(ctx context.Context) (*Report, error) {
	s := m.cfg.Scheduler
	if s == nil {
		s = atpg.DefaultScheduler()
	}
	results := make([]ChipResult, m.cfg.Chips)
	rep := s.ForEachCtx(ctx, m.cfg.Chips, func(i int) error {
		if m.testHook != nil {
			m.testHook(i)
		}
		results[i] = simulateChip(&m.cfg, m.b, i)
		return nil
	})
	report := aggregate(&m.cfg, m.b, results, rep)
	return report, rep.Err
}

// SimulateRange simulates the chip interval [lo, hi) of the population
// and returns the per-chip results in chip order. Each chip is a pure
// function of (config, bench, chip index), so a campaign can be split
// into arbitrary ranges — across calls, goroutines or process restarts
// — and stitched back together with Aggregate into a report
// bit-identical to an uninterrupted Run. This is the checkpoint surface
// of the durable job runtime (internal/jobs): a crashed campaign
// resumes at the last committed chip boundary.
//
// A chip whose simulation panics is confined to a ChipFailure (its
// result slot stays zero and must be excluded from aggregation, which
// Aggregate does). Cancelling ctx abandons the range with ctx's error;
// no partial range is returned.
func (m *Campaign) SimulateRange(ctx context.Context, lo, hi int) ([]ChipResult, []ChipFailure, error) {
	if lo < 0 || hi > m.cfg.Chips || lo > hi {
		return nil, nil, fmt.Errorf("mission: chip range [%d, %d) outside population [0, %d)", lo, hi, m.cfg.Chips)
	}
	s := m.cfg.Scheduler
	if s == nil {
		s = atpg.DefaultScheduler()
	}
	results := make([]ChipResult, hi-lo)
	rep := s.ForEachCtx(ctx, hi-lo, func(k int) error {
		chip := lo + k
		if m.testHook != nil {
			m.testHook(chip)
		}
		results[k] = simulateChip(&m.cfg, m.b, chip)
		return nil
	})
	if rep.Err != nil {
		return nil, nil, rep.Err
	}
	var failed []ChipFailure
	for _, e := range rep.Errors {
		failed = append(failed, ChipFailure{Chip: lo + e.Index, Error: e.Err.Error()})
	}
	return results, failed, nil
}

// Aggregate folds externally accumulated per-chip results — typically
// SimulateRange outputs stitched across checkpoints — into a campaign
// Report. results must cover the whole population in chip order; failed
// names the chips whose simulation failed (their slots are excluded,
// exactly as Run excludes them). For a complete, failure-free result
// set the report is bit-identical to Run's; with failures, the
// JSON-visible fields (including Failed) still match Run, while the
// unserialized Errors field carries reconstructed errors that preserve
// only the failure text.
func (m *Campaign) Aggregate(results []ChipResult, failed []ChipFailure) (*Report, error) {
	if len(results) != m.cfg.Chips {
		return nil, fmt.Errorf("mission: %d results for a %d-chip campaign", len(results), m.cfg.Chips)
	}
	rep := &atpg.RunReport{N: m.cfg.Chips, Done: make([]bool, m.cfg.Chips)}
	for i := range rep.Done {
		rep.Done[i] = true
	}
	sorted := append([]ChipFailure(nil), failed...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Chip < sorted[b].Chip })
	for _, f := range sorted {
		if f.Chip < 0 || f.Chip >= m.cfg.Chips {
			return nil, fmt.Errorf("mission: failure for chip %d outside population [0, %d)", f.Chip, m.cfg.Chips)
		}
		rep.Errors = append(rep.Errors, &atpg.ItemError{Index: f.Chip, Err: errors.New(f.Error)})
	}
	return aggregate(&m.cfg, m.b, results, rep), nil
}
