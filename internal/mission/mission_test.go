package mission

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/logic"
	"gobd/internal/obd"
)

func baseConfig() Config {
	return Config{
		Circuit:       cells.FullAdderSumLogic(),
		Seed:          42,
		Chips:         40,
		Duration:      5 * obd.DefaultWindow,
		FaultRate:     3,
		Adversity:     Off(),
		RecordPerChip: true,
	}
}

// TestCampaignDeterminismAcrossWorkers: the acceptance property of the
// mission runtime — the full report (per-chip included) is bit-identical
// for worker counts {1, 2, 8} and across re-runs with the same seed.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	for _, adv := range []Adversity{Off(), Light(), Heavy()} {
		cfg := baseConfig()
		cfg.Adversity = adv
		cfg.Scheduler = atpg.NewScheduler(1)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if want.Faults == 0 {
			t.Fatal("campaign injected no faults; the property test is vacuous")
		}
		for _, w := range []int{1, 2, 8} {
			cfg := cfg
			cfg.Scheduler = atpg.NewScheduler(w)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for run := 0; run < 2; run++ {
				got, err := m.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("adversity %+v workers=%d run=%d: report diverges\n got %+v\nwant %+v",
						adv, w, run, got, want)
				}
			}
		}
	}
}

// TestCampaignZeroEscapesWithoutAdversity: with the test period at the
// sched.Window.MaxTestPeriod bound and adversity off, every injected
// defect is caught before hard breakdown — the paper's concurrent-test
// guarantee, end to end.
func TestCampaignZeroEscapesWithoutAdversity(t *testing.T) {
	cfg := baseConfig()
	cfg.Chips = 60
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Config().Period, m.Window().MaxTestPeriod(); got != want {
		t.Fatalf("default period %g, want MaxTestPeriod %g", got, want)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Fatal("no faults injected")
	}
	if rep.Escapes != 0 {
		t.Fatalf("%d escapes with period <= MaxTestPeriod and adversity off", rep.Escapes)
	}
	if rep.Detected+rep.ActiveAtEnd != rep.Faults {
		t.Fatalf("accounting: %d detected + %d latent != %d faults",
			rep.Detected, rep.ActiveAtEnd, rep.Faults)
	}
	if rep.Repaired != rep.Detected {
		t.Fatalf("with unlimited spares %d detected but %d repaired", rep.Detected, rep.Repaired)
	}
	if rep.Retries != 0 || rep.SkippedTests != 0 || rep.AmbiguousDiagnoses < 0 {
		t.Fatalf("adversity off produced retries/skips: %+v", rep)
	}
	if rep.Latency.Count != rep.Detected || rep.Latency.Max > rep.Period {
		t.Fatalf("latency stats inconsistent: %+v (period %g)", rep.Latency, rep.Period)
	}
	if rep.MinMargin <= 0 {
		t.Fatalf("a detection had no margin before HBD: %g", rep.MinMargin)
	}
}

// TestCampaignAdversityCausesEscapes: a period beyond the bound plus a
// hostile profile must produce escapes and retries — the runtime
// actually injects the hazards it claims to.
func TestCampaignAdversityCausesEscapes(t *testing.T) {
	cfg := baseConfig()
	cfg.Chips = 60
	cfg.Adversity = Heavy()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Period = 1.5 * m.Window().MaxTestPeriod()
	m, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escapes == 0 {
		t.Fatal("heavy adversity with an oversized period produced zero escapes")
	}
	if rep.Retries == 0 || rep.SkippedTests == 0 {
		t.Fatalf("heavy adversity produced no retries/skips: %+v", rep)
	}
	if rep.DegradedChips == 0 {
		t.Fatal("two spares per chip never exhausted over 60 chips")
	}
}

// TestCampaignWorkerPanicConfined: a panicking chip worker becomes a
// typed per-chip error; the other chips' results are byte-identical to
// a clean run's.
func TestCampaignWorkerPanicConfined(t *testing.T) {
	cfg := baseConfig()
	cfg.Scheduler = atpg.NewScheduler(4)
	clean, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.testHook = func(chip int) {
		if chip == 7 {
			panic("chip 7 model corrupted")
		}
	}
	got, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("a confined panic must not fail the run: %v", err)
	}
	if len(got.Errors) != 1 || got.Errors[0].Index != 7 {
		t.Fatalf("errors %+v, want exactly chip 7", got.Failed)
	}
	var pe *atpg.PanicError
	if !errors.As(got.Errors[0].Err, &pe) {
		t.Fatalf("chip 7 error %v is not a *atpg.PanicError", got.Errors[0].Err)
	}
	if got.Complete != cfg.Chips-1 {
		t.Fatalf("complete %d, want %d", got.Complete, cfg.Chips-1)
	}
	// Every committed chip matches the clean run exactly.
	wantByChip := map[int]ChipResult{}
	for _, c := range want.PerChip {
		wantByChip[c.Chip] = c
	}
	for _, c := range got.PerChip {
		if c.Chip == 7 {
			t.Fatal("failed chip leaked into PerChip")
		}
		if !reflect.DeepEqual(c, wantByChip[c.Chip]) {
			t.Fatalf("chip %d perturbed by the panic:\n got %+v\nwant %+v", c.Chip, c, wantByChip[c.Chip])
		}
	}
}

// TestCampaignCancellation: a cancelled campaign returns promptly with
// ctx's error and a report whose committed chips form a deterministic
// prefix of the uncancelled campaign.
func TestCampaignCancellation(t *testing.T) {
	cfg := baseConfig()
	cfg.Chips = 64
	cfg.Scheduler = atpg.NewScheduler(2)
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired bool
	m.testHook = func(chip int) {
		if !fired && chip >= 10 {
			fired = true
			cancel()
		}
	}
	got, err := m.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !got.Cancelled {
		t.Fatal("report not marked cancelled")
	}
	if got.Complete >= cfg.Chips {
		t.Fatal("cancellation did not cut the campaign")
	}
	wantByChip := map[int]ChipResult{}
	for _, c := range want.PerChip {
		wantByChip[c.Chip] = c
	}
	for _, c := range got.PerChip {
		if !reflect.DeepEqual(c, wantByChip[c.Chip]) {
			t.Fatalf("chip %d of the cancelled prefix diverges", c.Chip)
		}
	}
	cancel()
}

// TestParseAdversity covers the profile specs and rejection paths.
func TestParseAdversity(t *testing.T) {
	for _, spec := range []string{"off", "", "light", "heavy"} {
		if _, err := ParseAdversity(spec); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
	}
	adv, err := ParseAdversity("miss=0.1,retries=4,backoff=30,spares=1,skip=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if adv.MissProb != 0.1 || adv.MaxRetries != 4 || adv.RetryBackoff != 30 ||
		adv.Spares != 1 || adv.SkipProb != 0.02 {
		t.Fatalf("custom spec parsed as %+v", adv)
	}
	for _, bad := range []string{"nope=1", "miss", "miss=x", "miss=1.5", "skip=-0.1"} {
		if _, err := ParseAdversity(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// TestNewRejects covers configuration validation.
func TestNewRejects(t *testing.T) {
	good := baseConfig()
	cases := []func(*Config){
		func(c *Config) { c.Circuit = nil },
		func(c *Config) { c.Chips = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.FaultRate = -1 },
		func(c *Config) { c.FaultRate = 1000 },
		func(c *Config) { c.BISTCycles = 1 },
		func(c *Config) { c.Period = -5 },
		func(c *Config) { c.Period = 1e-6 }, // blows the event bound
		func(c *Config) { c.Adversity.MissProb = 2 },
	}
	for i, mod := range cases {
		cfg := good
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	bad := &logic.Circuit{Name: "empty"}
	cfg := good
	cfg.Circuit = bad
	if _, err := New(cfg); err == nil {
		t.Fatal("unvalidatable circuit accepted")
	}
}

// TestIncludeUndetectableReportsStructuralEscapes: with undetectable
// sites injectable and a tiny BIST stream, escapes at HBD are split out
// as structural.
func TestIncludeUndetectableReportsStructuralEscapes(t *testing.T) {
	cfg := baseConfig()
	cfg.Chips = 80
	cfg.BISTCycles = 2 // nearly blind stream: most sites undetectable
	cfg.IncludeUndetectable = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StructuralEscapes == 0 {
		t.Fatalf("no structural escapes despite a blind stream: %+v", rep)
	}
	if rep.StructuralEscapes > rep.Escapes {
		t.Fatalf("structural escapes %d exceed total escapes %d", rep.StructuralEscapes, rep.Escapes)
	}
}

// BenchmarkMissionCampaign measures campaign wall time across worker
// counts. On single-CPU CI the sweep shows overhead, not speedup; see
// EXPERIMENTS.md.
func BenchmarkMissionCampaign(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName(w), func(b *testing.B) {
			cfg := baseConfig()
			cfg.Chips = 200
			cfg.Adversity = Light()
			cfg.RecordPerChip = false
			cfg.Scheduler = atpg.NewScheduler(w)
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(w int) string {
	return "workers=" + string(rune('0'+w))
}
