package mission

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"gobd/internal/atpg"
)

// ChipResult is one chip's mission outcome. Latencies (capture instant
// minus first-observable instant) and Margins (HBD crossing minus
// capture instant) are in simulated seconds, in capture order.
type ChipResult struct {
	Chip              int       `json:"chip"`
	Faults            int       `json:"faults"`
	Detected          int       `json:"detected"`
	Repaired          int       `json:"repaired"`
	Escapes           int       `json:"escapes"`
	StructuralEscapes int       `json:"structural_escapes,omitempty"`
	LateRepairs       int       `json:"late_repairs,omitempty"`
	ActiveAtEnd       int       `json:"active_at_end,omitempty"`
	Retries           int       `json:"retries,omitempty"`
	SkippedTests      int       `json:"skipped_tests,omitempty"`
	LateTests         int       `json:"late_tests,omitempty"`
	Ambiguous         int       `json:"ambiguous_diagnoses,omitempty"`
	Degraded          bool      `json:"degraded,omitempty"`
	Latencies         []float64 `json:"latencies,omitempty"`
	Margins           []float64 `json:"margins,omitempty"`
}

// LatencyStats summarizes the detection-latency distribution.
type LatencyStats struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// ChipFailure is the JSON-friendly face of a per-chip worker error.
type ChipFailure struct {
	Chip  int    `json:"chip"`
	Error string `json:"error"`
}

// Report is the aggregated campaign outcome. It contains no wall-clock
// or worker-count dependent field, so two runs of the same seeded
// campaign compare equal with reflect.DeepEqual whatever the pool size.
type Report struct {
	Seed     uint64  `json:"seed"`
	Chips    int     `json:"chips"`
	Complete int     `json:"complete"` // chips whose simulation committed
	Duration float64 `json:"duration"`
	Period   float64 `json:"period"`
	// MaxTestPeriod is the sched.Window bound the period must respect for
	// the zero-escape guarantee, and Margin is Period's headroom under it.
	MaxTestPeriod float64 `json:"max_test_period"`

	Faults             int `json:"faults"`
	Detected           int `json:"detected"`
	Repaired           int `json:"repaired"`
	Escapes            int `json:"escapes"`
	StructuralEscapes  int `json:"structural_escapes,omitempty"`
	LateRepairs        int `json:"late_repairs,omitempty"`
	ActiveAtEnd        int `json:"active_at_end,omitempty"`
	Retries            int `json:"retries,omitempty"`
	SkippedTests       int `json:"skipped_tests,omitempty"`
	LateTests          int `json:"late_tests,omitempty"`
	AmbiguousDiagnoses int `json:"ambiguous_diagnoses,omitempty"`
	DegradedChips      int `json:"degraded_chips,omitempty"`

	Latency LatencyStats `json:"latency"`
	// MinMargin is the smallest HBD-crossing margin of any detection; a
	// campaign that ever detects with MinMargin near zero is one missed
	// interval from an escape. NaN-free: zero when nothing was detected.
	MinMargin float64 `json:"min_margin"`

	// Failed lists chips whose worker failed (e.g. a confined panic);
	// Errors carries the typed per-chip errors for programmatic use.
	Failed []ChipFailure     `json:"failed,omitempty"`
	Errors []*atpg.ItemError `json:"-"`
	// Cancelled is set when the run was cut short by its context; the
	// per-chip slots then cover a deterministic prefix of the campaign.
	Cancelled bool `json:"cancelled,omitempty"`

	PerChip []ChipResult `json:"per_chip,omitempty"`
}

// quantile returns the q-quantile of sorted xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// aggregate folds per-chip slots into a Report, counting only chips the
// scheduler committed (Done and error-free), so a cancelled or partially
// failed run still yields an internally consistent report.
func aggregate(cfg *Config, b *bench, results []ChipResult, rep *atpg.RunReport) *Report {
	r := &Report{
		Seed:          cfg.Seed,
		Chips:         cfg.Chips,
		Duration:      cfg.Duration,
		Period:        cfg.Period,
		MaxTestPeriod: b.window.MaxTestPeriod(),
		MinMargin:     math.MaxFloat64,
		Cancelled:     rep.Err != nil,
		Errors:        rep.Errors,
	}
	for _, e := range rep.Errors {
		r.Failed = append(r.Failed, ChipFailure{Chip: e.Index, Error: e.Err.Error()})
	}
	var lat []float64
	for i := range results {
		if i < len(rep.Done) && (!rep.Done[i] || rep.ErrAt(i) != nil) {
			continue
		}
		c := &results[i]
		r.Complete++
		r.Faults += c.Faults
		r.Detected += c.Detected
		r.Repaired += c.Repaired
		r.Escapes += c.Escapes
		r.StructuralEscapes += c.StructuralEscapes
		r.LateRepairs += c.LateRepairs
		r.ActiveAtEnd += c.ActiveAtEnd
		r.Retries += c.Retries
		r.SkippedTests += c.SkippedTests
		r.LateTests += c.LateTests
		r.AmbiguousDiagnoses += c.Ambiguous
		if c.Degraded {
			r.DegradedChips++
		}
		lat = append(lat, c.Latencies...)
		for _, m := range c.Margins {
			if m < r.MinMargin {
				r.MinMargin = m
			}
		}
		if cfg.RecordPerChip {
			r.PerChip = append(r.PerChip, *c)
		}
	}
	if len(lat) == 0 {
		r.MinMargin = 0
	} else {
		sort.Float64s(lat)
		sum := 0.0
		for _, v := range lat {
			sum += v
		}
		r.Latency = LatencyStats{
			Count: len(lat),
			Min:   lat[0],
			Mean:  sum / float64(len(lat)),
			P50:   quantile(lat, 0.50),
			P90:   quantile(lat, 0.90),
			P99:   quantile(lat, 0.99),
			Max:   lat[len(lat)-1],
		}
	}
	return r
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// hours formats simulated seconds compactly.
func hours(s float64) string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.2fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// Format renders a human-readable mission summary.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mission: %d chips, %s, test period %s (max safe %s), seed %d\n",
		r.Chips, hours(r.Duration), hours(r.Period), hours(r.MaxTestPeriod), r.Seed)
	if r.Cancelled || r.Complete < r.Chips {
		fmt.Fprintf(&b, "  PARTIAL: %d/%d chips committed", r.Complete, r.Chips)
		if r.Cancelled {
			b.WriteString(" (cancelled)")
		}
		b.WriteString("\n")
	}
	for _, f := range r.Failed {
		fmt.Fprintf(&b, "  chip %d FAILED: %s\n", f.Chip, f.Error)
	}
	fmt.Fprintf(&b, "  defects: %d initiated, %d detected, %d repaired, %d escaped",
		r.Faults, r.Detected, r.Repaired, r.Escapes)
	if r.StructuralEscapes > 0 {
		fmt.Fprintf(&b, " (%d structural)", r.StructuralEscapes)
	}
	if r.ActiveAtEnd > 0 {
		fmt.Fprintf(&b, ", %d still latent at mission end", r.ActiveAtEnd)
	}
	b.WriteString("\n")
	if r.Latency.Count > 0 {
		fmt.Fprintf(&b, "  detection latency: min %s  p50 %s  p90 %s  p99 %s  max %s  (n=%d)\n",
			hours(r.Latency.Min), hours(r.Latency.P50), hours(r.Latency.P90),
			hours(r.Latency.P99), hours(r.Latency.Max), r.Latency.Count)
		fmt.Fprintf(&b, "  window margin: min %s before hard breakdown\n", hours(r.MinMargin))
	}
	if r.Retries+r.SkippedTests+r.LateTests+r.AmbiguousDiagnoses > 0 {
		fmt.Fprintf(&b, "  adversity: %d skipped tests, %d late tests, %d capture retries, %d ambiguous diagnoses\n",
			r.SkippedTests, r.LateTests, r.Retries, r.AmbiguousDiagnoses)
	}
	if r.LateRepairs > 0 {
		fmt.Fprintf(&b, "  %d repairs completed after the HBD crossing\n", r.LateRepairs)
	}
	if r.DegradedChips > 0 {
		fmt.Fprintf(&b, "  %d chips in degraded mode (repair resources exhausted)\n", r.DegradedChips)
	}
	return b.String()
}
