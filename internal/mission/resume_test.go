package mission

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"gobd/internal/atpg"
)

// TestSimulateRangeAggregateEquivalence: splitting a campaign into chip
// ranges (any boundaries, any worker count) and folding them back with
// Aggregate must reproduce Run's report bit-identically — the property
// the durable job runtime's checkpoint/resume rests on.
func TestSimulateRangeAggregateEquivalence(t *testing.T) {
	for _, adv := range []Adversity{Off(), Heavy()} {
		cfg := baseConfig()
		cfg.Adversity = adv
		cfg.Scheduler = atpg.NewScheduler(1)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 8} {
			cfg := cfg
			cfg.Scheduler = atpg.NewScheduler(w)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, step := range []int{1, 7, cfg.Chips} {
				var results []ChipResult
				var failed []ChipFailure
				for lo := 0; lo < cfg.Chips; lo += step {
					hi := lo + step
					if hi > cfg.Chips {
						hi = cfg.Chips
					}
					rs, fs, err := m.SimulateRange(context.Background(), lo, hi)
					if err != nil {
						t.Fatal(err)
					}
					results = append(results, rs...)
					failed = append(failed, fs...)
				}
				got, err := m.Aggregate(results, failed)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("adversity %+v workers=%d step=%d: stitched report diverges from Run", adv, w, step)
				}
			}
		}
	}
}

// TestAggregateWithFailures: a chip failure recorded by SimulateRange
// survives the stitch — the JSON-visible report matches Run's for the
// same panic, and the failed chip stays out of the aggregates.
func TestAggregateWithFailures(t *testing.T) {
	cfg := baseConfig()
	cfg.Scheduler = atpg.NewScheduler(2)
	poison := func(chip int) {
		if chip == 7 {
			panic("chip 7 model corrupted")
		}
	}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.testHook = poison
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.testHook = poison
	var results []ChipResult
	var failed []ChipFailure
	for lo := 0; lo < cfg.Chips; lo += 5 {
		rs, fs, err := m.SimulateRange(context.Background(), lo, lo+5)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, rs...)
		failed = append(failed, fs...)
	}
	if len(failed) != 1 || failed[0].Chip != 7 {
		t.Fatalf("failed = %+v, want exactly chip 7", failed)
	}
	got, err := m.Aggregate(results, failed)
	if err != nil {
		t.Fatal(err)
	}
	// Errors carries reconstructed values (text only), so compare the
	// JSON-visible report — the bytes the artifact store persists.
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("stitched report with failures diverges:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestSimulateRangeBounds: out-of-range intervals and mismatched result
// sets are rejected, not silently truncated.
func TestSimulateRangeBounds(t *testing.T) {
	m, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 3}, {0, 1000}, {5, 2}} {
		if _, _, err := m.SimulateRange(context.Background(), r[0], r[1]); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
	if _, err := m.Aggregate(make([]ChipResult, 3), nil); err == nil {
		t.Fatal("short result set accepted")
	}
	if _, err := m.Aggregate(make([]ChipResult, baseConfig().Chips), []ChipFailure{{Chip: -2}}); err == nil {
		t.Fatal("out-of-range failure accepted")
	}
}
