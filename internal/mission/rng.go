package mission

import "math"

// Determinism is the load-bearing property of the mission runtime: a
// campaign must replay bit-identically for the same seed, whatever the
// worker count and whatever order events happen to interleave. Every
// random draw therefore comes from a keyed splitmix64 stream whose
// sequence depends only on its key — (seed, chip) for chip-level draws,
// (seed, chip, fault ordinal) for per-fault draws — never on which
// goroutine consumes it or what other streams have drawn.

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a SplitMix64 generator over a key-derived state.
type stream struct{ state uint64 }

// newStream derives an independent stream from a key tuple.
func newStream(keys ...uint64) *stream {
	s := uint64(0x6a09e667f3bcc909)
	for _, k := range keys {
		s = mix(s + 0x9e3779b97f4a7c15 + k)
	}
	return &stream{state: s}
}

// next returns the next 64 pseudo-random bits.
func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// float64 returns a uniform draw in [0, 1).
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n). The modulo bias is far below
// anything a fault-injection campaign can resolve.
func (s *stream) intn(n int) int {
	return int(s.next() % uint64(n))
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method; campaign fault rates are small enough that the
// exp(-mean) underflow region is unreachable (New rejects large rates).
func (s *stream) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.float64()
		if p <= l {
			return k
		}
		k++
	}
}
