package netcheck

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file extends fault.CollapseOBD's same-gate equivalence with a
// structural cross-gate rule, the inverter-chain merge. Let gate g drive
// net s, let s feed EXACTLY one gate — an inverter h — and let s not be a
// primary output. Then h is the first entry netcheck's dominator
// computation returns for any fault on g (the one-fanout cone makes it a
// dominator trivially), and more: every faulty value of s is observable
// only through h, and h adds no masking of its own. For a fault f of g
// that is EDGE-COMPLETE (excited by every complete local pair with its
// output edge — series NMOS/PMOS stacks and inverter devices, see
// fault.OBD.EdgeComplete), the matching-direction fault of h is excited
// by exactly the same complete vector pairs, and forcing s to its
// frame-1 value propagates through h to exactly the value h's own fault
// forces. The two faults are therefore detected by precisely the same
// complete pairs — per-pair, not merely per-set.
//
// The equivalence needs completeness: with X lanes, f additionally
// demands g's local values known in both frames, which h's fault does
// not, so a pair can excite one and not the other. Grading therefore
// applies this collapsing only to complete test sets
// (atpg.PairGrader.Complete), where the fan-out of a representative's
// verdicts onto its class is bit-identical to grading every site.

// CollapseOBDComplete partitions a fault list into classes that are
// pairwise equivalent under COMPLETE two-pattern sets: the union of
// fault.CollapseOBD's same-gate classes (exact for any pattern set) and
// the inverter-chain merges above (exact for complete sets). Each class
// holds ascending indices into faults; classes appear in first-member
// order. The circuit must validate.
func CollapseOBDComplete(c *logic.Circuit, faults []fault.OBD) [][]int {
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, cl := range fault.CollapseOBDIndices(faults) {
		for _, i := range cl[1:] {
			union(cl[0], i)
		}
	}
	type loc struct {
		g     *logic.Gate
		input int
		side  fault.Side
	}
	byLoc := make(map[loc][]int, len(faults))
	for i, f := range faults {
		k := loc{f.Gate, f.Input, f.Side}
		byLoc[k] = append(byLoc[k], i)
	}
	isPO := make(map[string]bool, len(c.Outputs))
	for _, po := range c.Outputs {
		isPO[po] = true
	}
	for i, f := range faults {
		s := f.Gate.Output
		// The driver check rejects synthetic gates that merely share a net
		// name with the circuit; chain reasoning is structural and only
		// applies to gates actually wired in.
		if !f.EdgeComplete() || isPO[s] || c.Driver(s) != f.Gate {
			continue
		}
		fo := c.Fanout(s)
		if len(fo) != 1 || fo[0].Type != logic.Inv {
			continue
		}
		// f drives s to 0 (PullDown) ⇒ s falls ⇒ h's output rises ⇒ h's
		// pull-up conducts the new value: the image side is the opposite.
		img := fault.PullUp
		if f.Side == fault.PullUp {
			img = fault.PullDown
		}
		for _, j := range byLoc[loc{fo[0], 0, img}] {
			union(i, j)
		}
	}
	groups := make(map[int][]int, len(faults))
	var order []int
	for i := range faults {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}
