package netcheck

import (
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// chainCircuit builds NAND(a,b) → s → INV → t → INV → u with u a PO, the
// canonical inverter chain, optionally perturbed by the mutators below.
func chainCircuit(t *testing.T, mutate func(c *logic.Circuit)) *logic.Circuit {
	t.Helper()
	c := logic.New("chain")
	for _, in := range []string{"a", "b"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []struct {
		name string
		typ  logic.GateType
		out  string
		ins  []string
	}{
		{"g1", logic.Nand, "s", []string{"a", "b"}},
		{"h", logic.Inv, "t", []string{"s"}},
		{"k", logic.Inv, "u", []string{"t"}},
	} {
		if _, err := c.AddGate(g.name, g.typ, g.out, g.ins...); err != nil {
			t.Fatal(err)
		}
	}
	if mutate != nil {
		mutate(c)
	}
	c.AddOutput("u")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// classOf returns the class (as fault strings) containing the given fault.
func classOf(t *testing.T, faults []fault.OBD, classes [][]int, name string) map[string]bool {
	t.Helper()
	for _, cl := range classes {
		for _, fi := range cl {
			if faults[fi].String() == name {
				set := make(map[string]bool, len(cl))
				for _, fj := range cl {
					set[faults[fj].String()] = true
				}
				return set
			}
		}
	}
	t.Fatalf("fault %s not in any class", name)
	return nil
}

func TestCollapseCompleteChainMerges(t *testing.T) {
	c := chainCircuit(t, nil)
	faults, _ := fault.OBDUniverse(c)
	classes := CollapseOBDComplete(c, faults)
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4", len(classes))
	}
	chain := classOf(t, faults, classes, "g1/NMOS@a")
	for _, want := range []string{"g1/NMOS@b", "h/PMOS@s", "k/NMOS@t"} {
		if !chain[want] {
			t.Errorf("chain class misses %s: %v", want, chain)
		}
	}
	if len(chain) != 4 {
		t.Errorf("chain class has %d members, want 4: %v", len(chain), chain)
	}
	comp := classOf(t, faults, classes, "h/NMOS@s")
	if len(comp) != 2 || !comp["k/PMOS@t"] {
		t.Errorf("complementary chain class wrong: %v", comp)
	}
	// The parallel PMOS defects of the NAND are not edge-complete and must
	// remain singletons.
	for _, name := range []string{"g1/PMOS@a", "g1/PMOS@b"} {
		if cl := classOf(t, faults, classes, name); len(cl) != 1 {
			t.Errorf("%s merged into %v; parallel devices must stay singletons", name, cl)
		}
	}
}

// TestCollapseCompleteGuards: each structural precondition of the chain
// rule, removed, must block the merge.
func TestCollapseCompleteGuards(t *testing.T) {
	countClasses := func(c *logic.Circuit) ([]fault.OBD, [][]int) {
		faults, _ := fault.OBDUniverse(c)
		return faults, CollapseOBDComplete(c, faults)
	}

	t.Run("intermediate net is a PO", func(t *testing.T) {
		c := chainCircuit(t, func(c *logic.Circuit) { c.AddOutput("s") })
		faults, classes := countClasses(c)
		// g1's NMOS pair still merges locally, but must not chain into h.
		cl := classOf(t, faults, classes, "g1/NMOS@a")
		if cl["h/PMOS@s"] {
			t.Errorf("merged across a PO net: %v", cl)
		}
	})

	t.Run("multi-fanout net", func(t *testing.T) {
		c := chainCircuit(t, func(c *logic.Circuit) {
			if _, err := c.AddGate("h2", logic.Inv, "t2", "s"); err != nil {
				t.Fatal(err)
			}
		})
		faults, classes := countClasses(c)
		cl := classOf(t, faults, classes, "g1/NMOS@a")
		if cl["h/PMOS@s"] || cl["h2/PMOS@s"] {
			t.Errorf("merged across a multi-fanout net: %v", cl)
		}
	})

	t.Run("fanout gate is not an inverter", func(t *testing.T) {
		c := logic.New("nandload")
		for _, in := range []string{"a", "b", "e"} {
			if err := c.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.AddGate("g1", logic.Nand, "s", "a", "b"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddGate("h", logic.Nand, "t", "s", "e"); err != nil {
			t.Fatal(err)
		}
		c.AddOutput("t")
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		faults, classes := countClasses(c)
		cl := classOf(t, faults, classes, "g1/NMOS@a")
		if len(cl) != 2 || !cl["g1/NMOS@b"] {
			t.Errorf("NAND-loaded net class wrong: %v", cl)
		}
	})

	t.Run("synthetic gate sharing the net name", func(t *testing.T) {
		c := chainCircuit(t, nil)
		faults, _ := fault.OBDUniverse(c)
		// A gate that drives "s" by name but is not wired into the circuit:
		// the Driver identity check must keep its faults out of chains.
		syn := &logic.Gate{Name: "syn", Type: logic.Inv, Inputs: []string{"a"}, Output: "s"}
		faults = append(faults, fault.OBD{Gate: syn, Input: 0, Side: fault.PullDown})
		classes := CollapseOBDComplete(c, faults)
		cl := classOf(t, faults, classes, "syn/NMOS@a")
		if len(cl) != 1 {
			t.Errorf("synthetic gate fault merged via net-name collision: %v", cl)
		}
	})
}
