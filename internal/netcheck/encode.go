package netcheck

// This file is the bridge between circuits and the CDCL solver: a
// Tseitin encoder over the dense logic.Index, plus the miter
// constructions the exact prover (exact.go) solves —
//
//   - a per-frame circuit copy (encodeFrame), one Boolean variable per
//     net, gate semantics as biconditional clauses;
//   - the two-time-frame OBD instances: frame 1 justifies the pair's V1
//     local values, frame 2 justifies V2 and propagates the forced-value
//     fault effect (site held at its frame-1 value) to some primary
//     output difference;
//   - a CEC miter for circuit-vs-circuit equivalence (shared inputs by
//     name, XOR difference over matched outputs);
//   - a detection-predicate encoding (encodeDetect) mirroring
//     atpg.DetectsOBD exactly, used to certify fault-collapsing classes.
//
// Everything here is deterministic: variables are handed out in net-ID
// order and clauses in gate order, so the prover and the independent
// verifier rebuild bit-identical CNFs from the same circuit.

import (
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/sat"
)

// cnfBuilder accumulates a CNF over fresh variables. The same builder
// code produces the instance for the solver and for the proof checker,
// which is what makes stored RUP proofs replayable from scratch.
type cnfBuilder struct {
	nv      int
	clauses [][]sat.Lit
}

func (b *cnfBuilder) newVar() sat.Lit {
	b.nv++
	return sat.Lit(b.nv)
}

func (b *cnfBuilder) add(lits ...sat.Lit) {
	b.clauses = append(b.clauses, append([]sat.Lit(nil), lits...))
}

// run feeds the CNF into a fresh proof-logging solver and solves it.
// budget caps the conflicts (0 = unlimited).
func (b *cnfBuilder) run(budget int) (*sat.Solver, sat.Status) {
	s := &sat.Solver{ProofEnabled: true}
	if budget > 0 {
		s.MaxConflicts = int64(budget)
	}
	for s.NumVars() < b.nv {
		s.NewVar()
	}
	for _, cl := range b.clauses {
		s.AddClause(cl...)
	}
	return s, s.Solve()
}

// encodeGate emits the Tseitin biconditional out ↔ t(ins).
func (b *cnfBuilder) encodeGate(t logic.GateType, out sat.Lit, ins []sat.Lit) {
	switch t {
	case logic.Buf:
		b.add(-out, ins[0])
		b.add(out, -ins[0])
	case logic.Inv:
		b.add(-out, -ins[0])
		b.add(out, ins[0])
	case logic.And:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, a := range ins {
			b.add(-out, a)
			long = append(long, -a)
		}
		b.add(append(long, out)...)
	case logic.Nand:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, a := range ins {
			b.add(out, a)
			long = append(long, -a)
		}
		b.add(append(long, -out)...)
	case logic.Or:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, a := range ins {
			b.add(out, -a)
			long = append(long, a)
		}
		b.add(append(long, -out)...)
	case logic.Nor:
		long := make([]sat.Lit, 0, len(ins)+1)
		for _, a := range ins {
			b.add(-out, -a)
			long = append(long, a)
		}
		b.add(append(long, out)...)
	case logic.Xor:
		b.xorEquiv(out, ins[0], ins[1])
	case logic.Xnor:
		b.xorEquiv(-out, ins[0], ins[1])
	case logic.Aoi21:
		t1 := b.newVar()
		b.encodeGate(logic.And, t1, ins[:2])
		b.encodeGate(logic.Nor, out, []sat.Lit{t1, ins[2]})
	case logic.Oai21:
		t1 := b.newVar()
		b.encodeGate(logic.Or, t1, ins[:2])
		b.encodeGate(logic.Nand, out, []sat.Lit{t1, ins[2]})
	case logic.Dff:
		// A flip-flop has no combinational biconditional. Unreachable:
		// Analyze and the atpg scheduler route DFF-bearing circuits
		// through CombinationalCore before any CNF is built.
		//obdcheck:allow paniccontract — encoder precondition: callers encode combinational cores only (Analyze extracts the core first)
		panic("netcheck: encodeGate reached a DFF; encode the combinational core instead")
	}
}

// xorEquiv emits d ↔ (a ⊕ b).
func (b *cnfBuilder) xorEquiv(d, a, bb sat.Lit) {
	b.add(-d, a, bb)
	b.add(-d, -a, -bb)
	b.add(d, -a, bb)
	b.add(d, a, -bb)
}

// equiv emits a ↔ b.
func (b *cnfBuilder) equiv(a, bb sat.Lit) {
	b.add(-a, bb)
	b.add(a, -bb)
}

// encodeFrame allocates one variable per net (in dense-ID order) and
// emits every gate's clauses; vars[id] is the net's positive literal.
func (b *cnfBuilder) encodeFrame(x *logic.Index) []sat.Lit {
	return b.encodeFrameShared(x, nil)
}

// encodeFrameShared is encodeFrame with some nets pre-bound to existing
// variables (pre[id] != 0), which is how the CEC miter shares primary
// inputs between the two circuits.
func (b *cnfBuilder) encodeFrameShared(x *logic.Index, pre []sat.Lit) []sat.Lit {
	vars := make([]sat.Lit, x.NumNets())
	for id := range vars {
		if pre != nil && pre[id] != 0 {
			vars[id] = pre[id]
		} else {
			vars[id] = b.newVar()
		}
	}
	for gi, g := range x.Gates {
		ins := make([]sat.Lit, len(x.GateIn[gi]))
		for k, id := range x.GateIn[gi] {
			ins[k] = vars[id]
		}
		b.encodeGate(g.Type, vars[x.GateOut[gi]], ins)
	}
	return vars
}

// encodeFaultyCone duplicates the fanout cone of siteID over fresh
// variables, with the site itself bound to siteVar; nets outside the
// cone read from the good copy. Returns the faulty-copy literals
// (zero outside the cone).
func (b *cnfBuilder) encodeFaultyCone(x *logic.Index, vars []sat.Lit, cone []bool, siteID int32, siteVar sat.Lit) []sat.Lit {
	fvars := make([]sat.Lit, x.NumNets())
	for id := range fvars {
		if cone[id] {
			fvars[id] = b.newVar()
		}
	}
	fvars[siteID] = siteVar
	for gi, g := range x.Gates {
		out := x.GateOut[gi]
		if out == siteID || !cone[out] {
			continue
		}
		ins := make([]sat.Lit, len(x.GateIn[gi]))
		for k, id := range x.GateIn[gi] {
			if cone[id] {
				ins[k] = fvars[id]
			} else {
				ins[k] = vars[id]
			}
		}
		b.encodeGate(g.Type, fvars[out], ins)
	}
	return fvars
}

// conePOs returns the deduplicated primary-output net IDs inside the
// cone, in OutputIDs order.
func conePOs(x *logic.Index, cone []bool) []int32 {
	seen := make([]bool, x.NumNets())
	var out []int32
	for _, id := range x.OutputIDs {
		if cone[id] && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// assertPODiff constrains some in-cone primary output to differ between
// the good and faulty copies (one-directional indicators suffice for a
// satisfiability miter). With no PO in the cone it emits the empty
// clause — the fault effect is trivially unobservable.
func (b *cnfBuilder) assertPODiff(x *logic.Index, vars, fvars []sat.Lit, cone []bool) {
	pos := conePOs(x, cone)
	ds := make([]sat.Lit, 0, len(pos))
	for _, id := range pos {
		d := b.newVar()
		// d → (good ⊕ faulty)
		b.add(-d, vars[id], fvars[id])
		b.add(-d, -vars[id], -fvars[id])
		ds = append(ds, d)
	}
	b.add(ds...)
}

// demandUnits asserts folded local net values as unit clauses.
func (b *cnfBuilder) demandUnits(x *logic.Index, vars []sat.Lit, demands []sideVal) {
	for _, d := range demands {
		lit := vars[x.NetIDs[d.net]]
		if d.val == logic.Zero {
			lit = -lit
		}
		b.add(lit)
	}
}

// obdFrame1 builds the frame-1 justification instance of an excitation
// pair: one circuit copy plus the pair's V1 values on the site gate's
// distinct input nets.
func obdFrame1(x *logic.Index, demands []sideVal) (*cnfBuilder, []sat.Lit) {
	b := &cnfBuilder{}
	vars := b.encodeFrame(x)
	b.demandUnits(x, vars, demands)
	return b, vars
}

// obdFrame2 builds the frame-2 excitation-and-propagation instance: the
// good copy constrained to the pair's V2 local values, a faulty cone
// copy with the site forced to its frame-1 good value o1 (the paper's
// gross-delay forced-value fault model), and a primary-output
// difference between the copies.
func obdFrame2(x *logic.Index, f fault.OBD, o1 logic.Value, demands []sideVal) (*cnfBuilder, []sat.Lit) {
	b := &cnfBuilder{}
	vars := b.encodeFrame(x)
	b.demandUnits(x, vars, demands)
	siteID := int32(x.NetIDs[f.Gate.Output])
	cone := x.FanoutCone(siteID)
	siteVar := b.newVar()
	if o1 == logic.One {
		b.add(siteVar)
	} else {
		b.add(-siteVar)
	}
	fvars := b.encodeFaultyCone(x, vars, cone, siteID, siteVar)
	b.assertPODiff(x, vars, fvars, cone)
	return b, vars
}

// litOf returns the literal asserting the demanded value of a net.
func litOf(x *logic.Index, vars []sat.Lit, d sideVal) sat.Lit {
	lit := vars[x.NetIDs[d.net]]
	if d.val == logic.Zero {
		return -lit
	}
	return lit
}

// encodeDetect returns a literal equivalent to "the complete two-pattern
// (frame 1 = v1 copy, frame 2 = v2 copy) detects f" under exactly the
// atpg.DetectsOBD semantics: the site gate's local input pair matches
// some excitation pair, and the faulty frame-2 copy (site held at its
// frame-1 value) differs from the good copy at a primary output.
func (b *cnfBuilder) encodeDetect(x *logic.Index, f fault.OBD, v1, v2 []sat.Lit) sat.Lit {
	d := b.newVar()
	var sels []sat.Lit
	for _, p := range f.ExcitationPairs() {
		d2, c2 := demandByNet(f.Gate, p.V2)
		d1, c1 := demandByNet(f.Gate, p.V1)
		if c1 || c2 {
			continue // tied-net conflict: the pair matches no real assignment
		}
		sel := b.newVar()
		neg := make([]sat.Lit, 0, len(d1)+len(d2)+1)
		for _, dm := range d1 {
			l := litOf(x, v1, dm)
			b.add(-sel, l)
			neg = append(neg, -l)
		}
		for _, dm := range d2 {
			l := litOf(x, v2, dm)
			b.add(-sel, l)
			neg = append(neg, -l)
		}
		b.add(append(neg, sel)...)
		sels = append(sels, sel)
	}
	if len(sels) == 0 {
		b.add(-d)
		return d
	}
	exc := b.newVar()
	long := make([]sat.Lit, 0, len(sels)+1)
	for _, s := range sels {
		b.add(-s, exc)
		long = append(long, s)
	}
	b.add(append(long, -exc)...)

	siteID := int32(x.NetIDs[f.Gate.Output])
	cone := x.FanoutCone(siteID)
	siteVar := b.newVar()
	b.equiv(siteVar, v1[siteID]) // forced value: the frame-1 good value
	fvars := b.encodeFaultyCone(x, v2, cone, siteID, siteVar)

	diff := b.newVar()
	pos := conePOs(x, cone)
	if len(pos) == 0 {
		b.add(-diff)
	} else {
		long = make([]sat.Lit, 0, len(pos)+1)
		for _, id := range pos {
			dp := b.newVar()
			b.xorEquiv(dp, v2[id], fvars[id])
			b.add(-dp, diff)
			long = append(long, dp)
		}
		b.add(append(long, -diff)...)
	}
	b.add(-d, exc)
	b.add(-d, diff)
	b.add(d, -exc, -diff)
	return d
}
