package netcheck

// Combinational equivalence checking on top of the same encoder. Two
// uses in this repo:
//
//   - ProveEquiv certifies that two circuits with matching interfaces
//     compute the same Boolean functions — the property the .bench
//     round-trip (FormatBench ∘ ParseBench) and netlist refactors need;
//   - ProveOBDEquiv certifies that two OBD faults are detected by
//     exactly the same complete two-patterns, which is the semantic
//     claim behind every CollapseOBDComplete class.
//
// Both build a miter whose UNSAT answer carries a RUP proof; the Verify
// functions re-encode the miter from scratch and run the independent
// checker, so a stored certificate never depends on trusting the
// solver run that produced it.

import (
	"fmt"
	"sort"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/sat"
)

// EquivError reports an interface mismatch that makes an equivalence
// question ill-posed (as opposed to answerable with "not equivalent").
type EquivError struct {
	Msg string
}

// Error implements error.
func (e *EquivError) Error() string { return "netcheck: " + e.Msg }

// EquivVerdict is the outcome of a combinational equivalence check.
type EquivVerdict struct {
	Equivalent bool `json:"equivalent"`
	// Counterexample assigns the shared primary inputs so that some
	// matched output differs (nil when Equivalent).
	Counterexample map[string]logic.Value `json:"counterexample,omitempty"`
	// Proof refutes the difference miter when Equivalent.
	Proof sat.Proof `json:"proof,omitempty"`
}

// nameSet folds a name list to its distinct-element set.
func nameSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// matchInterfaces demands equal PI and PO name sets and returns the
// distinct PO names in a's declaration order.
func matchInterfaces(a, b *logic.Circuit) ([]string, error) {
	ain, bin := nameSet(a.Inputs), nameSet(b.Inputs)
	for n := range ain {
		if !bin[n] {
			return nil, &EquivError{Msg: fmt.Sprintf("input %q exists only in %q", n, a.Name)}
		}
	}
	for n := range bin {
		if !ain[n] {
			return nil, &EquivError{Msg: fmt.Sprintf("input %q exists only in %q", n, b.Name)}
		}
	}
	aout, bout := nameSet(a.Outputs), nameSet(b.Outputs)
	for n := range aout {
		if !bout[n] {
			return nil, &EquivError{Msg: fmt.Sprintf("output %q exists only in %q", n, a.Name)}
		}
	}
	for n := range bout {
		if !aout[n] {
			return nil, &EquivError{Msg: fmt.Sprintf("output %q exists only in %q", n, b.Name)}
		}
	}
	seen := make(map[string]bool, len(a.Outputs))
	var pos []string
	for _, n := range a.Outputs {
		if !seen[n] {
			seen[n] = true
			pos = append(pos, n)
		}
	}
	return pos, nil
}

// cecMiter encodes both circuits over shared primary-input variables
// and asserts that some matched primary output differs.
func cecMiter(a, b *logic.Circuit, pos []string) (*cnfBuilder, []sat.Lit) {
	xa, xb := a.Index(), b.Index()
	bld := &cnfBuilder{}
	va := bld.encodeFrame(xa)
	pre := make([]sat.Lit, xb.NumNets())
	for _, in := range b.Inputs {
		pre[xb.NetIDs[in]] = va[xa.NetIDs[in]]
	}
	vb := bld.encodeFrameShared(xb, pre)
	ds := make([]sat.Lit, 0, len(pos))
	for _, po := range pos {
		la, lb := va[xa.NetIDs[po]], vb[xb.NetIDs[po]]
		d := bld.newVar()
		bld.add(-d, la, lb)
		bld.add(-d, -la, -lb)
		ds = append(ds, d)
	}
	bld.add(ds...)
	return bld, va
}

// ProveEquiv decides whether two validated circuits with identical
// primary-input and primary-output name sets compute the same function
// at every output. Equivalence comes with a RUP proof of the difference
// miter's unsatisfiability; inequivalence comes with a distinguishing
// input assignment. The check is exact and unbudgeted.
func ProveEquiv(a, b *logic.Circuit) (*EquivVerdict, error) {
	pos, err := matchInterfaces(a, b)
	if err != nil {
		return nil, err
	}
	bld, va := cecMiter(a, b, pos)
	s, st := bld.run(0)
	if st == sat.Unsat {
		return &EquivVerdict{Equivalent: true, Proof: s.Proof()}, nil
	}
	xa := a.Index()
	cex := make(map[string]logic.Value, len(a.Inputs))
	for i, in := range a.Inputs {
		cex[in] = logic.FromBool(s.Value(int(va[xa.InputIDs[i]])))
	}
	return &EquivVerdict{Counterexample: cex}, nil
}

// VerifyEquivProof re-encodes the difference miter of the two circuits
// and checks the stored refutation against it with the independent RUP
// checker. The returned error is an *EquivError for interface
// mismatches, otherwise the checker's *sat.CheckError.
func VerifyEquivProof(a, b *logic.Circuit, proof sat.Proof) error {
	pos, err := matchInterfaces(a, b)
	if err != nil {
		return err
	}
	bld, _ := cecMiter(a, b, pos)
	return sat.Check(bld.nv, bld.clauses, proof)
}

// OBDEquivVerdict is the outcome of a fault-equivalence check: either
// every complete two-pattern detects both faults or neither (with a RUP
// proof), or a distinguishing two-pattern detecting exactly one.
type OBDEquivVerdict struct {
	Equivalent bool                   `json:"equivalent"`
	Proof      sat.Proof              `json:"proof,omitempty"`
	V1         map[string]logic.Value `json:"v1,omitempty"`
	V2         map[string]logic.Value `json:"v2,omitempty"`
}

// obdEquivMiter encodes two circuit frames and the detection predicates
// of both faults over them, asserting the predicates differ.
func obdEquivMiter(c *logic.Circuit, f1, f2 fault.OBD) (*cnfBuilder, []sat.Lit, []sat.Lit) {
	x := c.Index()
	bld := &cnfBuilder{}
	v1 := bld.encodeFrame(x)
	v2 := bld.encodeFrame(x)
	d1 := bld.encodeDetect(x, f1, v1, v2)
	d2 := bld.encodeDetect(x, f2, v1, v2)
	bld.add(d1, d2)
	bld.add(-d1, -d2)
	return bld, v1, v2
}

// ProveOBDEquiv decides whether two OBD faults of one circuit are
// equivalent under complete two-pattern sets: detected by exactly the
// same (v1, v2) vector pairs. This is the per-pair semantic claim
// behind CollapseOBDComplete classes, decided exactly instead of
// argued structurally.
func ProveOBDEquiv(c *logic.Circuit, f1, f2 fault.OBD) OBDEquivVerdict {
	x := c.Index()
	bld, v1, v2 := obdEquivMiter(c, f1, f2)
	s, st := bld.run(0)
	if st == sat.Unsat {
		return OBDEquivVerdict{Equivalent: true, Proof: s.Proof()}
	}
	read := func(vars []sat.Lit) map[string]logic.Value {
		m := make(map[string]logic.Value, len(c.Inputs))
		for i, in := range c.Inputs {
			m[in] = logic.FromBool(s.Value(int(vars[x.InputIDs[i]])))
		}
		return m
	}
	return OBDEquivVerdict{V1: read(v1), V2: read(v2)}
}

// VerifyOBDEquivProof re-encodes the fault-equivalence miter and checks
// the stored refutation with the independent RUP checker.
func VerifyOBDEquivProof(c *logic.Circuit, f1, f2 fault.OBD, proof sat.Proof) error {
	bld, _, _ := obdEquivMiter(c, f1, f2)
	return sat.Check(bld.nv, bld.clauses, proof)
}

// CertifyCollapseOBD runs ProveOBDEquiv between each CollapseOBDComplete
// class representative (the first, lowest-index member) and every other
// member, returning the verdicts keyed "rep≡member" in class order. It
// is the self-audit for the collapsing pass: every verdict must come
// back Equivalent with a checkable proof.
func CertifyCollapseOBD(c *logic.Circuit, faults []fault.OBD) map[string]OBDEquivVerdict {
	classes := CollapseOBDComplete(c, faults)
	out := make(map[string]OBDEquivVerdict)
	for _, cls := range classes {
		rep := faults[cls[0]]
		for _, mi := range cls[1:] {
			key := rep.String() + "≡" + faults[mi].String()
			out[key] = ProveOBDEquiv(c, rep, faults[mi])
		}
	}
	return out
}

// SortedOBDEquivKeys returns the map keys in deterministic order for
// reporting.
func SortedOBDEquivKeys(m map[string]OBDEquivVerdict) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
