package netcheck_test

import (
	"strings"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
	"gobd/internal/sat"
)

// TestProveEquivBenchRoundTrip certifies the .bench serializer: a
// circuit formatted and re-parsed must be provably equivalent to the
// original, with a proof the independent checker accepts.
func TestProveEquivBenchRoundTrip(t *testing.T) {
	c := cells.FullAdderSumLogic()
	text, err := logic.FormatBench(c)
	if err != nil {
		t.Fatalf("FormatBench: %v", err)
	}
	back, err := logic.ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	v, err := netcheck.ProveEquiv(c, back)
	if err != nil {
		t.Fatalf("ProveEquiv: %v", err)
	}
	if !v.Equivalent {
		t.Fatalf("round-trip not equivalent; counterexample %v", v.Counterexample)
	}
	if err := netcheck.VerifyEquivProof(c, back, v.Proof); err != nil {
		t.Fatalf("equivalence proof rejected: %v", err)
	}
	// A corrupted proof must not verify.
	bogus := append(sat.Proof{{9999}}, v.Proof...)
	if err := netcheck.VerifyEquivProof(c, back, bogus); err == nil {
		t.Fatal("corrupted equivalence proof accepted")
	}
}

// gate2 builds a one-gate circuit z = t(x, y).
func gate2(name string, t logic.GateType) *logic.Circuit {
	c := logic.New(name)
	if err := c.AddInput("x"); err != nil {
		panic(err)
	}
	if err := c.AddInput("y"); err != nil {
		panic(err)
	}
	if _, err := c.AddGate("g", t, "z", "x", "y"); err != nil {
		panic(err)
	}
	c.AddOutput("z")
	return c
}

// must0 fails the test on error.
func must0(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestProveEquivCounterexample checks the SAT side: two same-interface
// circuits computing different functions must yield a distinguishing
// input assignment under which the outputs actually differ.
func TestProveEquivCounterexample(t *testing.T) {
	a := gate2("and2", logic.And)
	b := gate2("or2", logic.Or)
	v, err := netcheck.ProveEquiv(a, b)
	if err != nil {
		t.Fatalf("ProveEquiv: %v", err)
	}
	if v.Equivalent {
		t.Fatal("AND proved equivalent to OR")
	}
	ga := a.Eval(v.Counterexample, nil)
	gb := b.Eval(v.Counterexample, nil)
	if ga["z"] == gb["z"] {
		t.Fatalf("counterexample %v does not distinguish the circuits", v.Counterexample)
	}
}

// TestProveEquivInterfaceMismatch checks that an ill-posed question
// comes back as a typed *EquivError rather than a bogus verdict.
func TestProveEquivInterfaceMismatch(t *testing.T) {
	a := logic.New("a")
	must0(t, a.AddInput("x"))
	_, err := a.AddGate("g", logic.Inv, "z", "x")
	must0(t, err)
	a.AddOutput("z")
	b := logic.New("b")
	must0(t, b.AddInput("y"))
	_, err = b.AddGate("g", logic.Inv, "z", "y")
	must0(t, err)
	b.AddOutput("z")
	if _, err := netcheck.ProveEquiv(a, b); err == nil {
		t.Fatal("mismatched inputs accepted")
	} else if _, ok := err.(*netcheck.EquivError); !ok {
		t.Fatalf("error is %T, want *EquivError", err)
	}
}

// TestCertifyCollapseOBD turns the structural fault-collapsing argument
// into theorems: every CollapseOBDComplete class member must be provably
// detection-equivalent to its representative, with checkable proofs.
func TestCertifyCollapseOBD(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	classes := netcheck.CollapseOBDComplete(c, faults)
	certs := netcheck.CertifyCollapseOBD(c, faults)
	merged := 0
	for _, cls := range classes {
		merged += len(cls) - 1
	}
	if len(certs) != merged {
		t.Fatalf("certified %d pairs, classes imply %d", len(certs), merged)
	}
	if merged == 0 {
		t.Fatal("collapsing merged nothing; test is vacuous")
	}
	for _, key := range netcheck.SortedOBDEquivKeys(certs) {
		if !certs[key].Equivalent {
			t.Errorf("%s: class members not detection-equivalent (v1=%v v2=%v)",
				key, certs[key].V1, certs[key].V2)
		}
	}
	// Spot-verify the stored proofs against re-encoded miters.
	verified := 0
	for _, cls := range classes {
		if len(cls) < 2 {
			continue
		}
		rep, mem := faults[cls[0]], faults[cls[1]]
		cert := certs[rep.String()+"≡"+mem.String()]
		if err := netcheck.VerifyOBDEquivProof(c, rep, mem, cert.Proof); err != nil {
			t.Errorf("%s≡%s: proof rejected: %v", rep, mem, err)
		}
		verified++
		if verified >= 4 {
			break
		}
	}
}

// TestProveOBDEquivDistinguishes checks the SAT side of fault
// equivalence: two faults with different detecting-pair sets must yield
// a two-pattern that DetectsOBD confirms detects exactly one of them.
func TestProveOBDEquivDistinguishes(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	truth := must(atpg.AnalyzeExhaustive(c, faults))
	// Find a testable and an untestable fault: trivially inequivalent.
	ti, ui := -1, -1
	for i, ok := range truth.Testable {
		if ok && ti < 0 {
			ti = i
		}
		if !ok && ui < 0 {
			ui = i
		}
	}
	if ti < 0 || ui < 0 {
		t.Fatal("need one testable and one untestable fault")
	}
	v := netcheck.ProveOBDEquiv(c, faults[ti], faults[ui])
	if v.Equivalent {
		t.Fatal("testable fault proved equivalent to untestable fault")
	}
	tp := atpg.TwoPattern{V1: atpg.Pattern(v.V1), V2: atpg.Pattern(v.V2)}
	d1 := atpg.DetectsOBD(c, faults[ti], tp)
	d2 := atpg.DetectsOBD(c, faults[ui], tp)
	if d1 == d2 {
		t.Fatalf("distinguishing pattern detects both=%v (faults %s / %s)", d1, faults[ti], faults[ui])
	}
}
