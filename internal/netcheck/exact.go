package netcheck

// The exact OBD prover. ProveOBD (untestable.go) is one-sided: built on
// implication closure, it can prove untestability but never testability.
// This file closes the gap with a complete decision procedure: every
// excitation pair of a fault becomes two SAT instances (frame-1
// justification, frame-2 excitation + propagation; see encode.go), and
// the CDCL solver decides each one outright. The outcome is a total
// verdict carrying its own evidence —
//
//   - Testable: a concrete two-pattern witness, replayable through the
//     detection semantics (atpg.DetectsOBD mirrors detectsWitness here);
//   - untestable: one refutation per excitation pair, each either a tied
//     -net pin conflict or a RUP proof the independent sat.Check accepts
//     against a CNF the verifier re-encodes from scratch;
//   - Aborted: the conflict budget ran out on some pair — an honest
//     "undecided", never silently converted to either side.
//
// VerifyExactVerdict trusts nothing from the prover: it rebuilds every
// CNF deterministically and replays witnesses through its own simulator.

import (
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/sat"
)

// DefaultExactBudget is the per-instance conflict budget used when a
// caller (Analyze, the serve endpoint) asks for exact verdicts without
// choosing one. It decides the paper-scale circuits instantly and
// bounds the worst case on adversarial inputs; faults that exceed it
// come back Aborted rather than wrong.
const DefaultExactBudget = 50000

// ExactWitness is a testability certificate: a concrete two-pattern,
// named by the excitation pair it realizes.
type ExactWitness struct {
	Pair string                 `json:"pair"`
	V1   map[string]logic.Value `json:"v1"`
	V2   map[string]logic.Value `json:"v2"`
}

// ExactRefutation kills one excitation pair: either a tied net demands
// both values at the site gate (PinConflict), or the named frame's CNF
// is unsatisfiable with the attached RUP proof.
type ExactRefutation struct {
	Pair        string    `json:"pair"`
	Frame       int       `json:"frame"`
	PinConflict bool      `json:"pin_conflict,omitempty"`
	Proof       sat.Proof `json:"proof,omitempty"`
}

// ExactVerdict is the complete decision for one OBD fault. Exactly one
// of three shapes holds: Testable with a Witness; untestable (Testable
// and Aborted both false) with one refutation per excitation pair; or
// Aborted when some pair exhausted the conflict budget undecided.
type ExactVerdict struct {
	Fault    string           `json:"fault"`
	Testable bool             `json:"testable"`
	Aborted  bool             `json:"aborted,omitempty"`
	Reason   Reason           `json:"reason,omitempty"`
	Witness  *ExactWitness    `json:"witness,omitempty"`
	Pairs    []ExactRefutation `json:"pairs,omitempty"`
}

// ExactProofError reports why an exact verdict failed verification.
type ExactProofError struct {
	Fault string
	Pair  string // offending excitation pair ("" for verdict-level faults)
	Msg   string
	Err   error // underlying checker error, when one exists
}

// Error implements error.
func (e *ExactProofError) Error() string {
	s := "netcheck: exact verdict for " + e.Fault
	if e.Pair != "" {
		s += " pair " + e.Pair
	}
	s += ": " + e.Msg
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying checker error to errors.Is/As.
func (e *ExactProofError) Unwrap() error { return e.Err }

// ProveOBDExact decides one fault with no conflict budget: the verdict
// is never Aborted. The circuit must validate.
func ProveOBDExact(c *logic.Circuit, f fault.OBD) ExactVerdict {
	return ProveOBDExactBudget(c, f, 0)
}

// ProveOBDExactBudget is ProveOBDExact under a per-instance conflict
// budget (0 = unlimited); faults whose instances exceed it come back
// Aborted.
func ProveOBDExactBudget(c *logic.Circuit, f fault.OBD, budget int) ExactVerdict {
	v := ExactVerdict{Fault: f.String()}
	pairs := f.ExcitationPairs()
	if len(pairs) == 0 {
		v.Reason = ReasonNoExcitation
		return v
	}
	x := c.Index()
	refs := make([]ExactRefutation, 0, len(pairs))
	aborted := false
	for _, p := range pairs {
		d2, conf2 := demandByNet(f.Gate, p.V2)
		if conf2 {
			refs = append(refs, ExactRefutation{Pair: p.String(), Frame: 2, PinConflict: true})
			continue
		}
		d1, conf1 := demandByNet(f.Gate, p.V1)
		if conf1 {
			refs = append(refs, ExactRefutation{Pair: p.String(), Frame: 1, PinConflict: true})
			continue
		}
		b2, vars2 := obdFrame2(x, f, f.Gate.Eval(p.V1), d2)
		s2, st2 := b2.run(budget)
		if st2 == sat.Unsat {
			refs = append(refs, ExactRefutation{Pair: p.String(), Frame: 2, Proof: s2.Proof()})
			continue
		}
		if st2 == sat.Unknown {
			aborted = true
			continue
		}
		b1, vars1 := obdFrame1(x, d1)
		s1, st1 := b1.run(budget)
		if st1 == sat.Unsat {
			refs = append(refs, ExactRefutation{Pair: p.String(), Frame: 1, Proof: s1.Proof()})
			continue
		}
		if st1 == sat.Unknown {
			aborted = true
			continue
		}
		// Both frames satisfiable: the fault is testable, and the two
		// models ARE the two-pattern (the frames share no variables, so
		// independent solutions compose).
		v.Testable = true
		v.Witness = &ExactWitness{
			Pair: p.String(),
			V1:   inputsFrom(c, x, s1, vars1),
			V2:   inputsFrom(c, x, s2, vars2),
		}
		return v
	}
	if aborted {
		v.Aborted = true
		return v
	}
	v.Reason = ReasonPairsRefuted
	v.Pairs = refs
	return v
}

// ProveOBDExactList decides a fault list; the result is index-aligned
// with faults.
func ProveOBDExactList(c *logic.Circuit, faults []fault.OBD, budget int) []ExactVerdict {
	out := make([]ExactVerdict, len(faults))
	for i, f := range faults {
		out[i] = ProveOBDExactBudget(c, f, budget)
	}
	return out
}

// inputsFrom reads the primary-input assignment out of a model.
func inputsFrom(c *logic.Circuit, x *logic.Index, s *sat.Solver, vars []sat.Lit) map[string]logic.Value {
	out := make(map[string]logic.Value, len(c.Inputs))
	for i, in := range c.Inputs {
		out[in] = logic.FromBool(s.Value(int(vars[x.InputIDs[i]])))
	}
	return out
}

// detectsWitness replays a two-pattern against the detection semantics.
// It mirrors atpg.DetectsOBD exactly (netcheck cannot import atpg — the
// dependency runs the other way); the agreement of the two is pinned by
// tests on the atpg side.
func detectsWitness(c *logic.Circuit, f fault.OBD, v1, v2 map[string]logic.Value) bool {
	g1 := c.Eval(v1, nil)
	g2 := c.Eval(v2, nil)
	lv1 := make([]logic.Value, len(f.Gate.Inputs))
	lv2 := make([]logic.Value, len(f.Gate.Inputs))
	for i, in := range f.Gate.Inputs {
		lv1[i], lv2[i] = g1[in], g2[in]
		if !lv1[i].IsKnown() || !lv2[i].IsKnown() {
			return false
		}
	}
	if !f.Excited(lv1, lv2) {
		return false
	}
	site := f.Gate.Output
	faulty := c.Eval(v2, map[string]logic.Value{site: g1[site]})
	for _, po := range c.Outputs {
		a, b := g2[po], faulty[po]
		if a.IsKnown() && b.IsKnown() && a != b {
			return true
		}
	}
	return false
}

// VerifyExactVerdict replays an exact verdict's evidence from scratch:
// testable witnesses must detect the fault under an independent
// simulation, and untestable refutations must cover every excitation
// pair in order, with pin conflicts re-derived and every RUP proof
// accepted by sat.Check against a freshly re-encoded CNF. Aborted
// verdicts claim nothing and verify vacuously. The returned error is
// always a *ExactProofError.
func VerifyExactVerdict(c *logic.Circuit, f fault.OBD, v ExactVerdict) error {
	fail := func(pair, msg string, err error) error {
		return &ExactProofError{Fault: v.Fault, Pair: pair, Msg: msg, Err: err}
	}
	if v.Fault != f.String() {
		return fail("", fmt.Sprintf("verdict names fault %q, asked to verify %q", v.Fault, f.String()), nil)
	}
	if v.Aborted {
		return nil
	}
	if v.Testable {
		if v.Witness == nil {
			return fail("", "testable verdict carries no witness", nil)
		}
		if !detectsWitness(c, f, v.Witness.V1, v.Witness.V2) {
			return fail(v.Witness.Pair, "witness two-pattern does not detect the fault", nil)
		}
		return nil
	}
	pairs := f.ExcitationPairs()
	if len(v.Pairs) != len(pairs) {
		return fail("", fmt.Sprintf("untestable verdict refutes %d of %d excitation pairs", len(v.Pairs), len(pairs)), nil)
	}
	x := c.Index()
	for i, p := range pairs {
		ref := v.Pairs[i]
		if ref.Pair != p.String() {
			return fail(p.String(), fmt.Sprintf("refutation %d names pair %s", i, ref.Pair), nil)
		}
		d2, conf2 := demandByNet(f.Gate, p.V2)
		d1, conf1 := demandByNet(f.Gate, p.V1)
		if ref.PinConflict {
			// Re-derive the conflict; the prover checks frame 2 first.
			switch {
			case conf2:
				if ref.Frame != 2 {
					return fail(p.String(), "pin conflict claimed in the wrong frame", nil)
				}
			case conf1:
				if ref.Frame != 1 {
					return fail(p.String(), "pin conflict claimed in the wrong frame", nil)
				}
			default:
				return fail(p.String(), "claimed pin conflict does not exist", nil)
			}
			continue
		}
		if conf2 || conf1 {
			return fail(p.String(), "pair has a pin conflict but the refutation claims a proof", nil)
		}
		var b *cnfBuilder
		switch ref.Frame {
		case 2:
			b, _ = obdFrame2(x, f, f.Gate.Eval(p.V1), d2)
		case 1:
			b, _ = obdFrame1(x, d1)
		default:
			return fail(p.String(), fmt.Sprintf("refutation names frame %d", ref.Frame), nil)
		}
		if err := sat.Check(b.nv, b.clauses, ref.Proof); err != nil {
			return fail(p.String(), fmt.Sprintf("frame-%d refutation rejected", ref.Frame), err)
		}
	}
	return nil
}

// ExactReport aggregates per-fault exact verdicts for Analyze and the
// serve endpoint ("sat" stanza).
type ExactReport struct {
	Faults     int            `json:"faults"`
	Testable   int            `json:"testable"`
	Untestable int            `json:"untestable"`
	Aborted    int            `json:"aborted"`
	Verdicts   []ExactVerdict `json:"verdicts"`
}

// ExactAnalyze decides the circuit's full OBD universe under the given
// per-instance conflict budget (0 = DefaultExactBudget).
func ExactAnalyze(c *logic.Circuit, budget int) *ExactReport {
	if budget == 0 {
		budget = DefaultExactBudget
	}
	faults, _ := fault.OBDUniverse(c)
	r := &ExactReport{Faults: len(faults)}
	r.Verdicts = ProveOBDExactList(c, faults, budget)
	for _, v := range r.Verdicts {
		switch {
		case v.Aborted:
			r.Aborted++
		case v.Testable:
			r.Testable++
		default:
			r.Untestable++
		}
	}
	return r
}
