package netcheck_test

import (
	"errors"
	"math/rand"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
	"gobd/internal/sat"
)

// witnessTP converts an exact witness into an atpg two-pattern (Pattern
// IS map[string]logic.Value, so the conversion is direct).
func witnessTP(w *netcheck.ExactWitness) atpg.TwoPattern {
	return atpg.TwoPattern{V1: atpg.Pattern(w.V1), V2: atpg.Pattern(w.V2)}
}

// TestExactFullAdder is the headline acceptance check: the exact prover
// must classify ALL 78 pair faults of the full-adder sum logic with
// zero aborts, matching the Section 4.3 census (65 testable, 13
// untestable), every untestable verdict must survive independent
// verification (re-encoded CNFs + RUP checker), and every testable
// witness must replay through atpg.DetectsOBD.
func TestExactFullAdder(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, skipped := fault.OBDUniverse(c)
	if len(skipped) != 0 {
		t.Fatalf("full adder has non-primitive gates: %v", skipped)
	}
	if len(faults) != 78 {
		t.Fatalf("OBD universe = %d faults, want 78", len(faults))
	}
	verdicts := netcheck.ProveOBDExactList(c, faults, 0)
	truth := must(atpg.AnalyzeExhaustive(c, faults))
	testable, untestable := 0, 0
	for i, v := range verdicts {
		if v.Aborted {
			t.Fatalf("%s: aborted under an unlimited budget", faults[i])
		}
		if v.Testable != truth.Testable[i] {
			t.Errorf("%s: exact says testable=%v, exhaustive enumeration says %v",
				faults[i], v.Testable, truth.Testable[i])
		}
		if err := netcheck.VerifyExactVerdict(c, faults[i], v); err != nil {
			t.Errorf("%s: verdict failed verification: %v", faults[i], err)
		}
		if v.Testable {
			testable++
			if v.Witness == nil {
				t.Fatalf("%s: testable without witness", faults[i])
			}
			if !atpg.DetectsOBD(c, faults[i], witnessTP(v.Witness)) {
				t.Errorf("%s: witness %s does not replay through DetectsOBD", faults[i], v.Witness.Pair)
			}
		} else {
			untestable++
			if len(v.Pairs) != len(faults[i].ExcitationPairs()) {
				t.Errorf("%s: %d refutations for %d excitation pairs", faults[i], len(v.Pairs), len(faults[i].ExcitationPairs()))
			}
		}
	}
	if testable != 65 || untestable != 13 {
		t.Errorf("census = %d testable / %d untestable, want 65/13", testable, untestable)
	}
}

// TestExactMatchesExhaustive is the completeness property test: on
// random primitive circuits with few inputs, the exact verdicts must
// agree with full two-pattern enumeration, for every worker count of
// the enumeration scheduler (whose results are worker-invariant).
func TestExactMatchesExhaustive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs:    3 + rng.Intn(3),
			Gates:     5 + rng.Intn(8),
			Primitive: true,
		})
		faults, _ := fault.OBDUniverse(c)
		verdicts := netcheck.ProveOBDExactList(c, faults, 0)
		for _, workers := range []int{1, 2, 8} {
			truth := must(atpg.NewScheduler(workers).AnalyzeExhaustive(c, faults))
			for i, v := range verdicts {
				if v.Aborted {
					t.Fatalf("seed %d: %s aborted under unlimited budget", seed, faults[i])
				}
				if v.Testable != truth.Testable[i] {
					t.Errorf("seed %d workers %d: %s exact=%v exhaustive=%v",
						seed, workers, faults[i], v.Testable, truth.Testable[i])
				}
			}
		}
		for i, v := range verdicts {
			if err := netcheck.VerifyExactVerdict(c, faults[i], v); err != nil {
				t.Errorf("seed %d: %s verification: %v", seed, faults[i], err)
			}
		}
	}
}

// TestExactSupersetOfStructural pins the relationship between the two
// provers: everything the one-sided structural prover discharges, the
// complete prover must also prove untestable (never testable, never
// aborted under an unlimited budget).
func TestExactSupersetOfStructural(t *testing.T) {
	checked := 0
	for _, seed := range []int64{7, 11, 13, 17, 19, 23} {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs:    3 + rng.Intn(4),
			Gates:     6 + rng.Intn(10),
			Primitive: true,
		})
		faults, _ := fault.OBDUniverse(c)
		structural := netcheck.ProveOBDList(c, faults)
		for i, sv := range structural {
			if !sv.Untestable {
				continue
			}
			checked++
			ev := netcheck.ProveOBDExact(c, faults[i])
			if ev.Testable || ev.Aborted {
				t.Errorf("seed %d: %s structurally untestable but exact says testable=%v aborted=%v",
					seed, faults[i], ev.Testable, ev.Aborted)
			}
		}
	}
	if checked == 0 {
		t.Fatal("property test never exercised the structural prover")
	}
	t.Logf("cross-checked %d structural discharges against the exact prover", checked)
}

// TestPODEMImpliesSATTestable pins the other inclusion: any fault PODEM
// finds a test for must be SAT-testable, and the SAT witness must be a
// working test in its own right.
func TestPODEMImpliesSATTestable(t *testing.T) {
	opt := atpg.DefaultOptions()
	for _, seed := range []int64{29, 31, 37} {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs:    3 + rng.Intn(3),
			Gates:     5 + rng.Intn(8),
			Primitive: true,
		})
		faults, _ := fault.OBDUniverse(c)
		for _, f := range faults {
			tp, st := atpg.GenerateOBDTest(c, f, opt)
			if st != atpg.Detected {
				continue
			}
			ev := netcheck.ProveOBDExact(c, f)
			if !ev.Testable {
				t.Errorf("seed %d: PODEM detects %s (pair %v) but exact prover says untestable",
					seed, f, tp)
				continue
			}
			if !atpg.DetectsOBD(c, f, witnessTP(ev.Witness)) {
				t.Errorf("seed %d: %s SAT witness fails DetectsOBD replay", seed, f)
			}
		}
	}
}

// TestVerifyExactVerdictRejectsTampering checks the verifier is not a
// rubber stamp: corrupting any part of a verdict must fail with a typed
// *ExactProofError.
func TestVerifyExactVerdictRejectsTampering(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	verdicts := netcheck.ProveOBDExactList(c, faults, 0)
	testableIdx, untestableIdx := -1, -1
	for i, v := range verdicts {
		if v.Testable {
			testableIdx = i
			continue
		}
		// For tampering we need an untestable verdict that carries at
		// least one RUP proof (not only pin conflicts).
		for _, ref := range v.Pairs {
			if !ref.PinConflict {
				untestableIdx = i
				break
			}
		}
	}
	if testableIdx < 0 || untestableIdx < 0 {
		t.Fatalf("full adder lacks a usable verdict pair (testable %d, untestable %d)", testableIdx, untestableIdx)
	}
	wantTyped := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: tampered verdict verified", name)
			return
		}
		var pe *netcheck.ExactProofError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is %T, want *ExactProofError", name, err)
		}
	}

	// Flip a testable verdict to untestable without refutations.
	v := verdicts[testableIdx]
	v.Testable = false
	v.Witness = nil
	wantTyped("testable→untestable", netcheck.VerifyExactVerdict(c, faults[testableIdx], v))

	// Flip an untestable verdict to testable with no witness.
	v = verdicts[untestableIdx]
	v.Testable = true
	wantTyped("untestable→testable", netcheck.VerifyExactVerdict(c, faults[untestableIdx], v))

	// Corrupt a witness pattern.
	v = verdicts[testableIdx]
	w := *v.Witness
	w.V1 = map[string]logic.Value{}
	w.V2 = map[string]logic.Value{}
	v.Witness = &w
	wantTyped("gutted witness", netcheck.VerifyExactVerdict(c, faults[testableIdx], v))

	// Corrupt a refutation proof (append a clause over a fresh variable —
	// never RUP).
	v = verdicts[untestableIdx]
	tampered := append([]netcheck.ExactRefutation(nil), v.Pairs...)
	found := false
	for i, ref := range tampered {
		if ref.PinConflict {
			continue
		}
		bogus := append(sat.Proof{{sat.Lit(9999)}}, ref.Proof...)
		tampered[i].Proof = bogus
		found = true
		break
	}
	if !found {
		t.Fatal("untestable verdict has no proof-backed refutation to tamper with")
	}
	v.Pairs = tampered
	wantTyped("corrupted proof", netcheck.VerifyExactVerdict(c, faults[untestableIdx], v))

	// Drop a refutation.
	v = verdicts[untestableIdx]
	v.Pairs = v.Pairs[:len(v.Pairs)-1]
	wantTyped("missing refutation", netcheck.VerifyExactVerdict(c, faults[untestableIdx], v))
}

// TestExactBudgetAborts checks the budget path stays honest: a absurdly
// small conflict budget may abort faults but must never misclassify
// them, and ExactAnalyze must count the three outcomes consistently.
func TestExactBudgetAborts(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	full := netcheck.ProveOBDExactList(c, faults, 0)
	tiny := netcheck.ProveOBDExactList(c, faults, 1)
	for i := range tiny {
		if tiny[i].Aborted {
			continue
		}
		if tiny[i].Testable != full[i].Testable {
			t.Errorf("%s: budget run classified testable=%v, unlimited run %v",
				faults[i], tiny[i].Testable, full[i].Testable)
		}
	}
	r := netcheck.ExactAnalyze(c, 0)
	if r.Faults != len(faults) || r.Testable+r.Untestable+r.Aborted != r.Faults {
		t.Fatalf("inconsistent report counts: %+v", r)
	}
	if r.Testable != 65 || r.Untestable != 13 || r.Aborted != 0 {
		t.Fatalf("report census = %d/%d/%d, want 65/13/0", r.Testable, r.Untestable, r.Aborted)
	}
}

// TestAnalyzeExactStanza checks the Report wiring: Options.Exact hangs
// an ExactReport off Analyze's result under the "sat" JSON key.
func TestAnalyzeExactStanza(t *testing.T) {
	c := cells.FullAdderSumLogic()
	r := netcheck.Analyze(c, netcheck.Options{Exact: true})
	if r.Exact == nil {
		t.Fatal("Options.Exact set but Report.Exact is nil")
	}
	if r.Exact.Untestable != 13 || r.Exact.Testable != 65 {
		t.Fatalf("exact stanza census = %d/%d, want 65 testable / 13 untestable",
			r.Exact.Testable, r.Exact.Untestable)
	}
	if r2 := netcheck.Analyze(c, netcheck.Options{}); r2.Exact != nil {
		t.Fatal("Report.Exact attached without Options.Exact")
	}
}
