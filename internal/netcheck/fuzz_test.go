package netcheck_test

import (
	"reflect"
	"testing"

	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// FuzzLint hardens the linter against arbitrary netlist text: whatever
// parses must lint without panicking, diagnostics must come out in the
// documented deterministic order (a second run is identical), and the
// lint/Validate verdicts must agree on error-severity findings —
// a circuit Validate accepts must produce no Error diagnostics.
func FuzzLint(f *testing.F) {
	seeds := []string{
		"circuit x\ninput a b\noutput y\nnand g1 y a b\n",
		"input a\noutput y\ninv g1 y a\n",
		"input a b\noutput y\nnand g1 y a b\nnand g2 z a y\n", // dead gate g2
		"input a\noutput y\ninv g1 y q\n",                     // undriven q
		"input a\ninv g1 n1 n2\ninv g2 n2 n1\noutput n1\n",    // cycle
		"input a b c\noutput y\naoi21 g y a b c\n",
		"input a\noutput a\n", // PI as PO, no gates
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := logic.ParseString(src)
		if err != nil {
			return
		}
		d1 := netcheck.Lint(c)
		d2 := netcheck.Lint(c)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("lint is not deterministic:\n%v\n%v", d1, d2)
		}
		hasError := false
		for _, d := range d1 {
			if d.Severity == netcheck.Error {
				hasError = true
			}
			if d.Code == "" || d.Message == "" {
				t.Fatalf("diagnostic missing code/message: %+v", d)
			}
		}
		if c.Validate() == nil && hasError {
			t.Fatalf("Validate accepts but lint reports errors: %v", d1)
		}
	})
}
