package netcheck

import (
	"sort"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// HardFault is one entry of the SCOAP-ranked report over the faults the
// prover could not discharge: the ones PODEM will actually have to work
// for, ordered by estimated effort.
type HardFault struct {
	Fault string `json:"fault"`
	// Cost = CC + CO for the cheapest excitation pair.
	Cost int `json:"cost"`
	// CC sums the SCOAP controllabilities of the local values the cheapest
	// pair demands, over both frames.
	CC int `json:"cc"`
	// CO is the SCOAP observability of the site gate's output.
	CO int `json:"co"`
	// Pair is the cheapest excitation pair, in the paper's notation.
	Pair string `json:"pair"`
}

// HardFaults ranks faults by SCOAP effort, hardest first (ties keep the
// input fault order). top caps the list length (0 = all). The circuit
// must validate.
func HardFaults(c *logic.Circuit, faults []fault.OBD, top int) []HardFault {
	if len(faults) == 0 {
		return nil
	}
	tb := logic.ComputeTestability(c)
	out := make([]HardFault, 0, len(faults))
	for _, f := range faults {
		co := tb.CO[f.Gate.Output]
		bestCC := -1
		bestPair := ""
		for _, p := range f.ExcitationPairs() {
			cc := pairCC(f.Gate, p, tb)
			if bestCC < 0 || cc < bestCC {
				bestCC = cc
				bestPair = p.String()
			}
		}
		if bestCC < 0 {
			continue // no excitation pairs: nothing to rank
		}
		out = append(out, HardFault{
			Fault: f.String(),
			Cost:  bestCC + co,
			CC:    bestCC,
			CO:    co,
			Pair:  bestPair,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost > out[j].Cost })
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// pairCC sums the controllability of every local value the pair demands,
// counting each distinct net once per frame (tied nets demand one value).
func pairCC(g *logic.Gate, p fault.Pair, tb *logic.Testability) int {
	cost := 0
	for _, frame := range [][]logic.Value{p.V1, p.V2} {
		seen := make(map[string]bool, len(g.Inputs))
		for pi, in := range g.Inputs {
			if seen[in] {
				continue
			}
			seen[in] = true
			switch frame[pi] {
			case logic.Zero:
				cost += tb.CC0[in]
			case logic.One:
				cost += tb.CC1[in]
			case logic.X:
				// Unconstrained input: costs nothing to justify.
			}
		}
	}
	return cost
}
