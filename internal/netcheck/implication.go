package netcheck

import (
	"fmt"

	"gobd/internal/logic"
)

// This file is the static implication engine: a sound deduction system
// over three-valued net assignments. Values are asserted (assumptions)
// and propagated to a fixpoint through per-gate local consistency: for
// each gate, every complete 0/1 assignment of its distinct input nets
// that agrees with the currently known values is enumerated; if none is
// consistent the assumptions are contradictory, and if all consistent
// assignments agree on some currently unknown net, that value is implied.
// Per-gate enumeration subsumes both forward implication (inputs force
// the output) and backward implication (a forced output pins down
// inputs), and handles tied nets (one net feeding several pins) exactly.
//
// Every derived value carries a proof Step naming the gate and the
// antecedent nets; a contradiction is itself a final Step. The chain is
// machine-checkable: VerifyProof replays it against the circuit and
// re-derives each step from its antecedents alone.
//
// Soundness (the only direction the engine claims): each implied value
// holds in EVERY complete consistent assignment extending the
// assumptions, so a derived contradiction proves no such assignment
// exists. The converse is false by design — a fixpoint without
// contradiction proves nothing (implication closure is incomplete), which
// is why the OBD prover built on top may only ever prove untestability.

// Proof step rules.
const (
	RuleAssume   = "assume"
	RuleImply    = "imply"
	RuleConflict = "conflict"
)

// Step is one link of an implication chain.
type Step struct {
	Rule string      `json:"rule"`
	Net  string      `json:"net,omitempty"`  // net taking a value (assume/imply)
	Val  logic.Value `json:"val,omitempty"`  // the value taken
	Gate string      `json:"gate,omitempty"` // gate whose consistency forced the step
	From []string    `json:"from,omitempty"` // antecedent nets known at the gate
	Note string      `json:"note,omitempty"` // provenance of an assumption
}

// String implements fmt.Stringer.
func (s Step) String() string {
	switch s.Rule {
	case RuleAssume:
		if s.Note != "" {
			return fmt.Sprintf("assume %s=%v (%s)", s.Net, s.Val, s.Note)
		}
		return fmt.Sprintf("assume %s=%v", s.Net, s.Val)
	case RuleImply:
		return fmt.Sprintf("%s=%v by gate %s from %s", s.Net, s.Val, s.Gate, joinComma(s.From))
	default:
		return fmt.Sprintf("contradiction at gate %s given %s", s.Gate, joinComma(s.From))
	}
}

// Proof is an implication chain. A refutation ends in a RuleConflict step.
type Proof []Step

// Refutes reports whether the chain ends in a contradiction.
func (p Proof) Refutes() bool {
	return len(p) > 0 && p[len(p)-1].Rule == RuleConflict
}

// maxEnumNets caps per-gate enumeration (2^n combos). Primitive gates
// have at most three distinct input nets; wider composite gates fall back
// to forward-only evaluation.
const maxEnumNets = 10

// engine is one implication session over a validated circuit.
type engine struct {
	c     *logic.Circuit
	val   map[string]logic.Value
	steps Proof
	// failed latches after the first contradiction; further asserts are
	// no-ops so the proof stays a single chain ending in the conflict.
	failed bool
}

// newEngine starts an empty session. The circuit must validate (the
// engine walks Driver/Fanout, which panic otherwise).
func newEngine(c *logic.Circuit) *engine {
	return &engine{c: c, val: make(map[string]logic.Value)}
}

// Assume asserts net=v and propagates to a fixpoint. It returns false —
// with the contradiction recorded as the final proof step — when the
// assertion is inconsistent with what is already proven.
func (e *engine) Assume(net string, v logic.Value, note string) bool {
	if e.failed {
		return false
	}
	if cur, ok := e.val[net]; ok {
		if cur == v {
			return true // already known; no step needed
		}
		// The assumption clashes with an established value: a conflict
		// "at" the net itself, with the note carrying the provenance.
		e.steps = append(e.steps, Step{
			Rule: RuleConflict, Net: net, Val: v,
			From: []string{net},
			Note: fmt.Sprintf("%s already proven %v, assumption wants %v (%s)", net, cur, v, note),
		})
		e.failed = true
		return false
	}
	e.val[net] = v
	e.steps = append(e.steps, Step{Rule: RuleAssume, Net: net, Val: v, Note: note})
	return e.propagateFrom(net)
}

// Value returns the current value of a net (X when unconstrained).
func (e *engine) Value(net string) logic.Value {
	if v, ok := e.val[net]; ok {
		return v
	}
	return logic.X
}

// Proof returns the step chain so far.
func (e *engine) Proof() Proof { return e.steps }

// propagateFrom runs the gate worklist to a fixpoint starting from the
// gates adjacent to a changed net.
func (e *engine) propagateFrom(net string) bool {
	var queue []*logic.Gate
	queued := make(map[*logic.Gate]bool)
	push := func(g *logic.Gate) {
		if g != nil && !queued[g] {
			queued[g] = true
			queue = append(queue, g)
		}
	}
	touch := func(n string) {
		push(e.c.Driver(n))
		for _, g := range e.c.Fanout(n) {
			push(g)
		}
	}
	touch(net)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		queued[g] = false
		changed, ok := e.implyGate(g)
		if !ok {
			return false
		}
		for _, n := range changed {
			touch(n)
		}
	}
	return true
}

// distinctInputs returns the gate's input nets with duplicates removed,
// preserving pin order (tied nets appear once).
func distinctInputs(g *logic.Gate) []string {
	out := make([]string, 0, len(g.Inputs))
	seen := make(map[string]bool, len(g.Inputs))
	for _, in := range g.Inputs {
		if !seen[in] {
			seen[in] = true
			out = append(out, in)
		}
	}
	return out
}

// implyGate runs local consistency on one gate. It returns the nets whose
// values were newly implied, and ok=false on contradiction.
func (e *engine) implyGate(g *logic.Gate) (changed []string, ok bool) {
	nets := distinctInputs(g)
	outKnown := e.Value(g.Output)

	if len(nets) > maxEnumNets {
		// Forward-only fallback for very wide gates.
		pins := make([]logic.Value, len(g.Inputs))
		for i, in := range g.Inputs {
			pins[i] = e.Value(in)
		}
		out := g.Eval(pins)
		if !out.IsKnown() {
			return nil, true
		}
		if outKnown == logic.X {
			return e.record(g, nets, g.Output, out), true
		}
		if outKnown != out {
			e.conflict(g, nets)
			return nil, false
		}
		return nil, true
	}

	// Enumerate complete 0/1 assignments of the distinct input nets that
	// agree with the known values; collect the feasible images of every
	// net at the gate.
	feasible := make([]logic.Value, len(nets)+1) // per net: 0, 1 or X (=both seen); last slot is the output
	for i := range feasible {
		feasible[i] = logic.Value(0xff) // sentinel: nothing seen yet
	}
	pins := make([]logic.Value, len(g.Inputs))
	any := false
	for m := 0; m < 1<<len(nets); m++ {
		consistent := true
		for i, n := range nets {
			v := logic.FromBool(m&(1<<i) != 0)
			if k := e.Value(n); k.IsKnown() && k != v {
				consistent = false
				break
			}
		}
		if !consistent {
			continue
		}
		for pi, in := range g.Inputs {
			for i, n := range nets {
				if n == in {
					pins[pi] = logic.FromBool(m&(1<<i) != 0)
				}
			}
		}
		out := g.Eval(pins)
		if outKnown.IsKnown() && out != outKnown {
			continue
		}
		any = true
		for i := range nets {
			merge(&feasible[i], logic.FromBool(m&(1<<i) != 0))
		}
		merge(&feasible[len(nets)], out)
	}
	if !any {
		e.conflict(g, nets)
		return nil, false
	}
	for i, n := range nets {
		if v := feasible[i]; v.IsKnown() && e.Value(n) == logic.X {
			changed = append(changed, e.record(g, nets, n, v)...)
		}
	}
	if v := feasible[len(nets)]; v.IsKnown() && outKnown == logic.X {
		changed = append(changed, e.record(g, nets, g.Output, v)...)
	}
	return changed, true
}

// merge folds one observed value into a feasibility slot: first value
// sticks, a differing second value degrades to X.
func merge(slot *logic.Value, v logic.Value) {
	if *slot == logic.Value(0xff) {
		*slot = v
	} else if *slot != v {
		*slot = logic.X
	}
}

// record commits an implied value with its proof step.
func (e *engine) record(g *logic.Gate, nets []string, net string, v logic.Value) []string {
	e.val[net] = v
	e.steps = append(e.steps, Step{
		Rule: RuleImply, Net: net, Val: v, Gate: g.Name, From: e.knownAt(g, nets, net),
	})
	return []string{net}
}

// conflict records the terminal contradiction step.
func (e *engine) conflict(g *logic.Gate, nets []string) {
	e.steps = append(e.steps, Step{
		Rule: RuleConflict, Gate: g.Name, From: e.knownAt(g, nets, ""),
	})
	e.failed = true
}

// knownAt lists the nets of the gate (inputs + output) currently holding
// known values, excluding the net just being implied.
func (e *engine) knownAt(g *logic.Gate, nets []string, except string) []string {
	var from []string
	for _, n := range nets {
		if n != except && e.Value(n).IsKnown() {
			from = append(from, n)
		}
	}
	if g.Output != except && e.Value(g.Output).IsKnown() {
		from = append(from, g.Output)
	}
	return from
}

// Constant is a net proved to hold one value under every primary-input
// assignment, with the refutation of the opposite value as proof.
type Constant struct {
	Net   string      `json:"net"`
	Val   logic.Value `json:"val"`
	Proof Proof       `json:"proof"`
}

// Constants finds structurally constant nets: for each gate output, both
// values are tried under implication closure; if one refutes, the net is
// proved constant at the other. This is the static image of constant
// propagation from tied and reconvergent nets (e.g. NAND(x, !x) ≡ 1).
// Primary inputs are free variables and never constant. The circuit must
// validate.
func Constants(c *logic.Circuit) []Constant {
	var out []Constant
	for _, g := range c.Ordered() {
		for _, v := range []logic.Value{logic.Zero, logic.One} {
			e := newEngine(c)
			if !e.Assume(g.Output, v, "constant probe") {
				out = append(out, Constant{Net: g.Output, Val: v.Not(), Proof: e.Proof()})
				break
			}
		}
	}
	return out
}

// ProofError is a typed replay failure from VerifyProof: the proof does
// not establish what it claims. Step indexes the first offending step.
type ProofError struct {
	Step int
	Msg  string
}

func (e *ProofError) Error() string { return "netcheck: " + e.Msg }

// VerifyProof independently replays an implication chain: every assume
// must be fresh, every imply must be re-derivable from the values
// established by the preceding steps alone, and a conflict step must
// correspond to a gate with no locally consistent assignment. It returns
// an error naming the first step that does not check.
func VerifyProof(c *logic.Circuit, p Proof) error {
	val := make(map[string]logic.Value)
	value := func(n string) logic.Value {
		if v, ok := val[n]; ok {
			return v
		}
		return logic.X
	}
	gates := make(map[string]*logic.Gate, len(c.Gates))
	for _, g := range c.Gates {
		gates[g.Name] = g
	}
	// feasibleAt re-runs the local enumeration of implyGate using only
	// the replayed values.
	feasibleAt := func(g *logic.Gate) (perNet map[string]logic.Value, any bool) {
		nets := distinctInputs(g)
		if len(nets) > maxEnumNets {
			return nil, true
		}
		perNet = make(map[string]logic.Value)
		sentinel := logic.Value(0xff)
		acc := make([]logic.Value, len(nets)+1)
		for i := range acc {
			acc[i] = sentinel
		}
		pins := make([]logic.Value, len(g.Inputs))
		outKnown := value(g.Output)
		for m := 0; m < 1<<len(nets); m++ {
			ok := true
			for i, n := range nets {
				v := logic.FromBool(m&(1<<i) != 0)
				if k := value(n); k.IsKnown() && k != v {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for pi, in := range g.Inputs {
				for i, n := range nets {
					if n == in {
						pins[pi] = logic.FromBool(m&(1<<i) != 0)
					}
				}
			}
			out := g.Eval(pins)
			if outKnown.IsKnown() && out != outKnown {
				continue
			}
			any = true
			for i := range nets {
				merge(&acc[i], logic.FromBool(m&(1<<i) != 0))
			}
			merge(&acc[len(nets)], out)
		}
		for i, n := range nets {
			perNet[n] = acc[i]
		}
		perNet[g.Output] = acc[len(nets)]
		return perNet, any
	}
	for i, s := range p {
		switch s.Rule {
		case RuleAssume:
			if v, ok := val[s.Net]; ok && v != s.Val {
				return &ProofError{Step: i, Msg: fmt.Sprintf("step %d assumes %s=%v over established %v without a conflict step", i, s.Net, s.Val, v)}
			}
			val[s.Net] = s.Val
		case RuleImply:
			g, ok := gates[s.Gate]
			if !ok {
				return &ProofError{Step: i, Msg: fmt.Sprintf("step %d implies via unknown gate %q", i, s.Gate)}
			}
			perNet, any := feasibleAt(g)
			if !any {
				return &ProofError{Step: i, Msg: fmt.Sprintf("step %d implies at gate %s which is already contradictory", i, s.Gate)}
			}
			forced, touched := perNet[s.Net]
			if !touched || !forced.IsKnown() || forced != s.Val {
				return &ProofError{Step: i, Msg: fmt.Sprintf("step %d claims %s=%v forced by gate %s, but it is not", i, s.Net, s.Val, s.Gate)}
			}
			val[s.Net] = s.Val
		case RuleConflict:
			if i != len(p)-1 {
				return &ProofError{Step: i, Msg: fmt.Sprintf("conflict step %d is not terminal", i)}
			}
			if s.Gate == "" {
				// Assumption clash: the conflicting value must already be set.
				v, ok := val[s.Net]
				if !ok || v == s.Val {
					return &ProofError{Step: i, Msg: fmt.Sprintf("step %d claims an assumption clash on %s that does not exist", i, s.Net)}
				}
				return nil
			}
			g, ok := gates[s.Gate]
			if !ok {
				return &ProofError{Step: i, Msg: fmt.Sprintf("conflict step %d names unknown gate %q", i, s.Gate)}
			}
			if _, any := feasibleAt(g); any {
				return &ProofError{Step: i, Msg: fmt.Sprintf("conflict step %d at gate %s is not a real contradiction", i, s.Gate)}
			}
			return nil
		default:
			return &ProofError{Step: i, Msg: fmt.Sprintf("step %d has unknown rule %q", i, s.Rule)}
		}
	}
	return nil
}
