package netcheck

import (
	"testing"

	"gobd/internal/cells"
	"gobd/internal/logic"
)

// nandPair builds inputs a,b -> g1 = NAND(a,b) -> output y.
func nandPair(t *testing.T) *logic.Circuit {
	t.Helper()
	c := logic.New("np")
	for _, in := range []string{"a", "b"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	mustGate(t, c, "g1", logic.Nand, "y", "a", "b")
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEngineBackwardImplication(t *testing.T) {
	c := nandPair(t)
	e := newEngine(c)
	// NAND output 0 pins both inputs to 1 — the backward direction a
	// forward evaluator cannot see.
	if !e.Assume("y", logic.Zero, "test") {
		t.Fatalf("consistent assumption refuted: %v", e.Proof())
	}
	if e.Value("a") != logic.One || e.Value("b") != logic.One {
		t.Fatalf("backward implication missing: a=%v b=%v", e.Value("a"), e.Value("b"))
	}
	if err := VerifyProof(c, e.Proof()); err != nil {
		t.Fatalf("proof does not replay: %v", err)
	}
}

func TestEngineContradiction(t *testing.T) {
	c := nandPair(t)
	e := newEngine(c)
	if !e.Assume("a", logic.Zero, "test") {
		t.Fatal("a=0 alone cannot be contradictory")
	}
	// a=0 forces y=1; demanding y=0 must refute.
	if e.Value("y") != logic.One {
		t.Fatalf("forward implication missing: y=%v", e.Value("y"))
	}
	if e.Assume("y", logic.Zero, "test") {
		t.Fatal("contradictory assumption accepted")
	}
	p := e.Proof()
	if !p.Refutes() {
		t.Fatalf("proof does not end in a conflict: %v", p)
	}
	if err := VerifyProof(c, p); err != nil {
		t.Fatalf("refutation does not replay: %v", err)
	}
}

func TestEngineTiedNets(t *testing.T) {
	// g1 = NAND(x, x) is an inverter; output 0 forces x=1 and vice versa.
	c := logic.New("tied")
	if err := c.AddInput("x"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", logic.Nand, "y", "x", "x")
	c.AddOutput("y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(c)
	if !e.Assume("y", logic.Zero, "test") {
		t.Fatal("refuted consistent assumption")
	}
	if e.Value("x") != logic.One {
		t.Fatalf("tied-net implication missing: x=%v", e.Value("x"))
	}
}

func TestConstantsFullAdder(t *testing.T) {
	// The paper's redundant full-adder sum circuit: d2·qi = (A·!B)·(!A·B)
	// can never be satisfied, so d3 = NAND(d2, qi) is structurally 1.
	c := cells.FullAdderSumLogic()
	consts := Constants(c)
	if len(consts) != 1 {
		t.Fatalf("constants = %v, want exactly d3", consts)
	}
	k := consts[0]
	if k.Net != "d3" || k.Val != logic.One {
		t.Fatalf("constant = %s=%v, want d3=1", k.Net, k.Val)
	}
	if !k.Proof.Refutes() {
		t.Fatal("constant proof does not end in a contradiction")
	}
	if err := VerifyProof(c, k.Proof); err != nil {
		t.Fatalf("constant proof does not replay: %v", err)
	}
}

func TestConstantsCleanCircuits(t *testing.T) {
	for _, c := range []*logic.Circuit{logic.C17(), logic.RippleCarryAdder(2), logic.Mux41()} {
		if consts := Constants(c); len(consts) != 0 {
			t.Fatalf("%s: unexpected constants %v", c.Name, consts)
		}
	}
}

func TestVerifyProofRejectsTampering(t *testing.T) {
	c := cells.FullAdderSumLogic()
	k := Constants(c)[0]

	// Flipping a derived value must break replay.
	bad := append(Proof(nil), k.Proof...)
	for i := range bad {
		if bad[i].Rule == RuleImply {
			bad[i].Val = bad[i].Val.Not()
			break
		}
	}
	if err := VerifyProof(c, bad); err == nil {
		t.Fatal("verifier accepted a proof with a flipped implication")
	}

	// A conflict step without the contradiction behind it must break too.
	head := append(Proof(nil), k.Proof[0])
	head = append(head, k.Proof[len(k.Proof)-1])
	if err := VerifyProof(c, head); err == nil {
		t.Fatal("verifier accepted a truncated refutation")
	}
}
