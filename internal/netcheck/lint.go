package netcheck

import (
	"fmt"
	"sort"

	"gobd/internal/logic"
)

// Lint runs the structural checks over the raw gate list. It deliberately
// avoids the Circuit's construction caches and validation APIs (Driver,
// Fanout, Ordered all panic on broken circuits), so it can describe
// exactly the netlists Validate refuses — including hand-assembled ones
// that bypassed AddGate's invariants. Diagnostics come out in a
// deterministic order: cycles, then per-net errors sorted by net, then
// warnings.
func Lint(c *logic.Circuit) []Diagnostic {
	var diags []Diagnostic

	// Index the raw slice: every driver of every net, and per-net readers.
	drivers := make(map[string][]*logic.Gate)
	readers := make(map[string][]*logic.Gate)
	isInput := make(map[string]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		isInput[in] = true
	}
	for _, g := range c.Gates {
		drivers[g.Output] = append(drivers[g.Output], g)
		for _, in := range g.Inputs {
			readers[in] = append(readers[in], g)
		}
	}

	// Combinational cycles, with the actual gate path named.
	if cyc := c.FindCycle(); len(cyc) > 0 {
		path := make([]string, 0, len(cyc))
		for _, g := range cyc {
			path = append(path, g.Name)
		}
		diags = append(diags, Diagnostic{
			Code:     CodeCycle,
			Severity: Error,
			Gate:     cyc[0].Name,
			Path:     path,
			Message:  fmt.Sprintf("combinational cycle: %s -> %s", joinArrow(path), path[0]),
		})
	}

	// Multi-driven nets (only constructible by mutating Gates directly,
	// but that is precisely what a lint pass must not assume away) and
	// gates driving declared primary inputs.
	var multi []string
	for net, ds := range drivers {
		if len(ds) > 1 || isInput[net] {
			multi = append(multi, net)
		}
	}
	sort.Strings(multi)
	for _, net := range multi {
		names := make([]string, 0, len(drivers[net])+1)
		if isInput[net] {
			names = append(names, "primary input")
		}
		for _, g := range drivers[net] {
			names = append(names, g.Name)
		}
		diags = append(diags, Diagnostic{
			Code:     CodeMultiDriven,
			Severity: Error,
			Net:      net,
			Path:     names,
			Message:  fmt.Sprintf("net %q driven by %s", net, joinComma(names)),
		})
	}

	// Floating nets: read by a gate or declared as an output, but neither
	// a primary input nor driven. A flip-flop sampling a floating net gets
	// its own code — the broken wire corrupts state, not just one cone.
	type use struct{ net, by, code string }
	var floating []use
	seenFloat := make(map[string]bool)
	for _, g := range c.Gates {
		for _, in := range g.Inputs {
			if !isInput[in] && len(drivers[in]) == 0 && !seenFloat[in] {
				seenFloat[in] = true
				code := CodeUndriven
				if g.Type == logic.Dff {
					code = CodeFFFloatingD
				}
				floating = append(floating, use{in, "gate " + g.Name, code})
			}
		}
	}
	for _, out := range c.Outputs {
		if !isInput[out] && len(drivers[out]) == 0 && !seenFloat[out] {
			seenFloat[out] = true
			floating = append(floating, use{out, "primary output list", CodeUndriven})
		}
	}
	sort.Slice(floating, func(i, j int) bool { return floating[i].net < floating[j].net })
	for _, f := range floating {
		msg := fmt.Sprintf("net %q is floating: used by %s but never driven and not a primary input", f.net, f.by)
		if f.code == CodeFFFloatingD {
			msg = fmt.Sprintf("flip-flop %s samples net %q which is never driven and not a primary input", f.by, f.net)
		}
		diags = append(diags, Diagnostic{
			Code:     f.code,
			Severity: Error,
			Net:      f.net,
			Message:  msg,
		})
	}

	// Duplicate primary-output declarations.
	seenPO := make(map[string]int)
	for _, out := range c.Outputs {
		seenPO[out]++
	}
	var dupPOs []string
	for out, n := range seenPO {
		if n > 1 {
			dupPOs = append(dupPOs, out)
		}
	}
	sort.Strings(dupPOs)
	for _, out := range dupPOs {
		diags = append(diags, Diagnostic{
			Code:     CodeDupOutput,
			Severity: Warning,
			Net:      out,
			Message:  fmt.Sprintf("net %q declared as a primary output %d times", out, seenPO[out]),
		})
	}

	// Unreachable gates: outputs that reach no primary output. Walk
	// backwards from the POs over the (possibly multi-)driver index.
	reachesPO := make(map[string]bool)
	var stack []string
	for _, out := range c.Outputs {
		if !reachesPO[out] {
			reachesPO[out] = true
			stack = append(stack, out)
		}
	}
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range drivers[net] {
			for _, in := range g.Inputs {
				if !reachesPO[in] {
					reachesPO[in] = true
					stack = append(stack, in)
				}
			}
		}
	}
	for _, g := range c.Gates {
		// Flip-flops are judged by the scan-chain pass below (a dead state
		// bit is ff-unobservable-q, not generic dead logic).
		if g.Type != logic.Dff && !reachesPO[g.Output] {
			diags = append(diags, Diagnostic{
				Code:     CodeUnreachable,
				Severity: Warning,
				Gate:     g.Name,
				Net:      g.Output,
				Message:  fmt.Sprintf("gate %q output %q reaches no primary output (dead logic)", g.Name, g.Output),
			})
		}
	}

	// Dangling primary inputs: declared but feeding nothing and not
	// themselves outputs.
	for _, in := range c.Inputs {
		if len(readers[in]) == 0 && seenPO[in] == 0 {
			diags = append(diags, Diagnostic{
				Code:     CodeDanglingPI,
				Severity: Warning,
				Net:      in,
				Message:  fmt.Sprintf("primary input %q feeds no gate and no output", in),
			})
		}
	}

	// Scan-chain pass: per-flip-flop structural health, in gate order (the
	// canonical chain order used by seq.FromCircuit).
	for _, g := range c.Gates {
		if g.Type != logic.Dff {
			continue
		}
		d := g.Inputs[0]
		if d == g.Output {
			diags = append(diags, Diagnostic{
				Code:     CodeFFSelfLoop,
				Severity: Warning,
				Gate:     g.Name,
				Net:      g.Output,
				Message:  fmt.Sprintf("flip-flop %q samples its own output %q: the state bit can never change functionally", g.Name, g.Output),
			})
		}
		if len(readers[g.Output]) == 0 && seenPO[g.Output] == 0 {
			diags = append(diags, Diagnostic{
				Code:     CodeFFUnobservableQ,
				Severity: Warning,
				Gate:     g.Name,
				Net:      g.Output,
				Message:  fmt.Sprintf("flip-flop %q output %q feeds no gate and no primary output (dead state bit)", g.Name, g.Output),
			})
		}
	}

	return diags
}

func joinArrow(parts []string) string { return join(parts, " -> ") }

func joinComma(parts []string) string { return join(parts, ", ") }

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
