package netcheck

import (
	"strings"
	"testing"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

func mustGate(t *testing.T, c *logic.Circuit, name string, gt logic.GateType, out string, ins ...string) *logic.Gate {
	t.Helper()
	g, err := c.AddGate(name, gt, out, ins...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func codes(diags []Diagnostic) map[string]int {
	m := make(map[string]int)
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

func TestLintCleanCircuit(t *testing.T) {
	if diags := Lint(logic.C17()); len(diags) != 0 {
		t.Fatalf("c17 should lint clean, got %v", diags)
	}
}

func TestLintCycle(t *testing.T) {
	c := logic.New("cyc")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", logic.Nand, "x", "a", "y")
	mustGate(t, c, "g2", logic.Inv, "y", "x")
	c.AddOutput("x")
	diags := Lint(c)
	var cyc *Diagnostic
	for i := range diags {
		if diags[i].Code == CodeCycle {
			cyc = &diags[i]
		}
	}
	if cyc == nil {
		t.Fatalf("cycle not reported: %v", diags)
	}
	if cyc.Severity != Error {
		t.Fatalf("cycle severity = %v, want error", cyc.Severity)
	}
	if len(cyc.Path) != 2 {
		t.Fatalf("cycle path = %v, want both gates", cyc.Path)
	}
	for _, g := range []string{"g1", "g2"} {
		if !strings.Contains(cyc.Message, g) {
			t.Fatalf("cycle message %q does not name gate %s", cyc.Message, g)
		}
	}
}

func TestLintFloatingNet(t *testing.T) {
	c := logic.New("float")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", logic.Nand, "y", "a", "ghost")
	c.AddOutput("y")
	c.AddOutput("ghost2") // floating via the PO list
	diags := Lint(c)
	n := codes(diags)[CodeUndriven]
	if n != 2 {
		t.Fatalf("want 2 undriven-net diagnostics, got %d: %v", n, diags)
	}
}

func TestLintMultiDriven(t *testing.T) {
	c := logic.New("multi")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", logic.Inv, "y", "a")
	// A second driver is only constructible by mutating the raw slice —
	// exactly the corruption the lint pass must still describe.
	c.Gates = append(c.Gates, &logic.Gate{Name: "g2", Type: logic.Inv, Inputs: []string{"a"}, Output: "y"})
	c.AddOutput("y")
	diags := Lint(c)
	found := false
	for _, d := range diags {
		if d.Code == CodeMultiDriven && d.Net == "y" &&
			strings.Contains(d.Message, "g1") && strings.Contains(d.Message, "g2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("multi-driven net not reported with both drivers: %v", diags)
	}

	// A gate driving a declared primary input is the same class of error.
	c2 := logic.New("drivespi")
	if err := c2.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	c2.Gates = append(c2.Gates, &logic.Gate{Name: "g1", Type: logic.Inv, Inputs: []string{"a"}, Output: "b"})
	c2.AddOutput("b")
	if n := codes(Lint(c2))[CodeMultiDriven]; n != 1 {
		t.Fatalf("gate driving a PI not reported: %v", Lint(c2))
	}
}

func TestLintUnreachableGate(t *testing.T) {
	c := logic.New("dead")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "live", logic.Inv, "y", "a")
	mustGate(t, c, "dead1", logic.Inv, "z", "a")
	c.AddOutput("y")
	diags := Lint(c)
	found := false
	for _, d := range diags {
		if d.Code == CodeUnreachable {
			if d.Gate != "dead1" {
				t.Fatalf("wrong gate reported unreachable: %v", d)
			}
			if d.Severity != Warning {
				t.Fatalf("unreachable gate should be a warning: %v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("dead gate not reported: %v", diags)
	}
}

func TestLintDanglingInputAndDupOutput(t *testing.T) {
	c := logic.New("dangle")
	for _, in := range []string{"a", "unused"} {
		if err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	mustGate(t, c, "g1", logic.Inv, "y", "a")
	c.AddOutput("y")
	c.Outputs = append(c.Outputs, "y") // duplicate declaration
	m := codes(Lint(c))
	if m[CodeDanglingPI] != 1 {
		t.Fatalf("dangling PI not reported: %v", Lint(c))
	}
	if m[CodeDupOutput] != 1 {
		t.Fatalf("duplicate PO not reported: %v", Lint(c))
	}
}

func TestReportErrorsGating(t *testing.T) {
	// Analyze must stop after lint when the circuit is structurally broken
	// (the downstream passes would panic on it).
	c := logic.New("cyc")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "g1", logic.Nand, "x", "a", "y")
	mustGate(t, c, "g2", logic.Inv, "y", "x")
	c.AddOutput("x")
	r := Analyze(c, Options{})
	if r.Errors() == 0 {
		t.Fatal("broken circuit reported no errors")
	}
	if r.Verdicts != nil || r.Constants != nil || r.HardFaults != nil {
		t.Fatal("Analyze ran fault passes on a broken circuit")
	}
}

// seqCircuit builds a small healthy sequential netlist:
//
//	q = DFF(d); d = NAND(a, q); y = NOT(q)
func seqCircuit(t *testing.T) *logic.Circuit {
	t.Helper()
	c := logic.New("seq")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "q", logic.Dff, "q", "d")
	mustGate(t, c, "d", logic.Nand, "d", "a", "q")
	mustGate(t, c, "y", logic.Inv, "y", "q")
	c.AddOutput("y")
	return c
}

func TestLintSequentialClean(t *testing.T) {
	c := seqCircuit(t)
	if diags := Lint(c); len(diags) != 0 {
		t.Fatalf("healthy sequential circuit should lint clean, got %v", diags)
	}
}

func TestLintFFFloatingD(t *testing.T) {
	c := logic.New("ffd")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "q", logic.Dff, "q", "ghost") // samples an undriven net
	mustGate(t, c, "y", logic.And, "y", "a", "q")
	c.AddOutput("y")
	diags := Lint(c)
	m := codes(diags)
	if m[CodeFFFloatingD] != 1 {
		t.Fatalf("want 1 ff-floating-d diagnostic, got %v", diags)
	}
	if m[CodeUndriven] != 0 {
		t.Fatalf("floating D pin double-reported as undriven-net: %v", diags)
	}
	for _, d := range diags {
		if d.Code == CodeFFFloatingD && d.Severity != Error {
			t.Fatalf("ff-floating-d severity = %v, want error", d.Severity)
		}
	}
}

func TestLintFFUnobservableQ(t *testing.T) {
	c := logic.New("deadq")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "q", logic.Dff, "q", "d") // q feeds nothing
	mustGate(t, c, "d", logic.Inv, "d", "a")
	mustGate(t, c, "y", logic.Buf, "y", "a")
	c.AddOutput("y")
	diags := Lint(c)
	m := codes(diags)
	if m[CodeFFUnobservableQ] != 1 {
		t.Fatalf("want 1 ff-unobservable-q diagnostic, got %v", diags)
	}
	// The flip-flop itself must not also be flagged as generic dead logic.
	for _, d := range diags {
		if d.Code == CodeUnreachable && d.Gate == "q" {
			t.Fatalf("DFF double-reported as unreachable: %v", diags)
		}
	}
}

func TestLintFFSelfLoop(t *testing.T) {
	c := logic.New("selfloop")
	if err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	mustGate(t, c, "q", logic.Dff, "q", "q") // D == Q: frozen state bit
	mustGate(t, c, "y", logic.And, "y", "a", "q")
	c.AddOutput("y")
	diags := Lint(c)
	if codes(diags)[CodeFFSelfLoop] != 1 {
		t.Fatalf("want 1 ff-self-loop diagnostic, got %v", diags)
	}
}

// TestAnalyzeSequentialCore checks Analyze routes the fault-level passes
// of a DFF-bearing circuit through its combinational core: the report
// counts flip-flops and carries verdicts over the core's OBD universe.
func TestAnalyzeSequentialCore(t *testing.T) {
	c := seqCircuit(t)
	r := Analyze(c, Options{Exact: true})
	if r.FFs != 1 {
		t.Fatalf("Report.FFs = %d, want 1", r.FFs)
	}
	if r.Errors() > 0 {
		t.Fatalf("unexpected error diagnostics: %v", r.Diagnostics)
	}
	core, err := c.CombinationalCore()
	if err != nil {
		t.Fatal(err)
	}
	coreFaults, _ := fault.OBDUniverse(core)
	if len(r.Verdicts) != len(coreFaults) {
		t.Fatalf("verdicts over %d faults, want the core universe %d", len(r.Verdicts), len(coreFaults))
	}
	if r.Exact == nil || r.Exact.Faults != len(coreFaults) {
		t.Fatalf("exact pass did not run over the core universe: %+v", r.Exact)
	}
}
