// Package netcheck is a multi-pass static analyzer over logic.Circuit
// netlists. It turns the repo's implicit structural invariants into
// checked, reported facts — before any simulation or PODEM search runs:
//
//   - a structural lint pass (Lint) producing typed diagnostics:
//     combinational cycles with the gate path named, floating and
//     multi-driven nets, gates whose output reaches no primary output,
//     dangling primary inputs, and scan-chain findings on sequential
//     netlists (floating D pins, unobservable state bits, self-looped
//     flip-flops);
//   - a static implication engine (Implications) doing constant
//     propagation from structurally tied nets and direct implications
//     across gates, with every derived value carrying a machine-checkable
//     proof step chain;
//   - an OBD untestability prover (ProveOBD) that combines the paper's
//     local excitation pairs with implication closure and structural
//     dominators to prove faults untestable without invoking PODEM. The
//     prover is one-sided by design: it may prove untestability, never
//     testability (see DESIGN.md, "Static analysis");
//   - a SCOAP-backed hard-fault report (HardFaults) ranking the surviving
//     faults by controllability/observability cost.
//
// Analyze bundles all passes into one Report; cmd/obdlint surfaces it as
// text or JSON, and atpg.Options.Prune feeds generator fault lists
// through the prover.
package netcheck

import (
	"errors"
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// ErrUnknownSeverity is the sentinel under every Severity.UnmarshalText
// failure (matchable with errors.Is across the /v1/lint wire format).
var ErrUnknownSeverity = errors.New("netcheck: unknown severity")

// Severity classifies a lint diagnostic.
type Severity int

// Severities. Errors break evaluation semantics (Validate would refuse
// the circuit); warnings flag structure that simulates fine but usually
// indicates a netlist bug or dead silicon.
const (
	Warning Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalText makes severities render as words in JSON reports.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the MarshalText form, so JSON reports round-trip
// (the /v1/lint endpoint's clients decode them).
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("%w %q", ErrUnknownSeverity, b)
	}
	return nil
}

// Diagnostic codes produced by the lint pass.
const (
	CodeCycle       = "combinational-cycle"
	CodeUndriven    = "undriven-net"
	CodeMultiDriven = "multi-driven-net"
	CodeUnreachable = "unreachable-gate"
	CodeDanglingPI  = "dangling-input"
	CodeDupOutput   = "duplicate-output"
	CodeConstantNet = "constant-net"
	// Scan-chain diagnostics for sequential (DFF-bearing) netlists.
	CodeFFFloatingD     = "ff-floating-d"     // a flip-flop samples a net nothing drives
	CodeFFUnobservableQ = "ff-unobservable-q" // a state bit feeds no logic and no output
	CodeFFSelfLoop      = "ff-self-loop"      // D == Q: the bit can never change
)

// Diagnostic is one typed lint finding.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Net      string   `json:"net,omitempty"`  // net the finding is about
	Gate     string   `json:"gate,omitempty"` // gate the finding is about
	Path     []string `json:"path,omitempty"` // e.g. the gates on a cycle
	Message  string   `json:"message"`
}

// String implements fmt.Stringer.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%v[%s] %s", d.Severity, d.Code, d.Message)
}

// Report is the combined outcome of every netcheck pass over one circuit.
type Report struct {
	Circuit string `json:"circuit"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
	// FFs counts the circuit's flip-flops; when non-zero the fault-level
	// passes below ran over the combinational core (state bits as
	// pseudo-inputs, next-state functions as pseudo-outputs).
	FFs         int          `json:"ffs,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Constants lists nets proved to hold one value under every input
	// assignment (empty unless the circuit lints clean enough to run the
	// implication engine).
	Constants []Constant `json:"constants,omitempty"`
	// Verdicts holds one OBD untestability verdict per fault of the
	// circuit's OBD universe (nil when the universe was not analyzed).
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// HardFaults ranks the faults the prover could NOT discharge by SCOAP
	// effort, hardest first.
	HardFaults []HardFault `json:"hard_faults,omitempty"`
	// Exact holds the complete SAT-backed verdicts (testable with
	// witness / untestable with proof / aborted) when Options.Exact asked
	// for them; the wire key is "sat".
	Exact *ExactReport `json:"sat,omitempty"`
}

// Errors reports how many Error-severity diagnostics the lint pass found.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// UntestableCount returns how many faults the prover discharged.
func (r *Report) UntestableCount() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Untestable {
			n++
		}
	}
	return n
}

// Options tunes Analyze.
type Options struct {
	// SkipFaults disables the OBD untestability and hard-fault passes
	// (lint and constants only).
	SkipFaults bool
	// TopHard caps the hard-fault ranking length (0 = all).
	TopHard int
	// Exact runs the SAT-backed exact prover over the OBD universe and
	// attaches an ExactReport (ignored under SkipFaults).
	Exact bool
	// ExactBudget caps the solver conflicts per SAT instance when Exact
	// is set (0 = DefaultExactBudget).
	ExactBudget int
}

// Analyze runs every pass that the circuit's structural health permits:
// lint always; constants, OBD verdicts and the hard-fault ranking only
// when lint found no Error diagnostics (the downstream passes assume a
// circuit Validate accepts). Sequential circuits are linted whole —
// including the scan-chain pass — and then analyzed through their
// combinational core, so the fault universe and every verdict name the
// same gates concurrent test hardware can actually reach.
func Analyze(c *logic.Circuit, opt Options) *Report {
	r := &Report{
		Circuit: c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Gates:   len(c.Gates),
		FFs:     len(c.DFFs()),
	}
	r.Diagnostics = Lint(c)
	if r.Errors() > 0 {
		return r
	}
	if r.FFs > 0 {
		core, err := c.CombinationalCore()
		if err != nil {
			// Unreachable after a clean lint (a Q net colliding with a
			// primary input is multi-driven), but report rather than guess.
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code:     CodeMultiDriven,
				Severity: Error,
				Message:  fmt.Sprintf("combinational core extraction failed: %v", err),
			})
			return r
		}
		c = core
	}
	consts := Constants(c)
	r.Constants = consts
	for _, k := range consts {
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Code:     CodeConstantNet,
			Severity: Warning,
			Net:      k.Net,
			Message: fmt.Sprintf("net %q is structurally constant %v (proved by a %d-step implication chain)",
				k.Net, k.Val, len(k.Proof)),
		})
	}
	if opt.SkipFaults {
		return r
	}
	faults, _ := fault.OBDUniverse(c)
	r.Verdicts = ProveOBDList(c, faults)
	var surviving []fault.OBD
	for i, v := range r.Verdicts {
		if !v.Untestable {
			surviving = append(surviving, faults[i])
		}
	}
	r.HardFaults = HardFaults(c, surviving, opt.TopHard)
	if opt.Exact {
		r.Exact = ExactAnalyze(c, opt.ExactBudget)
	}
	return r
}
