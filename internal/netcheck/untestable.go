package netcheck

import (
	"fmt"

	"gobd/internal/fault"
	"gobd/internal/logic"
)

// This file proves OBD faults untestable without running PODEM. A fault
// is discharged when one of four static arguments closes every escape:
//
//  1. the gate has no excitation pairs at all (series transistor whose
//     conduction is never solitary);
//  2. the gate output reaches no primary output (dead logic);
//  3. some dominator on the propagation path blocks the fault effect for
//     every side-input assignment;
//  4. every excitation pair is individually refuted: the pair's V2 local
//     values plus the side values forced by the structural dominators are
//     contradictory under implication closure (frame 2), or the V1 values
//     alone are unjustifiable (frame 1), or the pair demands two different
//     values of one tied net.
//
// Every implication-based refutation carries the proof chain and can be
// replayed with VerifyProof. The prover is ONE-SIDED: Untestable=false
// means "not proven", not "testable" — implication closure without a
// full decision procedure cannot certify justifiability. PODEM remains
// the completeness authority; the prover only removes work from it.

// Reason explains why a fault was proved untestable.
type Reason string

// Untestability reasons.
const (
	ReasonNoExcitation Reason = "no-excitation-pairs"
	ReasonUnobservable Reason = "unobservable"
	ReasonBlocked      Reason = "dominator-blocked"
	ReasonPairsRefuted Reason = "all-pairs-refuted"
)

// PairRefutation records why one excitation pair cannot be realized.
type PairRefutation struct {
	Pair  string `json:"pair"`
	Frame int    `json:"frame"` // 1: V1 unjustifiable, 2: V2 + propagation contradictory
	// PinConflict marks pairs demanding two different values of one net
	// that feeds several pins of the site gate; no implication needed.
	PinConflict bool `json:"pin_conflict,omitempty"`
	// Proof is the implication chain ending in the contradiction
	// (machine-checkable via VerifyProof). Empty for pin conflicts.
	Proof Proof `json:"proof,omitempty"`
}

// Verdict is the prover's outcome for one OBD fault.
type Verdict struct {
	Fault      string `json:"fault"`
	Untestable bool   `json:"untestable"`
	Reason     Reason `json:"reason,omitempty"`
	// Dominators lists the gates every propagation path must pass (for
	// ReasonBlocked: the single blocking gate).
	Dominators []string `json:"dominators,omitempty"`
	// Pairs holds the per-pair refutations when Reason is
	// ReasonPairsRefuted; nil when the fault was not proved untestable.
	Pairs []PairRefutation `json:"pairs,omitempty"`
}

// sideVal is one forced dominator side-input value.
type sideVal struct {
	net  string
	val  logic.Value
	gate string
}

// ProveOBD attempts a static untestability proof for one fault. The
// circuit must validate.
func ProveOBD(c *logic.Circuit, f fault.OBD) Verdict {
	v := Verdict{Fault: f.String()}
	pairs := f.ExcitationPairs()
	if len(pairs) == 0 {
		v.Untestable = true
		v.Reason = ReasonNoExcitation
		return v
	}
	reach := reachableNets(c, f.Gate.Output)
	observable := false
	for _, po := range c.Outputs {
		if reach[po] {
			observable = true
			break
		}
	}
	if !observable {
		v.Untestable = true
		v.Reason = ReasonUnobservable
		return v
	}
	doms := dominators(c, f.Gate, reach)
	var reqs []sideVal
	for _, d := range doms {
		v.Dominators = append(v.Dominators, d.Name)
		forced, blocked := forcedSide(d, reach)
		if blocked {
			v.Untestable = true
			v.Reason = ReasonBlocked
			v.Dominators = []string{d.Name}
			v.Pairs = nil
			return v
		}
		reqs = append(reqs, forced...)
	}
	var refs []PairRefutation
	for _, p := range pairs {
		ref, refuted := refutePair(c, f, p, reqs)
		if !refuted {
			v.Untestable = false
			return v
		}
		refs = append(refs, ref)
	}
	v.Untestable = true
	v.Reason = ReasonPairsRefuted
	v.Pairs = refs
	return v
}

// ProveOBDList proves what it can over a fault list; the result is
// index-aligned with faults.
func ProveOBDList(c *logic.Circuit, faults []fault.OBD) []Verdict {
	out := make([]Verdict, len(faults))
	for i, f := range faults {
		out[i] = ProveOBD(c, f)
	}
	return out
}

// UntestableOBD is the mask form of ProveOBDList, used by atpg's Prune
// option: true where the prover discharged the fault.
func UntestableOBD(c *logic.Circuit, faults []fault.OBD) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = ProveOBD(c, f).Untestable
	}
	return out
}

// refutePair tries to kill one excitation pair. Frame 2 first (it carries
// the dominator constraints and refutes most often), then frame 1, which
// is pure justification: V1 must merely be reachable as a stable state, so
// no propagation constraint applies there.
func refutePair(c *logic.Circuit, f fault.OBD, p fault.Pair, reqs []sideVal) (PairRefutation, bool) {
	for _, frame := range []struct {
		n    int
		vals []logic.Value
		side []sideVal
	}{{2, p.V2, reqs}, {1, p.V1, nil}} {
		demands, conflict := demandByNet(f.Gate, frame.vals)
		if conflict {
			return PairRefutation{Pair: p.String(), Frame: frame.n, PinConflict: true}, true
		}
		e := newEngine(c)
		ok := true
		for _, d := range demands {
			if !e.Assume(d.net, d.val, fmt.Sprintf("excitation %s frame %d of %s", p, frame.n, f)) {
				ok = false
				break
			}
		}
		if ok {
			for _, r := range frame.side {
				if !e.Assume(r.net, r.val, fmt.Sprintf("side value forced by dominator %s", r.gate)) {
					ok = false
					break
				}
			}
		}
		if !ok {
			return PairRefutation{Pair: p.String(), Frame: frame.n, Proof: e.Proof()}, true
		}
	}
	return PairRefutation{}, false
}

// demandByNet folds per-pin values onto the gate's distinct input nets;
// conflict is true when a tied net is asked for both values.
func demandByNet(g *logic.Gate, pins []logic.Value) (out []sideVal, conflict bool) {
	idx := make(map[string]int)
	for pi, in := range g.Inputs {
		v := pins[pi]
		if !v.IsKnown() {
			continue
		}
		if j, ok := idx[in]; ok {
			if out[j].val != v {
				return nil, true
			}
			continue
		}
		idx[in] = len(out)
		out = append(out, sideVal{net: in, val: v})
	}
	return out, false
}

// reachableNets returns the transitive fanout cone of a net, including
// the net itself.
func reachableNets(c *logic.Circuit, root string) map[string]bool {
	reach := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range c.Fanout(n) {
			if !reach[g.Output] {
				reach[g.Output] = true
				stack = append(stack, g.Output)
			}
		}
	}
	return reach
}

// dominators returns the gates (excluding the site itself) that lie on
// every path from the site gate's output to every reachable primary
// output — computed as classical set-intersection dominators over the
// fault-effect cone with a virtual sink joining all reachable POs. Output
// order is topological.
func dominators(c *logic.Circuit, site *logic.Gate, reach map[string]bool) []*logic.Gate {
	var cone []*logic.Gate
	idx := make(map[*logic.Gate]int)
	for _, g := range c.Ordered() {
		if reach[g.Output] {
			idx[g] = len(cone)
			cone = append(cone, g)
		}
	}
	words := (len(cone) + 63) / 64
	bit := func(set []uint64, i int) bool { return set[i/64]&(1<<(i%64)) != 0 }
	set := func(s []uint64, i int) { s[i/64] |= 1 << (i % 64) }
	dom := make([][]uint64, len(cone))
	for i, g := range cone {
		if g == site {
			d := make([]uint64, words)
			set(d, i)
			dom[i] = d
			continue
		}
		// Intersect the dominator sets of the in-cone predecessors. Every
		// non-site cone gate has at least one input in the cone (that is
		// why it is in the cone), and topological order guarantees the
		// predecessor sets are already computed.
		var acc []uint64
		for _, in := range g.Inputs {
			if !reach[in] {
				continue
			}
			pd := dom[idx[c.Driver(in)]]
			if acc == nil {
				acc = append([]uint64(nil), pd...)
			} else {
				for w := range acc {
					acc[w] &= pd[w]
				}
			}
		}
		set(acc, i)
		dom[i] = acc
	}
	// Virtual sink: intersect over the driver gates of every reachable PO.
	var sink []uint64
	seen := make(map[int]bool)
	for _, po := range c.Outputs {
		if !reach[po] {
			continue
		}
		j := idx[c.Driver(po)]
		if seen[j] {
			continue
		}
		seen[j] = true
		if sink == nil {
			sink = append([]uint64(nil), dom[j]...)
		} else {
			for w := range sink {
				sink[w] &= dom[j][w]
			}
		}
	}
	var out []*logic.Gate
	for i, g := range cone {
		if g != site && sink != nil && bit(sink, i) {
			out = append(out, g)
		}
	}
	return out
}

// forcedSide derives the side-input values a dominator imposes on any
// fault-propagating assignment. A side net (an input net outside the
// fault-effect cone) is forced to v when the opposite value makes the
// gate's output independent of every effect net no matter what the other
// side nets hold — the classical non-controlling side-value condition,
// derived here from the truth table so every gate type (including AOI/OAI
// with the effect on multiple pins, and tied nets) is handled uniformly.
// blocked is true when some side net kills propagation at BOTH values, so
// no assignment lets a difference through the gate.
func forcedSide(g *logic.Gate, reach map[string]bool) (forced []sideVal, blocked bool) {
	nets := distinctInputs(g)
	if len(nets) > maxEnumNets {
		return nil, false // too wide to enumerate; claim nothing (sound)
	}
	var effIdx, sideIdx []int
	for i, n := range nets {
		if reach[n] {
			effIdx = append(effIdx, i)
		} else {
			sideIdx = append(sideIdx, i)
		}
	}
	if len(sideIdx) == 0 || len(effIdx) == 0 {
		return nil, false
	}
	pins := make([]logic.Value, len(g.Inputs))
	vals := make([]logic.Value, len(nets))
	eval := func() logic.Value {
		for pi, in := range g.Inputs {
			for i, n := range nets {
				if n == in {
					pins[pi] = vals[i]
				}
			}
		}
		return g.Eval(pins)
	}
	// kills reports whether fixing side net s := v makes the output
	// independent of the effect nets for every assignment of the other
	// side nets.
	kills := func(s int, v logic.Value) bool {
		others := make([]int, 0, len(sideIdx)-1)
		for _, i := range sideIdx {
			if i != s {
				others = append(others, i)
			}
		}
		for sm := 0; sm < 1<<len(others); sm++ {
			vals[s] = v
			for k, i := range others {
				vals[i] = logic.FromBool(sm&(1<<k) != 0)
			}
			first := logic.X
			for em := 0; em < 1<<len(effIdx); em++ {
				for k, i := range effIdx {
					vals[i] = logic.FromBool(em&(1<<k) != 0)
				}
				out := eval()
				if em == 0 {
					first = out
				} else if out != first {
					return false
				}
			}
		}
		return true
	}
	for _, s := range sideIdx {
		k0, k1 := kills(s, logic.Zero), kills(s, logic.One)
		switch {
		case k0 && k1:
			return nil, true
		case k0:
			forced = append(forced, sideVal{net: nets[s], val: logic.One, gate: g.Name})
		case k1:
			forced = append(forced, sideVal{net: nets[s], val: logic.Zero, gate: g.Name})
		}
	}
	return forced, false
}
