// Package netcheck_test cross-checks the static prover against the atpg
// package. It lives in the external test package because atpg imports
// netcheck for its Prune option; the internal tests cannot.
package netcheck_test

import (
	"math/rand"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/cells"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/netcheck"
)

// TestFullAdderVerdicts is the paper-circuit acceptance check: on the
// redundant full-adder sum logic the prover must discharge a nonzero
// subset of the OBD universe, and every verdict must agree with the
// exhaustive two-pattern ground truth (3 inputs — all 8·7 ordered pairs).
func TestFullAdderVerdicts(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, skipped := fault.OBDUniverse(c)
	if len(skipped) != 0 {
		t.Fatalf("full adder has non-primitive gates: %v", skipped)
	}
	verdicts := netcheck.ProveOBDList(c, faults)
	truth := must(atpg.AnalyzeExhaustive(c, faults))

	proved := 0
	for i, v := range verdicts {
		if !v.Untestable {
			continue
		}
		proved++
		if truth.Testable[i] {
			t.Errorf("%s: statically proved untestable but exhaustive analysis detects it", faults[i])
		}
		for _, pr := range v.Pairs {
			if pr.PinConflict {
				continue
			}
			if !pr.Proof.Refutes() {
				t.Errorf("%s pair %s: refutation has no terminal conflict", faults[i], pr.Pair)
			}
			if err := netcheck.VerifyProof(c, pr.Proof); err != nil {
				t.Errorf("%s pair %s: proof replay failed: %v", faults[i], pr.Pair, err)
			}
		}
	}
	if proved == 0 {
		t.Fatal("prover discharged nothing on the full adder")
	}
	// The redundancy around d3 ≡ 1 pins the exact count: d1 (4), the tied
	// d2 PMOS pair (2), d3 (4), u1 PMOS on the d3 pin (1), the tied u2
	// PMOS pair (2).
	if proved != 13 {
		t.Errorf("prover discharged %d faults, want 13", proved)
	}
	// And the testable remainder must stay untouched: sanity that the
	// prover's reach does not exceed the ground truth's untestable count.
	exhaustiveUntestable := len(faults) - truth.TestableCount()
	if proved > exhaustiveUntestable {
		t.Errorf("proved %d > exhaustive untestable %d", proved, exhaustiveUntestable)
	}
}

// TestStaticSubsetOfPODEM is the soundness property test: over random
// primitive circuits, everything the prover discharges must also be
// untestable for full PODEM (static-untestable ⊆ PODEM-untestable).
func TestStaticSubsetOfPODEM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := atpg.DefaultOptions()
	opt.FaultDropping = false
	provedTotal := 0
	for trial := 0; trial < 30; trial++ {
		c := logic.RandomCircuit(rng, logic.RandomOptions{
			Inputs:    3 + rng.Intn(4),
			Gates:     6 + rng.Intn(10),
			Primitive: true,
		})
		faults, _ := fault.OBDUniverse(c)
		for i, v := range netcheck.ProveOBDList(c, faults) {
			if !v.Untestable {
				continue
			}
			provedTotal++
			_, st := atpg.GenerateOBDTest(c, faults[i], opt)
			switch st {
			case atpg.Untestable:
				// agreement
			case atpg.Aborted:
				// PODEM gave up; the property cannot be checked here.
			default:
				t.Errorf("trial %d: %s proved untestable statically but PODEM found a test", trial, faults[i])
			}
			for _, pr := range v.Pairs {
				if pr.PinConflict {
					continue
				}
				if err := netcheck.VerifyProof(c, pr.Proof); err != nil {
					t.Errorf("trial %d: %s pair %s: proof replay failed: %v", trial, faults[i], pr.Pair, err)
				}
			}
		}
	}
	if provedTotal == 0 {
		t.Fatal("property test never exercised the prover (no fault proved untestable)")
	}
	t.Logf("statically discharged %d faults across 30 random circuits", provedTotal)
}

// TestHardFaultRanking checks the SCOAP report: sorted hardest-first and
// covering exactly the undischarged faults.
func TestHardFaultRanking(t *testing.T) {
	c := cells.FullAdderSumLogic()
	faults, _ := fault.OBDUniverse(c)
	verdicts := netcheck.ProveOBDList(c, faults)
	var surviving []fault.OBD
	for i, v := range verdicts {
		if !v.Untestable {
			surviving = append(surviving, faults[i])
		}
	}
	hard := netcheck.HardFaults(c, surviving, 0)
	if len(hard) != len(surviving) {
		t.Fatalf("ranking covers %d of %d surviving faults", len(hard), len(surviving))
	}
	for i := 1; i < len(hard); i++ {
		if hard[i].Cost > hard[i-1].Cost {
			t.Fatalf("ranking not sorted hardest-first at %d: %v > %v", i, hard[i], hard[i-1])
		}
	}
	if top := netcheck.HardFaults(c, surviving, 5); len(top) != 5 {
		t.Fatalf("top cap not applied: got %d", len(top))
	}
	for _, h := range hard {
		if h.Cost != h.CC+h.CO {
			t.Fatalf("cost decomposition broken: %+v", h)
		}
	}
}

// TestAnalyzeFullAdderReport exercises the bundled Analyze entry point.
func TestAnalyzeFullAdderReport(t *testing.T) {
	c := cells.FullAdderSumLogic()
	r := netcheck.Analyze(c, netcheck.Options{TopHard: 10})
	if r.Errors() != 0 {
		t.Fatalf("full adder lints with errors: %v", r.Diagnostics)
	}
	if len(r.Constants) != 1 || r.Constants[0].Net != "d3" {
		t.Fatalf("constants = %v, want d3", r.Constants)
	}
	if got := r.UntestableCount(); got != 13 {
		t.Fatalf("untestable count = %d, want 13", got)
	}
	if len(r.HardFaults) != 10 {
		t.Fatalf("TopHard not applied: %d", len(r.HardFaults))
	}
	// The constant net must surface as a warning diagnostic too.
	found := false
	for _, d := range r.Diagnostics {
		if d.Code == netcheck.CodeConstantNet && d.Net == "d3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("constant net missing from diagnostics: %v", r.Diagnostics)
	}
}

// must unwraps a (value, error) return in tests, panicking on error; the
// panic fails the calling test with the full error in the log.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
