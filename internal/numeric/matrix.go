// Package numeric provides the small dense linear-algebra kernel used by the
// analog simulator: an n×n real matrix with LU factorization (partial
// pivoting) and the usual vector helpers. Circuits in this repository stay
// below a few hundred nodes, so a dense direct solver is both simpler and
// faster than a sparse one would be at this scale.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorization encounters a pivot smaller than
// the singularity threshold, i.e. the system has no unique solution.
var ErrSingular = errors.New("numeric: matrix is singular to working precision")

// pivotTol is the absolute pivot magnitude below which a matrix is treated
// as singular. MNA matrices of well-formed circuits (every node has a DC
// path to ground through gmin) stay far above this.
const pivotTol = 1e-300

// Matrix is a dense row-major n×n real matrix.
type Matrix struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j] = element (i,j)
}

// NewMatrix returns a zeroed n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates v into element (i, j). This is the primitive used by
// device stamps.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Zero clears every element in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("% .4e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MulVec computes y = m·x. x must have length N; y is freshly allocated.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		//obdcheck:allow paniccontract — dimension mismatch is a programming error, not an input condition (the gonum convention)
		panic("numeric: MulVec dimension mismatch")
	}
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU holds an LU factorization with partial pivoting of an n×n matrix:
// P·A = L·U, stored compactly in lu with the permutation in piv.
type LU struct {
	n   int
	lu  []float64
	piv []int
}

// Factor computes the LU factorization of a copy of a. The receiver matrix
// is not modified. Returns ErrSingular for numerically singular input.
func Factor(a *Matrix) (*LU, error) {
	n := a.N
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n)}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below diagonal.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max < pivotTol || math.IsNaN(max) {
			return nil, fmt.Errorf("%w (pivot %g at column %d)", ErrSingular, max, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= l * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorization. b is not modified; x is
// freshly allocated.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		//obdcheck:allow paniccontract — dimension mismatch is a programming error, not an input condition (the gonum convention)
		panic("numeric: Solve dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s -= l * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// SolveLinear is a convenience wrapper: factor a and solve a·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// MaxAbsDiff returns max_i |a[i]-b[i]|; the vectors must be equal length.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		//obdcheck:allow paniccontract — dimension mismatch is a programming error, not an input condition (the gonum convention)
		panic("numeric: MaxAbsDiff dimension mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// InfNorm returns max_i |v[i]|.
func InfNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
