package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if d := MaxAbsDiff(x, b); d > 1e-15 {
		t.Fatalf("identity solve error %g", d)
	}
}

func TestSolveKnown2x2(t *testing.T) {
	// [2 1; 1 3] x = [5; 10] -> x = [1; 3]
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("got %v want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(3)
	// Rank-1 matrix.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64((i+1)*(j+1)))
		}
	}
	_, err := Factor(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	before := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatalf("factor: %v", err)
	}
	if MaxAbsDiff(a.Data, before.Data) != 0 {
		t.Fatal("Factor modified its input")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("got %v", y)
	}
}

// randomDiagDominant builds a random strictly diagonally dominant matrix,
// which is always nonsingular — the property-test workhorse.
func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			a.Set(i, j, v)
			sum += math.Abs(v)
		}
		a.Set(i, i, sum+1+rng.Float64())
	}
	return a
}

// TestQuickSolveResidual: for random nonsingular systems, A·x ≈ b.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%20) + 1
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		scale := InfNorm(b) + 1
		return MaxAbsDiff(r, b)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFactorReuse: one factorization solves many RHS consistently.
func TestQuickFactorReuse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		a := randomDiagDominant(rng, n)
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := lu.Solve(b)
			if MaxAbsDiff(a.MulVec(x), b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestInfNorm(t *testing.T) {
	if InfNorm([]float64{1, -7, 3}) != 7 {
		t.Fatal("InfNorm broken")
	}
	if InfNorm(nil) != 0 {
		t.Fatal("InfNorm(nil) should be 0")
	}
}
