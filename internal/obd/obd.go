// Package obd implements the paper's circuit-level model for gate oxide
// breakdown (OBD): a diode–resistor network attached to a MOSFET's gate
// (Fig. 3 of the paper) whose parameters — the junction saturation current
// Isat and the breakdown-path resistance R — track the progression from
// soft breakdown (SBD) through medium breakdown (MBD) to the final hard
// breakdown (HBD).
//
// The network topology follows Fig. 3b: a resistor from the gate to an
// internal breakdown node, pn junctions from that node to the source and
// drain diffusions, and a high-resistance path to the substrate. For an
// NMOS device the junctions point from the breakdown spot (p-type bulk
// under the gate) into the n+ source/drain, so the network conducts only
// while the gate is driven high — which is why NMOS OBD in a NAND disturbs
// only falling output transitions. For a PMOS device the junctions point
// from the p+ diffusions into the breakdown node, so the network conducts
// while the gate is driven low, disturbing only rising output transitions.
package obd

import (
	"fmt"

	"gobd/internal/spice"
)

// Stage enumerates the breakdown progression points used in the paper's
// Table 1.
type Stage int

// Breakdown stages. FaultFree carries the inert network parameters from
// Table 1's "Fault Free" row, so a breakdown network can always be present
// and merely re-parameterized when sweeping stages.
const (
	FaultFree Stage = iota
	MBD1
	MBD2
	MBD3
	HBD
)

// Stages lists all stages in progression order.
func Stages() []Stage { return []Stage{FaultFree, MBD1, MBD2, MBD3, HBD} }

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case FaultFree:
		return "FaultFree"
	case MBD1:
		return "MBD1"
	case MBD2:
		return "MBD2"
	case MBD3:
		return "MBD3"
	case HBD:
		return "HBD"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Params are the breakdown-network parameters at one progression point.
// Isat and R are the paper's Table 1 values. RShort models the final
// melted ohmic path of hard breakdown (the paper: "a persistent
// low-resistance path is formed"; hard OBD is the classical gate oxide
// short): an additional resistive connection from the breakdown node to
// source and drain that bypasses the pn junctions. Zero means no ohmic
// path (the pre-HBD regime, where conduction is junction-limited).
type Params struct {
	Isat   float64 // junction saturation current (A)
	R      float64 // breakdown path resistance (Ω)
	RShort float64 // ohmic short to source/drain at HBD (Ω); 0 = none
}

// Table 1 of the paper: per-polarity (Isat, R) used in the HSPICE model.
// The paper gives no HBD row for PMOS (marked N/A — the MBD3 parameters
// already produce stuck-at behaviour); we extrapolate the NMOS HBD values
// so progression sweeps are total.
var (
	nmosStageParams = map[Stage]Params{
		FaultFree: {Isat: 1e-30, R: 10e3},
		MBD1:      {Isat: 2e-28, R: 500},
		MBD2:      {Isat: 1e-27, R: 100},
		MBD3:      {Isat: 5e-27, R: 20},
		HBD:       {Isat: 2e-24, R: 0.05, RShort: 50},
	}
	pmosStageParams = map[Stage]Params{
		FaultFree: {Isat: 1e-30, R: 10e3},
		MBD1:      {Isat: 1e-29, R: 1e3},
		MBD2:      {Isat: 1.1e-29, R: 900},
		MBD3:      {Isat: 1.2e-29, R: 830},
		HBD:       {Isat: 2e-24, R: 0.05, RShort: 50},
	}
)

// StageParams returns the Table 1 network parameters for a polarity/stage.
func StageParams(pol spice.MOSPolarity, s Stage) Params {
	var p Params
	var ok bool
	if pol == spice.PMOS {
		p, ok = pmosStageParams[s]
	} else {
		p, ok = nmosStageParams[s]
	}
	if !ok {
		//obdcheck:allow paniccontract — the stage tables cover every Stage constant by construction (obd_test exercises every entry); a miss means memory corruption
		panic(fmt.Sprintf("obd: no parameters for stage %v", s))
	}
	return p
}

// RSubstrate is the resistance of the breakdown node's path to the
// substrate. The paper assumes the substrate contact is far from the
// breakdown spot, making this path high-resistance.
const RSubstrate = 10e6

// Injection is a breakdown network wired around one MOSFET. Its stage can
// be re-parameterized in place, so one built circuit serves a whole
// progression sweep.
type Injection struct {
	Target *spice.MOSFET
	Stage  Stage
	Node   spice.NodeID // internal breakdown node

	rbd          *spice.Resistor
	dSrc, dDrn   *spice.Diode
	rsub         *spice.Resistor
	rshort       *spice.Resistor
	polarity     spice.MOSPolarity
	injectedName string
}

// rShortOff is the resistance used for the (inert) ohmic-short resistors
// while the breakdown has not yet reached HBD.
const rShortOff = 1e12

// Inject attaches a breakdown network to m inside circuit c at the given
// stage. The name seeds the created device/node names and must be unique
// per injection.
func Inject(c *spice.Circuit, name string, m *spice.MOSFET, stage Stage) *Injection {
	pol := m.P.Polarity
	p := StageParams(pol, stage)
	x := c.Node(name + ".bd")
	inj := &Injection{Target: m, Stage: stage, Node: x, polarity: pol, injectedName: name}
	inj.rbd = c.AddResistor(name+".Rbd", m.G, x, p.R)
	dp := spice.DiodeParams{Isat: p.Isat}
	if pol == spice.NMOS {
		// Junctions from the breakdown spot (p bulk) into the n+ diffusions:
		// conduct while the gate is pulled high.
		inj.dSrc = c.AddDiode(name+".Ds", x, m.S, dp)
		inj.dDrn = c.AddDiode(name+".Dd", x, m.D, dp)
	} else {
		// Junctions from the p+ diffusions into the breakdown spot (n well):
		// conduct while the gate is pulled low.
		inj.dSrc = c.AddDiode(name+".Ds", m.S, x, dp)
		inj.dDrn = c.AddDiode(name+".Dd", m.D, x, dp)
	}
	inj.rsub = c.AddResistor(name+".Rsub", x, m.B, RSubstrate)
	rs := p.RShort
	if rs <= 0 {
		rs = rShortOff
	}
	// The melted HBD path forms toward the source diffusion: the defective
	// device's gate collapses to its source rail, which is what turns the
	// defect into the stuck-at-like behaviour of the paper's HBD rows (and
	// what endangers the upstream driver, Fig. 2).
	inj.rshort = c.AddResistor(name+".Rs", x, m.S, rs)
	return inj
}

// SetStage re-parameterizes the network to another progression point.
func (inj *Injection) SetStage(s Stage) {
	p := StageParams(inj.polarity, s)
	inj.SetParams(p)
	inj.Stage = s
}

// SetParams sets raw network parameters (used by the progression model,
// which interpolates between the tabulated stages).
func (inj *Injection) SetParams(p Params) {
	inj.rbd.SetR(p.R)
	inj.dSrc.SetIsat(p.Isat)
	inj.dDrn.SetIsat(p.Isat)
	rs := p.RShort
	if rs <= 0 {
		rs = rShortOff
	}
	inj.rshort.SetR(rs)
}

// LeakageCurrent returns the total current leaving the breakdown node into
// the source/drain diffusions (junction plus ohmic-short paths) for a
// committed solution — the observable the progression literature tracks.
func (inj *Injection) LeakageCurrent(s *spice.Solution) float64 {
	x := s.Raw()
	i := inj.dSrc.Current(x) + inj.dDrn.Current(x)
	i += (s.VID(inj.Node) - s.VID(inj.Target.S)) / inj.rshort.R
	return i
}
