package obd

import (
	"math"
	"testing"
	"testing/quick"

	"gobd/internal/spice"
)

func TestStageParamsTable1(t *testing.T) {
	// Spot-check against the paper's Table 1.
	if p := StageParams(spice.NMOS, MBD2); p.Isat != 1e-27 || p.R != 100 {
		t.Fatalf("NMOS MBD2 = %+v", p)
	}
	if p := StageParams(spice.PMOS, MBD3); p.Isat != 1.2e-29 || p.R != 830 {
		t.Fatalf("PMOS MBD3 = %+v", p)
	}
	if p := StageParams(spice.NMOS, FaultFree); p.Isat != 1e-30 || p.R != 10e3 {
		t.Fatalf("NMOS FaultFree = %+v", p)
	}
}

func TestStageOrderingMonotone(t *testing.T) {
	// Breakdown progression means Isat non-decreasing and R non-increasing.
	for _, pol := range []spice.MOSPolarity{spice.NMOS, spice.PMOS} {
		prev := StageParams(pol, FaultFree)
		for _, s := range []Stage{MBD1, MBD2, MBD3, HBD} {
			p := StageParams(pol, s)
			if p.Isat < prev.Isat {
				t.Fatalf("%v %v: Isat decreased %g -> %g", pol, s, prev.Isat, p.Isat)
			}
			if p.R > prev.R {
				t.Fatalf("%v %v: R increased %g -> %g", pol, s, prev.R, p.R)
			}
			prev = p
		}
	}
}

func TestStageString(t *testing.T) {
	want := []string{"FaultFree", "MBD1", "MBD2", "MBD3", "HBD"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Fatalf("stage %d string %q, want %q", i, s.String(), want[i])
		}
	}
}

// buildNMOSLeakRig wires a driver resistor to an NMOS gate with an OBD
// network, so the gate-side leakage can be observed directly.
func buildNMOSLeakRig(stage Stage, gateV float64) (leak float64, vGate float64, err error) {
	p := spice.Default350()
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	drv := c.Node("drv")
	g := c.Node("g")
	d := c.Node("d")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(p.VDD))
	c.AddVSource("VDRV", drv, spice.Ground, spice.DC(gateV))
	c.AddResistor("Rdrv", drv, g, 2e3) // stands in for the driving gate's output resistance
	c.AddResistor("Rload", vdd, d, 10e3)
	m := c.AddMOSFET("M1", d, g, spice.Ground, spice.Ground, p.NMOSParams(p.WNUnit))
	inj := Inject(c, "f1", m, stage)
	s, err := spice.OperatingPoint(c, nil)
	if err != nil {
		return 0, 0, err
	}
	return inj.LeakageCurrent(s), s.V("g"), nil
}

func TestNMOSInjectionLeaksOnlyWhenGateHigh(t *testing.T) {
	p := spice.Default350()
	leakHigh, vg, err := buildNMOSLeakRig(MBD2, p.VDD)
	if err != nil {
		t.Fatalf("gate-high op: %v", err)
	}
	if leakHigh < 1e-4 {
		t.Fatalf("MBD2 gate-high leakage %g A, want substantial (>0.1mA)", leakHigh)
	}
	if vg > p.VDD-0.3 {
		t.Fatalf("gate voltage %g not degraded by leakage (VDD=%g)", vg, p.VDD)
	}
	leakLow, _, err := buildNMOSLeakRig(MBD2, 0)
	if err != nil {
		t.Fatalf("gate-low op: %v", err)
	}
	if math.Abs(leakLow) > 1e-9 {
		t.Fatalf("gate-low leakage %g A, want ~0 (junctions reverse biased)", leakLow)
	}
}

func TestFaultFreeInjectionIsMild(t *testing.T) {
	// The Table 1 "Fault Free" parameters keep the network present but its
	// effect mild: the tiny Isat pushes the junction turn-on to ~1.6 V, so
	// a static sub-mA trickle remains, small against the driver's mA-class
	// strength. The MBD stages must leak at least an order of magnitude
	// more than this baseline.
	p := spice.Default350()
	leak, vg, err := buildNMOSLeakRig(FaultFree, p.VDD)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	if leak > 1e-3 {
		t.Fatalf("fault-free network leaks %g A, want sub-mA", leak)
	}
	if vg < p.VDD-0.6 {
		t.Fatalf("fault-free network degrades gate to %g (VDD=%g)", vg, p.VDD)
	}
	leakMBD2, _, err := buildNMOSLeakRig(MBD2, p.VDD)
	if err != nil {
		t.Fatalf("MBD2 op: %v", err)
	}
	if leakMBD2 < 3*leak {
		t.Fatalf("MBD2 leakage %g not clearly above fault-free %g", leakMBD2, leak)
	}
}

func TestLeakageGrowsWithStage(t *testing.T) {
	p := spice.Default350()
	prev := -1.0
	for _, s := range []Stage{FaultFree, MBD1, MBD2, MBD3, HBD} {
		leak, _, err := buildNMOSLeakRig(s, p.VDD)
		if err != nil {
			t.Fatalf("%v op: %v", s, err)
		}
		if leak < prev {
			t.Fatalf("leakage not monotone at %v: %g after %g", s, leak, prev)
		}
		prev = leak
	}
}

func TestPMOSInjectionLeaksOnlyWhenGateLow(t *testing.T) {
	p := spice.Default350()
	build := func(gateV float64) (float64, error) {
		c := spice.NewCircuit()
		vdd := c.Node("vdd")
		drv := c.Node("drv")
		g := c.Node("g")
		d := c.Node("d")
		c.AddVSource("VDD", vdd, spice.Ground, spice.DC(p.VDD))
		c.AddVSource("VDRV", drv, spice.Ground, spice.DC(gateV))
		c.AddResistor("Rdrv", drv, g, 2e3)
		c.AddResistor("Rload", d, spice.Ground, 10e3)
		m := c.AddMOSFET("M1", d, g, vdd, vdd, p.PMOSParams(p.WPUnit))
		inj := Inject(c, "f1", m, MBD2)
		s, err := spice.OperatingPoint(c, nil)
		if err != nil {
			return 0, err
		}
		return inj.LeakageCurrent(s), nil
	}
	leakLow, err := build(0)
	if err != nil {
		t.Fatalf("gate-low op: %v", err)
	}
	if leakLow < 1e-4 {
		t.Fatalf("PMOS MBD2 gate-low leakage %g A, want substantial", leakLow)
	}
	leakHigh, err := build(p.VDD)
	if err != nil {
		t.Fatalf("gate-high op: %v", err)
	}
	if math.Abs(leakHigh) > 1e-9 {
		t.Fatalf("PMOS gate-high leakage %g A, want ~0", leakHigh)
	}
}

func TestSetStageReparameterizes(t *testing.T) {
	p := spice.Default350()
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	g := c.Node("g")
	d := c.Node("d")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(p.VDD))
	c.AddVSource("VG", g, spice.Ground, spice.DC(p.VDD))
	c.AddResistor("Rload", vdd, d, 10e3)
	m := c.AddMOSFET("M1", d, g, spice.Ground, spice.Ground, p.NMOSParams(p.WNUnit))
	inj := Inject(c, "f1", m, FaultFree)
	s1, err := spice.OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op1: %v", err)
	}
	l1 := inj.LeakageCurrent(s1)
	inj.SetStage(HBD)
	if inj.Stage != HBD {
		t.Fatalf("stage not updated")
	}
	s2, err := spice.OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op2: %v", err)
	}
	l2 := inj.LeakageCurrent(s2)
	if l2 < 1e3*math.Max(l1, 1e-15) {
		t.Fatalf("HBD leakage %g not >> fault-free %g", l2, l1)
	}
}

func TestProgressionEndpoints(t *testing.T) {
	pr := NewProgression(spice.NMOS)
	if got := pr.ParamsAt(0); got != StageParams(spice.NMOS, MBD1) {
		t.Fatalf("t=0 params %+v", got)
	}
	if got := pr.ParamsAt(pr.Window); got != StageParams(spice.NMOS, HBD) {
		t.Fatalf("t=Window params %+v", got)
	}
	if got := pr.ParamsAt(-5); got != pr.Start {
		t.Fatalf("clamping before 0 broken: %+v", got)
	}
	if got := pr.ParamsAt(pr.Window * 2); got != pr.End {
		t.Fatalf("clamping after window broken: %+v", got)
	}
}

func TestProgressionMonotone(t *testing.T) {
	pr := NewProgression(spice.NMOS)
	prev := pr.ParamsAt(0)
	for i := 1; i <= 100; i++ {
		p := pr.ParamsAt(float64(i) / 100 * pr.Window)
		if p.Isat < prev.Isat || p.R > prev.R {
			t.Fatalf("progression not monotone at step %d: %+v after %+v", i, p, prev)
		}
		prev = p
	}
}

func TestProgressionStageTimesOrdered(t *testing.T) {
	pr := NewProgression(spice.NMOS)
	times := pr.StageTimes()
	if !(times[MBD1] < times[MBD2] && times[MBD2] < times[MBD3] && times[MBD3] < times[HBD]) {
		t.Fatalf("stage times not ordered: %+v", times)
	}
}

func TestTimeForIsatRoundTrip(t *testing.T) {
	pr := NewProgression(spice.PMOS)
	f := func(fraw uint16) bool {
		frac := float64(fraw) / 65535
		tt := frac * pr.Window
		p := pr.ParamsAt(tt)
		back, err := pr.TimeForIsat(p.Isat)
		if err != nil {
			return false
		}
		return math.Abs(back-tt) < 1e-6*pr.Window+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeForIsatOutOfRange(t *testing.T) {
	pr := NewProgression(spice.NMOS)
	if _, err := pr.TimeForIsat(1e-40); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := pr.TimeForIsat(1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestTimeForIsatRangeBoundaries: the endpoints of the modeled Isat range
// are inside it (t=0 and t=Window), values just past them are rejected
// with a descriptive error, and non-finite queries never map to a time —
// for both polarities.
func TestTimeForIsatRangeBoundaries(t *testing.T) {
	for _, pol := range []spice.MOSPolarity{spice.NMOS, spice.PMOS} {
		pr := NewProgression(pol)
		t0, err := pr.TimeForIsat(pr.Start.Isat)
		if err != nil || math.Abs(t0) > 1e-9 {
			t.Fatalf("%v: Start.Isat -> (%g, %v), want (0, nil)", pol, t0, err)
		}
		t1, err := pr.TimeForIsat(pr.End.Isat)
		if err != nil || math.Abs(t1-pr.Window) > 1e-6*pr.Window {
			t.Fatalf("%v: End.Isat -> (%g, %v), want (Window, nil)", pol, t1, err)
		}
		lo := math.Min(pr.Start.Isat, pr.End.Isat)
		hi := math.Max(pr.Start.Isat, pr.End.Isat)
		if _, err := pr.TimeForIsat(lo * (1 - 1e-9)); err == nil {
			t.Fatalf("%v: just below range accepted", pol)
		}
		if _, err := pr.TimeForIsat(hi * (1 + 1e-9)); err == nil {
			t.Fatalf("%v: just above range accepted", pol)
		}
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
			if tt, err := pr.TimeForIsat(bad); err == nil {
				t.Fatalf("%v: Isat %g accepted as time %g", pol, bad, tt)
			}
		}
	}
}

func TestDualInjectionComposes(t *testing.T) {
	// Two independent breakdown networks in one circuit: each leaks in its
	// own biasing state without disturbing the other's observability.
	p := spice.Default350()
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(p.VDD))
	g1 := c.Node("g1")
	g2 := c.Node("g2")
	d1 := c.Node("d1")
	d2 := c.Node("d2")
	c.AddVSource("VG1", c.Node("s1"), spice.Ground, spice.DC(p.VDD))
	c.AddResistor("Rd1", c.Node("s1"), g1, 2e3)
	c.AddVSource("VG2", c.Node("s2"), spice.Ground, spice.DC(0))
	c.AddResistor("Rd2", c.Node("s2"), g2, 2e3)
	c.AddResistor("RL1", vdd, d1, 10e3)
	c.AddResistor("RL2", vdd, d2, 10e3)
	m1 := c.AddMOSFET("M1", d1, g1, spice.Ground, spice.Ground, p.NMOSParams(p.WNUnit))
	m2 := c.AddMOSFET("M2", d2, g2, spice.Ground, spice.Ground, p.NMOSParams(p.WNUnit))
	i1 := Inject(c, "f1", m1, MBD2)
	i2 := Inject(c, "f2", m2, MBD2)
	s, err := spice.OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	// M1's gate is high: its network leaks; M2's gate is low: silent.
	if l1 := i1.LeakageCurrent(s); l1 < 1e-4 {
		t.Fatalf("active injection leaks only %g A", l1)
	}
	if l2 := i2.LeakageCurrent(s); math.Abs(l2) > 1e-9 {
		t.Fatalf("inactive injection leaks %g A", l2)
	}
}
