package obd

import (
	"fmt"
	"math"

	"gobd/internal/spice"
)

// Progression models the time evolution of the breakdown network between
// the onset of appreciable leakage (the first persistent soft breakdown)
// and hard breakdown. Following the data the paper cites (Linder et al.:
// ~27 hours from first SBD to HBD for a 15 Å PFET, with exponential growth
// of the leakage current), Isat grows and R shrinks exponentially in time —
// i.e. log-linearly — between the Table 1 MBD1 parameters at t=0 and the
// HBD parameters at t=Window.
type Progression struct {
	Polarity spice.MOSPolarity
	Window   float64 // seconds from SBD onset to HBD
	Start    Params  // parameters at t = 0
	End      Params  // parameters at t = Window
}

// DefaultWindow is the SBD→HBD interval reported by Linder et al. for a
// 15 Å oxide: roughly 27 hours, in seconds.
const DefaultWindow = 27 * 3600.0

// NewProgression builds the default exponential progression for a
// polarity: MBD1 parameters at t=0 evolving to HBD parameters at t=Window.
func NewProgression(pol spice.MOSPolarity) *Progression {
	return &Progression{
		Polarity: pol,
		Window:   DefaultWindow,
		Start:    StageParams(pol, MBD1),
		End:      StageParams(pol, HBD),
	}
}

// ParamsAt returns the interpolated network parameters at time t seconds
// after SBD onset. Before 0 it returns Start; after Window it returns End.
func (p *Progression) ParamsAt(t float64) Params {
	if t <= 0 {
		return p.Start
	}
	if t >= p.Window {
		return p.End
	}
	f := t / p.Window
	return Params{
		Isat: logInterp(p.Start.Isat, p.End.Isat, f),
		R:    logInterp(p.Start.R, p.End.R, f),
	}
}

// TimeForIsat inverts the Isat trajectory: the time at which the leakage
// scale reaches isat. Returns an error outside the modeled range.
func (p *Progression) TimeForIsat(isat float64) (float64, error) {
	lo, hi := p.Start.Isat, p.End.Isat
	// The explicit IsNaN guard matters: NaN compares false against both
	// bounds and would otherwise sail through to a NaN time.
	if math.IsNaN(isat) || isat < math.Min(lo, hi) || isat > math.Max(lo, hi) {
		return 0, fmt.Errorf("obd: Isat %g outside progression range [%g, %g]", isat, lo, hi)
	}
	f := math.Log(isat/lo) / math.Log(hi/lo)
	return f * p.Window, nil
}

// StageTimes returns the times at which the trajectory passes each
// tabulated MBD stage (matching stage Isat), in stage order. HBD maps to
// Window by construction.
func (p *Progression) StageTimes() map[Stage]float64 {
	out := map[Stage]float64{MBD1: 0, HBD: p.Window}
	for _, s := range []Stage{MBD2, MBD3} {
		if t, err := p.TimeForIsat(StageParams(p.Polarity, s).Isat); err == nil {
			out[s] = t
		}
	}
	return out
}

// logInterp interpolates log-linearly between a (f=0) and b (f=1).
func logInterp(a, b, f float64) float64 {
	return math.Exp(math.Log(a) + f*(math.Log(b)-math.Log(a)))
}
