package sat

import "fmt"

// CheckError reports where an independent verification failed: Step is
// the offending proof clause index (-1 for formula/model-level faults).
type CheckError struct {
	Step int
	Msg  string
}

// Error implements error.
func (e *CheckError) Error() string {
	if e.Step < 0 {
		return "sat: " + e.Msg
	}
	return fmt.Sprintf("sat: proof step %d: %s", e.Step, e.Msg)
}

// checker is a deliberately simple propagation engine — no watched
// literals, no learning — so a Check verdict depends on nothing but
// clause semantics. It shares no code with Solver.
type checker struct {
	nVars   int
	clauses [][]Lit
	assign  []int8
	trail   []Lit
}

func (c *checker) val(l Lit) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := c.assign[v]
	if l < 0 {
		return -a
	}
	return a
}

// assume asserts a literal, reporting an immediate conflict.
func (c *checker) assume(l Lit) (conflict bool) {
	switch c.val(l) {
	case 1:
		return false
	case -1:
		return true
	}
	v := l
	s := int8(1)
	if v < 0 {
		v, s = -v, -1
	}
	c.assign[v] = s
	c.trail = append(c.trail, l)
	return false
}

// propagate runs naive unit propagation to fixpoint over every clause,
// returning true when a conflict (fully falsified clause) appears.
func (c *checker) propagate() bool {
	for {
		changed := false
		for _, cl := range c.clauses {
			unassigned := 0
			var unit Lit
			satisfied := false
			for _, l := range cl {
				switch c.val(l) {
				case 1:
					satisfied = true
				case 0:
					// Count distinct unassigned literals so duplicated
					// literals still form a unit clause.
					if unassigned == 0 {
						unit = l
						unassigned = 1
					} else if l != unit {
						unassigned = 2
					}
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0:
				return true
			case 1:
				if c.assume(unit) {
					return true
				}
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
}

// undoTo pops the trail back to length n.
func (c *checker) undoTo(n int) {
	for len(c.trail) > n {
		l := c.trail[len(c.trail)-1]
		c.trail = c.trail[:len(c.trail)-1]
		v := l
		if v < 0 {
			v = -v
		}
		c.assign[v] = 0
	}
}

// validLits rejects zero or out-of-range literals.
func validLits(nVars int, cl []Lit) error {
	for _, l := range cl {
		v := l
		if v < 0 {
			v = -v
		}
		if v == 0 || int(v) > nVars {
			return &CheckError{Step: -1, Msg: fmt.Sprintf("literal %d out of range (1..%d)", l, nVars)}
		}
	}
	return nil
}

// Check verifies that proof is a valid RUP refutation of the CNF over
// variables 1..nVars: every proof clause must be derivable from the
// formula plus the preceding proof clauses by unit propagation (negate
// the clause, propagate, demand a conflict), and the final clause must
// be empty — certifying unsatisfiability. Check is independent of
// Solver; it trusts nothing but the clause lists it is handed.
func Check(nVars int, cnf [][]Lit, proof Proof) error {
	for _, cl := range cnf {
		if err := validLits(nVars, cl); err != nil {
			return err
		}
	}
	if len(proof) == 0 {
		return &CheckError{Step: -1, Msg: "empty proof (no refutation)"}
	}
	if len(proof[len(proof)-1]) != 0 {
		return &CheckError{Step: len(proof) - 1, Msg: "refutation does not end with the empty clause"}
	}
	ck := &checker{
		nVars:   nVars,
		clauses: append(make([][]Lit, 0, len(cnf)+len(proof)), cnf...),
		assign:  make([]int8, nVars+1),
	}
	for i, cl := range proof {
		if err := validLits(nVars, cl); err != nil {
			return &CheckError{Step: i, Msg: err.Error()}
		}
		mark := len(ck.trail)
		conflict := false
		for _, l := range cl {
			if ck.assume(-l) {
				conflict = true
				break
			}
		}
		if !conflict {
			conflict = ck.propagate()
		}
		ck.undoTo(mark)
		if !conflict {
			return &CheckError{Step: i, Msg: "clause is not RUP (no conflict under negation)"}
		}
		ck.clauses = append(ck.clauses, cl)
	}
	return nil
}

// CheckModel verifies that the 1-indexed assignment satisfies every
// clause of the CNF.
func CheckModel(cnf [][]Lit, model []bool) error {
	for i, cl := range cnf {
		satisfied := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if int(v) >= len(model) {
				return &CheckError{Step: -1, Msg: fmt.Sprintf("clause %d: literal %d beyond model", i, l)}
			}
			if (l > 0) == model[v] {
				satisfied = true
				break
			}
		}
		if !satisfied {
			return &CheckError{Step: -1, Msg: fmt.Sprintf("clause %d unsatisfied by model", i)}
		}
	}
	return nil
}
