package sat

import (
	"bytes"
	"testing"
)

// decodeCNF turns fuzz bytes into a small CNF: the first byte fixes the
// variable count (1..6), each following byte is one literal (0 ends the
// current clause), bounded so brute force stays instant.
func decodeCNF(data []byte) (int, [][]Lit) {
	if len(data) == 0 {
		return 0, nil
	}
	nVars := 1 + int(data[0])%6
	var cnf [][]Lit
	var cl []Lit
	for _, b := range data[1:] {
		if len(cnf) >= 48 {
			break
		}
		code := int(b) % (2*nVars + 1) // 0 ends a clause; 1..2n is ±v
		if code == 0 {
			cnf = append(cnf, cl)
			cl = nil
			continue
		}
		v := Lit((code-1)/2 + 1)
		if code%2 == 0 {
			v = -v
		}
		if len(cl) < 8 {
			cl = append(cl, v)
		}
	}
	if cl != nil {
		cnf = append(cnf, cl)
	}
	return nVars, cnf
}

// FuzzSAT cross-checks the CDCL solver against brute-force enumeration
// on arbitrary small CNFs: verdicts must agree, Sat models must satisfy
// every clause, and Unsat proofs must pass the independent RUP checker.
// Determinism rides along: a second identical run must match exactly.
func FuzzSAT(f *testing.F) {
	f.Add([]byte{3, 1, 3, 0, 2, 4, 0, 5, 6, 0})
	f.Add([]byte{2, 1, 0, 2, 0, 3, 4, 0})           // forces units
	f.Add([]byte{1, 1, 0, 2, 0})                    // x and ¬x: unsat
	f.Add([]byte{4, 1, 3, 5, 0, 2, 4, 6, 0, 7, 0})  // mixed polarities
	f.Add([]byte{5, 0, 0, 0})                       // empty clauses
	f.Add(bytes.Repeat([]byte{6, 11, 12, 0}, 10))   // repetition
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, cnf := decodeCNF(data)
		if nVars == 0 {
			return
		}
		s := &Solver{ProofEnabled: true}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		st := s.Solve()
		wantSat, _ := bruteForce(nVars, cnf)
		switch st {
		case Sat:
			if !wantSat {
				t.Fatalf("solver says sat, brute force says unsat: %v", cnf)
			}
			if err := CheckModel(cnf, s.Model()); err != nil {
				t.Fatalf("model invalid: %v (cnf %v)", err, cnf)
			}
		case Unsat:
			if wantSat {
				t.Fatalf("solver says unsat, brute force says sat: %v", cnf)
			}
			if err := Check(nVars, cnf, s.Proof()); err != nil {
				t.Fatalf("refutation rejected: %v (cnf %v)", err, cnf)
			}
		case Unknown:
			t.Fatalf("unlimited solve returned unknown: %v", cnf)
		}
		// Determinism: a fresh identical run must reproduce the verdict.
		s2 := &Solver{}
		for _, cl := range cnf {
			s2.AddClause(cl...)
		}
		if st2 := s2.Solve(); st2 != st {
			t.Fatalf("re-run verdict drifted: %v then %v", st, st2)
		}
	})
}
