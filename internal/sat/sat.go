// Package sat is a small, dependency-free CDCL SAT solver built for the
// exact static proofs in internal/netcheck: two-watched-literal unit
// propagation, VSIDS-style variable activity with deterministic
// index-order tie-breaking, first-UIP conflict-clause learning, Luby
// restarts, and optional RUP (reverse unit propagation) proof logging.
// Check replays an emitted refutation independently of the solver, so a
// caller never has to trust the search — only the much simpler checker.
//
// Determinism contract: a Solver is a pure function of its inputs. Given
// the same clauses in the same order and the same Seed, Solve returns
// the same status, the same model and the same proof on every run — no
// wall-clock, no global randomness, no map iteration feeds any decision.
// The Seed only perturbs the initial variable activities (splitmix64),
// changing tie-breaks, never correctness.
package sat

import "fmt"

// Lit is a DIMACS-style literal: +v for variable v, -v for its negation
// (variables are 1-based, 0 is invalid).
type Lit int32

// Proof is a RUP clause derivation: each clause is implied by the input
// formula plus the preceding proof clauses via unit propagation alone,
// and a refutation ends with the empty clause. Check verifies one.
type Proof [][]Lit

// Status is a Solve outcome.
type Status int8

// Solve outcomes. Unknown is only returned when MaxConflicts is set and
// exhausted; with an unlimited budget the solver is complete.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// clause is a stored disjunction over internal literals. The watched
// literals are always positions 0 and 1; for reason clauses the implied
// literal is position 0.
type clause struct {
	lits []int32
}

// Solver is a single-use-or-incremental CDCL engine. Add clauses with
// AddClause, then call Solve; more clauses may be added between Solve
// calls (assignments above decision level 0 are undone at each call).
// The zero value is ready to use.
type Solver struct {
	// MaxConflicts caps the conflicts spent by one Solve call; 0 or
	// negative means unlimited (the solver is then complete).
	MaxConflicts int64
	// Seed perturbs the initial activity of each variable by a tiny
	// deterministic amount (splitmix64), diversifying tie-breaks between
	// otherwise identical runs. Zero leaves all activities equal, so ties
	// break on the smallest variable index.
	Seed uint64
	// ProofEnabled turns on RUP proof logging; Proof() returns the
	// derivation after an Unsat verdict.
	ProofEnabled bool

	nVars   int
	clauses []clause
	watches [][]int32 // per internal literal: indices of watching clauses

	assign   []int8 // per var: 0 unassigned, +1 true, -1 false
	level    []int32
	reason   []int32 // clause index, or -1 for decisions/top-level units
	trail    []int32
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     []int32
	heapPos  []int32
	phase    []int8

	seen    []int8
	learnt  []int32
	seeded  int // number of vars whose initial activity has been seeded
	proof   Proof
	unsat   bool
	scratch []int32 // AddClause normalization buffer
}

// NumVars returns the highest variable mentioned so far.
func (s *Solver) NumVars() int { return s.nVars }

// NewVar allocates a fresh variable and returns its (1-based) number.
func (s *Solver) NewVar() int {
	s.growTo(s.nVars + 1)
	return s.nVars
}

// growTo ensures per-variable state exists for variables 1..n.
func (s *Solver) growTo(n int) {
	for s.nVars < n {
		s.nVars++
		s.assign = append(s.assign, 0)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, -1)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, -1)
		s.seen = append(s.seen, 0)
		s.heapPos = append(s.heapPos, -1)
		s.watches = append(s.watches, nil, nil)
		v := int32(s.nVars - 1)
		if s.Seed != 0 {
			// splitmix64 of (Seed, v): a deterministic sub-1e-3 nudge that
			// only reorders equal-activity ties.
			z := s.Seed + uint64(v)*0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			s.activity[v] = float64(z%1000) * 1e-6
		}
		s.heapPush(v)
	}
	if s.varInc == 0 {
		s.varInc = 1
	}
}

// litVal returns the current value of an internal literal.
func (s *Solver) litVal(l int32) int8 {
	v := s.assign[l>>1]
	if l&1 == 1 {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// toInternal converts an external literal, growing variable state.
func (s *Solver) toInternal(l Lit) int32 {
	v := l
	if v < 0 {
		v = -v
	}
	s.growTo(int(v))
	il := (int32(v) - 1) << 1
	if l < 0 {
		il |= 1
	}
	return il
}

// toExternal converts an internal literal back to DIMACS form.
func toExternal(l int32) Lit {
	e := Lit(l>>1) + 1
	if l&1 == 1 {
		return -e
	}
	return e
}

// AddClause adds a disjunction of literals. Duplicate literals are
// dropped and tautologies ignored; an empty (or fully falsified
// top-level) clause marks the formula unsatisfiable. Clauses must be
// added at decision level 0, i.e. outside Solve.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsat {
		// Already refuted: still grow variable state so NumVars keeps
		// covering every mentioned variable (Check depends on it).
		for _, l := range lits {
			if l != 0 {
				s.toInternal(l)
			}
		}
		return
	}
	s.scratch = s.scratch[:0]
	for _, l := range lits {
		if l == 0 {
			continue
		}
		il := s.toInternal(l)
		dup := false
		for _, q := range s.scratch {
			if q == il {
				dup = true
				break
			}
			if q == il^1 {
				return // tautology: trivially satisfied
			}
		}
		if !dup {
			s.scratch = append(s.scratch, il)
		}
	}
	// Partition: non-false literals first so they take the watch slots.
	nf := 0
	for i, l := range s.scratch {
		if s.litVal(l) == 1 {
			return // satisfied at the top level forever
		}
		if s.litVal(l) == 0 {
			s.scratch[i], s.scratch[nf] = s.scratch[nf], s.scratch[i]
			nf++
		}
	}
	switch nf {
	case 0:
		s.unsat = true // empty or all literals refuted by top-level units
	case 1:
		if len(s.scratch) == 1 {
			s.uncheckedEnqueue(s.scratch[0], -1)
			return
		}
		ci := s.store(s.scratch)
		s.uncheckedEnqueue(s.clauses[ci].lits[0], ci)
	default:
		s.store(s.scratch)
	}
}

// store copies lits into the clause arena and attaches watches 0,1.
func (s *Solver) store(lits []int32) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: append([]int32(nil), lits...)})
	s.watches[lits[0]] = append(s.watches[lits[0]], ci)
	s.watches[lits[1]] = append(s.watches[lits[1]], ci)
	return ci
}

// uncheckedEnqueue assigns a literal true with the given reason clause.
func (s *Solver) uncheckedEnqueue(l int32, from int32) {
	v := l >> 1
	if l&1 == 0 {
		s.assign[v] = 1
	} else {
		s.assign[v] = -1
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs two-watched-literal unit propagation from the queue
// head, returning the conflicting clause index or -1.
//
//obdcheck:hotpath
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		fl := p ^ 1 // literal that just became false
		ws := s.watches[fl]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			lits := s.clauses[ci].lits
			if lits[0] == fl {
				lits[0], lits[1] = lits[1], lits[0]
			}
			if s.litVal(lits[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(lits); k++ {
				if s.litVal(lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1]] = append(s.watches[lits[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = ci
			j++
			if s.litVal(lits[0]) == -1 {
				// Conflict: keep the remaining watchers and bail out.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[fl] = ws[:j]
				s.qhead = len(s.trail)
				return ci
			}
			s.uncheckedEnqueue(lits[0], ci)
		}
		s.watches[fl] = ws[:j]
	}
	return -1
}

// analyze derives the first-UIP learned clause from a conflict into
// s.learnt (asserting literal at position 0, second-highest-level
// literal at position 1) and returns the backtrack level.
//
//obdcheck:hotpath
func (s *Solver) analyze(confl int32) int32 {
	s.learnt = s.learnt[:0]
	s.learnt = append(s.learnt, 0) // slot for the asserting literal
	pathC := 0
	p := int32(-1)
	idx := len(s.trail) - 1
	ci := confl
	for {
		lits := s.clauses[ci].lits
		start := 0
		if p >= 0 {
			start = 1 // lits[0] is the implied literal p itself
		}
		for k := start; k < len(lits); k++ {
			q := lits[k]
			v := q >> 1
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				s.learnt = append(s.learnt, q)
			}
		}
		for s.seen[s.trail[idx]>>1] == 0 {
			idx--
		}
		p = s.trail[idx]
		v := p >> 1
		ci = s.reason[v]
		s.seen[v] = 0
		pathC--
		idx--
		if pathC <= 0 {
			break
		}
	}
	s.learnt[0] = p ^ 1
	bt := int32(0)
	if len(s.learnt) > 1 {
		// Move the highest-level remaining literal to the second watch.
		mi := 1
		for k := 2; k < len(s.learnt); k++ {
			if s.level[s.learnt[k]>>1] > s.level[s.learnt[mi]>>1] {
				mi = k
			}
		}
		s.learnt[1], s.learnt[mi] = s.learnt[mi], s.learnt[1]
		bt = s.level[s.learnt[1]>>1]
	}
	for k := 1; k < len(s.learnt); k++ {
		s.seen[s.learnt[k]>>1] = 0
	}
	return bt
}

// varBump raises a variable's activity and restores the heap order.
func (s *Solver) varBump(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(int(s.heapPos[v]))
	}
}

// cancelUntil undoes all assignments above the given decision level,
// saving phases and re-inserting freed variables into the order heap.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	lim := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i] >> 1
		s.phase[v] = s.assign[v]
		s.assign[v] = 0
		s.reason[v] = -1
		s.heapPush(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// decide picks the highest-activity unassigned variable (ties to the
// smallest index) with its saved phase, or -1 when none remain.
func (s *Solver) decide() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] != 0 {
			continue
		}
		if s.phase[v] > 0 {
			return v << 1
		}
		return v<<1 | 1
	}
	return -1
}

// recordLearnt installs the clause in s.learnt: proof log, clause store
// (when binary or longer), and the asserting enqueue.
func (s *Solver) recordLearnt() {
	if s.ProofEnabled {
		ext := make([]Lit, len(s.learnt))
		for i, l := range s.learnt {
			ext[i] = toExternal(l)
		}
		s.proof = append(s.proof, ext)
	}
	if len(s.learnt) == 1 {
		s.uncheckedEnqueue(s.learnt[0], -1)
		return
	}
	ci := s.store(s.learnt)
	s.uncheckedEnqueue(s.learnt[0], ci)
}

// emitEmpty closes a refutation with the empty clause (idempotent).
func (s *Solver) emitEmpty() {
	if !s.ProofEnabled {
		return
	}
	if n := len(s.proof); n > 0 && len(s.proof[n-1]) == 0 {
		return
	}
	s.proof = append(s.proof, []Lit{})
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,...
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// Solve runs the CDCL search to completion (or to MaxConflicts). After
// Sat, Value and Model read the satisfying assignment; after Unsat with
// ProofEnabled, Proof returns a checkable refutation.
func (s *Solver) Solve() Status {
	s.cancelUntil(0)
	if s.unsat {
		s.emitEmpty()
		return Unsat
	}
	const restartUnit = 64
	var conflicts, sinceRestart int64
	restarts := int64(1)
	for {
		confl := s.propagate()
		if confl >= 0 {
			conflicts++
			sinceRestart++
			if s.decisionLevel() == 0 {
				s.unsat = true
				s.emitEmpty()
				return Unsat
			}
			bt := s.analyze(confl)
			s.cancelUntil(bt)
			s.recordLearnt()
			s.varInc /= 0.95
			if s.MaxConflicts > 0 && conflicts >= s.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if sinceRestart >= restartUnit*luby(restarts) {
				restarts++
				sinceRestart = 0
				s.cancelUntil(0)
			}
			continue
		}
		l := s.decide()
		if l < 0 {
			return Sat
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(l, -1)
	}
}

// Value returns variable v's value in the model found by the last Sat
// Solve (unassigned variables read false).
func (s *Solver) Value(v int) bool {
	if v < 1 || v > s.nVars {
		return false
	}
	return s.assign[v-1] == 1
}

// Model returns the model as a 1-indexed slice (index 0 unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.Value(v)
	}
	return m
}

// Proof returns the RUP derivation accumulated so far (ending with the
// empty clause after an Unsat verdict). The slice aliases solver state;
// callers must not mutate it.
func (s *Solver) Proof() Proof { return s.proof }

// Order heap: max-heap on (activity, then smaller variable index).

func (s *Solver) heapLess(a, b int32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *Solver) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heapPos[s.heap[i]] = int32(i)
	s.heapPos[s.heap[j]] = int32(j)
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			return
		}
		s.heapSwap(i, p)
		i = p
	}
}

func (s *Solver) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s.heap) && s.heapLess(s.heap[l], s.heap[best]) {
			best = l
		}
		if r < len(s.heap) && s.heapLess(s.heap[r], s.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

func (s *Solver) heapPush(v int32) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.heapPos[v] = int32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapPop() int32 {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}
