package sat

import (
	"reflect"
	"testing"
)

// bruteForce decides satisfiability by enumerating all assignments.
func bruteForce(nVars int, cnf [][]Lit) (bool, []bool) {
	model := make([]bool, nVars+1)
	for m := 0; m < 1<<nVars; m++ {
		for v := 1; v <= nVars; v++ {
			model[v] = m&(1<<(v-1)) != 0
		}
		if CheckModel(cnf, model) == nil {
			return true, append([]bool(nil), model...)
		}
	}
	return false, nil
}

// solveCNF runs a fresh proof-logging solver over the clause list.
func solveCNF(cnf [][]Lit) (*Solver, Status) {
	s := &Solver{ProofEnabled: true}
	for _, cl := range cnf {
		s.AddClause(cl...)
	}
	return s, s.Solve()
}

func TestSimpleSat(t *testing.T) {
	cnf := [][]Lit{{1, 2}, {-1, 3}, {-2, -3}, {3}}
	s, st := solveCNF(cnf)
	if st != Sat {
		t.Fatalf("status = %v, want sat", st)
	}
	if err := CheckModel(cnf, s.Model()); err != nil {
		t.Fatalf("model rejected: %v", err)
	}
}

func TestSimpleUnsat(t *testing.T) {
	cnf := [][]Lit{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}
	s, st := solveCNF(cnf)
	if st != Unsat {
		t.Fatalf("status = %v, want unsat", st)
	}
	if err := Check(s.NumVars(), cnf, s.Proof()); err != nil {
		t.Fatalf("refutation rejected: %v", err)
	}
}

// TestPigeonhole solves PHP(4,3): 4 pigeons in 3 holes, classically
// unsatisfiable and conflict-heavy enough to exercise learning,
// restarts and the proof logger.
func TestPigeonhole(t *testing.T) {
	const pigeons, holes = 4, 3
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	var cnf [][]Lit
	for p := 0; p < pigeons; p++ {
		var cl []Lit
		for h := 0; h < holes; h++ {
			cl = append(cl, v(p, h))
		}
		cnf = append(cnf, cl)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				cnf = append(cnf, []Lit{-v(p, h), -v(q, h)})
			}
		}
	}
	s, st := solveCNF(cnf)
	if st != Unsat {
		t.Fatalf("PHP(4,3) = %v, want unsat", st)
	}
	if len(s.Proof()) < 2 {
		t.Fatalf("refutation suspiciously short: %d clauses", len(s.Proof()))
	}
	if err := Check(s.NumVars(), cnf, s.Proof()); err != nil {
		t.Fatalf("refutation rejected: %v", err)
	}
}

func TestEmptyAndUnitClauses(t *testing.T) {
	s := &Solver{ProofEnabled: true}
	s.AddClause() // empty clause: immediately unsat
	if st := s.Solve(); st != Unsat {
		t.Fatalf("empty clause solve = %v", st)
	}
	if err := Check(1, [][]Lit{{}}, Proof{{}}); err != nil {
		t.Fatalf("empty-clause refutation rejected: %v", err)
	}

	s = &Solver{ProofEnabled: true}
	s.AddClause(1)
	s.AddClause(-1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("contradictory units = %v", st)
	}
	if err := Check(1, [][]Lit{{1}, {-1}}, s.Proof()); err != nil {
		t.Fatalf("unit refutation rejected: %v", err)
	}

	// Tautologies and duplicates must not derail anything.
	s = &Solver{}
	s.AddClause(1, -1)
	s.AddClause(2, 2, 3)
	s.AddClause(-3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("taut/dup solve = %v", st)
	}
	if !s.Value(2) {
		t.Fatal("clause (2 2 3) with -3 must force 2")
	}
}

// TestIncrementalSolve adds clauses between Solve calls: the verdict
// must tighten monotonically and stay correct.
func TestIncrementalSolve(t *testing.T) {
	s := &Solver{ProofEnabled: true}
	s.AddClause(1, 2)
	s.AddClause(-1, 2)
	if st := s.Solve(); st != Sat {
		t.Fatalf("phase 1 = %v", st)
	}
	if !s.Value(2) {
		t.Fatal("2 must hold in every model")
	}
	s.AddClause(-2)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("phase 2 = %v", st)
	}
	cnf := [][]Lit{{1, 2}, {-1, 2}, {-2}}
	if err := Check(s.NumVars(), cnf, s.Proof()); err != nil {
		t.Fatalf("incremental refutation rejected: %v", err)
	}
}

// TestDeterminism pins the solver's contract: identical inputs (clauses,
// order, seed) produce identical models and proofs across fresh solvers.
func TestDeterminism(t *testing.T) {
	cnf := [][]Lit{
		{1, 2, 3}, {-1, 4}, {-2, 5}, {-3, -4}, {-4, -5},
		{2, 6}, {-6, 1}, {5, 6, -3}, {-1, -2, -3},
	}
	run := func(seed uint64) (Status, []bool, Proof) {
		s := &Solver{ProofEnabled: true, Seed: seed}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		st := s.Solve()
		return st, s.Model(), s.Proof()
	}
	st1, m1, p1 := run(0)
	st2, m2, p2 := run(0)
	if st1 != st2 || !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(p1, p2) {
		t.Fatal("two identical runs disagree")
	}
	// A different seed may search differently but must agree on the verdict.
	st3, m3, _ := run(12345)
	if st3 != st1 {
		t.Fatalf("seed changed the verdict: %v vs %v", st3, st1)
	}
	if st3 == Sat {
		if err := CheckModel(cnf, m3); err != nil {
			t.Fatalf("seeded model rejected: %v", err)
		}
	}
}

func TestMaxConflicts(t *testing.T) {
	// PHP(5,4) needs well over one conflict; a budget of 1 must abort.
	const pigeons, holes = 5, 4
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	s := &Solver{MaxConflicts: 1}
	for p := 0; p < pigeons; p++ {
		var cl []Lit
		for h := 0; h < holes; h++ {
			cl = append(cl, v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				s.AddClause(-v(p, h), -v(q, h))
			}
		}
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budget-1 solve = %v, want unknown", st)
	}
	s.MaxConflicts = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unlimited re-solve = %v, want unsat", st)
	}
}

func TestCheckRejectsBogusProofs(t *testing.T) {
	cnf := [][]Lit{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}
	s, st := solveCNF(cnf)
	if st != Unsat {
		t.Fatalf("setup: %v", st)
	}
	good := s.Proof()
	// Truncated: missing the empty clause.
	if err := Check(2, cnf, good[:len(good)-1]); err == nil {
		t.Fatal("truncated proof accepted")
	}
	// A clause over a fresh variable is never RUP from this CNF.
	bogus := append(Proof{{3}}, good...)
	if err := Check(3, cnf, bogus); err == nil {
		t.Fatal("non-RUP clause accepted")
	}
	// A SAT formula must never admit a refutation.
	satCNF := [][]Lit{{1, 2}, {-1, 2}}
	if err := Check(2, satCNF, Proof{{2}, {}}); err == nil {
		t.Fatal("refutation of a satisfiable formula accepted")
	}
	// Out-of-range literal.
	if err := Check(2, cnf, Proof{{7}, {}}); err == nil {
		t.Fatal("out-of-range literal accepted")
	}
}

// TestSolveZeroAllocSteadyState is the dynamic half of the hot-path
// contract (propagate/analyze are //obdcheck:hotpath and statically
// audited by hotalloc): once the trail, watch lists and order heap are
// warm, re-solving with saved phases must allocate nothing. The
// instance forces real work per call — a decision cascading unit
// propagation through binary and ternary clauses.
func TestSolveZeroAllocSteadyState(t *testing.T) {
	s := &Solver{}
	const chain = 40
	// d=false propagates x1..xn through (d ∨ x_i) and (¬x_i ∨ x_{i+1});
	// ternary clauses add watch migration to the steady-state loop.
	d := Lit(1)
	x := func(i int) Lit { return Lit(2 + i) }
	s.AddClause(d, x(0))
	for i := 0; i+1 < chain; i++ {
		s.AddClause(-x(i), x(i+1))
		if i+2 < chain {
			s.AddClause(d, x(i), x(i+2))
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("warmup solve = %v", st)
	}
	// Extra warmup rounds let watch-list capacities reach their fixpoint.
	for i := 0; i < 50; i++ {
		if st := s.Solve(); st != Sat {
			t.Fatalf("warmup re-solve = %v", st)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if st := s.Solve(); st != Sat {
			t.Fatal("steady-state solve not sat")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Solve allocated %v times per call, want 0", allocs)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
