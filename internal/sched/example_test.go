package sched_test

import (
	"fmt"

	"gobd/internal/sched"
)

// ExampleComputeWindow schedules concurrent testing for a defect whose
// delay grows linearly over ten hours: a detector with 250 ps of slack
// first sees it at 2.5 h, leaving a 7.5 h window before hard breakdown —
// so testing every ≤3.75 h guarantees detection with margin.
func ExampleComputeWindow() {
	var curve []sched.DelayPoint
	for h := 0; h <= 10; h++ {
		curve = append(curve, sched.DelayPoint{
			T:     float64(h) * 3600,
			Delay: 100e-12 + float64(h)*100e-12,
		})
	}
	w, _ := sched.ComputeWindow(curve, 100e-12, 250e-12, 10*3600)
	fmt.Printf("detectable from %.1f h, window %.1f h, test every <= %.2f h\n",
		w.Start/3600, w.Length()/3600, w.MaxTestPeriod()/3600)
	// Output:
	// detectable from 2.5 h, window 7.5 h, test every <= 3.75 h
}
