// Package sched implements the Section 4.2 scheduling analysis: given a
// delay-versus-time characterization of a progressing OBD defect (from the
// diode-resistor circuit model) and the timing slack of a concurrent
// detection mechanism, it computes the window of opportunity — the span
// between the defect first being observable and hard breakdown — and the
// test period a test/diagnose/repair scheme must keep to catch the defect
// inside that window.
package sched

import (
	"fmt"
	"sort"
)

// DelayPoint is one sample of the defect-induced delay trajectory.
type DelayPoint struct {
	T     float64 // seconds after SBD onset
	Delay float64 // measured path delay (s)
}

// Window is a detection window for one detector slack.
type Window struct {
	SlackFraction float64 // slack as a fraction of nominal (bookkeeping)
	Slack         float64 // absolute slack (s of path delay)
	Detectable    bool    // the trajectory exceeds nominal+slack before HBD
	Start         float64 // first time the defect is observable (s)
	End           float64 // hard breakdown time (s)
}

// Length returns the usable window duration.
func (w Window) Length() float64 {
	if !w.Detectable {
		return 0
	}
	return w.End - w.Start
}

// MaxTestPeriod returns the largest concurrent-test period that still
// guarantees at least one test lands inside the window (with one period of
// margin, so a test scheduled just before Start still recurs before End).
func (w Window) MaxTestPeriod() float64 { return w.Length() / 2 }

// ComputeWindow locates the first time the delay trajectory exceeds
// nominal+slack, interpolating between samples. hbd is the hard-breakdown
// time ending the window. The samples must be time-sorted; a single
// sample is an error.
func ComputeWindow(curve []DelayPoint, nominal, slack, hbd float64) (Window, error) {
	if len(curve) < 2 {
		return Window{}, fmt.Errorf("sched: need at least 2 delay samples, got %d", len(curve))
	}
	if !sort.SliceIsSorted(curve, func(i, j int) bool { return curve[i].T < curve[j].T }) {
		return Window{}, fmt.Errorf("sched: delay samples not time-sorted")
	}
	w := Window{Slack: slack, End: hbd}
	thresh := nominal + slack
	for i, p := range curve {
		if p.Delay < thresh {
			continue
		}
		w.Detectable = true
		if i == 0 {
			w.Start = p.T
			return w, nil
		}
		a, b := curve[i-1], p
		if b.Delay == a.Delay {
			w.Start = b.T
			return w, nil
		}
		f := (thresh - a.Delay) / (b.Delay - a.Delay)
		if f < 0 {
			f = 0
		}
		w.Start = a.T + f*(b.T-a.T)
		return w, nil
	}
	return w, nil // never detectable before HBD
}

// RequiredSlack inverts the analysis: given a desired window length,
// return the largest detector slack that still yields it, by scanning the
// trajectory. Returns ok=false if even a zero-slack detector sees less
// than the desired window.
func RequiredSlack(curve []DelayPoint, nominal, wantWindow, hbd float64) (slack float64, ok bool) {
	if len(curve) < 2 {
		return 0, false
	}
	deadline := hbd - wantWindow
	if deadline < curve[0].T {
		return 0, false
	}
	// The delay trajectory value at the deadline bounds the usable slack.
	var dAt float64
	found := false
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		if deadline < a.T || deadline > b.T {
			continue
		}
		if b.T == a.T {
			dAt = b.Delay
		} else {
			f := (deadline - a.T) / (b.T - a.T)
			dAt = a.Delay + f*(b.Delay-a.Delay)
		}
		found = true
		break
	}
	if !found {
		dAt = curve[len(curve)-1].Delay
	}
	s := dAt - nominal
	if s <= 0 {
		return 0, false
	}
	return s, true
}
