package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func linCurve() []DelayPoint {
	// Delay grows linearly from 100ps to 1100ps over 10 hours.
	var c []DelayPoint
	for i := 0; i <= 10; i++ {
		c = append(c, DelayPoint{T: float64(i) * 3600, Delay: 100e-12 + float64(i)*100e-12})
	}
	return c
}

func TestComputeWindowLinear(t *testing.T) {
	c := linCurve()
	nominal := 100e-12
	hbd := 10 * 3600.0
	// Slack 250ps -> threshold 350ps -> crossed at t=2.5h.
	w, err := ComputeWindow(c, nominal, 250e-12, hbd)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Detectable {
		t.Fatal("should be detectable")
	}
	if math.Abs(w.Start-2.5*3600) > 1 {
		t.Fatalf("start %.1f h, want 2.5 h", w.Start/3600)
	}
	if math.Abs(w.Length()-7.5*3600) > 1 {
		t.Fatalf("length %.1f h, want 7.5 h", w.Length()/3600)
	}
	if math.Abs(w.MaxTestPeriod()-3.75*3600) > 1 {
		t.Fatalf("period %.2f h, want 3.75 h", w.MaxTestPeriod()/3600)
	}
}

func TestComputeWindowNeverDetectable(t *testing.T) {
	c := linCurve()
	w, err := ComputeWindow(c, 100e-12, 5e-9, 10*3600)
	if err != nil {
		t.Fatal(err)
	}
	if w.Detectable || w.Length() != 0 {
		t.Fatalf("expected undetectable, got %+v", w)
	}
}

func TestComputeWindowImmediate(t *testing.T) {
	c := linCurve()
	w, err := ComputeWindow(c, 100e-12, 0, 10*3600)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Detectable || w.Start != 0 {
		t.Fatalf("zero slack should detect immediately: %+v", w)
	}
}

func TestComputeWindowErrors(t *testing.T) {
	if _, err := ComputeWindow([]DelayPoint{{T: 0, Delay: 1}}, 0, 0, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	bad := []DelayPoint{{T: 5, Delay: 1}, {T: 1, Delay: 2}}
	if _, err := ComputeWindow(bad, 0, 0, 10); err == nil {
		t.Fatal("unsorted samples accepted")
	}
}

func TestRequiredSlackLinear(t *testing.T) {
	c := linCurve()
	nominal := 100e-12
	hbd := 10 * 3600.0
	// Want a 7.5h window -> deadline at 2.5h -> delay there 350ps -> slack 250ps.
	s, ok := RequiredSlack(c, nominal, 7.5*3600, hbd)
	if !ok {
		t.Fatal("should be feasible")
	}
	if math.Abs(s-250e-12) > 1e-12 {
		t.Fatalf("slack %.0f ps, want 250", s*1e12)
	}
	// A window longer than the whole progression is infeasible.
	if _, ok := RequiredSlack(c, nominal, 11*3600, hbd); ok {
		t.Fatal("impossible window accepted")
	}
}

// TestRequiredSlackNegativePaths pins every ok=false branch: degenerate
// curves, deadlines before the trajectory starts, and windows only a
// negative-slack (impossible) detector could see.
func TestRequiredSlackNegativePaths(t *testing.T) {
	c := linCurve()
	nominal := 100e-12
	hbd := 10 * 3600.0

	// Fewer than two samples carries no trajectory at all.
	if _, ok := RequiredSlack(nil, nominal, 3600, hbd); ok {
		t.Fatal("nil curve accepted")
	}
	if _, ok := RequiredSlack(c[:1], nominal, 3600, hbd); ok {
		t.Fatal("single-sample curve accepted")
	}
	// A wanted window reaching before the first sample is unreachable.
	if _, ok := RequiredSlack(c, nominal, hbd-c[0].T+1, hbd); ok {
		t.Fatal("deadline before the curve start accepted")
	}
	// Exactly at the feasibility edge: the curve still sits at the
	// nominal delay, so the required slack would be zero or negative.
	flat := []DelayPoint{{T: 0, Delay: nominal}, {T: hbd, Delay: nominal}}
	if _, ok := RequiredSlack(flat, nominal, 3600, hbd); ok {
		t.Fatal("flat-at-nominal trajectory cannot yield positive slack")
	}
	// A trajectory below nominal (mischaracterized detector) must also
	// report infeasible rather than a negative slack.
	below := []DelayPoint{{T: 0, Delay: nominal / 2}, {T: hbd, Delay: nominal * 0.9}}
	if s, ok := RequiredSlack(below, nominal, 3600, hbd); ok || s != 0 {
		t.Fatalf("below-nominal trajectory returned slack %g, ok=%v", s, ok)
	}
	// A duplicate-time segment at the deadline must not divide by zero.
	dup := []DelayPoint{
		{T: 0, Delay: nominal}, {T: 5 * 3600, Delay: 300e-12},
		{T: 5 * 3600, Delay: 400e-12}, {T: hbd, Delay: 500e-12},
	}
	s, ok := RequiredSlack(dup, nominal, hbd-5*3600, hbd)
	if !ok || s <= 0 {
		t.Fatalf("duplicate-time segment: slack %g ok=%v", s, ok)
	}
}

// TestQuickWindowMonotoneInSlack: on monotone trajectories, larger slack
// never yields an earlier start or a longer window.
func TestQuickWindowMonotoneInSlack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c []DelayPoint
		d := 100e-12
		tt := 0.0
		for i := 0; i < 12; i++ {
			c = append(c, DelayPoint{T: tt, Delay: d})
			tt += 1000 + rng.Float64()*5000
			d += rng.Float64() * 200e-12
		}
		hbd := tt
		prevLen := math.Inf(1)
		for _, frac := range []float64{0.05, 0.2, 0.5, 1, 2} {
			w, err := ComputeWindow(c, 100e-12, frac*100e-12, hbd)
			if err != nil {
				return false
			}
			if w.Length() > prevLen+1e-9 {
				return false
			}
			prevLen = w.Length()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTrip: the slack computed by RequiredSlack produces a
// window at least as long as requested.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c []DelayPoint
		d := 100e-12
		tt := 0.0
		for i := 0; i < 10; i++ {
			c = append(c, DelayPoint{T: tt, Delay: d})
			tt += 3600
			d += (50 + rng.Float64()*300) * 1e-12
		}
		hbd := c[len(c)-1].T
		want := hbd * (0.2 + 0.6*rng.Float64())
		s, ok := RequiredSlack(c, 100e-12, want, hbd)
		if !ok {
			return true
		}
		w, err := ComputeWindow(c, 100e-12, s, hbd)
		if err != nil || !w.Detectable {
			return false
		}
		return w.Length() >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
