package seq

import (
	"fmt"

	"gobd/internal/logic"
)

// Accumulator builds an n-bit accumulator: a ripple-carry adder whose sum
// feeds back into its A operand through the scan chain. Inputs b0..b{n-1}
// and cin stay primary; the sum and carry-out are observable. It is the
// standard small sequential testbed for the scan-mode comparisons.
func Accumulator(n int) (*Circuit, error) {
	core := logic.RippleCarryAdder(n)
	ffs := make([]FF, n)
	for i := 0; i < n; i++ {
		ffs[i] = FF{Q: fmt.Sprintf("a%d", i), D: fmt.Sprintf("s%d", i)}
	}
	return New(core, ffs)
}

// Doubler builds an n-bit doubler: both adder operands are fed from the
// registered sum (next = 2·state + cin), leaving cin as the only primary
// input. With almost no free inputs, the functional launch constraints
// (launch-on-capture, launch-on-shift) bite hard — the testbed where the
// scan-mode coverage gaps become visible.
func Doubler(n int) (*Circuit, error) {
	core := logic.RippleCarryAdder(n)
	ffs := make([]FF, 0, 2*n)
	for i := 0; i < n; i++ {
		ffs = append(ffs, FF{Q: fmt.Sprintf("a%d", i), D: fmt.Sprintf("s%d", i)})
	}
	for i := 0; i < n; i++ {
		ffs = append(ffs, FF{Q: fmt.Sprintf("b%d", i), D: fmt.Sprintf("s%d", i)})
	}
	return New(core, ffs)
}
