package seq

import (
	"math/rand"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// Options is the one knob set shared by every style's generator,
// replacing the per-style option structs of the old API (atpg.LOSOptions).
type Options struct {
	// SampleBudget bounds the random search used beyond ExhaustiveMaxIn
	// free bits.
	SampleBudget int
	// ExhaustiveMaxIn is the free-bit count (styleBits) up to which the
	// style's pair space is searched exhaustively, making Untestable
	// verdicts exact.
	ExhaustiveMaxIn int
	// Seed drives the random sampling. Batch runs derive a per-fault seed
	// from it, so results are bit-identical for any worker count.
	Seed int64
}

// DefaultOptions returns the settings used by the experiments (the same
// numbers as the old atpg.DefaultLOSOptions).
func DefaultOptions() *Options {
	return &Options{SampleBudget: 4096, ExhaustiveMaxIn: 14, Seed: 1}
}

// stateOf reads the present-state bits out of a complete core pattern.
func (s *Circuit) stateOf(p atpg.Pattern) State {
	st := make(State, len(s.FFs))
	for i, ff := range s.FFs {
		st[i] = p[ff.Q]
	}
	return st
}

// buildPair assembles the pair selected by a free-bit assignment: bit(i)
// is the i-th free choice of the style's pair space (see styleBits). It
// returns nil for assignments the style cannot deliver (a LOC launch whose
// captured state is unknown — impossible for complete cores, kept for
// safety).
func buildPair(s *Circuit, style Style, bit func(i int) logic.Value) (*atpg.TwoPattern, error) {
	n := len(s.Core.Inputs)
	v1 := make(atpg.Pattern, n)
	for i, in := range s.Core.Inputs {
		v1[in] = bit(i)
	}
	piOf := func(base int) atpg.Pattern {
		pi := make(atpg.Pattern, len(s.PIs))
		for i, in := range s.PIs {
			pi[in] = bit(base + i)
		}
		return pi
	}
	switch style {
	case Enhanced:
		v2 := make(atpg.Pattern, n)
		for i, in := range s.Core.Inputs {
			v2[in] = bit(n + i)
		}
		return &atpg.TwoPattern{V1: v1, V2: v2}, nil
	case LOS:
		st2 := shiftState(s.stateOf(v1), bit(n))
		v2, err := s.CoreAssign(st2, piOf(n+1))
		if err != nil {
			return nil, err
		}
		return &atpg.TwoPattern{V1: v1, V2: v2}, nil
	case LOC:
		pi1 := make(atpg.Pattern, len(s.PIs))
		for _, in := range s.PIs {
			pi1[in] = v1[in]
		}
		st2, err := s.NextState(s.stateOf(v1), pi1)
		if err != nil {
			return nil, err
		}
		for _, v := range st2 {
			if !v.IsKnown() {
				return nil, nil
			}
		}
		v2, err := s.CoreAssign(st2, piOf(n))
		if err != nil {
			return nil, err
		}
		return &atpg.TwoPattern{V1: v1, V2: v2}, nil
	default:
		return nil, &StyleError{Style: style}
	}
}

// Generate searches the style's pair space for a two-pattern test of one
// core OBD fault. Free-bit spaces up to opt.ExhaustiveMaxIn are searched
// exhaustively (Untestable verdicts are then exact); larger spaces fall
// back to opt.SampleBudget seeded random tries, where a miss is reported
// as Aborted. The error return is reserved for structural failures
// (unknown style, a chain that does not fit the core) — search exhaustion
// is a status, not an error.
func Generate(s *Circuit, f fault.OBD, style Style, opt *Options) (*atpg.TwoPattern, atpg.Status, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	bits, err := styleBits(s, style)
	if err != nil {
		return nil, atpg.Errored, err
	}
	// The exhaustive loop iterates one machine word; 30 bits is already a
	// billion pairs, far past any sensible ExhaustiveMaxIn.
	if bits <= opt.ExhaustiveMaxIn && bits <= 30 {
		for m := 0; m < 1<<uint(bits); m++ {
			tp, err := buildPair(s, style, func(i int) logic.Value {
				return logic.FromBool(m&(1<<uint(i)) != 0)
			})
			if err != nil {
				return nil, atpg.Errored, err
			}
			if tp != nil && atpg.DetectsOBD(s.Core, f, *tp) {
				return tp, atpg.Detected, nil
			}
		}
		return nil, atpg.Untestable, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for k := 0; k < opt.SampleBudget; k++ {
		draw := make([]logic.Value, bits)
		for i := range draw {
			draw[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		tp, err := buildPair(s, style, func(i int) logic.Value { return draw[i] })
		if err != nil {
			return nil, atpg.Errored, err
		}
		if tp != nil && atpg.DetectsOBD(s.Core, f, *tp) {
			return tp, atpg.Detected, nil
		}
	}
	return nil, atpg.Aborted, nil
}

// GenerateLOCTest is Generate specialized to launch-on-capture — the
// broadside style the old API had no generator for.
func GenerateLOCTest(s *Circuit, f fault.OBD, opt *Options) (*atpg.TwoPattern, atpg.Status, error) {
	return Generate(s, f, LOC, opt)
}

// Result is the outcome of a batch generation run over one style.
type Result struct {
	Style    Style
	Tests    []atpg.TwoPattern // one per Detected fault, in fault order
	Statuses []atpg.Status     // per input fault
	Coverage atpg.Coverage
	Exact    bool // the Untestable verdicts are exhaustive
}

// GenerateTests runs the style's generator over a fault list across the
// default scheduler's pool. Every fault is searched independently with a
// seed derived from its index, so the result is bit-identical for any
// worker count.
func GenerateTests(s *Circuit, faults []fault.OBD, style Style, opt *Options) (*Result, error) {
	return GenerateTestsOn(atpg.DefaultScheduler(), s, faults, style, opt)
}

// GenerateTestsOn is GenerateTests on an explicit scheduler, for callers
// (the serving layer) that own a configured pool. The result does not
// depend on the scheduler's worker count.
func GenerateTestsOn(sched *atpg.Scheduler, s *Circuit, faults []fault.OBD, style Style, opt *Options) (*Result, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	bits, err := styleBits(s, style)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Style:    style,
		Statuses: make([]atpg.Status, len(faults)),
		Exact:    bits <= opt.ExhaustiveMaxIn && bits <= 30,
	}
	tps := make([]*atpg.TwoPattern, len(faults))
	errs := make([]error, len(faults))
	sched.ForEach(len(faults), func(i int) {
		o := *opt
		o.Seed = opt.Seed + int64(i)*0x9E3779B9 // decorrelate per-fault sampling
		tps[i], out.Statuses[i], errs[i] = Generate(s, faults[i], style, &o)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Coverage = atpg.Coverage{Total: len(faults)}
	for i, f := range faults {
		if out.Statuses[i] == atpg.Detected {
			out.Tests = append(out.Tests, *tps[i])
			out.Coverage.Detected++
		} else {
			out.Coverage.Undetected = append(out.Coverage.Undetected, f.String())
		}
	}
	return out, nil
}

// GenerateLOCTests is GenerateTests specialized to launch-on-capture.
func GenerateLOCTests(s *Circuit, faults []fault.OBD, opt *Options) (*Result, error) {
	return GenerateTests(s, faults, LOC, opt)
}
