package seq

import (
	"fmt"
	"strings"

	"gobd/internal/logic"
)

// This file is the netlist-first side of the scan API: FromCircuit lifts a
// flat DFF-bearing logic.Circuit into the scan model, Insert flattens a
// scan model back into a DFF netlist, and Unroll time-frame-expands the
// model into one combinational circuit — the bridge that lets the
// combinational PairGrader/PODEM/SAT stack reason about k clock cycles
// without learning anything about state.

// FromCircuit lifts a DFF-bearing netlist into the scan model: the core is
// the circuit's CombinationalCore (flip-flop outputs appended to the
// inputs, flip-flop D nets appended to the outputs) and the chain order is
// the netlist order of the DFF gates. A circuit without flip-flops yields
// a degenerate model with an empty chain.
func FromCircuit(c *logic.Circuit) (*Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	core, err := c.CombinationalCore()
	if err != nil {
		return nil, &ChainError{Msg: fmt.Sprintf("extracting combinational core: %v", err)}
	}
	ffGates := c.DFFs()
	ffs := make([]FF, len(ffGates))
	for i, g := range ffGates {
		ffs[i] = FF{Q: g.Output, D: g.Inputs[0]}
	}
	return build(core, ffs)
}

// Insert stitches an explicit scan chain back into a flat netlist: every
// FF becomes a DFF gate driving its Q net from its D net, Q nets leave the
// input list, and D nets leave the output list (they are observable
// through the chain, not as primary outputs). It is the inverse of
// FromCircuit up to gate order: FromCircuit(Insert(core, ffs)) rebuilds an
// equivalent model, and for circuits whose D nets were not also primary
// outputs the flat forms have identical fingerprints.
func Insert(core *logic.Circuit, ffs []FF) (*logic.Circuit, error) {
	if _, err := build(core, ffs); err != nil {
		return nil, err
	}
	isQ := make(map[string]bool, len(ffs))
	isD := make(map[string]bool, len(ffs))
	for _, ff := range ffs {
		isQ[ff.Q] = true
		isD[ff.D] = true
	}
	flat := logic.New(strings.TrimSuffix(core.Name, "_core"))
	for _, in := range core.Inputs {
		if isQ[in] {
			continue
		}
		if err := flat.AddInput(in); err != nil {
			return nil, &ChainError{Msg: fmt.Sprintf("inserting chain: %v", err)}
		}
	}
	for _, g := range core.Gates {
		if _, err := flat.AddGate(g.Name, g.Type, g.Output, g.Inputs...); err != nil {
			return nil, &ChainError{Msg: fmt.Sprintf("inserting chain: %v", err)}
		}
	}
	for _, ff := range ffs {
		if _, err := flat.AddGate(ff.Q, logic.Dff, ff.Q, ff.D); err != nil {
			return nil, &ChainError{Msg: fmt.Sprintf("inserting flip-flop %q: %v", ff.Q, err)}
		}
	}
	for _, out := range core.Outputs {
		if !isD[out] {
			flat.AddOutput(out)
		}
	}
	if err := flat.Validate(); err != nil {
		return nil, &ChainError{Msg: fmt.Sprintf("inserted netlist does not validate: %v", err)}
	}
	return flat, nil
}

// FrameError is a typed Unroll failure: the frame count is out of range.
type FrameError struct{ Frames int }

func (e *FrameError) Error() string {
	return fmt.Sprintf("seq: cannot unroll %d frames (want >= 1)", e.Frames)
}

// FrameNet names a core net's copy in one time frame of an unrolled
// circuit: net "x" in frame 2 is "x@2".
func FrameNet(net string, frame int) string {
	return fmt.Sprintf("%s@%d", net, frame)
}

// UnrolledNet maps a core net reference in frame t to the net that
// carries its value in an Unroll expansion: flip-flop Q nets chase the
// chain backwards into the driving frame's D net (bottoming out at the
// frame-1 state inputs), everything else is the frame-local FrameNet
// copy. Frame frames+1 resolves the state captured after the last frame.
func UnrolledNet(s *Circuit, net string, frame int) string {
	for {
		i, isQ := -1, false
		for j, ff := range s.FFs {
			if ff.Q == net {
				i, isQ = j, true
				break
			}
		}
		if !isQ {
			return FrameNet(net, frame)
		}
		if frame == 1 {
			return FrameNet(net, 1)
		}
		net, frame = s.FFs[i].D, frame-1
	}
}

// Unroll compiles k time frames of the sequential circuit into one
// combinational circuit. The inputs are the frame-1 state (each flip-flop
// Q as FrameNet(q, 1), in chain order within the core's input order)
// followed by each frame's primary inputs; flip-flop boundaries between
// frames are cut by net substitution, so frame t reads frame t-1's D nets
// directly and no extra gates are introduced (the OBD fault universe per
// frame equals the core's). The outputs are every frame's primary outputs
// plus the final next-state nets (frame k's D images) — exactly the
// observability of scan capture after k cycles. Grading a pair on
// Unroll(s, 2) therefore equals two-frame simulation of the sequential
// machine.
func Unroll(s *Circuit, frames int) (*logic.Circuit, error) {
	if frames < 1 {
		return nil, &FrameError{Frames: frames}
	}
	qIdx := make(map[string]int, len(s.FFs))
	for i, ff := range s.FFs {
		qIdx[ff.Q] = i
	}
	// resolve is UnrolledNet: Q references chase the chain backwards into
	// the driving frame, everything else is the frame-local copy.
	resolve := func(net string, t int) string { return UnrolledNet(s, net, t) }
	u := logic.New(fmt.Sprintf("%s_x%d", strings.TrimSuffix(s.Core.Name, "_core"), frames))
	for _, in := range s.Core.Inputs {
		if _, isQ := qIdx[in]; isQ {
			if err := u.AddInput(FrameNet(in, 1)); err != nil {
				return nil, &ChainError{Msg: fmt.Sprintf("unrolling: %v", err)}
			}
		}
	}
	for t := 1; t <= frames; t++ {
		for _, in := range s.PIs {
			if err := u.AddInput(FrameNet(in, t)); err != nil {
				return nil, &ChainError{Msg: fmt.Sprintf("unrolling: %v", err)}
			}
		}
	}
	for t := 1; t <= frames; t++ {
		for _, g := range s.Core.Gates {
			out := FrameNet(g.Output, t)
			ins := make([]string, len(g.Inputs))
			for i, in := range g.Inputs {
				ins[i] = resolve(in, t)
			}
			if _, err := u.AddGate(out, g.Type, out, ins...); err != nil {
				return nil, &ChainError{Msg: fmt.Sprintf("unrolling frame %d: %v", t, err)}
			}
		}
	}
	for t := 1; t <= frames; t++ {
		for _, po := range s.POs {
			u.AddOutput(resolve(po, t))
		}
	}
	for _, ff := range s.FFs {
		// The state captured after frame `frames`: the chain image of Q in
		// a hypothetical frame frames+1.
		u.AddOutput(resolve(ff.Q, frames+1))
	}
	if err := u.Validate(); err != nil {
		return nil, &ChainError{Msg: fmt.Sprintf("unrolled circuit does not validate: %v", err)}
	}
	return u, nil
}
