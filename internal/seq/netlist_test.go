package seq

import (
	"math/rand"
	"reflect"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// randomSeq draws a small DFF-bearing circuit from the primitive-gate
// generator. The s27-class shape (4 PIs, 3 FFs, 10 gates) keeps every
// style's pair space within the exhaustive window, so coverage verdicts
// in these tests are exact.
func randomSeq(t *testing.T, seed int64) *logic.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 4, Gates: 10, FFs: 3, Primitive: true})
	if err := c.Validate(); err != nil {
		t.Fatalf("seed %d: generated circuit does not validate: %v", seed, err)
	}
	return c
}

func TestFromCircuitShape(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FFs) != 3 {
		t.Fatalf("scan chain has %d flip-flops, want 3", len(s.FFs))
	}
	// Chain order is the netlist's DFF declaration order.
	for i, g := range c.DFFs() {
		if s.FFs[i].Q != g.Output || s.FFs[i].D != g.Inputs[0] {
			t.Fatalf("chain position %d is %+v, want Q=%s D=%s", i, s.FFs[i], g.Output, g.Inputs[0])
		}
	}
	if s.Core.HasDFF() {
		t.Fatal("core still has flip-flops")
	}
	if len(s.PIs) != 4 {
		t.Fatalf("scan model reports %d primary inputs, want 4", len(s.PIs))
	}
}

func TestFromCircuitCombinational(t *testing.T) {
	c := logic.C17()
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FFs) != 0 || len(s.PIs) != len(c.Inputs) {
		t.Fatalf("combinational lift: %d FFs, %d PIs", len(s.FFs), len(s.PIs))
	}
}

// TestInsertRoundTrip checks Insert is the inverse of FromCircuit: lifting
// a netlist into the scan model and stitching it back must reproduce the
// structural fingerprint exactly.
func TestInsertRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := randomSeq(t, seed)
		s, err := FromCircuit(c)
		if err != nil {
			t.Fatalf("seed %d: FromCircuit: %v", seed, err)
		}
		flat, err := Insert(s.Core, s.FFs)
		if err != nil {
			t.Fatalf("seed %d: Insert: %v", seed, err)
		}
		fp1, err := c.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := flat.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("seed %d: FromCircuit/Insert round trip changed the fingerprint", seed)
		}
	}
}

func TestInsertRejectsBrokenChains(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := []FF{{Q: "not-a-net", D: s.FFs[0].D}}
	if _, err := Insert(s.Core, bad); err == nil {
		t.Fatal("Insert accepted a chain whose Q is not a core input")
	} else if _, ok := err.(*ChainError); !ok {
		t.Fatalf("Insert error is %T, want *ChainError", err)
	}
}

func TestUnrollErrors(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unroll(s, 0); err == nil {
		t.Fatal("Unroll accepted 0 frames")
	} else if _, ok := err.(*FrameError); !ok {
		t.Fatalf("Unroll error is %T, want *FrameError", err)
	}
}

// TestUnrollMatchesFrameSimulation is the soundness property of the
// time-frame expansion: for every (initial state, per-frame inputs)
// assignment, evaluating the unrolled combinational circuit must agree
// with clocking the sequential model frame by frame — every frame's
// primary outputs and the final captured state.
func TestUnrollMatchesFrameSimulation(t *testing.T) {
	const frames = 2
	for seed := int64(1); seed <= 10; seed++ {
		c := randomSeq(t, seed)
		s, err := FromCircuit(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		u, err := Unroll(s, frames)
		if err != nil {
			t.Fatalf("seed %d: Unroll: %v", seed, err)
		}
		if u.HasDFF() {
			t.Fatal("unrolled circuit still has flip-flops")
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("seed %d: unrolled circuit does not validate: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 1000))
		for trial := 0; trial < 64; trial++ {
			// One random stimulus: initial state + per-frame PI vectors.
			st := make(State, len(s.FFs))
			for i := range st {
				st[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			pis := make([]atpg.Pattern, frames+1) // 1-indexed frames
			uAssign := map[string]logic.Value{}
			for i, ff := range s.FFs {
				uAssign[FrameNet(ff.Q, 1)] = st[i]
			}
			for f := 1; f <= frames; f++ {
				pi := make(atpg.Pattern, len(s.PIs))
				for _, in := range s.PIs {
					v := logic.FromBool(rng.Intn(2) == 1)
					pi[in] = v
					uAssign[FrameNet(in, f)] = v
				}
				pis[f] = pi
			}
			uVals := u.Eval(uAssign, nil)
			// Reference: clock the scan model directly.
			cur := st
			for f := 1; f <= frames; f++ {
				assign, err := s.CoreAssign(cur, pis[f])
				if err != nil {
					t.Fatal(err)
				}
				vals := s.Core.Eval(assign, nil)
				for _, po := range s.POs {
					got := uVals[UnrolledNet(s, po, f)]
					if got != vals[po] {
						t.Fatalf("seed %d trial %d: frame %d output %s = %v, unrolled %v",
							seed, trial, f, po, vals[po], got)
					}
				}
				next := make(State, len(s.FFs))
				for i, ff := range s.FFs {
					next[i] = vals[ff.D]
				}
				cur = next
			}
			// The captured final state is the chain image of each Q in a
			// hypothetical frame frames+1.
			for i, ff := range s.FFs {
				got := uVals[UnrolledNet(s, ff.Q, frames+1)]
				if got != cur[i] {
					t.Fatalf("seed %d trial %d: final state bit %d = %v, unrolled %v",
						seed, trial, i, cur[i], got)
				}
			}
		}
	}
}

// TestUnrollGradesLikeTwoFrames pins the unrolled circuit to the
// combinational grading stack: the per-frame OBD universes of Unroll(s,2)
// are copies of the core's (net substitution adds no gates), and grading
// runs on it unchanged.
func TestUnrollGradesLikeTwoFrames(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Unroll(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	coreFaults, _ := fault.OBDUniverse(s.Core)
	uFaults, _ := fault.OBDUniverse(u)
	if len(uFaults) != 2*len(coreFaults) {
		t.Fatalf("unrolled universe has %d faults, want 2x%d", len(uFaults), len(coreFaults))
	}
	ts, err := atpg.GenerateOBDTests(u, uFaults, nil)
	if err != nil {
		t.Fatalf("combinational ATPG on the unrolled circuit: %v", err)
	}
	if ts.Coverage.Detected == 0 {
		t.Fatal("no unrolled fault was detectable; expansion is likely wired wrong")
	}
}

// TestStyleOrdering is the coverage-containment property: every LOS or LOC
// pair is also an enhanced-scan pair, so with exhaustive search enhanced
// coverage dominates both per fault. Verified on random sequential
// circuits across worker counts {1, 2, 8}, which must all produce
// bit-identical results.
func TestStyleOrdering(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := randomSeq(t, seed)
		s, err := FromCircuit(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults, _ := fault.OBDUniverse(s.Core)
		results := map[Style]*Result{}
		for _, style := range []Style{Enhanced, LOS, LOC} {
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				res, err := GenerateTestsOn(atpg.NewScheduler(workers), s, faults, style, nil)
				if err != nil {
					t.Fatalf("seed %d %v workers=%d: %v", seed, style, workers, err)
				}
				if !res.Exact {
					t.Fatalf("seed %d %v: search was not exhaustive; the ordering check needs exact verdicts", seed, style)
				}
				if base == nil {
					base = res
				} else if !reflect.DeepEqual(base, res) {
					t.Fatalf("seed %d %v: workers=%d result differs from workers=1", seed, style, workers)
				}
			}
			results[style] = base
		}
		for i := range faults {
			if results[LOS].Statuses[i] == atpg.Detected && results[Enhanced].Statuses[i] != atpg.Detected {
				t.Fatalf("seed %d fault %s: LOS detects but enhanced does not", seed, faults[i])
			}
			if results[LOC].Statuses[i] == atpg.Detected && results[Enhanced].Statuses[i] != atpg.Detected {
				t.Fatalf("seed %d fault %s: LOC detects but enhanced does not", seed, faults[i])
			}
		}
	}
}

// TestS27StyleCensus pins the s27-class benchmark's exact per-style
// coverage — the numbers recorded in EXPERIMENTS.md and grepped by CI.
func TestS27StyleCensus(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(s.Core)
	if len(faults) != 40 {
		t.Fatalf("s27-class OBD universe has %d faults, want 40", len(faults))
	}
	want := map[Style]int{Enhanced: 26, LOS: 25, LOC: 20}
	for _, style := range []Style{Enhanced, LOS, LOC} {
		res, err := GenerateTests(s, faults, style, nil)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if !res.Exact {
			t.Fatalf("%v: search was not exhaustive", style)
		}
		if res.Coverage.Detected != want[style] {
			t.Fatalf("%v coverage %d/40, want %d/40", style, res.Coverage.Detected, want[style])
		}
	}
}

func TestGenerateLOCTestDetects(t *testing.T) {
	c := randomSeq(t, 39)
	s, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(s.Core)
	found := false
	for _, f := range faults {
		tp, status, err := GenerateLOCTest(s, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if status != atpg.Detected {
			continue
		}
		found = true
		// The returned pair must be deliverable by launch-on-capture: V2's
		// state bits equal the next state captured from V1.
		st2, err := s.NextState(s.stateOf(tp.V1), piOnly(s, tp.V1))
		if err != nil {
			t.Fatal(err)
		}
		for i, ff := range s.FFs {
			if tp.V2[ff.Q] != st2[i] {
				t.Fatalf("fault %s: V2 state bit %s = %v, capture gives %v", f, ff.Q, tp.V2[ff.Q], st2[i])
			}
		}
		if !atpg.DetectsOBD(s.Core, f, *tp) {
			t.Fatalf("fault %s: generated LOC pair does not detect", f)
		}
	}
	if !found {
		t.Fatal("LOC generator detected nothing on the s27-class circuit")
	}
}

func piOnly(s *Circuit, p atpg.Pattern) atpg.Pattern {
	pi := make(atpg.Pattern, len(s.PIs))
	for _, in := range s.PIs {
		pi[in] = p[in]
	}
	return pi
}

// TestParseStyleSpellings locks the CLI and wire spellings.
func TestParseStyleSpellings(t *testing.T) {
	for name, want := range map[string]Style{
		"enhanced": Enhanced, "enhanced-scan": Enhanced,
		"los": LOS, "launch-on-shift": LOS,
		"loc": LOC, "launch-on-capture": LOC,
	} {
		got, err := ParseStyle(name)
		if err != nil || got != want {
			t.Fatalf("ParseStyle(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStyle("broadside"); err == nil {
		t.Fatal("ParseStyle accepted an unknown name")
	} else if _, ok := err.(*StyleError); !ok {
		t.Fatalf("ParseStyle error is %T, want *StyleError", err)
	}
}
